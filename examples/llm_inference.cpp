// Run the synthetic Llama-7B-class model under several quantisation
// backends and compare perplexity — a single-model slice of Table II,
// each cell one bbal::Session.
//
// Usage: ./build/examples/llm_inference [model-name]
//        (model-name from the Table II zoo, default "Llama-7B")
#include <cstdio>
#include <string>

#include "bbal/registry.hpp"
#include "bbal/session.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace bbal;

  const std::string model_name = argc > 1 ? argv[1] : "Llama-7B";
  const auto config = llm::find_config(model_name);
  if (!config.is_ok()) {
    std::fprintf(stderr, "%s\n", config.message().c_str());
    return 1;
  }
  std::printf("Preparing synthetic %s (calibrating FP32 baseline)...\n",
              model_name.c_str());
  const auto prepared = prepare_shared(config.value(), /*eval_tokens=*/384);
  std::printf("FP32 baseline perplexity: %.2f (paper FP16 row: %.2f)\n\n",
              prepared->fp32_ppl, prepared->config.fp_baseline_ppl);

  TextTable table({"Backend", "Perplexity", "vs FP32"});
  auto report = [&](const std::string& name, double ppl) {
    table.add_row({name, TextTable::num(ppl, 2),
                   TextTable::num(ppl / prepared->fp32_ppl, 2) + "x"});
  };

  report("FP32", prepared->fp32_ppl);
  for (const std::string& strategy :
       {std::string("BFP6"), std::string("BFP4"), std::string("BBFP(3,1)"),
        std::string("BBFP(4,2)"), std::string("BBFP(6,3)"),
        std::string("Oltron"), std::string("Olive"),
        std::string("OmniQuant")}) {
    auto session =
        Session::Builder().prepared(prepared).matmul(strategy).build();
    if (!session.is_ok()) {
      std::fprintf(stderr, "%s: %s\n", strategy.c_str(),
                   session.message().c_str());
      return 1;
    }
    report(strategy,
           session.value().evaluate().expect("evaluate").perplexity);
  }
  table.print();
  std::printf(
      "\nExpected shape (Table II): BBFP(6,3) ~ FP32; BBFP(4,2) mild;\n"
      "BFP4 worse than BBFP at equal width; Olive far worse.\n");
  return 0;
}
