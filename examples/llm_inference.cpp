// Run the synthetic Llama-7B-class model under several quantisation
// backends and compare perplexity — a single-model slice of Table II.
//
// Usage: ./build/examples/llm_inference [model-name]
//        (model-name from the Table II zoo, default "Llama-7B")
#include <cstdio>
#include <memory>
#include <string>

#include "baselines/quant_baselines.hpp"
#include "common/table.hpp"
#include "llm/perplexity.hpp"

int main(int argc, char** argv) {
  using namespace bbal;
  using namespace bbal::llm;

  const std::string model_name = argc > 1 ? argv[1] : "Llama-7B";
  std::printf("Preparing synthetic %s (calibrating FP32 baseline)...\n",
              model_name.c_str());
  const PreparedModel prepared =
      prepare_model(config_by_name(model_name), /*eval_tokens=*/384);
  std::printf("FP32 baseline perplexity: %.2f (paper FP16 row: %.2f)\n\n",
              prepared.fp32_ppl, prepared.config.fp_baseline_ppl);

  TextTable table({"Backend", "Perplexity", "vs FP32"});
  auto report = [&](const std::string& name, double ppl) {
    table.add_row({name, TextTable::num(ppl, 2),
                   TextTable::num(ppl / prepared.fp32_ppl, 2) + "x"});
  };

  report("FP32", prepared.fp32_ppl);
  for (const auto& fmt :
       {quant::BlockFormat::bfp(6), quant::BlockFormat::bfp(4),
        quant::BlockFormat::bbfp(3, 1), quant::BlockFormat::bbfp(4, 2),
        quant::BlockFormat::bbfp(6, 3)}) {
    report(fmt.name(), evaluate_ppl_block_format(prepared, fmt));
  }
  {
    baselines::OltronBackend oltron;
    Fp32NonlinearBackend nl;
    report("Oltron", evaluate_ppl(prepared, oltron, nl));
  }
  {
    baselines::OliveBackend olive;
    Fp32NonlinearBackend nl;
    report("Olive", evaluate_ppl(prepared, olive, nl));
  }
  {
    baselines::OmniquantBackend omni;
    Fp32NonlinearBackend nl;
    report("OmniQuant", evaluate_ppl(prepared, omni, nl));
  }
  table.print();
  std::printf(
      "\nExpected shape (Table II): BBFP(6,3) ~ FP32; BBFP(4,2) mild;\n"
      "BFP4 worse than BBFP at equal width; Olive far worse.\n");
  return 0;
}
