// Drive the BBAL accelerator model end to end: run a decoder workload on
// the cycle-level simulator through a cost-only bbal::Session, print
// cycles / utilisation / energy, and show the bit-exact GEMM path agreeing
// with the functional quantiser.
//
// Usage: ./build/examples/accelerator_sim [strategy] [seq]
//        strategy in {BBFP(4,2), BFP4, BFP6, Oltron, ...}, default BBFP(4,2)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "accel/encoders.hpp"
#include "accel/gemm_executor.hpp"
#include "bbal/session.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace bbal;
  using namespace bbal::accel;

  const std::string strategy = argc > 1 ? argv[1] : "BBFP(4,2)";
  const int seq = argc > 2 ? std::atoi(argv[2]) : 512;

  // Parse the strategy once; every downstream consumer (PE design,
  // encoder sizing, bit-exact GEMM) keys off the same spec.
  const auto spec = quant::StrategySpec::parse(strategy);
  if (!spec.is_ok()) {
    std::fprintf(stderr, "bad strategy: %s\n", spec.message().c_str());
    return 1;
  }

  AcceleratorConfig cfg;
  cfg.strategy = spec.value().to_string();
  cfg.array_rows = cfg.array_cols = 16;

  std::printf("BBAL accelerator simulation — strategy %s, %dx%d PEs\n",
              cfg.strategy.c_str(), cfg.array_rows, cfg.array_cols);
  const auto fmt = spec.value().block_format();
  std::printf("PE area: %.1f um2 each, array %.0f um2, encoders %.0f um2\n\n",
              cfg.pe_design().area_um2(hw::CellLibrary::tsmc28()),
              cfg.pe_array_area_um2(),
              fmt.is_ok() ? encoder_area_um2(fmt.value(), cfg.array_cols)
                          : 0.0);

  const llm::ModelConfig model = llm::config_by_name("Llama-7B");
  const auto workload = prefill_gemms(model, seq);

  TextTable table({"GEMM", "M", "K", "N", "Cycles", "Util", "DRAM KB"});
  GemmStats total;
  for (const GemmShape& g : workload) {
    const GemmStats s = simulate_gemm(cfg, g);
    total += s;
    table.add_row({g.tag, std::to_string(g.m), std::to_string(g.k),
                   std::to_string(g.n), TextTable::num(s.cycles, 0),
                   TextTable::num(s.utilization(cfg) * 100.0, 1) + "%",
                   TextTable::num(s.dram_bytes / 1024.0, 1)});
    if (table.render().size() > 4000) break;  // keep the demo short
  }
  table.print();

  // The whole prefill as one cost-only Session.
  auto session = Session::Builder()
                     .model(model)
                     .matmul(spec.value())
                     .accelerator(cfg)
                     .skip_accuracy()
                     .workload_prefill(seq)
                     .build();
  if (!session.is_ok()) {
    std::fprintf(stderr, "session: %s\n", session.message().c_str());
    return 1;
  }
  const auto report = session.value().evaluate().expect("evaluate");
  const RunStats& run = report.run;
  std::printf("\nWhole prefill (seq %d): %.2f Mcycles, %.2f ms @ %.1f GHz, "
              "%.1f GOPS, util %.1f%%\n",
              seq, run.gemm.cycles / 1e6, run.seconds * 1e3, cfg.freq_ghz,
              run.throughput_gops, run.gemm.utilization(cfg) * 100.0);
  std::printf("Energy: core %.1f uJ | buffer %.1f uJ | DRAM %.1f uJ | "
              "static %.1f uJ | total %.1f uJ\n",
              run.energy.core_j * 1e6, run.energy.buffer_j * 1e6,
              run.energy.dram_j * 1e6, run.energy.static_j * 1e6,
              run.energy.total_j() * 1e6);
  std::printf("Weight footprint under %s: %.2f MB\n", cfg.strategy.c_str(),
              report.memory_footprint_bytes / (1024.0 * 1024.0));

  // Functional check: the integer-datapath GEMM against FP32.
  if (fmt.is_ok()) {
    Rng rng(1);
    llm::Matrix a(4, 64), w(64, 4);
    for (float& v : a.flat()) v = static_cast<float>(rng.gaussian());
    for (float& v : w.flat()) v = static_cast<float>(rng.gaussian());
    const llm::Matrix q = execute_gemm_bit_exact(a, w, fmt.value(),
                                                 fmt.value());
    const llm::Matrix exact = llm::matmul(a, w);
    double max_err = 0.0;
    for (int i = 0; i < q.rows(); ++i)
      for (int j = 0; j < q.cols(); ++j)
        max_err = std::max(max_err, static_cast<double>(std::fabs(
                                        q.at(i, j) - exact.at(i, j))));
    std::printf("\nBit-exact %s GEMM vs FP32 reference: max |error| = %.4f "
                "(quantisation error, not a bug)\n",
                fmt.value().name().c_str(), max_err);
  }
  return 0;
}
