// Drive the BBAL accelerator model end to end: run a decoder workload on
// the cycle-level simulator, print cycles / utilisation / energy, and show
// the bit-exact GEMM path agreeing with the functional quantiser.
//
// Usage: ./build/examples/accelerator_sim [strategy] [seq]
//        strategy in {BBFP(4,2), BFP4, BFP6, Oltron, ...}, default BBFP(4,2)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "accel/encoders.hpp"
#include "accel/gemm_executor.hpp"
#include "accel/simulator.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "llm/model.hpp"

int main(int argc, char** argv) {
  using namespace bbal;
  using namespace bbal::accel;

  const std::string strategy = argc > 1 ? argv[1] : "BBFP(4,2)";
  const int seq = argc > 2 ? std::atoi(argv[2]) : 512;

  AcceleratorConfig cfg;
  cfg.strategy = strategy;
  cfg.array_rows = cfg.array_cols = 16;

  std::printf("BBAL accelerator simulation — strategy %s, %dx%d PEs\n",
              strategy.c_str(), cfg.array_rows, cfg.array_cols);
  std::printf("PE area: %.1f um2 each, array %.0f um2, encoders %.0f um2\n\n",
              cfg.pe_design().area_um2(hw::CellLibrary::tsmc28()),
              cfg.pe_array_area_um2(),
              strategy.rfind("BBFP", 0) == 0 || strategy.rfind("BFP", 0) == 0
                  ? encoder_area_um2(
                        strategy.rfind("BBFP", 0) == 0
                            ? quant::BlockFormat::bbfp(4, 2)
                            : quant::BlockFormat::bfp(4),
                        cfg.array_cols)
                  : 0.0);

  const llm::ModelConfig model = llm::config_by_name("Llama-7B");
  const auto workload = prefill_gemms(model, seq);

  TextTable table({"GEMM", "M", "K", "N", "Cycles", "Util", "DRAM KB"});
  GemmStats total;
  for (const GemmShape& g : workload) {
    const GemmStats s = simulate_gemm(cfg, g);
    total += s;
    table.add_row({g.tag, std::to_string(g.m), std::to_string(g.k),
                   std::to_string(g.n), TextTable::num(s.cycles, 0),
                   TextTable::num(s.utilization(cfg) * 100.0, 1) + "%",
                   TextTable::num(s.dram_bytes / 1024.0, 1)});
    if (table.render().size() > 4000) break;  // keep the demo short
  }
  table.print();

  const RunStats run = simulate_workload(cfg, workload);
  std::printf("\nWhole prefill (seq %d): %.2f Mcycles, %.2f ms @ %.1f GHz, "
              "%.1f GOPS, util %.1f%%\n",
              seq, run.gemm.cycles / 1e6, run.seconds * 1e3, cfg.freq_ghz,
              run.throughput_gops, run.gemm.utilization(cfg) * 100.0);
  std::printf("Energy: core %.1f uJ | buffer %.1f uJ | DRAM %.1f uJ | "
              "static %.1f uJ | total %.1f uJ\n",
              run.energy.core_j * 1e6, run.energy.buffer_j * 1e6,
              run.energy.dram_j * 1e6, run.energy.static_j * 1e6,
              run.energy.total_j() * 1e6);

  // Functional check: the integer-datapath GEMM against FP32.
  if (strategy.rfind("BBFP(", 0) == 0 || strategy.rfind("BFP", 0) == 0) {
    Rng rng(1);
    llm::Matrix a(4, 64), w(64, 4);
    for (float& v : a.flat()) v = static_cast<float>(rng.gaussian());
    for (float& v : w.flat()) v = static_cast<float>(rng.gaussian());
    quant::BlockFormat fmt = quant::BlockFormat::bbfp(4, 2);
    if (strategy.rfind("BFP", 0) == 0)
      fmt = quant::BlockFormat::bfp(std::stoi(strategy.substr(3)));
    const llm::Matrix q = execute_gemm_bit_exact(a, w, fmt, fmt);
    const llm::Matrix exact = llm::matmul(a, w);
    double max_err = 0.0;
    for (int i = 0; i < q.rows(); ++i)
      for (int j = 0; j < q.cols(); ++j)
        max_err = std::max(max_err, static_cast<double>(std::fabs(
                                        q.at(i, j) - exact.at(i, j))));
    std::printf("\nBit-exact %s GEMM vs FP32 reference: max |error| = %.4f "
                "(quantisation error, not a bug)\n",
                fmt.name().c_str(), max_err);
  }
  return 0;
}
