// The BBFP nonlinear computation unit in isolation: softmax / SiLU / GELU /
// sigmoid through the exponent-segmented LUT, accuracy vs FP32, sub-table
// usage, and the cost metrics of Table V.
//
// Usage: ./build/examples/nonlinear_unit
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "llm/tensor.hpp"
#include "nl/backends.hpp"
#include "nl/unit_cost.hpp"

int main() {
  using namespace bbal;
  using namespace bbal::nl;

  std::printf("BBFP(10,5) nonlinear unit walkthrough\n");
  std::printf("=====================================\n\n");

  NlUnitEngine engine(quant::BlockFormat::bbfp(10, 5));

  // 1. Softmax on an attention-like score vector.
  Rng rng(3);
  std::vector<float> scores(64);
  for (auto& s : scores) s = static_cast<float>(rng.gaussian(0.0, 2.0));
  scores[7] = 9.0f;  // a confident head
  std::vector<float> ref = scores;
  llm::softmax_reference(ref);
  std::vector<float> unit_out = scores;
  engine.softmax(unit_out);
  double max_err = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i)
    max_err = std::max(max_err,
                       static_cast<double>(std::fabs(unit_out[i] - ref[i])));
  std::printf("Softmax over 64 scores: top prob %.4f (FP32 %.4f), "
              "max |err| %.5f\n",
              unit_out[7], ref[7], max_err);

  // 2. SiLU and GELU through the sigmoid/Phi LUTs.
  TextTable table(
      {"x", "SiLU(unit)", "SiLU(FP32)", "GELU(unit)", "GELU(FP32)"});
  for (const float x : {-4.0f, -1.0f, -0.25f, 0.5f, 2.0f, 6.0f}) {
    std::vector<float> s = {x};
    std::vector<float> g = {x};
    engine.silu(s);
    engine.gelu(g);
    const double phi = 0.5 * (1.0 + std::erf(x / std::sqrt(2.0)));
    table.add_row({TextTable::num(x, 2), TextTable::num(s[0], 4),
                   TextTable::num(llm::silu_reference(x), 4),
                   TextTable::num(g[0], 4), TextTable::num(x * phi, 4)});
  }
  table.print();

  // 3. Sub-table accounting (the segmented-LUT story).
  std::printf("\nLUT usage so far: %llu lookups, %zu distinct sub-tables "
              "touched, %zu bits per sub-table\n",
              static_cast<unsigned long long>(engine.stats().lut_lookups),
              engine.stats().subtables_touched.size(),
              engine.subtable_bits());
  std::printf("Provisioning rule: softmax exponents [-8, 9] -> %d sub-tables "
              "(paper: 18); SiLU [-8, 3] x 2 signs -> %d (paper: 24)\n",
              NlUnitEngine::provisioned_subtables(-8, 9, false),
              NlUnitEngine::provisioned_subtables(-8, 3, true));

  // 4. Cost metrics (Table V).
  const NlUnitCost cost = bbal_nl_unit_cost(16);
  std::printf("\nUnit cost model: %.3f mm2, %.1f mW, %.0f ns per 128-softmax, "
              "%.1f Gelem/s sustained\n",
              cost.area_mm2, cost.power_w * 1e3, cost.native_delay_ns(),
              cost.throughput_gelems());
  std::printf("ADP %.2f | EDP %.1f | Efficiency %.1f (see bench_table5)\n",
              cost.adp(), cost.edp(), cost.efficiency());
  return 0;
}
