// Serving demo: stand up a continuous-batching engine over a quantised
// Session and serve a handful of concurrent generation requests, printing
// per-request TTFT / latency / tokens-per-second and the batch aggregate —
// then re-serve a shared-prefix mix under the prefix-aware scheduler to
// show paged KV prefix sharing at work. docs/SERVING.md walks through the
// output line by line.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/serving_demo
#include <cstdio>

#include "bbal/session.hpp"
#include "common/table.hpp"
#include "serve/engine.hpp"
#include "serve/workload.hpp"

int main() {
  using namespace bbal;

  std::printf("BBAL serving demo: continuous batching over BBFP(4,2)\n");
  std::printf("=====================================================\n\n");

  // 1. A Session binds the model + strategy + accelerator, as in the
  //    quickstart; the engine then serves that exact configuration.
  auto model = prepare_shared("Llama-1B", /*eval_tokens=*/128);
  accel::AcceleratorConfig accel_cfg;
  accel_cfg.array_rows = accel_cfg.array_cols = 16;
  auto session = Session::Builder()
                     .prepared(model)
                     .matmul("BBFP(4,2)")
                     .accelerator(accel_cfg)
                     .build()
                     .expect("session");

  // 2. Engine with 3 execution slots serving 6 requests: requests queue,
  //    slots free up mid-run, the scheduler back-fills continuously.
  auto engine =
      serve::Engine::from_session(session, /*max_batch=*/3).expect("engine");
  for (const serve::Request& req :
       serve::synthetic_requests(model->config, /*count=*/6,
                                 /*base_prompt_len=*/8, /*max_new_tokens=*/12))
    engine.submit(req);

  const serve::Report report = engine.run();

  TextTable table({"Request", "Prompt", "Generated", "TTFT ms", "Total ms",
                   "Tok/s"});
  for (const serve::RequestResult& r : report.results)
    table.add_row({std::to_string(r.id), std::to_string(r.prompt_tokens),
                   std::to_string(r.generated.size()),
                   TextTable::num(r.ttft_seconds * 1e3, 3),
                   TextTable::num(r.total_seconds * 1e3, 3),
                   TextTable::num(r.tokens_per_second, 0)});
  table.print();

  std::printf(
      "\nBatch: %lld tokens in %.3f ms simulated (%.0f tok/s), "
      "p99 step %.3f ms, occupancy %.2f/%d, %u stream hash\n",
      static_cast<long long>(report.generated_tokens),
      report.total_seconds * 1e3, report.throughput_tokens_per_second,
      report.p99_step_seconds * 1e3, report.mean_batch_occupancy,
      report.max_batch, report.stream_hash);
  std::printf("KV pool: %lld pages allocated, peak %.1f KB "
              "(monolithic caches: %.1f KB)\n",
              static_cast<long long>(report.kv_pages_allocated),
              static_cast<double>(report.kv_bytes_peak) / 1024.0,
              static_cast<double>(report.kv_bytes_peak_contiguous) / 1024.0);

  // 3. Same engine configuration, prefix-aware scheduling, and a mix
  //    where every request opens with the same 48-token system prompt:
  //    followers attach the leader's KV pages instead of recomputing
  //    them, so prefill work and peak KV bytes both drop while the token
  //    streams stay bit-identical to any other policy's.
  std::printf("\nPrefix sharing: 6 requests, one 48-token system prompt, "
              "prefix-aware policy\n");
  serve::Engine::Options options;
  options.max_batch = 3;
  options.policy = "prefix-aware";
  options.accelerator = accel_cfg;
  auto aware = serve::Engine::create(model, quant::spec_of("BBFP(4,2)"),
                                     quant::StrategySpec::fp32(),
                                     std::move(options))
                   .expect("engine");
  for (const serve::Request& req : serve::shared_prefix_requests(
           model->config, /*count=*/6, /*prefix_len=*/48,
           /*suffix_len=*/4, /*max_new_tokens=*/12))
    aware.submit(req);
  const serve::Report shared = aware.run();

  TextTable sharing({"Request", "Prompt", "Shared", "TTFT ms", "Tok/s"});
  for (const serve::RequestResult& r : shared.results)
    sharing.add_row({std::to_string(r.id), std::to_string(r.prompt_tokens),
                     std::to_string(r.shared_prompt_tokens),
                     TextTable::num(r.ttft_seconds * 1e3, 3),
                     TextTable::num(r.tokens_per_second, 0)});
  sharing.print();
  std::printf(
      "\nPrefix hit rate %.2f; KV peak %.1f KB vs %.1f KB monolithic; "
      "%u stream hash\n",
      shared.prefix_hit_rate,
      static_cast<double>(shared.kv_bytes_peak) / 1024.0,
      static_cast<double>(shared.kv_bytes_peak_contiguous) / 1024.0,
      shared.stream_hash);
  return 0;
}
