// Serving demo: stand up a continuous-batching engine over a quantised
// Session and serve a handful of concurrent generation requests, printing
// per-request TTFT / latency / tokens-per-second and the batch aggregate.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/serving_demo
#include <cstdio>

#include "bbal/session.hpp"
#include "common/table.hpp"
#include "serve/engine.hpp"
#include "serve/workload.hpp"

int main() {
  using namespace bbal;

  std::printf("BBAL serving demo: continuous batching over BBFP(4,2)\n");
  std::printf("=====================================================\n\n");

  // 1. A Session binds the model + strategy + accelerator, as in the
  //    quickstart; the engine then serves that exact configuration.
  auto model = prepare_shared("Llama-1B", /*eval_tokens=*/128);
  accel::AcceleratorConfig accel_cfg;
  accel_cfg.array_rows = accel_cfg.array_cols = 16;
  auto session = Session::Builder()
                     .prepared(model)
                     .matmul("BBFP(4,2)")
                     .accelerator(accel_cfg)
                     .build()
                     .expect("session");

  // 2. Engine with 3 execution slots serving 6 requests: requests queue,
  //    slots free up mid-run, the scheduler back-fills continuously.
  auto engine =
      serve::Engine::from_session(session, /*max_batch=*/3).expect("engine");
  for (const serve::Request& req :
       serve::synthetic_requests(model->config, /*count=*/6,
                                 /*base_prompt_len=*/8, /*max_new_tokens=*/12))
    engine.submit(req);

  const serve::Report report = engine.run();

  TextTable table({"Request", "Prompt", "Generated", "TTFT ms", "Total ms",
                   "Tok/s"});
  for (const serve::RequestResult& r : report.results)
    table.add_row({std::to_string(r.id), std::to_string(r.prompt_tokens),
                   std::to_string(r.generated.size()),
                   TextTable::num(r.ttft_seconds * 1e3, 3),
                   TextTable::num(r.total_seconds * 1e3, 3),
                   TextTable::num(r.tokens_per_second, 0)});
  table.print();

  std::printf(
      "\nBatch: %lld tokens in %.3f ms simulated (%.0f tok/s), "
      "p99 step %.3f ms, occupancy %.2f/%d, %u stream hash\n",
      static_cast<long long>(report.generated_tokens),
      report.total_seconds * 1e3, report.throughput_tokens_per_second,
      report.p99_step_seconds * 1e3, report.mean_batch_occupancy,
      report.max_batch, report.stream_hash);
  return 0;
}
