// Explore the BBFP design space: sweep (m, o) and report quantisation error
// on synthetic LLM-like data, equivalent storage bits, PE area, and where
// each paper configuration sits on the error/cost frontier.
//
// Usage: ./build/examples/format_explorer [mantissa_max]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "hw/datapath_designs.hpp"
#include "quant/error_model.hpp"

int main(int argc, char** argv) {
  using namespace bbal;
  using quant::BlockFormat;

  const int m_max = argc > 1 ? std::atoi(argv[1]) : 8;

  // Heavy-tailed data with LLM-like outliers (Fig. 1a).
  Rng rng(17);
  std::vector<double> data(32768);
  for (auto& x : data) x = rng.heavy_tailed(1.0, 0.01, 12.0);

  std::printf("BBFP design-space explorer (%zu samples, outlier-bearing)\n\n",
              data.size());

  TextTable table({"Format", "Equiv bits", "MSE", "SQNR-ish dB", "PE um2",
                   "Flag frac", "E[exp] shift"});
  const hw::CellLibrary& lib = hw::CellLibrary::tsmc28();

  auto add_format = [&](const BlockFormat& fmt) {
    const quant::ErrorReport report = quant::analyse_error(data, fmt);
    // Mean shared exponent (PMF expectation).
    double mean_exp = 0.0;
    for (const auto& [e, p] : report.shared_exponent_pmf)
      mean_exp += e * p;
    const double signal = 1.0;  // data variance ~ 1
    const double sqnr =
        10.0 * std::log10(signal / std::max(report.empirical_mse, 1e-30));
    const double pe_area =
        fmt.is_bbfp() ? hw::bbfp_pe(fmt).area_um2(lib)
                      : hw::bfp_pe(fmt).area_um2(lib);
    table.add_row({fmt.name(), TextTable::num(fmt.equivalent_bits(), 2),
                   TextTable::num(report.empirical_mse, 6),
                   TextTable::num(sqnr, 1), TextTable::num(pe_area, 1),
                   TextTable::num(report.flag_fraction, 3),
                   TextTable::num(mean_exp, 2)});
  };

  for (int m = 3; m <= m_max; ++m) {
    add_format(BlockFormat::bfp(m));
    for (int o = std::max(1, m - 4); o < m; ++o)
      add_format(BlockFormat::bbfp(m, o));
  }
  table.print();

  std::printf(
      "\nReading guide: at equal equivalent bits, BBFP rows should beat the\n"
      "BFP row above them on MSE (the bidirectional window protects the\n"
      "bulk); more overlap -> smaller PE but more max-alignment; the flag\n"
      "fraction shows how many elements used the high window.\n");
  return 0;
}
