// Quickstart: encode a vector into BBFP, compare its quantisation error
// against BFP, run a bit-exact block dot product, then reproduce a whole
// Table II cell (perplexity + throughput + energy) with one bbal::Session.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "bbal/session.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "quant/block.hpp"
#include "quant/dot.hpp"
#include "quant/error_model.hpp"

int main() {
  using namespace bbal;
  using quant::BlockFormat;

  std::printf("BBAL quickstart: the BBFP(4,2) data format\n");
  std::printf("==========================================\n\n");

  // 1. A block of values with one outlier — the distribution BFP struggles
  //    with (Fig. 1a of the paper).
  Rng rng(7);
  std::vector<double> block(32);
  for (auto& x : block) x = rng.gaussian(0.0, 1.0);
  block[5] = 24.0;  // outlier

  // 2. Quantise with BFP4 and BBFP(4,2) and compare round-trip error.
  const BlockFormat bfp4 = BlockFormat::bfp(4);
  const BlockFormat bbfp42 = BlockFormat::bbfp(4, 2);
  const double mse_bfp = quant::empirical_mse(block, bfp4);
  const double mse_bbfp = quant::empirical_mse(block, bbfp42);
  std::printf("Round-trip MSE on a 32-element block with one outlier:\n");
  std::printf("  BFP4      : %.5f\n", mse_bfp);
  std::printf("  BBFP(4,2) : %.5f   (%.1fx lower)\n\n", mse_bbfp,
              mse_bfp / mse_bbfp);

  // 3. Look inside the encoded block: shared exponent and flag bits.
  const quant::EncodedBlock enc = quant::encode_block(block, bbfp42);
  std::printf("BBFP(4,2) shared exponent: %d (max exponent minus m-o = 2)\n",
              enc.shared_exponent);
  std::printf("Flagged (high-group) elements: %zu of %zu\n\n",
              enc.flag_count(), enc.elems.size());

  // 4. A bit-exact quantised dot product (Eq. 7): the integer datapath and
  //    the dequantised reference agree exactly.
  std::vector<double> other(32);
  for (auto& x : other) x = rng.gaussian(0.0, 0.5);
  const quant::EncodedBlock enc_other = quant::encode_block(other, bbfp42);
  const quant::BlockDotResult dot = quant::dot_block(enc, enc_other);
  std::printf("Block dot product (integer datapath) : %.6f\n", dot.value);
  std::printf("Block dot product (decoded reference): %.6f\n",
              quant::dot_block_reference(enc, enc_other));
  std::printf("Integer accumulator: %lld x 2^%d, widest product: %d bits\n",
              static_cast<long long>(dot.accumulator), dot.scale_exponent,
              dot.max_product_bits);

  // 5. One Table II cell end to end: accuracy and hardware cost from the
  //    same forward passes, via the Session API.
  std::printf("\nOne Session = one Table II cell (small eval stream):\n");
  auto session = bbal::Session::Builder()
                     .model("Llama-7B")
                     .eval_tokens(256)
                     .matmul("BBFP(4,2)")
                     .nonlinear("FP32")
                     .accelerator_iso_area(/*pe_area_budget_um2=*/150000.0)
                     .build();
  if (!session.is_ok()) {
    std::fprintf(stderr, "session: %s\n", session.message().c_str());
    return 1;
  }
  const auto report = session.value().evaluate().expect("evaluate");
  std::printf("  BBFP(4,2) perplexity : %.2f (FP32 baseline %.2f)\n",
              report.perplexity, report.fp32_perplexity);
  std::printf("  Throughput           : %.1f GOPS on %d iso-area PEs\n",
              report.run.throughput_gops,
              session.value().accelerator().pe_count());
  std::printf("  Energy               : %.1f uJ, weights %.2f MB\n",
              report.energy.total_j() * 1e6,
              report.memory_footprint_bytes / (1024.0 * 1024.0));

  std::printf("\nDone. See examples/llm_inference.cpp for the full model.\n");
  return 0;
}
