// Quickstart: encode a vector into BBFP, compare its quantisation error
// against BFP, and run a bit-exact block dot product.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "quant/block.hpp"
#include "quant/dot.hpp"
#include "quant/error_model.hpp"

int main() {
  using namespace bbal;
  using quant::BlockFormat;

  std::printf("BBAL quickstart: the BBFP(4,2) data format\n");
  std::printf("==========================================\n\n");

  // 1. A block of values with one outlier — the distribution BFP struggles
  //    with (Fig. 1a of the paper).
  Rng rng(7);
  std::vector<double> block(32);
  for (auto& x : block) x = rng.gaussian(0.0, 1.0);
  block[5] = 24.0;  // outlier

  // 2. Quantise with BFP4 and BBFP(4,2) and compare round-trip error.
  const BlockFormat bfp4 = BlockFormat::bfp(4);
  const BlockFormat bbfp42 = BlockFormat::bbfp(4, 2);
  const double mse_bfp = quant::empirical_mse(block, bfp4);
  const double mse_bbfp = quant::empirical_mse(block, bbfp42);
  std::printf("Round-trip MSE on a 32-element block with one outlier:\n");
  std::printf("  BFP4      : %.5f\n", mse_bfp);
  std::printf("  BBFP(4,2) : %.5f   (%.1fx lower)\n\n", mse_bbfp,
              mse_bfp / mse_bbfp);

  // 3. Look inside the encoded block: shared exponent and flag bits.
  const quant::EncodedBlock enc = quant::encode_block(block, bbfp42);
  std::printf("BBFP(4,2) shared exponent: %d (max exponent minus m-o = 2)\n",
              enc.shared_exponent);
  std::printf("Flagged (high-group) elements: %zu of %zu\n\n",
              enc.flag_count(), enc.elems.size());

  // 4. A bit-exact quantised dot product (Eq. 7): the integer datapath and
  //    the dequantised reference agree exactly.
  std::vector<double> other(32);
  for (auto& x : other) x = rng.gaussian(0.0, 0.5);
  const quant::EncodedBlock enc_other = quant::encode_block(other, bbfp42);
  const quant::BlockDotResult dot = quant::dot_block(enc, enc_other);
  std::printf("Block dot product (integer datapath) : %.6f\n", dot.value);
  std::printf("Block dot product (decoded reference): %.6f\n",
              quant::dot_block_reference(enc, enc_other));
  std::printf("Integer accumulator: %lld x 2^%d, widest product: %d bits\n",
              static_cast<long long>(dot.accumulator), dot.scale_exponent,
              dot.max_product_bits);
  std::printf("\nDone. See examples/llm_inference.cpp for the full model.\n");
  return 0;
}
