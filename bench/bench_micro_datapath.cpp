// Google-benchmark microbenchmarks of the core datapath: block encode,
// block dot product, tensor quantisation, bit-exact GEMM and the nonlinear
// engine. Not a paper artefact — this tracks the library's own performance.
#include <benchmark/benchmark.h>

#include <vector>

#include "accel/gemm_executor.hpp"
#include "common/rng.hpp"
#include "llm/tensor.hpp"
#include "nl/engine.hpp"
#include "quant/block.hpp"
#include "quant/dot.hpp"

namespace {

using namespace bbal;

std::vector<double> random_block(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.heavy_tailed(1.0, 0.05, 15.0);
  return xs;
}

void BM_EncodeBlockBbfp42(benchmark::State& state) {
  const auto xs = random_block(1, 32);
  const auto fmt = quant::BlockFormat::bbfp(4, 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(quant::encode_block(xs, fmt));
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_EncodeBlockBbfp42);

void BM_EncodeBlockBfp8(benchmark::State& state) {
  const auto xs = random_block(2, 32);
  const auto fmt = quant::BlockFormat::bfp(8);
  for (auto _ : state)
    benchmark::DoNotOptimize(quant::encode_block(xs, fmt));
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_EncodeBlockBfp8);

void BM_BlockDot(benchmark::State& state) {
  const auto fmt = quant::BlockFormat::bbfp(4, 2);
  const auto ea = quant::encode_block(random_block(3, 32), fmt);
  const auto eb = quant::encode_block(random_block(4, 32), fmt);
  for (auto _ : state) benchmark::DoNotOptimize(quant::dot_block(ea, eb));
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_BlockDot);

void BM_QuantiseTensor(benchmark::State& state) {
  const auto xs = random_block(5, 4096);
  const auto fmt = quant::BlockFormat::bbfp(6, 3);
  std::vector<double> out(xs.size());
  for (auto _ : state)
    quant::quantise(xs, fmt, std::span<double>(out));
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_QuantiseTensor);

void BM_BitExactGemm(benchmark::State& state) {
  Rng rng(6);
  llm::Matrix a(16, 128), w(128, 16);
  for (float& v : a.flat()) v = static_cast<float>(rng.gaussian());
  for (float& v : w.flat()) v = static_cast<float>(rng.gaussian());
  const auto fmt = quant::BlockFormat::bbfp(4, 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(accel::execute_gemm_bit_exact(a, w, fmt, fmt));
  state.SetItemsProcessed(state.iterations() * 16 * 128 * 16);
}
BENCHMARK(BM_BitExactGemm);

void BM_NlSoftmax128(benchmark::State& state) {
  nl::NlUnitEngine engine(quant::BlockFormat::bbfp(10, 5));
  Rng rng(7);
  std::vector<float> base(128);
  for (auto& x : base) x = static_cast<float>(rng.gaussian(0.0, 3.0));
  for (auto _ : state) {
    std::vector<float> xs = base;
    engine.softmax(xs);
    benchmark::DoNotOptimize(xs.data());
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_NlSoftmax128);

}  // namespace

BENCHMARK_MAIN();
