// Regenerates Table IV: perplexity with quantised *nonlinear* units
// (linear layers stay FP32). BBFP(10,5) must track the FP32 baseline;
// BFP10 must blow up — the max-alignment failure on nonlinear inputs.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bbal/session.hpp"
#include "common/table.hpp"

int main() {
  using namespace bbal;
  using namespace bbal::llm;

  print_banner("Table IV: PPL with quantised nonlinear units");
  const char* tok_env = std::getenv("BBAL_EVAL_TOKENS");
  const int eval_tokens = tok_env != nullptr ? std::atoi(tok_env) : 320;

  const std::vector<ModelConfig> zoo = nonlinear_zoo();
  // Paper Table IV, column-per-model: FP32 / BBFP(10,5) x3 / BFP10 x3.
  const double paper[7][3] = {{5.68, 5.47, 6.14},   {5.74, 5.62, 6.24},
                              {5.71, 5.53, 6.21},   {5.81, 5.91, 6.34},
                              {67.31, 32.72, 69.95}, {33.21, 17.54, 31.30},
                              {99.28, 50.21, 102.35}};
  const std::vector<std::string> row_names = {
      "FP32 altogether",       "BBFP(10,5) softmax only",
      "BBFP(10,5) SILU only",  "BBFP(10,5) altogether",
      "BFP10 softmax only",    "BFP10 SILU only",
      "BFP10 altogether"};

  std::vector<std::shared_ptr<const PreparedModel>> prepared;
  for (const ModelConfig& cfg : zoo) {
    std::fprintf(stderr, "preparing %s...\n", cfg.name.c_str());
    prepared.push_back(prepare_shared(cfg, eval_tokens));
  }

  std::vector<std::string> header = {"Nonlinear scheme"};
  for (const auto& cfg : zoo) header.push_back(cfg.name);
  header.push_back("(paper row)");
  TextTable table(header);

  // Table IV rows as nonlinear strategy names: linear layers stay FP32,
  // the routing suffix picks which nonlinearity goes through the unit.
  auto run_row = [&](const std::string& name, int paper_idx,
                     const std::string& nl_strategy) {
    std::vector<std::string> row = {name};
    for (std::size_t i = 0; i < zoo.size(); ++i) {
      double ppl = 0.0;
      if (nl_strategy == "FP32") {
        ppl = prepared[i]->fp32_ppl;
      } else {
        auto session = Session::Builder()
                           .prepared(prepared[i])
                           .nonlinear(nl_strategy)
                           .build()
                           .expect("table4 session");
        ppl = session.evaluate().expect("table4 evaluate").perplexity;
      }
      row.push_back(TextTable::num(ppl, 2));
    }
    std::string pstr;
    for (int j = 0; j < 3; ++j)
      pstr += (j != 0 ? " / " : "") + TextTable::num(paper[paper_idx][j], 2);
    row.push_back(pstr);
    table.add_row(row);
  };

  run_row(row_names[0], 0, "FP32");
  run_row(row_names[1], 1, "BBFP-LUT(10,5)/softmax");
  run_row(row_names[2], 2, "BBFP-LUT(10,5)/silu");
  run_row(row_names[3], 3, "BBFP-LUT(10,5)");
  run_row(row_names[4], 4, "BFP-LUT(10)/softmax");
  run_row(row_names[5], 5, "BFP-LUT(10)/silu");
  run_row(row_names[6], 6, "BFP-LUT(10)");

  table.print();
  std::printf(
      "\nShape to check: every BBFP(10,5) row stays near FP32, every BFP10\n"
      "row inflates strongly (paper: >= 3x; mechanism in test_nl_engine).\n");
  return 0;
}
