// Regenerates Table IV: perplexity with quantised *nonlinear* units
// (linear layers stay FP32). BBFP(10,5) must track the FP32 baseline;
// BFP10 must blow up — the max-alignment failure on nonlinear inputs.
//
// All (scheme, model) cells run as one SweepRunner sweep; the FP32 row is
// the calibrated baseline each report carries (fp32_perplexity), so it
// costs nothing extra. Env: BBAL_EVAL_TOKENS, BBAL_THREADS.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bbal/sweep.hpp"
#include "common/table.hpp"

int main() {
  using namespace bbal;
  using namespace bbal::llm;

  print_banner("Table IV: PPL with quantised nonlinear units");
  const char* tok_env = std::getenv("BBAL_EVAL_TOKENS");
  const int eval_tokens = tok_env != nullptr ? std::atoi(tok_env) : 320;

  const std::vector<ModelConfig> zoo = nonlinear_zoo();
  // Paper Table IV, column-per-model: FP32 / BBFP(10,5) x3 / BFP10 x3.
  const double paper[7][3] = {{5.68, 5.47, 6.14},   {5.74, 5.62, 6.24},
                              {5.71, 5.53, 6.21},   {5.81, 5.91, 6.34},
                              {67.31, 32.72, 69.95}, {33.21, 17.54, 31.30},
                              {99.28, 50.21, 102.35}};
  const std::vector<std::string> row_names = {
      "FP32 altogether",       "BBFP(10,5) softmax only",
      "BBFP(10,5) SILU only",  "BBFP(10,5) altogether",
      "BFP10 softmax only",    "BFP10 SILU only",
      "BFP10 altogether"};
  // Table IV rows as nonlinear strategy names: linear layers stay FP32,
  // the routing suffix picks which nonlinearity goes through the unit.
  const std::vector<std::string> nl_strategies = {
      "BBFP-LUT(10,5)/softmax", "BBFP-LUT(10,5)/silu", "BBFP-LUT(10,5)",
      "BFP-LUT(10)/softmax",    "BFP-LUT(10)/silu",    "BFP-LUT(10)"};

  SweepRunner sweep;
  sweep.eval_tokens(eval_tokens);
  for (const std::string& nl : nl_strategies)
    for (const ModelConfig& cfg : zoo) {
      SweepRunner::Item item;
      item.config = cfg;
      item.nonlinear = nl;
      sweep.add(std::move(item));
    }

  std::fprintf(stderr, "sweeping %zu cells over %zu models...\n",
               sweep.size(), zoo.size());
  const SweepRunner::SweepResult result = sweep.run();
  if (!result.all_ok()) {
    std::fprintf(stderr, "sweep failed: %s\n", result.first_error().c_str());
    return 1;
  }
  std::fprintf(stderr, "sweep: %d threads, %.1fs wall\n", result.threads,
               result.wall_seconds);

  std::vector<std::string> header = {"Nonlinear scheme"};
  for (const auto& cfg : zoo) header.push_back(cfg.name);
  header.push_back("(paper row)");
  TextTable table(header);

  auto paper_cell = [&](int paper_idx) {
    std::string pstr;
    for (int j = 0; j < 3; ++j)
      pstr += (j != 0 ? " / " : "") + TextTable::num(paper[paper_idx][j], 2);
    return pstr;
  };

  // FP32 row: the calibrated baseline carried by every report.
  {
    std::vector<std::string> row = {row_names[0]};
    for (std::size_t i = 0; i < zoo.size(); ++i)
      row.push_back(
          TextTable::num(result.reports[i].value().fp32_perplexity, 2));
    row.push_back(paper_cell(0));
    table.add_row(row);
  }
  for (std::size_t s = 0; s < nl_strategies.size(); ++s) {
    std::vector<std::string> row = {row_names[s + 1]};
    for (std::size_t i = 0; i < zoo.size(); ++i)
      row.push_back(TextTable::num(
          result.reports[s * zoo.size() + i].value().perplexity, 2));
    row.push_back(paper_cell(static_cast<int>(s) + 1));
    table.add_row(row);
  }

  table.print();
  std::printf(
      "\nShape to check: every BBFP(10,5) row stays near FP32, every BFP10\n"
      "row inflates strongly (paper: >= 3x; mechanism in test_nl_engine).\n");
  return 0;
}
