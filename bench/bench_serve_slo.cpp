// SLO / capacity-planning study: where does the serving engine's
// goodput knee sit as offered load rises past capacity?
//
// The open-loop sweep serves one shared-prefix Poisson workload
// (serve::shared_prefix_trace + materialize_trace — the recorded-trace
// path record_slo also uses) at rising arrival rates on a BBFP(4,2)
// engine priced by the iso-area accelerator. Below the knee the engine
// tracks offered load (queues empty, goodput 1.0); past it the queue —
// and therefore TTFT, which includes queueing delay — grows without
// bound while achieved throughput plateaus at capacity. A second table
// holds the overload point fixed and swaps the scheduler policy: prefix
// sharing effectively raises capacity (shared prompt pages mean fewer
// prefill ticks per request), which is why prefix-aware survives a load
// that breaks fifo.
//
// All metrics are on the simulated clock — deterministic at any
// BBAL_THREADS. Correctness gates, exit non-zero on failure:
//  1. the saturation knee exists: the top load's goodput_under_slo is
//     < 1.0 and strictly below the low-load point's, and its p99 TTFT is
//     >= 2x the low-load p99 TTFT;
//  2. open-loop accounting is sane at every point: clock_ticks >=
//     engine_steps, offered load is monotone in the configured rate, and
//     token streams hash identically at every load (arrival times must
//     never change what is generated, only when).
//
// Env: BBAL_MODEL (default Llama-7B), BBAL_EVAL_TOKENS (default 128),
//      BBAL_SLO_REQUESTS (default 24), BBAL_SLO_NEW_TOKENS (default 16),
//      BBAL_SLO_BATCH (default 4), BBAL_THREADS (step parallelism).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bbal/registry.hpp"
#include "common/table.hpp"
#include "serve/engine.hpp"
#include "serve/load.hpp"
#include "serve/policy.hpp"
#include "serve/trace.hpp"

namespace {

using namespace bbal;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

}  // namespace

int main() {
  print_banner("Serving: goodput under SLO vs offered load");

  const char* model_env = std::getenv("BBAL_MODEL");
  const std::string model_name = model_env != nullptr ? model_env : "Llama-7B";
  const int eval_tokens = env_int("BBAL_EVAL_TOKENS", 128);
  const int num_requests = env_int("BBAL_SLO_REQUESTS", 24);
  const int new_tokens = env_int("BBAL_SLO_NEW_TOKENS", 16);
  const int max_batch = env_int("BBAL_SLO_BATCH", 4);
  constexpr std::uint64_t kSeed = 2024;
  constexpr int kGroups = 4;
  constexpr int kPrefixLen = 16;
  const serve::Slo slo{/*ttft_seconds=*/0.010, /*inter_token_seconds=*/0.005};
  const std::vector<double> loads = {0.02, 0.04, 0.08, 0.16, 0.32};

  std::fprintf(stderr, "preparing %s (%d eval tokens)...\n",
               model_name.c_str(), eval_tokens);
  const auto prepared = prepare_shared(model_name, eval_tokens);
  const auto spec = quant::StrategySpec::parse("BBFP(4,2)").expect("strategy");

  const auto serve_at = [&](double load, const std::string& policy) {
    serve::ArrivalSpec arrival;
    arrival.kind = serve::ArrivalSpec::Kind::kPoisson;
    arrival.rate = load;
    arrival.seed = kSeed;
    const auto ticks = serve::generate_arrivals(arrival, num_requests);
    const auto entries = serve::shared_prefix_trace(
        num_requests, ticks, kGroups, kPrefixLen, /*suffix_len=*/4,
        new_tokens);
    const auto requests =
        serve::materialize_trace(prepared->config, entries, kSeed);
    serve::Engine::Options options;
    options.max_batch = max_batch;
    options.policy = policy;
    options.accelerator =
        accel::make_iso_area_config(spec, /*pe_area_budget_um2=*/150000.0)
            .expect("iso-area config");
    options.slo = slo;
    auto engine = serve::Engine::create(prepared, spec,
                                        quant::StrategySpec::fp32(),
                                        std::move(options))
                      .expect("engine");
    for (const serve::Request& req : requests) engine.submit(req);
    return engine.run();
  };

  // --- Knee chart: offered load sweep under fifo ---
  std::printf("\n%d requests (4 groups, %d-token shared prefix, x%d "
              "tokens), batch %d, BBFP(4,2), fifo, SLO ttft<=%.0fms "
              "itl<=%.0fms:\n",
              num_requests, kPrefixLen, new_tokens, max_batch,
              slo.ttft_seconds * 1e3, slo.inter_token_seconds * 1e3);
  TextTable table({"Load req/tick", "Offered tok/tick", "Achieved tok/tick",
                   "Queue p99", "p99 TTFT ms", "p99 ITL ms", "Goodput",
                   "Hash"});
  std::vector<serve::Report> sweep;
  for (const double load : loads) {
    sweep.push_back(serve_at(load, "fifo"));
    const serve::Report& r = sweep.back();
    table.add_row({TextTable::num(load, 2),
                   TextTable::num(r.offered_tokens_per_tick, 3),
                   TextTable::num(r.throughput_tokens_per_tick, 3),
                   TextTable::num(r.queue_delay_p99_ticks, 1),
                   TextTable::num(r.p99_ttft_seconds * 1e3, 3),
                   TextTable::num(r.p99_inter_token_seconds * 1e3, 3),
                   TextTable::num(r.goodput_under_slo, 3),
                   std::to_string(r.stream_hash)});
  }
  table.print();

  // --- Policy comparison at the overload point ---
  std::printf("\nPolicies at the overload point (%.2f req/tick):\n",
              loads.back());
  TextTable policy_table({"Policy", "Queue p99", "p99 TTFT ms", "Goodput",
                          "Prefix hits", "Hash"});
  for (const std::string& policy : serve::policy_names()) {
    const serve::Report r = serve_at(loads.back(), policy);
    policy_table.add_row({policy, TextTable::num(r.queue_delay_p99_ticks, 1),
                          TextTable::num(r.p99_ttft_seconds * 1e3, 3),
                          TextTable::num(r.goodput_under_slo, 3),
                          TextTable::num(r.prefix_hit_rate, 3),
                          std::to_string(r.stream_hash)});
  }
  policy_table.print();

  int failures = 0;
  const serve::Report& low = sweep.front();
  const serve::Report& top = sweep.back();

  // --- Gate 1: the saturation knee exists ---
  const bool goodput_degrades = top.goodput_under_slo < 1.0 &&
                                top.goodput_under_slo < low.goodput_under_slo;
  const bool ttft_blows_up =
      top.p99_ttft_seconds >= 2.0 * low.p99_ttft_seconds;
  std::printf("\nKnee check: goodput %.3f -> %.3f, p99 TTFT %.3fms -> "
              "%.3fms (%.1fx)\n",
              low.goodput_under_slo, top.goodput_under_slo,
              low.p99_ttft_seconds * 1e3, top.p99_ttft_seconds * 1e3,
              low.p99_ttft_seconds > 0.0
                  ? top.p99_ttft_seconds / low.p99_ttft_seconds
                  : 0.0);
  std::printf("  %s\n", goodput_degrades && ttft_blows_up ? "PASS" : "FAIL");
  failures += goodput_degrades && ttft_blows_up ? 0 : 1;

  // --- Gate 2: open-loop accounting sanity ---
  bool sane = true;
  double prev_offered = 0.0;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const serve::Report& r = sweep[i];
    if (r.clock_ticks < r.engine_steps) {
      std::fprintf(stderr, "  load %.2f: clock %lld < steps %lld\n", loads[i],
                   static_cast<long long>(r.clock_ticks),
                   static_cast<long long>(r.engine_steps));
      sane = false;
    }
    if (r.offered_tokens_per_tick < prev_offered) {
      std::fprintf(stderr, "  load %.2f: offered load not monotone\n",
                   loads[i]);
      sane = false;
    }
    prev_offered = r.offered_tokens_per_tick;
    if (r.stream_hash != low.stream_hash) {
      std::fprintf(stderr,
                   "  load %.2f: stream hash %u != %u — arrival times "
                   "changed the generated tokens\n",
                   loads[i], r.stream_hash, low.stream_hash);
      sane = false;
    }
  }
  std::printf("\nOpen-loop accounting check (clock >= steps, offered "
              "monotone, hashes load-invariant):\n  %s\n",
              sane ? "PASS" : "FAIL");
  failures += sane ? 0 : 1;

  return failures == 0 ? 0 : 1;
}
