// Ablations on the design choices DESIGN.md calls out (not a paper table):
//  A. sparse-adder saving vs carry-chain width (the Eq. 11-14 trade),
//  B. block size vs quantisation error (why the paper picks 32),
//  C. rounding mode (RNE vs truncate),
//  D. overflow policy under the aggressive Max-3 strategy.
#include <cstdio>
#include <vector>

#include "arith/sparse_adder.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "quant/error_model.hpp"

int main() {
  using namespace bbal;
  using quant::BlockFormat;

  print_banner("Ablation A: sparse-adder saving vs chain width");
  {
    TextTable table({"Adder width", "Chain bits", "Full-adder area",
                     "Sparse area", "Saving"});
    for (const auto& [w, c] : std::vector<std::pair<int, int>>{
             {10, 2}, {12, 4}, {14, 4}, {16, 6}, {18, 6}, {24, 10}}) {
      const arith::AdderSavings s = arith::adder_savings(w, c);
      table.add_row({std::to_string(w), std::to_string(c),
                     TextTable::num(s.full_adder_area, 1),
                     TextTable::num(s.sparse_adder_area, 1),
                     TextTable::num(s.saving_fraction * 100.0, 1) + "%"});
    }
    table.print();
    std::printf("(paper cites ~15%% for the 12-bit / 4-chain case)\n");
  }

  Rng rng(41);
  std::vector<double> data(16384);
  for (auto& x : data) x = rng.heavy_tailed(1.0, 0.01, 12.0);

  print_banner("Ablation B: block size vs MSE (BBFP(4,2) and BFP4)");
  {
    TextTable table({"Block", "BBFP(4,2) MSE", "BFP4 MSE", "BBFP advantage",
                     "Equiv bits BBFP"});
    for (const int bs : {8, 16, 32, 64, 128}) {
      const double bbfp =
          quant::empirical_mse(data, BlockFormat::bbfp(4, 2, bs));
      const double bfp = quant::empirical_mse(data, BlockFormat::bfp(4, bs));
      table.add_row(
          {std::to_string(bs), TextTable::num(bbfp, 6), TextTable::num(bfp, 6),
           TextTable::num(bfp / bbfp, 2) + "x",
           TextTable::num(BlockFormat::bbfp(4, 2, bs).equivalent_bits(), 2)});
    }
    table.print();
    std::printf("(bigger blocks amortise the exponent but widen the range\n"
                " each exponent must cover: error grows, BBFP degrades\n"
                " more slowly than BFP — block 32 is the sweet spot)\n");
  }

  print_banner("Ablation C: rounding mode");
  {
    TextTable table({"Format", "RNE MSE", "Truncate MSE", "Penalty"});
    for (const auto& fmt :
         {BlockFormat::bbfp(4, 2), BlockFormat::bbfp(6, 3),
          BlockFormat::bfp(6)}) {
      BlockFormat trunc = fmt;
      trunc.rounding = quant::Rounding::kTruncate;
      const double rne = quant::empirical_mse(data, fmt);
      const double tr = quant::empirical_mse(data, trunc);
      table.add_row({fmt.name(), TextTable::num(rne, 6),
                     TextTable::num(tr, 6),
                     TextTable::num(tr / rne, 2) + "x"});
    }
    table.print();
  }

  print_banner("Ablation D: overflow policy under Max-3 (delta = -1)");
  {
    TextTable table({"Policy", "MSE under Max-3", "vs Eq.9 strategy"});
    const double base =
        quant::empirical_mse(data, BlockFormat::bbfp(4, 2));
    BlockFormat clip = BlockFormat::bbfp(4, 2).with_delta(-1);
    BlockFormat sat = clip;
    sat.overflow = quant::OverflowPolicy::kSaturate;
    const double mse_clip = quant::empirical_mse(data, clip);
    const double mse_sat = quant::empirical_mse(data, sat);
    table.add_row({"Clip (hardware)", TextTable::num(mse_clip, 5),
                   TextTable::num(mse_clip / base, 1) + "x"});
    table.add_row({"Saturate", TextTable::num(mse_sat, 5),
                   TextTable::num(mse_sat / base, 1) + "x"});
    table.print();
    std::printf("(both blow up vs Eq. 9 — Fig. 3's Max-3 lesson — but the\n"
                " Clip() bit-window semantics are the harsher failure)\n");
  }
  return 0;
}
