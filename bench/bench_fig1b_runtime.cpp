// Regenerates Fig. 1(b): linear vs nonlinear runtime of the decode stage as
// the sequence (context) length grows, on a conventional accelerator
// (FP16 PE array + FP32 special-function unit). The nonlinear share grows
// with context length — the paper's motivation for the BBFP nonlinear unit.
// A second table shows the same workload with the BBAL 16-lane unit.
#include <cstdio>
#include <vector>

#include "accel/simulator.hpp"
#include "bbal/session.hpp"
#include "common/table.hpp"
#include "llm/model.hpp"
#include "nl/unit_cost.hpp"

namespace {

/// FP32 special-function unit of a conventional accelerator: 8 lanes,
/// iterative exp/div, unpipelined (the baseline of Fig. 1(b)).
bbal::nl::NlUnitCost fp32_sfu() {
  bbal::nl::NlUnitCost c;
  c.name = "FP32 SFU";
  c.num_format = "FP32";
  c.lanes = 8;
  c.pipelined = false;
  c.fixed_latency_cycles = 40.0;  // exp series + divide per batch
  c.freq_ghz = 1.0;
  return c;
}

double nl_time_ms(const bbal::nl::NlUnitCost& unit,
                  const std::vector<bbal::accel::NlOp>& ops, int tokens) {
  double cycles = 0.0;
  for (const bbal::accel::NlOp& op : ops)
    cycles += static_cast<double>(op.vectors) *
              unit.softmax_cycles(static_cast<int>(op.width));
  return cycles / (unit.freq_ghz * 1e9) * 1e3 * tokens;
}

}  // namespace

int main() {
  using namespace bbal;
  using namespace bbal::accel;

  print_banner("Fig. 1(b): decode-stage linear vs nonlinear runtime");

  const llm::ModelConfig model = llm::config_by_name("Llama-7B");
  AcceleratorConfig cfg;
  cfg.array_rows = cfg.array_cols = 32;

  const int tokens_per_point = 64;  // decode steps aggregated per row

  TextTable table({"Seq len", "Linear ms", "Nonlinear ms (FP32 SFU)",
                   "NL share", "Nonlinear ms (BBAL unit)", "NL share"});
  const nl::NlUnitCost sfu = fp32_sfu();
  const nl::NlUnitCost ours = nl::bbal_nl_unit_cost(16);

  double first_ratio = 0.0;
  double last_ratio = 0.0;
  for (const int seq : {128, 256, 512, 1024, 2048, 4096}) {
    // Cost-only session: one decode step on a conventional FP16 array.
    auto session = bbal::Session::Builder()
                       .model(model)
                       .matmul("FP16")
                       .accelerator(cfg)
                       .skip_accuracy()
                       .workload_decode(seq)
                       .build()
                       .expect("fig1b session");
    const auto report = session.evaluate().expect("fig1b evaluate");
    const double linear_ms = report.run.seconds * 1e3 * tokens_per_point;
    const std::vector<NlOp> nl_ops = decode_step_nl_ops(model, seq);
    const double sfu_ms = nl_time_ms(sfu, nl_ops, tokens_per_point);
    const double ours_ms = nl_time_ms(ours, nl_ops, tokens_per_point);
    const double share_sfu = sfu_ms / (linear_ms + sfu_ms);
    const double share_ours = ours_ms / (linear_ms + ours_ms);
    table.add_row({std::to_string(seq), TextTable::num(linear_ms, 3),
                   TextTable::num(sfu_ms, 3),
                   TextTable::num(share_sfu * 100.0, 1) + "%",
                   TextTable::num(ours_ms, 3),
                   TextTable::num(share_ours * 100.0, 1) + "%"});
    if (seq == 128) first_ratio = sfu_ms / linear_ms;
    if (seq == 4096) last_ratio = sfu_ms / linear_ms;
  }
  table.print();

  std::printf(
      "\nShape check: nonlinear/linear ratio grows from %.2f at seq 128 to "
      "%.2f at seq 4096\n(the paper annotates this growth as 1.87x -> "
      "3.53x); the BBAL unit keeps the share small.\n",
      first_ratio, last_ratio);
  return 0;
}
