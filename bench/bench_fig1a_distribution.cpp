// Regenerates Fig. 1(a): weight and activation distributions of the
// OPT-6.7B-class model — Gaussian bulk, average outliers ~10x, extremes
// ~100x, the structure that breaks plain INT/BFP quantisation.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "llm/capture.hpp"

namespace {

void print_histogram(const std::string& label,
                     const std::vector<double>& values, double max_value,
                     std::size_t bins) {
  const std::vector<std::size_t> counts =
      bbal::abs_histogram(values, max_value, bins);
  std::size_t peak = 1;
  for (const std::size_t c : counts) peak = std::max(peak, c);
  std::printf("\n%s (|value| histogram, %zu samples)\n", label.c_str(),
              values.size());
  for (std::size_t b = 0; b < bins; ++b) {
    const double lo = max_value * static_cast<double>(b) / bins;
    const int width = static_cast<int>(
        60.0 * std::log1p(static_cast<double>(counts[b])) /
        std::log1p(static_cast<double>(peak)));
    std::printf("  %6.2f | %-60s %zu\n", lo,
                std::string(static_cast<std::size_t>(width), '#').c_str(),
                counts[b]);
  }
}

}  // namespace

int main() {
  using namespace bbal;
  using namespace bbal::llm;

  print_banner("Fig. 1(a): OPT-6.7B weight/activation distribution");
  const CaptureResult capture =
      capture_layer_data(config_by_name("OPT-6.7B"), 160);

  // Pool across layer kinds.
  std::vector<double> acts;
  std::vector<double> weights;
  for (const auto& [kind, vals] : capture.activations)
    acts.insert(acts.end(), vals.begin(), vals.end());
  for (const auto& [kind, vals] : capture.weights)
    weights.insert(weights.end(), vals.begin(), vals.end());

  print_histogram("Activations", acts, 16.0, 16);
  print_histogram("Weights", weights, 1.0, 16);

  TextTable table({"Tensor", "mean|x|", "p99|x|", "max|x|", "avg-outlier/mean",
                   "extreme/mean"});
  for (const auto& [label, vals] :
       {std::pair<std::string, std::vector<double>*>{"Activations", &acts},
        {"Weights", &weights}}) {
    const double m = mean_abs(*vals);
    const double p99 = abs_percentile(*vals, 99.0);
    const double mx = max_abs(*vals);
    table.add_row({label, TextTable::num(m, 4), TextTable::num(p99, 3),
                   TextTable::num(mx, 2), TextTable::num(p99 / m, 1) + "x",
                   TextTable::num(mx / m, 1) + "x"});
  }
  std::printf("\n");
  table.print();
  std::printf(
      "\nPaper's reading of Fig. 1(a): average outliers ~10x the bulk,\n"
      "extremes ~100x — hard to capture with INT grids.\n");
  return 0;
}
