// Chunked-prefill study: what consuming prompts in (chunk x d_model)
// chunks buys over the one-token-per-tick lockstep, and what it must NOT
// cost — decode smoothness and bit-identity (docs/PREFILL.md walks
// through every number printed here).
//
// The accelerator's decode-step cost is dominated by streaming the weight
// matrices from DRAM, which is independent of the GEMM's M dimension
// (accel::simulate_gemm). A prompt consumed one token per tick re-streams
// every weight once per token; a chunk of C tokens streams them once per
// C tokens — so TTFT in ticks falls from P to ceil(P/C) while each tick
// barely gets more expensive. That amortisation is the physical content
// of the TTFT gate below.
//
// Correctness gates (exit non-zero on failure):
//  1. TTFT-in-ticks: a closed-loop request with a BBAL_PREFILL_LONG-token
//     prompt served at chunk C reaches its first token within
//     ceil(P/C) + 1 engine ticks of admission (first_token_tick -
//     admit_tick; exact tick arithmetic, no tolerance).
//  2. Bit-identity: the long-prompt open-loop mix served at chunk 1
//     (legacy lockstep), chunk C and chunk 4C produces identical token
//     streams and stream hashes — chunking is a scheduling change, never
//     an arithmetic change (the decoder's per-row serial accumulations
//     are position-indexed, not tick-indexed).
//  3. Decode flatness: with the per-tick prefill budget engaged, the
//     decode batch's p99 inter-token gap under the long-prompt mix stays
//     within 1.25x the same engine's p99 on the short-prompt-only mix —
//     streaming a long prompt in must not stall everyone else's decode.
//
// The frontier table sweeps the chunk size over the long-prompt mix
// (budget = chunk): mean/p99 TTFT and p99 inter-token gap in simulated
// seconds, mixed ticks, total ticks. All on the simulated clock —
// bit-identical across hosts and BBAL_THREADS.
//
// Env: BBAL_MODEL (default Llama-7B), BBAL_EVAL_TOKENS (default 128),
//      BBAL_SERVE_REQUESTS (default 8), BBAL_SERVE_NEW_TOKENS (default
//      16), BBAL_SERVE_BATCH (default 4), BBAL_PREFILL_LONG (default 96,
//      the long prompt length), BBAL_PREFILL_CHUNK (default 8, gate 1's
//      C), BBAL_SERVE_LONG_EVERY (default 4), BBAL_THREADS.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bbal/registry.hpp"
#include "common/table.hpp"
#include "serve/engine.hpp"
#include "serve/load.hpp"
#include "serve/workload.hpp"

namespace {

using namespace bbal;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

/// The study's engine: BBFP(4,2) matmul on the iso-area accelerator,
/// fifo admission, chunked prefill at (chunk, budget).
serve::Engine make_engine(
    const std::shared_ptr<const llm::PreparedModel>& prepared, int max_batch,
    int chunk, int budget) {
  serve::Engine::Options options;
  options.max_batch = max_batch;
  options.prefill_chunk = chunk;
  options.prefill_budget = budget;
  const auto spec = quant::StrategySpec::parse("BBFP(4,2)").expect("strategy");
  options.accelerator =
      accel::make_iso_area_config(spec, /*pe_area_budget_um2=*/150000.0)
          .expect("iso-area config");
  return serve::Engine::create(prepared, spec, quant::StrategySpec::fp32(),
                               std::move(options))
      .expect("engine");
}

serve::Report serve_mix(serve::Engine& engine,
                        const std::vector<serve::Request>& requests) {
  for (const serve::Request& req : requests) engine.submit(req);
  return engine.run();
}

}  // namespace

int main() {
  print_banner("Serving: chunked prefill — TTFT vs decode flatness");

  const char* model_env = std::getenv("BBAL_MODEL");
  const std::string model_name = model_env != nullptr ? model_env : "Llama-7B";
  const int eval_tokens = env_int("BBAL_EVAL_TOKENS", 128);
  const int num_requests = env_int("BBAL_SERVE_REQUESTS", 8);
  const int new_tokens = env_int("BBAL_SERVE_NEW_TOKENS", 16);
  const int max_batch = env_int("BBAL_SERVE_BATCH", 4);
  const int long_prompt = env_int("BBAL_PREFILL_LONG", 96);
  const int chunk = env_int("BBAL_PREFILL_CHUNK", 8);
  const int long_every = env_int("BBAL_SERVE_LONG_EVERY", 4);

  std::fprintf(stderr, "preparing %s (%d eval tokens)...\n",
               model_name.c_str(), eval_tokens);
  const auto prepared = prepare_shared(model_name, eval_tokens);

  // The prompt-heavy open-loop mix every multi-request section serves:
  // every long_every-th prompt is long_prompt tokens, Poisson arrivals.
  std::vector<serve::Request> mix = serve::long_prompt_requests(
      prepared->config, num_requests, /*base_prompt_len=*/12, long_prompt,
      long_every, new_tokens);
  {
    serve::ArrivalSpec arrival;
    arrival.kind = serve::ArrivalSpec::Kind::kPoisson;
    arrival.rate = 0.05;
    arrival.seed = 2024;
    const auto ticks = serve::generate_arrivals(arrival, num_requests);
    serve::stamp_arrivals(mix, ticks);
  }

  int failures = 0;

  // --- Gate 1: TTFT in ticks for one long prompt ---
  // Closed loop, one request, no contention: the prompt must be consumed
  // in ceil(P/C) prefill ticks, the last of which emits the first token.
  // The +1 leaves room for an admission tick; anything beyond that means
  // the engine stopped chunking.
  const int ttft_bound = (long_prompt + chunk - 1) / chunk + 1;
  {
    serve::Request lone;
    lone.max_new_tokens = new_tokens;
    lone.prompt = serve::long_prompt_requests(prepared->config, 1,
                                              /*base_prompt_len=*/12,
                                              long_prompt, /*long_every=*/1,
                                              new_tokens)[0]
                      .prompt;
    serve::Engine engine =
        make_engine(prepared, max_batch, chunk, /*budget=*/0);
    const serve::Report report = serve_mix(engine, {lone});
    const serve::RequestResult& result = report.results.front();
    const std::int64_t ttft_ticks =
        result.first_token_tick - result.admit_tick;
    const bool ok = result.ok && result.first_token_tick >= 0 &&
                    ttft_ticks <= ttft_bound;
    std::printf("TTFT gate: %d-token prompt at chunk %d -> first token "
                "%lld ticks after admission (bound %d): %s\n",
                long_prompt, chunk, static_cast<long long>(ttft_ticks),
                ttft_bound, ok ? "PASS" : "FAIL");
    failures += ok ? 0 : 1;
  }

  // --- Gate 2: chunked streams are bit-identical to the lockstep ---
  {
    serve::Engine lockstep = make_engine(prepared, max_batch, 1, 0);
    serve::Engine chunked = make_engine(prepared, max_batch, chunk, chunk);
    serve::Engine wide = make_engine(prepared, max_batch, 4 * chunk,
                                     4 * chunk);
    const serve::Report base = serve_mix(lockstep, mix);
    const serve::Report mid = serve_mix(chunked, mix);
    const serve::Report big = serve_mix(wide, mix);
    int mismatches = 0;
    for (std::size_t i = 0; i < mix.size(); ++i) {
      if (mid.results[i].generated != base.results[i].generated ||
          big.results[i].generated != base.results[i].generated) {
        ++mismatches;
        std::fprintf(stderr, "  request %zu: chunked stream diverged\n", i);
      }
    }
    const bool ok = mismatches == 0 && mid.stream_hash == base.stream_hash &&
                    big.stream_hash == base.stream_hash;
    std::printf("Bit-identity gate: chunk 1 vs %d vs %d on the long-prompt "
                "mix -> hashes %u / %u / %u: %s\n",
                chunk, 4 * chunk, base.stream_hash, mid.stream_hash,
                big.stream_hash, ok ? "PASS" : "FAIL");
    failures += ok ? 0 : 1;
  }

  // --- Gate 3: decode p99 stays flat while long prompts stream in ---
  // Same engine configuration on two mixes: with and without the long
  // prompts (long_every = 0 keeps every prompt short). The budget bounds
  // each tick's extra prefill work, and the accelerator's M-independent
  // weight streaming makes a mixed tick cost about a decode tick — so the
  // long mix's p99 inter-token gap must stay within 1.25x the short one's.
  {
    std::vector<serve::Request> short_mix = serve::long_prompt_requests(
        prepared->config, num_requests, /*base_prompt_len=*/12, long_prompt,
        /*long_every=*/0, new_tokens);
    {
      serve::ArrivalSpec arrival;
      arrival.kind = serve::ArrivalSpec::Kind::kPoisson;
      arrival.rate = 0.05;
      arrival.seed = 2024;
      const auto ticks = serve::generate_arrivals(arrival, num_requests);
      serve::stamp_arrivals(short_mix, ticks);
    }
    serve::Engine with_long = make_engine(prepared, max_batch, chunk, chunk);
    serve::Engine without = make_engine(prepared, max_batch, chunk, chunk);
    const serve::Report long_report = serve_mix(with_long, mix);
    const serve::Report short_report = serve_mix(without, short_mix);
    const double ratio =
        short_report.p99_inter_token_seconds > 0.0
            ? long_report.p99_inter_token_seconds /
                  short_report.p99_inter_token_seconds
            : 0.0;
    const bool ok = short_report.p99_inter_token_seconds > 0.0 &&
                    ratio <= 1.25;
    std::printf("Decode-flatness gate: p99 inter-token %.4gs with long "
                "prompts vs %.4gs without (ratio %.3f, bound 1.25): %s\n",
                long_report.p99_inter_token_seconds,
                short_report.p99_inter_token_seconds, ratio,
                ok ? "PASS" : "FAIL");
    failures += ok ? 0 : 1;
  }

  // --- Frontier: chunk size vs TTFT and decode smoothness ---
  std::printf("\nChunk sweep over the long-prompt mix (budget = chunk, "
              "BBFP(4,2), batch %d):\n",
              max_batch);
  TextTable table({"Chunk", "Ticks", "Mixed", "TTFT ms", "p99 TTFT ms",
                   "p99 ITL ms", "Hash"});
  for (const int c : {1, 4, 8, 16, 32}) {
    serve::Engine engine =
        make_engine(prepared, max_batch, c, c > 1 ? c : 0);
    const serve::Report report = serve_mix(engine, mix);
    table.add_row({std::to_string(c), std::to_string(report.engine_steps),
                   std::to_string(report.mixed_ticks),
                   TextTable::num(report.ttft_mean_seconds * 1e3, 3),
                   TextTable::num(report.p99_ttft_seconds * 1e3, 3),
                   TextTable::num(report.p99_inter_token_seconds * 1e3, 3),
                   std::to_string(report.stream_hash)});
  }
  table.print();

  return failures == 0 ? 0 : 1;
}
