// Regenerates Fig. 3: activation quantisation MSE under different shared-
// exponent selections for BBFP(4,2) — Max, Max-1, Max-2 (proposed, Eq. 9),
// Max-3 — against BFP4, per layer kind (Query/Key/Value/Proj/FC1/FC2).
//
// Expected shape: Max-2 lowest; Max-1 worse (keeps larger exponents);
// Max-3 catastrophic (MSB shifted out of the window); BFP4 worst overall.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "llm/capture.hpp"
#include "quant/error_model.hpp"

int main() {
  using namespace bbal;
  using namespace bbal::llm;
  using quant::BlockFormat;

  print_banner("Fig. 3: shared-exponent selection vs activation MSE");
  const CaptureResult capture =
      capture_layer_data(config_by_name("OPT-6.7B"), 160);

  // Strategies: delta is relative to E_s = max - (m - o).
  struct Strategy {
    std::string label;
    BlockFormat fmt;
  };
  const BlockFormat base = BlockFormat::bbfp(4, 2);
  const std::vector<Strategy> strategies = {
      {"Max-2 (Eq.9)", base.with_delta(0)},
      {"Max-1", base.with_delta(1)},
      {"Max-3", base.with_delta(-1)},
      {"Max (=BFP-style)", base.with_delta(2)},
      {"BFP4", BlockFormat::bfp(4)},
  };

  const std::vector<std::string> kinds = {"Query", "Key",  "Value",
                                          "Proj",  "FC1",  "FC2"};
  std::vector<std::string> header = {"Strategy"};
  for (const auto& k : kinds) header.push_back(k);
  header.push_back("Avg");
  TextTable table(header);

  std::map<std::string, double> avg;
  for (const Strategy& s : strategies) {
    std::vector<std::string> row = {s.label};
    double acc = 0.0;
    for (const std::string& kind : kinds) {
      const auto& data = capture.activations.at(kind);
      // MSE scaled up (the paper's y-axis is in arbitrary absolute units).
      const double mse = quant::empirical_mse(data, s.fmt) * 1e4;
      row.push_back(TextTable::num(mse, 1));
      acc += mse;
    }
    avg[s.label] = acc / static_cast<double>(kinds.size());
    row.push_back(TextTable::num(avg[s.label], 1));
    table.add_row(row);
  }
  table.print();

  std::printf("\nShape checks:\n");
  std::printf("  Max-2 < Max-1:        %s\n",
              avg["Max-2 (Eq.9)"] < avg["Max-1"] ? "PASS" : "CHECK");
  std::printf("  Max-2 < BFP4:         %s\n",
              avg["Max-2 (Eq.9)"] < avg["BFP4"] ? "PASS" : "CHECK");
  std::printf("  Max-3 catastrophic:   %s (%.1fx the proposed)\n",
              avg["Max-3"] > 2.0 * avg["Max-2 (Eq.9)"] ? "PASS" : "CHECK",
              avg["Max-3"] / avg["Max-2 (Eq.9)"]);
  return 0;
}
