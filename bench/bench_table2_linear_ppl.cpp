// Regenerates Table II: perplexity of the 12-model zoo under every linear
// quantisation strategy (weights + activations, no calibration for the
// block formats). The FP32 row is calibrated to the paper's FP16 row
// (DESIGN.md substitution #1); every other number is measured.
//
// All strategy x model cells run as one SweepRunner sweep: models are
// prepared once and shared, cells fan out over the thread pool
// (BBAL_THREADS, default hardware_concurrency), and results come back in
// declaration order so the table is identical at any thread count.
//
// Env: BBAL_EVAL_TOKENS (default 320), BBAL_MODELS (comma list to subset),
//      BBAL_THREADS (sweep parallelism).
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bbal/registry.hpp"
#include "bbal/sweep.hpp"
#include "common/table.hpp"

namespace {

using namespace bbal;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

/// Paper Table II values for side-by-side reporting ([row][model], -1 = N/A).
const std::vector<std::string> kModels = {
    "Llama-1B", "Llama-3B", "Llama-7B", "Llama-13B", "Llama-30B",
    "Llama-65B", "OPT-1.3B", "OPT-2.7B", "OPT-6.7B", "OPT-13B",
    "OPT-30B",  "OPT-66B"};

const std::map<std::string, std::vector<double>> kPaper = {
    {"FP16", {9.88, 7.87, 5.47, 5.09, 4.10, 3.53, 14.62, 12.47, 10.86, 10.12,
              9.56, 9.34}},
    {"Oltron", {-1, -1, 14.67, 9.48, 7.51, 6.69, -1, -1, 11.99, 11.65, 10.60,
                10.29}},
    {"Olive", {-1, -1, 144.78, 42.24, 36.55, -1, -1, -1, 107.15, 416.57,
               334.7, 4058.83}},
    {"OmniQuant", {-1, -1, 11.26, 10.87, 10.33, 9.17, -1, -1, 12.24, 11.65,
                   10.6, 10.29}},
    {"BFP6", {10.06, 7.95, 5.61, 5.13, 4.12, 3.61, 15.57, 12.5, 10.91, 10.22,
              9.62, 9.48}},
    {"BFP4", {13.45, 9.44, 5.83, 5.72, 5.05, 4.12, 27.21, 18.98, 12.24, 11.56,
              10.50, 10.10}},
    {"BBFP(3,1)", {12.35, 9.00, 5.66, 5.33, 4.46, 4.01, 23.12, 15.29, 14.07,
                   10.85, 10.45, 10.27}},
    {"BBFP(4,2)", {10.41, 8.13, 5.80, 5.39, 4.37, 3.65, 17.06, 13.36, 12.03,
                   10.39, 9.63, 9.87}},
    {"BBFP(4,3)", {10.65, 8.20, 5.80, 5.20, 4.26, 3.69, 17.52, 13.89, 11.54,
                   10.38, 9.61, 9.93}},
    {"BBFP(6,3)", {9.93, 7.89, 5.48, 5.09, 4.10, 3.59, 15.16, 12.49, 10.89,
                   10.12, 9.55, 9.38}},
    {"BBFP(6,4)", {9.93, 7.9, 5.48, 5.09, 4.10, 3.59, 15.00, 12.47, 10.89,
                   10.14, 9.55, 9.36}},
};

}  // namespace

int main() {
  print_banner("Table II: quantised perplexity on the synthetic zoo");
  const int eval_tokens = env_int("BBAL_EVAL_TOKENS", 320);

  std::vector<std::string> models = kModels;
  if (const char* sel = std::getenv("BBAL_MODELS")) {
    models.clear();
    std::string s(sel);
    std::size_t pos = 0;
    while (pos != std::string::npos) {
      const auto comma = s.find(',', pos);
      models.push_back(s.substr(pos, comma - pos));
      pos = comma == std::string::npos ? comma : comma + 1;
    }
  }

  const std::vector<std::string> strategies = table2_strategies();

  // One sweep item per (strategy, model) cell; models are prepared once by
  // the sweep's shared cache, exactly like the seed's manual prepared map.
  SweepRunner sweep;
  sweep.eval_tokens(eval_tokens);
  for (const std::string& strat : strategies)
    for (const std::string& model : models) {
      SweepRunner::Item item;
      item.model = model;
      item.matmul = strat;
      sweep.add(std::move(item));
    }

  std::fprintf(stderr, "sweeping %zu cells (%zu strategies x %zu models)...\n",
               sweep.size(), strategies.size(), models.size());
  const SweepRunner::SweepResult result = sweep.run();
  if (!result.all_ok()) {
    std::fprintf(stderr, "sweep failed: %s\n", result.first_error().c_str());
    return 1;
  }
  std::fprintf(stderr, "sweep: %zu cells, %d threads, %.1fs wall\n",
               sweep.size(), result.threads, result.wall_seconds);

  std::vector<std::string> header = {"Strategy"};
  for (const auto& m : models) header.push_back(m);
  TextTable measured(header);
  TextTable paper(header);

  std::map<std::string, double> avg_ratio;  // strategy -> mean PPL/FP32
  std::size_t cell = 0;
  for (const std::string& strat : strategies) {
    std::vector<std::string> row = {strat};
    std::vector<std::string> paper_row = {strat};
    double ratio_acc = 0.0;
    for (const std::string& model : models) {
      const Session::Report& report = result.reports[cell++].value();
      row.push_back(TextTable::num(report.perplexity, 2));
      ratio_acc += report.perplexity / report.fp32_perplexity;
      // Paper cell (when the full zoo is selected).
      const auto it = kPaper.find(strat);
      double pv = -1;
      if (it != kPaper.end()) {
        for (std::size_t i = 0; i < kModels.size(); ++i)
          if (kModels[i] == model) pv = it->second[i];
      }
      paper_row.push_back(pv < 0 ? "N/A" : TextTable::num(pv, 2));
    }
    avg_ratio[strat] = ratio_acc / static_cast<double>(models.size());
    measured.add_row(row);
    paper.add_row(paper_row);
  }

  std::printf("\nMeasured (this reproduction):\n");
  measured.print();
  std::printf("\nPaper Table II (for comparison):\n");
  paper.print();

  std::printf("\nAverage PPL inflation over FP32 baseline:\n");
  for (const std::string& strat : strategies)
    std::printf("  %-10s %.2fx\n", strat.c_str(), avg_ratio[strat]);

  std::printf(
      "\nShape checks (paper claims):\n"
      "  BBFP(4,2) within ~5%% of BFP6:        %s\n"
      "  BBFP(4,2) clearly better than Oltron: %s\n"
      "  BBFP(6,3)/(6,4) track FP16:           %s\n"
      "  Olive catastrophically bad:           %s\n",
      avg_ratio["BBFP(4,2)"] < avg_ratio["BFP6"] * 1.35 ? "PASS" : "CHECK",
      avg_ratio["BBFP(4,2)"] < avg_ratio["Oltron"] ? "PASS" : "CHECK",
      avg_ratio["BBFP(6,3)"] < 1.2 ? "PASS" : "CHECK",
      avg_ratio["Olive"] > 10.0 ? "PASS" : "CHECK");
  return 0;
}
