// Serving-throughput study: continuous-batching decode over the quantised
// backends — the online workload the BBAL datapath targets (Fig. 1b frames
// decode-phase runtime as the deployment bottleneck).
//
// For each strategy the engine serves the same deterministic request mix
// (serve::synthetic_requests) and reports TTFT, per-token latency
// percentiles, aggregate tokens/s and energy, all priced on the paper's
// 16x16 accelerator (simulated clock, bit-identical across hosts).
//
// A second table serves a shared-prefix mix (every request opens with the
// same system-prompt-style prefix) under each scheduler policy — fifo,
// sjf, prefix-aware — showing what paged prefix sharing buys in KV bytes,
// pages and engine ticks (docs/SERVING.md walks through the columns).
//
// The fused-datapath study times the same BBFP(4,2) traffic two ways —
// the engine's batched tick loop (one fused GEMM per projection over the
// whole active batch, one shared weight copy) against a per-slot-style
// M=1 decode loop (each request stepped alone, the PR-3/PR-4 datapath) —
// and prints the host wall-clock of both. Informational only, never
// gated (wall-clock is machine-dependent).
//
// Correctness gates (the acceptance checks of the serving engine), exit
// non-zero if either fails:
//  1. the BBFP(4,2) batched paged run must produce bit-identical token
//     streams to serial contiguous-cache decodes — stream hash included —
//     at any BBAL_THREADS;
//  2. under prefix-aware scheduling the shared-prefix mix's kv_bytes_peak
//     must be strictly lower than the monolithic-cache equivalent
//     (kv_bytes_peak_contiguous), and its streams must hash identically
//     to the fifo run's.
//
// Env: BBAL_MODEL (default Llama-7B), BBAL_EVAL_TOKENS (default 128),
//      BBAL_SERVE_REQUESTS (default 8), BBAL_SERVE_NEW_TOKENS (default 16),
//      BBAL_SERVE_BATCH (default 4), BBAL_THREADS (step parallelism).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bbal/registry.hpp"
#include "common/table.hpp"
#include "llm/decoder.hpp"
#include "serve/engine.hpp"
#include "serve/policy.hpp"
#include "serve/workload.hpp"

namespace {

using namespace bbal;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

/// FNV-1a over (id, generated tokens), mirroring the engine's stream-hash
/// construction — the reference hash gate 1 pins the engine's against.
std::uint32_t reference_stream_hash(
    const std::vector<std::vector<int>>& streams) {
  std::uint32_t hash = 2166136261u;
  const auto mix = [&hash](std::uint32_t value) {
    for (int byte = 0; byte < 4; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xffu;
      hash *= 16777619u;
    }
  };
  for (std::size_t id = 0; id < streams.size(); ++id) {
    mix(static_cast<std::uint32_t>(id));
    for (const int token : streams[id]) mix(static_cast<std::uint32_t>(token));
  }
  return hash;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  print_banner("Serving: continuous-batching decode throughput");

  const char* model_env = std::getenv("BBAL_MODEL");
  const std::string model_name = model_env != nullptr ? model_env : "Llama-7B";
  const int eval_tokens = env_int("BBAL_EVAL_TOKENS", 128);
  const int num_requests = env_int("BBAL_SERVE_REQUESTS", 8);
  const int new_tokens = env_int("BBAL_SERVE_NEW_TOKENS", 16);
  const int max_batch = env_int("BBAL_SERVE_BATCH", 4);

  std::fprintf(stderr, "preparing %s (%d eval tokens)...\n",
               model_name.c_str(), eval_tokens);
  const auto prepared = prepare_shared(model_name, eval_tokens);
  const std::vector<serve::Request> requests = serve::synthetic_requests(
      prepared->config, num_requests, /*base_prompt_len=*/12, new_tokens);

  const std::vector<std::string> strategies = {"FP32", "INT8", "BFP4",
                                               "BBFP(4,2)", "BBFP(6,3)"};
  TextTable table({"Strategy", "Req", "Tok/s", "TTFT ms", "p50 ms", "p95 ms",
                   "p99 ms", "Occup", "Energy mJ", "Wall s"});

  for (const std::string& strategy : strategies) {
    serve::Engine::Options options;
    options.max_batch = max_batch;
    const auto spec = quant::StrategySpec::parse(strategy).expect("strategy");
    // Iso-area accelerators (Fig. 8's comparison rule): narrower formats
    // buy more PEs for the same silicon, which is where BBFP's serving
    // throughput edge over INT8/FP16 comes from.
    if (BackendRegistry::instance().has_cost_model(spec))
      options.accelerator =
          accel::make_iso_area_config(spec, /*pe_area_budget_um2=*/150000.0)
              .expect("iso-area config");
    auto engine =
        serve::Engine::create(prepared, spec, quant::StrategySpec::fp32(),
                              std::move(options))
            .expect("engine");
    for (const serve::Request& req : requests) engine.submit(req);
    const serve::Report report = engine.run();

    table.add_row(
        {strategy, std::to_string(report.completed),
         report.has_cost
             ? TextTable::num(report.throughput_tokens_per_second, 0)
             : "N/A",
         report.has_cost ? TextTable::num(report.ttft_mean_seconds * 1e3, 3)
                         : "N/A",
         report.has_cost ? TextTable::num(report.p50_step_seconds * 1e3, 3)
                         : "N/A",
         report.has_cost ? TextTable::num(report.p95_step_seconds * 1e3, 3)
                         : "N/A",
         report.has_cost ? TextTable::num(report.p99_step_seconds * 1e3, 3)
                         : "N/A",
         TextTable::num(report.mean_batch_occupancy, 2),
         report.has_cost ? TextTable::num(report.energy_j * 1e3, 3) : "N/A",
         TextTable::num(report.wall_seconds, 2)});
  }
  table.print();

  // --- Scheduler policies over a shared-prefix mix ---
  // Multi-user traffic with one system prompt: every request opens with
  // the same 64-token prefix. Prefix-aware scheduling stores that prefix
  // once in the paged pool; fifo/sjf recompute and re-store it per
  // request. Token streams are policy-invariant (bit-identical hashes).
  std::printf("\nScheduler policies, %d requests sharing a 64-token "
              "prefix, BBFP(4,2):\n",
              num_requests);
  const std::vector<serve::Request> shared_mix =
      serve::shared_prefix_requests(prepared->config, num_requests,
                                    /*prefix_len=*/64, /*suffix_len=*/4,
                                    new_tokens);
  TextTable policy_table({"Policy", "Ticks", "KV pages", "KV peak KB",
                          "Monolithic KB", "Hit rate", "Hash"});
  std::vector<serve::Report> policy_reports;
  for (const std::string& policy : serve::policy_names()) {
    serve::Engine::Options options;
    options.max_batch = max_batch;
    options.policy = policy;
    auto engine = serve::Engine::create(prepared, "BBFP(4,2)", "FP32",
                                        std::move(options))
                      .expect("engine");
    for (const serve::Request& req : shared_mix) engine.submit(req);
    policy_reports.push_back(engine.run());
    const serve::Report& report = policy_reports.back();
    policy_table.add_row(
        {policy, std::to_string(report.engine_steps),
         std::to_string(report.kv_pages_allocated),
         TextTable::num(static_cast<double>(report.kv_bytes_peak) / 1024.0,
                        1),
         TextTable::num(
             static_cast<double>(report.kv_bytes_peak_contiguous) / 1024.0,
             1),
         TextTable::num(report.prefix_hit_rate, 3),
         std::to_string(report.stream_hash)});
  }
  policy_table.print();

  int failures = 0;

  // --- Fused-batched vs per-slot M=1 datapath (informational) ---
  // Same requests, same strategy, same weights-prepared-once setup; the
  // per-slot loop steps each request alone (M=1 GEMMs, the pre-fusion
  // engine datapath) while the engine runs its fused batched tick loop.
  // Host wall-clock on both sides: printed, never gated.
  std::printf("\nFused batched tick loop vs per-slot M=1 decode, "
              "BBFP(4,2), %d requests:\n",
              num_requests);
  serve::Engine::Options options;
  options.max_batch = max_batch;
  auto engine = serve::Engine::create(prepared, "BBFP(4,2)", "FP32",
                                      std::move(options))
                    .expect("engine");
  for (const serve::Request& req : requests) engine.submit(req);
  const serve::Report report = engine.run();

  std::vector<std::vector<int>> references;
  auto mm = BackendRegistry::instance()
                .make_matmul(quant::spec_of("BBFP(4,2)"))
                .expect("per-slot backend");
  llm::Fp32NonlinearBackend nl;
  llm::Transformer model(prepared->config, prepared->weights, *mm, nl);
  model.set_logit_scale(prepared->logit_scale);
  llm::Decoder decoder(model);
  const auto serial_start = std::chrono::steady_clock::now();
  for (const serve::Request& req : requests)
    references.push_back(serve::reference_decode(decoder, req));
  const double serial_seconds = seconds_since(serial_start);
  std::printf("  fused batched: %.3fs   per-slot M=1: %.3fs   "
              "speedup %.2fx   weights once: %lld B (was %dx)\n",
              report.wall_seconds, serial_seconds,
              report.wall_seconds > 0.0 ? serial_seconds / report.wall_seconds
                                        : 0.0,
              static_cast<long long>(report.weights_bytes), max_batch);

  // --- Gate 1: batched paged BBFP(4,2) vs serial contiguous decodes ---
  std::printf("\nBit-identity check: %d concurrent BBFP(4,2) requests vs "
              "serial decodes...\n",
              num_requests);
  int mismatches = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (report.results[i].generated != references[i]) {
      ++mismatches;
      std::fprintf(stderr, "  request %zu: batched stream != serial stream\n",
                   i);
    }
  }
  const std::uint32_t expected_hash = reference_stream_hash(references);
  if (report.stream_hash != expected_hash) {
    ++mismatches;
    std::fprintf(stderr, "  stream_hash %u != reference %u\n",
                 report.stream_hash, expected_hash);
  }
  std::printf("  %s (%d/%zu streams identical, stream_hash=%u)\n",
              mismatches == 0 ? "PASS" : "FAIL",
              static_cast<int>(requests.size()) - mismatches, requests.size(),
              report.stream_hash);
  failures += mismatches == 0 ? 0 : 1;

  // --- Gate 2: prefix-aware page sharing beats monolithic caches ---
  const serve::Report& fifo_report = policy_reports.front();
  const serve::Report& aware_report = policy_reports.back();
  const bool hashes_match =
      aware_report.stream_hash == fifo_report.stream_hash;
  const bool peak_lower =
      aware_report.kv_bytes_peak < aware_report.kv_bytes_peak_contiguous;
  std::printf("\nPrefix-sharing check: prefix-aware peak %lld B %s "
              "monolithic %lld B, hash %s fifo's\n",
              static_cast<long long>(aware_report.kv_bytes_peak),
              peak_lower ? "<" : ">=",
              static_cast<long long>(aware_report.kv_bytes_peak_contiguous),
              hashes_match ? "==" : "!=");
  std::printf("  %s\n", peak_lower && hashes_match ? "PASS" : "FAIL");
  failures += peak_lower && hashes_match ? 0 : 1;

  return failures == 0 ? 0 : 1;
}
