// Regenerates Table I: MAC unit area, equivalent bit-width and memory
// efficiency for FP16 / INT8 / BFP8 / BFP6 / BBFP(8,4) / BBFP(6,3).
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "hw/datapath_designs.hpp"

namespace {

struct Row {
  bbal::hw::DatapathDesign design;
  int block_size;
  double paper_area;
  double paper_equiv_bits;
  double paper_mem_eff;
};

}  // namespace

int main() {
  using bbal::TextTable;
  using namespace bbal::hw;
  using bbal::quant::BlockFormat;

  bbal::print_banner(
      "Table I: MAC unit area / equivalent bits / memory efficiency");
  const CellLibrary& lib = CellLibrary::tsmc28();

  const std::vector<Row> rows = {
      {fp16_mac(), 1, 39599, 16.00, 1.00},
      {int_mac(8), 1, 9257, 8.00, 2.00},
      {bfp_mac(BlockFormat::bfp(8)), 32, 9371, 9.16, 1.75},
      {bfp_mac(BlockFormat::bfp(6)), 32, 5633, 7.16, 2.24},
      {bbfp_mac(BlockFormat::bbfp(8, 4)), 32, 9806, 10.16, 1.58},
      {bbfp_mac(BlockFormat::bbfp(6, 3)), 32, 5764, 8.16, 1.96},
  };

  TextTable table({"Datatype", "BlockSize", "Area um2", "Paper Area",
                   "Equiv Bits", "Paper Bits", "Mem Eff", "Paper Eff"});
  for (const Row& r : rows) {
    const double eff = 16.0 / r.design.equivalent_bits;
    table.add_row({r.design.name, std::to_string(r.block_size),
                   TextTable::num(r.design.area_um2(lib), 0),
                   TextTable::num(r.paper_area, 0),
                   TextTable::num(r.design.equivalent_bits, 2),
                   TextTable::num(r.paper_equiv_bits, 2),
                   TextTable::num(eff, 2) + "x",
                   TextTable::num(r.paper_mem_eff, 2) + "x"});
  }
  table.print();

  std::printf(
      "\nHeadline check: BBFP(6,3) area %.0f < BFP8 area %.0f with wider "
      "mantissa reach (Table I's representational-power claim).\n",
      bbfp_mac(BlockFormat::bbfp(6, 3)).area_um2(lib),
      bfp_mac(BlockFormat::bfp(8)).area_um2(lib));
  return 0;
}
