// Regenerates Fig. 2(b): the representational range of the mantissa under
// BFP vs BBFP at equal width — BBFP(m,o) reaches 2^(m-o) further.
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "quant/block.hpp"

int main() {
  using namespace bbal;
  using quant::BlockFormat;

  print_banner("Fig. 2(b): mantissa representational range, BFP vs BBFP");

  // Mantissa range in units of 2^shared_exponent, binary point after the
  // leading position (the paper's +-1.875 vs +-7.5 normalisation for m=4).
  TextTable table({"Format", "Min step", "Max |mantissa|", "Range vs BFP"});
  const std::vector<std::pair<int, int>> configs = {
      {3, 1}, {3, 2}, {4, 2}, {4, 3}, {6, 3}, {6, 4}, {6, 5}, {8, 4}, {10, 5}};

  for (const auto& [m, o] : configs) {
    const BlockFormat bfp = BlockFormat::bfp(m, 1);
    const BlockFormat bbfp = BlockFormat::bbfp(m, o, 1);
    // Encode a probe at the top of each format's range and decode it.
    const double denom = static_cast<double>(1 << (m - 1));
    const double bfp_max = static_cast<double>((1 << m) - 1) / denom;
    const double bbfp_max = bfp_max * static_cast<double>(1 << (m - o));
    table.add_row({"BFP" + std::to_string(m),
                   "1/" + std::to_string(1 << (m - 1)),
                   bbal::TextTable::num(bfp_max, 4), "1.0x"});
    table.add_row({bbfp.name(), "1/" + std::to_string(1 << (m - 1)),
                   bbal::TextTable::num(bbfp_max, 4),
                   bbal::TextTable::num(bbfp_max / bfp_max, 0) + "x"});
    (void)bfp;
  }
  table.print();

  // Demonstrate on real encodes: the paper's +-1.875 / +-7.5 example.
  std::printf("\nConcrete check for m=4, o=2 (paper's numbers):\n");
  const std::vector<double> probe = {7.5};
  const quant::EncodedBlock e =
      quant::encode_block(probe, quant::BlockFormat::bbfp(4, 2, 1));
  std::printf("  encode(7.5) in BBFP(4,2): decode -> %.4f "
              "(mantissa %u, flag %d, E_s %d)\n",
              e.decode(0), e.elems[0].mantissa, e.elems[0].flag ? 1 : 0,
              e.shared_exponent);
  const quant::EncodedBlock b =
      quant::encode_block(probe, quant::BlockFormat::bfp(4, 1));
  std::printf("  encode(7.5) in BFP4     : decode -> %.4f "
              "(max representable at this exponent: 1.875 * 2^E)\n",
              b.decode(0));
  return 0;
}
