// Regenerates Table III: PE area across quantisation strategies,
// normalised by the largest (BBFP(6,3)) PE.
#include <string>
#include <vector>

#include "common/table.hpp"
#include "hw/datapath_designs.hpp"

int main() {
  using bbal::TextTable;
  using namespace bbal::hw;

  bbal::print_banner("Table III: PE area across quantisation strategies");
  const CellLibrary& lib = CellLibrary::tsmc28();

  // Paper values (um^2) for side-by-side comparison.
  const std::vector<std::pair<std::string, double>> strategies = {
      {"Oltron", 78.50},    {"Olive", 156.47},     {"BFP4", 110.24},
      {"BFP6", 215.23},     {"BBFP(3,1)", 77.69},  {"BBFP(3,2)", 75.51},
      {"BBFP(4,2)", 117.11},{"BBFP(4,3)", 113.31}, {"BBFP(6,3)", 241.01},
      {"BBFP(6,4)", 231.14},{"BBFP(6,5)", 224.70},
  };

  const double norm_base = pe_for_strategy("BBFP(6,3)").area_um2(lib);

  TextTable table({"Strategy", "Area um2", "Norm", "Paper um2", "Paper Norm"});
  for (const auto& [name, paper_area] : strategies) {
    const double area = pe_for_strategy(name).area_um2(lib);
    table.add_row({name, TextTable::num(area, 2),
                   TextTable::num(area / norm_base, 2),
                   TextTable::num(paper_area, 2),
                   TextTable::num(paper_area / 241.01, 2)});
  }
  table.print();
  return 0;
}
