// Regenerates Fig. 4: perplexity and hardware overhead for BBFP(6,o),
// o = 0..5, plus Algorithm 1's overlap selection at several overhead
// weights. Expected shape: PPL high at o=0 (mid-size values crushed),
// best around o=3..4; overhead decreases with o (narrower carry chain).
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bbal/session.hpp"
#include "common/table.hpp"
#include "hw/datapath_designs.hpp"
#include "quant/overlap_search.hpp"

int main() {
  using namespace bbal;
  using namespace bbal::llm;

  print_banner("Fig. 4 / Algorithm 1: overlap width selection for BBFP(6,o)");
  const char* tok_env = std::getenv("BBAL_EVAL_TOKENS");
  const int eval_tokens = tok_env != nullptr ? std::atoi(tok_env) : 256;

  // Average PPL over one Llama-like and one OPT-like model (the paper's
  // "Avg PPL" axis averages its model suite).
  std::vector<std::shared_ptr<const PreparedModel>> prepared;
  for (const char* name : {"Llama-7B", "OPT-6.7B"}) {
    std::fprintf(stderr, "preparing %s...\n", name);
    prepared.push_back(prepare_shared(name, eval_tokens));
  }

  const int m = 6;
  std::vector<double> ppl_cache(static_cast<std::size_t>(m), -1.0);
  auto ppl_of = [&](int o) {
    auto& cached = ppl_cache[static_cast<std::size_t>(o)];
    if (cached >= 0.0) return cached;
    double acc = 0.0;
    for (const auto& p : prepared) {
      auto session = Session::Builder()
                         .prepared(p)
                         .matmul(quant::StrategySpec::bbfp(m, o))
                         .build()
                         .expect("fig4 session");
      acc += session.evaluate().expect("fig4 evaluate").perplexity;
    }
    cached = acc / static_cast<double>(prepared.size());
    return cached;
  };
  auto overhead_of = [&](int o) {
    return hw::bbfp_pe(quant::BlockFormat::bbfp(m, o))
        .area_um2(hw::CellLibrary::tsmc28());
  };

  TextTable table({"Overlap o", "Avg PPL", "PE area um2 (overhead)"});
  for (int o = 0; o < m; ++o) {
    table.add_row({std::to_string(o), TextTable::num(ppl_of(o), 2),
                   TextTable::num(overhead_of(o), 1)});
  }
  table.print();

  std::printf("\nAlgorithm 1 selection at different overhead weights w:\n");
  TextTable algo({"w", "best o", "scores o=0..5"});
  for (const double w : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const quant::OverlapSearchResult r =
        quant::select_overlap_width(m, w, ppl_of, overhead_of);
    std::string scores;
    for (std::size_t i = 0; i < r.score.size(); ++i)
      scores += (i != 0 ? " " : "") + TextTable::num(r.score[i], 3);
    algo.add_row({TextTable::num(w, 2), std::to_string(r.best_overlap),
                  scores});
  }
  algo.print();
  std::printf(
      "\nShape: accuracy-best sits at mid/high o ('Best accuracy' marker in\n"
      "Fig. 4); overhead strictly decreases with o ('Best efficiency' at\n"
      "o=5); Algorithm 1 interpolates between them as w grows.\n");
  return 0;
}
