// Speculative-decoding study: what a cheap low-precision draft backend
// buys the target engine, and what it must NOT cost — bit-identity of the
// served streams (docs/SPECULATIVE.md walks through every number printed
// here).
//
// Greedy-argmax verification makes speculation a scheduling change, never
// a sampling change: every accepted draft token equals the token the
// target would have produced alone, and the first rejected position is
// replaced by the target's own argmax. So the whole study rides on one
// oracle — the speculative engine's streams and hashes must equal the
// target-only engine's, for every (draft, target) pair, at any thread
// count. The speedup question is then pure cycle accounting: k draft
// forwards on the draft's iso-area array plus ONE batched (k+1)-row
// verify on the target, against the k+1 sequential decode steps the
// target-only engine would have priced (weight streaming dominates decode,
// and is M-independent — the same amortisation chunked prefill exploits).
//
// Correctness gates (exit non-zero on failure):
//  1. Bit-identity: for every (draft, target) pair in the sweep, the
//     speculative engine's per-request token streams and stream hash equal
//     the target-only engine's exactly (no tolerance).
//  2. Self-acceptance: with draft == target the two pipelines run the
//     same arithmetic on the same KV state, so the acceptance rate is
//     exactly 1.0 — any miss means the draft pipeline diverged.
//  3. Accounting: drafted tokens never exceed draft_cycles * k, accepted
//     tokens never exceed drafted, and a speculative run emits the same
//     total tokens as its target-only sibling.
//  4. Speedup: the committed winning configuration (the INT8 self-draft
//     at k = BBAL_SPEC_K) clears speedup_vs_target > 1.0 — batched
//     verification must actually beat sequential decode after paying for
//     its draft forwards.
//
// The frontier table sweeps (draft, k) per target: acceptance, speedup,
// engine ticks and the stream hash. All on the simulated clock —
// bit-identical across hosts and BBAL_THREADS.
//
// Env: BBAL_MODEL (default Llama-7B), BBAL_EVAL_TOKENS (default 128),
//      BBAL_SERVE_REQUESTS (default 8), BBAL_SERVE_NEW_TOKENS (default
//      16), BBAL_SERVE_BATCH (default 4), BBAL_SPEC_K (default 4, the
//      draft window), BBAL_THREADS.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bbal/registry.hpp"
#include "common/table.hpp"
#include "serve/engine.hpp"
#include "serve/workload.hpp"

namespace {

using namespace bbal;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

/// A serving engine on `target`, priced on its iso-area accelerator, with
/// an optional draft backend (draft_k = 0 turns speculation off).
serve::Engine make_engine(
    const std::shared_ptr<const llm::PreparedModel>& prepared,
    const std::string& target, int max_batch, const std::string& draft,
    int draft_k) {
  serve::Engine::Options options;
  options.max_batch = max_batch;
  options.draft = draft;
  options.draft_k = draft_k;
  const auto spec = quant::StrategySpec::parse(target).expect("strategy");
  options.accelerator =
      accel::make_iso_area_config(spec, /*pe_area_budget_um2=*/150000.0)
          .expect("iso-area config");
  return serve::Engine::create(prepared, spec, quant::StrategySpec::fp32(),
                               std::move(options))
      .expect("engine");
}

serve::Report serve_mix(serve::Engine& engine,
                        const std::vector<serve::Request>& requests) {
  for (const serve::Request& req : requests) engine.submit(req);
  return engine.run();
}

}  // namespace

int main() {
  print_banner("Serving: speculative decoding across quantisation tiers");

  const char* model_env = std::getenv("BBAL_MODEL");
  const std::string model_name = model_env != nullptr ? model_env : "Llama-7B";
  const int eval_tokens = env_int("BBAL_EVAL_TOKENS", 128);
  const int num_requests = env_int("BBAL_SERVE_REQUESTS", 8);
  const int new_tokens = env_int("BBAL_SERVE_NEW_TOKENS", 16);
  const int max_batch = env_int("BBAL_SERVE_BATCH", 4);
  const int spec_k = env_int("BBAL_SPEC_K", 4);

  std::fprintf(stderr, "preparing %s (%d eval tokens)...\n",
               model_name.c_str(), eval_tokens);
  const auto prepared = prepare_shared(model_name, eval_tokens);
  const std::vector<serve::Request> mix = serve::synthetic_requests(
      prepared->config, num_requests, /*base_prompt_len=*/12, new_tokens);

  // Cost-modelled tiers only: every target prices its verify ticks and
  // every draft its forwards, so the speedup column is never vacuous.
  const std::vector<std::string> targets = {"INT8", "BBFP(4,2)", "BBFP(6,3)"};
  const std::vector<std::string> drafts = {"INT8", "BFP4", "BBFP(4,2)",
                                           "BBFP(6,3)"};

  int failures = 0;

  // Target-only references, one per target — the oracle every speculative
  // run must reproduce bit for bit.
  std::vector<serve::Report> references;
  for (const std::string& target : targets) {
    serve::Engine engine = make_engine(prepared, target, max_batch, "", 0);
    references.push_back(serve_mix(engine, mix));
  }

  // --- Gates 1-3 over the full (draft, target) sweep ---
  int identity_misses = 0;
  int accounting_misses = 0;
  int self_acceptance_misses = 0;
  struct SweepRow {
    std::string target, draft;
    serve::Report report;
  };
  std::vector<SweepRow> sweep;
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const serve::Report& ref = references[t];
    for (const std::string& draft : drafts) {
      serve::Engine engine =
          make_engine(prepared, targets[t], max_batch, draft, spec_k);
      serve::Report report = serve_mix(engine, mix);
      for (std::size_t i = 0; i < mix.size(); ++i) {
        if (report.results[i].generated != ref.results[i].generated) {
          ++identity_misses;
          std::fprintf(stderr, "  %s<-%s: request %zu diverged\n",
                       targets[t].c_str(), draft.c_str(), i);
          break;
        }
      }
      if (report.stream_hash != ref.stream_hash) ++identity_misses;
      if (report.drafted_tokens > report.draft_cycles * spec_k ||
          report.accepted_tokens > report.drafted_tokens ||
          report.generated_tokens != ref.generated_tokens)
        ++accounting_misses;
      if (draft == targets[t] && report.acceptance_rate != 1.0)
        ++self_acceptance_misses;
      sweep.push_back({targets[t], draft, std::move(report)});
    }
  }
  std::printf("Bit-identity gate: %zu (draft,target) pairs at k=%d -> %d "
              "divergence(s): %s\n",
              sweep.size(), spec_k, identity_misses,
              identity_misses == 0 ? "PASS" : "FAIL");
  failures += identity_misses == 0 ? 0 : 1;
  std::printf("Self-acceptance gate: draft == target accepts everything "
              "-> %d miss(es): %s\n",
              self_acceptance_misses,
              self_acceptance_misses == 0 ? "PASS" : "FAIL");
  failures += self_acceptance_misses == 0 ? 0 : 1;
  std::printf("Accounting gate: drafted <= cycles*k, accepted <= drafted, "
              "tokens conserved -> %d miss(es): %s\n",
              accounting_misses, accounting_misses == 0 ? "PASS" : "FAIL");
  failures += accounting_misses == 0 ? 0 : 1;

  // --- Gate 4: the committed winner actually wins ---
  {
    serve::Engine engine =
        make_engine(prepared, "INT8", max_batch, "INT8", spec_k);
    const serve::Report report = serve_mix(engine, mix);
    const bool ok = report.speedup_vs_target > 1.0;
    std::printf("Speedup gate: INT8<-INT8 k=%d -> %.4fx vs target-only "
                "(bound > 1.0): %s\n",
                spec_k, report.speedup_vs_target, ok ? "PASS" : "FAIL");
    failures += ok ? 0 : 1;
  }

  // --- Frontier: acceptance and speedup per (draft, target, k) ---
  std::printf("\nSpeculative sweep over the synthetic mix (batch %d, "
              "%d requests x %d tokens):\n",
              max_batch, num_requests, new_tokens);
  TextTable table({"Target", "Draft", "k", "Accept", "Speedup", "Ticks",
                   "Cycles", "Hash"});
  for (const SweepRow& row : sweep) {
    table.add_row({row.target, row.draft, std::to_string(spec_k),
                   TextTable::num(row.report.acceptance_rate, 3),
                   TextTable::num(row.report.speedup_vs_target, 3),
                   std::to_string(row.report.engine_steps),
                   std::to_string(row.report.draft_cycles),
                   std::to_string(row.report.stream_hash)});
  }
  // The window sweep on the winning self-draft: k's diminishing returns.
  for (const int k : {1, 2, 8}) {
    serve::Engine engine = make_engine(prepared, "INT8", max_batch, "INT8", k);
    const serve::Report report = serve_mix(engine, mix);
    table.add_row({"INT8", "INT8", std::to_string(k),
                   TextTable::num(report.acceptance_rate, 3),
                   TextTable::num(report.speedup_vs_target, 3),
                   std::to_string(report.engine_steps),
                   std::to_string(report.draft_cycles),
                   std::to_string(report.stream_hash)});
  }
  table.print();

  return failures == 0 ? 0 : 1;
}
