// Regenerates Fig. 8: accuracy (average Llama/OPT perplexity) and
// throughput under iso PE area for every quantisation strategy.
//
// Headline claims: BBFP(3,1)/(3,2) ~ Oltron throughput (all 3-bit
// multipliers) with better accuracy; ~40% faster than BFP4 at similar
// accuracy; BBFP(4,x) slower than Oltron but much more accurate.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "accel/simulator.hpp"
#include "baselines/quant_baselines.hpp"
#include "common/table.hpp"
#include "llm/perplexity.hpp"

namespace {

using namespace bbal;
using namespace bbal::llm;

double eval_ppl_for_strategy(const PreparedModel& prepared,
                             const std::string& name) {
  Fp32NonlinearBackend nl;
  if (name == "Oltron") {
    baselines::OltronBackend b;
    return evaluate_ppl(prepared, b, nl);
  }
  if (name == "Olive") {
    baselines::OliveBackend b;
    return evaluate_ppl(prepared, b, nl);
  }
  if (name.rfind("BBFP(", 0) == 0) {
    const auto comma = name.find(',');
    return evaluate_ppl_block_format(
        prepared, quant::BlockFormat::bbfp(
                      std::stoi(name.substr(5, comma - 5)),
                      std::stoi(name.substr(comma + 1))));
  }
  return evaluate_ppl_block_format(
      prepared, quant::BlockFormat::bfp(std::stoi(name.substr(3))));
}

}  // namespace

int main() {
  print_banner("Fig. 8: iso-area accuracy vs throughput");
  const char* tok_env = std::getenv("BBAL_EVAL_TOKENS");
  const int eval_tokens = tok_env != nullptr ? std::atoi(tok_env) : 256;

  // Accuracy on one model per family; throughput on a Llama-7B-like
  // prefill workload under a fixed PE area budget.
  std::fprintf(stderr, "preparing models...\n");
  const PreparedModel llama =
      prepare_model(config_by_name("Llama-7B"), eval_tokens);
  const PreparedModel opt =
      prepare_model(config_by_name("OPT-6.7B"), eval_tokens);

  // Dense prefill workload with bandwidth headroom so the comparison is
  // compute-bound — the regime of the paper's iso-area study.
  const double pe_budget_um2 = 150000.0;
  const double dram_gbps = 51.2;
  const std::vector<accel::GemmShape> workload =
      accel::prefill_gemms(llama.config, /*seq=*/1024);

  const std::vector<std::string> strategies = {
      "Oltron",    "Olive",     "BFP4",      "BFP6",
      "BBFP(3,1)", "BBFP(3,2)", "BBFP(4,2)", "BBFP(4,3)",
      "BBFP(6,3)", "BBFP(6,4)", "BBFP(6,5)"};

  struct Row {
    std::string name;
    double llama_ppl, opt_ppl, gops;
    int pes;
  };
  std::vector<Row> rows;
  double max_gops = 0.0;
  for (const std::string& s : strategies) {
    std::fprintf(stderr, "evaluating %s...\n", s.c_str());
    Row r;
    r.name = s;
    r.llama_ppl = eval_ppl_for_strategy(llama, s);
    r.opt_ppl = eval_ppl_for_strategy(opt, s);
    const accel::AcceleratorConfig cfg =
        accel::iso_area_config(s, pe_budget_um2, dram_gbps);
    r.pes = cfg.pe_count();
    r.gops = accel::simulate_workload(cfg, workload).throughput_gops;
    max_gops = std::max(max_gops, r.gops);
    rows.push_back(r);
  }

  TextTable table({"Strategy", "PEs", "Llama PPL", "OPT PPL", "GOPS",
                   "Norm thru"});
  for (const Row& r : rows)
    table.add_row({r.name, std::to_string(r.pes),
                   TextTable::num(r.llama_ppl, 2),
                   TextTable::num(r.opt_ppl, 2), TextTable::num(r.gops, 1),
                   TextTable::num(r.gops / max_gops, 2)});
  table.print();

  auto find = [&](const std::string& n) -> const Row& {
    for (const Row& r : rows)
      if (r.name == n) return r;
    std::abort();
  };
  const Row& b31 = find("BBFP(3,1)");
  const Row& bfp4 = find("BFP4");
  const Row& oltron = find("Oltron");
  const Row& b42 = find("BBFP(4,2)");
  std::printf("\nHeadline checks:\n");
  std::printf("  BBFP(3,1) vs BFP4 throughput : %.0f%% faster (paper ~40%%)\n",
              (b31.gops / bfp4.gops - 1.0) * 100.0);
  std::printf("  BBFP(3,1) vs Oltron accuracy : %.0f%% lower avg PPL "
              "(paper ~22%%)\n",
              (1.0 - (b31.llama_ppl + b31.opt_ppl) /
                         (oltron.llama_ppl + oltron.opt_ppl)) *
                  100.0);
  std::printf("  BBFP(4,2) vs Oltron          : %.0f%% lower throughput, "
              "%.0f%% lower Llama PPL (paper: -30%% / -30%%)\n",
              (1.0 - b42.gops / oltron.gops) * 100.0,
              (1.0 - b42.llama_ppl / oltron.llama_ppl) * 100.0);
  return 0;
}
