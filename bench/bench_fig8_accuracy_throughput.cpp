// Regenerates Fig. 8: accuracy (average Llama/OPT perplexity) and
// throughput under iso PE area for every quantisation strategy — each
// strategy is one Session; perplexity and throughput come from the same
// evaluate() call on the Llama model. The whole grid runs as one
// SweepRunner sweep (BBAL_THREADS-way parallel, deterministic order).
//
// Headline claims: BBFP(3,1)/(3,2) ~ Oltron throughput (all 3-bit
// multipliers) with better accuracy; ~40% faster than BFP4 at similar
// accuracy; BBFP(4,x) slower than Oltron but much more accurate.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bbal/sweep.hpp"
#include "common/table.hpp"

int main() {
  using namespace bbal;

  print_banner("Fig. 8: iso-area accuracy vs throughput");
  const char* tok_env = std::getenv("BBAL_EVAL_TOKENS");
  const int eval_tokens = tok_env != nullptr ? std::atoi(tok_env) : 256;

  // Dense prefill workload with bandwidth headroom so the comparison is
  // compute-bound — the regime of the paper's iso-area study.
  const double pe_budget_um2 = 150000.0;
  const double dram_gbps = 51.2;

  const std::vector<std::string> strategies = {
      "Oltron",    "Olive",     "BFP4",      "BFP6",
      "BBFP(3,1)", "BBFP(3,2)", "BBFP(4,2)", "BBFP(4,3)",
      "BBFP(6,3)", "BBFP(6,4)", "BBFP(6,5)"};

  // Two items per strategy: accuracy + iso-area throughput on the Llama
  // model (one evaluate, Fig. 8's rule) and accuracy on the OPT model.
  // Both models are prepared once by the sweep's shared cache.
  SweepRunner sweep;
  sweep.eval_tokens(eval_tokens);
  for (const std::string& s : strategies) {
    SweepRunner::Item llama;
    llama.model = "Llama-7B";
    llama.matmul = s;
    llama.iso_area_um2 = pe_budget_um2;
    llama.iso_dram_gbps = dram_gbps;
    llama.prefill_seq = 1024;
    sweep.add(std::move(llama));
    SweepRunner::Item opt;
    opt.model = "OPT-6.7B";
    opt.matmul = s;
    sweep.add(std::move(opt));
  }

  std::fprintf(stderr, "sweeping %zu sessions...\n", sweep.size());
  const SweepRunner::SweepResult result = sweep.run();
  if (!result.all_ok()) {
    std::fprintf(stderr, "sweep failed: %s\n", result.first_error().c_str());
    return 1;
  }
  std::fprintf(stderr, "sweep: %d threads, %.1fs wall\n", result.threads,
               result.wall_seconds);

  struct Row {
    std::string name;
    double llama_ppl, opt_ppl, gops;
    int pes;
  };
  std::vector<Row> rows;
  double max_gops = 0.0;
  for (std::size_t i = 0; i < strategies.size(); ++i) {
    const Session::Report& llama_report = result.reports[2 * i].value();
    const Session::Report& opt_report = result.reports[2 * i + 1].value();
    Row r;
    r.name = strategies[i];
    r.llama_ppl = llama_report.perplexity;
    r.opt_ppl = opt_report.perplexity;
    r.pes = llama_report.accelerator_pes;
    r.gops = llama_report.run.throughput_gops;
    max_gops = std::max(max_gops, r.gops);
    rows.push_back(r);
  }

  TextTable table({"Strategy", "PEs", "Llama PPL", "OPT PPL", "GOPS",
                   "Norm thru"});
  for (const Row& r : rows)
    table.add_row({r.name, std::to_string(r.pes),
                   TextTable::num(r.llama_ppl, 2),
                   TextTable::num(r.opt_ppl, 2), TextTable::num(r.gops, 1),
                   TextTable::num(r.gops / max_gops, 2)});
  table.print();

  auto find = [&](const std::string& n) -> const Row& {
    for (const Row& r : rows)
      if (r.name == n) return r;
    std::abort();
  };
  const Row& b31 = find("BBFP(3,1)");
  const Row& bfp4 = find("BFP4");
  const Row& oltron = find("Oltron");
  const Row& b42 = find("BBFP(4,2)");
  std::printf("\nHeadline checks:\n");
  std::printf("  BBFP(3,1) vs BFP4 throughput : %.0f%% faster (paper ~40%%)\n",
              (b31.gops / bfp4.gops - 1.0) * 100.0);
  std::printf("  BBFP(3,1) vs Oltron accuracy : %.0f%% lower avg PPL "
              "(paper ~22%%)\n",
              (1.0 - (b31.llama_ppl + b31.opt_ppl) /
                         (oltron.llama_ppl + oltron.opt_ppl)) *
                  100.0);
  std::printf("  BBFP(4,2) vs Oltron          : %.0f%% lower throughput, "
              "%.0f%% lower Llama PPL (paper: -30%% / -30%%)\n",
              (1.0 - b42.gops / oltron.gops) * 100.0,
              (1.0 - b42.llama_ppl / oltron.llama_ppl) * 100.0);
  return 0;
}
