// Regenerates Fig. 8: accuracy (average Llama/OPT perplexity) and
// throughput under iso PE area for every quantisation strategy — each
// strategy is one Session; perplexity and throughput come from the same
// evaluate() call on the Llama model.
//
// Headline claims: BBFP(3,1)/(3,2) ~ Oltron throughput (all 3-bit
// multipliers) with better accuracy; ~40% faster than BFP4 at similar
// accuracy; BBFP(4,x) slower than Oltron but much more accurate.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bbal/session.hpp"
#include "common/table.hpp"

int main() {
  using namespace bbal;

  print_banner("Fig. 8: iso-area accuracy vs throughput");
  const char* tok_env = std::getenv("BBAL_EVAL_TOKENS");
  const int eval_tokens = tok_env != nullptr ? std::atoi(tok_env) : 256;

  // Accuracy on one model per family; throughput on a Llama-7B-like
  // prefill workload under a fixed PE area budget.
  std::fprintf(stderr, "preparing models...\n");
  const auto llama = prepare_shared("Llama-7B", eval_tokens);
  const auto opt = prepare_shared("OPT-6.7B", eval_tokens);

  // Dense prefill workload with bandwidth headroom so the comparison is
  // compute-bound — the regime of the paper's iso-area study.
  const double pe_budget_um2 = 150000.0;
  const double dram_gbps = 51.2;

  const std::vector<std::string> strategies = {
      "Oltron",    "Olive",     "BFP4",      "BFP6",
      "BBFP(3,1)", "BBFP(3,2)", "BBFP(4,2)", "BBFP(4,3)",
      "BBFP(6,3)", "BBFP(6,4)", "BBFP(6,5)"};

  struct Row {
    std::string name;
    double llama_ppl, opt_ppl, gops;
    int pes;
  };
  std::vector<Row> rows;
  double max_gops = 0.0;
  for (const std::string& s : strategies) {
    std::fprintf(stderr, "evaluating %s...\n", s.c_str());
    // Perplexity and iso-area throughput from one call; the fixed prefill
    // workload keeps every strategy on the same compute-bound footing.
    auto llama_session = Session::Builder()
                             .prepared(llama)
                             .matmul(s)
                             .accelerator_iso_area(pe_budget_um2, dram_gbps)
                             .workload_prefill(1024)
                             .build()
                             .expect("fig8 session");
    const auto llama_report =
        llama_session.evaluate().expect("fig8 evaluate");
    auto opt_session =
        Session::Builder().prepared(opt).matmul(s).build().expect(
            "fig8 session");
    const auto opt_report = opt_session.evaluate().expect("fig8 evaluate");

    Row r;
    r.name = s;
    r.llama_ppl = llama_report.perplexity;
    r.opt_ppl = opt_report.perplexity;
    r.pes = llama_session.accelerator().pe_count();
    r.gops = llama_report.run.throughput_gops;
    max_gops = std::max(max_gops, r.gops);
    rows.push_back(r);
  }

  TextTable table({"Strategy", "PEs", "Llama PPL", "OPT PPL", "GOPS",
                   "Norm thru"});
  for (const Row& r : rows)
    table.add_row({r.name, std::to_string(r.pes),
                   TextTable::num(r.llama_ppl, 2),
                   TextTable::num(r.opt_ppl, 2), TextTable::num(r.gops, 1),
                   TextTable::num(r.gops / max_gops, 2)});
  table.print();

  auto find = [&](const std::string& n) -> const Row& {
    for (const Row& r : rows)
      if (r.name == n) return r;
    std::abort();
  };
  const Row& b31 = find("BBFP(3,1)");
  const Row& bfp4 = find("BFP4");
  const Row& oltron = find("Oltron");
  const Row& b42 = find("BBFP(4,2)");
  std::printf("\nHeadline checks:\n");
  std::printf("  BBFP(3,1) vs BFP4 throughput : %.0f%% faster (paper ~40%%)\n",
              (b31.gops / bfp4.gops - 1.0) * 100.0);
  std::printf("  BBFP(3,1) vs Oltron accuracy : %.0f%% lower avg PPL "
              "(paper ~22%%)\n",
              (1.0 - (b31.llama_ppl + b31.opt_ppl) /
                         (oltron.llama_ppl + oltron.opt_ppl)) *
                  100.0);
  std::printf("  BBFP(4,2) vs Oltron          : %.0f%% lower throughput, "
              "%.0f%% lower Llama PPL (paper: -30%% / -30%%)\n",
              (1.0 - b42.gops / oltron.gops) * 100.0,
              (1.0 - b42.llama_ppl / oltron.llama_ppl) * 100.0);
  return 0;
}
