// Regenerates Fig. 9: average normalised energy (static / DRAM / buffer /
// core) for each quantisation strategy under identical PE count and buffer
// sizes, on a Llama-7B-like prefill workload.
//
// Headline: BBFP width-3 cuts ~13% of BFP4's energy; BBFP vs BFP at equal
// mantissa width costs at most ~5% more.
#include <cstdio>
#include <string>
#include <vector>

#include "bbal/session.hpp"
#include "common/table.hpp"

int main() {
  using namespace bbal;
  using accel::EnergyBreakdown;

  print_banner("Fig. 9: normalised energy breakdown (same PEs, same buffers)");

  const std::vector<std::string> strategies = {
      "Oltron",    "Olive",     "BFP4",      "BFP6",
      "BBFP(3,1)", "BBFP(3,2)", "BBFP(4,2)", "BBFP(4,3)",
      "BBFP(6,3)", "BBFP(6,4)", "BBFP(6,5)"};

  struct Row {
    std::string name;
    EnergyBreakdown e;
  };
  std::vector<Row> rows;
  double max_total = 0.0;
  for (const std::string& s : strategies) {
    accel::AcceleratorConfig cfg;  // identical array + buffers everywhere
    cfg.array_rows = cfg.array_cols = 16;
    // Cost-only session: no perplexity run, same prefill workload per row.
    auto session = Session::Builder()
                       .model("Llama-7B")
                       .matmul(s)
                       .accelerator(cfg)
                       .skip_accuracy()
                       .workload_prefill(512)
                       .build()
                       .expect("fig9 session");
    const auto report = session.evaluate().expect("fig9 evaluate");
    rows.push_back({s, report.energy});
    max_total = std::max(max_total, report.energy.total_j());
  }

  TextTable table({"Strategy", "Static", "DRAM", "Buffer", "Core", "Total",
                   "Norm"});
  for (const Row& r : rows) {
    table.add_row({r.name, TextTable::num(r.e.static_j * 1e6, 1),
                   TextTable::num(r.e.dram_j * 1e6, 1),
                   TextTable::num(r.e.buffer_j * 1e6, 1),
                   TextTable::num(r.e.core_j * 1e6, 1),
                   TextTable::num(r.e.total_j() * 1e6, 1),
                   TextTable::num(r.e.total_j() / max_total, 2)});
  }
  std::printf("(energies in microjoules for the whole workload)\n");
  table.print();

  auto total = [&](const std::string& n) {
    for (const Row& r : rows)
      if (r.name == n) return r.e.total_j();
    return 0.0;
  };
  std::printf("\nHeadline checks:\n");
  std::printf("  BBFP(3,1) vs BFP4 energy: %+.1f%% (paper: about -13%%)\n",
              (total("BBFP(3,1)") / total("BFP4") - 1.0) * 100.0);
  std::printf("  BBFP(6,3) vs BFP6 energy: %+.1f%% (paper: within +5%%)\n",
              (total("BBFP(6,3)") / total("BFP6") - 1.0) * 100.0);
  std::printf("  BBFP(4,2) vs BFP4 energy: %+.1f%% (paper: within +5%%)\n",
              (total("BBFP(4,2)") / total("BFP4") - 1.0) * 100.0);
  return 0;
}
