// Regenerates Table V: nonlinear unit comparison — ADP, EDP, efficiency and
// compatibility for [32] pseudo-softmax, [33] base-2 high-precision and the
// BBAL unit. Also reports each unit's softmax accuracy (our addition).
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "llm/tensor.hpp"
#include "nl/backends.hpp"
#include "nl/unit_cost.hpp"

namespace {

/// Mean |error| of a unit's softmax vs FP32 on random score vectors.
template <typename Unit>
double softmax_mean_abs_err(Unit& unit) {
  bbal::Rng rng(99);
  double err = 0.0;
  int count = 0;
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<float> xs(128);
    for (auto& x : xs) x = static_cast<float>(rng.gaussian(0.0, 2.0));
    std::vector<float> ref = xs;
    bbal::llm::softmax_reference(ref);
    unit.softmax(xs);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      err += std::fabs(xs[i] - ref[i]);
      ++count;
    }
  }
  return err / count;
}

}  // namespace

int main() {
  using namespace bbal;
  using namespace bbal::nl;

  print_banner("Table V: nonlinear unit ADP / EDP / efficiency");

  struct Row {
    NlUnitCost cost;
    double paper_adp, paper_edp, paper_eff;
    double accuracy_err;
    std::string compat;
  };

  PseudoSoftmaxBackend pseudo;
  Base2SoftmaxBackend base2;
  LutNonlinearBackend ours(quant::BlockFormat::bbfp(10, 5));

  std::vector<Row> rows = {
      {pseudo_softmax_cost(), 4.33, 79.58, 85.98, softmax_mean_abs_err(pseudo),
       "softmax only"},
      {base2_softmax_cost(), 299.13, 18691.24, 3.31,
       softmax_mean_abs_err(base2), "softmax only"},
      {bbal_nl_unit_cost(16), 32.64, 1040.40, 98.03,
       softmax_mean_abs_err(ours), "SILU and so on"},
  };

  TextTable table({"Unit", "Format", "Lanes", "Area mm2", "Power W",
                   "Delay ns", "ADP", "(paper)", "EDP", "(paper)", "Eff",
                   "(paper)", "|err|", "Compat"});
  for (const Row& r : rows) {
    table.add_row({r.cost.name, r.cost.num_format,
                   std::to_string(r.cost.lanes),
                   TextTable::num(r.cost.area_mm2, 4),
                   TextTable::num(r.cost.power_w, 4),
                   TextTable::num(r.cost.softmax_delay_ns(128), 1),
                   TextTable::num(r.cost.adp(), 2),
                   TextTable::num(r.paper_adp, 2),
                   TextTable::num(r.cost.edp(), 1),
                   TextTable::num(r.paper_edp, 1),
                   TextTable::num(r.cost.efficiency(), 1),
                   TextTable::num(r.paper_eff, 1),
                   TextTable::num(r.accuracy_err, 5), r.compat});
  }
  table.print();

  const NlUnitCost our_cost = bbal_nl_unit_cost(16);
  const NlUnitCost hp = base2_softmax_cost();
  std::printf(
      "\nHeadline check: our efficiency / high-precision [33] efficiency = "
      "%.1fx (paper: ~30x)\n",
      our_cost.efficiency() / hp.efficiency());
  std::printf(
      "Orderings to check: ADP/EDP [32] < ours << [33]; Eff ours > [32] >> "
      "[33]; only ours supports SiLU/GELU (compatibility column).\n");
  return 0;
}
