// The KV-cache accuracy/memory frontier (docs/KV_QUANT.md): what storing
// attention state in a quantised page format costs in model quality, and
// what it buys in resident bytes. Compute stays FP32 throughout — weights,
// activations and nonlinearities are exact — so every delta in this bench
// is attributable to the KV pages alone, unlike BENCH_serve's frontier
// rows where the matmul strategy also quantises.
//
// Per storable quant::KvFormat, against the FP32-page reference:
//  - packed page bytes and their ratio to FP32 pages;
//  - KV-cached teacher-forced perplexity over the prepared eval stream
//    (Decoder::step through a PagedKVView, the serving datapath, with the
//    same capped-surprise NLL as Transformer::mean_nll);
//  - greedy stream divergence: a fixed-prompt continuation, scored by the
//    first position that differs from the FP32-page stream and by the
//    fraction of matching tokens.
//
// Gated (exit 1 on violation; bounds documented in docs/KV_QUANT.md):
//  - FP32 pages are the identity: perplexity bit-equal to a contiguous
//    llm::KVCache run, stream fully identical;
//  - BBFP(4,2) pages pack to <= 1/4 of FP32 page bytes;
//  - per-format relative perplexity delta stays within its bound, and the
//    greedy stream tracks FP32 for at least the documented prefix.
//
// Env: BBAL_MODEL (default Llama-1B), BBAL_EVAL_TOKENS (default 96),
//      BBAL_KV_PROMPT (default 12), BBAL_KV_GEN_TOKENS (default 32).
// The gate bounds assume the defaults; ad-hoc sweeps under other env
// settings still print the table but the bounds may not be meaningful.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bbal/registry.hpp"
#include "bbal/session.hpp"
#include "common/table.hpp"
#include "llm/decoder.hpp"
#include "llm/perplexity.hpp"
#include "serve/paged_kv.hpp"

namespace {

using namespace bbal;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

/// Capped per-position surprise, exactly Transformer::mean_nll's formula
/// (uniform + 2 nats), so a catastrophic format stays finite.
double capped_nll(std::span<const float> logits, int next, int vocab) {
  float mx = logits[0];
  for (const float v : logits) mx = std::max(mx, v);
  double sum = 0.0;
  for (const float v : logits) sum += std::exp(static_cast<double>(v) - mx);
  const double logp =
      static_cast<double>(logits[static_cast<std::size_t>(next)]) - mx -
      std::log(sum);
  return std::min(-logp, std::log(static_cast<double>(vocab)) + 2.0);
}

int argmax(std::span<const float> logits) {
  int best = 0;
  for (int i = 1; i < static_cast<int>(logits.size()); ++i)
    if (logits[static_cast<std::size_t>(i)] >
        logits[static_cast<std::size_t>(best)])
      best = i;  // lowest index wins ties, like the serving engine
  return best;
}

/// One format's measurements, all through the paged serving datapath.
struct FormatRun {
  std::int64_t page_bytes = 0;
  double ppl = 0.0;
  std::vector<int> stream;  ///< greedy continuation of the fixed prompt
};

FormatRun run_format(const llm::PreparedModel& prepared, llm::Decoder& decoder,
                     const quant::KvFormat& format, int prompt_len,
                     int gen_tokens) {
  const std::vector<int>& tokens = prepared.eval_stream;
  const int t = static_cast<int>(tokens.size());

  serve::PagedKVPool::Options options;
  options.kv_format = format;
  serve::PagedKVPool sizing(prepared.config, options);
  options.max_pages =
      sizing.pages_for(std::max(t, prompt_len + gen_tokens)) + 1;
  FormatRun out;

  {  // Teacher-forced NLL over the eval stream, one position per step.
    serve::PagedKVPool pool(prepared.config, options);
    const auto seq = pool.create();
    serve::PagedKVView view(pool, seq);
    out.page_bytes = pool.page_bytes();
    double nll = 0.0;
    for (int i = 0; i + 1 < t; ++i) {
      if (const auto st = pool.reserve_next(seq); !st.is_ok()) {
        std::fprintf(stderr, "kv pool: %s\n", st.message().c_str());
        std::exit(1);
      }
      const std::vector<float> logits =
          decoder.step(tokens[static_cast<std::size_t>(i)], view);
      nll += capped_nll(logits, tokens[static_cast<std::size_t>(i) + 1],
                        prepared.config.vocab);
    }
    out.ppl = std::exp(nll / static_cast<double>(t - 1));
  }

  {  // Greedy continuation of the stream's leading prompt.
    serve::PagedKVPool pool(prepared.config, options);
    const auto seq = pool.create();
    serve::PagedKVView view(pool, seq);
    int token = tokens[0];
    for (int i = 0; i < prompt_len + gen_tokens; ++i) {
      if (const auto st = pool.reserve_next(seq); !st.is_ok()) {
        std::fprintf(stderr, "kv pool: %s\n", st.message().c_str());
        std::exit(1);
      }
      const std::vector<float> logits = decoder.step(token, view);
      token = i + 1 < prompt_len ? tokens[static_cast<std::size_t>(i) + 1]
                                 : argmax(logits);
      if (i + 1 >= prompt_len) out.stream.push_back(token);
    }
  }
  return out;
}

/// Gate bounds, set from measured headroom at the default env (table in
/// docs/KV_QUANT.md): max relative perplexity delta vs FP32 pages and min
/// greedy tokens matching the FP32-page stream before first divergence.
struct Bound {
  const char* format;
  double max_ppl_delta;   ///< |ppl - fp32_ppl| / fp32_ppl
  int min_match_prefix;   ///< tokens before the first divergence
};

// Measured at the defaults (Llama-1B, 96 eval tokens): INT8 +20.3%
// first-div 9, BFP4 +411% first-div 9, BBFP(4,2) +62.9% first-div 3,
// BBFP(6,3) +3.4% first-div 3. Bounds carry ~1.5x headroom on the delta
// and floor the divergence at a third of the measured prefix; the
// synthetic zoo's calibrated models amplify KV error relative to real
// checkpoints (docs/KV_QUANT.md), so these are regression rails for the
// codec, not claims about production accuracy.
constexpr Bound kBounds[] = {
    {"FP32", 0.0, 1 << 30},  // the identity: exact, never diverges
    {"INT8", 0.30, 6},
    {"BFP4", 6.00, 6},
    {"BBFP(4,2)", 1.00, 2},
    {"BBFP(6,3)", 0.06, 2},
};

}  // namespace

int main() {
  print_banner("KV-cache page quantisation: accuracy/memory frontier");
  const char* model_env = std::getenv("BBAL_MODEL");
  const std::string model_name = model_env != nullptr ? model_env : "Llama-1B";
  const int eval_tokens = env_int("BBAL_EVAL_TOKENS", 96);
  const int prompt_len = env_int("BBAL_KV_PROMPT", 12);
  const int gen_tokens = env_int("BBAL_KV_GEN_TOKENS", 32);

  const auto prepared = prepare_shared(model_name, eval_tokens);

  // FP32 compute: the only quantiser in this bench is the KV page codec.
  auto matmul = make_matmul_backend("FP32");
  auto nonlinear = make_nonlinear_backend("FP32");
  if (!matmul.is_ok() || !nonlinear.is_ok()) {
    std::fprintf(stderr, "FP32 backends unavailable\n");
    return 1;
  }
  llm::Transformer model(prepared->config, prepared->weights,
                         *matmul.value(), *nonlinear.value());
  model.set_logit_scale(prepared->logit_scale);
  llm::Decoder decoder(model);

  // The contiguous-cache reference the FP32 identity gate pins against.
  double contiguous_ppl = 0.0;
  {
    llm::KVCache cache = decoder.make_cache();
    llm::KVCacheRef ref(cache);
    double nll = 0.0;
    const auto& tokens = prepared->eval_stream;
    for (int i = 0; i + 1 < static_cast<int>(tokens.size()); ++i)
      nll += capped_nll(
          decoder.step(tokens[static_cast<std::size_t>(i)], ref),
          tokens[static_cast<std::size_t>(i) + 1], prepared->config.vocab);
    contiguous_ppl =
        std::exp(nll / static_cast<double>(tokens.size() - 1));
  }

  std::fprintf(stderr,
               "%s, %d eval tokens, prompt %d + %d greedy tokens, "
               "FP32 compute\n",
               model_name.c_str(), eval_tokens, prompt_len, gen_tokens);

  TextTable table({"KV format", "page B", "vs FP32", "PPL", "dPPL %",
                   "first div", "match %"});
  int failures = 0;
  FormatRun fp32_run;
  for (const Bound& bound : kBounds) {
    const quant::KvFormat format =
        quant::KvFormat::parse(bound.format).expect(bound.format);
    const FormatRun run =
        run_format(*prepared, decoder, format, prompt_len, gen_tokens);
    if (std::string(bound.format) == "FP32") fp32_run = run;

    // Stream divergence vs the FP32-page stream.
    int first_div = gen_tokens;
    int matches = 0;
    for (int i = 0; i < gen_tokens; ++i) {
      const bool same = run.stream[static_cast<std::size_t>(i)] ==
                        fp32_run.stream[static_cast<std::size_t>(i)];
      if (same) ++matches;
      if (!same && first_div == gen_tokens) first_div = i;
    }
    const double ppl_delta =
        std::fabs(run.ppl - fp32_run.ppl) / fp32_run.ppl;
    const double ratio = static_cast<double>(run.page_bytes) /
                         static_cast<double>(fp32_run.page_bytes);

    table.add_row({bound.format, std::to_string(run.page_bytes),
                   TextTable::num(ratio, 3), TextTable::num(run.ppl, 4),
                   TextTable::num(ppl_delta * 100.0, 3),
                   first_div == gen_tokens ? "never"
                                           : std::to_string(first_div),
                   TextTable::num(100.0 * matches / gen_tokens, 1)});

    auto fail = [&](const std::string& what) {
      std::fprintf(stderr, "GATE FAIL [%s]: %s\n", bound.format,
                   what.c_str());
      ++failures;
    };
    if (std::string(bound.format) == "FP32") {
      // Identity gates: the paged FP32 path must reproduce the contiguous
      // cache bit for bit (same exp of the same sum), so ppl is ==, not ~=.
      if (run.ppl != contiguous_ppl)
        fail("paged FP32 perplexity " + std::to_string(run.ppl) +
             " != contiguous " + std::to_string(contiguous_ppl));
    } else {
      if (ppl_delta > bound.max_ppl_delta)
        fail("ppl delta " + TextTable::num(ppl_delta * 100.0, 3) +
             "% exceeds bound " +
             TextTable::num(bound.max_ppl_delta * 100.0, 3) + "%");
      if (first_div < std::min(bound.min_match_prefix, gen_tokens))
        fail("stream diverges from FP32 pages at token " +
             std::to_string(first_div) + " (bound " +
             std::to_string(bound.min_match_prefix) + ")");
    }
    if (std::string(bound.format) == "BBFP(4,2)" &&
        run.page_bytes * 4 > fp32_run.page_bytes)
      fail("page bytes " + std::to_string(run.page_bytes) +
           " exceed 1/4 of FP32's " + std::to_string(fp32_run.page_bytes));
  }

  std::printf("\n");
  table.print();
  std::printf(
      "\nMethodology: FP32 compute throughout; deltas measure the KV page\n"
      "codec alone. Bounds and their measured headroom: docs/KV_QUANT.md.\n");
  if (failures > 0) {
    std::printf("\n%d gate failure(s)\n", failures);
    return 1;
  }
  std::printf("\nAll gates PASS\n");
  return 0;
}
