#!/usr/bin/env bash
# Docs gate for CI's quick tier (and local use):
#  1. the documentation set must be present;
#  2. every relative markdown link in README.md, docs/ and the other
#     root-level .md files must resolve to a real file;
#  3. every #fragment on a relative (or in-page) link must name a real
#     heading in the target file, under GitHub's slug rules (lowercase,
#     punctuation stripped, spaces to dashes);
#  4. every file in docs/ must be linked from at least one other
#     markdown file — an orphaned document is a broken docs tree even
#     when no link is broken.
# External links (http/https/mailto) are not fetched — CI must not
# depend on the network.
#
# Usage: tools/check_docs_links.sh   (from the repo root)
set -u

failures=0

# --- Presence: the documentation set PR 4 established (+ LOADGEN PR 6,
#     KV_QUANT PR 7, PREFILL + METRICS PR 8, ROBUSTNESS PR 10) ---
for required in README.md docs/ARCHITECTURE.md docs/SERVING.md \
                docs/STRATEGIES.md docs/LOADGEN.md docs/KV_QUANT.md \
                docs/PREFILL.md docs/METRICS.md docs/ROBUSTNESS.md; do
  if [ ! -f "$required" ]; then
    echo "MISSING     $required"
    failures=$((failures + 1))
  fi
done

# GitHub's heading-to-anchor slug: lowercase, drop everything that is
# not a letter, digit, space, hyphen or underscore (backticks, colons,
# slashes, parens...), then spaces to hyphens. Duplicate headings get
# -1/-2 suffixes on GitHub; base slugs are enough for this gate.
slugs_of() {
  grep -E '^#{1,6} ' "$1" |
    sed -E 's/^#{1,6} +//; s/ +$//' |
    tr '[:upper:]' '[:lower:]' |
    sed -E 's/[^a-z0-9 _-]//g; s/ /-/g'
}

# --- Relative links resolve; fragments name real headings ---
# Extracts [text](target) pairs; ignores external schemes; checks file
# existence with the #fragment stripped, then the fragment itself.
for doc in *.md docs/*.md; do
  [ -f "$doc" ] || continue
  dir=$(dirname "$doc")
  # Newline-delimited iteration: link targets may contain spaces.
  while IFS= read -r link; do
    [ -n "$link" ] || continue
    case "$link" in
      http://*|https://*|mailto:*) continue ;;
    esac
    target=${link%%#*}
    fragment=""
    case "$link" in
      *'#'*) fragment=${link#*#} ;;
    esac
    # Resolve the target file: in-page anchors point at $doc itself.
    if [ -z "$target" ]; then
      resolved=$doc
    elif [ -e "$dir/$target" ]; then
      resolved=$dir/$target
    elif [ -e "$target" ]; then
      resolved=$target
    else
      echo "BROKEN      $doc -> $link"
      failures=$((failures + 1))
      continue
    fi
    # Fragment check only makes sense against markdown files.
    if [ -n "$fragment" ] && [ -f "$resolved" ]; then
      case "$resolved" in
        *.md)
          if ! slugs_of "$resolved" | grep -qx "$fragment"; then
            echo "BAD ANCHOR  $doc -> $link (no heading #$fragment in $resolved)"
            failures=$((failures + 1))
          fi
          ;;
      esac
    fi
  done << EOF
$(grep -oE '\[[^][]*\]\([^)]+\)' "$doc" |
  sed -E 's/^\[[^][]*\]\(([^)]+)\)$/\1/')
EOF
done

# --- No orphaned docs: each docs/*.md is linked from somewhere else ---
for doc in docs/*.md; do
  [ -f "$doc" ] || continue
  base=$(basename "$doc")
  linked=0
  for other in *.md docs/*.md; do
    [ -f "$other" ] || continue
    [ "$other" = "$doc" ] && continue
    if grep -qE "\]\((docs/)?$base(#[^)]*)?\)" "$other"; then
      linked=1
      break
    fi
  done
  if [ "$linked" -eq 0 ]; then
    echo "ORPHANED    $doc (linked from no other markdown file)"
    failures=$((failures + 1))
  fi
done

if [ "$failures" -ne 0 ]; then
  echo "check_docs_links: $failures problem(s)"
  exit 1
fi
echo "check_docs_links: docs present, links + anchors resolve, no orphans"
