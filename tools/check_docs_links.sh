#!/usr/bin/env bash
# Docs gate for CI's quick tier (and local use): the documentation set
# must be present, and every relative markdown link in README.md, docs/
# and the other root-level .md files must resolve to a real file.
# External links (http/https/mailto) are not fetched — CI must not
# depend on the network.
#
# Usage: tools/check_docs_links.sh   (from the repo root)
set -u

failures=0

# --- Presence: the documentation set PR 4 established (+ LOADGEN PR 6,
#     KV_QUANT PR 7) ---
for required in README.md docs/ARCHITECTURE.md docs/SERVING.md \
                docs/STRATEGIES.md docs/LOADGEN.md docs/KV_QUANT.md; do
  if [ ! -f "$required" ]; then
    echo "MISSING     $required"
    failures=$((failures + 1))
  fi
done

# --- Relative links resolve ---
# Extracts [text](target) pairs; ignores external schemes and pure
# in-page anchors; strips #fragments before the existence check.
for doc in *.md docs/*.md; do
  [ -f "$doc" ] || continue
  dir=$(dirname "$doc")
  # Newline-delimited iteration: link targets may contain spaces.
  while IFS= read -r link; do
    [ -n "$link" ] || continue
    case "$link" in
      http://*|https://*|mailto:*) continue ;;
      '#'*) continue ;;
    esac
    target=${link%%#*}
    if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
      echo "BROKEN      $doc -> $link"
      failures=$((failures + 1))
    fi
  done << EOF
$(grep -oE '\[[^][]*\]\([^)]+\)' "$doc" |
  sed -E 's/^\[[^][]*\]\(([^)]+)\)$/\1/')
EOF
done

if [ "$failures" -ne 0 ]; then
  echo "check_docs_links: $failures problem(s)"
  exit 1
fi
echo "check_docs_links: all documentation present, all relative links ok"
