// bench_compare — diff two BENCH_*.json-shaped files (Table 2 sweeps,
// serving runs) and fail (exit 1) on regression. CI runs it after
// record_table2 / record_serve so the committed baselines gate every PR.
//
// Accepted shapes: {"meta": {...}, "rows": [...]} (current) or a bare
// array of row objects (legacy). Rows are matched by their
// (model, matmul, nonlinear, policy, kv_format, workload) key — the last
// three are empty for tools that predate them, so Table 2 rows keep their
// old keys; meta is informational and never compared. A serving-shaped
// baseline row without kv_format draws a named WARNING: it predates the
// quantised KV pages and wants a baseline refresh.
//
// Field rules:
//  - model-quality and simulated-cost fields must match *exactly*
//    (perplexity, memory footprint, energy, cycles, MAC/token/GEMM
//    counts, stream hashes): the engines guarantee bit-identical numerics
//    at any thread count, so any drift is a real regression;
//  - rate-like fields (anything named *seconds*, *throughput*, *rate*,
//    *occupancy*, *latency*, *delay*, *goodput* or *offered*, e.g.
//    "p99_step_seconds", "queue_delay_p99_ticks", "goodput_under_slo")
//    get a relative tolerance, ±10% by default (--tol 0.1 to override);
//  - a field or row present in the baseline but missing from the candidate
//    is a regression; a field or row present only in the candidate is
//    reported as a named EXTRA warning and passes (new coverage, not lost
//    coverage — but never silently skipped). With --rows-subset the
//    candidate may carry a subset of the baseline's rows (missing rows
//    warn instead of failing) — the quick-CI SLO gate records one load
//    point and checks it against the full committed sweep; matched rows
//    are still gated field by field.
//
// Fault-injected rows (record_serve --fault-plan / the record_slo
// preemption pair) need no special casing: their workload descriptor
// carries the plan ("...+faults(exhaust@40..70)+preempt=on"), so they
// key separately from their fault-free siblings, and the robustness
// fields route through the same name rules — preemptions, resumes,
// preempt_recompute_tokens, timeouts, cancellations, oom_failures and
// preempt are integer counts gated exactly, while
// requeue_delay_mean_ticks (a *delay*) and preempt_recompute_seconds
// (a *seconds*) take the rate tolerance.
//
// Every mismatch is reported before the exit code is decided: a
// multi-field regression shows all offending fields in one CI log.
//
// Usage: bench_compare <baseline.json> <candidate.json>
//                      [--tol FRACTION] [--rows-subset]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

// --- Minimal JSON parser ----------------------------------------------------
// Flat needs only: objects, arrays, strings, numbers, bools, null.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // keeps file order

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  bool parse(JsonValue& out, std::string& error) {
    pos_ = 0;
    if (!value(out)) {
      error = error_ + " at offset " + std::to_string(pos_);
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      error = "trailing characters at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool fail(const char* what) {
    error_ = what;
    return false;
  }

  bool literal(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) != 0) return fail("bad literal");
    pos_ += len;
    return true;
  }

  bool string_body(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '"': case '\\': case '/': c = esc; break;
          default: return fail("unsupported escape");
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end");
    const char c = text_[pos_];
    if (c == '{') {
      out.kind = JsonValue::Kind::kObject;
      ++pos_;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      for (;;) {
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != '"')
          return fail("expected object key");
        std::string key;
        if (!string_body(key)) return false;
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != ':')
          return fail("expected ':'");
        ++pos_;
        JsonValue v;
        if (!value(v)) return false;
        out.object.emplace_back(std::move(key), std::move(v));
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      out.kind = JsonValue::Kind::kArray;
      ++pos_;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      for (;;) {
        JsonValue v;
        if (!value(v)) return false;
        out.array.push_back(std::move(v));
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return string_body(out.str);
    }
    if (c == 't') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return literal("false");
    }
    if (c == 'n') return literal("null");
    // number
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    out.number = std::strtod(start, &end);
    if (end == start) return fail("bad number");
    out.kind = JsonValue::Kind::kNumber;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  std::string text_;
  std::size_t pos_ = 0;
  std::string error_;
};

// --- Comparison -------------------------------------------------------------

/// Fields allowed to drift within the relative tolerance: time- and
/// rate-like metrics ("seconds", "throughput_gops", the serving report's
/// "*_seconds" latencies and "throughput_tokens_per_second"), the
/// serving engine's ratio metrics ("prefix_hit_rate", "*occupancy"), and
/// the SLO study's queueing metrics ("*latency*", "queue_delay_*",
/// "goodput_under_slo", "offered_tokens_per_tick") — deterministic in
/// one build, but sensitive by design to request-mix or policy tweaks a
/// baseline refresh shouldn't be forced for. Everything else must be
/// bit-identical (see file header).
bool is_rate_field(const std::string& key) {
  // Byte footprints are exact by construction (packed KV pages, weight
  // storage) — never rate-gated, even when a future field name picks up a
  // rate-like word ("kv_bytes_peak_rate_limited" must stay exact).
  if (key.find("bytes") != std::string::npos) return false;
  // Speculative acceptance is a pure function of the model, the two
  // strategies and the request mix — part of the engine's determinism
  // contract, so it stays exact despite ending in "rate".
  if (key == "acceptance_rate") return false;
  return key.find("seconds") != std::string::npos ||
         key.find("throughput") != std::string::npos ||
         key.find("rate") != std::string::npos ||
         key.find("occupancy") != std::string::npos ||
         key.find("latency") != std::string::npos ||
         key.find("delay") != std::string::npos ||
         key.find("goodput") != std::string::npos ||
         key.find("offered") != std::string::npos ||
         key.find("speedup") != std::string::npos;
}

struct Rows {
  // key "model|matmul|nonlinear|policy|kv_format|workload[|draft]" -> row
  // object, plus file order for output
  std::map<std::string, const JsonValue*> by_key;
  std::vector<std::string> order;
};

std::string row_key(const JsonValue& row) {
  auto field = [&](const char* k) {
    const JsonValue* v = row.find(k);
    return v != nullptr && v->kind == JsonValue::Kind::kString ? v->str
                                                               : std::string();
  };
  // policy/kv_format/workload distinguish the serving sweeps (BENCH_slo
  // has one row per load x policy at a fixed strategy; BENCH_serve's
  // frontier has one row per KV page format at a fixed matmul); all are
  // empty strings for rows that predate them, leaving Table 2 keys
  // unchanged. The speculative rows add draft(+draft_k): absent on
  // target-only rows, so those keys stay byte-exact too.
  std::string key = field("model") + " | " + field("matmul") + " | " +
                    field("nonlinear") + " | " + field("policy") + " | " +
                    field("kv_format") + " | " + field("workload");
  const JsonValue* draft = row.find("draft");
  if (draft != nullptr && draft->kind == JsonValue::Kind::kString &&
      !draft->str.empty()) {
    key += " | draft=" + draft->str;
    const JsonValue* k = row.find("draft_k");
    if (k != nullptr && k->kind == JsonValue::Kind::kNumber)
      key += "(k=" + std::to_string(static_cast<int>(k->number)) + ")";
  }
  return key;
}

bool load_rows(const char* path, JsonValue& storage, Rows& rows) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  JsonParser parser(buf.str());
  if (!parser.parse(storage, error)) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path, error.c_str());
    return false;
  }
  const JsonValue* array = nullptr;
  if (storage.kind == JsonValue::Kind::kArray) {
    array = &storage;  // legacy bare-array shape
  } else if (storage.kind == JsonValue::Kind::kObject) {
    array = storage.find("rows");
    if (array == nullptr || array->kind != JsonValue::Kind::kArray) {
      std::fprintf(stderr, "bench_compare: %s: no \"rows\" array\n", path);
      return false;
    }
  } else {
    std::fprintf(stderr, "bench_compare: %s: expected array or object\n",
                 path);
    return false;
  }
  for (const JsonValue& row : array->array) {
    if (row.kind != JsonValue::Kind::kObject) {
      std::fprintf(stderr, "bench_compare: %s: row is not an object\n", path);
      return false;
    }
    const std::string key = row_key(row);
    if (rows.by_key.count(key) != 0) {
      std::fprintf(stderr, "bench_compare: %s: duplicate row %s\n", path,
                   key.c_str());
      return false;
    }
    rows.by_key[key] = &row;
    rows.order.push_back(key);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* candidate_path = nullptr;
  double tol = 0.10;
  bool rows_subset = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rows-subset") {
      rows_subset = true;
    } else if (arg == "--tol" && i + 1 < argc) {
      // A typo'd tolerance must not silently become exact-match (0.0).
      char* end = nullptr;
      tol = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || tol < 0.0) {
        std::fprintf(stderr, "bench_compare: bad --tol value \"%s\"\n",
                     argv[i]);
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: bench_compare <baseline.json> <candidate.json> "
                   "[--tol FRACTION] [--rows-subset]\n");
      return 0;
    } else if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (candidate_path == nullptr) {
      candidate_path = argv[i];
    } else {
      std::fprintf(stderr, "bench_compare: unexpected argument %s\n", argv[i]);
      return 2;
    }
  }
  if (baseline_path == nullptr || candidate_path == nullptr) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline.json> <candidate.json> "
                 "[--tol FRACTION] [--rows-subset]\n");
    return 2;
  }

  JsonValue baseline_doc, candidate_doc;
  Rows baseline, candidate;
  if (!load_rows(baseline_path, baseline_doc, baseline) ||
      !load_rows(candidate_path, candidate_doc, candidate))
    return 2;

  int regressions = 0;
  int warnings = 0;
  int checked_fields = 0;
  auto regress = [&](const std::string& what) {
    std::printf("REGRESSION  %s\n", what.c_str());
    ++regressions;
  };
  // One-sided fields/rows must be *named*, never silently skipped: a
  // renamed metric would otherwise vanish from the gate unnoticed.
  auto warn = [&](const std::string& what) {
    std::printf("WARNING     %s\n", what.c_str());
    ++warnings;
  };

  int matched_rows = 0;
  for (const std::string& key : baseline.order) {
    const JsonValue& brow = *baseline.by_key[key];
    // A serving row (it names a scheduler policy) recorded before KV pages
    // learned their storage format: flagged up front — the empty kv_format
    // key slot means it can never match a fresh candidate, so the fix is a
    // baseline refresh, not a code hunt.
    if (brow.find("policy") != nullptr && brow.find("kv_format") == nullptr)
      warn("baseline row predates kv_format (refresh the baseline): " + key);
    const auto it = candidate.by_key.find(key);
    if (it == candidate.by_key.end()) {
      // Under --rows-subset the candidate deliberately records fewer
      // rows (quick CI re-measures one load point of the full sweep);
      // uncovered baseline rows are named, not failed.
      if (rows_subset)
        warn("row not re-measured by candidate (--rows-subset): " + key);
      else
        regress("row missing from candidate: " + key);
      continue;
    }
    ++matched_rows;
    const JsonValue& crow = *it->second;
    for (const auto& [field, bval] : brow.object) {
      const JsonValue* cval = crow.find(field);
      if (cval == nullptr) {
        regress(key + ": field \"" + field + "\" missing from candidate");
        continue;
      }
      if (bval.kind == JsonValue::Kind::kString) {
        if (cval->kind != JsonValue::Kind::kString || cval->str != bval.str)
          regress(key + ": " + field + " \"" + bval.str + "\" -> \"" +
                  cval->str + "\"");
        ++checked_fields;
        continue;
      }
      if (bval.kind != JsonValue::Kind::kNumber) {
        warn(key + ": field \"" + field +
             "\" has a non-scalar baseline value, not compared");
        continue;
      }
      if (cval->kind != JsonValue::Kind::kNumber) {
        regress(key + ": " + field + " is no longer a number");
        continue;
      }
      ++checked_fields;
      const double b = bval.number;
      const double c = cval->number;
      if (is_rate_field(field)) {
        const double denom = std::max(std::fabs(b), 1e-300);
        const double rel = std::fabs(c - b) / denom;
        if (rel > tol) {
          char msg[256];
          std::snprintf(msg, sizeof msg,
                        "%s: %s %.6g -> %.6g (%+.1f%% > %.0f%%)", key.c_str(),
                        field.c_str(), b, c, (c / b - 1.0) * 100.0,
                        tol * 100.0);
          regress(msg);
        }
      } else if (b != c) {
        char msg[256];
        std::snprintf(msg, sizeof msg,
                      "%s: %s %.17g -> %.17g (exact-match field)", key.c_str(),
                      field.c_str(), b, c);
        regress(msg);
      }
    }
    // Candidate-only fields: new coverage, named so a renamed metric is
    // visible in the log instead of silently dropping out of the gate.
    for (const auto& [field, cval] : crow.object)
      if (brow.find(field) == nullptr)
        warn(key + ": field \"" + field +
             "\" only in candidate (not in baseline, not gated)");
  }

  // New coverage in the candidate: report, never fail.
  for (const std::string& key : candidate.order)
    if (baseline.by_key.count(key) == 0)
      warn("row only in candidate (not in baseline, not gated): " + key);

  // A subset gate that matched nothing gated nothing — that's a broken
  // invocation (key drift, wrong file), not a pass.
  if (rows_subset && matched_rows == 0 && !baseline.order.empty())
    regress("--rows-subset matched no baseline row at all");

  std::printf("bench_compare: %zu baseline rows, %d matched, %d fields "
              "checked, %d regression(s), %d warning(s), tolerance ±%.0f%% "
              "on rate fields\n",
              baseline.order.size(), matched_rows, checked_fields, regressions,
              warnings, tol * 100.0);
  return regressions == 0 ? 0 : 1;
}
