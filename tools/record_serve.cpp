// Record a serving baseline: the continuous-batching engine serves one
// deterministic request mix under each strategy, and every row's metrics
// land in one JSON file. CI diffs a fresh run against the committed
// BENCH_serve.json with tools/bench_compare — token counts and the stream
// hash must stay bit-identical at any thread count (the engine's
// determinism contract); simulated seconds/throughput get the rate
// tolerance. Host wall-clock stays in "meta" (informational, never gated).
// Each row also records weights_bytes — the quantised weight footprint of
// the engine's one shared backend, exact-gated and independent of
// max_batch (the fused datapath prepares weights once per engine).
//
// Output shape: {"meta": {...}, "rows": [...one object per strategy...]},
// the same contract as tools/record_table2.
//
// Usage: ./build/tools/record_serve [out.json] [--threads N]
//            [--policy fifo|sjf|prefix-aware]
//            [--workload synthetic|shared-prefix|poisson|bursty|
//             long-prompt|trace=PATH]
//            [--seed N] [--rate REQS_PER_TICK] [--prefill-chunk N]
//            [--kv-format FP32|INT8|BFP<m>|BBFP(<m>,<o>)]
//            [--draft STRATEGY --draft-k N]
//            [--fault-plan SPEC] [--preempt] [--deadline TICKS]
// Env:   BBAL_MODEL (default Llama-7B), BBAL_EVAL_TOKENS (default 128),
//        BBAL_SERVE_REQUESTS (default 8), BBAL_SERVE_NEW_TOKENS (default
//        16), BBAL_SERVE_BATCH (default 4), BBAL_SERVE_PREFIX (default 8,
//        shared-prefix only), BBAL_SERVE_FRONTIER_PREFIX (default 24,
//        frontier sweep only), BBAL_SERVE_LONG_PROMPT (default 96) and
//        BBAL_SERVE_LONG_EVERY (default 4) for the long-prompt mix,
//        BBAL_THREADS (--threads wins)
//
// KV formats: --kv-format stores every engine's paged KV cache in the
// named quant::KvFormat (see docs/KV_QUANT.md) — the ad-hoc/smoke path.
// WITHOUT the flag, the strategy rows run the FP32 default and the tool
// appends the committed accuracy/memory frontier: shared-prefix traffic
// under the prefix-aware policy on the BBFP(4,2) matmul, one row per
// storable KV format, so the default invocation reproduces every row of
// BENCH_serve.json (the CI quick gate diffs the whole file).
//
// Workloads: "synthetic" (default) is the closed-loop PR-5 mix —
// byte-exact with the pre-open-loop recorder; "shared-prefix" is the
// closed-loop common-system-prompt mix; "poisson"/"bursty" stamp the
// synthetic mix with seeded open-loop arrivals at --rate requests per
// tick; "long-prompt" is the prompt-heavy chunked-prefill mix (every
// BBAL_SERVE_LONG_EVERY-th prompt BBAL_SERVE_LONG_PROMPT tokens long,
// Poisson arrivals at --rate); "trace=PATH" replays a serve::trace JSONL
// file. The descriptor for whichever was picked is recorded in meta and
// in every row (the "workload" field, part of the bench_compare row key).
//
// --prefill-chunk N turns on chunked prefill (docs/PREFILL.md): it sets
// Engine::Options::prefill_chunk = N and prefill_budget = N, so each
// prefilling request consumes up to N prompt tokens per tick and a tick
// grants at most N prefill tokens across the batch. N = 1 restores the
// legacy one-token-per-tick lockstep (budget 0) — byte-exact streams.
//
// The committed baseline records the fifo policy and synthetic workload
// (the bit-identity reference); the flags exist for ad-hoc studies.
// WITHOUT --prefill-chunk (and without --kv-format) the tool also appends
// the committed chunked-prefill comparison: the long-prompt mix on the
// BBFP(4,2) engine at chunk 1 / 8 / 32, one row each, with the chunk size
// named in the row's workload descriptor so the rows key separately.
//
// --draft S --draft-k N turns on speculative decoding for every strategy
// row (docs/SPECULATIVE.md): a second engine backend on strategy S drafts
// N tokens per cycle and the row's own strategy verifies them. Greedy
// verification makes this a scheduling change only — the stream hashes
// must equal the target-only rows' exactly. Ad-hoc like the other pinning
// flags: the committed sections are skipped. WITHOUT the flags the tool
// appends the committed speculative comparison instead: the synthetic mix
// on cross-tier (draft -> target) pairs, each row named by its draft spec
// in the bench_compare row key.
//
// --fault-plan SPEC / --preempt / --deadline N turn on the robustness
// harness (docs/ROBUSTNESS.md): SPEC is the serve::parse_fault_plan
// grammar (exhaust@B..E, flaky@T#R, cancel@T#R, spike@T+W, seed@S+H,
// ';'-separated), --preempt enables decode preemption, and --deadline N
// stamps every request with deadline_tick = arrival_tick + N. Chaos mode
// skips the committed sections and self-gates every strategy row against
// a fault-free sibling run: completed streams must be bit-identical,
// partial output must be a prefix of the sibling's stream, and every
// failure must carry a typed reason — the CI chaos smoke's hash gate.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bbal/registry.hpp"
#include "common/threadpool.hpp"
#include "quant/kv_codec.hpp"
#include "serve/engine.hpp"
#include "serve/faults.hpp"
#include "serve/load.hpp"
#include "serve/policy.hpp"
#include "serve/trace.hpp"
#include "serve/workload.hpp"

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

/// True when `partial` is a (possibly complete) prefix of `full`.
bool is_prefix(const std::vector<int>& partial, const std::vector<int>& full) {
  if (partial.size() > full.size()) return false;
  return std::equal(partial.begin(), partial.end(), full.begin());
}

/// The chaos smoke's hash gate: every faulted result must agree with the
/// fault-free sibling run of the same engine configuration — completed
/// streams bit-identical, partial output a strict prefix of the sibling's
/// stream, and every failure typed (reason != none). Greedy decoding makes
/// this exact: a request's continuation is a pure function of its prompt,
/// so no fault may change a token it does not remove. Returns false (and
/// prints why) on any violation.
bool chaos_rows_agree(const char* label, const bbal::serve::Report& faulted,
                      const bbal::serve::Report& clean) {
  using bbal::serve::FinishReason;
  for (std::size_t i = 0; i < faulted.results.size(); ++i) {
    const auto& f = faulted.results[i];
    const auto& c = clean.results[i];
    if (f.ok && f.generated != c.generated) {
      std::fprintf(stderr,
                   "  %s: request %zu completed under faults but diverged "
                   "from the fault-free stream\n",
                   label, i);
      return false;
    }
    if (!f.ok && f.reason == FinishReason::kNone) {
      std::fprintf(stderr, "  %s: request %zu failed UNTYPED: %s\n", label, i,
                   f.error.c_str());
      return false;
    }
    if (!f.ok && !is_prefix(f.generated, c.generated)) {
      std::fprintf(stderr,
                   "  %s: request %zu partial output is not a prefix of the "
                   "fault-free stream\n",
                   label, i);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bbal;

  std::string out_path = "BENCH_serve.json";
  bool have_out_path = false;
  int threads_flag = 0;
  std::string policy = "fifo";
  std::string workload = "synthetic";
  std::string kv_format;  ///< empty: FP32 rows + the committed frontier
  int prefill_chunk = 0;  ///< 0: default engine + the committed comparison
  std::string draft;      ///< empty: no speculation + the committed sweep
  int draft_k = 0;
  serve::FaultPlan fault_plan;  ///< empty: no chaos + the committed sections
  bool preempt = false;
  std::int64_t deadline_ticks = 0;  ///< 0: no deadlines
  std::uint64_t seed = 2024;
  double rate = 0.05;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--workload") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "record_serve: --workload needs a value\n");
        return 2;
      }
      workload = argv[++i];
      if (workload != "synthetic" && workload != "shared-prefix" &&
          workload != "poisson" && workload != "bursty" &&
          workload != "long-prompt" && workload.rfind("trace=", 0) != 0) {
        std::fprintf(stderr, "record_serve: bad --workload value \"%s\"\n",
                     argv[i]);
        return 2;
      }
    } else if (arg == "--seed") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "record_serve: --seed needs a value\n");
        return 2;
      }
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--rate") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "record_serve: --rate needs a value\n");
        return 2;
      }
      rate = std::strtod(argv[++i], nullptr);
      if (!(rate > 0.0)) {
        std::fprintf(stderr, "record_serve: bad --rate value \"%s\"\n",
                     argv[i]);
        return 2;
      }
    } else if (arg == "--threads") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "record_serve: --threads needs a value\n");
        return 2;
      }
      threads_flag = std::atoi(argv[++i]);
      if (threads_flag <= 0) {
        std::fprintf(stderr, "record_serve: bad --threads value \"%s\"\n",
                     argv[i]);
        return 2;
      }
    } else if (arg == "--policy") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "record_serve: --policy needs a value\n");
        return 2;
      }
      policy = argv[++i];
      if (!serve::make_policy(policy).is_ok()) {
        std::fprintf(stderr, "record_serve: bad --policy value \"%s\"\n",
                     argv[i]);
        return 2;
      }
    } else if (arg == "--prefill-chunk") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "record_serve: --prefill-chunk needs a value\n");
        return 2;
      }
      prefill_chunk = std::atoi(argv[++i]);
      if (prefill_chunk < 1) {
        std::fprintf(stderr, "record_serve: bad --prefill-chunk value \"%s\"\n",
                     argv[i]);
        return 2;
      }
    } else if (arg == "--kv-format") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "record_serve: --kv-format needs a value\n");
        return 2;
      }
      kv_format = argv[++i];
      const auto parsed = bbal::quant::KvFormat::parse(kv_format);
      if (!parsed.is_ok()) {
        std::fprintf(stderr, "record_serve: %s\n", parsed.message().c_str());
        return 2;
      }
      kv_format = parsed.value().name();
    } else if (arg == "--draft") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "record_serve: --draft needs a value\n");
        return 2;
      }
      draft = argv[++i];
      const auto parsed = bbal::quant::StrategySpec::parse(draft);
      if (!parsed.is_ok()) {
        std::fprintf(stderr, "record_serve: --draft: %s\n",
                     parsed.message().c_str());
        return 2;
      }
    } else if (arg == "--draft-k") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "record_serve: --draft-k needs a value\n");
        return 2;
      }
      draft_k = std::atoi(argv[++i]);
      if (draft_k < 1) {
        std::fprintf(stderr, "record_serve: bad --draft-k value \"%s\"\n",
                     argv[i]);
        return 2;
      }
    } else if (arg == "--fault-plan") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "record_serve: --fault-plan needs a value\n");
        return 2;
      }
      const auto parsed = serve::parse_fault_plan(argv[++i]);
      if (!parsed.is_ok()) {
        std::fprintf(stderr, "record_serve: %s\n", parsed.message().c_str());
        return 2;
      }
      fault_plan = parsed.value();
    } else if (arg == "--preempt") {
      preempt = true;
    } else if (arg == "--deadline") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "record_serve: --deadline needs a value\n");
        return 2;
      }
      deadline_ticks = std::atoll(argv[++i]);
      if (deadline_ticks < 1) {
        std::fprintf(stderr, "record_serve: bad --deadline value \"%s\"\n",
                     argv[i]);
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: record_serve [out.json] [--threads N] "
                   "[--policy fifo|sjf|prefix-aware] "
                   "[--workload synthetic|shared-prefix|poisson|bursty|"
                   "long-prompt|trace=PATH] [--seed N] [--rate R] "
                   "[--prefill-chunk N] "
                   "[--kv-format FP32|INT8|BFP<m>|BBFP(<m>,<o>)] "
                   "[--draft STRATEGY --draft-k N] "
                   "[--fault-plan SPEC] [--preempt] [--deadline TICKS]\n");
      return 0;
    } else if (arg.rfind("-", 0) == 0) {
      std::fprintf(stderr, "record_serve: unknown option \"%s\"\n",
                   arg.c_str());
      return 2;
    } else if (have_out_path) {
      std::fprintf(stderr, "record_serve: unexpected argument \"%s\"\n",
                   arg.c_str());
      return 2;
    } else {
      out_path = arg;
      have_out_path = true;
    }
  }
  if ((draft.empty() && draft_k > 0) || (!draft.empty() && draft_k == 0)) {
    std::fprintf(stderr,
                 "record_serve: --draft and --draft-k go together\n");
    return 2;
  }
  // The knob must land before the first ThreadPool::global() use.
  if (threads_flag > 0) common::ThreadPool::set_global_threads(threads_flag);

  const char* model_env = std::getenv("BBAL_MODEL");
  const std::string model_name = model_env != nullptr ? model_env : "Llama-7B";
  const int eval_tokens = env_int("BBAL_EVAL_TOKENS", 128);
  const int num_requests = env_int("BBAL_SERVE_REQUESTS", 8);
  const int new_tokens = env_int("BBAL_SERVE_NEW_TOKENS", 16);
  const int max_batch = env_int("BBAL_SERVE_BATCH", 4);

  // The serving rows of the paper's strategy space: the FP32 reference, the
  // INT8 ASIC baseline, classic BFP and the BBAL formats.
  const std::vector<std::string> strategies = {"FP32", "INT8", "BFP4",
                                               "BBFP(4,2)", "BBFP(6,3)"};

  const auto wall_start = std::chrono::steady_clock::now();
  const auto prepared = prepare_shared(model_name, eval_tokens);

  // Build the request mix and its self-describing provenance string. The
  // descriptor lands in meta and in every row ("workload", part of the
  // bench_compare row key), so a baseline names the traffic that made it.
  std::vector<serve::Request> requests;
  std::string descriptor;
  if (workload == "synthetic") {
    requests = serve::synthetic_requests(prepared->config, num_requests,
                                         /*base_prompt_len=*/12, new_tokens,
                                         seed);
    descriptor = "synthetic(n=" + std::to_string(num_requests) +
                 ",seed=" + std::to_string(seed) + ")";
  } else if (workload == "shared-prefix") {
    const int prefix_len = env_int("BBAL_SERVE_PREFIX", 8);
    requests = serve::shared_prefix_requests(prepared->config, num_requests,
                                             prefix_len, /*suffix_len=*/4,
                                             new_tokens, seed);
    descriptor = "shared-prefix(n=" + std::to_string(num_requests) +
                 ",prefix=" + std::to_string(prefix_len) +
                 ",seed=" + std::to_string(seed) + ")";
  } else if (workload == "long-prompt") {
    const int long_prompt = env_int("BBAL_SERVE_LONG_PROMPT", 96);
    const int long_every = env_int("BBAL_SERVE_LONG_EVERY", 4);
    requests = serve::long_prompt_requests(prepared->config, num_requests,
                                           /*base_prompt_len=*/12, long_prompt,
                                           long_every, new_tokens, seed);
    serve::ArrivalSpec spec;
    spec.kind = serve::ArrivalSpec::Kind::kPoisson;
    spec.rate = rate;
    spec.seed = seed;
    const auto ticks = serve::generate_arrivals(spec, num_requests);
    serve::stamp_arrivals(requests, ticks);
    descriptor = "long-prompt(n=" + std::to_string(num_requests) +
                 ",long=" + std::to_string(long_prompt) +
                 ",every=" + std::to_string(long_every) +
                 ",seed=" + std::to_string(seed) + ")+" +
                 serve::describe_arrivals(spec);
  } else if (workload == "poisson" || workload == "bursty") {
    requests = serve::synthetic_requests(prepared->config, num_requests,
                                         /*base_prompt_len=*/12, new_tokens,
                                         seed);
    serve::ArrivalSpec spec;
    spec.kind = workload == "poisson" ? serve::ArrivalSpec::Kind::kPoisson
                                      : serve::ArrivalSpec::Kind::kBursty;
    spec.rate = rate;
    spec.seed = seed;
    const auto ticks = serve::generate_arrivals(spec, num_requests);
    serve::stamp_arrivals(requests, ticks);
    descriptor = serve::describe_arrivals(spec);
  } else {  // trace=PATH, validated during flag parsing
    const std::string path = workload.substr(6);
    auto entries = serve::read_trace(path);
    if (!entries.is_ok()) {
      std::fprintf(stderr, "record_serve: %s\n", entries.message().c_str());
      return 1;
    }
    requests = serve::materialize_trace(prepared->config, entries.value(),
                                        seed);
    descriptor = "trace(" + path + ",seed=" + std::to_string(seed) + ")";
  }

  // Chaos mode (--fault-plan / --preempt / --deadline): deadline-stamp the
  // mix and suffix the descriptor so chaos rows never collide with default
  // rows under bench_compare. The fault-free request copy keeps the
  // original stamps — it feeds the sibling runs the chaos gate diffs
  // against.
  const bool chaos = !fault_plan.empty() || preempt || deadline_ticks > 0;
  const std::vector<serve::Request> clean_requests = requests;
  if (deadline_ticks > 0)
    for (serve::Request& req : requests)
      req.deadline_tick = req.arrival_tick + deadline_ticks;
  if (chaos) {
    if (!fault_plan.empty())
      descriptor += "+faults(" + fault_plan.describe() + ")";
    if (preempt) descriptor += "+preempt=on";
    if (deadline_ticks > 0)
      descriptor += "+deadline=" + std::to_string(deadline_ticks);
  }

  std::fprintf(stderr,
               "serving %zu requests [%s] (x%d tokens, batch %d) on %s "
               "under %zu strategies...\n",
               requests.size(), descriptor.c_str(), new_tokens, max_batch,
               model_name.c_str(), strategies.size());

  std::vector<std::string> rows;
  // Strategy-row stream hashes, kept so the committed speculative rows can
  // be checked against their target-only siblings: greedy verification
  // means speculation must reproduce these streams bit for bit.
  std::vector<std::pair<std::string, std::uint32_t>> strategy_hashes;
  for (const std::string& strategy : strategies) {
    const auto spec = quant::StrategySpec::parse(strategy);
    if (!spec.is_ok()) {
      std::fprintf(stderr, "  %s: %s\n", strategy.c_str(),
                   spec.message().c_str());
      return 1;
    }
    serve::Engine::Options options;
    options.max_batch = max_batch;
    options.policy = policy;
    if (!kv_format.empty()) options.kv_format = kv_format;
    if (draft_k > 0) {
      options.draft = draft;
      options.draft_k = draft_k;
    }
    if (chaos) {
      options.faults = fault_plan;
      options.preempt = preempt;
    }
    if (prefill_chunk > 0) {
      options.prefill_chunk = prefill_chunk;
      // Budget = chunk: a tick grants at most one chunk's worth of prefill
      // tokens across the batch, the decode-protecting pairing the docs
      // study uses. Chunk 1 is the legacy lockstep, left unbudgeted.
      options.prefill_budget = prefill_chunk > 1 ? prefill_chunk : 0;
    }
    // Iso-area accelerators (Fig. 8's comparison rule) price the rows
    // whose strategy has a PE design.
    if (BackendRegistry::instance().has_cost_model(spec.value())) {
      auto cfg = accel::make_iso_area_config(spec.value(),
                                             /*pe_area_budget_um2=*/150000.0);
      if (!cfg.is_ok()) {
        std::fprintf(stderr, "  %s: %s\n", strategy.c_str(),
                     cfg.message().c_str());
        return 1;
      }
      options.accelerator = std::move(cfg).value();
    }
    auto engine = serve::Engine::create(prepared, spec.value(),
                                        quant::StrategySpec::fp32(),
                                        std::move(options));
    if (!engine.is_ok()) {
      std::fprintf(stderr, "  %s: %s\n", strategy.c_str(),
                   engine.message().c_str());
      return 1;
    }
    for (const serve::Request& req : requests) engine.value().submit(req);
    serve::Report report = engine.value().run();
    report.workload = descriptor;
    if (!chaos && report.completed != report.requests) {
      std::fprintf(stderr, "  %s: only %lld of %lld requests completed\n",
                   strategy.c_str(),
                   static_cast<long long>(report.completed),
                   static_cast<long long>(report.requests));
      return 1;
    }
    if (chaos) {
      // The hash gate: a fault-free sibling engine (same strategy, same
      // configuration, no faults/preempt/deadlines) serves the unstamped
      // mix; the faulted run must agree stream for stream.
      serve::Engine::Options clean_options;
      clean_options.max_batch = max_batch;
      clean_options.policy = policy;
      if (!kv_format.empty()) clean_options.kv_format = kv_format;
      if (draft_k > 0) {
        clean_options.draft = draft;
        clean_options.draft_k = draft_k;
      }
      if (prefill_chunk > 0) {
        clean_options.prefill_chunk = prefill_chunk;
        clean_options.prefill_budget = prefill_chunk > 1 ? prefill_chunk : 0;
      }
      if (BackendRegistry::instance().has_cost_model(spec.value()))
        clean_options.accelerator =
            accel::make_iso_area_config(spec.value(),
                                        /*pe_area_budget_um2=*/150000.0)
                .expect("iso-area config");
      auto clean_engine =
          serve::Engine::create(prepared, spec.value(),
                                quant::StrategySpec::fp32(),
                                std::move(clean_options));
      if (!clean_engine.is_ok()) {
        std::fprintf(stderr, "  %s (sibling): %s\n", strategy.c_str(),
                     clean_engine.message().c_str());
        return 1;
      }
      for (const serve::Request& req : clean_requests)
        clean_engine.value().submit(req);
      const serve::Report clean = clean_engine.value().run();
      if (!chaos_rows_agree(strategy.c_str(), report, clean)) return 1;
      std::fprintf(stderr,
                   "  %s: %lld/%lld completed, hash %u, %lld preempted "
                   "%lld resumed, %lld timeout %lld cancelled %lld oom\n",
                   strategy.c_str(),
                   static_cast<long long>(report.completed),
                   static_cast<long long>(report.requests),
                   report.stream_hash,
                   static_cast<long long>(report.preemptions),
                   static_cast<long long>(report.resumes),
                   static_cast<long long>(report.timeouts),
                   static_cast<long long>(report.cancellations),
                   static_cast<long long>(report.oom_failures));
    } else if (draft_k > 0) {
      std::fprintf(stderr,
                   "  %s: %lld tokens, hash %u, acceptance %.3f, "
                   "speedup %.3f\n",
                   strategy.c_str(),
                   static_cast<long long>(report.generated_tokens),
                   report.stream_hash, report.acceptance_rate,
                   report.speedup_vs_target);
    } else {
      std::fprintf(stderr, "  %s: %lld tokens, hash %u, weights %lld B\n",
                   strategy.c_str(),
                   static_cast<long long>(report.generated_tokens),
                   report.stream_hash,
                   static_cast<long long>(report.weights_bytes));
    }
    strategy_hashes.emplace_back(strategy, report.stream_hash);
    rows.push_back(report.to_json());
  }

  // The committed accuracy/memory frontier: one shared-prefix run per
  // storable KV format, all on the BBFP(4,2) matmul under the prefix-aware
  // policy. Every engine serves the same traffic, so the rows differ only
  // in how the pool stores K/V — kv_bytes_peak falls with the format while
  // the stream hash records any token divergence. Skipped when --kv-format
  // or --prefill-chunk pins an ad-hoc configuration (those paths record
  // strategy rows only).
  if (kv_format.empty() && prefill_chunk == 0 && draft_k == 0 && !chaos) {
    const int frontier_prefix = env_int("BBAL_SERVE_FRONTIER_PREFIX", 24);
    const auto frontier_requests = serve::shared_prefix_requests(
        prepared->config, num_requests, frontier_prefix, /*suffix_len=*/4,
        new_tokens, seed);
    const std::string frontier_descriptor =
        "shared-prefix(n=" + std::to_string(num_requests) +
        ",prefix=" + std::to_string(frontier_prefix) +
        ",seed=" + std::to_string(seed) + ")";
    const auto frontier_spec =
        quant::StrategySpec::parse("BBFP(4,2)").expect("BBFP(4,2)");
    std::fprintf(stderr, "frontier: %zu requests [%s] under %zu KV formats\n",
                 frontier_requests.size(), frontier_descriptor.c_str(),
                 strategies.size());
    for (const std::string& format : strategies) {
      serve::Engine::Options options;
      options.max_batch = max_batch;
      options.policy = "prefix-aware";
      options.kv_format = format;
      auto cfg = accel::make_iso_area_config(frontier_spec,
                                             /*pe_area_budget_um2=*/150000.0);
      if (!cfg.is_ok()) {
        std::fprintf(stderr, "  kv=%s: %s\n", format.c_str(),
                     cfg.message().c_str());
        return 1;
      }
      options.accelerator = std::move(cfg).value();
      auto engine = serve::Engine::create(prepared, frontier_spec,
                                          quant::StrategySpec::fp32(),
                                          std::move(options));
      if (!engine.is_ok()) {
        std::fprintf(stderr, "  kv=%s: %s\n", format.c_str(),
                     engine.message().c_str());
        return 1;
      }
      for (const serve::Request& req : frontier_requests)
        engine.value().submit(req);
      serve::Report report = engine.value().run();
      report.workload = frontier_descriptor;
      if (report.completed != report.requests) {
        std::fprintf(stderr, "  kv=%s: only %lld of %lld requests completed\n",
                     format.c_str(), static_cast<long long>(report.completed),
                     static_cast<long long>(report.requests));
        return 1;
      }
      std::fprintf(stderr, "  kv=%s: %lld tokens, hash %u, kv peak %lld B\n",
                   format.c_str(),
                   static_cast<long long>(report.generated_tokens),
                   report.stream_hash,
                   static_cast<long long>(report.kv_bytes_peak));
      rows.push_back(report.to_json());
    }
  }

  // The committed chunked-prefill comparison: the long-prompt mix under
  // Poisson arrivals, served by the BBFP(4,2)/fifo engine at chunk 1
  // (the legacy lockstep), 8 and 32 — identical token streams (the
  // engine's bit-identity contract, stream_hash exact across the rows)
  // with TTFT falling as the chunk grows (docs/PREFILL.md quantifies).
  // The chunk size is named in the workload descriptor so the rows key
  // separately under bench_compare.
  if (kv_format.empty() && prefill_chunk == 0 && draft_k == 0 && !chaos) {
    const int long_prompt = env_int("BBAL_SERVE_LONG_PROMPT", 96);
    const int long_every = env_int("BBAL_SERVE_LONG_EVERY", 4);
    auto prefill_requests = serve::long_prompt_requests(
        prepared->config, num_requests, /*base_prompt_len=*/12, long_prompt,
        long_every, new_tokens, seed);
    serve::ArrivalSpec arrival;
    arrival.kind = serve::ArrivalSpec::Kind::kPoisson;
    arrival.rate = rate;
    arrival.seed = seed;
    const auto ticks = serve::generate_arrivals(arrival, num_requests);
    serve::stamp_arrivals(prefill_requests, ticks);
    const std::string base_descriptor =
        "long-prompt(n=" + std::to_string(num_requests) +
        ",long=" + std::to_string(long_prompt) +
        ",every=" + std::to_string(long_every) +
        ",seed=" + std::to_string(seed) + ")+" +
        serve::describe_arrivals(arrival);
    const auto prefill_spec =
        quant::StrategySpec::parse("BBFP(4,2)").expect("BBFP(4,2)");
    std::fprintf(stderr, "prefill comparison: %zu requests [%s]\n",
                 prefill_requests.size(), base_descriptor.c_str());
    for (const int chunk : {1, 8, 32}) {
      serve::Engine::Options options;
      options.max_batch = max_batch;
      options.policy = "fifo";
      options.prefill_chunk = chunk;
      options.prefill_budget = chunk > 1 ? chunk : 0;
      options.accelerator =
          accel::make_iso_area_config(prefill_spec,
                                      /*pe_area_budget_um2=*/150000.0)
              .expect("iso-area config");
      auto engine = serve::Engine::create(prepared, prefill_spec,
                                          quant::StrategySpec::fp32(),
                                          std::move(options));
      if (!engine.is_ok()) {
        std::fprintf(stderr, "  chunk=%d: %s\n", chunk,
                     engine.message().c_str());
        return 1;
      }
      for (const serve::Request& req : prefill_requests)
        engine.value().submit(req);
      serve::Report report = engine.value().run();
      report.workload = base_descriptor + "+chunk=" + std::to_string(chunk);
      if (report.completed != report.requests) {
        std::fprintf(stderr, "  chunk=%d: only %lld of %lld completed\n",
                     chunk, static_cast<long long>(report.completed),
                     static_cast<long long>(report.requests));
        return 1;
      }
      std::fprintf(stderr,
                   "  chunk=%2d: hash %u, mean ttft %.4gs, p99 itl %.4gs, "
                   "%lld mixed ticks\n",
                   chunk, report.stream_hash, report.ttft_mean_seconds,
                   report.p99_inter_token_seconds,
                   static_cast<long long>(report.mixed_ticks));
      rows.push_back(report.to_json());
    }
  }
  // The committed speculative comparison: cross-tier (draft -> target)
  // pairs over the same synthetic mix as the strategy rows, each target
  // priced on its iso-area accelerator and each draft on an iso-area
  // re-provisioning of the SAME silicon budget. Greedy verification makes
  // every row's stream hash equal its target-only sibling's above — the
  // tool enforces that here, so a committed speculative row can never
  // disagree with the baseline it claims to accelerate. The pairs span
  // the interesting frontier: the INT8 self-draft where batched
  // verification alone beats sequential decode (speedup_vs_target > 1.0
  // at acceptance exactly 1.0), the best cross-tier pair (a high-fidelity
  // BBFP(6,3) draft under the INT8 target), and the self-draft reference
  // on the paper's headline BBFP(4,2) format.
  if (kv_format.empty() && prefill_chunk == 0 && draft_k == 0 && !chaos) {
    struct SpecPair {
      const char* target;
      const char* draft;
      int k;
    };
    const std::vector<SpecPair> pairs = {
        {"INT8", "INT8", 4},
        {"INT8", "BBFP(6,3)", 2},
        {"BBFP(4,2)", "BBFP(4,2)", 4},
    };
    const auto spec_requests = serve::synthetic_requests(
        prepared->config, num_requests, /*base_prompt_len=*/12, new_tokens,
        seed);
    const std::string spec_descriptor =
        "synthetic(n=" + std::to_string(num_requests) +
        ",seed=" + std::to_string(seed) + ")";
    std::fprintf(stderr, "speculative: %zu requests [%s] under %zu pairs\n",
                 spec_requests.size(), spec_descriptor.c_str(), pairs.size());
    for (const SpecPair& pair : pairs) {
      const auto spec = quant::StrategySpec::parse(pair.target)
                            .expect("speculative target");
      serve::Engine::Options options;
      options.max_batch = max_batch;
      options.policy = "fifo";
      options.draft = pair.draft;
      options.draft_k = pair.k;
      options.accelerator =
          accel::make_iso_area_config(spec, /*pe_area_budget_um2=*/150000.0)
              .expect("iso-area config");
      auto engine = serve::Engine::create(prepared, spec,
                                          quant::StrategySpec::fp32(),
                                          std::move(options));
      if (!engine.is_ok()) {
        std::fprintf(stderr, "  %s<-%s: %s\n", pair.target, pair.draft,
                     engine.message().c_str());
        return 1;
      }
      for (const serve::Request& req : spec_requests)
        engine.value().submit(req);
      serve::Report report = engine.value().run();
      report.workload = spec_descriptor;
      if (report.completed != report.requests) {
        std::fprintf(stderr, "  %s<-%s: only %lld of %lld completed\n",
                     pair.target, pair.draft,
                     static_cast<long long>(report.completed),
                     static_cast<long long>(report.requests));
        return 1;
      }
      // The strategy rows above served this exact mix when the run used
      // the default workload — cross-check the identity there.
      if (workload == "synthetic" && policy == "fifo") {
        for (const auto& [strategy, hash] : strategy_hashes) {
          if (strategy == pair.target && report.stream_hash != hash) {
            std::fprintf(stderr,
                         "  %s<-%s: stream hash %u diverged from the "
                         "target-only row's %u — speculation changed "
                         "tokens\n",
                         pair.target, pair.draft, report.stream_hash, hash);
            return 1;
          }
        }
      }
      std::fprintf(stderr,
                   "  %s<-%s k=%d: hash %u, acceptance %.3f, speedup %.3f\n",
                   pair.target, pair.draft, pair.k, report.stream_hash,
                   report.acceptance_rate, report.speedup_vs_target);
      rows.push_back(report.to_json());
    }
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n\"meta\": {\"model\": \"%s\", \"eval_tokens\": %d, "
               "\"requests\": %zu, \"new_tokens\": %d, \"max_batch\": %d, "
               "\"policy\": \"%s\", \"workload\": \"%s\", \"seed\": %llu, "
               "\"threads\": %d, \"hardware_concurrency\": %u, "
               "\"wall_seconds\": %.6g},\n\"rows\": [\n",
               model_name.c_str(), eval_tokens, requests.size(), new_tokens,
               max_batch, policy.c_str(), descriptor.c_str(),
               static_cast<unsigned long long>(seed),
               common::ThreadPool::global().thread_count(),
               std::thread::hardware_concurrency(), wall_seconds);
  for (std::size_t i = 0; i < rows.size(); ++i)
    std::fprintf(out, "%s  %s", i == 0 ? "" : ",\n", rows[i].c_str());
  std::fprintf(out, "\n]\n}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s (%.2fs wall-clock)\n", out_path.c_str(),
               wall_seconds);
  return 0;
}
