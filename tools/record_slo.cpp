// record_slo — capacity-planning baseline: sweep offered load x scheduler
// policy at ONE fixed model/strategy pair and record goodput under an SLO.
//
// Every (load, policy) cell serves the same shared-prefix trace
// (serve::shared_prefix_trace -> materialize_trace, the recorded-workload
// path) stamped with Poisson arrivals at that load, on a BBFP(4,2) engine
// priced by the iso-area accelerator. The row carries the open-loop
// queueing metrics (queue delay, offered vs achieved tokens/tick), the
// latency tails (p99 TTFT, inter-token percentiles) and goodput_under_slo
// against the configured SLO. Everything is on the simulated clock, so
// rows are bit-identical across hosts and thread counts; CI diffs a fresh
// run against the committed BENCH_slo.json with tools/bench_compare
// (stream hashes and token counts exact, latency/delay/goodput fields
// within the rate tolerance).
//
// The committed sweep shows the saturation knee the study is about: at
// the low load the engine keeps up (goodput 1.0, queues empty), at the
// top load arrivals outrun capacity (p99 TTFT >= 2x the low-load point,
// goodput < 1.0). bench_serve_slo charts and gates the same knee.
//
// Output shape: {"meta": {...}, "rows": [...]}, one row per
// (load, policy), the same contract as record_serve/record_table2.
//
// Usage: record_slo [out.json] [--threads N] [--quick]
//                   [--slo-ttft SECONDS] [--slo-itl SECONDS]
//                   [--prefill-chunk N]
//        --quick records only the top (overload) load point — the CI
//        quick tier gates it against the full committed sweep with
//        bench_compare --rows-subset.
//        --prefill-chunk N serves every cell with chunked prefill
//        (prefill_chunk = N, prefill_budget = N; docs/PREFILL.md) — an
//        ad-hoc capacity study, not part of the committed baseline. N = 1
//        is the legacy lockstep (budget 0), byte-exact with the default.
// Env:   BBAL_MODEL (default Llama-7B), BBAL_EVAL_TOKENS (default 128),
//        BBAL_SLO_REQUESTS (default 24), BBAL_SLO_NEW_TOKENS (default 16),
//        BBAL_SLO_BATCH (default 4), BBAL_THREADS (--threads wins)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bbal/registry.hpp"
#include "common/threadpool.hpp"
#include "serve/engine.hpp"
#include "serve/faults.hpp"
#include "serve/load.hpp"
#include "serve/trace.hpp"

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

// The swept offered loads (requests per engine tick). Capacity with the
// default mix (batch 4, ~20-token prompts + 16 completions) is roughly
// 0.1 req/tick, so the three points sit well under, near, and well over
// the knee.
constexpr double kLoads[] = {0.02, 0.08, 0.32};

}  // namespace

int main(int argc, char** argv) {
  using namespace bbal;

  std::string out_path = "BENCH_slo.json";
  bool have_out_path = false;
  bool quick = false;
  int threads_flag = 0;
  // Default SLO: chosen against the committed Llama-7B/BBFP(4,2) sweep so
  // every sub-knee point passes with >=60% headroom while the overload
  // point visibly fails under fifo/sjf (p99 TTFT 0.022s vs the 0.010s
  // bound). Re-derive after a model/accelerator change: ~1.6x the mid-load
  // p99 TTFT, ~25x the per-tick step latency (docs/LOADGEN.md).
  double slo_ttft = 0.010;
  double slo_itl = 0.005;
  int prefill_chunk = 0;  ///< 0: the engine default (no chunking)
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--prefill-chunk") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "record_slo: --prefill-chunk needs a value\n");
        return 2;
      }
      prefill_chunk = std::atoi(argv[++i]);
      if (prefill_chunk < 1) {
        std::fprintf(stderr, "record_slo: bad --prefill-chunk value \"%s\"\n",
                     argv[i]);
        return 2;
      }
    } else if (arg == "--threads") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "record_slo: --threads needs a value\n");
        return 2;
      }
      threads_flag = std::atoi(argv[++i]);
      if (threads_flag <= 0) {
        std::fprintf(stderr, "record_slo: bad --threads value \"%s\"\n",
                     argv[i]);
        return 2;
      }
    } else if (arg == "--slo-ttft" || arg == "--slo-itl") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "record_slo: %s needs a value\n", arg.c_str());
        return 2;
      }
      char* end = nullptr;
      const double value = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || value <= 0.0) {
        std::fprintf(stderr, "record_slo: bad %s value \"%s\"\n", arg.c_str(),
                     argv[i]);
        return 2;
      }
      (arg == "--slo-ttft" ? slo_ttft : slo_itl) = value;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: record_slo [out.json] [--threads N] [--quick] "
                   "[--slo-ttft SECONDS] [--slo-itl SECONDS] "
                   "[--prefill-chunk N]\n");
      return 0;
    } else if (arg.rfind("-", 0) == 0) {
      std::fprintf(stderr, "record_slo: unknown option \"%s\"\n", arg.c_str());
      return 2;
    } else if (have_out_path) {
      std::fprintf(stderr, "record_slo: unexpected argument \"%s\"\n",
                   arg.c_str());
      return 2;
    } else {
      out_path = arg;
      have_out_path = true;
    }
  }
  if (threads_flag > 0) common::ThreadPool::set_global_threads(threads_flag);

  const char* model_env = std::getenv("BBAL_MODEL");
  const std::string model_name = model_env != nullptr ? model_env : "Llama-7B";
  const int eval_tokens = env_int("BBAL_EVAL_TOKENS", 128);
  const int num_requests = env_int("BBAL_SLO_REQUESTS", 24);
  const int new_tokens = env_int("BBAL_SLO_NEW_TOKENS", 16);
  const int max_batch = env_int("BBAL_SLO_BATCH", 4);
  constexpr std::uint64_t kSeed = 2024;
  constexpr int kGroups = 4;
  constexpr int kPrefixLen = 16;  // one full KV page: prefix-aware can share

  // --quick keeps only the overload point — the one whose regression
  // (a capacity loss) the gate most needs to catch.
  std::vector<double> loads(std::begin(kLoads), std::end(kLoads));
  if (quick) loads.erase(loads.begin(), loads.end() - 1);

  const auto wall_start = std::chrono::steady_clock::now();
  const auto prepared = prepare_shared(model_name, eval_tokens);
  const auto spec = quant::StrategySpec::parse("BBFP(4,2)").expect("strategy");

  std::fprintf(stderr,
               "SLO sweep: %zu load(s) x %zu policies, %d requests "
               "(prefix %d, x%d tokens, batch %d) on %s, BBFP(4,2), "
               "SLO ttft<=%.3gs itl<=%.3gs...\n",
               loads.size(), serve::policy_names().size(), num_requests,
               kPrefixLen, new_tokens, max_batch, model_name.c_str(),
               slo_ttft, slo_itl);

  std::vector<std::string> rows;
  for (const double load : loads) {
    // One trace per load: the request *shapes* are load-invariant (same
    // prompts, same budgets); only the arrival stamps move.
    serve::ArrivalSpec arrival;
    arrival.kind = serve::ArrivalSpec::Kind::kPoisson;
    arrival.rate = load;
    arrival.seed = kSeed;
    const auto ticks = serve::generate_arrivals(arrival, num_requests);
    const auto entries = serve::shared_prefix_trace(
        num_requests, ticks, kGroups, kPrefixLen, /*suffix_len=*/4,
        new_tokens);
    const auto requests =
        serve::materialize_trace(prepared->config, entries, kSeed);
    const std::string descriptor =
        serve::describe_arrivals(arrival) + "+shared-prefix(n=" +
        std::to_string(num_requests) + ",groups=" + std::to_string(kGroups) +
        ",prefix=" + std::to_string(kPrefixLen) + ")";

    for (const std::string& policy : serve::policy_names()) {
      serve::Engine::Options options;
      options.max_batch = max_batch;
      options.policy = policy;
      if (prefill_chunk > 0) {
        options.prefill_chunk = prefill_chunk;
        options.prefill_budget = prefill_chunk > 1 ? prefill_chunk : 0;
      }
      options.accelerator =
          accel::make_iso_area_config(spec, /*pe_area_budget_um2=*/150000.0)
              .expect("iso-area config");
      options.slo = serve::Slo{slo_ttft, slo_itl};
      auto engine = serve::Engine::create(prepared, spec,
                                          quant::StrategySpec::fp32(),
                                          std::move(options));
      if (!engine.is_ok()) {
        std::fprintf(stderr, "  %s @ %.3g: %s\n", policy.c_str(), load,
                     engine.message().c_str());
        return 1;
      }
      for (const serve::Request& req : requests) engine.value().submit(req);
      serve::Report report = engine.value().run();
      if (report.completed != report.requests) {
        std::fprintf(stderr, "  %s @ %.3g: only %lld of %lld completed\n",
                     policy.c_str(), load,
                     static_cast<long long>(report.completed),
                     static_cast<long long>(report.requests));
        return 1;
      }
      report.workload = descriptor;
      std::fprintf(stderr,
                   "  load %.3g %-12s p99 ttft %.4gs, queue p99 %.4g ticks, "
                   "goodput %.3f, hash %u\n",
                   load, policy.c_str(), report.p99_ttft_seconds,
                   report.queue_delay_p99_ticks, report.goodput_under_slo,
                   report.stream_hash);
      rows.push_back(report.to_json());
    }
  }

  // The committed preemption pair: the overload cell (load 0.32,
  // prefix-aware) re-served under a mid-run pool-exhaustion window
  // (serve::FaultPlan), once with preemption off and once with it on.
  // Off, every decode flight that crosses a page boundary inside the
  // window retires with a typed `oom`; on, the scheduler suspends the
  // crossers, waits out the window and resumes them bit-identically.
  // The pair is scored against a degraded-mode SLO (10x the baseline
  // bounds, recorded in the rows): a resumed request's inter-token gap
  // includes its suspension, so the tight steady-state SLO would score
  // a rescued request and a dead one identically — the degraded bound
  // is exactly the "late beats never" contract preemption exists to
  // honour. Record-time gates keep the pair honest: goodput with
  // preemption must STRICTLY exceed goodput without, and every failed
  // request must carry a typed finish reason.
  if (!quick && prefill_chunk == 0) {
    const double load = kLoads[std::size(kLoads) - 1];
    serve::ArrivalSpec arrival;
    arrival.kind = serve::ArrivalSpec::Kind::kPoisson;
    arrival.rate = load;
    arrival.seed = kSeed;
    const auto ticks = serve::generate_arrivals(arrival, num_requests);
    const auto entries = serve::shared_prefix_trace(
        num_requests, ticks, kGroups, kPrefixLen, /*suffix_len=*/4,
        new_tokens);
    const auto requests =
        serve::materialize_trace(prepared->config, entries, kSeed);
    // Window [40, 70): past the first admissions (so the engine is mid
    // decode, not idle) and wide enough that the synchronized
    // page-boundary crossings of whole batches land inside it.
    const auto plan =
        serve::parse_fault_plan("exhaust@40..70").expect("fault plan");
    const double degraded_ttft = 10.0 * slo_ttft;
    const double degraded_itl = 10.0 * slo_itl;
    double goodput[2] = {0.0, 0.0};
    for (const bool preempt_on : {false, true}) {
      serve::Engine::Options options;
      options.max_batch = max_batch;
      options.policy = "prefix-aware";
      options.accelerator =
          accel::make_iso_area_config(spec, /*pe_area_budget_um2=*/150000.0)
              .expect("iso-area config");
      options.slo = serve::Slo{degraded_ttft, degraded_itl};
      options.faults = plan;
      options.preempt = preempt_on;
      auto engine = serve::Engine::create(prepared, spec,
                                          quant::StrategySpec::fp32(),
                                          std::move(options));
      if (!engine.is_ok()) {
        std::fprintf(stderr, "  preempt pair (%s): %s\n",
                     preempt_on ? "on" : "off",
                     engine.message().c_str());
        return 1;
      }
      for (const serve::Request& req : requests) engine.value().submit(req);
      serve::Report report = engine.value().run();
      for (const serve::RequestResult& r : report.results) {
        if (!r.ok && r.reason == serve::FinishReason::kNone) {
          std::fprintf(stderr,
                       "  preempt pair (%s): request %d failed with an "
                       "UNTYPED error: %s\n",
                       preempt_on ? "on" : "off", r.id, r.error.c_str());
          return 1;
        }
      }
      report.workload = serve::describe_arrivals(arrival) +
                        "+shared-prefix(n=" + std::to_string(num_requests) +
                        ",groups=" + std::to_string(kGroups) +
                        ",prefix=" + std::to_string(kPrefixLen) + ")+faults(" +
                        plan.describe() +
                        ")+preempt=" + (preempt_on ? "on" : "off");
      goodput[preempt_on ? 1 : 0] = report.goodput_under_slo;
      std::fprintf(stderr,
                   "  pair preempt=%-3s %lld/%lld completed, %lld oom, "
                   "%lld preempted %lld resumed, goodput %.3f, hash %u\n",
                   preempt_on ? "on" : "off",
                   static_cast<long long>(report.completed),
                   static_cast<long long>(report.requests),
                   static_cast<long long>(report.oom_failures),
                   static_cast<long long>(report.preemptions),
                   static_cast<long long>(report.resumes),
                   report.goodput_under_slo, report.stream_hash);
      rows.push_back(report.to_json());
    }
    if (goodput[1] <= goodput[0]) {
      std::fprintf(stderr,
                   "preemption pair: goodput with preemption (%.3f) must "
                   "STRICTLY exceed goodput without (%.3f)\n",
                   goodput[1], goodput[0]);
      return 1;
    }
  }

  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n\"meta\": {\"model\": \"%s\", \"eval_tokens\": %d, "
               "\"requests\": %d, \"new_tokens\": %d, \"max_batch\": %d, "
               "\"prefix_len\": %d, \"groups\": %d, \"seed\": %llu, "
               "\"slo_ttft_seconds\": %.17g, "
               "\"slo_inter_token_seconds\": %.17g, \"quick\": %s, "
               "\"threads\": %d, \"hardware_concurrency\": %u, "
               "\"wall_seconds\": %.6g},\n\"rows\": [\n",
               model_name.c_str(), eval_tokens, num_requests, new_tokens,
               max_batch, kPrefixLen, kGroups,
               static_cast<unsigned long long>(kSeed), slo_ttft, slo_itl,
               quick ? "true" : "false",
               common::ThreadPool::global().thread_count(),
               std::thread::hardware_concurrency(), wall_seconds);
  for (std::size_t i = 0; i < rows.size(); ++i)
    std::fprintf(out, "%s  %s", i == 0 ? "" : ",\n", rows[i].c_str());
  std::fprintf(out, "\n]\n}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s (%zu rows, %.2fs wall-clock)\n",
               out_path.c_str(), rows.size(), wall_seconds);
  return 0;
}
