// Record a Table II baseline through the SweepRunner: perplexity +
// simulated throughput/energy per strategy, as one JSON file. CI diffs a
// fresh run against the committed BENCH_table2.json with tools/
// bench_compare — perplexity/energy/memory must stay bit-identical at any
// thread count; only wall-clock metadata may drift.
//
// Output shape: {"meta": {...sweep stats...}, "rows": [...one object per
// strategy...]}. bench_compare also accepts the legacy bare-array shape.
//
// Usage: ./build/tools/record_table2 [out.json] [--threads N]
// Env:   BBAL_MODEL (default Llama-7B), BBAL_EVAL_TOKENS (default 256),
//        BBAL_THREADS (default hardware_concurrency; --threads wins)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bbal/registry.hpp"
#include "bbal/sweep.hpp"
#include "common/threadpool.hpp"

int main(int argc, char** argv) {
  using namespace bbal;

  std::string out_path = "BENCH_table2.json";
  bool have_out_path = false;
  int threads_flag = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "record_table2: --threads needs a value\n");
        return 2;
      }
      threads_flag = std::atoi(argv[++i]);
      if (threads_flag <= 0) {
        std::fprintf(stderr, "record_table2: bad --threads value \"%s\"\n",
                     argv[i]);
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr, "usage: record_table2 [out.json] [--threads N]\n");
      return 0;
    } else if (arg.rfind("-", 0) == 0) {
      // An unknown flag must not silently become the output path (the CI
      // gate would then sweep with default threads and write nowhere).
      std::fprintf(stderr, "record_table2: unknown option \"%s\"\n",
                   arg.c_str());
      return 2;
    } else if (have_out_path) {
      std::fprintf(stderr, "record_table2: unexpected argument \"%s\"\n",
                   arg.c_str());
      return 2;
    } else {
      out_path = arg;
      have_out_path = true;
    }
  }
  // The knob must land before the first ThreadPool::global() use.
  if (threads_flag > 0) common::ThreadPool::set_global_threads(threads_flag);

  const char* model_env = std::getenv("BBAL_MODEL");
  const std::string model_name = model_env != nullptr ? model_env : "Llama-7B";
  const char* tok_env = std::getenv("BBAL_EVAL_TOKENS");
  const int eval_tokens = tok_env != nullptr ? std::atoi(tok_env) : 256;

  SweepRunner sweep;
  sweep.eval_tokens(eval_tokens);
  const std::vector<std::string> strategies = table2_strategies();
  for (const std::string& strategy : strategies) {
    SweepRunner::Item item;
    item.model = model_name;
    item.matmul = strategy;
    // Attach the paper's 16x16 array when the strategy prices a PE design.
    const auto spec = quant::StrategySpec::parse(strategy);
    if (spec.is_ok() &&
        BackendRegistry::instance().has_cost_model(spec.value())) {
      accel::AcceleratorConfig cfg;
      cfg.array_rows = cfg.array_cols = 16;
      item.accelerator = cfg;
    }
    sweep.add(std::move(item));
  }

  std::fprintf(stderr, "sweeping %zu strategies on %s (%d eval tokens)...\n",
               strategies.size(), model_name.c_str(), eval_tokens);
  const SweepRunner::SweepResult result = sweep.run();

  for (std::size_t i = 0; i < result.reports.size(); ++i) {
    if (!result.reports[i].is_ok()) {
      std::fprintf(stderr, "  %s: %s\n", strategies[i].c_str(),
                   result.reports[i].message().c_str());
      return 1;
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n\"meta\": {\"model\": \"%s\", \"eval_tokens\": %d, "
               "\"threads\": %d, \"hardware_concurrency\": %u, "
               "\"sweep_wall_seconds\": %.6g, \"models_prepared\": %d},\n"
               "\"rows\": [\n",
               model_name.c_str(), eval_tokens, result.threads,
               std::thread::hardware_concurrency(), result.wall_seconds,
               result.models_prepared);
  for (std::size_t i = 0; i < result.reports.size(); ++i)
    std::fprintf(out, "%s  %s", i == 0 ? "" : ",\n",
                 result.reports[i].value().to_json().c_str());
  std::fprintf(out, "\n]\n}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s (%d threads, %.2fs sweep wall-clock)\n",
               out_path.c_str(), result.threads, result.wall_seconds);
  return 0;
}
