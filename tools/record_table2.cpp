// Record a Table II baseline through the Session API: perplexity +
// simulated throughput/energy per strategy, as one JSON file. Future PRs
// diff BENCH_table2.json against a fresh run to track the perf trajectory.
//
// Usage: ./build/tools/record_table2 [out.json]
// Env:   BBAL_MODEL (default Llama-7B), BBAL_EVAL_TOKENS (default 256)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bbal/registry.hpp"
#include "bbal/session.hpp"

int main(int argc, char** argv) {
  using namespace bbal;

  const std::string out_path = argc > 1 ? argv[1] : "BENCH_table2.json";
  const char* model_env = std::getenv("BBAL_MODEL");
  const std::string model_name = model_env != nullptr ? model_env : "Llama-7B";
  const char* tok_env = std::getenv("BBAL_EVAL_TOKENS");
  const int eval_tokens = tok_env != nullptr ? std::atoi(tok_env) : 256;

  std::fprintf(stderr, "preparing %s (%d eval tokens)...\n",
               model_name.c_str(), eval_tokens);
  const auto prepared = prepare_shared(model_name, eval_tokens);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "[\n");

  bool first = true;
  for (const std::string& strategy : table2_strategies()) {
    std::fprintf(stderr, "evaluating %s...\n", strategy.c_str());
    Session::Builder builder;
    builder.prepared(prepared).matmul(strategy).nonlinear("FP32");
    // Attach the paper's 16x16 array when the strategy prices a PE design.
    const auto spec = quant::StrategySpec::parse(strategy);
    if (spec.is_ok() &&
        BackendRegistry::instance().has_cost_model(spec.value())) {
      accel::AcceleratorConfig cfg;
      cfg.array_rows = cfg.array_cols = 16;
      builder.accelerator(cfg);
    }
    auto session = builder.build();
    if (!session.is_ok()) {
      std::fprintf(stderr, "  %s: %s\n", strategy.c_str(),
                   session.message().c_str());
      std::fclose(out);
      return 1;
    }
    auto report = session.value().evaluate();
    if (!report.is_ok()) {
      std::fprintf(stderr, "  %s: %s\n", strategy.c_str(),
                   report.message().c_str());
      std::fclose(out);
      return 1;
    }
    std::fprintf(out, "%s  %s", first ? "" : ",\n",
                 report.value().to_json().c_str());
    first = false;
  }
  std::fprintf(out, "\n]\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}
