#include "arith/gates.hpp"

#include <cassert>
#include <cmath>

namespace bbal::arith {

GateTally array_multiplier(int n_bits, int m_bits) {
  assert(n_bits >= 1 && m_bits >= 1);
  GateTally t;
  if (n_bits == 1 || m_bits == 1) {
    t.and2 = static_cast<double>(n_bits) * m_bits;
    return t;
  }
  t.and2 = static_cast<double>(n_bits) * m_bits;
  t.full_adder = static_cast<double>(m_bits - 2) * n_bits;
  t.half_adder = n_bits;
  return t;
}

GateTally ripple_adder(int bits) {
  assert(bits >= 0);
  GateTally t;
  t.full_adder = bits;
  return t;
}

GateTally carry_chain(int bits) {
  assert(bits >= 0);
  GateTally t;
  t.carry_cell = bits;
  return t;
}

GateTally barrel_shifter(int width, int shift_range) {
  assert(width >= 1 && shift_range >= 1);
  const int stages =
      std::max(1, static_cast<int>(std::ceil(std::log2(shift_range + 1))));
  GateTally t;
  t.mux2 = static_cast<double>(stages) * width;
  return t;
}

GateTally mux_bank(int width) {
  GateTally t;
  t.mux2 = width;
  return t;
}

GateTally comparator(int bits) {
  GateTally t;
  t.xor2 = bits;
  t.and2 = bits;
  t.or2 = 0.5 * bits;
  return t;
}

GateTally register_bank(int bits) {
  GateTally t;
  t.dff = bits;
  return t;
}

GateTally leading_one_detector(int bits) {
  GateTally t;
  t.or2 = bits;
  t.and2 = bits;
  t.inv = 0.5 * bits;
  return t;
}

}  // namespace bbal::arith
