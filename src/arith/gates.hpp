// Gate-level tallies: every datapath model is composed from these counts and
// priced by a standard-cell library (hw/tech.hpp). This is the reproduction's
// stand-in for the paper's Design Compiler flow.
#pragma once

#include <string>

namespace bbal::arith {

/// Fractional counts are allowed: block-shared logic is amortised per lane.
struct GateTally {
  double and2 = 0;
  double or2 = 0;
  double xor2 = 0;
  double inv = 0;
  double mux2 = 0;
  double half_adder = 0;
  double full_adder = 0;
  double carry_cell = 0;  ///< sparse-adder cell: S = C ^ a, C' = C & a
  double dff = 0;

  GateTally& operator+=(const GateTally& other) {
    and2 += other.and2;
    or2 += other.or2;
    xor2 += other.xor2;
    inv += other.inv;
    mux2 += other.mux2;
    half_adder += other.half_adder;
    full_adder += other.full_adder;
    carry_cell += other.carry_cell;
    dff += other.dff;
    return *this;
  }

  [[nodiscard]] GateTally operator+(const GateTally& other) const {
    GateTally t = *this;
    t += other;
    return t;
  }

  [[nodiscard]] GateTally operator*(double n) const {
    GateTally t = *this;
    t.and2 *= n;
    t.or2 *= n;
    t.xor2 *= n;
    t.inv *= n;
    t.mux2 *= n;
    t.half_adder *= n;
    t.full_adder *= n;
    t.carry_cell *= n;
    t.dff *= n;
    return t;
  }

  /// Total two-input-gate equivalents (rough complexity metric for reports).
  [[nodiscard]] double gate_equivalents() const {
    return and2 + or2 + 1.5 * xor2 + 0.5 * inv + 1.5 * mux2 +
           2.5 * half_adder + 4.5 * full_adder + 2.0 * carry_cell + 4.0 * dff;
  }
};

// --- Builders for the structural blocks used across the accelerator -------

/// n x m unsigned array multiplier (n, m >= 2): n*m partial-product ANDs,
/// (m-2) carry-save rows of n full adders plus a final row of half adders.
[[nodiscard]] GateTally array_multiplier(int n_bits, int m_bits);

/// Ripple-carry adder over `bits` full adders.
[[nodiscard]] GateTally ripple_adder(int bits);

/// Sparse-adder carry chain over `bits` (Eq. 13/14): one XOR + one AND per
/// bit instead of a full adder.
[[nodiscard]] GateTally carry_chain(int bits);

/// Barrel shifter: ceil(log2(range)) stages of `width` 2:1 muxes.
[[nodiscard]] GateTally barrel_shifter(int width, int shift_range);

/// `width`-bit 2:1 mux bank.
[[nodiscard]] GateTally mux_bank(int width);

/// `bits`-wide magnitude comparator (~1 XOR + 1 AND + 0.5 OR per bit).
[[nodiscard]] GateTally comparator(int bits);

/// Register bank of `bits` flip-flops.
[[nodiscard]] GateTally register_bank(int bits);

/// Leading-one detector / priority encoder over `bits`.
[[nodiscard]] GateTally leading_one_detector(int bits);

}  // namespace bbal::arith
