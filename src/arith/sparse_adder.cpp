#include "arith/sparse_adder.hpp"

#include <cassert>

#include "common/bitutils.hpp"

namespace bbal::arith {

SparseAddOutcome sparse_add(std::uint64_t acc, std::uint64_t addend,
                            std::uint64_t known_zero_mask, int width) {
  assert(width > 0 && width <= 63);
  assert((addend & known_zero_mask) == 0 &&
         "addend must be zero at carry-chain positions");
  assert((acc >> width) == 0 && (addend >> width) == 0);

  SparseAddOutcome out;
  bool carry = false;
  for (int i = 0; i < width; ++i) {
    const bool a = bit_at(acc, i);
    if (bit_at(known_zero_mask, i)) {
      // Carry-chain cell (Eq. 13/14): b is structurally zero.
      const bool s = carry != a;
      carry = carry && a;
      if (s) out.sum |= std::uint64_t{1} << i;
      ++out.carry_chain_cells;
    } else {
      // Full adder (Eq. 11/12).
      const bool b = bit_at(addend, i);
      const bool s = (a != b) != carry;
      carry = (a && b) || (carry && (a != b));
      if (s) out.sum |= std::uint64_t{1} << i;
      ++out.full_adder_cells;
    }
  }
  out.carry_out = carry;
  return out;
}

std::uint64_t product_zero_mask(int m, int d, bool flag_a, bool flag_b) {
  assert(m >= 2 && d >= 0);
  const int field = 2 * m + 2 * d;
  const int lift = d * ((flag_a ? 1 : 0) + (flag_b ? 1 : 0));
  const std::uint64_t significant = low_mask(2 * m) << lift;
  return low_mask(field) & ~significant;
}

AdderSavings adder_savings(int width, int chain_bits) {
  assert(width > 0 && chain_bits >= 0 && chain_bits <= width);
  // Relative gate areas: FA = 2 XOR + 2 AND + 1 OR; CC = 1 XOR + 1 AND.
  const double fa = 2.0 * 1.1 + 2.0 * 0.6 + 0.6;  // 4.0 units
  const double cc = 1.1 + 0.6;                    // 1.7 units
  AdderSavings s{};
  s.full_adder_area = fa * width;
  s.sparse_adder_area = fa * (width - chain_bits) + cc * chain_bits;
  s.saving_fraction = 1.0 - s.sparse_adder_area / s.full_adder_area;
  return s;
}

}  // namespace bbal::arith
