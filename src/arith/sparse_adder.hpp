// Bit-exact emulation of the sparse partial-sum adder (Fig. 5(b), Eq. 11-14).
//
// After inter-block multiplication a BBFP product occupies 2m significant
// bits inside a 2m + 2(m-o) field; the remaining positions are structurally
// zero (their location depends only on the two flag bits). The paper replaces
// full adders at those positions with carry-chain cells:
//   S = C_in ^ a,   C_out = C_in & a          (b == 0)
// This module emulates both cell types explicitly so tests can prove the
// simplification exact, and reports the cell mix for the cost model.
#pragma once

#include <cstdint>

namespace bbal::arith {

struct SparseAddOutcome {
  std::uint64_t sum = 0;
  bool carry_out = false;
  int full_adder_cells = 0;
  int carry_chain_cells = 0;
};

/// Add `addend` to `acc` over `width` bits. Positions set in
/// `known_zero_mask` are wired as carry-chain cells (the addend MUST be zero
/// there — checked); all others are full adders.
[[nodiscard]] SparseAddOutcome sparse_add(std::uint64_t acc,
                                          std::uint64_t addend,
                                          std::uint64_t known_zero_mask,
                                          int width);

/// Known-zero mask of a BBFP product field for mantissa width m, shift
/// distance d and the two operand flags: the 2m-bit product sits at offset
/// d * (flag_a + flag_b) inside a (2m + 2d)-bit field.
[[nodiscard]] std::uint64_t product_zero_mask(int m, int d, bool flag_a,
                                              bool flag_b);

/// Gate-cost comparison for one partial-sum adder of `width` bits where
/// `chain_bits` positions are carry cells: the paper's "15% reduction" claim.
struct AdderSavings {
  double full_adder_area;   ///< plain ripple adder, relative units
  double sparse_adder_area; ///< FA on significant bits + CC on zero bits
  double saving_fraction;   ///< 1 - sparse/full
};
[[nodiscard]] AdderSavings adder_savings(int width, int chain_bits);

}  // namespace bbal::arith
