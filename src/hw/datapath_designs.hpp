// Structural gate-level compositions of the MAC units and PEs evaluated in
// the paper (Tables I and III): FP16, INT-n, BFP-m, BBFP(m,o), plus the
// outlier-aware baseline PEs (Oltron, Olive) used in Figs. 8/9.
//
// Each design is a GateTally; hw::CellLibrary prices it. The INT8 32-lane
// MAC is the calibration anchor against Table I (9257 um^2).
#pragma once

#include <string>

#include "arith/gates.hpp"
#include "common/result.hpp"
#include "hw/tech.hpp"
#include "quant/strategy.hpp"

namespace bbal::hw {

/// A datapath built from `lanes` copies of `lane` plus block-shared logic.
struct DatapathDesign {
  std::string name;
  arith::GateTally lane;
  arith::GateTally shared;
  int lanes = 1;
  double equivalent_bits = 16.0;  ///< storage bits/element (Table I column)

  [[nodiscard]] arith::GateTally total() const {
    return lane * lanes + shared;
  }
  [[nodiscard]] double area_um2(const CellLibrary& lib) const {
    return lib.area_um2(total());
  }
  /// Energy of one MAC op in every lane plus the shared logic, fJ.
  [[nodiscard]] double mac_energy_fj(const CellLibrary& lib) const {
    return lib.dynamic_fj(total());
  }
  [[nodiscard]] double leakage_nw(const CellLibrary& lib) const {
    return lib.leakage_nw(total());
  }
};

// --- 32-lane MAC units (Table I) ------------------------------------------

[[nodiscard]] DatapathDesign fp16_mac(int lanes = 32);
[[nodiscard]] DatapathDesign int_mac(int bits, int lanes = 32);
[[nodiscard]] DatapathDesign bfp_mac(const quant::BlockFormat& fmt,
                                     int lanes = 32);
[[nodiscard]] DatapathDesign bbfp_mac(const quant::BlockFormat& fmt,
                                      int lanes = 32);

// --- Single-PE systolic cells (Table III) ----------------------------------

/// The paper's two PE flavours (Fig. 7): one carries a shared-exponent
/// adder, the other only a bypass path.
enum class PeVariant { kExponentAdder, kExponentBypass };

/// Defaults to the bypass variant: shared-exponent adders sit at the array
/// edge, most PEs only forward the exponent (Fig. 7's PE mix).
[[nodiscard]] DatapathDesign bfp_pe(
    const quant::BlockFormat& fmt,
    PeVariant variant = PeVariant::kExponentBypass);
[[nodiscard]] DatapathDesign bbfp_pe(
    const quant::BlockFormat& fmt,
    PeVariant variant = PeVariant::kExponentBypass);
[[nodiscard]] DatapathDesign int_pe(int bits);
[[nodiscard]] DatapathDesign fp16_pe();

/// Outlier-aware baseline PEs (behavioural emulations, see DESIGN.md):
/// Oltron: 3-bit core multiplier plus an outlier steering path.
[[nodiscard]] DatapathDesign oltron_pe();
/// Olive: 4-bit core plus outlier-victim pair encode/decode logic.
[[nodiscard]] DatapathDesign olive_pe();

/// PE design for a parsed strategy used in Table III / Fig. 8 rows.
/// Errors (instead of asserting) for strategies without a published PE
/// design (FP32, OmniQuant, nonlinear units).
[[nodiscard]] Result<DatapathDesign> pe_for_spec(
    const quant::StrategySpec& spec);

/// PE design for any named strategy. Accepts "FP16", "INTn", "Oltron",
/// "Olive", "BFPn", "BBFP(m,o)"; aborts with a message on unknown names —
/// prefer pe_for_spec when the name comes from user input.
[[nodiscard]] DatapathDesign pe_for_strategy(const std::string& name);

}  // namespace bbal::hw
