#include "hw/sram.hpp"

#include <cassert>
#include <cmath>

namespace bbal::hw {

double SramMacro::area_um2() const {
  assert(bits > 0);
  // 28nm 6T bit cell ~0.12 um^2; array efficiency degrades for small macros.
  const double cell = 0.12;
  const double periphery =
      250.0 + 1.8 * std::sqrt(static_cast<double>(bits));  // decoders, sense
  const double efficiency = 0.45;  // typical macro-level density factor
  return static_cast<double>(bits) * cell / efficiency + periphery;
}

double SramMacro::access_pj() const {
  assert(bits > 0 && word_bits > 0);
  // Per-bit read energy grows weakly with array size (longer bitlines).
  const double kb = static_cast<double>(bits) / 8192.0;
  const double pj_per_bit = 0.025 + 0.006 * std::log2(1.0 + kb);
  return pj_per_bit * static_cast<double>(word_bits);
}

double SramMacro::leakage_uw() const {
  // ~18 uW per KB at 28nm HVT-ish corners.
  return 18.0 * static_cast<double>(bits) / 8192.0;
}

SramMacro make_sram(std::size_t bytes, int word_bits) {
  SramMacro m;
  m.bits = bytes * 8;
  m.word_bits = word_bits;
  return m;
}

}  // namespace bbal::hw
