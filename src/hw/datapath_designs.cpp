#include "hw/datapath_designs.hpp"

#include <cassert>

#include "common/bitutils.hpp"

namespace bbal::hw {

using arith::GateTally;
using quant::BlockFormat;

namespace {

/// Flag-combination logic of Fig. 5(a): XOR of signs, AND/OR of flags and
/// the 2-bit output-flag encoder.
GateTally flag_logic() {
  GateTally t;
  t.xor2 = 1;  // sign
  t.and2 = 1;  // flag1 & flag2
  t.or2 = 1;   // flag1 | flag2
  return t;
}

/// Accumulator guard bits for a 32-deep block reduction in a MAC lane.
constexpr int kMacGuardBits = 4;
/// Guard bits for the short in-array accumulation of a systolic PE.
constexpr int kPeGuardBits = 2;

}  // namespace

DatapathDesign int_mac(int bits, int lanes) {
  assert(bits >= 2 && lanes >= 1);
  DatapathDesign d;
  d.name = "INT" + std::to_string(bits);
  d.lanes = lanes;
  d.equivalent_bits = bits;
  const int acc = 2 * bits + kMacGuardBits;
  d.lane += arith::array_multiplier(bits, bits);
  d.lane += arith::ripple_adder(acc);
  d.lane += arith::register_bank(acc);
  return d;
}

DatapathDesign fp16_mac(int lanes) {
  DatapathDesign d;
  d.name = "FP16";
  d.lanes = lanes;
  d.equivalent_bits = 16.0;
  // Mantissa multiplier (11x11 incl. implicit ones).
  d.lane += arith::array_multiplier(11, 11);
  // Exponent path: two adders plus a comparator for the accumulate align.
  d.lane += arith::ripple_adder(8);
  d.lane += arith::ripple_adder(8);
  d.lane += arith::comparator(8);
  // Product normalisation: LOD + shifter + round increment.
  d.lane += arith::leading_one_detector(22);
  d.lane += arith::barrel_shifter(22, 22);
  d.lane += arith::ripple_adder(11);
  // FP32-width accumulation: align shifter, 28-bit add, renormalise, round.
  d.lane += arith::barrel_shifter(28, 28);
  d.lane += arith::ripple_adder(28);
  d.lane += arith::leading_one_detector(28);
  d.lane += arith::barrel_shifter(28, 28);
  d.lane += arith::ripple_adder(24);
  // Pipeline + accumulator registers (unpack, stage, 32-bit result).
  d.lane += arith::register_bank(36);
  d.lane += arith::register_bank(32);
  return d;
}

DatapathDesign bfp_mac(const BlockFormat& fmt, int lanes) {
  assert(!fmt.is_bbfp());
  DatapathDesign d;
  d.name = fmt.name();
  d.lanes = lanes;
  d.equivalent_bits = fmt.equivalent_bits();
  const int m = fmt.mantissa_bits;
  const int acc = 2 * m + kMacGuardBits;
  d.lane += arith::array_multiplier(m, m);
  d.lane.xor2 += 1;  // sign
  d.lane += arith::ripple_adder(acc);
  d.lane += arith::register_bank(acc);
  // Shared exponent adder, once per block of lanes.
  d.shared += arith::ripple_adder(fmt.exponent_bits);
  d.shared += arith::register_bank(fmt.exponent_bits + 1);
  return d;
}

DatapathDesign bbfp_mac(const BlockFormat& fmt, int lanes) {
  assert(fmt.is_bbfp());
  DatapathDesign d;
  d.name = fmt.name();
  d.lanes = lanes;
  d.equivalent_bits = fmt.equivalent_bits();
  const int m = fmt.mantissa_bits;
  const int dd = fmt.shift_distance();
  d.lane += arith::array_multiplier(m, m);
  d.lane += flag_logic();
  // Carry-chain placement mux (Fig. 5(b)) — small, spans the chain field.
  d.lane += arith::mux_bank(2 * dd + 2);
  // Sparse partial-sum adder: FAs on the 2m significant bits (+ guard),
  // carry-chain cells on the 2d structurally-zero positions.
  d.lane += arith::ripple_adder(2 * m + kMacGuardBits);
  d.lane += arith::carry_chain(2 * dd);
  // Accumulator register: compacted product (2m + 2-bit flag) + guard.
  d.lane += arith::register_bank(2 * m + 2 + kMacGuardBits);
  d.shared += arith::ripple_adder(fmt.exponent_bits);
  d.shared += arith::register_bank(fmt.exponent_bits + 1);
  return d;
}

// --- PEs -------------------------------------------------------------------

namespace {

/// Common systolic cell skeleton: weight register plus partial-sum forward
/// register. Activations are broadcast along rows (no per-PE forward
/// register) and shared-exponent adders sit at the array edge, so the
/// default per-PE exponent logic is just the bypass mux — matching the
/// register-light PEs behind Table III.
DatapathDesign systolic_pe(const std::string& name, int mant_bits,
                           int extra_elem_bits, int psum_bits,
                           const GateTally& extra, PeVariant variant) {
  DatapathDesign d;
  d.name = name;
  d.lanes = 1;
  const int elem_bits = mant_bits + 1 + extra_elem_bits;  // + sign
  d.lane += arith::array_multiplier(mant_bits, mant_bits);
  d.lane.xor2 += 1;  // sign
  d.lane += arith::register_bank(elem_bits);  // weight (stationary)
  d.lane += arith::register_bank(psum_bits);  // partial-sum forward
  d.lane += extra;
  if (variant == PeVariant::kExponentAdder) {
    d.lane += arith::ripple_adder(5);
    d.lane += arith::register_bank(6);
  } else {
    d.lane += arith::mux_bank(6);  // exponent bypass
  }
  return d;
}

}  // namespace

DatapathDesign bfp_pe(const BlockFormat& fmt, PeVariant variant) {
  assert(!fmt.is_bbfp());
  const int m = fmt.mantissa_bits;
  const int psum = 2 * m + kPeGuardBits;
  GateTally adder = arith::ripple_adder(psum);
  DatapathDesign d = systolic_pe(fmt.name(), m, 0, psum, adder, variant);
  d.equivalent_bits = fmt.equivalent_bits();
  return d;
}

DatapathDesign bbfp_pe(const BlockFormat& fmt, PeVariant variant) {
  assert(fmt.is_bbfp());
  const int m = fmt.mantissa_bits;
  const int dd = fmt.shift_distance();
  // Sparse adder (Section IV.A): the (2m + 2d)-bit partial sum is handled by
  // a 2m-bit full adder plus a 2d-bit carry chain — the chain field itself
  // provides the in-array accumulation headroom, so no extra guard bits.
  GateTally extra = arith::ripple_adder(2 * m);
  extra += arith::carry_chain(2 * dd);
  extra += arith::mux_bank(2);  // chain placement select
  extra += flag_logic();
  DatapathDesign d = systolic_pe(fmt.name(), m, /*extra_elem_bits=*/1,
                                 /*psum_bits=*/2 * m + 2 * dd, extra, variant);
  d.equivalent_bits = fmt.equivalent_bits();
  return d;
}

DatapathDesign int_pe(int bits) {
  const int psum = 2 * bits + kPeGuardBits;
  DatapathDesign d = systolic_pe("INT" + std::to_string(bits), bits, 0, psum,
                                 arith::ripple_adder(psum),
                                 PeVariant::kExponentBypass);
  d.equivalent_bits = bits;
  return d;
}

DatapathDesign fp16_pe() {
  DatapathDesign d;
  d.name = "FP16";
  d.lanes = 1;
  d.equivalent_bits = 16.0;
  d.lane = fp16_mac(1).lane;
  d.lane += arith::register_bank(16);  // weight
  d.lane += arith::register_bank(16);  // activation forward
  return d;
}

DatapathDesign oltron_pe() {
  // Oltron: 3-bit core datapath; a shared outlier path handles the small
  // fixed fraction of high-precision groups (amortised control here).
  const int m = 3;
  const int psum = 2 * m + kPeGuardBits;
  GateTally extra = arith::ripple_adder(psum);
  extra += arith::mux_bank(4);  // outlier steering
  extra.and2 += 2;
  extra.or2 += 1;
  DatapathDesign d =
      systolic_pe("Oltron", m, 0, psum, extra, PeVariant::kExponentBypass);
  d.equivalent_bits = 4.3;  // 4-bit groups + outlier metadata
  return d;
}

DatapathDesign olive_pe() {
  // Olive: 4-bit core plus outlier-victim pair decode (the victim slot is
  // sacrificed to widen its outlier neighbour), roughly a 4-bit PE with a
  // second half-datapath for pair reconstruction.
  const int m = 4;
  const int psum = 2 * m + kPeGuardBits;
  GateTally extra = arith::ripple_adder(psum);
  extra += arith::array_multiplier(4, 4);  // pair path multiplier
  extra += arith::mux_bank(10);            // victim decode / select
  extra += arith::register_bank(6);        // pair metadata
  extra.and2 += 4;
  extra.or2 += 2;
  DatapathDesign d =
      systolic_pe("Olive", m, 0, psum, extra, PeVariant::kExponentBypass);
  d.equivalent_bits = 4.5;
  return d;
}

Result<DatapathDesign> pe_for_spec(const quant::StrategySpec& spec) {
  using R = Result<DatapathDesign>;
  using quant::StrategyFamily;
  switch (spec.family) {
    case StrategyFamily::kOltron:
      return oltron_pe();
    case StrategyFamily::kOlive:
      return olive_pe();
    case StrategyFamily::kFp16:
      return fp16_pe();
    case StrategyFamily::kInt:
      return int_pe(spec.bits);
    case StrategyFamily::kBfp:
    case StrategyFamily::kBbfp: {
      auto fmt = spec.block_format();
      if (!fmt.is_ok()) return R::error(fmt.message());
      return fmt.value().is_bbfp() ? bbfp_pe(fmt.value())
                                   : bfp_pe(fmt.value());
    }
    default:
      return R::error("no PE design for strategy " + spec.to_string());
  }
}

DatapathDesign pe_for_strategy(const std::string& name) {
  const quant::StrategySpec spec =
      quant::StrategySpec::parse(name).expect("pe_for_strategy");
  return pe_for_spec(spec).expect("pe_for_strategy");
}

}  // namespace bbal::hw
