// CACTI-lite: on-chip SRAM buffer area / access-energy / leakage model.
#pragma once

#include <cstddef>

namespace bbal::hw {

/// Analytical SRAM macro model, 28nm-class.
struct SramMacro {
  std::size_t bits = 0;
  int word_bits = 64;

  /// Bit-cell array plus periphery; small arrays pay proportionally more.
  [[nodiscard]] double area_um2() const;
  /// Energy of one word access (read or write), pJ.
  [[nodiscard]] double access_pj() const;
  /// Standby leakage, uW.
  [[nodiscard]] double leakage_uw() const;
};

/// Convenience: buffer of `bytes` with `word_bits`-bit ports.
[[nodiscard]] SramMacro make_sram(std::size_t bytes, int word_bits = 64);

}  // namespace bbal::hw
