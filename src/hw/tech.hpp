// 28nm-class standard-cell library: prices GateTally compositions in area,
// dynamic energy and leakage. Stands in for the paper's TSMC 28nm + Design
// Compiler flow; the single calibration anchor is Table I's INT8 MAC area.
#pragma once

#include "arith/gates.hpp"

namespace bbal::hw {

struct CellLibrary {
  // Cell areas in um^2 (synthesised-cell footprints incl. routing share).
  double area_and2 = 0.55;
  double area_or2 = 0.60;
  double area_xor2 = 1.10;
  double area_inv = 0.30;
  double area_mux2 = 0.85;
  double area_half_adder = 1.20;
  double area_full_adder = 3.40;
  double area_carry_cell = 1.70;  // 1 XOR + 1 AND
  double area_dff = 2.20;

  // Dynamic energy per operation in fJ (average switching at ~0.5 activity).
  double fj_and2 = 0.25;
  double fj_or2 = 0.25;
  double fj_xor2 = 0.50;
  double fj_inv = 0.10;
  double fj_mux2 = 0.35;
  double fj_half_adder = 0.80;
  double fj_full_adder = 1.40;
  double fj_carry_cell = 0.70;
  double fj_dff = 1.60;

  // Leakage in nW per cell.
  double nw_and2 = 0.50;
  double nw_or2 = 0.50;
  double nw_xor2 = 0.90;
  double nw_inv = 0.25;
  double nw_mux2 = 0.70;
  double nw_half_adder = 1.20;
  double nw_full_adder = 2.20;
  double nw_carry_cell = 1.30;
  double nw_dff = 2.80;

  [[nodiscard]] static const CellLibrary& tsmc28();

  [[nodiscard]] double area_um2(const arith::GateTally& t) const;
  /// Energy of one operation through the datapath, in fJ.
  [[nodiscard]] double dynamic_fj(const arith::GateTally& t) const;
  /// Leakage power in nW.
  [[nodiscard]] double leakage_nw(const arith::GateTally& t) const;
};

/// External memory (DRAM) access energy, pJ per bit. LPDDR5-class.
inline constexpr double kDramPjPerBit = 5.0;
/// DRAM bandwidth available to the accelerator, GB/s.
inline constexpr double kDramBandwidthGBs = 25.6;

}  // namespace bbal::hw
