#include "hw/tech.hpp"

namespace bbal::hw {

const CellLibrary& CellLibrary::tsmc28() {
  static const CellLibrary lib{};
  return lib;
}

double CellLibrary::area_um2(const arith::GateTally& t) const {
  return t.and2 * area_and2 + t.or2 * area_or2 + t.xor2 * area_xor2 +
         t.inv * area_inv + t.mux2 * area_mux2 +
         t.half_adder * area_half_adder + t.full_adder * area_full_adder +
         t.carry_cell * area_carry_cell + t.dff * area_dff;
}

double CellLibrary::dynamic_fj(const arith::GateTally& t) const {
  return t.and2 * fj_and2 + t.or2 * fj_or2 + t.xor2 * fj_xor2 +
         t.inv * fj_inv + t.mux2 * fj_mux2 + t.half_adder * fj_half_adder +
         t.full_adder * fj_full_adder + t.carry_cell * fj_carry_cell +
         t.dff * fj_dff;
}

double CellLibrary::leakage_nw(const arith::GateTally& t) const {
  return t.and2 * nw_and2 + t.or2 * nw_or2 + t.xor2 * nw_xor2 +
         t.inv * nw_inv + t.mux2 * nw_mux2 + t.half_adder * nw_half_adder +
         t.full_adder * nw_full_adder + t.carry_cell * nw_carry_cell +
         t.dff * nw_dff;
}

}  // namespace bbal::hw
