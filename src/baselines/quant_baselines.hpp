// Behavioural emulations of the quantisation baselines the paper compares
// against in Table II / Fig. 8: INT-k, Oltron (outlier budget), Olive
// (outlier-victim pairs) and OmniQuant (clip search). See DESIGN.md for the
// emulation fidelity notes — these reproduce each method's failure mode, not
// its exact published kernels.
#pragma once

#include "llm/backend.hpp"

namespace bbal::baselines {

/// Symmetric INT-k fake-quant: per-output-channel (column) weight scales,
/// per-token (row) activation scales, absmax calibration.
class IntQuantBackend final : public llm::MatmulBackend {
 public:
  IntQuantBackend(int weight_bits, int act_bits);

  int prepare_weights(const llm::Matrix& w, const std::string& tag) override;
  void matmul(const llm::Matrix& acts, int weight_handle,
              llm::Matrix& out) override;
  void matmul_dynamic(const llm::Matrix& a, const llm::Matrix& b,
                      llm::Matrix& out) override;
  [[nodiscard]] std::int64_t weights_bytes() const override {
    return llm::matrices_bytes(weights_);
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] llm::Matrix quantise_per_row(const llm::Matrix& m,
                                             int bits) const;
  [[nodiscard]] llm::Matrix quantise_per_col(const llm::Matrix& m,
                                             int bits) const;

 private:
  /// Per-row quantisation into a caller-owned matrix (resized to m's
  /// shape): the one implementation both quantise_per_row and the
  /// allocation-free matmul() path share.
  void quantise_per_row_into(const llm::Matrix& m, int bits,
                             llm::Matrix& q) const;

  int weight_bits_;
  int act_bits_;
  std::vector<llm::Matrix> weights_;
  llm::Matrix act_scratch_;  ///< reused by matmul(); rows quantised per call
};

/// Oltron: group-wise low-bit quantisation (3-bit magnitude grid) with a
/// fixed budget of groups promoted to 8 bits — chosen per tensor by group
/// absmax. Works when outliers fit the budget (OPT-like), degrades when
/// they do not (Llama-like): the paper's Fig. 8 discussion.
class OltronBackend final : public llm::MatmulBackend {
 public:
  explicit OltronBackend(double outlier_budget = 0.03, int group = 32,
                         int low_bits = 4, int high_bits = 8);

  int prepare_weights(const llm::Matrix& w, const std::string& tag) override;
  void matmul(const llm::Matrix& acts, int weight_handle,
              llm::Matrix& out) override;
  void matmul_dynamic(const llm::Matrix& a, const llm::Matrix& b,
                      llm::Matrix& out) override;
  [[nodiscard]] std::int64_t weights_bytes() const override {
    return llm::matrices_bytes(weights_);
  }
  [[nodiscard]] std::string name() const override { return "Oltron"; }

  /// Quantise a contiguous vector in `group`-sized chunks with the budget
  /// rule (exposed for tests).
  void quantise_vector(std::span<const float> in, std::span<float> out) const;

 private:
  [[nodiscard]] llm::Matrix quantise_rows(const llm::Matrix& m) const;
  [[nodiscard]] llm::Matrix quantise_cols(const llm::Matrix& m) const;

  double outlier_budget_;
  int group_;
  int low_bits_;
  int high_bits_;
  std::vector<llm::Matrix> weights_;
};

/// Olive: outlier-victim pair quantisation. The grid is scaled for the bulk
/// (percentile-based); a value beyond the grid steals its neighbour's slot
/// (the victim is zeroed) to gain range. When outliers collide or exceed
/// even the extended range they clip — the blow-up Table II shows.
class OliveBackend final : public llm::MatmulBackend {
 public:
  explicit OliveBackend(int bits = 4, double bulk_percentile = 92.0);

  int prepare_weights(const llm::Matrix& w, const std::string& tag) override;
  void matmul(const llm::Matrix& acts, int weight_handle,
              llm::Matrix& out) override;
  void matmul_dynamic(const llm::Matrix& a, const llm::Matrix& b,
                      llm::Matrix& out) override;
  [[nodiscard]] std::int64_t weights_bytes() const override {
    return llm::matrices_bytes(weights_);
  }
  [[nodiscard]] std::string name() const override { return "Olive"; }

  void quantise_vector(std::span<const float> in, std::span<float> out) const;

 private:
  [[nodiscard]] llm::Matrix quantise_rows(const llm::Matrix& m) const;
  [[nodiscard]] llm::Matrix quantise_cols(const llm::Matrix& m) const;

  int bits_;
  double bulk_percentile_;
  std::vector<llm::Matrix> weights_;
};

/// OmniQuant: INT4 weights with per-channel clip-ratio search (MSE-optimal
/// over a grid — the PTQ analogue of its learnable clipping), INT6 per-token
/// activations.
class OmniquantBackend final : public llm::MatmulBackend {
 public:
  OmniquantBackend(int weight_bits = 4, int act_bits = 6);

  int prepare_weights(const llm::Matrix& w, const std::string& tag) override;
  void matmul(const llm::Matrix& acts, int weight_handle,
              llm::Matrix& out) override;
  void matmul_dynamic(const llm::Matrix& a, const llm::Matrix& b,
                      llm::Matrix& out) override;
  [[nodiscard]] std::int64_t weights_bytes() const override {
    return llm::matrices_bytes(weights_);
  }
  [[nodiscard]] std::string name() const override { return "OmniQuant"; }

  /// Clip-search quantisation of one channel (exposed for tests).
  static void quantise_channel_clip_search(std::span<const float> in,
                                           std::span<float> out, int bits);

 private:
  int weight_bits_;
  int act_bits_;
  std::vector<llm::Matrix> weights_;
};

}  // namespace bbal::baselines
