// DEPRECATED shim over the unified registry (bbal/registry.hpp).
//
// The seed's per-name factory lived here and asserted on unknown names.
// New code should use bbal::BackendRegistry / bbal::make_matmul_backend,
// which key off quant::StrategySpec and return error-carrying Results.
// These wrappers survive one deprecation cycle for out-of-tree callers.
//
// Thread-safety: these functions are stateless forwarders to
// bbal::BackendRegistry, whose methods are internally synchronised (see
// the contract in bbal/registry.hpp), so they are safe to call from any
// thread — including SweepRunner pool threads. The returned backends are
// single-session objects and are not themselves thread-safe.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "llm/backend.hpp"

namespace bbal::baselines {

/// Accepts "FP32", "FP16", "INTn", "Oltron", "Olive", "OmniQuant",
/// "BFPn", "BBFP(m,o)". Aborts (with a message) on unknown names — prefer
/// bbal::make_matmul_backend, which returns an error instead.
[[deprecated("use bbal::make_matmul_backend")]] [[nodiscard]]
std::unique_ptr<llm::MatmulBackend> make_matmul_backend(
    const std::string& name);

/// The strategy rows of Table II, in paper order.
/// Forwards to bbal::table2_strategies.
[[nodiscard]] std::vector<std::string> table2_strategies();

/// True if the registry can resolve `name`.
/// Forwards to bbal::BackendRegistry::is_known.
[[nodiscard]] bool is_known_strategy(const std::string& name);

}  // namespace bbal::baselines
