// Strategy registry: create a matmul backend from its Table II row name.
// Shared by benches, examples and integration tests.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "llm/backend.hpp"

namespace bbal::baselines {

/// Accepts "FP32", "FP16", "INTn", "Oltron", "Olive", "OmniQuant",
/// "BFPn", "BBFP(m,o)". Asserts on unknown names.
[[nodiscard]] std::unique_ptr<llm::MatmulBackend> make_matmul_backend(
    const std::string& name);

/// The strategy rows of Table II, in paper order.
[[nodiscard]] std::vector<std::string> table2_strategies();

/// True if the registry can resolve `name`.
[[nodiscard]] bool is_known_strategy(const std::string& name);

}  // namespace bbal::baselines
