#include "baselines/quant_baselines.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace bbal::baselines {

using llm::Matrix;

namespace {

/// Symmetric round-to-nearest onto a (2^(bits-1) - 1)-level grid.
float snap(float x, float scale, int bits) {
  if (scale <= 0.0f) return 0.0f;
  const auto qmax = static_cast<float>((1 << (bits - 1)) - 1);
  float q = std::nearbyint(x / scale);
  q = std::clamp(q, -qmax, qmax);
  return q * scale;
}

float absmax(std::span<const float> xs) {
  float m = 0.0f;
  for (const float v : xs) m = std::max(m, std::fabs(v));
  return m;
}

/// In-place per-row quantisation with a caller-provided vector quantiser.
template <typename Fn>
Matrix quantise_rows_with(const Matrix& m, Fn&& fn) {
  Matrix q(m.rows(), m.cols());
  for (int r = 0; r < m.rows(); ++r) fn(m.row(r), q.row(r));
  return q;
}

/// Column-wise quantisation (weights are K x N; channels are columns).
template <typename Fn>
Matrix quantise_cols_with(const Matrix& m, Fn&& fn) {
  Matrix q(m.rows(), m.cols());
  std::vector<float> buf(static_cast<std::size_t>(m.rows()));
  std::vector<float> out(static_cast<std::size_t>(m.rows()));
  for (int c = 0; c < m.cols(); ++c) {
    for (int r = 0; r < m.rows(); ++r)
      buf[static_cast<std::size_t>(r)] = m.at(r, c);
    fn(std::span<const float>(buf), std::span<float>(out));
    for (int r = 0; r < m.rows(); ++r)
      q.at(r, c) = out[static_cast<std::size_t>(r)];
  }
  return q;
}

}  // namespace

// --- IntQuantBackend --------------------------------------------------------

IntQuantBackend::IntQuantBackend(int weight_bits, int act_bits)
    : weight_bits_(weight_bits), act_bits_(act_bits) {
  assert(weight_bits >= 2 && act_bits >= 2);
}

std::string IntQuantBackend::name() const {
  return "INT" + std::to_string(weight_bits_);
}

void IntQuantBackend::quantise_per_row_into(const Matrix& m, int bits,
                                            Matrix& q) const {
  q.resize(m.rows(), m.cols());
  for (int r = 0; r < m.rows(); ++r) {
    const std::span<const float> in = m.row(r);
    const std::span<float> out = q.row(r);
    const float scale =
        absmax(in) / static_cast<float>((1 << (bits - 1)) - 1);
    for (std::size_t i = 0; i < in.size(); ++i)
      out[i] = snap(in[i], scale, bits);
  }
}

Matrix IntQuantBackend::quantise_per_row(const Matrix& m, int bits) const {
  Matrix q;
  quantise_per_row_into(m, bits, q);
  return q;
}

Matrix IntQuantBackend::quantise_per_col(const Matrix& m, int bits) const {
  return quantise_cols_with(m, [bits](std::span<const float> in,
                                      std::span<float> out) {
    const float scale =
        absmax(in) / static_cast<float>((1 << (bits - 1)) - 1);
    for (std::size_t i = 0; i < in.size(); ++i)
      out[i] = snap(in[i], scale, bits);
  });
}

int IntQuantBackend::prepare_weights(const Matrix& w, const std::string& tag) {
  (void)tag;
  weights_.push_back(quantise_per_col(w, weight_bits_));
  return static_cast<int>(weights_.size()) - 1;
}

void IntQuantBackend::matmul(const Matrix& acts, int weight_handle,
                             Matrix& out) {
  // Member scratch: per-row quantisation writes acts' shape, so in a
  // steady-state decode loop this reuses one buffer (no allocation).
  quantise_per_row_into(acts, act_bits_, act_scratch_);
  llm::matmul(act_scratch_, weights_[static_cast<std::size_t>(weight_handle)],
              out);
}

void IntQuantBackend::matmul_dynamic(const Matrix& a, const Matrix& b,
                                     Matrix& out) {
  llm::matmul(a, b, out);  // act-act GEMMs run on the FP path (see backend.cpp)
}

// --- OltronBackend ----------------------------------------------------------

OltronBackend::OltronBackend(double outlier_budget, int group, int low_bits,
                             int high_bits)
    : outlier_budget_(outlier_budget),
      group_(group),
      low_bits_(low_bits),
      high_bits_(high_bits) {
  assert(outlier_budget >= 0.0 && outlier_budget <= 1.0);
}

void OltronBackend::quantise_vector(std::span<const float> in,
                                    std::span<float> out) const {
  assert(in.size() == out.size());
  const std::size_t g = static_cast<std::size_t>(group_);
  const std::size_t n_groups = (in.size() + g - 1) / g;

  // Rank groups by absmax; the top `budget` fraction get high precision.
  std::vector<std::pair<float, std::size_t>> ranked(n_groups);
  for (std::size_t gi = 0; gi < n_groups; ++gi) {
    const std::size_t start = gi * g;
    const std::size_t len = std::min(g, in.size() - start);
    ranked[gi] = {absmax(in.subspan(start, len)), gi};
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& x, const auto& y) { return x.first > y.first; });
  const auto n_high = static_cast<std::size_t>(
      std::ceil(outlier_budget_ * static_cast<double>(n_groups)));
  std::vector<bool> is_high(n_groups, false);
  for (std::size_t i = 0; i < std::min(n_high, n_groups); ++i)
    is_high[ranked[i].second] = true;

  for (std::size_t gi = 0; gi < n_groups; ++gi) {
    const std::size_t start = gi * g;
    const std::size_t len = std::min(g, in.size() - start);
    const int bits = is_high[gi] ? high_bits_ : low_bits_;
    const float scale = absmax(in.subspan(start, len)) /
                        static_cast<float>((1 << (bits - 1)) - 1);
    for (std::size_t i = start; i < start + len; ++i)
      out[i] = snap(in[i], scale, bits);
  }
}

Matrix OltronBackend::quantise_rows(const Matrix& m) const {
  return quantise_rows_with(
      m, [this](std::span<const float> in, std::span<float> out) {
        quantise_vector(in, out);
      });
}

Matrix OltronBackend::quantise_cols(const Matrix& m) const {
  return quantise_cols_with(
      m, [this](std::span<const float> in, std::span<float> out) {
        quantise_vector(in, out);
      });
}

int OltronBackend::prepare_weights(const Matrix& w, const std::string& tag) {
  (void)tag;
  weights_.push_back(quantise_cols(w));
  return static_cast<int>(weights_.size()) - 1;
}

void OltronBackend::matmul(const Matrix& acts, int weight_handle,
                           Matrix& out) {
  const Matrix qa = quantise_rows(acts);
  llm::matmul(qa, weights_[static_cast<std::size_t>(weight_handle)], out);
}

void OltronBackend::matmul_dynamic(const Matrix& a, const Matrix& b,
                                   Matrix& out) {
  llm::matmul(a, b, out);  // act-act GEMMs run on the FP path
}

// --- OliveBackend -----------------------------------------------------------

OliveBackend::OliveBackend(int bits, double bulk_percentile)
    : bits_(bits), bulk_percentile_(bulk_percentile) {}

void OliveBackend::quantise_vector(std::span<const float> in,
                                   std::span<float> out) const {
  assert(in.size() == out.size());
  if (in.empty()) return;

  // Bulk scale: percentile-based so ordinary values keep resolution.
  std::vector<float> mags(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) mags[i] = std::fabs(in[i]);
  std::sort(mags.begin(), mags.end());
  const auto idx = static_cast<std::size_t>(
      bulk_percentile_ / 100.0 * static_cast<double>(mags.size() - 1));
  const float qmax = static_cast<float>((1 << (bits_ - 1)) - 1);
  float scale = mags[idx] / qmax;
  if (scale <= 0.0f) scale = 1e-8f;
  const float grid_limit = qmax * scale;
  // Outliers borrow the victim's bits: range extends by 2^bits.
  const float extended_limit = grid_limit * static_cast<float>(1 << bits_);

  for (std::size_t i = 0; i < in.size(); ++i) out[i] = 0.0f;
  std::vector<bool> sacrificed(in.size(), false);

  for (std::size_t i = 0; i < in.size(); ++i) {
    if (sacrificed[i]) continue;  // this slot was zeroed by a neighbour
    const float x = in[i];
    if (std::fabs(x) <= grid_limit) {
      out[i] = snap(x, scale, bits_);
      continue;
    }
    // Outlier: try to sacrifice the pair neighbour (Olive pairs 2i/2i+1).
    const std::size_t buddy = (i % 2 == 0) ? i + 1 : i - 1;
    const bool buddy_ok = buddy < in.size() && !sacrificed[buddy] &&
                          std::fabs(in[buddy]) <= grid_limit;
    if (buddy_ok) {
      sacrificed[buddy] = true;
      out[buddy] = 0.0f;  // the victim
      const float coarse = scale * static_cast<float>(1 << bits_);
      float q = std::nearbyint(x / coarse);
      q = std::clamp(q, -qmax, qmax);
      out[i] = std::clamp(q * coarse, -extended_limit, extended_limit);
    } else {
      // No victim available: hard clip — Olive's failure mode.
      out[i] = std::copysign(grid_limit, x);
    }
  }
}

Matrix OliveBackend::quantise_rows(const Matrix& m) const {
  return quantise_rows_with(
      m, [this](std::span<const float> in, std::span<float> out) {
        quantise_vector(in, out);
      });
}

Matrix OliveBackend::quantise_cols(const Matrix& m) const {
  return quantise_cols_with(
      m, [this](std::span<const float> in, std::span<float> out) {
        quantise_vector(in, out);
      });
}

int OliveBackend::prepare_weights(const Matrix& w, const std::string& tag) {
  (void)tag;
  weights_.push_back(quantise_cols(w));
  return static_cast<int>(weights_.size()) - 1;
}

void OliveBackend::matmul(const Matrix& acts, int weight_handle,
                          Matrix& out) {
  const Matrix qa = quantise_rows(acts);
  llm::matmul(qa, weights_[static_cast<std::size_t>(weight_handle)], out);
}

void OliveBackend::matmul_dynamic(const Matrix& a, const Matrix& b,
                                  Matrix& out) {
  llm::matmul(a, b, out);  // act-act GEMMs run on the FP path
}

// --- OmniquantBackend -------------------------------------------------------

OmniquantBackend::OmniquantBackend(int weight_bits, int act_bits)
    : weight_bits_(weight_bits), act_bits_(act_bits) {}

void OmniquantBackend::quantise_channel_clip_search(std::span<const float> in,
                                                    std::span<float> out,
                                                    int bits) {
  assert(in.size() == out.size());
  const float mx = absmax(in);
  const float qmax = static_cast<float>((1 << (bits - 1)) - 1);
  float best_clip = mx;
  double best_mse = -1.0;
  for (const double ratio : {0.35, 0.5, 0.65, 0.8, 0.9, 1.0}) {
    const float clip = mx * static_cast<float>(ratio);
    const float scale = clip / qmax;
    double mse = 0.0;
    for (const float x : in) {
      const float q = snap(std::clamp(x, -clip, clip), scale, bits);
      const double d = static_cast<double>(x) - q;
      mse += d * d;
    }
    if (best_mse < 0.0 || mse < best_mse) {
      best_mse = mse;
      best_clip = clip;
    }
  }
  const float scale = best_clip / qmax;
  for (std::size_t i = 0; i < in.size(); ++i)
    out[i] = snap(std::clamp(in[i], -best_clip, best_clip), scale, bits);
}

int OmniquantBackend::prepare_weights(const Matrix& w,
                                      const std::string& tag) {
  (void)tag;
  const int bits = weight_bits_;
  weights_.push_back(quantise_cols_with(
      w, [bits](std::span<const float> in, std::span<float> out) {
        quantise_channel_clip_search(in, out, bits);
      }));
  return static_cast<int>(weights_.size()) - 1;
}

void OmniquantBackend::matmul(const Matrix& acts, int weight_handle,
                              Matrix& out) {
  // Learnable-equivalent-transformation emulation: migrate per-channel
  // activation outlier scale out of the activations before per-token
  // quantisation and fold it back afterwards (mathematically neutral, but
  // the quantisation grid becomes per-channel aware — OmniQuant's LET).
  const int cols = acts.cols();
  std::vector<float> chan_max(static_cast<std::size_t>(cols), 0.0f);
  for (int r = 0; r < acts.rows(); ++r) {
    const std::span<const float> row = acts.row(r);
    for (int c = 0; c < cols; ++c)
      chan_max[static_cast<std::size_t>(c)] =
          std::max(chan_max[static_cast<std::size_t>(c)],
                   std::fabs(row[static_cast<std::size_t>(c)]));
  }
  std::vector<float> sorted = chan_max;
  std::sort(sorted.begin(), sorted.end());
  const float typical =
      std::max(sorted[sorted.size() / 2], 1e-6f);  // median channel max
  std::vector<float> smooth(static_cast<std::size_t>(cols), 1.0f);
  for (int c = 0; c < cols; ++c) {
    const float ratio = chan_max[static_cast<std::size_t>(c)] / typical;
    if (ratio > 1.0f)
      smooth[static_cast<std::size_t>(c)] = std::sqrt(ratio);
  }

  Matrix scaled(acts.rows(), acts.cols());
  for (int r = 0; r < acts.rows(); ++r)
    for (int c = 0; c < cols; ++c)
      scaled.at(r, c) = acts.at(r, c) / smooth[static_cast<std::size_t>(c)];

  const int bits = act_bits_;
  Matrix qa = quantise_rows_with(
      scaled, [bits](std::span<const float> in, std::span<float> out_row) {
        quantise_channel_clip_search(in, out_row, bits);
      });
  // Fold the smoothing back (exact: only rescales the quantised grid).
  for (int r = 0; r < qa.rows(); ++r)
    for (int c = 0; c < cols; ++c)
      qa.at(r, c) *= smooth[static_cast<std::size_t>(c)];
  llm::matmul(qa, weights_[static_cast<std::size_t>(weight_handle)], out);
}

void OmniquantBackend::matmul_dynamic(const Matrix& a, const Matrix& b,
                                      Matrix& out) {
  llm::matmul(a, b, out);  // act-act GEMMs run on the FP path
}

}  // namespace bbal::baselines
