#include "baselines/registry.hpp"

#include "bbal/registry.hpp"

namespace bbal::baselines {

std::unique_ptr<llm::MatmulBackend> make_matmul_backend(
    const std::string& name) {
  return BackendRegistry::instance().make_matmul(name).expect(
      "baselines::make_matmul_backend");
}

std::vector<std::string> table2_strategies() {
  return bbal::table2_strategies();
}

bool is_known_strategy(const std::string& name) {
  return BackendRegistry::instance().is_known(name) &&
         quant::StrategySpec::parse(name).value().is_matmul_strategy();
}

}  // namespace bbal::baselines
