#include "baselines/registry.hpp"

#include <cassert>

#include "baselines/quant_baselines.hpp"

namespace bbal::baselines {
namespace {

bool parse_bbfp(const std::string& name, int& m, int& o) {
  if (name.rfind("BBFP(", 0) != 0) return false;
  const auto comma = name.find(',');
  if (comma == std::string::npos) return false;
  m = std::stoi(name.substr(5, comma - 5));
  o = std::stoi(name.substr(comma + 1));
  return true;
}

}  // namespace

std::unique_ptr<llm::MatmulBackend> make_matmul_backend(
    const std::string& name) {
  if (name == "FP32" || name == "FP16")
    return std::make_unique<llm::Fp32MatmulBackend>();
  if (name == "Oltron") return std::make_unique<OltronBackend>();
  if (name == "Olive" || name == "Oliver")
    return std::make_unique<OliveBackend>();
  if (name == "OmniQuant" || name == "Omniquant")
    return std::make_unique<OmniquantBackend>();
  if (name.rfind("INT", 0) == 0) {
    const int bits = std::stoi(name.substr(3));
    return std::make_unique<IntQuantBackend>(bits, bits);
  }
  int m = 0;
  int o = 0;
  if (parse_bbfp(name, m, o))
    return llm::make_block_backend(quant::BlockFormat::bbfp(m, o));
  if (name.rfind("BFP", 0) == 0)
    return llm::make_block_backend(
        quant::BlockFormat::bfp(std::stoi(name.substr(3))));
  assert(false && "unknown strategy name");
  return std::make_unique<llm::Fp32MatmulBackend>();
}

std::vector<std::string> table2_strategies() {
  return {"FP16",      "Oltron",    "Olive",     "OmniQuant",
          "BFP6",      "BFP4",      "BBFP(3,1)", "BBFP(4,2)",
          "BBFP(4,3)", "BBFP(6,3)", "BBFP(6,4)"};
}

bool is_known_strategy(const std::string& name) {
  if (name == "FP32" || name == "FP16" || name == "Oltron" ||
      name == "Olive" || name == "Oliver" || name == "OmniQuant" ||
      name == "Omniquant")
    return true;
  if (name.rfind("INT", 0) == 0 || name.rfind("BFP", 0) == 0) return true;
  int m = 0;
  int o = 0;
  return parse_bbfp(name, m, o);
}

}  // namespace bbal::baselines
