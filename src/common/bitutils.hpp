// Bit-manipulation helpers shared by the bit-exact datapath models.
#pragma once

#include <cassert>
#include <cstdint>

namespace bbal {

/// Mask with the low `bits` bits set. `bits` must be in [0, 64].
[[nodiscard]] constexpr std::uint64_t low_mask(int bits) noexcept {
  assert(bits >= 0 && bits <= 64);
  return bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
}

/// Index (0-based) of the most significant set bit; -1 for zero.
[[nodiscard]] constexpr int msb_index(std::uint64_t v) noexcept {
  int idx = -1;
  while (v != 0) {
    v >>= 1;
    ++idx;
  }
  return idx;
}

/// Number of bits needed to represent `v` (0 needs 0 bits).
[[nodiscard]] constexpr int bit_width_of(std::uint64_t v) noexcept {
  return msb_index(v) + 1;
}

/// Extract bit `i` (0-based) of `v`.
[[nodiscard]] constexpr bool bit_at(std::uint64_t v, int i) noexcept {
  assert(i >= 0 && i < 64);
  return ((v >> i) & 1u) != 0;
}

/// Extract the inclusive bit field [hi:lo] of `v` (0-based positions).
[[nodiscard]] constexpr std::uint64_t bit_field(std::uint64_t v, int hi,
                                                int lo) noexcept {
  assert(hi >= lo && lo >= 0 && hi < 64);
  return (v >> lo) & low_mask(hi - lo + 1);
}

/// Shift `v` right by `n` (n may exceed 63, result 0) — plain truncation.
[[nodiscard]] constexpr std::uint64_t shr_trunc(std::uint64_t v,
                                                int n) noexcept {
  assert(n >= 0);
  return n >= 64 ? 0 : (v >> n);
}

/// Shift `v` right by `n` with round-to-nearest-even on the dropped bits.
[[nodiscard]] constexpr std::uint64_t shr_rne(std::uint64_t v, int n) noexcept {
  assert(n >= 0);
  if (n == 0) return v;
  if (n >= 64) return 0;  // any representable v rounds to 0 at such shifts
  const std::uint64_t kept = v >> n;
  const std::uint64_t dropped = v & low_mask(n);
  const std::uint64_t half = std::uint64_t{1} << (n - 1);
  if (dropped > half) return kept + 1;
  if (dropped < half) return kept;
  // Tie: round to even.
  return (kept & 1u) != 0 ? kept + 1 : kept;
}

/// True if `v` fits in `bits` unsigned bits.
[[nodiscard]] constexpr bool fits_unsigned(std::uint64_t v, int bits) noexcept {
  return bit_width_of(v) <= bits;
}

/// ceil(a / b) for positive integers.
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t a,
                                              std::int64_t b) noexcept {
  assert(b > 0 && a >= 0);
  return (a + b - 1) / b;
}

}  // namespace bbal
