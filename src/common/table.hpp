// ASCII table printer: every bench binary reports paper-style rows with it.
#pragma once

#include <string>
#include <vector>

namespace bbal {

/// Accumulates rows of strings and renders an aligned ASCII table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; it may be shorter than the header (padded with "").
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  [[nodiscard]] static std::string num(double v, int precision = 2);
  /// Formats a double or "N/A" when not finite.
  [[nodiscard]] static std::string num_or_na(double v, int precision = 2);

  /// Render with column alignment and a header rule.
  [[nodiscard]] std::string render() const;

  /// Render and write to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner (used to delimit experiments in bench output).
void print_banner(const std::string& title);

}  // namespace bbal
