#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bbal {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (const double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double max_abs(std::span<const double> xs) {
  double best = 0.0;
  for (const double x : xs) best = std::max(best, std::fabs(x));
  return best;
}

double mean_abs(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (const double x : xs) acc += std::fabs(x);
  return acc / static_cast<double>(xs.size());
}

double mse(std::span<const double> reference, std::span<const double> approx) {
  assert(reference.size() == approx.size());
  if (reference.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double d = reference[i] - approx[i];
    acc += d * d;
  }
  return acc / static_cast<double>(reference.size());
}

double mean_relative_error(std::span<const double> reference,
                           std::span<const double> approx, double eps) {
  assert(reference.size() == approx.size());
  if (reference.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double denom = std::max(std::fabs(reference[i]), eps);
    acc += std::fabs(reference[i] - approx[i]) / denom;
  }
  return acc / static_cast<double>(reference.size());
}

double sqnr_db(std::span<const double> reference,
               std::span<const double> approx) {
  assert(reference.size() == approx.size());
  double signal = 0.0;
  double noise = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    signal += reference[i] * reference[i];
    const double d = reference[i] - approx[i];
    noise += d * d;
  }
  if (noise == 0.0) return 300.0;  // effectively exact
  if (signal == 0.0) return 0.0;
  return 10.0 * std::log10(signal / noise);
}

std::vector<std::size_t> abs_histogram(std::span<const double> xs,
                                       double max_value, std::size_t bins) {
  assert(bins > 0 && max_value > 0.0);
  std::vector<std::size_t> counts(bins, 0);
  for (const double x : xs) {
    const double a = std::fabs(x);
    auto idx = static_cast<std::size_t>(a / max_value *
                                        static_cast<double>(bins));
    idx = std::min(idx, bins - 1);
    ++counts[idx];
  }
  return counts;
}

namespace {

/// Percentile of an already-materialised (unsorted) sample; sorts in place.
double percentile_of(std::vector<double>& values, double p) {
  std::sort(values.begin(), values.end());
  const double pos = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace

double percentile(std::span<const double> xs, double p) {
  assert(p >= 0.0 && p <= 100.0);
  if (xs.empty()) return 0.0;
  std::vector<double> values(xs.begin(), xs.end());
  return percentile_of(values, p);
}

double abs_percentile(std::span<const double> xs, double p) {
  assert(p >= 0.0 && p <= 100.0);
  if (xs.empty()) return 0.0;
  std::vector<double> mags(xs.size());
  std::transform(xs.begin(), xs.end(), mags.begin(),
                 [](double v) { return std::fabs(v); });
  return percentile_of(mags, p);
}

}  // namespace bbal
