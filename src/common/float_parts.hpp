// Exact decomposition of binary floating point values into
// sign / unbiased exponent / p-bit integer mantissa, and recomposition.
//
// This is the front end of every quantiser in the library: it models the
// "FP16 with an 11-bit mantissa and implicit leading one" input the paper's
// hardware consumes (Section III.A), while remaining exact for any p <= 53.
#pragma once

#include <cstdint>

namespace bbal {

/// A value decomposed as (-1)^negative * (mantissa / 2^(p-1)) * 2^exponent.
/// For non-zero values `mantissa` lies in [2^(p-1), 2^p): the implicit
/// leading one is bit p-1. Zero is represented with `zero == true`.
struct FloatParts {
  bool negative = false;
  int exponent = 0;
  std::uint64_t mantissa = 0;
  bool zero = true;
};

/// Decompose `x` with a `precision_bits`-wide mantissa (round-to-nearest-even).
/// precision_bits must be in [2, 53]. NaN/Inf are not accepted (asserted).
[[nodiscard]] FloatParts decompose(double x, int precision_bits);

/// Exact inverse of decompose (up to the rounding performed there).
[[nodiscard]] double compose(const FloatParts& parts, int precision_bits);

/// Unbiased exponent of |x| (position of the leading one), or `zero_exponent`
/// for x == 0. Equivalent to decompose(x, p).exponent for any p when no
/// mantissa rounding carry occurs; cheap helper for exponent statistics.
[[nodiscard]] int exponent_of(double x, int zero_exponent = -127);

/// FP16 (IEEE binary16) emulation: round `x` to the nearest representable
/// half-precision value (round-to-nearest-even, gradual underflow,
/// saturating at +-65504 rather than producing infinities).
[[nodiscard]] double to_fp16(double x);

/// Number of mantissa bits (incl. implicit one) of FP16: the paper's p = 11.
inline constexpr int kFp16MantissaBits = 11;

/// FP16 exponent range for normal numbers.
inline constexpr int kFp16MinExponent = -14;
inline constexpr int kFp16MaxExponent = 15;

}  // namespace bbal
