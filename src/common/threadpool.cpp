#include "common/threadpool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <utility>

namespace bbal::common {

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = env_threads();
  const int workers = std::max(0, threads - 1);
  queues_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back(
        [this, i] { worker_main(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(sleep_mutex_);
    stop_ = true;
  }
  sleep_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::try_enqueue_helper(std::function<void()> task) {
  const std::size_t start =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  bool pushed = false;
  for (std::size_t i = 0; i < queues_.size() && !pushed; ++i) {
    WorkerQueue& q = *queues_[(start + i) % queues_.size()];
    std::lock_guard<std::mutex> lk(q.mutex);
    if (q.tasks.empty()) {
      q.tasks.push_front(std::move(task));
      pushed = true;
    }
  }
  if (!pushed) return false;
  // Fence against the workers' check-then-wait: a worker holds sleep_mutex_
  // from its (failed) queue re-scan all the way into sleep_cv_.wait, so by
  // acquiring it here *after* the push we guarantee the notify lands either
  // after the worker started waiting or after a scan that saw the task —
  // never in between (which would put the worker to sleep with work
  // pending and silently serialise the loop).
  { std::lock_guard<std::mutex> lk(sleep_mutex_); }
  sleep_cv_.notify_all();
  return true;
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& task) {
  // Own queue first (back = most recently pushed, cache-warm)...
  {
    WorkerQueue& q = *queues_[self];
    std::lock_guard<std::mutex> lk(q.mutex);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  // ...then steal from the front of the others.
  for (std::size_t i = 1; i < queues_.size(); ++i) {
    WorkerQueue& q = *queues_[(self + i) % queues_.size()];
    std::lock_guard<std::mutex> lk(q.mutex);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_main(std::size_t self) {
  std::function<void()> task;
  for (;;) {
    if (try_pop(self, task)) {
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lk(sleep_mutex_);
    if (stop_) return;
    // Re-check under the lock: an enqueue between the failed pop and this
    // wait would otherwise be missed until the next notify.
    bool any = false;
    for (const auto& q : queues_) {
      std::lock_guard<std::mutex> qlk(q->mutex);
      if (!q->tasks.empty()) {
        any = true;
        break;
      }
    }
    if (any) continue;
    sleep_cv_.wait(lk);
  }
}

namespace {

/// Shared state of one parallel_for: an atomic cursor over the index range
/// (the work-stealing of *iterations* — whoever is free grabs the next
/// chunk) plus completion/error bookkeeping for the waiting caller.
struct LoopState {
  std::atomic<std::int64_t> next;
  std::int64_t end;
  std::int64_t grain;
  const std::function<void(std::int64_t, std::int64_t)>* body;

  std::atomic<int> active{0};  ///< threads currently inside the chunk loop
  std::mutex mutex;
  std::condition_variable done_cv;
  std::exception_ptr error;

  void run_chunks() {
    active.fetch_add(1, std::memory_order_acq_rel);
    for (;;) {
      const std::int64_t c0 = next.fetch_add(grain, std::memory_order_relaxed);
      if (c0 >= end) break;
      const std::int64_t c1 = std::min(c0 + grain, end);
      try {
        (*body)(c0, c1);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mutex);
        if (!error) error = std::current_exception();
        next.store(end, std::memory_order_relaxed);  // cancel the rest
      }
    }
    if (active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(mutex);
      done_cv.notify_all();
    }
  }
};

}  // namespace

void ThreadPool::parallel_for_chunks(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  if (end <= begin) return;
  const std::int64_t n = end - begin;
  const int executors = thread_count();
  if (grain <= 0)
    grain = std::max<std::int64_t>(1, n / (4 * executors));
  if (executors <= 1 || n <= grain) {
    body(begin, end);
    return;
  }

  auto state = std::make_shared<LoopState>();
  state->next.store(begin, std::memory_order_relaxed);
  state->end = end;
  state->grain = grain;
  state->body = &body;

  // Offer helper tasks to the pool — at most one per worker, never more
  // than there are chunks, and only while empty queues exist (a saturated
  // pool can't use more). Late helpers (picked up after the caller drained
  // the range) find next >= end and return without touching `body`, so the
  // shared_ptr keeps everything they access alive.
  const std::int64_t chunks = (n + grain - 1) / grain;
  const std::int64_t helpers =
      std::min<std::int64_t>(static_cast<std::int64_t>(workers_.size()),
                             chunks - 1);
  for (std::int64_t h = 0; h < helpers; ++h)
    if (!try_enqueue_helper([state] { state->run_chunks(); })) break;

  state->run_chunks();  // the caller always participates

  // Wait for helpers still executing a chunk; they depend on nobody, so
  // this cannot deadlock (nested loops included).
  {
    std::unique_lock<std::mutex> lk(state->mutex);
    state->done_cv.wait(lk, [&] {
      return state->active.load(std::memory_order_acquire) == 0;
    });
    if (state->error) std::rethrow_exception(state->error);
  }
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end,
                              const std::function<void(std::int64_t)>& body) {
  parallel_for_chunks(begin, end, /*grain=*/0,
                      [&body](std::int64_t c0, std::int64_t c1) {
                        for (std::int64_t i = c0; i < c1; ++i) body(i);
                      });
}

void ThreadPool::parallel_for_tiles(
    std::int64_t rows, std::int64_t cols, std::int64_t tile_rows,
    std::int64_t tile_cols, const std::function<void(const Tile&)>& body) {
  if (rows <= 0 || cols <= 0) return;
  tile_rows = std::max<std::int64_t>(1, tile_rows);
  tile_cols = std::max<std::int64_t>(1, tile_cols);
  const std::int64_t row_tiles = (rows + tile_rows - 1) / tile_rows;
  const std::int64_t col_tiles = (cols + tile_cols - 1) / tile_cols;
  parallel_for_chunks(
      0, row_tiles * col_tiles, /*grain=*/1,
      [&](std::int64_t t0, std::int64_t t1) {
        for (std::int64_t t = t0; t < t1; ++t) {
          Tile tile;
          tile.row_begin = (t / col_tiles) * tile_rows;
          tile.row_end = std::min(rows, tile.row_begin + tile_rows);
          tile.col_begin = (t % col_tiles) * tile_cols;
          tile.col_end = std::min(cols, tile.col_begin + tile_cols);
          body(tile);
        }
      });
}

namespace {
std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;
}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lk(g_global_mutex);
  if (!g_global_pool) g_global_pool = std::make_unique<ThreadPool>();
  return *g_global_pool;
}

void ThreadPool::set_global_threads(int threads) {
  std::lock_guard<std::mutex> lk(g_global_mutex);
  g_global_pool = std::make_unique<ThreadPool>(threads);
}

int ThreadPool::env_threads() {
  if (const char* env = std::getenv("BBAL_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace bbal::common
