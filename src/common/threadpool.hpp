// Work-stealing thread pool + parallel_for, the execution engine behind the
// quantised matmul hot path and bbal::SweepRunner.
//
// Design rules, in order of importance:
//
//  1. Determinism. parallel_for partitions an index range into chunks and
//     runs each chunk exactly once; bodies write disjoint outputs, so the
//     numeric result is bit-identical at any thread count (enforced by the
//     BENCH_table2.json regression gate in CI).
//  2. No deadlocks under nesting. The calling thread always participates in
//     its own loop: helper tasks pushed to the pool are an *optimisation*,
//     and a parallel_for completes even if no worker ever picks one up. A
//     worker blocked at the end of a nested loop only waits on chunks that
//     other threads are already executing.
//  3. Exceptions propagate. The first exception thrown by a body is
//     captured, remaining chunks are cancelled, and the exception is
//     rethrown on the calling thread.
//
// Thread-count policy: ThreadPool(n) means n executors — the caller plus
// n-1 pooled workers — so ThreadPool(1) spawns no threads and runs every
// loop inline (the degenerate case tests rely on this). The process-wide
// pool (ThreadPool::global()) sizes itself from BBAL_THREADS, falling back
// to std::thread::hardware_concurrency(); tools expose the same knob as
// --threads N via set_global_threads(), which must be called before the
// first global() use (it replaces the pool, and concurrent loops on the old
// pool would be orphaned).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bbal::common {

class ThreadPool {
 public:
  /// n executors (caller + n-1 workers); n <= 0 picks env_threads().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Executors available to a parallel_for (including the caller).
  [[nodiscard]] int thread_count() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Run body(i) for every i in [begin, end). Blocks until done; rethrows
  /// the first body exception. Safe to call from inside another
  /// parallel_for body (the nested loop reuses the same pool).
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t)>& body);

  /// Chunked variant: body(c0, c1) receives half-open sub-ranges of size
  /// <= grain. Lets bodies hoist per-chunk scratch buffers out of the
  /// element loop. grain <= 0 picks end-begin over ~4 chunks per executor.
  void parallel_for_chunks(
      std::int64_t begin, std::int64_t end, std::int64_t grain,
      const std::function<void(std::int64_t, std::int64_t)>& body);

  /// One 2-D tile of a [0,rows) x [0,cols) iteration space.
  struct Tile {
    std::int64_t row_begin = 0, row_end = 0;
    std::int64_t col_begin = 0, col_end = 0;
  };

  /// Tile a 2-D range and run body(tile) for every tile; tiles are
  /// enumerated row-major and each is executed exactly once.
  void parallel_for_tiles(std::int64_t rows, std::int64_t cols,
                          std::int64_t tile_rows, std::int64_t tile_cols,
                          const std::function<void(const Tile&)>& body);

  /// The process-wide pool, created on first use with env_threads().
  [[nodiscard]] static ThreadPool& global();
  /// Replace the global pool with an n-executor one (the --threads knob).
  /// Call before the first global() use; not safe mid-sweep.
  static void set_global_threads(int threads);
  /// BBAL_THREADS when set and > 0, else hardware_concurrency (min 1).
  [[nodiscard]] static int env_threads();

 private:
  // One mutex-guarded deque per worker. Owners pop from the back (LIFO,
  // cache-warm); thieves and the external enqueue use the front (FIFO) —
  // the classic Chase-Lev asymmetry without the lock-free machinery, which
  // the helper-task granularity here does not need.
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  /// Push a helper task into the first *empty* worker queue (round-robin
  /// start). Returns false — dropping the task — when every queue already
  /// holds work: helpers are pure optimisations (the caller drains its own
  /// loop regardless), and the one-per-queue bound keeps saturated sweeps
  /// from piling up closures no idle worker exists to run.
  bool try_enqueue_helper(std::function<void()> task);
  void worker_main(std::size_t self);
  [[nodiscard]] bool try_pop(std::size_t self, std::function<void()>& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  bool stop_ = false;
  std::atomic<std::size_t> next_queue_{0};  ///< round-robin enqueue cursor
};

}  // namespace bbal::common
