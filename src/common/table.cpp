#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <sstream>

namespace bbal {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::num_or_na(double v, int precision) {
  if (!std::isfinite(v)) return "N/A";
  return num(v, precision);
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };
  emit_row(header_);
  out << "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    out << std::string(widths[c] + 2, '-') << "|";
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TextTable::print() const { std::cout << render(); }

void print_banner(const std::string& title) {
  std::cout << '\n'
            << "==== " << title << " " << std::string(std::max<std::size_t>(
                   4, 72 - title.size()), '=')
            << '\n';
}

}  // namespace bbal
