// Deterministic random number generation for synthetic workloads.
//
// All experiments are seeded so that every bench/test run is reproducible;
// heavy-tailed draws model the outlier structure of LLM tensors (Fig. 1a).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace bbal {

/// Thin deterministic wrapper over a fixed-algorithm engine.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Standard normal.
  [[nodiscard]] double gaussian() {
    return std::normal_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Normal with given mean / stddev.
  [[nodiscard]] double gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Two-sided heavy-tailed draw: Gaussian bulk with probability
  /// (1 - outlier_rate), otherwise a Laplace-like tail scaled by
  /// `outlier_scale`. Mimics LLM weight/activation outliers.
  [[nodiscard]] double heavy_tailed(double stddev, double outlier_rate,
                                    double outlier_scale) {
    if (uniform() < outlier_rate) {
      const double sign = uniform() < 0.5 ? -1.0 : 1.0;
      const double mag = -std::log(1.0 - uniform());  // Exp(1)
      return sign * stddev * outlier_scale * (1.0 + mag);
    }
    return gaussian(0.0, stddev);
  }

  /// Sample index from an (unnormalised) discrete distribution.
  [[nodiscard]] int categorical(const std::vector<double>& weights) {
    std::discrete_distribution<int> dist(weights.begin(), weights.end());
    return dist(engine_);
  }

  /// Derive an independent child generator (stable split).
  [[nodiscard]] Rng split() {
    return Rng(static_cast<std::uint64_t>(engine_()) * 0x9E3779B97F4A7C15ull +
               0xD1B54A32D192ED03ull);
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace bbal
