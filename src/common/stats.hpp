// Small statistics helpers used by error-analysis experiments.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace bbal {

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double variance(std::span<const double> xs);  // population
[[nodiscard]] double max_abs(std::span<const double> xs);
[[nodiscard]] double mean_abs(std::span<const double> xs);

/// Mean squared error between a reference and an approximation.
[[nodiscard]] double mse(std::span<const double> reference,
                         std::span<const double> approx);

/// Mean relative error |ref - approx| / max(|ref|, eps).
[[nodiscard]] double mean_relative_error(std::span<const double> reference,
                                         std::span<const double> approx,
                                         double eps = 1e-12);

/// Signal-to-quantisation-noise ratio in dB.
[[nodiscard]] double sqnr_db(std::span<const double> reference,
                             std::span<const double> approx);

/// Fixed-width histogram over |x| in [0, max_value]; values above the range
/// land in the last bin. Returns per-bin counts.
[[nodiscard]] std::vector<std::size_t> abs_histogram(
    std::span<const double> xs, double max_value, std::size_t bins);

/// p-th percentile (p in [0,100]) of the values themselves, linear
/// interpolation between order statistics. Used for serving-latency
/// summaries (p50/p95/p99) where sign matters (latencies are positive but
/// uncentred); 0 for an empty span.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// p-th percentile (p in [0,100]) of |x|, linear interpolation.
[[nodiscard]] double abs_percentile(std::span<const double> xs, double p);

}  // namespace bbal
