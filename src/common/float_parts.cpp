#include "common/float_parts.hpp"

#include <cassert>
#include <cmath>

#include "common/bitutils.hpp"

namespace bbal {

FloatParts decompose(double x, int precision_bits) {
  assert(precision_bits >= 2 && precision_bits <= 53);
  assert(std::isfinite(x));
  FloatParts parts;
  if (x == 0.0) {
    parts.zero = true;
    parts.negative = std::signbit(x);
    return parts;
  }
  parts.zero = false;
  parts.negative = std::signbit(x);

  int e2 = 0;
  const double frac = std::frexp(std::fabs(x), &e2);  // frac in [0.5, 1)
  // Scale so the integer part is the p-bit mantissa; round to nearest even.
  const double scaled = std::ldexp(frac, precision_bits);
  auto mant = static_cast<std::uint64_t>(scaled);
  const double rem = scaled - static_cast<double>(mant);
  if (rem > 0.5 || (rem == 0.5 && (mant & 1u) != 0)) ++mant;

  int exponent = e2 - 1;  // value = (mant / 2^(p-1)) * 2^(e2-1)
  if (mant == (std::uint64_t{1} << precision_bits)) {
    mant >>= 1;  // rounding carry: 1.111..1 -> 10.00..0
    ++exponent;
  }
  assert(mant >= (std::uint64_t{1} << (precision_bits - 1)));
  assert(mant < (std::uint64_t{1} << precision_bits));
  parts.mantissa = mant;
  parts.exponent = exponent;
  return parts;
}

double compose(const FloatParts& parts, int precision_bits) {
  assert(precision_bits >= 2 && precision_bits <= 53);
  if (parts.zero) return parts.negative ? -0.0 : 0.0;
  const double mag = std::ldexp(static_cast<double>(parts.mantissa),
                                parts.exponent - (precision_bits - 1));
  return parts.negative ? -mag : mag;
}

int exponent_of(double x, int zero_exponent) {
  if (x == 0.0) return zero_exponent;
  int e2 = 0;
  (void)std::frexp(std::fabs(x), &e2);
  return e2 - 1;
}

double to_fp16(double x) {
  assert(std::isfinite(x));
  if (x == 0.0) return x;
  const double kMax = 65504.0;
  if (x > kMax) return kMax;
  if (x < -kMax) return -kMax;

  const FloatParts parts = decompose(x, kFp16MantissaBits);
  if (parts.exponent >= kFp16MinExponent)
    return compose(parts, kFp16MantissaBits);

  // Subnormal range: quantum is fixed at 2^-24.
  const double q = std::ldexp(1.0, -24);
  const double n = std::nearbyint(x / q);  // assumes default RNE mode
  return n * q;
}

}  // namespace bbal
