// Lightweight error propagation for the public API: Status (ok | message)
// and Result<T> (value | message). Replaces the seed's assert()-on-bad-input
// convention so callers can handle unknown strategy names, malformed
// formats and size mismatches without aborting the process.
//
// Conventions:
//  - Library entry points that can fail on *user input* return Status /
//    Result<T>.
//  - Call sites holding inputs that are correct by construction use
//    .expect("context"), which aborts with a readable message (and, unlike
//    assert, still fires under NDEBUG).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace bbal {

class Status {
 public:
  Status() = default;  ///< ok
  [[nodiscard]] static Status ok() { return Status(); }
  [[nodiscard]] static Status error(std::string message) {
    Status s;
    s.error_ = std::move(message);
    return s;
  }

  [[nodiscard]] bool is_ok() const { return !error_.has_value(); }
  [[nodiscard]] explicit operator bool() const { return is_ok(); }
  [[nodiscard]] const std::string& message() const {
    static const std::string kOk;
    return error_ ? *error_ : kOk;
  }

  /// Abort with a readable message when not ok. For call sites whose inputs
  /// are correct by construction.
  void expect(const char* context) const {
    if (is_ok()) return;
    std::fprintf(stderr, "bbal: %s: %s\n", context, error_->c_str());
    std::abort();
  }

 private:
  std::optional<std::string> error_;
};

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  [[nodiscard]] static Result error(std::string message) {
    Result r;
    r.error_ = std::move(message);
    return r;
  }
  /// Propagate an error (or wrap a value-less ok as a default T).
  [[nodiscard]] static Result from_status(const Status& s, T fallback = T{}) {
    return s.is_ok() ? Result(std::move(fallback)) : error(s.message());
  }

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  [[nodiscard]] explicit operator bool() const { return is_ok(); }
  [[nodiscard]] const std::string& message() const { return error_; }
  [[nodiscard]] Status status() const {
    return is_ok() ? Status::ok() : Status::error(error_);
  }

  [[nodiscard]] T& value() & { return *value_; }
  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T&& value() && { return std::move(*value_); }

  [[nodiscard]] T value_or(T fallback) const& {
    return value_ ? *value_ : std::move(fallback);
  }

  /// Unwrap or abort with a readable message (see Status::expect).
  [[nodiscard]] T expect(const char* context) && {
    if (!value_) {
      std::fprintf(stderr, "bbal: %s: %s\n", context, error_.c_str());
      std::abort();
    }
    return std::move(*value_);
  }

 private:
  Result() = default;
  std::optional<T> value_;
  std::string error_;
};

}  // namespace bbal
