#include "quant/dot.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/bitutils.hpp"

namespace bbal::quant {

BlockDotResult dot_block(const EncodedBlock& a, const EncodedBlock& b) {
  assert(a.elems.size() == b.elems.size());
  BlockDotResult result;

  const int da = a.format.shift_distance();
  const int db = b.format.shift_distance();

  for (std::size_t i = 0; i < a.elems.size(); ++i) {
    const BlockElement& ea = a.elems[i];
    const BlockElement& eb = b.elems[i];
    if (ea.mantissa == 0 || eb.mantissa == 0) continue;
    // Eq. (10): m1*m2 shifted by d per asserted flag; sign via XOR (Eq. 7).
    const int lift = (ea.flag ? da : 0) + (eb.flag ? db : 0);
    const std::uint64_t prod =
        (static_cast<std::uint64_t>(ea.mantissa) * eb.mantissa) << lift;
    result.max_product_bits =
        std::max(result.max_product_bits, bit_width_of(prod));
    const bool neg = ea.negative != eb.negative;
    result.accumulator += neg ? -static_cast<std::int64_t>(prod)
                              : static_cast<std::int64_t>(prod);
  }

  result.scale_exponent =
      (a.shared_exponent - a.format.mantissa_bits + 1) +
      (b.shared_exponent - b.format.mantissa_bits + 1);
  result.value = std::ldexp(static_cast<double>(result.accumulator),
                            result.scale_exponent);
  return result;
}

double dot_block_reference(const EncodedBlock& a, const EncodedBlock& b) {
  assert(a.elems.size() == b.elems.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.elems.size(); ++i)
    acc += a.decode(i) * b.decode(i);
  return acc;
}

double quantised_dot(std::span<const double> a, const BlockFormat& fmt_a,
                     std::span<const double> b, const BlockFormat& fmt_b) {
  assert(a.size() == b.size());
  assert(fmt_a.block_size == fmt_b.block_size);
  const std::size_t bs = static_cast<std::size_t>(fmt_a.block_size);
  double acc = 0.0;  // FP accumulator across blocks (paper's FP adder)
  for (std::size_t start = 0; start < a.size(); start += bs) {
    const std::size_t len = std::min(bs, a.size() - start);
    const EncodedBlock ba = encode_block(a.subspan(start, len), fmt_a);
    const EncodedBlock bb = encode_block(b.subspan(start, len), fmt_b);
    acc += dot_block(ba, bb).value;
  }
  return acc;
}

}  // namespace bbal::quant
