// Block floating point format descriptors (BFP-m and BBFP(m,o)).
//
// One descriptor drives the whole library: encoders, bit-exact dot products,
// gate-level cost models and memory accounting all consume a BlockFormat.
#pragma once

#include <string>

#include "common/result.hpp"

namespace bbal::quant {

/// Mantissa rounding applied when bits fall off the bottom of the window.
enum class Rounding { kNearestEven, kTruncate };

/// What happens when the shifted leading one falls above the stored window
/// (possible for aggressive shared-exponent strategies, see Fig. 3 "Max-3").
enum class OverflowPolicy {
  kClipBits,  // hardware Clip() semantics: bits above the window are lost
  kSaturate,  // clamp to the maximum representable mantissa
};

/// A block floating point format: classic BFP or the paper's BBFP(m,o).
struct BlockFormat {
  enum class Kind { kBfp, kBbfp };

  Kind kind = Kind::kBfp;
  int mantissa_bits = 4;   ///< m: stored mantissa width (sign excluded)
  int overlap_bits = 0;    ///< o: window overlap, BBFP only (0 <= o < m)
  int exponent_bits = 5;   ///< shared exponent field width (paper fixes 5)
  int block_size = 32;     ///< elements sharing one exponent
  int source_precision = 11;  ///< p: input mantissa width (FP16 -> 11)
  Rounding rounding = Rounding::kNearestEven;
  OverflowPolicy overflow = OverflowPolicy::kClipBits;
  /// Shared exponent is E_s = max(e) - shift_distance() + strategy_delta.
  /// 0 reproduces Eq. (9); -1 is the paper's "Max-3" for BBFP(4,2);
  /// +1 its "Max-1"; +shift_distance() degenerates to plain max alignment.
  int strategy_delta = 0;

  /// Checked constructors: validate the parameters and return an error
  /// instead of aborting. Prefer these when the (m, o) values come from
  /// user input (strategy strings, CLI args).
  [[nodiscard]] static Result<BlockFormat> make_bfp(int m, int block = 32) {
    BlockFormat f;
    f.kind = Kind::kBfp;
    f.mantissa_bits = m;
    f.overlap_bits = 0;
    f.block_size = block;
    if (const Status s = f.validate(); !s.is_ok())
      return Result<BlockFormat>::error(s.message());
    return f;
  }

  [[nodiscard]] static Result<BlockFormat> make_bbfp(int m, int o,
                                                     int block = 32) {
    BlockFormat f;
    f.kind = Kind::kBbfp;
    f.mantissa_bits = m;
    f.overlap_bits = o;
    f.block_size = block;
    if (const Status s = f.validate(); !s.is_ok())
      return Result<BlockFormat>::error(s.message());
    return f;
  }

  /// Convenience constructors for literal parameters; abort with a message
  /// on invalid input (use make_bfp/make_bbfp to handle errors).
  [[nodiscard]] static BlockFormat bfp(int m, int block = 32) {
    return make_bfp(m, block).expect("BlockFormat::bfp");
  }

  [[nodiscard]] static BlockFormat bbfp(int m, int o, int block = 32) {
    return make_bbfp(m, o, block).expect("BlockFormat::bbfp");
  }

  [[nodiscard]] Status validate() const {
    if (mantissa_bits < 2 || mantissa_bits > 24)
      return Status::error("mantissa_bits " + std::to_string(mantissa_bits) +
                           " out of range [2, 24]");
    if (block_size < 1)
      return Status::error("block_size " + std::to_string(block_size) +
                           " must be >= 1");
    if (exponent_bits < 1 || exponent_bits > 8)
      return Status::error("exponent_bits " + std::to_string(exponent_bits) +
                           " out of range [1, 8]");
    if (source_precision < mantissa_bits && kind != Kind::kBbfp &&
        source_precision < 2)
      return Status::error("source_precision " +
                           std::to_string(source_precision) + " too small");
    if (kind == Kind::kBbfp &&
        (overlap_bits < 0 || overlap_bits >= mantissa_bits))
      return Status::error(
          "overlap_bits " + std::to_string(overlap_bits) +
          " out of range [0, m) for m = " + std::to_string(mantissa_bits));
    return Status::ok();
  }

  /// d = m - o: how far the shared exponent sits below the block maximum,
  /// and the left-shift applied to flagged (high-group) mantissas. 0 for BFP.
  [[nodiscard]] int shift_distance() const {
    return kind == Kind::kBbfp ? mantissa_bits - overlap_bits : 0;
  }

  [[nodiscard]] bool is_bbfp() const { return kind == Kind::kBbfp; }

  /// Bits per element including amortised shared exponent (Table I):
  /// BFP-m: m + sign + e/block. BBFP(m,o): one extra flag bit.
  [[nodiscard]] double equivalent_bits() const {
    const double shared =
        static_cast<double>(exponent_bits) / static_cast<double>(block_size);
    const double flag = is_bbfp() ? 1.0 : 0.0;
    return static_cast<double>(mantissa_bits) + 1.0 + flag + shared;
  }

  /// Memory efficiency relative to FP16 (Table I's "Mem Eff." column).
  [[nodiscard]] double memory_efficiency() const {
    return 16.0 / equivalent_bits();
  }

  [[nodiscard]] std::string name() const {
    if (is_bbfp())
      return "BBFP(" + std::to_string(mantissa_bits) + "," +
             std::to_string(overlap_bits) + ")";
    return "BFP" + std::to_string(mantissa_bits);
  }

  /// Same format with a different shared-exponent strategy.
  [[nodiscard]] BlockFormat with_delta(int delta) const {
    BlockFormat f = *this;
    f.strategy_delta = delta;
    return f;
  }
};

/// Shared exponent assigned to blocks that contain only zeros.
inline constexpr int kZeroBlockExponent = -120;

}  // namespace bbal::quant
