// Bit-exact block dot products — the datapath of Eq. (7)/(10).
//
// The accelerator multiplies mantissas with an m-bit integer multiplier,
// lifts the product by d * (flag1 + flag2) positions and accumulates signed
// integers; the shared exponents add once per block. This module implements
// exactly that, and is unit-tested to match the dequantise-then-multiply
// reference to the last bit.
#pragma once

#include <cstdint>

#include "quant/block.hpp"

namespace bbal::quant {

/// Result of one block dot product in the integer domain.
struct BlockDotResult {
  std::int64_t accumulator = 0;  ///< signed sum of lifted mantissa products
  int scale_exponent = 0;        ///< value = accumulator * 2^scale_exponent
  double value = 0.0;            ///< accumulator scaled back to a real
  int max_product_bits = 0;      ///< widest lifted product seen (HW sizing)
};

/// Dot product of two equally-sized encoded blocks (formats may differ in
/// (m,o) but must agree in length).
[[nodiscard]] BlockDotResult dot_block(const EncodedBlock& a,
                                       const EncodedBlock& b);

/// Reference dot product on decoded values (used for verification).
[[nodiscard]] double dot_block_reference(const EncodedBlock& a,
                                         const EncodedBlock& b);

/// Full quantised dot product of two real vectors: encode both sides in
/// consecutive blocks of fmt_a/fmt_b.block_size and sum the block dots in
/// double (the accelerator's FP accumulator). Lengths must match.
[[nodiscard]] double quantised_dot(std::span<const double> a,
                                   const BlockFormat& fmt_a,
                                   std::span<const double> b,
                                   const BlockFormat& fmt_b);

}  // namespace bbal::quant
