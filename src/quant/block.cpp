#include "quant/block.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/bitutils.hpp"
#include "common/float_parts.hpp"

namespace bbal::quant {
namespace {

/// Shift the p-bit mantissa by `net` positions (left if positive) and round
/// according to `rounding`. Returns the unclipped result and, via
/// `trunc_out`, the truncated (no-round) value used for overflow detection.
std::uint64_t shift_and_round(std::uint64_t mantissa, int net,
                              Rounding rounding, std::uint64_t& trunc_out) {
  if (net >= 0) {
    // Left shifts introduce no rounding. Mantissas are <= 2^24 and nets are
    // bounded by the exponent spread we admit, so this cannot overflow u64.
    assert(net < 40);
    trunc_out = mantissa << net;
    return trunc_out;
  }
  const int shift = -net;
  trunc_out = shr_trunc(mantissa, shift);
  return rounding == Rounding::kNearestEven ? shr_rne(mantissa, shift)
                                            : trunc_out;
}

}  // namespace

double EncodedBlock::step_low() const {
  return std::ldexp(1.0, shared_exponent - format.mantissa_bits + 1);
}

double EncodedBlock::step_high() const {
  return std::ldexp(step_low(), format.shift_distance());
}

double EncodedBlock::decode(std::size_t i) const {
  assert(i < elems.size());
  const BlockElement& e = elems[i];
  const int lift = e.flag ? format.shift_distance() : 0;
  const double mag =
      std::ldexp(static_cast<double>(e.mantissa),
                 shared_exponent - format.mantissa_bits + 1 + lift);
  return e.negative ? -mag : mag;
}

Status EncodedBlock::decode_all(std::span<double> out) const {
  if (out.size() != elems.size())
    return Status::error("decode_all: span size " +
                         std::to_string(out.size()) + " != block size " +
                         std::to_string(elems.size()));
  for (std::size_t i = 0; i < elems.size(); ++i) out[i] = decode(i);
  return Status::ok();
}

std::vector<double> EncodedBlock::decode_all() const {
  std::vector<double> out(elems.size());
  decode_all(std::span<double>(out)).expect("EncodedBlock::decode_all");
  return out;
}

std::size_t EncodedBlock::flag_count() const {
  return static_cast<std::size_t>(
      std::count_if(elems.begin(), elems.end(),
                    [](const BlockElement& e) { return e.flag; }));
}

EncodedBlock encode_block(std::span<const double> values,
                          const BlockFormat& fmt) {
  assert(!values.empty());
  fmt.validate().expect("encode_block");

  EncodedBlock block;
  block.format = fmt;
  block.elems.resize(values.size());

  const int p = fmt.source_precision;
  const int m = fmt.mantissa_bits;
  const int d = fmt.shift_distance();

  // Pass 1: decompose at source precision; find the block max exponent.
  std::vector<FloatParts> parts(values.size());
  int max_e = kZeroBlockExponent;
  bool any_nonzero = false;
  for (std::size_t i = 0; i < values.size(); ++i) {
    parts[i] = decompose(values[i], p);
    if (!parts[i].zero) {
      any_nonzero = true;
      max_e = std::max(max_e, parts[i].exponent);
    }
  }
  if (!any_nonzero) {
    block.shared_exponent = kZeroBlockExponent;
    return block;  // all elements default to zero mantissas
  }

  // Shared exponent per Eq. (9) plus the configured strategy offset.
  // For BFP, d == 0 and delta defaults to 0 => plain max alignment.
  block.shared_exponent = max_e - d + fmt.strategy_delta;

  const std::uint64_t cap = std::uint64_t{1} << m;
  for (std::size_t i = 0; i < values.size(); ++i) {
    BlockElement& elem = block.elems[i];
    const FloatParts& part = parts[i];
    elem.negative = part.negative;
    if (part.zero) continue;

    const int n = part.exponent - block.shared_exponent;
    const bool flag = fmt.is_bbfp() && n > 0;
    elem.flag = flag;
    // Window bottom: bits below it are dropped. High group sits d bits up.
    const int window_bottom = (p - m) + (flag ? d : 0);
    const int net = n - window_bottom;

    std::uint64_t trunc = 0;
    std::uint64_t rounded =
        shift_and_round(part.mantissa, net, fmt.rounding, trunc);

    if (rounded >= cap) {
      if (trunc < cap) {
        // Pure rounding carry past the window top: hardware sticky-rounds.
        rounded = cap - 1;
      } else if (fmt.overflow == OverflowPolicy::kSaturate) {
        rounded = cap - 1;
      } else {
        // Clip() semantics: bits above the stored window are lost.
        rounded &= cap - 1;
      }
    }
    elem.mantissa = static_cast<std::uint32_t>(rounded);
  }
  return block;
}

void quantise(std::span<const double> values, const BlockFormat& fmt,
              std::span<double> out) {
  assert(values.size() == out.size());
  const std::size_t bs = static_cast<std::size_t>(fmt.block_size);
  for (std::size_t start = 0; start < values.size(); start += bs) {
    const std::size_t len = std::min(bs, values.size() - start);
    const EncodedBlock block = encode_block(values.subspan(start, len), fmt);
    block.decode_all(out.subspan(start, len)).expect("quantise");
  }
}

std::vector<double> quantise(std::span<const double> values,
                             const BlockFormat& fmt) {
  std::vector<double> out(values.size());
  quantise(values, fmt, std::span<double>(out));
  return out;
}

void quantise(std::span<const float> values, const BlockFormat& fmt,
              std::span<float> out) {
  assert(values.size() == out.size());
  const std::size_t bs = static_cast<std::size_t>(fmt.block_size);
  std::vector<double> buf(bs);
  std::vector<double> qbuf(bs);
  for (std::size_t start = 0; start < values.size(); start += bs) {
    const std::size_t len = std::min(bs, values.size() - start);
    for (std::size_t i = 0; i < len; ++i)
      buf[i] = static_cast<double>(values[start + i]);
    const EncodedBlock block =
        encode_block(std::span<const double>(buf.data(), len), fmt);
    block.decode_all(std::span<double>(qbuf.data(), len)).expect("quantise");
    for (std::size_t i = 0; i < len; ++i)
      out[start + i] = static_cast<float>(qbuf[i]);
  }
}

}  // namespace bbal::quant
