#include "quant/overlap_search.hpp"

#include <algorithm>
#include <cassert>

namespace bbal::quant {

OverlapSearchResult select_overlap_width(
    int mantissa_bits, double overhead_weight,
    const std::function<double(int)>& ppl_of_overlap,
    const std::function<double(int)>& overhead_of_overlap) {
  assert(mantissa_bits >= 2);
  assert(overhead_weight >= 0.0 && overhead_weight <= 1.0);

  OverlapSearchResult result;
  for (int o = 0; o < mantissa_bits; ++o) {
    result.ppl.push_back(ppl_of_overlap(o));
    result.overhead.push_back(overhead_of_overlap(o));
  }

  const double ppl_max =
      *std::max_element(result.ppl.begin(), result.ppl.end());
  const double ovh_max =
      *std::max_element(result.overhead.begin(), result.overhead.end());
  assert(ppl_max > 0.0 && ovh_max > 0.0);

  double best = 0.0;
  for (int o = 0; o < mantissa_bits; ++o) {
    const double score =
        overhead_weight *
            (result.overhead[static_cast<std::size_t>(o)] / ovh_max) +
        (1.0 - overhead_weight) *
            (result.ppl[static_cast<std::size_t>(o)] / ppl_max);
    result.score.push_back(score);
    if (o == 0 || score < best) {
      best = score;
      result.best_overlap = o;
    }
  }
  return result;
}

}  // namespace bbal::quant
