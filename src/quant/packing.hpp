// Bit-exact memory layout of encoded blocks — the packing the paper's
// memory-efficiency numbers assume (Table I): per element sign + (flag) +
// m-bit mantissa, plus one shared exponent field per block.
//
// pack/unpack round-trip exactly, and the packed size equals
// BlockFormat::equivalent_bits() * elements (up to byte padding), which is
// asserted by tests — the memory-density claims are thus executable.
#pragma once

#include <cstdint>
#include <vector>

#include "quant/block.hpp"

namespace bbal::quant {

/// A bit-packed stream of equally-formatted blocks.
struct PackedBlocks {
  BlockFormat format;
  std::size_t element_count = 0;
  std::vector<std::uint8_t> bytes;

  [[nodiscard]] std::size_t bit_count() const;
  /// Storage bits per element actually used (compare to equivalent_bits()).
  [[nodiscard]] double bits_per_element() const;
};

/// Pack encoded blocks into the hardware memory layout. All blocks must
/// share the same format; the last block may be short.
[[nodiscard]] PackedBlocks pack_blocks(const std::vector<EncodedBlock>& blocks);

/// Unpack into blocks of format.block_size (last block short if needed).
[[nodiscard]] std::vector<EncodedBlock> unpack_blocks(
    const PackedBlocks& packed);

/// Convenience: quantise a real vector and return its packed image.
[[nodiscard]] PackedBlocks pack_values(std::span<const double> values,
                                       const BlockFormat& fmt);

/// Decode a packed image back to real values.
[[nodiscard]] std::vector<double> unpack_values(const PackedBlocks& packed);

}  // namespace bbal::quant
