#include "quant/packing.hpp"

#include <cassert>

#include "common/bitutils.hpp"

namespace bbal::quant {
namespace {

/// Little-endian bit writer.
class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  void put(std::uint64_t value, int bits) {
    assert(bits >= 0 && bits <= 64);
    assert(bits == 64 || value <= low_mask(bits));
    for (int i = 0; i < bits; ++i) {
      const std::size_t byte = pos_ >> 3;
      if (byte >= bytes_.size()) bytes_.push_back(0);
      if (bit_at(value, i))
        bytes_[byte] = static_cast<std::uint8_t>(bytes_[byte] |
                                                 (1u << (pos_ & 7)));
      ++pos_;
    }
  }

  [[nodiscard]] std::size_t bit_position() const { return pos_; }

 private:
  std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

/// Little-endian bit reader.
class BitReader {
 public:
  explicit BitReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes) {}

  [[nodiscard]] std::uint64_t get(int bits) {
    assert(bits >= 0 && bits <= 64);
    std::uint64_t value = 0;
    for (int i = 0; i < bits; ++i) {
      const std::size_t byte = pos_ >> 3;
      assert(byte < bytes_.size());
      if ((bytes_[byte] >> (pos_ & 7)) & 1u)
        value |= std::uint64_t{1} << i;
      ++pos_;
    }
    return value;
  }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

/// Shared exponents are stored biased into the format's exponent field;
/// kZeroBlockExponent maps to the all-zero code.
constexpr int kExponentBias = 15;

std::uint64_t encode_exponent(int shared_exponent,
                              [[maybe_unused]] int exponent_bits) {
  if (shared_exponent == kZeroBlockExponent) return 0;
  const std::int64_t biased = shared_exponent + kExponentBias + 1;
  assert(biased > 0 && biased <= static_cast<std::int64_t>(
                                     low_mask(exponent_bits)));
  return static_cast<std::uint64_t>(biased);
}

int decode_exponent(std::uint64_t field) {
  if (field == 0) return kZeroBlockExponent;
  return static_cast<int>(field) - kExponentBias - 1;
}

}  // namespace

std::size_t PackedBlocks::bit_count() const { return bytes.size() * 8; }

double PackedBlocks::bits_per_element() const {
  if (element_count == 0) return 0.0;
  // Count the exact written bits, not byte padding.
  const double per_block_overhead = format.exponent_bits;
  const double per_elem =
      1.0 + (format.is_bbfp() ? 1.0 : 0.0) + format.mantissa_bits;
  const std::size_t blocks =
      (element_count + static_cast<std::size_t>(format.block_size) - 1) /
      static_cast<std::size_t>(format.block_size);
  return (per_elem * static_cast<double>(element_count) +
          per_block_overhead * static_cast<double>(blocks)) /
         static_cast<double>(element_count);
}

PackedBlocks pack_blocks(const std::vector<EncodedBlock>& blocks) {
  assert(!blocks.empty());
  PackedBlocks packed;
  packed.format = blocks.front().format;
  BitWriter writer(packed.bytes);
  for (const EncodedBlock& block : blocks) {
    assert(block.format.name() == packed.format.name());
    writer.put(encode_exponent(block.shared_exponent,
                               packed.format.exponent_bits),
               packed.format.exponent_bits);
    for (const BlockElement& e : block.elems) {
      writer.put(e.negative ? 1 : 0, 1);
      if (packed.format.is_bbfp()) writer.put(e.flag ? 1 : 0, 1);
      writer.put(e.mantissa, packed.format.mantissa_bits);
      ++packed.element_count;
    }
  }
  return packed;
}

std::vector<EncodedBlock> unpack_blocks(const PackedBlocks& packed) {
  std::vector<EncodedBlock> blocks;
  BitReader reader(packed.bytes);
  std::size_t remaining = packed.element_count;
  while (remaining > 0) {
    const std::size_t len = std::min(
        remaining, static_cast<std::size_t>(packed.format.block_size));
    EncodedBlock block;
    block.format = packed.format;
    block.shared_exponent = decode_exponent(
        reader.get(packed.format.exponent_bits));
    block.elems.resize(len);
    for (BlockElement& e : block.elems) {
      e.negative = reader.get(1) != 0;
      if (packed.format.is_bbfp()) e.flag = reader.get(1) != 0;
      e.mantissa = static_cast<std::uint32_t>(
          reader.get(packed.format.mantissa_bits));
    }
    blocks.push_back(std::move(block));
    remaining -= len;
  }
  return blocks;
}

PackedBlocks pack_values(std::span<const double> values,
                         const BlockFormat& fmt) {
  std::vector<EncodedBlock> blocks;
  const std::size_t bs = static_cast<std::size_t>(fmt.block_size);
  for (std::size_t start = 0; start < values.size(); start += bs) {
    const std::size_t len = std::min(bs, values.size() - start);
    blocks.push_back(encode_block(values.subspan(start, len), fmt));
  }
  return pack_blocks(blocks);
}

std::vector<double> unpack_values(const PackedBlocks& packed) {
  std::vector<double> out;
  out.reserve(packed.element_count);
  for (const EncodedBlock& block : unpack_blocks(packed))
    for (std::size_t i = 0; i < block.elems.size(); ++i)
      out.push_back(block.decode(i));
  return out;
}

}  // namespace bbal::quant
