// Quantisation error analysis (Section III.B, Eq. 8).
//
// The paper's key analytical point: with round-to-nearest, block floating
// point error variance is
// sigma^2 = 2^-2Lm / 12 * sum_i p(gamma_i) 2^(2 gamma_i)
// — entirely driven by the PMF of the shared exponent. BBFP lowers the
// selected exponent by (m - o), shifting that PMF down and shrinking the
// variance for everything that stays in the low group.
#pragma once

#include <map>
#include <span>

#include "quant/format.hpp"

namespace bbal::quant {

/// Analytical + empirical error report for one data set under one format.
struct ErrorReport {
  /// Eq. (8): variance predicted from the shared-exponent PMF alone
  /// (all elements assumed to quantise at the low-group step).
  double predicted_variance = 0.0;
  /// Refined prediction: accounts for the measured fraction of flagged
  /// elements quantising at the coarser high-group step.
  double predicted_variance_flag_aware = 0.0;
  /// Measured mean squared error of the encode/decode round trip.
  double empirical_mse = 0.0;
  /// Fraction of elements carrying flag = 1 (BBFP only).
  double flag_fraction = 0.0;
  /// PMF of the selected shared exponent across blocks.
  std::map<int, double> shared_exponent_pmf;
};

/// Quantise `data` block-by-block under `fmt` and report the error model.
[[nodiscard]] ErrorReport analyse_error(std::span<const double> data,
                                        const BlockFormat& fmt);

/// Just the empirical MSE (cheaper when the PMF is not needed).
[[nodiscard]] double empirical_mse(std::span<const double> data,
                                   const BlockFormat& fmt);

}  // namespace bbal::quant
