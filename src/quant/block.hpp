// Encoded block representation and encode/decode entry points.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "quant/format.hpp"

namespace bbal::quant {

/// One encoded element: sign, high/low-group flag (BBFP), m-bit mantissa.
struct BlockElement {
  bool negative = false;
  bool flag = false;
  std::uint32_t mantissa = 0;
};

/// A block of values sharing one exponent, plus enough metadata to decode.
struct EncodedBlock {
  BlockFormat format;
  int shared_exponent = kZeroBlockExponent;  ///< E_s, unbiased
  std::vector<BlockElement> elems;

  /// Quantisation step of the low (flag = 0) group: 2^(E_s - m + 1).
  [[nodiscard]] double step_low() const;
  /// Step of the high (flag = 1) group: step_low * 2^(m - o).
  [[nodiscard]] double step_high() const;

  /// Decode element `i` back to a real value.
  [[nodiscard]] double decode(std::size_t i) const;
  /// Decode the whole block. Errors when `out.size() != elems.size()`
  /// instead of trusting the caller.
  [[nodiscard]] Status decode_all(std::span<double> out) const;
  [[nodiscard]] std::vector<double> decode_all() const;

  /// Number of flagged (high-group) elements — bit-level sparsity metric.
  [[nodiscard]] std::size_t flag_count() const;
};

/// Encode `values` (any length >= 1) into one block of `fmt`.
/// The block's shared exponent follows fmt.strategy_delta (Eq. 9).
[[nodiscard]] EncodedBlock encode_block(std::span<const double> values,
                                        const BlockFormat& fmt);

/// Round-trip convenience: encode in consecutive blocks of fmt.block_size
/// (last block may be short) and decode back. `out` aliases allowed.
void quantise(std::span<const double> values, const BlockFormat& fmt,
              std::span<double> out);
[[nodiscard]] std::vector<double> quantise(std::span<const double> values,
                                           const BlockFormat& fmt);

/// float overloads used by the LLM fake-quant executor.
void quantise(std::span<const float> values, const BlockFormat& fmt,
              std::span<float> out);

}  // namespace bbal::quant
