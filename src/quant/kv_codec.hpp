// quant::KvFormat / quant::KvPageCodec — byte-level storage formats for
// KV-cache rows (serve::PagedKVPool pages).
//
// The paper quantises weights and activations into BBFP but leaves the KV
// cache in FP32; PR 4/6 showed kv_bytes_peak — not weights — is what caps
// serving concurrency. The codec applies the repo's existing block
// machinery (quant::encode_block, the same numerics every matmul backend
// uses) to KV rows, so a pool page stores packed bytes instead of floats:
//
//   FP32        raw little-endian floats (the identity codec; byte-exact
//               round trip, keeps quantised-KV serving opt-in)
//   INT8        per-group symmetric scale: 4-byte float scale = max|x|/127
//               followed by one int8 per element
//   BFP<m>      per-group 2-byte shared exponent (int16) followed by
//               MSB-first packed sign+mantissa fields, byte-padded
//   BBFP(<m>,<o>) as BFP plus the paper's per-element high/low flag bit
//
// A "group" is BlockFormat::block_size consecutive elements of one K or V
// row (32, the paper's choice; the last group of a row may be short).
// Rows never share groups, so every row encodes and decodes independently
// — which is what lets copy-on-write and prefix sharing operate on opaque
// bytes, and keeps decode deterministic regardless of batch composition.
//
// Numerics contract: decode(encode(row)) for the block formats equals
// quant::quantise(row, fmt) element for element — the codec adds a byte
// layout, never a second rounding rule.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/result.hpp"
#include "quant/format.hpp"

namespace bbal::quant {

/// One KV-cache storage format. Parse accepts the matmul-strategy
/// vocabulary restricted to the storable families: FP32, INT8, BFP<m>,
/// BBFP(<m>,<o>) (case-insensitive, same grammar as StrategySpec::parse).
struct KvFormat {
  enum class Kind { kFp32, kInt8, kBlock };

  Kind kind = Kind::kFp32;
  /// Valid when kind == kBlock; drives encode_block / decode.
  BlockFormat block{};

  [[nodiscard]] static KvFormat fp32() { return KvFormat{}; }
  [[nodiscard]] static KvFormat int8() {
    KvFormat f;
    f.kind = Kind::kInt8;
    return f;
  }
  [[nodiscard]] static KvFormat block_format(const BlockFormat& fmt) {
    KvFormat f;
    f.kind = Kind::kBlock;
    f.block = fmt;
    return f;
  }

  /// Parse a KV-format name. Errors name the offending input and list the
  /// accepted families — never an abort.
  [[nodiscard]] static Result<KvFormat> parse(std::string_view text);

  /// Canonical name ("FP32", "INT8", "BFP4", "BBFP(4,2)"); parse(name())
  /// round-trips.
  [[nodiscard]] std::string name() const;

  bool operator==(const KvFormat& other) const {
    if (kind != other.kind) return false;
    if (kind != Kind::kBlock) return true;
    return block.kind == other.block.kind &&
           block.mantissa_bits == other.block.mantissa_bits &&
           block.overlap_bits == other.block.overlap_bits &&
           block.block_size == other.block.block_size;
  }
};

/// Stateless row codec for one (format, row length) pair. A "row" is one
/// K or V vector of d_model floats; the codec fixes its packed size so
/// page payloads are flat arrays of encoded_row_bytes()-sized rows.
class KvPageCodec {
 public:
  KvPageCodec() : KvPageCodec(KvFormat::fp32(), 1) {}
  KvPageCodec(const KvFormat& format, int row_elems);

  [[nodiscard]] const KvFormat& format() const { return format_; }
  [[nodiscard]] int row_elems() const { return row_elems_; }
  /// Packed bytes one encoded row occupies (constant per codec).
  [[nodiscard]] std::size_t encoded_row_bytes() const { return row_bytes_; }

  /// Encode `row` (size row_elems) into `out` (size encoded_row_bytes).
  void encode_row(std::span<const float> row, std::span<std::uint8_t> out)
      const;
  /// Decode an encoded row back into floats. For FP32 this reproduces the
  /// input bytes exactly; block formats reproduce quant::quantise.
  void decode_row(std::span<const std::uint8_t> in,
                  std::span<float> out) const;

 private:
  /// Elements per shared-exponent group (last group of a row may be short).
  [[nodiscard]] int group_size() const;
  /// Packed bytes of a group of `n` elements.
  [[nodiscard]] std::size_t group_bytes(int n) const;

  KvFormat format_;
  int row_elems_ = 0;
  std::size_t row_bytes_ = 0;
};

}  // namespace bbal::quant
