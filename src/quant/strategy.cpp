#include "quant/strategy.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <vector>

namespace bbal::quant {
namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

/// Parse a non-negative integer covering the whole of `s`.
bool parse_int(std::string_view s, int& out) {
  if (s.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size() && out >= 0;
}

/// Split "NAME(<a>)" or "NAME(<a>,<b>)"; `args` empty when no parens.
Status split_args(std::string_view text, std::string_view& head,
                  std::vector<int>& args) {
  const auto open = text.find('(');
  if (open == std::string_view::npos) {
    head = text;
    return Status::ok();
  }
  if (text.back() != ')')
    return Status::error("missing ')' in \"" + std::string(text) + "\"");
  head = text.substr(0, open);
  std::string_view inner = text.substr(open + 1, text.size() - open - 2);
  while (!inner.empty()) {
    const auto comma = inner.find(',');
    const std::string_view tok = inner.substr(0, comma);
    int v = 0;
    if (!parse_int(tok, v))
      return Status::error("bad integer \"" + std::string(tok) + "\" in \"" +
                           std::string(text) + "\"");
    args.push_back(v);
    if (comma == std::string_view::npos) break;
    inner = inner.substr(comma + 1);
  }
  return Status::ok();
}

Status check_arity(std::string_view text, const std::vector<int>& args,
                   std::size_t lo, std::size_t hi) {
  if (args.size() >= lo && args.size() <= hi) return Status::ok();
  return Status::error("wrong number of parameters in \"" +
                       std::string(text) + "\"");
}

std::string scope_suffix(NlScope scope) {
  switch (scope) {
    case NlScope::kSoftmaxOnly:
      return "/softmax";
    case NlScope::kSiluOnly:
      return "/silu";
    case NlScope::kBoth:
      break;
  }
  return "";
}

}  // namespace

Result<StrategySpec> StrategySpec::parse(std::string_view text) {
  using R = Result<StrategySpec>;
  if (text.empty()) return R::error("empty strategy name");

  const std::string_view original = text;
  StrategySpec spec;

  // Optional nonlinear routing suffix.
  if (const auto slash = text.rfind('/'); slash != std::string_view::npos) {
    const std::string tail = lower(text.substr(slash + 1));
    if (tail == "softmax")
      spec.nl_scope = NlScope::kSoftmaxOnly;
    else if (tail == "silu")
      spec.nl_scope = NlScope::kSiluOnly;
    else
      return R::error("unknown routing suffix \"/" + tail + "\" in \"" +
                      std::string(text) + "\"");
    text = text.substr(0, slash);
  }

  std::string_view head;
  std::vector<int> args;
  if (const Status s = split_args(text, head, args); !s.is_ok())
    return R::error(s.message());
  const std::string key = lower(head);

  // The routing suffix only makes sense on nonlinear strategies.
  auto check_scope = [&](const StrategySpec& s) -> Status {
    if (s.nl_scope != NlScope::kBoth && !s.is_nonlinear_strategy())
      return Status::error("routing suffix not allowed on matmul strategy \"" +
                           std::string(original) + "\"");
    return Status::ok();
  };

  auto block_spec = [&](StrategyFamily family, int m, int o) -> R {
    spec.family = family;
    spec.mantissa_bits = m;
    spec.overlap_bits = o;
    // Validate through the checked BlockFormat constructor so parse errors
    // and format errors share one vocabulary.
    const bool bbfp_like = family == StrategyFamily::kBbfp ||
                           family == StrategyFamily::kLutBbfp;
    const Result<BlockFormat> fmt =
        bbfp_like ? BlockFormat::make_bbfp(m, o, spec.block_size)
                  : BlockFormat::make_bfp(m, spec.block_size);
    if (!fmt.is_ok())
      return R::error("\"" + std::string(text) + "\": " + fmt.message());
    if (const Status s = check_scope(spec); !s.is_ok())
      return R::error(s.message());
    return spec;
  };

  if (key == "fp32") {
    spec.family = StrategyFamily::kFp32;
  } else if (key == "fp16") {
    spec.family = StrategyFamily::kFp16;
  } else if (key == "oltron") {
    spec.family = StrategyFamily::kOltron;
  } else if (key == "olive" || key == "oliver") {
    spec.family = StrategyFamily::kOlive;
  } else if (key == "omniquant") {
    spec.family = StrategyFamily::kOmniquant;
  } else if (key == "pseudosoftmax") {
    if (const Status s = check_arity(text, args, 0, 1); !s.is_ok())
      return R::error(s.message());
    spec.family = StrategyFamily::kPseudoSoftmax;
    spec.bits = args.empty() ? 3 : args[0];
  } else if (key == "base2highprec" || key == "base2") {
    if (const Status s = check_arity(text, args, 0, 1); !s.is_ok())
      return R::error(s.message());
    spec.family = StrategyFamily::kBase2Softmax;
    spec.bits = args.empty() ? 27 : args[0];
  } else if (key == "bbfp-lut") {
    if (const Status s = check_arity(text, args, 0, 2); !s.is_ok())
      return R::error(s.message());
    if (args.size() == 1)
      return R::error("BBFP-LUT needs (m,o), got one parameter in \"" +
                      std::string(text) + "\"");
    return block_spec(StrategyFamily::kLutBbfp, args.empty() ? 10 : args[0],
                      args.empty() ? 5 : args[1]);
  } else if (key == "bfp-lut") {
    if (const Status s = check_arity(text, args, 0, 1); !s.is_ok())
      return R::error(s.message());
    return block_spec(StrategyFamily::kLutBfp, args.empty() ? 10 : args[0],
                      0);
  } else if (key == "bbfp") {
    if (const Status s = check_arity(text, args, 2, 2); !s.is_ok())
      return R::error(s.message());
    return block_spec(StrategyFamily::kBbfp, args[0], args[1]);
  } else if (key.rfind("int", 0) == 0 && key.size() > 3) {
    int bits = 0;
    if (!parse_int(std::string_view(key).substr(3), bits) || bits < 2 ||
        bits > 16)
      return R::error("bad INT bit width in \"" + std::string(text) + "\"");
    spec.family = StrategyFamily::kInt;
    spec.bits = bits;
  } else if (key.rfind("bfp", 0) == 0 && key.size() > 3) {
    int m = 0;
    if (!parse_int(std::string_view(key).substr(3), m))
      return R::error("bad BFP mantissa width in \"" + std::string(text) +
                      "\"");
    return block_spec(StrategyFamily::kBfp, m, 0);
  } else {
    return R::error("unknown strategy \"" + std::string(text) + "\"");
  }

  if (!args.empty() &&
      (spec.family == StrategyFamily::kFp32 ||
       spec.family == StrategyFamily::kFp16 ||
       spec.family == StrategyFamily::kInt ||
       spec.family == StrategyFamily::kOltron ||
       spec.family == StrategyFamily::kOlive ||
       spec.family == StrategyFamily::kOmniquant))
    return R::error("\"" + std::string(text) +
                    "\" does not take parameters");
  if (const Status s = check_scope(spec); !s.is_ok())
    return R::error(s.message());
  return spec;
}

std::string StrategySpec::to_string() const {
  switch (family) {
    case StrategyFamily::kFp32:
      return "FP32";
    case StrategyFamily::kFp16:
      return "FP16";
    case StrategyFamily::kInt:
      return "INT" + std::to_string(bits);
    case StrategyFamily::kBfp:
      return "BFP" + std::to_string(mantissa_bits);
    case StrategyFamily::kBbfp:
      return "BBFP(" + std::to_string(mantissa_bits) + "," +
             std::to_string(overlap_bits) + ")";
    case StrategyFamily::kOltron:
      return "Oltron";
    case StrategyFamily::kOlive:
      return "Olive";
    case StrategyFamily::kOmniquant:
      return "OmniQuant";
    case StrategyFamily::kLutBbfp:
      return "BBFP-LUT(" + std::to_string(mantissa_bits) + "," +
             std::to_string(overlap_bits) + ")" + scope_suffix(nl_scope);
    case StrategyFamily::kLutBfp:
      return "BFP-LUT(" + std::to_string(mantissa_bits) + ")" +
             scope_suffix(nl_scope);
    case StrategyFamily::kPseudoSoftmax:
      return "PseudoSoftmax(" + std::to_string(bits) + ")" +
             scope_suffix(nl_scope);
    case StrategyFamily::kBase2Softmax:
      return "Base2HighPrec(" + std::to_string(bits) + ")" +
             scope_suffix(nl_scope);
  }
  return "?";
}

bool StrategySpec::is_block_format() const {
  return family == StrategyFamily::kBfp || family == StrategyFamily::kBbfp ||
         family == StrategyFamily::kLutBfp ||
         family == StrategyFamily::kLutBbfp;
}

Result<BlockFormat> StrategySpec::block_format() const {
  if (!is_block_format())
    return Result<BlockFormat>::error("strategy " + to_string() +
                                      " has no block format");
  if (family == StrategyFamily::kBbfp || family == StrategyFamily::kLutBbfp)
    return BlockFormat::make_bbfp(mantissa_bits, overlap_bits, block_size);
  return BlockFormat::make_bfp(mantissa_bits, block_size);
}

bool StrategySpec::is_matmul_strategy() const {
  switch (family) {
    case StrategyFamily::kFp32:
    case StrategyFamily::kFp16:
    case StrategyFamily::kInt:
    case StrategyFamily::kBfp:
    case StrategyFamily::kBbfp:
    case StrategyFamily::kOltron:
    case StrategyFamily::kOlive:
    case StrategyFamily::kOmniquant:
      return true;
    default:
      return false;
  }
}

bool StrategySpec::is_nonlinear_strategy() const {
  switch (family) {
    case StrategyFamily::kFp32:
    case StrategyFamily::kLutBfp:
    case StrategyFamily::kLutBbfp:
    case StrategyFamily::kPseudoSoftmax:
    case StrategyFamily::kBase2Softmax:
      return true;
    default:
      return false;
  }
}

StrategySpec StrategySpec::fp32() { return StrategySpec{}; }

StrategySpec StrategySpec::bfp(int m) {
  StrategySpec s;
  s.family = StrategyFamily::kBfp;
  s.mantissa_bits = m;
  return s;
}

StrategySpec StrategySpec::bbfp(int m, int o) {
  StrategySpec s;
  s.family = StrategyFamily::kBbfp;
  s.mantissa_bits = m;
  s.overlap_bits = o;
  return s;
}

StrategySpec StrategySpec::from_format(const BlockFormat& fmt) {
  StrategySpec s;
  s.family = fmt.is_bbfp() ? StrategyFamily::kBbfp : StrategyFamily::kBfp;
  s.mantissa_bits = fmt.mantissa_bits;
  s.overlap_bits = fmt.overlap_bits;
  s.block_size = fmt.block_size;
  return s;
}

StrategySpec spec_of(std::string_view text) {
  return StrategySpec::parse(text).expect("spec_of");
}

}  // namespace bbal::quant
