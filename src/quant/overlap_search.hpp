// Algorithm 1: selection of the overlap bit width.
//
// score[o] = w * Overhead_norm[o] + (1 - w) * PPL_norm[o], minimised over
// o in [0, m). The PPL and overhead oracles are callbacks so the same search
// runs against the real LLM harness (bench_fig4) and against synthetic
// oracles in unit tests.
#pragma once

#include <functional>
#include <vector>

namespace bbal::quant {

struct OverlapSearchResult {
  int best_overlap = 0;
  std::vector<double> ppl;        ///< raw PPL per overlap width
  std::vector<double> overhead;   ///< raw hardware overhead per overlap width
  std::vector<double> score;      ///< normalised weighted score per width
};

/// Algorithm 1. `overhead_weight` is the paper's w in [0, 1]; m >= 2.
[[nodiscard]] OverlapSearchResult select_overlap_width(
    int mantissa_bits, double overhead_weight,
    const std::function<double(int)>& ppl_of_overlap,
    const std::function<double(int)>& overhead_of_overlap);

}  // namespace bbal::quant
