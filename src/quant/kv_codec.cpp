#include "quant/kv_codec.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <vector>

#include "quant/block.hpp"
#include "quant/strategy.hpp"

namespace bbal::quant {
namespace {

/// MSB-first bit packer over a byte span. Groups are byte-padded, so one
/// writer/reader per group keeps rows independently addressable.
class BitWriter {
 public:
  explicit BitWriter(std::span<std::uint8_t> out) : out_(out) {}

  void put(std::uint32_t value, int bits) {
    for (int b = bits - 1; b >= 0; --b) {
      if ((value >> b) & 1u)
        out_[pos_ >> 3] |= static_cast<std::uint8_t>(0x80u >> (pos_ & 7));
      ++pos_;
    }
  }

 private:
  std::span<std::uint8_t> out_;
  std::size_t pos_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> in) : in_(in) {}

  [[nodiscard]] std::uint32_t get(int bits) {
    std::uint32_t value = 0;
    for (int b = 0; b < bits; ++b) {
      value = (value << 1) |
              ((in_[pos_ >> 3] >> (7 - (pos_ & 7))) & 1u);
      ++pos_;
    }
    return value;
  }

 private:
  std::span<const std::uint8_t> in_;
  std::size_t pos_ = 0;
};

constexpr int kInt8GroupSize = 32;  ///< matches the block families' grain
constexpr float kInt8Max = 127.0f;

}  // namespace

// --- KvFormat ----------------------------------------------------------------

Result<KvFormat> KvFormat::parse(std::string_view text) {
  const auto fail = [&text]() {
    return Result<KvFormat>::error(
        "KV format \"" + std::string(text) +
        "\" not storable: expected FP32, INT8, BFP<m> or BBFP(<m>,<o>)");
  };
  auto spec = StrategySpec::parse(text);
  if (!spec.is_ok()) return fail();
  switch (spec.value().family) {
    case StrategyFamily::kFp32:
      return KvFormat::fp32();
    case StrategyFamily::kInt:
      // Page bytes are the point of the knob; only the byte-aligned width
      // has a packed layout here.
      if (spec.value().bits != 8) return fail();
      return KvFormat::int8();
    case StrategyFamily::kBfp:
    case StrategyFamily::kBbfp: {
      auto fmt = spec.value().block_format();
      if (!fmt.is_ok()) return fail();
      return KvFormat::block_format(fmt.value());
    }
    default:
      return fail();
  }
}

std::string KvFormat::name() const {
  switch (kind) {
    case Kind::kFp32:
      return "FP32";
    case Kind::kInt8:
      return "INT8";
    case Kind::kBlock:
      return block.name();
  }
  return "FP32";
}

// --- KvPageCodec -------------------------------------------------------------

KvPageCodec::KvPageCodec(const KvFormat& format, int row_elems)
    : format_(format), row_elems_(row_elems) {
  assert(row_elems_ > 0);
  if (format_.kind == KvFormat::Kind::kBlock)
    format_.block.validate().expect("KvPageCodec");
  std::size_t bytes = 0;
  const int gs = group_size();
  for (int start = 0; start < row_elems_; start += gs)
    bytes += group_bytes(std::min(gs, row_elems_ - start));
  row_bytes_ = bytes;
}

int KvPageCodec::group_size() const {
  return format_.kind == KvFormat::Kind::kBlock ? format_.block.block_size
                                                : kInt8GroupSize;
}

std::size_t KvPageCodec::group_bytes(int n) const {
  switch (format_.kind) {
    case KvFormat::Kind::kFp32:
      return static_cast<std::size_t>(n) * sizeof(float);
    case KvFormat::Kind::kInt8:
      // 4-byte scale + one int8 per element.
      return sizeof(float) + static_cast<std::size_t>(n);
    case KvFormat::Kind::kBlock: {
      // 2-byte shared exponent + packed sign/flag/mantissa fields.
      const int elem_bits =
          1 + (format_.block.is_bbfp() ? 1 : 0) + format_.block.mantissa_bits;
      const std::size_t bits =
          static_cast<std::size_t>(n) * static_cast<std::size_t>(elem_bits);
      return sizeof(std::int16_t) + (bits + 7) / 8;
    }
  }
  return 0;
}

void KvPageCodec::encode_row(std::span<const float> row,
                             std::span<std::uint8_t> out) const {
  assert(static_cast<int>(row.size()) == row_elems_);
  assert(out.size() == row_bytes_);
  if (format_.kind == KvFormat::Kind::kFp32) {
    std::memcpy(out.data(), row.data(), row.size() * sizeof(float));
    return;
  }
  const int gs = group_size();
  std::size_t off = 0;
  std::vector<double> buf(static_cast<std::size_t>(gs));
  for (int start = 0; start < row_elems_; start += gs) {
    const int n = std::min(gs, row_elems_ - start);
    const std::size_t gb = group_bytes(n);
    std::span<std::uint8_t> dst = out.subspan(off, gb);
    std::fill(dst.begin(), dst.end(), std::uint8_t{0});
    if (format_.kind == KvFormat::Kind::kInt8) {
      float max_abs = 0.0f;
      for (int i = 0; i < n; ++i) {
        const float v = row[static_cast<std::size_t>(start + i)];
        max_abs = std::max(max_abs, std::fabs(v));
      }
      const float scale = max_abs > 0.0f ? max_abs / kInt8Max : 0.0f;
      std::memcpy(dst.data(), &scale, sizeof(float));
      for (int i = 0; i < n; ++i) {
        double q = 0.0;
        if (scale > 0.0f)
          q = std::round(
              static_cast<double>(row[static_cast<std::size_t>(start + i)]) /
              static_cast<double>(scale));
        q = std::clamp(q, -127.0, 127.0);
        dst[sizeof(float) + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(static_cast<std::int8_t>(q));
      }
    } else {
      for (int i = 0; i < n; ++i)
        buf[static_cast<std::size_t>(i)] = static_cast<double>(
            row[static_cast<std::size_t>(start + i)]);
      const EncodedBlock block = encode_block(
          std::span<const double>(buf.data(), static_cast<std::size_t>(n)),
          format_.block);
      const std::int16_t es = static_cast<std::int16_t>(block.shared_exponent);
      std::memcpy(dst.data(), &es, sizeof(std::int16_t));
      BitWriter bits(dst.subspan(sizeof(std::int16_t)));
      for (int i = 0; i < n; ++i) {
        const BlockElement& e = block.elems[static_cast<std::size_t>(i)];
        bits.put(e.negative ? 1u : 0u, 1);
        if (format_.block.is_bbfp()) bits.put(e.flag ? 1u : 0u, 1);
        bits.put(e.mantissa, format_.block.mantissa_bits);
      }
    }
    off += gb;
  }
}

void KvPageCodec::decode_row(std::span<const std::uint8_t> in,
                             std::span<float> out) const {
  assert(in.size() == row_bytes_);
  assert(static_cast<int>(out.size()) == row_elems_);
  if (format_.kind == KvFormat::Kind::kFp32) {
    std::memcpy(out.data(), in.data(), out.size() * sizeof(float));
    return;
  }
  const int gs = group_size();
  std::size_t off = 0;
  for (int start = 0; start < row_elems_; start += gs) {
    const int n = std::min(gs, row_elems_ - start);
    const std::size_t gb = group_bytes(n);
    std::span<const std::uint8_t> src = in.subspan(off, gb);
    if (format_.kind == KvFormat::Kind::kInt8) {
      float scale = 0.0f;
      std::memcpy(&scale, src.data(), sizeof(float));
      for (int i = 0; i < n; ++i) {
        const std::int8_t q = static_cast<std::int8_t>(
            src[sizeof(float) + static_cast<std::size_t>(i)]);
        out[static_cast<std::size_t>(start + i)] =
            static_cast<float>(q) * scale;
      }
    } else {
      std::int16_t es = 0;
      std::memcpy(&es, src.data(), sizeof(std::int16_t));
      EncodedBlock block;
      block.format = format_.block;
      block.shared_exponent = es;
      block.elems.resize(static_cast<std::size_t>(n));
      BitReader bits(src.subspan(sizeof(std::int16_t)));
      for (int i = 0; i < n; ++i) {
        BlockElement& e = block.elems[static_cast<std::size_t>(i)];
        e.negative = bits.get(1) != 0;
        if (format_.block.is_bbfp()) e.flag = bits.get(1) != 0;
        e.mantissa = bits.get(format_.block.mantissa_bits);
      }
      for (int i = 0; i < n; ++i)
        out[static_cast<std::size_t>(start + i)] =
            static_cast<float>(block.decode(static_cast<std::size_t>(i)));
    }
    off += gb;
  }
}

}  // namespace bbal::quant
