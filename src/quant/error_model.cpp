#include "quant/error_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "quant/block.hpp"

namespace bbal::quant {

ErrorReport analyse_error(std::span<const double> data,
                          const BlockFormat& fmt) {
  assert(!data.empty());
  ErrorReport report;

  const std::size_t bs = static_cast<std::size_t>(fmt.block_size);
  std::size_t block_count = 0;
  std::size_t flag_total = 0;
  double mse_acc = 0.0;

  std::map<int, std::size_t> exp_counts;
  for (std::size_t start = 0; start < data.size(); start += bs) {
    const std::size_t len = std::min(bs, data.size() - start);
    const EncodedBlock block = encode_block(data.subspan(start, len), fmt);
    ++block_count;
    exp_counts[block.shared_exponent] += 1;
    flag_total += block.flag_count();
    for (std::size_t i = 0; i < len; ++i) {
      const double d = data[start + i] - block.decode(i);
      mse_acc += d * d;
    }
  }

  report.empirical_mse = mse_acc / static_cast<double>(data.size());
  report.flag_fraction =
      static_cast<double>(flag_total) / static_cast<double>(data.size());

  // Shared-exponent PMF and Eq. (8). The low-group step for shared exponent
  // E is 2^(E - m + 1); a uniform rounding error in [-step/2, step/2] has
  // variance step^2 / 12.
  double predicted = 0.0;
  double predicted_flag_aware = 0.0;
  const int m = fmt.mantissa_bits;
  const int d = fmt.shift_distance();
  for (const auto& [exp, count] : exp_counts) {
    const double p =
        static_cast<double>(count) / static_cast<double>(block_count);
    report.shared_exponent_pmf[exp] = p;
    const double step_low = std::ldexp(1.0, exp - m + 1);
    const double var_low = step_low * step_low / 12.0;
    predicted += p * var_low;
    const double step_high = std::ldexp(step_low, d);
    const double var_high = step_high * step_high / 12.0;
    predicted_flag_aware +=
        p * ((1.0 - report.flag_fraction) * var_low +
             report.flag_fraction * var_high);
  }
  report.predicted_variance = predicted;
  report.predicted_variance_flag_aware = predicted_flag_aware;
  return report;
}

double empirical_mse(std::span<const double> data, const BlockFormat& fmt) {
  assert(!data.empty());
  const std::vector<double> q = quantise(data, fmt);
  double acc = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double diff = data[i] - q[i];
    acc += diff * diff;
  }
  return acc / static_cast<double>(data.size());
}

}  // namespace bbal::quant
