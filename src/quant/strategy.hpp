// Structured strategy descriptions: every quantisation / nonlinear-unit
// strategy the paper names ("FP32", "INT8", "BFP4", "BBFP(4,2)", "Oltron",
// "BBFP-LUT(10,5)", ...) parses into one StrategySpec, which keys the
// unified backend registry (bbal/registry.hpp) and the hardware cost
// models. parse() returns an error-carrying Result instead of asserting;
// to_string() round-trips: parse(s.to_string()) == s for any valid spec.
#pragma once

#include <string>
#include <string_view>

#include "common/result.hpp"
#include "quant/format.hpp"

namespace bbal::quant {

/// Which algorithm family a strategy belongs to. Block families (kBfp,
/// kBbfp, kLutBfp, kLutBbfp) additionally carry format parameters.
enum class StrategyFamily {
  kFp32,           ///< full-precision reference
  kFp16,           ///< half precision (numerically modelled as FP32)
  kInt,            ///< symmetric INT-k fake-quant
  kBfp,            ///< classic block floating point, BFP-m
  kBbfp,           ///< the paper's bidirectional BFP(m, o)
  kOltron,         ///< outlier-budget baseline
  kOlive,          ///< outlier-victim-pair baseline
  kOmniquant,      ///< clip-search baseline
  kLutBbfp,        ///< BBFP LUT nonlinear unit (Section IV.B)
  kLutBfp,         ///< BFP LUT nonlinear unit (Table IV ablation)
  kPseudoSoftmax,  ///< [32] power-of-two pseudo-softmax
  kBase2Softmax,   ///< [33] base-2 high-precision softmax
};

/// For nonlinear strategies: which of the two transformer nonlinearities
/// route through the unit (Table IV's "Softmax Only" / "SILU Only" rows).
enum class NlScope { kBoth, kSoftmaxOnly, kSiluOnly };

struct StrategySpec {
  StrategyFamily family = StrategyFamily::kFp32;
  /// INT: quantiser bits. PseudoSoftmax: fraction bits. Base2: fixed bits.
  int bits = 0;
  /// Block families: stored mantissa width m.
  int mantissa_bits = 0;
  /// kBbfp / kLutBbfp: window overlap o.
  int overlap_bits = 0;
  /// Elements per shared exponent (block families).
  int block_size = 32;
  /// Nonlinear strategies only.
  NlScope nl_scope = NlScope::kBoth;

  bool operator==(const StrategySpec&) const = default;

  /// Parse any accepted strategy name. Never asserts or throws: unknown or
  /// malformed names yield an error describing what went wrong.
  ///
  /// Grammar (case of the family keyword is accepted loosely):
  ///   FP32 | FP16 | Oltron | Olive | OmniQuant
  ///   INT<bits>
  ///   BFP<m>
  ///   BBFP(<m>,<o>)
  ///   BBFP-LUT | BBFP-LUT(<m>,<o>)     default (10,5)
  ///   BFP-LUT  | BFP-LUT(<m>)          default 10
  ///   PseudoSoftmax | PseudoSoftmax(<fraction_bits>)   default 3
  ///   Base2HighPrec | Base2HighPrec(<fixed_bits>)      default 27
  /// Nonlinear strategies accept a routing suffix: "/softmax" or "/silu".
  [[nodiscard]] static Result<StrategySpec> parse(std::string_view text);

  /// Canonical name; parse(to_string()) reproduces the spec exactly.
  [[nodiscard]] std::string to_string() const;

  /// True for families parameterised by a BlockFormat.
  [[nodiscard]] bool is_block_format() const;
  /// The BlockFormat of a block family (error otherwise).
  [[nodiscard]] Result<BlockFormat> block_format() const;

  /// True for strategies usable as a matmul (linear-layer) backend.
  [[nodiscard]] bool is_matmul_strategy() const;
  /// True for strategies usable as a nonlinear backend.
  [[nodiscard]] bool is_nonlinear_strategy() const;

  // Convenience constructors for the common programmatic cases.
  [[nodiscard]] static StrategySpec fp32();
  [[nodiscard]] static StrategySpec bfp(int m);
  [[nodiscard]] static StrategySpec bbfp(int m, int o);
  [[nodiscard]] static StrategySpec from_format(const BlockFormat& fmt);
};

/// Shorthand: parse-or-abort for literal strategy names in examples and
/// benches where the name is a compile-time constant.
[[nodiscard]] StrategySpec spec_of(std::string_view text);

}  // namespace bbal::quant
