#include "llm/tensor.hpp"

#include <cassert>
#include <cmath>

#include "common/threadpool.hpp"

namespace bbal::llm {

namespace {

// Below this many MACs a GEMM runs inline: the per-loop setup (shared
// state + helper enqueue) would cost more than the row work it distributes.
constexpr std::int64_t kParallelMinMacs = 1 << 15;

}  // namespace

void matmul(const Matrix& a, const Matrix& b, Matrix& c) {
  assert(a.cols() == b.rows());
  assert(&c != &a && &c != &b);
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.cols();
  c.resize(m, n);
  // Output rows are independent, so the tile is a row chunk; every row is
  // computed by exactly the serial code below regardless of thread count,
  // keeping results bit-identical (the determinism contract of the
  // parallel engine — see common/threadpool.hpp). The accumulator is
  // per-executor scratch that persists across calls, so a steady-state
  // decode loop pays no allocation here.
  const auto row_chunk = [&](std::int64_t i0, std::int64_t i1) {
    thread_local std::vector<double> acc;
    acc.resize(static_cast<std::size_t>(n));
    for (std::int64_t i = i0; i < i1; ++i) {
      std::fill(acc.begin(), acc.end(), 0.0);
      const std::span<const float> arow = a.row(static_cast<int>(i));
      for (int kk = 0; kk < k; ++kk) {
        const double av = arow[static_cast<std::size_t>(kk)];
        if (av == 0.0) continue;
        const std::span<const float> brow = b.row(kk);
        for (int j = 0; j < n; ++j)
          acc[static_cast<std::size_t>(j)] +=
              av * brow[static_cast<std::size_t>(j)];
      }
      const std::span<float> crow = c.row(static_cast<int>(i));
      for (int j = 0; j < n; ++j)
        crow[static_cast<std::size_t>(j)] =
            static_cast<float>(acc[static_cast<std::size_t>(j)]);
    }
  };
  const std::int64_t macs =
      static_cast<std::int64_t>(m) * k * n;
  if (macs < kParallelMinMacs || m == 1) {
    row_chunk(0, m);
  } else {
    common::ThreadPool::global().parallel_for_chunks(0, m, /*grain=*/0,
                                                     row_chunk);
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul(a, b, c);
  return c;
}

void matvec(std::span<const float> row_vec, const Matrix& b,
            std::span<float> out) {
  assert(static_cast<int>(row_vec.size()) == b.rows());
  assert(static_cast<int>(out.size()) == b.cols());
  const int k = b.rows();
  const int n = b.cols();
  std::vector<double> acc(static_cast<std::size_t>(n), 0.0);
  for (int kk = 0; kk < k; ++kk) {
    const double av = row_vec[static_cast<std::size_t>(kk)];
    if (av == 0.0) continue;
    const std::span<const float> brow = b.row(kk);
    for (int j = 0; j < n; ++j)
      acc[static_cast<std::size_t>(j)] +=
          av * brow[static_cast<std::size_t>(j)];
  }
  for (int j = 0; j < n; ++j)
    out[static_cast<std::size_t>(j)] =
        static_cast<float>(acc[static_cast<std::size_t>(j)]);
}

void rmsnorm_row(std::span<float> x, std::span<const float> gain, float eps) {
  assert(x.size() == gain.size());
  double sq = 0.0;
  for (const float v : x) sq += static_cast<double>(v) * v;
  const double rms = std::sqrt(sq / static_cast<double>(x.size()) + eps);
  const auto inv = static_cast<float>(1.0 / rms);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = x[i] * inv * gain[i];
}

void rmsnorm_rows(Matrix& x, std::span<const float> gain, float eps) {
  if (static_cast<std::int64_t>(x.size()) < kParallelMinMacs) {
    for (int r = 0; r < x.rows(); ++r) rmsnorm_row(x.row(r), gain, eps);
    return;
  }
  common::ThreadPool::global().parallel_for(0, x.rows(), [&](std::int64_t r) {
    rmsnorm_row(x.row(static_cast<int>(r)), gain, eps);
  });
}

void softmax_reference(std::span<float> xs) {
  if (xs.empty()) return;
  float mx = xs[0];
  for (const float v : xs) mx = std::max(mx, v);
  double sum = 0.0;
  for (float& v : xs) {
    v = std::exp(v - mx);
    sum += v;
  }
  const auto inv = static_cast<float>(1.0 / sum);
  for (float& v : xs) v *= inv;
}

float silu_reference(float x) {
  return x / (1.0f + std::exp(-x));
}

void add_inplace(Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  const std::span<const float> bs = b.flat();
  const std::span<float> as = a.flat();
  for (std::size_t i = 0; i < as.size(); ++i) as[i] += bs[i];
}

}  // namespace bbal::llm
