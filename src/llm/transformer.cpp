#include "llm/transformer.hpp"

#include <cassert>
#include <cmath>

#include "common/threadpool.hpp"

namespace bbal::llm {

Transformer::Transformer(const ModelConfig& config,
                         const TransformerWeights& weights,
                         MatmulBackend& matmul_backend,
                         NonlinearBackend& nl_backend)
    : config_(config),
      weights_(weights),
      matmul_(matmul_backend),
      nonlinear_(nl_backend) {
  assert(static_cast<int>(weights.layers.size()) == config.n_layers);
  for (int l = 0; l < config.n_layers; ++l) {
    const LayerWeights& lw = weights.layers[static_cast<std::size_t>(l)];
    const std::string p = "layer" + std::to_string(l) + ".";
    LayerHandles h{};
    h.wq = matmul_.prepare_weights(lw.wq, p + "wq");
    h.wk = matmul_.prepare_weights(lw.wk, p + "wk");
    h.wv = matmul_.prepare_weights(lw.wv, p + "wv");
    h.wo = matmul_.prepare_weights(lw.wo, p + "wo");
    h.w_gate = matmul_.prepare_weights(lw.w_gate, p + "gate");
    h.w_up = matmul_.prepare_weights(lw.w_up, p + "up");
    h.w_down = matmul_.prepare_weights(lw.w_down, p + "down");
    handles_.push_back(h);
  }
  lm_head_handle_ = matmul_.prepare_weights(weights.lm_head, "lm_head");
}

void Transformer::attention(Matrix& x, int layer) {
  const int t = x.rows();
  const int d = config_.d_model;
  const int heads = config_.n_heads;
  const int dh = config_.head_dim();
  const LayerWeights& lw = weights_.layers[static_cast<std::size_t>(layer)];
  const LayerHandles& h = handles_[static_cast<std::size_t>(layer)];

  Matrix normed = x;
  rmsnorm_rows(normed, lw.attn_norm_gain);

  Matrix q, k, v;
  matmul_.matmul(normed, h.wq, q);
  matmul_.matmul(normed, h.wk, k);
  matmul_.matmul(normed, h.wv, v);

  const float inv_sqrt =
      static_cast<float>(config_.attention_score_scale) /
      std::sqrt(static_cast<float>(dh));
  Matrix context(t, d);

  // Per-head attention. Scores/context products are activation-activation
  // GEMMs and go through the dynamic (both-sides-quantised) path.
  //
  // The head loop itself stays serial: backend calls must arrive in a fixed
  // order because decorators (Session's workload capture, traffic counters)
  // record them, and the captured sequence feeds the accelerator replay.
  // Parallelism lives *inside* each matmul (tiled over output rows), which
  // preserves the call order while using every thread.
  Matrix qh(t, dh), kh_t(dh, t), vh(t, dh);
  for (int head = 0; head < heads; ++head) {
    const int off = head * dh;
    for (int i = 0; i < t; ++i)
      for (int j = 0; j < dh; ++j) {
        qh.at(i, j) = q.at(i, off + j) * inv_sqrt;
        kh_t.at(j, i) = k.at(i, off + j);
        vh.at(i, j) = v.at(i, off + j);
      }
    Matrix scores;
    matmul_.matmul_dynamic(qh, kh_t, scores);  // t x t
    // Causal mask + softmax per row over the visible prefix.
    for (int i = 0; i < t; ++i) {
      const std::span<float> row = scores.row(i);
      nonlinear_.softmax(row.subspan(0, static_cast<std::size_t>(i) + 1));
      for (int j = i + 1; j < t; ++j) row[static_cast<std::size_t>(j)] = 0.0f;
    }
    Matrix ctx;
    matmul_.matmul_dynamic(scores, vh, ctx);  // t x dh
    for (int i = 0; i < t; ++i)
      for (int j = 0; j < dh; ++j) context.at(i, off + j) = ctx.at(i, j);
  }

  Matrix out;
  matmul_.matmul(context, h.wo, out);
  const auto branch = static_cast<float>(config_.residual_branch_scale);
  for (float& v : out.flat()) v *= branch;
  add_inplace(x, out);
}

void Transformer::mlp(Matrix& x, int layer) {
  const LayerWeights& lw = weights_.layers[static_cast<std::size_t>(layer)];
  const LayerHandles& h = handles_[static_cast<std::size_t>(layer)];

  Matrix normed = x;
  rmsnorm_rows(normed, lw.mlp_norm_gain);

  Matrix gate, up;
  matmul_.matmul(normed, h.w_gate, gate);
  matmul_.matmul(normed, h.w_up, up);
  for (int r = 0; r < gate.rows(); ++r) nonlinear_.silu(gate.row(r));
  const std::span<float> g = gate.flat();
  const std::span<const float> u = up.flat();
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= u[i];

  Matrix down;
  matmul_.matmul(gate, h.w_down, down);
  const auto branch = static_cast<float>(config_.residual_branch_scale);
  for (float& v : down.flat()) v *= branch;
  add_inplace(x, down);
}

Matrix Transformer::forward(std::span<const int> tokens) {
  const int t = static_cast<int>(tokens.size());
  assert(t > 0);
  Matrix x(t, config_.d_model);
  const float emb_scale = 1.0f / std::sqrt(static_cast<float>(config_.d_model));
  for (int i = 0; i < t; ++i) {
    assert(tokens[static_cast<std::size_t>(i)] >= 0 &&
           tokens[static_cast<std::size_t>(i)] < config_.vocab);
    const std::span<const float> emb =
        weights_.embedding.row(tokens[static_cast<std::size_t>(i)]);
    const std::span<float> row = x.row(i);
    for (int c = 0; c < config_.d_model; ++c)
      row[static_cast<std::size_t>(c)] =
          emb[static_cast<std::size_t>(c)] * emb_scale;
  }

  for (int l = 0; l < config_.n_layers; ++l) {
    attention(x, l);
    mlp(x, l);
  }

  rmsnorm_rows(x, weights_.final_norm_gain);
  Matrix logits;
  matmul_.matmul(x, lm_head_handle_, logits);
  const std::span<float> ls = logits.flat();
  for (float& v : ls) v *= logit_scale_;
  return logits;
}

double Transformer::mean_nll(std::span<const int> tokens) {
  assert(tokens.size() >= 2);
  const Matrix logits = forward(tokens);
  const int t = static_cast<int>(tokens.size());
  // Positions are independent; compute each position's surprise in
  // parallel, then reduce serially in index order so the floating-point
  // sum is bit-identical to the serial loop at any thread count.
  std::vector<double> position_nll(static_cast<std::size_t>(t - 1));
  common::ThreadPool::global().parallel_for_chunks(
      0, t - 1, /*grain=*/0, [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const std::span<const float> row = logits.row(static_cast<int>(i));
          // log-softmax at the realised next token.
          float mx = row[0];
          for (const float v : row) mx = std::max(mx, v);
          double sum = 0.0;
          for (const float v : row)
            sum += std::exp(static_cast<double>(v) - mx);
          const int next = tokens[static_cast<std::size_t>(i) + 1];
          const double logp =
              static_cast<double>(row[static_cast<std::size_t>(next)]) - mx -
              std::log(sum);
          // Per-token surprise is clipped at uniform + 2 nats so
          // catastrophic quantisers produce large-but-finite perplexities
          // (the same scale as the paper's worst Olive rows) instead of
          // numerically unbounded ones.
          const double cap = std::log(static_cast<double>(config_.vocab)) + 2.0;
          position_nll[static_cast<std::size_t>(i)] = std::min(-logp, cap);
        }
      });
  double nll = 0.0;
  for (const double v : position_nll) nll += v;
  return nll / static_cast<double>(t - 1);
}

double Transformer::perplexity(std::span<const int> tokens) {
  return std::exp(mean_nll(tokens));
}

}  // namespace bbal::llm
