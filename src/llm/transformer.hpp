// Decoder-only transformer with pluggable matmul / nonlinear backends.
//
// Architecture (Llama-style): RMSNorm -> multi-head causal attention ->
// residual -> RMSNorm -> SiLU-gated MLP -> residual; final RMSNorm and a
// linear LM head. All linear layers route through the MatmulBackend, all
// softmax/SiLU through the NonlinearBackend, so quantisation error
// propagates through genuine forward passes.
#pragma once

#include <span>

#include "llm/backend.hpp"
#include "llm/model.hpp"

namespace bbal::llm {

class Transformer {
 public:
  /// Backends and weights are borrowed; they must outlive the Transformer.
  Transformer(const ModelConfig& config, const TransformerWeights& weights,
              MatmulBackend& matmul_backend, NonlinearBackend& nl_backend);

  /// Teacher-forced forward pass over a token sequence; returns logits for
  /// every position (T x vocab), already scaled by logit_scale.
  [[nodiscard]] Matrix forward(std::span<const int> tokens);

  /// Mean next-token negative log likelihood over the sequence (position t
  /// predicts tokens[t+1]).
  [[nodiscard]] double mean_nll(std::span<const int> tokens);

  /// Perplexity = exp(mean_nll).
  [[nodiscard]] double perplexity(std::span<const int> tokens);

  void set_logit_scale(float scale) { logit_scale_ = scale; }
  [[nodiscard]] float logit_scale() const { return logit_scale_; }

  [[nodiscard]] const ModelConfig& config() const { return config_; }
  [[nodiscard]] const TransformerWeights& weights() const { return weights_; }
  [[nodiscard]] MatmulBackend& matmul_backend() { return matmul_; }
  [[nodiscard]] NonlinearBackend& nonlinear_backend() { return nonlinear_; }

  /// Bytes of prepared (quantised) weight storage the matmul backend
  /// holds for this model's registered matrices — the footprint the
  /// serving engine reports as weights_bytes.
  [[nodiscard]] std::int64_t weights_bytes() const {
    return matmul_.weights_bytes();
  }

  /// Handles of the registered weight matrices, per layer, in the order
  /// {wq, wk, wv, wo, w_gate, w_up, w_down}; last entry is the LM head.
  struct LayerHandles {
    int wq, wk, wv, wo, w_gate, w_up, w_down;
  };
  [[nodiscard]] const std::vector<LayerHandles>& layer_handles() const {
    return handles_;
  }
  [[nodiscard]] int lm_head_handle() const { return lm_head_handle_; }

 private:
  void attention(Matrix& x, int layer);
  void mlp(Matrix& x, int layer);

  const ModelConfig& config_;
  const TransformerWeights& weights_;
  MatmulBackend& matmul_;
  NonlinearBackend& nonlinear_;
  std::vector<LayerHandles> handles_;
  int lm_head_handle_ = -1;
  float logit_scale_ = 1.0f;
};

}  // namespace bbal::llm
