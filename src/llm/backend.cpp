#include "llm/backend.hpp"

#include <cassert>

#include "common/threadpool.hpp"
#include "quant/block.hpp"

namespace bbal::llm {

namespace {

// Same inline cutoff as llm::matmul (tensor.cpp): tiny quantisation jobs
// (decoder single rows, per-head slices) skip the pool dispatch.
constexpr std::int64_t kParallelMinElements = 1 << 15;

}  // namespace

// --- Fp32MatmulBackend ------------------------------------------------------

int Fp32MatmulBackend::prepare_weights(const Matrix& w,
                                       const std::string& tag) {
  (void)tag;
  weights_.push_back(w);
  return static_cast<int>(weights_.size()) - 1;
}

void Fp32MatmulBackend::matmul(const Matrix& acts, int weight_handle,
                               Matrix& out) {
  assert(weight_handle >= 0 &&
         weight_handle < static_cast<int>(weights_.size()));
  llm::matmul(acts, weights_[static_cast<std::size_t>(weight_handle)], out);
}

void Fp32MatmulBackend::matmul_dynamic(const Matrix& a, const Matrix& b,
                                       Matrix& out) {
  llm::matmul(a, b, out);
}

// --- BlockQuantMatmulBackend ------------------------------------------------

BlockQuantMatmulBackend::BlockQuantMatmulBackend(quant::BlockFormat act_fmt,
                                                 quant::BlockFormat weight_fmt)
    : act_fmt_(act_fmt), weight_fmt_(weight_fmt) {}

std::string BlockQuantMatmulBackend::name() const {
  return act_fmt_.name();
}

Matrix BlockQuantMatmulBackend::quantise_weights(const Matrix& w) const {
  // Blocks run along K (rows of W) for each output column independently —
  // exactly the per-column weight vectors the PE array consumes. Columns
  // are independent, so they tile across the pool.
  Matrix q(w.rows(), w.cols());
  const int bs = weight_fmt_.block_size;
  const auto col_chunk = [&](std::int64_t j0, std::int64_t j1) {
        std::vector<double> buf(static_cast<std::size_t>(bs));
        std::vector<double> out(static_cast<std::size_t>(bs));
        for (std::int64_t j64 = j0; j64 < j1; ++j64) {
          const int j = static_cast<int>(j64);
          for (int k0 = 0; k0 < w.rows(); k0 += bs) {
            const int len = std::min(bs, w.rows() - k0);
            for (int i = 0; i < len; ++i)
              buf[static_cast<std::size_t>(i)] = w.at(k0 + i, j);
            quant::quantise(
                std::span<const double>(buf.data(),
                                        static_cast<std::size_t>(len)),
                weight_fmt_,
                std::span<double>(out.data(), static_cast<std::size_t>(len)));
            for (int i = 0; i < len; ++i)
              q.at(k0 + i, j) =
                  static_cast<float>(out[static_cast<std::size_t>(i)]);
          }
        }
      };
  if (static_cast<std::int64_t>(w.size()) < kParallelMinElements) {
    col_chunk(0, w.cols());
  } else {
    common::ThreadPool::global().parallel_for_chunks(0, w.cols(), /*grain=*/0,
                                                     col_chunk);
  }
  return q;
}

void BlockQuantMatmulBackend::quantise_activations_into(const Matrix& acts,
                                                        Matrix& q) const {
  q.resize(acts.rows(), acts.cols());
  const auto row_chunk = [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r)
      quant::quantise(acts.row(static_cast<int>(r)), act_fmt_,
                      q.row(static_cast<int>(r)));
  };
  if (static_cast<std::int64_t>(acts.size()) < kParallelMinElements) {
    row_chunk(0, acts.rows());
  } else {
    common::ThreadPool::global().parallel_for_chunks(0, acts.rows(),
                                                     /*grain=*/0, row_chunk);
  }
}

Matrix BlockQuantMatmulBackend::quantise_activations(const Matrix& acts) const {
  Matrix q;
  quantise_activations_into(acts, q);
  return q;
}

int BlockQuantMatmulBackend::prepare_weights(const Matrix& w,
                                             const std::string& tag) {
  (void)tag;
  quantised_weights_.push_back(quantise_weights(w));
  return static_cast<int>(quantised_weights_.size()) - 1;
}

void BlockQuantMatmulBackend::matmul(const Matrix& acts, int weight_handle,
                                     Matrix& out) {
  assert(weight_handle >= 0 &&
         weight_handle < static_cast<int>(quantised_weights_.size()));
  // The quantised-activation scratch is a member so the decode loop's
  // steady state allocates nothing; backends are single-session objects
  // (see bbal/registry.hpp), so matmul() is never re-entered.
  quantise_activations_into(acts, act_scratch_);
  llm::matmul(act_scratch_,
              quantised_weights_[static_cast<std::size_t>(weight_handle)],
              out);
}

void BlockQuantMatmulBackend::matmul_dynamic(const Matrix& a, const Matrix& b,
                                             Matrix& out) {
  // Attention score/context products are activation-activation GEMMs; the
  // paper's weight-activation quantisation (Table II) applies to the linear
  // (weight) layers, so these run on the FP path — matching the W&A
  // conventions of the baselines (OmniQuant/Oltron/Olive are WxAy on
  // weight layers only).
  llm::matmul(a, b, out);
}

std::unique_ptr<BlockQuantMatmulBackend> make_block_backend(
    const quant::BlockFormat& fmt) {
  return std::make_unique<BlockQuantMatmulBackend>(fmt, fmt);
}

}  // namespace bbal::llm
