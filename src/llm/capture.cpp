#include "llm/capture.hpp"

#include "llm/perplexity.hpp"
#include "llm/transformer.hpp"

namespace bbal::llm {

std::string layer_kind_of_tag(const std::string& tag) {
  const auto dot = tag.rfind('.');
  const std::string suffix =
      dot == std::string::npos ? tag : tag.substr(dot + 1);
  if (suffix == "wq") return "Query";
  if (suffix == "wk") return "Key";
  if (suffix == "wv") return "Value";
  if (suffix == "wo") return "Proj";
  if (suffix == "gate" || suffix == "up") return "FC1";
  if (suffix == "down") return "FC2";
  return "Head";
}

int CapturingMatmulBackend::prepare_weights(const Matrix& w,
                                            const std::string& tag) {
  const int handle = inner_.prepare_weights(w, tag);
  const std::string kind = layer_kind_of_tag(tag);
  kinds_.push_back(kind);
  auto& store = weight_values_[kind];
  store.insert(store.end(), w.flat().begin(), w.flat().end());
  return handle;
}

void CapturingMatmulBackend::matmul(const Matrix& acts, int weight_handle,
                                    Matrix& out) {
  auto& store = captures_[kinds_[static_cast<std::size_t>(weight_handle)]];
  store.insert(store.end(), acts.flat().begin(), acts.flat().end());
  inner_.matmul(acts, weight_handle, out);
}

void CapturingMatmulBackend::matmul_dynamic(const Matrix& a, const Matrix& b,
                                            Matrix& out) {
  inner_.matmul_dynamic(a, b, out);
}

CaptureResult capture_layer_data(const ModelConfig& config, int tokens) {
  const TransformerWeights weights = generate_weights(config);
  CapturingMatmulBackend capture;
  Fp32NonlinearBackend nl;
  Transformer model(config, weights, capture, nl);

  // A representative stream: self-generated at a moderate scale.
  model.set_logit_scale(2.0f);
  const std::vector<int> stream = sample_stream(model, tokens, config.seed);
  (void)model.forward(stream);

  CaptureResult result;
  result.activations = capture.captures();
  result.weights = capture.weights();
  result.activations.erase("Head");
  result.weights.erase("Head");
  return result;
}

}  // namespace bbal::llm
