#include "llm/model.hpp"

#include <cassert>
#include <cmath>

#include "common/rng.hpp"

namespace bbal::llm {
namespace {

/// Gaussian matrix scaled by 1/sqrt(fan_in) with `rate` outlier columns
/// whose magnitude is multiplied by `scale * (1 + Exp(1))`.
Matrix random_weight(Rng& rng, int rows, int cols, double rate, double scale) {
  Matrix w(rows, cols);
  const double stddev = 1.0 / std::sqrt(static_cast<double>(rows));
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      w.at(r, c) = static_cast<float>(rng.gaussian(0.0, stddev));

  // Outlier channels: whole columns scaled up, mimicking the per-channel
  // outlier structure of LLM projections (Fig. 1a). The exponential tail is
  // capped so every seed is comparably (not randomly) outlier-bearing.
  const int n_outlier = static_cast<int>(std::ceil(rate * cols));
  for (int i = 0; i < n_outlier; ++i) {
    const int c = static_cast<int>(rng.uniform_int(0, cols - 1));
    const double tail = std::min(1.2, -std::log(1.0 - rng.uniform()));
    const double mag = scale * (1.0 + tail);
    for (int r = 0; r < rows; ++r)
      w.at(r, c) = static_cast<float>(w.at(r, c) * mag);
  }
  return w;
}

/// Norm gains: mostly ~1, a few hot channels that create activation
/// outliers downstream (the "average outliers 10x / extreme 100x" pattern).
std::vector<float> norm_gains(Rng& rng, int n, double rate, double scale) {
  std::vector<float> g(static_cast<std::size_t>(n));
  for (auto& v : g) v = static_cast<float>(1.0 + rng.gaussian(0.0, 0.05));
  const int hot = std::max(1, static_cast<int>(std::ceil(rate * n)));
  for (int i = 0; i < hot; ++i) {
    const auto c = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    // Bounded hot-channel gain: consistent activation outliers per seed.
    g[c] = static_cast<float>(g[c] * (0.4 * scale) *
                              (1.0 + 0.3 * rng.uniform()));
  }
  return g;
}

}  // namespace

TransformerWeights generate_weights(const ModelConfig& cfg) {
  assert(cfg.d_model % cfg.n_heads == 0);
  Rng rng(cfg.seed * 0x9E3779B97F4A7C15ull + 0x1234567ull);
  TransformerWeights w;

  w.embedding = Matrix(cfg.vocab, cfg.d_model);
  for (int r = 0; r < cfg.vocab; ++r)
    for (int c = 0; c < cfg.d_model; ++c)
      w.embedding.at(r, c) = static_cast<float>(rng.gaussian(0.0, 1.0));

  w.layers.resize(static_cast<std::size_t>(cfg.n_layers));
  for (auto& layer : w.layers) {
    const int d = cfg.d_model;
    layer.wq = random_weight(rng, d, d, cfg.outlier_rate, cfg.outlier_scale);
    layer.wk = random_weight(rng, d, d, cfg.outlier_rate, cfg.outlier_scale);
    layer.wv = random_weight(rng, d, d, cfg.outlier_rate * 0.5,
                             cfg.outlier_scale * 0.5);
    layer.wo = random_weight(rng, d, d, cfg.outlier_rate, cfg.outlier_scale);
    layer.w_gate = random_weight(rng, d, cfg.d_ff, cfg.outlier_rate,
                                 cfg.outlier_scale);
    layer.w_up = random_weight(rng, d, cfg.d_ff, cfg.outlier_rate * 0.5,
                               cfg.outlier_scale * 0.5);
    layer.w_down = random_weight(rng, cfg.d_ff, d, cfg.outlier_rate,
                                 cfg.outlier_scale);
    layer.attn_norm_gain =
        norm_gains(rng, d, cfg.outlier_rate, cfg.outlier_scale);
    layer.mlp_norm_gain =
        norm_gains(rng, d, cfg.outlier_rate, cfg.outlier_scale);
  }

  w.final_norm_gain.assign(static_cast<std::size_t>(cfg.d_model), 1.0f);
  w.lm_head = random_weight(rng, cfg.d_model, cfg.vocab, 0.0, 1.0);
  return w;
}

namespace {

/// Vocabulary sized to the target perplexity tier: low-PPL models must not
/// rely on extreme logit sharpening (which would make them unrealistically
/// brittle under perturbation — trained LLMs reach low PPL robustly).
int vocab_for_target(double target_ppl) {
  if (target_ppl < 4.5) return 128;
  if (target_ppl < 6.0) return 192;
  if (target_ppl < 8.5) return 256;
  if (target_ppl < 11.0) return 320;
  return 448;
}

}  // namespace

std::vector<ModelConfig> model_zoo() {
  // Llama-like: more/larger outliers; OPT-like: fewer/smaller — matching the
  // paper's observation that outlier-budget methods favour OPT.
  auto llama = [](const std::string& name, int d, int layers,
                  std::uint64_t seed, double ppl) {
    ModelConfig c;
    c.name = name;
    c.vocab = vocab_for_target(ppl);
    c.d_model = d;
    c.d_ff = (d * 8) / 3;
    c.n_layers = layers;
    c.n_heads = 4;
    c.seed = seed;
    c.outlier_rate = 0.010;
    c.outlier_scale = 11.0;
    c.fp_baseline_ppl = ppl;
    return c;
  };
  auto opt = [](const std::string& name, int d, int layers,
                std::uint64_t seed, double ppl) {
    ModelConfig c;
    c.name = name;
    c.vocab = vocab_for_target(ppl);
    c.d_model = d;
    c.d_ff = d * 4;
    c.n_layers = layers;
    c.n_heads = 4;
    c.seed = seed;
    c.outlier_rate = 0.004;
    c.outlier_scale = 6.0;
    c.fp_baseline_ppl = ppl;
    return c;
  };
  return {
      llama("Llama-1B", 96, 2, 11, 9.88),
      llama("Llama-3B", 112, 2, 12, 7.87),
      llama("Llama-7B", 128, 3, 13, 5.47),
      llama("Llama-13B", 144, 3, 14, 5.09),
      llama("Llama-30B", 160, 3, 15, 4.10),
      llama("Llama-65B", 176, 3, 16, 3.53),
      opt("OPT-1.3B", 96, 2, 21, 14.62),
      opt("OPT-2.7B", 112, 2, 22, 12.47),
      opt("OPT-6.7B", 128, 3, 23, 10.86),
      opt("OPT-13B", 144, 3, 24, 10.12),
      opt("OPT-30B", 160, 3, 25, 9.56),
      opt("OPT-66B", 176, 3, 26, 9.34),
  };
}

Result<ModelConfig> find_config(const std::string& name) {
  std::string known;
  for (const ModelConfig& c : model_zoo()) {
    if (c.name == name) return c;
    known += (known.empty() ? "" : ", ") + c.name;
  }
  for (const ModelConfig& c : nonlinear_zoo()) {
    if (c.name == name) return c;
    known += ", " + c.name;
  }
  return Result<ModelConfig>::error("unknown model \"" + name +
                                    "\" (known: " + known + ")");
}

ModelConfig config_by_name(const std::string& name) {
  return find_config(name).expect("config_by_name");
}

std::vector<ModelConfig> nonlinear_zoo() {
  auto make = [](const std::string& name, std::uint64_t seed, double ppl) {
    ModelConfig c;
    c.name = name;
    c.vocab = vocab_for_target(ppl);
    c.d_model = 128;
    c.d_ff = 344;
    c.n_layers = 3;
    c.n_heads = 4;
    c.seed = seed;
    c.outlier_rate = 0.010;
    c.outlier_scale = 11.0;
    c.attention_score_scale = 4.0;  // trained-LLM-like sharp heads
    c.fp_baseline_ppl = ppl;
    return c;
  };
  return {
      make("Llama-7B-nl", 31, 5.68),
      make("Llama2-7B-nl", 32, 5.47),
      make("Llama3-8B-nl", 33, 6.14),
  };
}

}  // namespace bbal::llm
