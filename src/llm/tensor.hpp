// Minimal dense row-major matrix with the numerics the transformer needs.
//
// GEMMs accumulate in double: products of block-quantised values are exact
// in double, so the fake-quant executor matches the accelerator's integer
// datapath bit for bit at block level (tested in test_quant_executor).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace bbal::llm {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols) : rows_(rows), cols_(cols),
                               data_(static_cast<std::size_t>(rows) * cols) {}

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  /// Reshape to rows x cols, keeping the underlying capacity: a matrix
  /// that is resized back and forth between shapes it has already held
  /// never reallocates (the zero-allocation contract of the decode step
  /// loop). A no-op when the shape already matches. Contents are
  /// unspecified after a shape change — callers are expected to overwrite
  /// every element (llm::matmul does).
  void resize(int rows, int cols) {
    if (rows == rows_ && cols == cols_) return;
    rows_ = rows;
    cols_ = cols;
    data_.resize(static_cast<std::size_t>(rows) * cols);
  }

  [[nodiscard]] float& at(int r, int c) {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  [[nodiscard]] float at(int r, int c) const {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

  [[nodiscard]] std::span<float> row(int r) {
    return {data_.data() + static_cast<std::size_t>(r) * cols_,
            static_cast<std::size_t>(cols_)};
  }
  [[nodiscard]] std::span<const float> row(int r) const {
    return {data_.data() + static_cast<std::size_t>(r) * cols_,
            static_cast<std::size_t>(cols_)};
  }

  [[nodiscard]] std::span<float> flat() { return data_; }
  [[nodiscard]] std::span<const float> flat() const { return data_; }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

/// C = A * B. A: MxK, B: KxN, C resized to MxN (reusing its storage when
/// the shape already matches — no allocation in a steady-state loop).
/// C must not alias A or B. Double accumulation per output row.
void matmul(const Matrix& a, const Matrix& b, Matrix& c);
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);

/// out = row_vec (1xK) * B (KxN); double accumulation.
void matvec(std::span<const float> row_vec, const Matrix& b,
            std::span<float> out);

/// RMSNorm over each row: x <- x / rms(x) * gain.
void rmsnorm_rows(Matrix& x, std::span<const float> gain, float eps = 1e-5f);
void rmsnorm_row(std::span<float> x, std::span<const float> gain,
                 float eps = 1e-5f);

/// Reference FP32 softmax over a span (numerically stable, in place).
void softmax_reference(std::span<float> xs);

/// Reference FP32 SiLU: x * sigmoid(x).
[[nodiscard]] float silu_reference(float x);

/// a += b (same shape).
void add_inplace(Matrix& a, const Matrix& b);

}  // namespace bbal::llm
