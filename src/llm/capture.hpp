// Activation capture: records the input activations of every linear layer
// during a forward pass, grouped by layer kind (Query/Key/Value/Proj/
// FC1/FC2). Feeds the distribution study (Fig. 1a) and the shared-exponent
// error analysis (Fig. 3).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "llm/backend.hpp"
#include "llm/model.hpp"

namespace bbal::llm {

/// FP32 matmul backend that additionally records the activations flowing
/// into each registered weight matrix, keyed by the layer kind suffix of
/// the registration tag ("wq" -> "Query", "gate" -> "FC1", ...).
class CapturingMatmulBackend final : public MatmulBackend {
 public:
  int prepare_weights(const Matrix& w, const std::string& tag) override;
  void matmul(const Matrix& acts, int weight_handle, Matrix& out) override;
  void matmul_dynamic(const Matrix& a, const Matrix& b, Matrix& out) override;
  [[nodiscard]] std::int64_t weights_bytes() const override {
    return inner_.weights_bytes();
  }
  [[nodiscard]] std::string name() const override { return "FP32+capture"; }

  /// Captured activations per layer kind (flattened across calls).
  [[nodiscard]] const std::map<std::string, std::vector<double>>& captures()
      const {
    return captures_;
  }

  /// Weight values per layer kind (flattened), for weight distributions.
  [[nodiscard]] const std::map<std::string, std::vector<double>>& weights()
      const {
    return weight_values_;
  }

 private:
  Fp32MatmulBackend inner_;
  std::vector<std::string> kinds_;  // per handle
  std::map<std::string, std::vector<double>> captures_;
  std::map<std::string, std::vector<double>> weight_values_;
};

/// Map a registration tag to the paper's layer-kind label:
/// wq->Query, wk->Key, wv->Value, wo->Proj, gate/up->FC1, down->FC2.
[[nodiscard]] std::string layer_kind_of_tag(const std::string& tag);

/// Run `config`'s model over a short self-generated stream and return the
/// captured activations and weights per layer kind.
struct CaptureResult {
  std::map<std::string, std::vector<double>> activations;
  std::map<std::string, std::vector<double>> weights;
};
[[nodiscard]] CaptureResult capture_layer_data(const ModelConfig& config,
                                               int tokens = 192);

}  // namespace bbal::llm
