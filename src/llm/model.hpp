// Synthetic decoder-only transformer family standing in for the paper's
// Llama / OPT checkpoints (see DESIGN.md, substitution #1).
//
// Weight statistics follow Fig. 1(a): Gaussian bulk plus a small set of
// outlier channels (~10x average outliers, ~100x extremes). "Llama-like"
// configs carry more/larger outliers than "OPT-like" configs, which is the
// paper's explanation for outlier-budget baselines behaving differently on
// the two families (Fig. 8 discussion).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "llm/tensor.hpp"

namespace bbal::llm {

struct ModelConfig {
  std::string name;
  int vocab = 512;
  int d_model = 128;
  int n_layers = 3;
  int n_heads = 4;
  int d_ff = 344;
  std::uint64_t seed = 1;
  /// Fraction of channels that are outlier channels.
  double outlier_rate = 0.01;
  /// Magnitude multiplier of outlier channels over the Gaussian bulk.
  double outlier_scale = 25.0;
  /// Residual-branch scale (DeepNet/muP-style damping). Trained LLMs are
  /// far more robust to per-layer perturbations than random networks; this
  /// keeps the synthetic model's error propagation in a realistic regime.
  double residual_branch_scale = 0.55;
  /// Attention score sharpness. Trained LLMs develop near-deterministic
  /// heads with logit ranges of tens; random projections don't, so the
  /// nonlinear study scales scores up to reach that regime.
  double attention_score_scale = 1.0;
  /// Paper's FP16 perplexity for this model (calibration target, Table II).
  double fp_baseline_ppl = 5.47;

  [[nodiscard]] int head_dim() const { return d_model / n_heads; }
};

struct LayerWeights {
  Matrix wq, wk, wv, wo;       // d_model x d_model
  Matrix w_gate, w_up;         // d_model x d_ff
  Matrix w_down;               // d_ff x d_model
  std::vector<float> attn_norm_gain;  // d_model
  std::vector<float> mlp_norm_gain;   // d_model
};

struct TransformerWeights {
  Matrix embedding;            // vocab x d_model
  std::vector<LayerWeights> layers;
  std::vector<float> final_norm_gain;  // d_model
  Matrix lm_head;              // d_model x vocab
};

/// Deterministically generate weights for `config` (seeded).
[[nodiscard]] TransformerWeights generate_weights(const ModelConfig& config);

/// The twelve Table II models: Llama-{1B..65B} and OPT-{1.3B..66B}, scaled
/// down in width/depth but with family-faithful outlier profiles and the
/// paper's FP16 PPL as calibration target.
[[nodiscard]] std::vector<ModelConfig> model_zoo();

/// Zoo lookup across model_zoo() and nonlinear_zoo(); unknown names are a
/// reportable error (listing the known names), not an abort.
[[nodiscard]] Result<ModelConfig> find_config(const std::string& name);

/// Literal-name convenience; aborts with a message on unknown names.
[[nodiscard]] ModelConfig config_by_name(const std::string& name);

/// Nonlinear-study models of Table IV: Llama-7B, Llama2-7B, Llama3-8B
/// analogues with FP32 baselines 5.68 / 5.47 / 6.14.
[[nodiscard]] std::vector<ModelConfig> nonlinear_zoo();

}  // namespace bbal::llm
