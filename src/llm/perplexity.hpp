// Perplexity harness: stream synthesis, logit-scale calibration and the
// evaluation entry points used by Tables II/IV and Figs. 4/8.
//
// Methodology (DESIGN.md substitution #1): the evaluation stream is sampled
// from the FP32 model itself, so the FP32 perplexity approaches the model's
// own entropy rate — which we calibrate (via the logit scale) to the paper's
// FP16 baseline. Quantised variants then measure genuinely propagated error.
#pragma once

#include <memory>
#include <vector>

#include "llm/transformer.hpp"

namespace bbal::llm {

/// Sample `length` tokens autoregressively from `model` (seeded).
[[nodiscard]] std::vector<int> sample_stream(Transformer& model, int length,
                                             std::uint64_t seed);

/// Calibrate the logit scale of the FP32 model so its self-perplexity hits
/// `config.fp_baseline_ppl`; returns the scale. Bisection over generation.
[[nodiscard]] float calibrate_logit_scale(Transformer& fp32_model,
                                          double target_ppl,
                                          int calib_tokens = 192,
                                          int iterations = 7);

/// Everything needed to evaluate one model under many backends: the frozen
/// weights, the calibrated scale and the evaluation stream.
struct PreparedModel {
  ModelConfig config;
  TransformerWeights weights;
  float logit_scale = 1.0f;
  std::vector<int> eval_stream;
  double fp32_ppl = 0.0;  ///< measured baseline on the eval stream
};

/// Build + calibrate a model and synthesise its evaluation stream.
[[nodiscard]] PreparedModel prepare_model(const ModelConfig& config,
                                          int eval_tokens = 512);

/// Perplexity of `prepared` when run with the given backends.
[[nodiscard]] double evaluate_ppl(const PreparedModel& prepared,
                                  MatmulBackend& matmul_backend,
                                  NonlinearBackend& nl_backend);

/// Convenience: perplexity under a block format (FP32 nonlinear), the
/// Table II cell.
[[nodiscard]] double evaluate_ppl_block_format(const PreparedModel& prepared,
                                               const quant::BlockFormat& fmt);

}  // namespace bbal::llm
