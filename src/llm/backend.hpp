// Pluggable execution backends: the same transformer runs with FP32 math,
// block-quantised (BFP/BBFP) math, or any baseline quantiser, and with FP32
// or LUT-based nonlinear units. Table II swaps the matmul backend; Table IV
// swaps the nonlinear backend.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "llm/tensor.hpp"
#include "quant/format.hpp"

namespace bbal::llm {

/// Payload bytes of a set of prepared weight matrices — the accounting
/// every float-storing MatmulBackend uses for weights_bytes().
[[nodiscard]] inline std::int64_t matrices_bytes(
    const std::vector<Matrix>& weights) {
  std::int64_t bytes = 0;
  for (const Matrix& w : weights)
    bytes += static_cast<std::int64_t>(w.size()) *
             static_cast<std::int64_t>(sizeof(float));
  return bytes;
}

/// Linear-layer executor. Weights are registered once (so backends can
/// pre-quantise them); activations are processed per call.
class MatmulBackend {
 public:
  virtual ~MatmulBackend() = default;

  /// Register a weight matrix; returns a handle for `matmul`.
  virtual int prepare_weights(const Matrix& w, const std::string& tag) = 0;

  /// out = acts x W[handle], with backend-specific quantisation applied.
  virtual void matmul(const Matrix& acts, int weight_handle, Matrix& out) = 0;

  /// Dynamic activation-by-activation product (attention scores/context):
  /// out = a x b with both sides quantised on the fly where applicable.
  virtual void matmul_dynamic(const Matrix& a, const Matrix& b,
                              Matrix& out) = 0;

  /// Bytes of prepared weight storage this backend holds (the quantised
  /// copies registered through prepare_weights). The serving engine
  /// surfaces this as the weights_bytes metric: with one shared backend
  /// the figure is paid once per engine, not once per execution slot.
  [[nodiscard]] virtual std::int64_t weights_bytes() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Nonlinear-layer executor (softmax rows and SiLU activations). SiLU is
/// vector-wise: block-based units (BFP/BBFP LUT engines) share one exponent
/// per 32-element chunk, so element context matters.
class NonlinearBackend {
 public:
  virtual ~NonlinearBackend() = default;
  virtual void softmax(std::span<float> xs) = 0;
  virtual void silu(std::span<float> xs) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

// --- Reference FP32 backends ------------------------------------------------

class Fp32MatmulBackend final : public MatmulBackend {
 public:
  int prepare_weights(const Matrix& w, const std::string& tag) override;
  void matmul(const Matrix& acts, int weight_handle, Matrix& out) override;
  void matmul_dynamic(const Matrix& a, const Matrix& b, Matrix& out) override;
  [[nodiscard]] std::int64_t weights_bytes() const override {
    return matrices_bytes(weights_);
  }
  [[nodiscard]] std::string name() const override { return "FP32"; }

 private:
  std::vector<Matrix> weights_;
};

class Fp32NonlinearBackend final : public NonlinearBackend {
 public:
  void softmax(std::span<float> xs) override { softmax_reference(xs); }
  void silu(std::span<float> xs) override {
    for (float& x : xs) x = silu_reference(x);
  }
  [[nodiscard]] std::string name() const override { return "FP32"; }
};

// --- Block-quantised backend ------------------------------------------------

/// Fake-quant executor mathematically equivalent to the BBAL datapath:
/// weights quantised offline column-block-wise along K, activations
/// quantised on the fly row-block-wise along K, products accumulated in
/// double (the FP-adder path across 32-element blocks).
class BlockQuantMatmulBackend final : public MatmulBackend {
 public:
  BlockQuantMatmulBackend(quant::BlockFormat act_fmt,
                          quant::BlockFormat weight_fmt);

  int prepare_weights(const Matrix& w, const std::string& tag) override;
  void matmul(const Matrix& acts, int weight_handle, Matrix& out) override;
  void matmul_dynamic(const Matrix& a, const Matrix& b, Matrix& out) override;
  [[nodiscard]] std::int64_t weights_bytes() const override {
    return matrices_bytes(quantised_weights_);
  }
  [[nodiscard]] std::string name() const override;

  /// Quantise activations row-block-wise (exposed for tests/analysis).
  [[nodiscard]] Matrix quantise_activations(const Matrix& acts) const;
  /// Row-block-wise activation quantisation into a caller-owned matrix
  /// (resized to acts' shape): the allocation-free path matmul() runs on.
  void quantise_activations_into(const Matrix& acts, Matrix& q) const;
  /// Quantise a weight matrix column-block-wise along K (exposed for tests).
  [[nodiscard]] Matrix quantise_weights(const Matrix& w) const;

 private:
  quant::BlockFormat act_fmt_;
  quant::BlockFormat weight_fmt_;
  std::vector<Matrix> quantised_weights_;
  Matrix act_scratch_;  ///< reused by matmul(); rows quantised per call
};

/// Convenience: both sides in the same format (the paper's W&A setting).
[[nodiscard]] std::unique_ptr<BlockQuantMatmulBackend> make_block_backend(
    const quant::BlockFormat& fmt);

}  // namespace bbal::llm
