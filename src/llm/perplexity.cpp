#include "llm/perplexity.hpp"

#include <cassert>
#include <cmath>

#include "common/rng.hpp"
#include "llm/decoder.hpp"

namespace bbal::llm {

std::vector<int> sample_stream(Transformer& model, int length,
                               std::uint64_t seed) {
  assert(length >= 2);
  Rng rng(seed);
  Decoder decoder(model);
  std::vector<int> tokens;
  tokens.reserve(static_cast<std::size_t>(length));
  int token = static_cast<int>(rng.uniform_int(0, model.config().vocab - 1));
  tokens.push_back(token);
  for (int t = 1; t < length; ++t) {
    std::vector<float> logits = decoder.step(token);
    // Sample from softmax(logits).
    float mx = logits[0];
    for (const float v : logits) mx = std::max(mx, v);
    std::vector<double> probs(logits.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < logits.size(); ++i) {
      probs[i] = std::exp(static_cast<double>(logits[i]) - mx);
      sum += probs[i];
    }
    const double u = rng.uniform() * sum;
    double acc = 0.0;
    int pick = static_cast<int>(probs.size()) - 1;
    for (std::size_t i = 0; i < probs.size(); ++i) {
      acc += probs[i];
      if (acc >= u) {
        pick = static_cast<int>(i);
        break;
      }
    }
    tokens.push_back(pick);
    token = pick;
  }
  return tokens;
}

float calibrate_logit_scale(Transformer& model, double target_ppl,
                            int calib_tokens, int iterations) {
  assert(target_ppl > 1.0);
  // Self-perplexity decreases monotonically in the logit scale (sharper
  // distributions -> lower entropy). Bisect in log-space.
  double lo = 0.05;
  double hi = 40.0;
  double best = 1.0;
  for (int it = 0; it < iterations; ++it) {
    const double mid = std::sqrt(lo * hi);
    model.set_logit_scale(static_cast<float>(mid));
    const std::vector<int> stream =
        sample_stream(model, calib_tokens, /*seed=*/777);
    const double ppl = model.perplexity(stream);
    best = mid;
    if (ppl > target_ppl) {
      lo = mid;  // too flat: sharpen
    } else {
      hi = mid;
    }
  }
  model.set_logit_scale(static_cast<float>(best));
  return static_cast<float>(best);
}

PreparedModel prepare_model(const ModelConfig& config, int eval_tokens) {
  PreparedModel prepared;
  prepared.config = config;
  prepared.weights = generate_weights(config);

  Fp32MatmulBackend mm;
  Fp32NonlinearBackend nl;
  Transformer fp32(prepared.config, prepared.weights, mm, nl);
  // Self-perplexity on a self-generated stream is monotone (and steep) in
  // the logit scale, so bisect directly on the evaluation stream: the
  // reported FP32 baseline then sits on the paper's FP16 row by
  // construction, and quantised backends are measured on the same stream.
  const std::uint64_t stream_seed = config.seed * 31 + 7;
  double lo = 0.05;
  double hi = 200.0;
  double best_err = 1e300;
  double best_scale = 1.0;
  for (int it = 0; it < 12; ++it) {
    const double mid = std::sqrt(lo * hi);
    fp32.set_logit_scale(static_cast<float>(mid));
    const std::vector<int> stream =
        sample_stream(fp32, eval_tokens, stream_seed);
    const double ppl = fp32.perplexity(stream);
    // The PPL(scale) curve can be cliff-like (sharp models generate
    // repetitive streams); keep the closest-to-target point seen.
    const double err = std::fabs(std::log(ppl / config.fp_baseline_ppl));
    if (err < best_err) {
      best_err = err;
      best_scale = mid;
      prepared.eval_stream = stream;
      prepared.fp32_ppl = ppl;
      prepared.logit_scale = static_cast<float>(mid);
    }
    const double ratio = ppl / config.fp_baseline_ppl;
    if (ratio > 0.97 && ratio < 1.03) break;
    if (ppl > config.fp_baseline_ppl) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  (void)best_scale;
  return prepared;
}

double evaluate_ppl(const PreparedModel& prepared,
                    MatmulBackend& matmul_backend,
                    NonlinearBackend& nl_backend) {
  Transformer model(prepared.config, prepared.weights, matmul_backend,
                    nl_backend);
  model.set_logit_scale(prepared.logit_scale);
  return model.perplexity(prepared.eval_stream);
}

double evaluate_ppl_block_format(const PreparedModel& prepared,
                                 const quant::BlockFormat& fmt) {
  auto backend = make_block_backend(fmt);
  Fp32NonlinearBackend nl;
  return evaluate_ppl(prepared, *backend, nl);
}

}  // namespace bbal::llm
