#include "llm/decoder.hpp"

#include <cassert>
#include <cmath>

namespace bbal::llm {

Decoder::Decoder(Transformer& model)
    : model_(model), cache_(model.config().n_layers) {}

void Decoder::reset() { cache_.clear(); }

KVCache Decoder::make_cache() const {
  return KVCache(model_.config().n_layers);
}

std::vector<float> Decoder::step(int token) { return step(token, cache_); }

std::vector<float> Decoder::step(int token, KVCache& cache) {
  assert(cache.k.size() == static_cast<std::size_t>(model_.config().n_layers));
  KVCacheRef view(cache);
  return step(token, view);
}

std::vector<float> Decoder::step(int token, KVCacheView& view) {
  const ModelConfig& cfg = model_.config();
  const TransformerWeights& w = model_.weights();
  MatmulBackend& mm = model_.matmul_backend();
  NonlinearBackend& nl = model_.nonlinear_backend();
  assert(token >= 0 && token < cfg.vocab);

  const int d = cfg.d_model;
  const int heads = cfg.n_heads;
  const int dh = cfg.head_dim();
  const float inv_sqrt = static_cast<float>(cfg.attention_score_scale) /
                         std::sqrt(static_cast<float>(dh));
  const float emb_scale = 1.0f / std::sqrt(static_cast<float>(d));

  // x: running hidden state for this position (1 x d as a Matrix so the
  // quantising backends see the same row-blocked layout as batched mode).
  Matrix x(1, d);
  {
    const std::span<const float> emb = w.embedding.row(token);
    for (int c = 0; c < d; ++c)
      x.at(0, c) = emb[static_cast<std::size_t>(c)] * emb_scale;
  }

  // The position this step writes; every layer appends at the same index
  // (KVCacheView protocol), so it is read once, up front.
  const int pos = view.length();
  const int ctx = pos + 1;
  std::vector<std::span<const float>> krows(static_cast<std::size_t>(ctx));
  std::vector<std::span<const float>> vrows(static_cast<std::size_t>(ctx));

  for (int l = 0; l < cfg.n_layers; ++l) {
    const LayerWeights& lw = w.layers[static_cast<std::size_t>(l)];
    const Transformer::LayerHandles& h =
        model_.layer_handles()[static_cast<std::size_t>(l)];

    // --- Attention ---
    Matrix normed = x;
    rmsnorm_rows(normed, lw.attn_norm_gain);
    Matrix q, k, v;
    mm.matmul(normed, h.wq, q);
    mm.matmul(normed, h.wk, k);
    mm.matmul(normed, h.wv, v);
    view.append(l, k.row(0), v.row(0));
    // Row lookups are hoisted out of the per-head loops so a paged view
    // pays one page-table walk per position, not one per element; the
    // element read order (and therefore the accumulation order) is
    // unchanged from the contiguous path.
    for (int p = 0; p < ctx; ++p) {
      krows[static_cast<std::size_t>(p)] = view.k_at(l, p);
      vrows[static_cast<std::size_t>(p)] = view.v_at(l, p);
    }

    Matrix context(1, d);
    std::vector<float> scores(static_cast<std::size_t>(ctx));
    for (int head = 0; head < heads; ++head) {
      const int off = head * dh;
      for (int p = 0; p < ctx; ++p) {
        double acc = 0.0;
        const std::span<const float> krow = krows[static_cast<std::size_t>(p)];
        for (int j = 0; j < dh; ++j)
          acc += static_cast<double>(q.at(0, off + j)) *
                 krow[static_cast<std::size_t>(off + j)];
        scores[static_cast<std::size_t>(p)] =
            static_cast<float>(acc) * inv_sqrt;
      }
      nl.softmax(scores);
      for (int j = 0; j < dh; ++j) {
        double acc = 0.0;
        for (int p = 0; p < ctx; ++p)
          acc += static_cast<double>(scores[static_cast<std::size_t>(p)]) *
                 vrows[static_cast<std::size_t>(p)]
                      [static_cast<std::size_t>(off + j)];
        context.at(0, off + j) = static_cast<float>(acc);
      }
    }
    Matrix attn_out;
    mm.matmul(context, h.wo, attn_out);
    const auto branch = static_cast<float>(cfg.residual_branch_scale);
    for (float& vv : attn_out.flat()) vv *= branch;
    add_inplace(x, attn_out);

    // --- MLP ---
    Matrix normed2 = x;
    rmsnorm_rows(normed2, lw.mlp_norm_gain);
    Matrix gate, up;
    mm.matmul(normed2, h.w_gate, gate);
    mm.matmul(normed2, h.w_up, up);
    nl.silu(gate.row(0));
    const std::span<float> g = gate.flat();
    const std::span<const float> u = up.flat();
    for (std::size_t i = 0; i < g.size(); ++i) g[i] *= u[i];
    Matrix down;
    mm.matmul(gate, h.w_down, down);
    for (float& vv : down.flat()) vv *= branch;
    add_inplace(x, down);
  }

  rmsnorm_rows(x, w.final_norm_gain);
  Matrix logits;
  mm.matmul(x, model_.lm_head_handle(), logits);
  std::vector<float> out(logits.row(0).begin(), logits.row(0).end());
  for (float& vv : out) vv *= model_.logit_scale();
  return out;
}

}  // namespace bbal::llm
