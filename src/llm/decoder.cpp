#include "llm/decoder.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bbal::llm {

Decoder::Decoder(Transformer& model)
    : model_(model), cache_(model.config().n_layers) {}

void Decoder::reset() { cache_.clear(); }

KVCache Decoder::make_cache() const {
  return KVCache(model_.config().n_layers);
}

std::vector<float> Decoder::step(int token) { return step(token, cache_); }

std::vector<float> Decoder::step(int token, KVCache& cache) {
  assert(cache.k.size() == static_cast<std::size_t>(model_.config().n_layers));
  KVCacheRef view(cache);
  return step(token, view);
}

std::vector<float> Decoder::step(int token, KVCacheView& view) {
  // A batch of one: the single-request path shares the fused datapath
  // (and its persistent workspace), so it too stops allocating per token
  // — apart from this API's returned vector.
  KVCacheView* views[1] = {&view};
  step_batch(std::span<const int>(&token, 1),
             std::span<KVCacheView* const>(views, 1), ws_.logits);
  const std::span<const float> row = ws_.logits.row(0);
  return {row.begin(), row.end()};
}

void Decoder::step_batch(std::span<const int> tokens,
                         std::span<KVCacheView* const> views,
                         Matrix& logits_out) {
  // A grouped step with every count == 1: same iteration structure, same
  // arithmetic, one logits row per view — the pre-chunking contract.
  ws_.ones.assign(views.size(), 1);
  step_groups(tokens, views,
              std::span<const int>(ws_.ones.data(), views.size()),
              logits_out);
}

void Decoder::prefill_chunk(std::span<const int> tokens, KVCacheView& view,
                            Matrix& logits_out) {
  KVCacheView* views[1] = {&view};
  const int count = static_cast<int>(tokens.size());
  step_groups(tokens, std::span<KVCacheView* const>(views, 1),
              std::span<const int>(&count, 1), logits_out);
}

void Decoder::step_groups(std::span<const int> tokens,
                          std::span<KVCacheView* const> views,
                          std::span<const int> counts, Matrix& logits_out,
                          LogitsMode mode) {
  const ModelConfig& cfg = model_.config();
  const TransformerWeights& w = model_.weights();
  MatmulBackend& mm = model_.matmul_backend();
  NonlinearBackend& nl = model_.nonlinear_backend();
  assert(counts.size() == views.size());
  const int groups = static_cast<int>(views.size());
  if (groups == 0) {
    logits_out.resize(0, cfg.vocab);
    return;
  }
  int batch = 0;
  for (const int count : counts) {
    assert(count >= 1);
    batch += count;
  }
  assert(static_cast<int>(tokens.size()) == batch);

  const int d = cfg.d_model;
  const int heads = cfg.n_heads;
  const int dh = cfg.head_dim();
  const float inv_sqrt = static_cast<float>(cfg.attention_score_scale) /
                         std::sqrt(static_cast<float>(dh));
  const float emb_scale = 1.0f / std::sqrt(static_cast<float>(d));

  // x: stacked hidden states, one row per new position, so the quantising
  // backends see one (batch x d_model) activation matrix per projection —
  // decode rows and prefill-chunk rows alike.
  ws_.x.resize(batch, d);
  ws_.pos.resize(static_cast<std::size_t>(batch));
  for (int g = 0, r = 0; g < groups; ++g) {
    assert(views[static_cast<std::size_t>(g)] != nullptr);
    // The first position this step writes for group g; the group's row i
    // lands at base + i (KVCacheView protocol), so length() is read once.
    const int base = views[static_cast<std::size_t>(g)]->length();
    for (int i = 0; i < counts[static_cast<std::size_t>(g)]; ++i, ++r) {
      const int token = tokens[static_cast<std::size_t>(r)];
      assert(token >= 0 && token < cfg.vocab);
      const std::span<const float> emb = w.embedding.row(token);
      const std::span<float> row = ws_.x.row(r);
      for (int c = 0; c < d; ++c)
        row[static_cast<std::size_t>(c)] =
            emb[static_cast<std::size_t>(c)] * emb_scale;
      ws_.pos[static_cast<std::size_t>(r)] = base + i;
    }
  }

  for (int l = 0; l < cfg.n_layers; ++l) {
    const LayerWeights& lw = w.layers[static_cast<std::size_t>(l)];
    const Transformer::LayerHandles& h =
        model_.layer_handles()[static_cast<std::size_t>(l)];

    // --- Attention ---
    ws_.normed = ws_.x;
    rmsnorm_rows(ws_.normed, lw.attn_norm_gain);
    mm.matmul(ws_.normed, h.wq, ws_.q);
    mm.matmul(ws_.normed, h.wk, ws_.k);
    mm.matmul(ws_.normed, h.wv, ws_.v);
    for (int g = 0, r = 0; g < groups; ++g)
      for (int i = 0; i < counts[static_cast<std::size_t>(g)]; ++i, ++r)
        views[static_cast<std::size_t>(g)]->append(
            l, ws_.pos[static_cast<std::size_t>(r)], ws_.k.row(r),
            ws_.v.row(r));

    // Per-row attention over each row's own (ragged, causal) context: a
    // decode row attends over its whole sequence, row i of a prefill
    // chunk over positions 0..base+i — including the chunk's earlier rows,
    // read back through the view exactly as a later step would read them.
    // The loop stays serial: NonlinearBackend carries no thread-safety
    // contract, and the parallelism lives in the batched GEMMs around it
    // (llm::matmul row tiling). Row lookups are hoisted per position so a
    // paged view pays one page-table walk per position, not per element;
    // the element read order (and accumulation order) matches the
    // single-request path exactly.
    ws_.context.resize(batch, d);
    for (int g = 0, r = 0; g < groups; ++g) {
      const KVCacheView& view = *views[static_cast<std::size_t>(g)];
      for (int i = 0; i < counts[static_cast<std::size_t>(g)]; ++i, ++r) {
        const int ctx = ws_.pos[static_cast<std::size_t>(r)] + 1;
        ws_.krows.resize(static_cast<std::size_t>(ctx));
        ws_.vrows.resize(static_cast<std::size_t>(ctx));
        ws_.scores.resize(static_cast<std::size_t>(ctx));
        for (int p = 0; p < ctx; ++p) {
          ws_.krows[static_cast<std::size_t>(p)] = view.k_at(l, p);
          ws_.vrows[static_cast<std::size_t>(p)] = view.v_at(l, p);
        }
        const std::span<float> scores(ws_.scores.data(),
                                      static_cast<std::size_t>(ctx));
        for (int head = 0; head < heads; ++head) {
          const int off = head * dh;
          for (int p = 0; p < ctx; ++p) {
            double acc = 0.0;
            const std::span<const float> krow =
                ws_.krows[static_cast<std::size_t>(p)];
            for (int j = 0; j < dh; ++j)
              acc += static_cast<double>(ws_.q.at(r, off + j)) *
                     krow[static_cast<std::size_t>(off + j)];
            scores[static_cast<std::size_t>(p)] =
                static_cast<float>(acc) * inv_sqrt;
          }
          nl.softmax(scores);
          for (int j = 0; j < dh; ++j) {
            double acc = 0.0;
            for (int p = 0; p < ctx; ++p)
              acc += static_cast<double>(scores[static_cast<std::size_t>(p)]) *
                     ws_.vrows[static_cast<std::size_t>(p)]
                             [static_cast<std::size_t>(off + j)];
            ws_.context.at(r, off + j) = static_cast<float>(acc);
          }
        }
      }
    }
    mm.matmul(ws_.context, h.wo, ws_.attn_out);
    const auto branch = static_cast<float>(cfg.residual_branch_scale);
    for (float& vv : ws_.attn_out.flat()) vv *= branch;
    add_inplace(ws_.x, ws_.attn_out);

    // --- MLP ---
    ws_.normed = ws_.x;
    rmsnorm_rows(ws_.normed, lw.mlp_norm_gain);
    mm.matmul(ws_.normed, h.w_gate, ws_.gate);
    mm.matmul(ws_.normed, h.w_up, ws_.up);
    for (int r = 0; r < batch; ++r) nl.silu(ws_.gate.row(r));
    const std::span<float> g = ws_.gate.flat();
    const std::span<const float> u = ws_.up.flat();
    for (std::size_t i = 0; i < g.size(); ++i) g[i] *= u[i];
    mm.matmul(ws_.gate, h.w_down, ws_.down);
    for (float& vv : ws_.down.flat()) vv *= branch;
    add_inplace(ws_.x, ws_.down);
  }

  // LM head. Default mode gathers each group's LAST row only: mid-chunk
  // prompt logits are never used (a prompt's intermediate next-token
  // distributions are discarded), so the vocab GEMM runs at M = groups,
  // not M = batch. With every count == 1 the gather copies the whole
  // batch in order, and each output row stays the same independent serial
  // accumulation — the pre-chunk step_batch result, bit for bit.
  // kAllRows keeps every row (the speculative verify window): only the
  // gather changes, so a row surfaced by both modes is the same floats
  // through the same final-norm + GEMM — bit-identical.
  if (mode == LogitsMode::kAllRows) {
    ws_.last.resize(batch, d);
    const std::span<const float> src = ws_.x.flat();
    const std::span<float> dst = ws_.last.flat();
    std::copy(src.begin(), src.end(), dst.begin());
  } else {
    ws_.last.resize(groups, d);
    for (int g = 0, r = 0; g < groups; ++g) {
      r += counts[static_cast<std::size_t>(g)] - 1;
      const std::span<const float> src = ws_.x.row(r);
      const std::span<float> dst = ws_.last.row(g);
      std::copy(src.begin(), src.end(), dst.begin());
      ++r;
    }
  }
  rmsnorm_rows(ws_.last, w.final_norm_gain);
  mm.matmul(ws_.last, model_.lm_head_handle(), logits_out);
  const float scale = model_.logit_scale();
  for (float& vv : logits_out.flat()) vv *= scale;
}

}  // namespace bbal::llm
