// Incremental (KV-cached) decoding: token-by-token generation used to
// synthesise evaluation streams from the FP32 model, to drive the
// decode-phase runtime study (Fig. 1b workload shapes) and to execute the
// per-request forward steps of the serving engine (serve::Engine).
//
// Attention state is accessed through KVCacheView, so the same step
// arithmetic runs over any storage layout: the classic contiguous KVCache
// value type below (decoder-owned for step(token), caller-owned for
// step(token, cache)) or the serving engine's block-paged pool
// (serve::PagedKVPool), whose pages are shared across requests with a
// common prompt prefix. The step reads identical floats in identical order
// through either view, so the two layouts are bit-identical by
// construction (tested in test_paged_kv).
#pragma once

#include <cassert>
#include <span>
#include <vector>

#include "llm/transformer.hpp"

namespace bbal::llm {

/// Per-sequence attention state: cached keys/values per layer, rows =
/// positions seen so far. Cheap to move; independent of any Decoder.
struct KVCache {
  KVCache() = default;
  explicit KVCache(int n_layers)
      : k(static_cast<std::size_t>(n_layers)),
        v(static_cast<std::size_t>(n_layers)) {}

  /// Positions cached so far (the context length of the sequence).
  [[nodiscard]] int length() const {
    return k.empty() ? 0 : static_cast<int>(k.front().size());
  }
  /// Drop all cached positions but keep the per-layer structure.
  void clear() {
    for (auto& layer : k) layer.clear();
    for (auto& layer : v) layer.clear();
  }

  // Per layer: cached keys/values, rows = positions seen so far.
  std::vector<std::vector<std::vector<float>>> k;
  std::vector<std::vector<std::vector<float>>> v;
};

/// Storage-agnostic access to one sequence's attention state. One decode
/// step advances a sequence by n >= 1 new positions (n == 1 for decode,
/// n == chunk for chunked prefill) and follows a strict protocol the
/// implementations may rely on:
///
///   1. length() is read once, before any append — the first of the n
///      positions the step writes is length(), the last length()+n-1;
///   2. for each layer l in order 0..n_layers-1, append(l, pos, k, v) is
///      called exactly once per new position, positions in increasing
///      order starting at length(); every layer appends the same position
///      set;
///   3. k_at/v_at are only called for layer l after append(l, pos, ...),
///      with pos <= the largest position appended for l so far, and the
///      returned spans stay valid for the rest of the step (no
///      reallocation mid-step);
///   4. the n new positions commit to length() once the last layer's
///      appends land.
///
/// An implementation whose length() is derived from storage (e.g. the
/// contiguous KVCacheRef below) may therefore report a transiently
/// inconsistent length mid-step; the decoder never observes it.
class KVCacheView {
 public:
  virtual ~KVCacheView() = default;
  /// Positions cached so far (the context length before this step).
  [[nodiscard]] virtual int length() const = 0;
  /// Store this step's K/V row for `layer` at position `pos`. `pos` is
  /// explicit (not derived from length()) because a chunked step appends
  /// several positions per layer before any of them commit to length().
  virtual void append(int layer, int pos, std::span<const float> k_row,
                      std::span<const float> v_row) = 0;
  /// Cached K/V row of `layer` at `pos` (d_model floats).
  [[nodiscard]] virtual std::span<const float> k_at(int layer,
                                                    int pos) const = 0;
  [[nodiscard]] virtual std::span<const float> v_at(int layer,
                                                    int pos) const = 0;
};

/// KVCacheView over a contiguous KVCache: the adapter the value-type APIs
/// (step(token) / step(token, cache)) run through.
class KVCacheRef final : public KVCacheView {
 public:
  explicit KVCacheRef(KVCache& cache) : cache_(cache) {}

  [[nodiscard]] int length() const override { return cache_.length(); }
  void append(int layer, int pos, std::span<const float> k_row,
              std::span<const float> v_row) override {
    // Contiguous storage appends in position order by construction.
    assert(pos ==
           static_cast<int>(cache_.k[static_cast<std::size_t>(layer)].size()));
    (void)pos;
    cache_.k[static_cast<std::size_t>(layer)].emplace_back(k_row.begin(),
                                                           k_row.end());
    cache_.v[static_cast<std::size_t>(layer)].emplace_back(v_row.begin(),
                                                           v_row.end());
  }
  [[nodiscard]] std::span<const float> k_at(int layer,
                                            int pos) const override {
    return cache_.k[static_cast<std::size_t>(layer)]
                  [static_cast<std::size_t>(pos)];
  }
  [[nodiscard]] std::span<const float> v_at(int layer,
                                            int pos) const override {
    return cache_.v[static_cast<std::size_t>(layer)]
                  [static_cast<std::size_t>(pos)];
  }

 private:
  KVCache& cache_;
};

class Decoder {
 public:
  /// Borrows the transformer (weights + backends) for its lifetime.
  explicit Decoder(Transformer& model);

  /// Clear the decoder-owned KV cache.
  void reset();

  /// Feed one token into the decoder-owned cache; returns the logits for
  /// the next-token distribution.
  [[nodiscard]] std::vector<float> step(int token);

  /// Feed one token into a caller-owned cache (serving engine path). The
  /// cache must come from make_cache() (or a moved-from equivalent) of a
  /// model with the same layer count. Bit-identical to the owned-cache
  /// step at the same context.
  [[nodiscard]] std::vector<float> step(int token, KVCache& cache);

  /// Feed one token through an arbitrary cache view (paged serving path).
  /// The view must hold state of a model with this decoder's layer count
  /// and d_model, and must have capacity for one more position. All the
  /// step() overloads run this arithmetic and are bit-identical at the
  /// same context.
  [[nodiscard]] std::vector<float> step(int token, KVCacheView& view);

  /// Fused batched step: advance tokens.size() independent sequences by
  /// one position in a single forward pass. Row r of the stacked
  /// (batch x d_model) activation matrix carries sequence r, so every
  /// projection (QKV, attention output, FFN up/down, logits) is one GEMM
  /// over the whole batch instead of batch M=1 calls — activations are
  /// quantised once per projection, and llm::matmul's row tiling spreads
  /// the batch over the thread pool. Attention stays per sequence over
  /// its own KVCacheView (ragged contexts are fine: each row attends over
  /// its own length), and because every llm::matmul output row is an
  /// independent serial accumulation, row r is bit-identical to a step()
  /// of sequence r alone — at any BBAL_THREADS (tested in test_decoder).
  ///
  /// tokens and views must be the same non-zero size, views non-null and
  /// distinct. logits_out is resized to (batch x vocab) reusing its
  /// storage; together with the decoder's persistent per-layer workspace
  /// this makes the steady-state loop allocation-free. Rows follow the
  /// caller's order, so retiring or back-filling sequences between calls
  /// just changes which views are passed.
  void step_batch(std::span<const int> tokens,
                  std::span<KVCacheView* const> views, Matrix& logits_out);

  /// Grouped fused step — the mixed prefill/decode tick primitive. The
  /// batch is split into views.size() groups: group g receives counts[g]
  /// consecutive tokens (counts[g] >= 1) appended to views[g] at positions
  /// length()..length()+counts[g]-1. All groups stack into ONE activation
  /// matrix of sum(counts) rows, so each projection stays a single batched
  /// GEMM whether a row is a decode step (count 1) or part of a prefill
  /// chunk; attention is causal within a chunk — row i of a group attends
  /// over positions 0..length()+i of its own view, reading the chunk's
  /// earlier rows back through the view exactly as a later step would.
  ///
  /// With the default LogitsMode::kLastPerGroup, logits_out is resized to
  /// (views.size() x vocab): one row per GROUP, the logits after each
  /// group's LAST token (mid-chunk positions never reach the LM head — a
  /// prompt's intermediate logits are discarded anyway, so the vocab GEMM
  /// runs at M = groups, not M = total rows).
  ///
  /// LogitsMode::kAllRows instead surfaces every batch row's logits —
  /// logits_out becomes (sum(counts) x vocab), row r the next-token
  /// distribution after the r-th stacked token. This is the speculative
  /// verify window: a target backend feeds [x0, d1..dk] as one group of
  /// k+1 rows and checks each drafted token against the argmax of the row
  /// before it (docs/SPECULATIVE.md). Row contents are unchanged — the
  /// mode only decides which rows reach the final-norm + LM-head GEMM, so
  /// the rows the default mode surfaces are bit-identical in both modes.
  ///
  /// Bit-identity: every output row of every projection is an independent
  /// serial accumulation over the same floats a one-token-per-step run
  /// would produce, and attention reads identical K/V floats in identical
  /// order, so a chunked prefill stream is bit-identical to the unchunked
  /// stream at any BBAL_THREADS (tested in test_decoder / test_serve).
  /// step_batch is exactly this call with every count == 1.
  enum class LogitsMode {
    kLastPerGroup,  ///< one logits row per group (its last token)
    kAllRows,       ///< one logits row per stacked token (verify window)
  };
  void step_groups(std::span<const int> tokens,
                   std::span<KVCacheView* const> views,
                   std::span<const int> counts, Matrix& logits_out,
                   LogitsMode mode = LogitsMode::kLastPerGroup);

  /// Chunked prefill of one sequence: feed tokens.size() prompt tokens
  /// through `view` in one grouped step — one (chunk x d_model) GEMM per
  /// projection instead of chunk M=1 steps. logits_out gets one row: the
  /// logits after the final token of the chunk.
  void prefill_chunk(std::span<const int> tokens, KVCacheView& view,
                     Matrix& logits_out);

  /// A fresh, empty cache sized for this decoder's model.
  [[nodiscard]] KVCache make_cache() const;

  /// Current context length of the decoder-owned cache.
  [[nodiscard]] int context_length() const { return cache_.length(); }

 private:
  /// Per-layer scratch reused across step_batch calls (and by the
  /// single-token step() overloads, which run as a batch of one): after
  /// the first call at a given batch size and context, no step allocates.
  struct BatchWorkspace {
    Matrix x;         ///< running hidden state, batch x d_model
    Matrix normed;    ///< RMSNorm input copy (attention + MLP)
    Matrix q, k, v;   ///< QKV projections, batch x d_model
    Matrix context;   ///< attention mix, batch x d_model
    Matrix attn_out;  ///< output projection
    Matrix gate, up, down;  ///< FFN activations
    Matrix logits;    ///< single-step logits (step() overloads)
    Matrix last;      ///< gathered per-group last rows (LM head input)
    std::vector<int> pos;  ///< per-row write position, read pre-append
    std::vector<int> ones;  ///< all-ones counts (step_batch forwarding)
    std::vector<std::span<const float>> krows, vrows;  ///< hoisted rows
    std::vector<float> scores;  ///< per-head attention scores
  };

  Transformer& model_;
  KVCache cache_;
  BatchWorkspace ws_;
};

}  // namespace bbal::llm
