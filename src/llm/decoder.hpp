// Incremental (KV-cached) decoding: token-by-token generation used to
// synthesise evaluation streams from the FP32 model, to drive the
// decode-phase runtime study (Fig. 1b workload shapes) and to execute the
// per-request forward steps of the serving engine (serve::Engine).
//
// The KV cache is a value type owned by the caller: a Decoder carries one
// for the classic single-sequence API (step(token)), while the serving
// engine owns one KVCache per in-flight request and passes it explicitly
// (step(token, cache)) so a fixed pool of decoders can serve an unbounded
// stream of requests.
#pragma once

#include <vector>

#include "llm/transformer.hpp"

namespace bbal::llm {

/// Per-sequence attention state: cached keys/values per layer, rows =
/// positions seen so far. Cheap to move; independent of any Decoder.
struct KVCache {
  KVCache() = default;
  explicit KVCache(int n_layers)
      : k(static_cast<std::size_t>(n_layers)),
        v(static_cast<std::size_t>(n_layers)) {}

  /// Positions cached so far (the context length of the sequence).
  [[nodiscard]] int length() const {
    return k.empty() ? 0 : static_cast<int>(k.front().size());
  }
  /// Drop all cached positions but keep the per-layer structure.
  void clear() {
    for (auto& layer : k) layer.clear();
    for (auto& layer : v) layer.clear();
  }

  // Per layer: cached keys/values, rows = positions seen so far.
  std::vector<std::vector<std::vector<float>>> k;
  std::vector<std::vector<std::vector<float>>> v;
};

class Decoder {
 public:
  /// Borrows the transformer (weights + backends) for its lifetime.
  explicit Decoder(Transformer& model);

  /// Clear the decoder-owned KV cache.
  void reset();

  /// Feed one token into the decoder-owned cache; returns the logits for
  /// the next-token distribution.
  [[nodiscard]] std::vector<float> step(int token);

  /// Feed one token into a caller-owned cache (serving engine path). The
  /// cache must come from make_cache() (or a moved-from equivalent) of a
  /// model with the same layer count. Bit-identical to the owned-cache
  /// step at the same context.
  [[nodiscard]] std::vector<float> step(int token, KVCache& cache);

  /// A fresh, empty cache sized for this decoder's model.
  [[nodiscard]] KVCache make_cache() const;

  /// Current context length of the decoder-owned cache.
  [[nodiscard]] int context_length() const { return cache_.length(); }

 private:
  Transformer& model_;
  KVCache cache_;
};

}  // namespace bbal::llm
