// Incremental (KV-cached) decoding: token-by-token generation used to
// synthesise evaluation streams from the FP32 model and to drive the
// decode-phase runtime study (Fig. 1b workload shapes).
#pragma once

#include <vector>

#include "llm/transformer.hpp"

namespace bbal::llm {

class Decoder {
 public:
  /// Borrows the transformer (weights + backends) for its lifetime.
  explicit Decoder(Transformer& model);

  /// Clear the KV cache.
  void reset();

  /// Feed one token; returns the logits for the next-token distribution.
  [[nodiscard]] std::vector<float> step(int token);

  /// Current context length.
  [[nodiscard]] int context_length() const { return ctx_len_; }

 private:
  Transformer& model_;
  // Per layer: cached keys/values, rows = positions seen so far.
  std::vector<std::vector<std::vector<float>>> k_cache_;
  std::vector<std::vector<std::vector<float>>> v_cache_;
  int ctx_len_ = 0;
};

}  // namespace bbal::llm
