// Request/response types of the serving engine (serve::Engine): what a
// client submits, what it gets back per request, and the aggregate report
// the benchmarks and the CI serving gate consume.
//
// Two clocks run through every metric:
//  - *Simulated* seconds come from replaying each engine step's GEMM
//    workload on the cycle-level accelerator model (accel::simulate_
//    workload), exactly like Session's cost half. They are deterministic —
//    bit-identical across hosts and thread counts — which is what lets
//    BENCH_serve.json gate TTFT/latency percentiles in CI.
//  - *Wall* seconds are host wall-clock, reported for operators but kept
//    out of the gated report rows (machine-dependent).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bbal::serve {

/// One generation request: a prompt, a completion budget and an
/// open-loop arrival time. Sampling is greedy (argmax, lowest index wins
/// ties), so a request's continuation is a pure function of
/// (model, strategy, prompt).
struct Request {
  std::vector<int> prompt;  ///< token ids in [0, vocab)
  int max_new_tokens = 16;  ///< completion budget (> 0)
  /// Engine tick (one fused decode step = one tick) at which the request
  /// becomes visible to the scheduler: the engine never admits it
  /// earlier, however idle. 0 — the default — is the closed-loop case
  /// (present at run start), which keeps every pre-open-loop workload
  /// byte-exact. Stamped by serve::load's arrival generators; negative
  /// values are reported as error results.
  std::int64_t arrival_tick = 0;
  /// Engine tick at which the request expires: once the clock reaches it,
  /// the request retires gracefully with whatever tokens it has (reason
  /// `timeout`). 0 — the default — means no deadline, which keeps every
  /// committed BENCH row byte-exact. Must be > arrival_tick when set.
  std::int64_t deadline_tick = 0;
};

/// Why a request stopped short of its completion budget. Every retirement
/// path is typed: a request either completes ok, fails validation before
/// the run (kInvalid), or ends on one of the graceful reasons below with
/// its partial output preserved. There is no untyped failure.
enum class FinishReason {
  kNone = 0,                  ///< completed normally (ok)
  kInvalid,                   ///< rejected before the run (bad input)
  kTimeout,                   ///< deadline_tick reached mid-run
  kCancelled,                 ///< FaultPlan client cancellation
  kPreemptedUnrecoverable,    ///< preempted more than max_preemptions times
  kOom,                       ///< KV pool exhausted and preemption off
};

/// Stable lowercase name ("timeout", "cancelled", ...) for report text.
[[nodiscard]] const char* finish_reason_name(FinishReason reason);

/// Per-request outcome. Timing fields are populated when the engine has an
/// accelerator attached (has_cost in the report); wall fields always.
struct RequestResult {
  std::uint64_t id = 0;  ///< submit() order, starting at 0
  bool ok = false;
  std::string error;  ///< set when !ok (bad prompt, bad budget)
  /// Typed retirement reason when !ok (kNone when ok). Always set
  /// alongside `error` — no request finishes with an untyped failure;
  /// `generated` keeps the partial stream for every mid-run reason.
  FinishReason reason = FinishReason::kNone;
  /// Times this flight was suspended (KV pages released) and requeued.
  /// Non-zero only when Engine::Options::preempt is on or a FaultPlan
  /// injected a transient reserve failure.
  int preemptions = 0;

  std::vector<int> generated;  ///< the greedy continuation
  int prompt_tokens = 0;
  /// Prompt positions attached from shared KV pages instead of being
  /// recomputed (non-zero only under a prefix-sharing policy).
  int shared_prompt_tokens = 0;
  int steps = 0;  ///< engine ticks this request was active for

  // Open-loop queueing (exact, clock-independent). For closed-loop
  // requests arrival_tick is 0 and queue_ticks counts slot contention
  // alone — admission waiting was always part of TTFT, it now has its
  // own name.
  std::int64_t arrival_tick = 0;  ///< as submitted
  std::int64_t admit_tick = 0;    ///< engine clock when a slot was granted
  std::int64_t queue_ticks = 0;   ///< admit_tick - arrival_tick
  /// Engine clock at the first generated token (-1 until it exists): the
  /// tick-domain TTFT — with chunked prefill a prompt of P tokens costs
  /// about ceil(P/chunk) ticks instead of P (bench_prefill's gate).
  /// Clock-exact and deterministic; not serialised in BENCH rows.
  std::int64_t first_token_tick = -1;
  /// Largest simulated gap between consecutive generated tokens — the
  /// stall a streaming client would notice (0 until the second token).
  double max_inter_token_seconds = 0.0;
  /// Completed within the run's SLO (always false unless an Slo was
  /// configured and the engine prices time, i.e. report.has_slo).
  bool slo_ok = false;

  /// Simulated time from arrival until the first generated token —
  /// queueing delay included, the client-visible TTFT. For an open-loop
  /// request the arrival instant is the simulated time at which its
  /// arrival_tick began.
  double ttft_seconds = 0.0;
  /// Simulated time from arrival until completion.
  double total_seconds = 0.0;
  /// generated / total_seconds (0 when no accelerator is attached).
  double tokens_per_second = 0.0;
  /// Host wall-clock from arrival until the first generated token.
  double ttft_wall_seconds = 0.0;
  /// Host wall-clock from arrival until completion.
  double wall_seconds = 0.0;
};

/// Aggregate serving metrics over one Engine::run(). to_json() emits one
/// flat object — a BENCH_serve.json row — containing only deterministic
/// fields (token counts, stream hash, simulated rates); wall-clock stays
/// in the recorder's meta block.
struct Report {
  std::string model;
  std::string matmul;
  std::string nonlinear;
  std::string policy;  ///< scheduler policy name ("fifo", "sjf", ...)
  /// KV-cache page storage format ("FP32", "INT8", "BFP4", "BBFP(4,2)");
  /// quant::KvFormat::name() of the engine's pool. Part of the
  /// bench_compare row key, so frontier rows that differ only in KV
  /// format diff cleanly.
  std::string kv_format;
  /// Workload provenance descriptor (e.g. "poisson(rate=0.1,seed=2024)"),
  /// set by the recording tool — the engine does not know how its
  /// requests were generated. Emitted in to_json() when non-empty and
  /// part of the bench_compare row key, so every BENCH row names the
  /// traffic that produced it.
  std::string workload;
  int max_batch = 0;
  /// Chunked-prefill configuration of the run (Engine::Options). Emitted
  /// in to_json() only when chunking is on (prefill_chunk > 1 or a
  /// budget is set), so default-configured BENCH rows stay byte-exact
  /// with the pre-chunking engine.
  int prefill_chunk = 1;
  int prefill_budget = 0;
  /// Speculative-decoding configuration: the draft backend's matmul
  /// strategy ("" when off) and the per-cycle draft window. Part of the
  /// bench_compare row key, so speculative frontier rows never collide
  /// with their target-only siblings. Emitted in to_json() — with the
  /// whole speculative block below — only when speculation is on, so
  /// default rows stay byte-exact with the pre-speculative engine.
  std::string draft;
  int draft_k = 0;
  /// Robustness configuration: the run's fault plan (FaultPlan::
  /// describe(), "" when empty) and whether decode preemption was on.
  /// The fault block — these two plus the robustness counters below — is
  /// emitted in to_json() only when has_faults, so default-configured
  /// BENCH rows stay byte-exact with the pre-faults engine.
  std::string fault_plan;
  bool preempt = false;
  bool has_faults = false;  ///< faults/preempt/deadlines were configured
  bool has_cost = false;  ///< simulated timing fields are meaningful
  bool has_slo = false;   ///< an Slo was configured (and has_cost holds)

  std::vector<RequestResult> results;  ///< submit() order

  std::int64_t requests = 0;       ///< submitted
  std::int64_t completed = 0;      ///< finished with ok
  std::int64_t prompt_tokens = 0;  ///< across completed requests
  std::int64_t generated_tokens = 0;
  std::int64_t engine_steps = 0;  ///< ticks the batch loop executed
  /// Final engine clock: decode ticks plus idle jumps to the next
  /// arrival. engine_steps == clock_ticks on a closed-loop run; the gap
  /// between them is time the engine sat idle waiting for traffic.
  std::int64_t clock_ticks = 0;
  /// Ticks whose fused step carried both prefill rows and decode rows —
  /// the interleaving chunked-prefill scheduling exists to create.
  /// Deterministic; emitted in to_json() with the prefill block.
  std::int64_t mixed_ticks = 0;
  /// Mean number of active requests per tick (batching effectiveness).
  double mean_batch_occupancy = 0.0;

  // Speculative-decoding accounting (draft_k > 0 runs only; exact and
  // deterministic — acceptance is a pure function of the model, the two
  // strategies and the request mix, at any BBAL_THREADS).
  std::int64_t draft_cycles = 0;     ///< speculation cycles executed
  std::int64_t drafted_tokens = 0;   ///< proposals fed to verification
  std::int64_t accepted_tokens = 0;  ///< proposals that matched the target
  /// accepted_tokens / drafted_tokens (0 when nothing was drafted).
  /// Exact-gated by bench_compare: determinism is part of the contract.
  double acceptance_rate = 0.0;
  /// Simulated seconds a target-only engine would have spent on the same
  /// streams, over this run's simulated seconds (valid when has_cost;
  /// > 1.0 means speculation paid for its draft forwards). The
  /// counterfactual is priced exactly: one decode_step_gemms workload per
  /// emitted token at its context, on the same target accelerator —
  /// simulated cost is additive over GEMMs, so batching does not blur it.
  double speedup_vs_target = 0.0;

  // Robustness accounting (has_faults runs only; exact and deterministic
  // — every event is keyed by the simulated tick, at any BBAL_THREADS).
  std::int64_t preemptions = 0;  ///< flights suspended (KV pages released)
  std::int64_t resumes = 0;      ///< suspended flights re-admitted
  /// Mean ticks a suspended flight waited between suspension and
  /// re-admission (0 when nothing was preempted).
  double requeue_delay_mean_ticks = 0.0;
  /// KV rows re-prefilled on resume (prompt + generated-so-far minus the
  /// shared prefix) — the work preemption throws away.
  std::int64_t preempt_recompute_tokens = 0;
  /// Simulated seconds spent re-prefilling resumed flights on the
  /// accelerator model (valid when has_cost; included in total_seconds)
  /// — the recompute price a preemption pays for its freed pages.
  double preempt_recompute_seconds = 0.0;
  std::int64_t timeouts = 0;       ///< retired at deadline_tick
  std::int64_t cancellations = 0;  ///< FaultPlan client cancels honoured
  /// Typed oom + preempted_unrecoverable retirements (pool pressure the
  /// engine could not absorb).
  std::int64_t oom_failures = 0;

  // Open-loop queueing aggregates (completed requests; exact ticks).
  double queue_delay_mean_ticks = 0.0;
  double queue_delay_p99_ticks = 0.0;
  /// Offered load: completion tokens demanded per clock tick of the
  /// arrival span — what the clients asked for, independent of what the
  /// engine achieved. On a closed-loop run the span is one tick, so this
  /// degenerates to the total demand.
  double offered_tokens_per_tick = 0.0;
  /// Achieved service rate: generated tokens per elapsed clock tick.
  /// Tracks offered load until saturation, then plateaus at capacity —
  /// the knee bench_serve_slo charts.
  double throughput_tokens_per_tick = 0.0;
  /// FNV-1a over (id, generated tokens) of completed requests: one exact
  /// CI field that pins every token of every stream.
  std::uint32_t stream_hash = 0;
  /// Bytes of quantised weight storage held by the engine's one shared
  /// backend. Deterministic, and independent of max_batch — the fused
  /// datapath prepares weights exactly once per engine, not per slot.
  std::int64_t weights_bytes = 0;

  // Paged KV-cache metrics (serve::PagedKVPool). Deterministic: page
  // traffic is a pure function of the request mix and the policy.
  std::int64_t kv_pages_allocated = 0;  ///< cumulative fresh page allocs
  /// Peak pool payload in use, in *packed* (post-quantisation) bytes of
  /// the run's kv_format — the resident-cache metric a quantised format
  /// shrinks. Equals the FP32 float payload when kv_format is "FP32".
  std::int64_t kv_bytes_peak = 0;
  /// What PR 3's per-request monolithic FP32 caches would have held at the
  /// same peak tick: the format-independent yardstick both the paging and
  /// the quantisation savings are measured against.
  std::int64_t kv_bytes_peak_contiguous = 0;
  /// Prompt tokens served from shared pages / prompt tokens offered.
  double prefix_hit_rate = 0.0;
  /// Mean pages-in-use per tick over pool capacity.
  double kv_pool_occupancy = 0.0;

  // Simulated aggregates (valid when has_cost).
  std::int64_t simulated_macs = 0;
  double total_seconds = 0.0;  ///< sum of per-tick simulated latencies
  double throughput_tokens_per_second = 0.0;
  double ttft_mean_seconds = 0.0;
  double p50_step_seconds = 0.0;  ///< percentiles over per-token latencies
  double p95_step_seconds = 0.0;
  double p99_step_seconds = 0.0;
  /// TTFT tail over completed requests (ttft_mean_seconds's p99 sibling;
  /// queueing delay included — the SLO-facing latency).
  double p99_ttft_seconds = 0.0;
  /// Percentiles over gaps between consecutive generated tokens of the
  /// same request, measured on the global simulated clock. Today a
  /// request steps every tick once admitted, so gaps equal tick
  /// latencies — but these are defined per request and stay correct if a
  /// future engine pauses mid-decode (chunked prefill, preemption).
  double p50_inter_token_seconds = 0.0;
  double p95_inter_token_seconds = 0.0;
  double p99_inter_token_seconds = 0.0;

  // SLO accounting (valid when has_slo; see serve::Slo in load.hpp).
  double slo_ttft_seconds = 0.0;  ///< the configured thresholds
  double slo_inter_token_seconds = 0.0;
  std::int64_t slo_met = 0;  ///< completed requests within the SLO
  /// slo_met / requests *submitted* — errors and never-completed
  /// requests count against goodput, which is what makes overload
  /// visible.
  double goodput_under_slo = 0.0;
  double energy_j = 0.0;  ///< accelerator + KV buffer energy
  /// KV-cache SRAM access energy (hw::sram over the pool's footprint),
  /// already included in energy_j.
  double kv_energy_j = 0.0;

  double wall_seconds = 0.0;  ///< host wall-clock of run(); never gated

  /// Flat JSON row for tools/record_serve; deterministic fields only.
  [[nodiscard]] std::string to_json() const;
};

}  // namespace bbal::serve
