// Request/response types of the serving engine (serve::Engine): what a
// client submits, what it gets back per request, and the aggregate report
// the benchmarks and the CI serving gate consume.
//
// Two clocks run through every metric:
//  - *Simulated* seconds come from replaying each engine step's GEMM
//    workload on the cycle-level accelerator model (accel::simulate_
//    workload), exactly like Session's cost half. They are deterministic —
//    bit-identical across hosts and thread counts — which is what lets
//    BENCH_serve.json gate TTFT/latency percentiles in CI.
//  - *Wall* seconds are host wall-clock, reported for operators but kept
//    out of the gated report rows (machine-dependent).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bbal::serve {

/// One generation request: a prompt and a completion budget. Sampling is
/// greedy (argmax, lowest index wins ties), so a request's continuation is
/// a pure function of (model, strategy, prompt).
struct Request {
  std::vector<int> prompt;  ///< token ids in [0, vocab)
  int max_new_tokens = 16;  ///< completion budget (> 0)
};

/// Per-request outcome. Timing fields are populated when the engine has an
/// accelerator attached (has_cost in the report); wall fields always.
struct RequestResult {
  std::uint64_t id = 0;  ///< submit() order, starting at 0
  bool ok = false;
  std::string error;  ///< set when !ok (bad prompt, bad budget)

  std::vector<int> generated;  ///< the greedy continuation
  int prompt_tokens = 0;
  /// Prompt positions attached from shared KV pages instead of being
  /// recomputed (non-zero only under a prefix-sharing policy).
  int shared_prompt_tokens = 0;
  int steps = 0;  ///< engine ticks this request was active for

  /// Simulated time from arrival (run start) until the first generated
  /// token — queueing delay included, the client-visible TTFT.
  double ttft_seconds = 0.0;
  /// Simulated time from arrival until completion.
  double total_seconds = 0.0;
  /// generated / total_seconds (0 when no accelerator is attached).
  double tokens_per_second = 0.0;
  /// Host wall-clock from arrival until the first generated token.
  double ttft_wall_seconds = 0.0;
  /// Host wall-clock from arrival until completion.
  double wall_seconds = 0.0;
};

/// Aggregate serving metrics over one Engine::run(). to_json() emits one
/// flat object — a BENCH_serve.json row — containing only deterministic
/// fields (token counts, stream hash, simulated rates); wall-clock stays
/// in the recorder's meta block.
struct Report {
  std::string model;
  std::string matmul;
  std::string nonlinear;
  std::string policy;  ///< scheduler policy name ("fifo", "sjf", ...)
  int max_batch = 0;
  bool has_cost = false;  ///< simulated timing fields are meaningful

  std::vector<RequestResult> results;  ///< submit() order

  std::int64_t requests = 0;       ///< submitted
  std::int64_t completed = 0;      ///< finished with ok
  std::int64_t prompt_tokens = 0;  ///< across completed requests
  std::int64_t generated_tokens = 0;
  std::int64_t engine_steps = 0;  ///< ticks the batch loop executed
  /// Mean number of active requests per tick (batching effectiveness).
  double mean_batch_occupancy = 0.0;
  /// FNV-1a over (id, generated tokens) of completed requests: one exact
  /// CI field that pins every token of every stream.
  std::uint32_t stream_hash = 0;
  /// Bytes of quantised weight storage held by the engine's one shared
  /// backend. Deterministic, and independent of max_batch — the fused
  /// datapath prepares weights exactly once per engine, not per slot.
  std::int64_t weights_bytes = 0;

  // Paged KV-cache metrics (serve::PagedKVPool). Deterministic: page
  // traffic is a pure function of the request mix and the policy.
  std::int64_t kv_pages_allocated = 0;  ///< cumulative fresh page allocs
  std::int64_t kv_bytes_peak = 0;       ///< peak pool payload in use
  /// What PR 3's per-request monolithic caches would have held at the same
  /// peak tick: the paged-vs-contiguous memory comparison the bench gates.
  std::int64_t kv_bytes_peak_contiguous = 0;
  /// Prompt tokens served from shared pages / prompt tokens offered.
  double prefix_hit_rate = 0.0;
  /// Mean pages-in-use per tick over pool capacity.
  double kv_pool_occupancy = 0.0;

  // Simulated aggregates (valid when has_cost).
  std::int64_t simulated_macs = 0;
  double total_seconds = 0.0;  ///< sum of per-tick simulated latencies
  double throughput_tokens_per_second = 0.0;
  double ttft_mean_seconds = 0.0;
  double p50_step_seconds = 0.0;  ///< percentiles over per-token latencies
  double p95_step_seconds = 0.0;
  double p99_step_seconds = 0.0;
  double energy_j = 0.0;  ///< accelerator + KV buffer energy
  /// KV-cache SRAM access energy (hw::sram over the pool's footprint),
  /// already included in energy_j.
  double kv_energy_j = 0.0;

  double wall_seconds = 0.0;  ///< host wall-clock of run(); never gated

  /// Flat JSON row for tools/record_serve; deterministic fields only.
  [[nodiscard]] std::string to_json() const;
};

}  // namespace bbal::serve
