#include "serve/paged_kv.hpp"

#include <algorithm>
#include <cassert>
#include <string>

namespace bbal::serve {

PagedKVPool::PagedKVPool(const llm::ModelConfig& config, Options options)
    : config_(config),
      options_(options),
      codec_(options.kv_format, config.d_model) {
  assert(options_.page_tokens > 0 && options_.max_pages > 0);
  pages_.resize(static_cast<std::size_t>(options_.max_pages));
  // Stack of free ids, highest first, so allocation order is 0, 1, 2, ...
  free_pages_.reserve(pages_.size());
  for (int p = options_.max_pages - 1; p >= 0; --p) free_pages_.push_back(p);
}

std::size_t PagedKVPool::row_offset(int layer, int slot) const {
  return (static_cast<std::size_t>(layer) *
              static_cast<std::size_t>(options_.page_tokens) +
          static_cast<std::size_t>(slot)) *
         codec_.encoded_row_bytes();
}

std::int64_t PagedKVPool::page_bytes() const {
  return static_cast<std::int64_t>(config_.n_layers) * options_.page_tokens *
         2 * encoded_row_bytes();
}

int PagedKVPool::pages_for(int total_positions) const {
  return (total_positions + options_.page_tokens - 1) / options_.page_tokens;
}

// --- Page bookkeeping --------------------------------------------------------

Result<int> PagedKVPool::allocate_page() {
  if (free_pages_.empty() && !prefixes_.empty()) {
    // Reclaim shareable-but-idle prompt pages before giving up; eviction
    // order is deterministic (oldest last_use first).
    while (free_pages_.empty() && evict_one_prefix()) {
    }
  }
  if (free_pages_.empty())
    return Result<int>::error(
        "KV pool exhausted: " + std::to_string(options_.max_pages) +
        " pages of " + std::to_string(options_.page_tokens) +
        " tokens all in use");
  const int id = free_pages_.back();
  free_pages_.pop_back();
  Page& page = pages_[static_cast<std::size_t>(id)];
  const std::size_t bytes = row_offset(config_.n_layers, 0);
  if (page.k.size() != bytes) {
    page.k.assign(bytes, std::uint8_t{0});
    page.v.assign(bytes, std::uint8_t{0});
  }
  page.refs = 1;
  ++stats_.pages_allocated;
  ++stats_.pages_in_use;
  stats_.pages_in_use_peak =
      std::max(stats_.pages_in_use_peak, stats_.pages_in_use);
  return id;
}

void PagedKVPool::ref_page(int page) {
  ++pages_[static_cast<std::size_t>(page)].refs;
}

void PagedKVPool::unref_page(int page) {
  Page& p = pages_[static_cast<std::size_t>(page)];
  assert(p.refs > 0);
  if (--p.refs == 0) {
    free_pages_.push_back(page);
    --stats_.pages_in_use;
  }
}

bool PagedKVPool::evict_one_prefix() {
  if (prefixes_.empty()) return false;
  const auto oldest =
      std::min_element(prefixes_.begin(), prefixes_.end(),
                       [](const PrefixEntry& a, const PrefixEntry& b) {
                         return a.last_use < b.last_use;
                       });
  const int before = stats_.pages_in_use;
  for (const int page : oldest->pages) unref_page(page);
  stats_.pages_evicted += before - stats_.pages_in_use;
  prefixes_.erase(oldest);
  return true;
}

void PagedKVPool::drop_registered_prefixes() {
  while (evict_one_prefix()) {
  }
}

// --- Sequence lifecycle ------------------------------------------------------

PagedKVPool::SeqId PagedKVPool::create() {
  Sequence seq;
  seq.alive = true;
  sequences_.push_back(std::move(seq));
  return static_cast<SeqId>(sequences_.size() - 1);
}

int PagedKVPool::best_prefix_match(std::span<const int> prompt,
                                   int* match_pages) const {
  // Sharing stays strictly below the prompt length: the final prompt
  // position must be recomputed so the request owns its logits.
  const int usable = static_cast<int>(prompt.size()) - 1;
  int best = -1;
  int best_pages = 0;
  for (std::size_t e = 0; e < prefixes_.size(); ++e) {
    const PrefixEntry& entry = prefixes_[e];
    const int limit =
        std::min(static_cast<int>(entry.tokens.size()), usable) /
        options_.page_tokens;
    int pages = 0;
    while (pages < limit) {
      const int base = pages * options_.page_tokens;
      bool equal = true;
      for (int t = 0; t < options_.page_tokens && equal; ++t)
        equal = prompt[static_cast<std::size_t>(base + t)] ==
                entry.tokens[static_cast<std::size_t>(base + t)];
      if (!equal) break;
      ++pages;
    }
    if (pages > best_pages) {
      best_pages = pages;
      best = static_cast<int>(e);
    }
  }
  *match_pages = best_pages;
  return best;
}

PagedKVPool::SeqId PagedKVPool::create(std::span<const int> prompt) {
  const SeqId id = create();
  Sequence& seq = sequences_[static_cast<std::size_t>(id)];
  stats_.prefix_lookup_tokens += static_cast<std::int64_t>(prompt.size());
  int match_pages = 0;
  const int e = best_prefix_match(prompt, &match_pages);
  if (e >= 0 && match_pages > 0) {
    PrefixEntry& entry = prefixes_[static_cast<std::size_t>(e)];
    for (int p = 0; p < match_pages; ++p) {
      const int page = entry.pages[static_cast<std::size_t>(p)];
      ref_page(page);
      seq.pages.push_back(page);
    }
    seq.length = seq.shared = match_pages * options_.page_tokens;
    stats_.prefix_hit_tokens += seq.shared;
    // A hit refreshes the entry: hot prefixes survive eviction pressure.
    entry.last_use = ++use_clock_;
  }
  return id;
}

PagedKVPool::SeqId PagedKVPool::fork(SeqId source) {
  assert(sequences_[static_cast<std::size_t>(source)].alive);
  // create() may grow sequences_, so the source is re-resolved after it.
  const SeqId id = create();
  const Sequence& src = sequences_[static_cast<std::size_t>(source)];
  Sequence& seq = sequences_[static_cast<std::size_t>(id)];
  seq.pages = src.pages;
  seq.length = src.length;
  seq.shared = src.shared;
  for (const int page : seq.pages) ref_page(page);
  return id;
}

void PagedKVPool::release(SeqId id) {
  Sequence& seq = sequences_[static_cast<std::size_t>(id)];
  if (!seq.alive) return;
  for (const int page : seq.pages) unref_page(page);
  seq.pages.clear();
  seq.alive = false;
}

Status PagedKVPool::reserve(SeqId id, int count) {
  Sequence& seq = sequences_[static_cast<std::size_t>(id)];
  assert(seq.alive);
  if (count <= 0) return Status::ok();
  const int slot = seq.length % options_.page_tokens;
  if (slot != 0 && pages_[static_cast<std::size_t>(seq.pages.back())].refs >
                       1) {
    // Copy-on-write: the tail holds filled slots, is shared (fork or
    // registered prefix), and the first of the `count` appends lands in
    // it; give this sequence a private copy before it diverges. Encoded
    // bytes copy verbatim — no re-quantisation on the copy path.
    const int tail = seq.pages.back();
    auto fresh = allocate_page();
    if (!fresh.is_ok()) return fresh.status();
    Page& dst = pages_[static_cast<std::size_t>(fresh.value())];
    const Page& src = pages_[static_cast<std::size_t>(tail)];
    std::copy(src.k.begin(), src.k.end(), dst.k.begin());
    std::copy(src.v.begin(), src.v.end(), dst.v.begin());
    unref_page(tail);
    seq.pages.back() = fresh.value();
    ++stats_.page_copies;
  }
  // One fresh page per boundary the new positions cross. Sized off the
  // page table, not the length, so a reservation that outlived its step
  // (engine failure paths) is never double-counted.
  const int needed = pages_for(seq.length + count) -
                     static_cast<int>(seq.pages.size());
  for (int added = 0; added < needed; ++added) {
    auto page = allocate_page();
    if (!page.is_ok()) {
      // Roll back this call's fresh pages: exhaustion mid-reservation
      // must leave the sequence exactly as it was (the engine retires the
      // request and releases the sequence; a half-grown page table would
      // corrupt the length/page invariant).
      for (int undo = 0; undo < added; ++undo) {
        unref_page(seq.pages.back());
        seq.pages.pop_back();
      }
      return page.status();
    }
    seq.pages.push_back(page.value());
  }
  return Status::ok();
}

void PagedKVPool::truncate(SeqId id, int n) {
  Sequence& seq = sequences_[static_cast<std::size_t>(id)];
  assert(seq.alive && n >= 0);
  if (n > seq.length) return;
  // Keep exactly the pages the surviving positions occupy; everything
  // past them — including pages a reserve() grew but no append filled —
  // goes back through the refcount (a sharer keeps the page alive; a
  // private page returns to the free list, LIFO, so a
  // truncate-then-append reuses the same page ids deterministically).
  const int keep = pages_for(n);
  while (static_cast<int>(seq.pages.size()) > keep) {
    unref_page(seq.pages.back());
    seq.pages.pop_back();
  }
  seq.length = n;
  seq.shared = std::min(seq.shared, n);
}

// --- Prompt-prefix registry --------------------------------------------------

void PagedKVPool::register_prefix(SeqId id, std::span<const int> prompt) {
  const Sequence& seq = sequences_[static_cast<std::size_t>(id)];
  assert(seq.alive && seq.length >= static_cast<int>(prompt.size()));
  const int full_pages =
      static_cast<int>(prompt.size()) / options_.page_tokens;
  if (full_pages == 0) return;
  const std::span<const int> tokens =
      prompt.first(static_cast<std::size_t>(full_pages * options_.page_tokens));
  for (PrefixEntry& entry : prefixes_) {
    if (entry.tokens.size() == tokens.size() &&
        std::equal(tokens.begin(), tokens.end(), entry.tokens.begin())) {
      entry.last_use = ++use_clock_;
      return;
    }
  }
  PrefixEntry entry;
  entry.tokens.assign(tokens.begin(), tokens.end());
  entry.pages.assign(seq.pages.begin(), seq.pages.begin() + full_pages);
  entry.last_use = ++use_clock_;
  for (const int page : entry.pages) ref_page(page);
  prefixes_.push_back(std::move(entry));
}

int PagedKVPool::probe_prefix_tokens(std::span<const int> prompt) const {
  int match_pages = 0;
  (void)best_prefix_match(prompt, &match_pages);
  return match_pages * options_.page_tokens;
}

// --- Introspection -----------------------------------------------------------

int PagedKVPool::length(SeqId id) const {
  return sequences_[static_cast<std::size_t>(id)].length;
}

int PagedKVPool::shared_length(SeqId id) const {
  return sequences_[static_cast<std::size_t>(id)].shared;
}

int PagedKVPool::page_refcount(SeqId id, int pos) const {
  const Sequence& seq = sequences_[static_cast<std::size_t>(id)];
  const int page =
      seq.pages[static_cast<std::size_t>(pos / options_.page_tokens)];
  return pages_[static_cast<std::size_t>(page)].refs;
}

// --- PagedKVView -------------------------------------------------------------

int PagedKVView::length() const {
  return pool_->sequences_[static_cast<std::size_t>(id_)].length;
}

std::size_t PagedKVView::float_offset(int layer, int slot) const {
  return (static_cast<std::size_t>(layer) *
              static_cast<std::size_t>(pool_->options_.page_tokens) +
          static_cast<std::size_t>(slot)) *
         static_cast<std::size_t>(pool_->config_.d_model);
}

PagedKVView::DecodedPage& PagedKVView::decoded_page(int page_index) const {
  if (static_cast<std::size_t>(page_index) >= decoded_.size())
    decoded_.resize(static_cast<std::size_t>(page_index) + 1);
  DecodedPage& dp = decoded_[static_cast<std::size_t>(page_index)];
  const std::size_t floats = float_offset(pool_->config_.n_layers, 0);
  if (dp.k.size() != floats) {
    dp.k.assign(floats, 0.0f);
    dp.v.assign(floats, 0.0f);
    dp.slots = 0;
  }
  const PagedKVPool::Sequence& seq =
      pool_->sequences_[static_cast<std::size_t>(id_)];
  const int filled = std::clamp(
      seq.length - page_index * pool_->options_.page_tokens, 0,
      pool_->options_.page_tokens);
  if (filled > dp.slots) {
    // Decode the storage-backed slots this view has not seen yet — for
    // every layer, so spans into the buffer work for the whole step.
    const PagedKVPool::Page& page = pool_->pages_[static_cast<std::size_t>(
        seq.pages[static_cast<std::size_t>(page_index)])];
    const std::size_t row_bytes = pool_->codec_.encoded_row_bytes();
    const std::size_t d_model =
        static_cast<std::size_t>(pool_->config_.d_model);
    for (int layer = 0; layer < pool_->config_.n_layers; ++layer) {
      for (int slot = dp.slots; slot < filled; ++slot) {
        const std::size_t src = pool_->row_offset(layer, slot);
        const std::size_t dst = float_offset(layer, slot);
        pool_->codec_.decode_row(
            std::span<const std::uint8_t>(page.k.data() + src, row_bytes),
            std::span<float>(dp.k.data() + dst, d_model));
        pool_->codec_.decode_row(
            std::span<const std::uint8_t>(page.v.data() + src, row_bytes),
            std::span<float>(dp.v.data() + dst, d_model));
      }
    }
    dp.slots = filled;
  }
  return dp;
}

void PagedKVView::append(int layer, int pos, std::span<const float> k_row,
                         std::span<const float> v_row) {
  PagedKVPool::Sequence& seq =
      pool_->sequences_[static_cast<std::size_t>(id_)];
  // `pos` may sit up to chunk-1 positions past the committed length (the
  // later rows of a chunked step); reserve() already grew the page table
  // to cover it.
  assert(pos >= seq.length &&
         pos / pool_->options_.page_tokens <
             static_cast<int>(seq.pages.size()));
  const int slot = pos % pool_->options_.page_tokens;
  const int page_index = pos / pool_->options_.page_tokens;
  PagedKVPool::Page& page = pool_->pages_[static_cast<std::size_t>(
      seq.pages[static_cast<std::size_t>(page_index)])];
  const std::size_t off = pool_->row_offset(layer, slot);
  const std::size_t row_bytes = pool_->codec_.encoded_row_bytes();
  pool_->codec_.encode_row(
      k_row, std::span<std::uint8_t>(page.k.data() + off, row_bytes));
  pool_->codec_.encode_row(
      v_row, std::span<std::uint8_t>(page.v.data() + off, row_bytes));
  // Round-trip the row into this view's decode cache so a read later in
  // the same step sees exactly the dequantised values every future step
  // (and every sharer of the page) will read back from storage.
  DecodedPage& dp = decoded_page(page_index);
  const std::size_t dst = float_offset(layer, slot);
  const std::size_t d_model = static_cast<std::size_t>(pool_->config_.d_model);
  pool_->codec_.decode_row(
      std::span<const std::uint8_t>(page.k.data() + off, row_bytes),
      std::span<float>(dp.k.data() + dst, d_model));
  pool_->codec_.decode_row(
      std::span<const std::uint8_t>(page.v.data() + off, row_bytes),
      std::span<float>(dp.v.data() + dst, d_model));
  // A position is committed once the last layer's row lands. The last
  // layer's appends arrive in position order (KVCacheView protocol), so
  // each one extends the length by exactly one; the counter is this
  // sequence's own state, so a parallel tick stepping other sequences
  // never contends on it.
  if (layer == pool_->config_.n_layers - 1) {
    assert(pos == seq.length);
    ++seq.length;
    if (dp.slots == slot) dp.slots = slot + 1;
  }
}

std::span<const float> PagedKVView::k_at(int layer, int pos) const {
  const int page_index = pos / pool_->options_.page_tokens;
  const int slot = pos % pool_->options_.page_tokens;
  const DecodedPage& dp = decoded_page(page_index);
  return std::span<const float>(
      dp.k.data() + float_offset(layer, slot),
      static_cast<std::size_t>(pool_->config_.d_model));
}

std::span<const float> PagedKVView::v_at(int layer, int pos) const {
  const int page_index = pos / pool_->options_.page_tokens;
  const int slot = pos % pool_->options_.page_tokens;
  const DecodedPage& dp = decoded_page(page_index);
  return std::span<const float>(
      dp.v.data() + float_offset(layer, slot),
      static_cast<std::size_t>(pool_->config_.d_model));
}

}  // namespace bbal::serve
