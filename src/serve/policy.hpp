// Pluggable admission/scheduling policies for serve::Engine, selected by
// name via Engine::Options::policy:
//
//  - "fifo" (default): submit order — PR 3's behaviour, the bit-identity
//    reference every other policy's token streams must match;
//  - "sjf" (ShortestJobFirst): admit the waiting request with the
//    smallest total work (prompt + completion budget); classic
//    mean-latency optimisation under mixed lengths;
//  - "prefix-aware": enable prompt-prefix page sharing in the paged KV
//    pool, admit requests whose prefix is already registered first
//    (longest hit wins), and hold back requests whose prefix a currently
//    prefilling leader is about to register — followers then attach the
//    leader's pages instead of recomputing and double-storing the prefix.
//
// A policy only chooses *admission order*; the per-tick step loop and all
// arithmetic are policy-independent, so any policy's per-request token
// streams are bit-identical to Fifo's (test_serve pins this).
//
// Determinism: pick() must be a pure function of its arguments (no RNG,
// no wall clock) so a serve run is reproducible at any thread count.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "serve/paged_kv.hpp"
#include "serve/request.hpp"

namespace bbal::serve {

class SchedulerPolicy {
 public:
  /// pick() return meaning "admit nothing this tick, wait for state to
  /// advance". The engine overrides it when no request is active (an idle
  /// engine deferring forever would deadlock the run).
  static constexpr int kNone = -1;

  virtual ~SchedulerPolicy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// True when the engine should create sequences with prompt-prefix
  /// sharing and register completed prefills in the pool.
  [[nodiscard]] virtual bool wants_prefix_sharing() const { return false; }

  /// Choose the next request to admit into a free slot: an index into
  /// `waiting` (which holds indices into `requests`, submit-ordered), or
  /// kNone to leave remaining slots empty this tick. `prefilling` lists
  /// the request indices of active flights still consuming their prompts;
  /// `pool` answers prefix probes. Called repeatedly while free slots and
  /// waiting requests remain.
  [[nodiscard]] virtual int pick(const std::vector<Request>& requests,
                                 const std::deque<std::size_t>& waiting,
                                 const std::vector<std::size_t>& prefilling,
                                 const PagedKVPool& pool) const = 0;

  /// Choose which *decoding* flight to suspend under KV-pool pressure:
  /// an index into `decoding` (which holds indices into `requests`, in
  /// admission order), or kNone to decline preemption. Only consulted
  /// when Engine::Options::preempt is on and admission or a reserve is
  /// blocked on pages. The victim's private pages are released (shared
  /// pages survive via refcounts) and the flight requeues; on resume its
  /// prompt + generated-so-far tokens re-prefill through the chunked
  /// prefill path, reproducing its stream bit-identically.
  ///
  /// Default: LIFO — suspend the most recently admitted flight, which
  /// has the least KV to recompute under FIFO-ish admission and
  /// preserves the oldest flights' latency. Same determinism contract as
  /// pick(): a pure function of its arguments.
  [[nodiscard]] virtual int pick_preempt(const std::vector<Request>& requests,
                                         const std::vector<std::size_t>& decoding) const {
    (void)requests;
    return decoding.empty() ? kNone : static_cast<int>(decoding.size()) - 1;
  }
};

/// Split one mixed tick's prefill-token budget across the active flights
/// (chunked prefill, Sarathi-style): flight i of the tick has
/// remaining[i] prompt tokens left to consume (0 for flights already
/// decoding) and is granted min(remaining, chunk) tokens, admission order
/// first-come-first-served, until `budget` prefill tokens are granted
/// (budget <= 0 means uncapped). The earliest still-prefilling flight is
/// always granted at least one token, so a tick of pure prefill traffic
/// can never stall even under a sub-chunk budget. Decode rows are not
/// budgeted — every decoding flight steps every tick, which is what keeps
/// inter-token latency flat while long prompts stream in.
///
/// Shared by every SchedulerPolicy: pacing must not change token streams
/// (policies only reorder admission; see the bit-identity contract), so
/// the plan is a pure deterministic function of (remaining, chunk,
/// budget). grants is resized to remaining.size(), reusing its storage.
void plan_prefill(std::span<const int> remaining, int chunk, int budget,
                  std::vector<int>& grants);

/// Resolve a policy by name ("fifo", "sjf", "prefix-aware"; case matters).
/// Unknown names are reportable errors, never aborts.
[[nodiscard]] Result<std::unique_ptr<SchedulerPolicy>> make_policy(
    std::string_view name);

/// Every name make_policy accepts, in documentation order.
[[nodiscard]] std::vector<std::string> policy_names();

}  // namespace bbal::serve
