#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "accel/simulator.hpp"
#include "accel/workload.hpp"
#include "bbal/registry.hpp"
#include "common/stats.hpp"
#include "hw/sram.hpp"
#include "serve/workload.hpp"

namespace bbal::serve {
namespace {

/// FNV-1a over the 4 little-endian bytes of `value`.
void fnv32_mix(std::uint32_t& hash, std::uint32_t value) {
  for (int byte = 0; byte < 4; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffu;
    hash *= 16777619u;
  }
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

// --- Construction ------------------------------------------------------------

Result<Engine> Engine::create(
    std::shared_ptr<const llm::PreparedModel> model,
    const quant::StrategySpec& matmul, const quant::StrategySpec& nonlinear,
    Options options) {
  using R = Result<Engine>;
  if (!model) return R::error("no model: pass a prepared model");

  // --- Validation: collect every problem, report them all at once ---
  // One table-driven pass instead of first-failure-only piecemeal checks:
  // a caller who got three knobs wrong fixes all three from one Status
  // message ("; "-joined, each clause unchanged from the old errors).
  std::vector<std::string> problems;
  const auto flag = [&problems](bool bad, std::string message) {
    if (bad) problems.push_back(std::move(message));
  };
  const struct {
    const char* label;
    int value;
    int min;
    const char* note;  ///< appended to the bound (e.g. " (0 = auto)")
  } int_rules[] = {
      {"max_batch", options.max_batch, 1, ""},
      {"kv_page_tokens", options.kv_page_tokens, 1, ""},
      {"kv_pool_pages", options.kv_pool_pages, 0, " (0 = auto)"},
      {"prefill_chunk", options.prefill_chunk, 1, ""},
      {"prefill_budget", options.prefill_budget, 0, " (0 = uncapped)"},
      {"draft_k", options.draft_k, 0, " (0 = no speculation)"},
      {"max_preemptions", options.max_preemptions, 0, ""},
  };
  for (const auto& rule : int_rules)
    flag(rule.value < rule.min,
         std::string(rule.label) + " must be >= " + std::to_string(rule.min) +
             rule.note + ", got " + std::to_string(rule.value));
  flag(options.draft_k > 0 && options.draft.empty(),
       "draft_k > 0 needs a draft strategy (Options::draft)");
  flag(options.draft_k == 0 && !options.draft.empty(),
       "draft: set draft_k >= 1 to enable speculation with " + options.draft);

  auto policy = make_policy(options.policy);
  if (!policy.is_ok()) problems.push_back(policy.message());
  auto kv_format = quant::KvFormat::parse(options.kv_format);
  if (!kv_format.is_ok())
    problems.push_back("kv_format: " + kv_format.message());

  const BackendRegistry& registry = BackendRegistry::instance();
  {
    const auto caps = registry.capabilities(matmul);
    if (!caps.is_ok()) {
      problems.push_back("matmul: " + caps.message());
    } else {
      flag(!caps.value().matmul, "matmul: " + matmul.to_string() +
                                     " is not a linear-layer strategy");
    }
    const auto nl_caps = registry.capabilities(nonlinear);
    if (!nl_caps.is_ok()) {
      problems.push_back("nonlinear: " + nl_caps.message());
    } else {
      flag(!nl_caps.value().nonlinear, "nonlinear: " + nonlinear.to_string() +
                                           " is not a nonlinear strategy");
    }
  }

  // Speculation's second backend resolves through the same registry and
  // capability gate as the target — the draft is a full matmul pipeline
  // over the same prepared weights.
  quant::StrategySpec draft_spec;
  if (options.draft_k > 0 && !options.draft.empty()) {
    auto parsed = quant::StrategySpec::parse(options.draft);
    if (!parsed.is_ok()) {
      problems.push_back("draft: " + parsed.message());
    } else {
      draft_spec = parsed.value();
      const auto caps = registry.capabilities(draft_spec);
      if (!caps.is_ok()) {
        problems.push_back("draft: " + caps.message());
      } else if (!caps.value().matmul) {
        problems.push_back("draft: " + draft_spec.to_string() +
                           " is not a linear-layer strategy");
      } else {
        flag(options.accelerator.has_value() &&
                 !registry.has_cost_model(draft_spec),
             "draft: " + draft_spec.to_string() +
                 " has no hardware cost model; drop the accelerator "
                 "or choose a cost-modelled draft strategy");
      }
    }
  }

  // Accelerator: same binding rule as Session — the engine's matmul
  // strategy drives the cost model, which must therefore exist. An SLO is
  // judged on simulated time, so it additionally needs that accelerator.
  flag(options.accelerator.has_value() && !registry.has_cost_model(matmul),
       "accelerator: " + matmul.to_string() +
           " has no hardware cost model; drop the accelerator or "
           "choose a cost-modelled strategy");
  if (options.slo) {
    flag(!options.accelerator.has_value(),
         "slo: goodput needs priced time; attach an accelerator or drop "
         "the SLO");
    flag(options.slo->ttft_seconds <= 0.0 ||
             options.slo->inter_token_seconds <= 0.0,
         "slo: thresholds must be > 0");
  }

  if (!problems.empty()) {
    std::string joined = problems.front();
    for (std::size_t i = 1; i < problems.size(); ++i)
      joined += "; " + problems[i];
    return R::error(std::move(joined));
  }

  Engine engine;
  engine.prepared_ = std::move(model);
  engine.matmul_ = matmul;
  engine.nonlinear_ = nonlinear;
  engine.policy_ = std::move(policy).value();
  engine.kv_format_ = kv_format.value();
  engine.faults_ = std::move(options.faults);
  engine.preempt_ = options.preempt;
  engine.max_preemptions_ = options.max_preemptions;
  engine.kv_page_tokens_ = options.kv_page_tokens;
  engine.kv_pool_pages_ = options.kv_pool_pages;
  engine.prefill_chunk_ = options.prefill_chunk;
  engine.prefill_budget_ = options.prefill_budget;

  // Accelerator binding (cost-model existence validated above): the
  // engine's matmul strategy drives the cost model, Session's rule.
  if (options.accelerator) {
    engine.accel_ = std::move(*options.accelerator);
    engine.accel_->strategy = matmul.to_string();
  }

  // Speculation on a priced engine also prices the draft forwards — on an
  // iso-area re-provisioning of the target's PE budget (Fig. 8's
  // comparison rule), so the reported speedup is what swapping drafting
  // work onto cheaper PEs of the same silicon actually buys.
  if (options.draft_k > 0 && engine.accel_) {
    auto draft_accel = accel::make_iso_area_config(
        draft_spec, engine.accel_->pe_array_area_um2(),
        engine.accel_->dram_gbps);
    if (!draft_accel.is_ok())
      return R::error("draft: " + draft_accel.message());
    engine.draft_accel_ = std::move(draft_accel).value();
  }

  if (options.slo) engine.slo_ = *options.slo;

  // Build the one shared pipeline: the weights are prepared (quantised)
  // exactly once here, regardless of max_batch — every request's row runs
  // through this backend pair via the fused Decoder::step_batch.
  engine.max_batch_ = options.max_batch;
  auto mm = registry.make_matmul(matmul);
  if (!mm.is_ok()) return R::error(mm.message());
  auto nl = registry.make_nonlinear(nonlinear);
  if (!nl.is_ok()) return R::error(nl.message());
  engine.matmul_backend_ = std::move(mm).value();
  engine.nonlinear_backend_ = std::move(nl).value();
  engine.model_ = std::make_unique<llm::Transformer>(
      engine.prepared_->config, engine.prepared_->weights,
      *engine.matmul_backend_, *engine.nonlinear_backend_);
  engine.model_->set_logit_scale(engine.prepared_->logit_scale);
  engine.decoder_ = std::make_unique<llm::Decoder>(*engine.model_);

  // The draft pipeline: the SAME prepared weights quantised a second time
  // under the draft strategy, with its own decoder workspace. A
  // draft == target pair therefore runs identical arithmetic on both
  // sides, which is what makes its acceptance rate exactly 1.0.
  if (options.draft_k > 0) {
    engine.draft_ = draft_spec;
    engine.draft_k_ = options.draft_k;
    auto draft_mm = registry.make_matmul(draft_spec);
    if (!draft_mm.is_ok()) return R::error("draft: " + draft_mm.message());
    auto draft_nl = registry.make_nonlinear(nonlinear);
    if (!draft_nl.is_ok()) return R::error("draft: " + draft_nl.message());
    engine.draft_matmul_backend_ = std::move(draft_mm).value();
    engine.draft_nonlinear_backend_ = std::move(draft_nl).value();
    engine.draft_model_ = std::make_unique<llm::Transformer>(
        engine.prepared_->config, engine.prepared_->weights,
        *engine.draft_matmul_backend_, *engine.draft_nonlinear_backend_);
    engine.draft_model_->set_logit_scale(engine.prepared_->logit_scale);
    engine.draft_decoder_ = std::make_unique<llm::Decoder>(*engine.draft_model_);
  }
  return engine;
}

Result<Engine> Engine::create(std::shared_ptr<const llm::PreparedModel> model,
                              std::string_view matmul,
                              std::string_view nonlinear, Options options) {
  using R = Result<Engine>;
  auto matmul_spec = quant::StrategySpec::parse(matmul);
  if (!matmul_spec.is_ok()) return R::error("matmul: " + matmul_spec.message());
  auto nonlinear_spec = quant::StrategySpec::parse(nonlinear);
  if (!nonlinear_spec.is_ok())
    return R::error("nonlinear: " + nonlinear_spec.message());
  return create(std::move(model), matmul_spec.value(), nonlinear_spec.value(),
                std::move(options));
}

Result<Engine> Engine::from_session(Session& session, int max_batch) {
  Options options;
  options.max_batch = max_batch;
  if (session.has_accelerator()) options.accelerator = session.accelerator();
  return create(session.prepare(), session.matmul_strategy(),
                session.nonlinear_strategy(), std::move(options));
}

// --- Scheduling --------------------------------------------------------------

std::uint64_t Engine::submit(Request request) {
  queue_.push_back(std::move(request));
  return queue_.size() - 1;
}

Report Engine::run() {
  const llm::ModelConfig& cfg = prepared_->config;
  Report report;
  report.model = cfg.name;
  report.matmul = matmul_.to_string();
  report.nonlinear = nonlinear_.to_string();
  report.policy = std::string(policy_->name());
  report.kv_format = kv_format_.name();
  report.max_batch = max_batch();
  report.prefill_chunk = prefill_chunk_;
  report.prefill_budget = prefill_budget_;
  if (speculative()) {
    report.draft = draft_.to_string();
    report.draft_k = draft_k_;
  }
  report.has_cost = accel_.has_value();
  report.has_slo = slo_.has_value();
  if (slo_) {
    report.slo_ttft_seconds = slo_->ttft_seconds;
    report.slo_inter_token_seconds = slo_->inter_token_seconds;
  }
  report.weights_bytes = weights_bytes();
  report.fault_plan = faults_.describe();
  report.preempt = preempt_;

  std::vector<Request> requests(std::make_move_iterator(queue_.begin()),
                                std::make_move_iterator(queue_.end()));
  queue_.clear();
  report.requests = static_cast<std::int64_t>(requests.size());
  report.results.resize(requests.size());

  // Arrival spikes rewrite the stamped workload before anything reads it:
  // the request set is unchanged, a window of arrivals just lands at once.
  for (const FaultPlan::ArrivalSpike& spike : faults_.spikes)
    inject_arrival_spike(requests, spike.tick, spike.window);

  // Validate up front; malformed requests become error results and are
  // never admitted (the batch must survive a bad client). Valid requests
  // go to the arrival queue — ordered by (arrival_tick, submit order), so
  // closed-loop traffic (every arrival_tick 0) reaches `waiting` in
  // submit order exactly as before open-loop time existed.
  std::deque<std::size_t> waiting;
  std::vector<std::size_t> arrivals;
  bool any_deadline = false;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Request& req = requests[i];
    RequestResult& out = report.results[i];
    out.id = i;
    out.prompt_tokens = static_cast<int>(req.prompt.size());
    out.arrival_tick = req.arrival_tick;
    out.reason = FinishReason::kInvalid;  // until the request validates
    if (req.prompt.empty()) {
      out.error = "empty prompt";
      continue;
    }
    if (req.max_new_tokens <= 0) {
      out.error = "max_new_tokens must be > 0, got " +
                  std::to_string(req.max_new_tokens);
      continue;
    }
    if (req.arrival_tick < 0) {
      out.error = "arrival_tick must be >= 0, got " +
                  std::to_string(req.arrival_tick);
      continue;
    }
    if (req.deadline_tick < 0) {
      out.error = "deadline_tick must be >= 0, got " +
                  std::to_string(req.deadline_tick);
      continue;
    }
    if (req.deadline_tick > 0 && req.deadline_tick <= req.arrival_tick) {
      out.error = "deadline_tick " + std::to_string(req.deadline_tick) +
                  " must be > arrival_tick " +
                  std::to_string(req.arrival_tick);
      continue;
    }
    const auto bad =
        std::find_if(req.prompt.begin(), req.prompt.end(),
                     [&](int t) { return t < 0 || t >= cfg.vocab; });
    if (bad != req.prompt.end()) {
      out.error = "prompt token " + std::to_string(*bad) +
                  " outside vocabulary [0, " + std::to_string(cfg.vocab) + ")";
      continue;
    }
    out.reason = FinishReason::kNone;
    any_deadline |= req.deadline_tick > 0;
    arrivals.push_back(i);
  }
  report.has_faults = preempt_ || !faults_.empty() || any_deadline;
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [&](std::size_t a, std::size_t b) {
                     return requests[a].arrival_tick <
                            requests[b].arrival_tick;
                   });

  // --- KV pool: run-scoped, fresh per run (deterministic page ids) ---
  // A request that runs to its budget appends prompt + max_new - 1
  // positions (the final generated token is never fed back).
  const auto total_positions = [](const Request& req) {
    return static_cast<int>(req.prompt.size()) + req.max_new_tokens - 1;
  };
  PagedKVPool::Options kv_options;
  kv_options.page_tokens = kv_page_tokens_;
  kv_options.kv_format = kv_format_;
  if (kv_pool_pages_ > 0) {
    kv_options.max_pages = kv_pool_pages_;
  } else {
    // Auto-size: every valid request resident at once (payloads allocate
    // lazily, so headroom costs page-table slots, not memory).
    std::int64_t pages = 0;
    for (const std::size_t i : arrivals)
      pages += (total_positions(requests[i]) + kv_page_tokens_ - 1) /
               kv_page_tokens_;
    if (speculative() && !arrivals.empty()) {
      // Speculation headroom, per concurrently-decoding flight: the
      // verify window never reserves past total_positions, but each cycle
      // transiently holds a draft fork — up to one copy-on-write tail
      // copy plus the fork's own proposal pages.
      const std::int64_t per_flight =
          (draft_k_ + kv_page_tokens_ - 1) / kv_page_tokens_ + 2;
      pages += per_flight *
               std::min<std::int64_t>(
                   max_batch_, static_cast<std::int64_t>(arrivals.size()));
    }
    kv_options.max_pages = static_cast<int>(std::max<std::int64_t>(pages, 1));
  }
  PagedKVPool kv(cfg, kv_options);
  const bool sharing = policy_->wants_prefix_sharing();
  // The KV buffer macro pricing each tick's cache traffic (has_cost runs).
  // Sized to the *packed* pool, so a quantised kv_format shrinks the macro
  // and its per-access energy along with the resident bytes.
  const hw::SramMacro kv_sram = hw::make_sram(
      static_cast<std::size_t>(kv.max_pages()) *
      static_cast<std::size_t>(kv.page_bytes()));
  // One position's packed K+V bytes across all layers: the unit of KV
  // traffic pricing below.
  const std::int64_t token_kv_bytes = static_cast<std::int64_t>(cfg.n_layers) *
                                      2 * kv.encoded_row_bytes();
  // What PR 3's monolithic per-request caches stored per position — always
  // FP32 floats, so kv_bytes_peak_contiguous stays the format-independent
  // yardstick the packed pool is compared against.
  const std::int64_t token_bytes = static_cast<std::int64_t>(cfg.n_layers) *
                                   2 * cfg.d_model *
                                   static_cast<std::int64_t>(sizeof(float));

  std::vector<InFlight> active;
  active.reserve(static_cast<std::size_t>(max_batch_));
  // With one shared pipeline a "slot" is just admission headroom: how
  // many more requests this tick's fused batch may carry.
  int free_slots = max_batch_;

  // --- Robustness state (all per request; inert on fault-free runs) ---
  // A suspended flight's continuation prompt: the original prompt plus
  // every token generated so far. Re-admitting it re-prefills exactly the
  // token prefix its KV held, so the resumed stream is bit-identical (KV
  // rows are pure functions of the token prefix; see docs/ROBUSTNESS.md).
  std::vector<std::vector<int>> resume_prompt(requests.size());
  const auto prompt_of = [&](std::size_t index) -> const std::vector<int>& {
    return resume_prompt[index].empty() ? requests[index].prompt
                                        : resume_prompt[index];
  };
  // Timing/progress carried across a suspension (the InFlight dies with
  // its slot; its clocks must not).
  struct Suspended {
    std::int64_t tick = -1;  ///< suspension clock; -1 = not suspended
    int steps = 0;           ///< engine ticks accumulated before suspension
    double ttft_seconds = 0.0;
    double ttft_wall_seconds = 0.0;
    double last_emit_seconds = 0.0;
    double max_gap_seconds = 0.0;
  };
  std::vector<Suspended> susp(requests.size());
  std::vector<char> prefix_registered(requests.size(), 0);
  // Earliest planned cancellation tick per request (-1 = none).
  std::vector<std::int64_t> cancel_at(requests.size(), -1);
  for (const FaultPlan::Cancellation& c : faults_.cancellations) {
    if (c.request < 0 || c.request >= static_cast<int>(requests.size()))
      continue;
    auto& at = cancel_at[static_cast<std::size_t>(c.request)];
    at = at < 0 ? c.tick : std::min(at, c.tick);
  }
  double requeue_delay_sum = 0.0;

  // Pages the active set is still going to allocate: the admission budget
  // that keeps mid-run exhaustion impossible under an explicit pool cap.
  // (A resumed request's budget is unchanged: its continuation prompt has
  // P + j tokens but only max_new - j tokens left, so total_positions of
  // the original request still bounds its pages.)
  const auto pending_pages = [&] {
    std::int64_t pending = 0;
    for (const InFlight& flight : active)
      pending += kv.pages_for(total_positions(requests[flight.request_index])) -
                 kv.pages_for(kv.length(flight.seq));
    return pending;
  };
  const auto fits = [&](std::size_t index) {
    const Request& req = requests[index];
    const std::vector<int>& prompt = prompt_of(index);
    const int shared = sharing ? kv.probe_prefix_tokens(prompt) : 0;
    if (preempt_) {
      // Optimistic gate: admit when the *prefill* fits (prompt + first
      // generated position). Decode growth past that may exhaust the
      // pool mid-run — exactly the pressure preemption absorbs by
      // suspending a flight instead of failing one.
      const std::int64_t needed =
          kv.pages_for(static_cast<int>(prompt.size()) + 1) -
          shared / kv.page_tokens();
      return kv.stats().pages_in_use + needed <= kv.max_pages();
    }
    std::int64_t needed =
        kv.pages_for(total_positions(req)) - shared / kv.page_tokens();
    // Keep the transient speculative fork affordable for every flight
    // that could be mid-cycle at once (a failed draft reservation only
    // degrades a cycle to a plain step, but admission shouldn't plan on
    // degrading).
    if (speculative())
      needed += static_cast<std::int64_t>(kv.pages_for(draft_k_) + 2) *
                static_cast<std::int64_t>(active.size() + 1);
    return kv.stats().pages_in_use + pending_pages() + needed <=
           kv.max_pages();
  };

  // Per-tick batch scratch, reused across ticks: once each vector has hit
  // its high-water mark, the steady-state loop allocates nothing.
  std::vector<int> tick_tokens;
  std::vector<llm::KVCacheView*> tick_views;
  std::vector<int> tick_counts;        ///< rows per view (step_groups)
  std::vector<int> prefill_remaining;  ///< prompt tokens left, per flight
  std::vector<int> prefill_grants;     ///< plan_prefill output, per flight
  llm::Matrix tick_logits;
  std::vector<int> draft_tokens;               ///< draft batch, per step
  std::vector<llm::KVCacheView*> draft_views;  ///< draft batch views
  llm::Matrix draft_logits;
  std::vector<accel::GemmShape> equiv_workload;  ///< target-only pricing
  double target_equiv_seconds = 0.0;  ///< counterfactual (speculative runs)
  std::vector<double> token_latencies;   ///< simulated, per emitted token
  std::vector<double> inter_token_gaps;  ///< gaps between a request's tokens
  accel::EnergyBreakdown energy;
  double kv_energy_j = 0.0;
  double sim_makespan = 0.0;  ///< sum of per-tick simulated latencies
  std::int64_t occupancy_sum = 0;
  std::int64_t kv_pages_sum = 0;          ///< pages in use, summed per tick
  std::int64_t contiguous_peak_tokens = 0;  ///< monolithic-cache comparison

  // --- Open-loop clock ---
  // One executed decode tick advances the clock by one; an engine with
  // nothing runnable jumps straight to the next arrival (idle ticks run
  // no step and cost no simulated time). Arrival instants are stamped on
  // both clocks when a request becomes visible, so TTFT/total latency
  // stay arrival-relative — the client-visible metrics.
  std::int64_t clock = 0;
  std::size_t next_arrival = 0;
  std::vector<double> arrival_seconds(requests.size(), 0.0);
  std::vector<double> arrival_wall(requests.size(), 0.0);

  const auto run_start = std::chrono::steady_clock::now();
  const auto deliver_arrivals = [&] {
    while (next_arrival < arrivals.size() &&
           requests[arrivals[next_arrival]].arrival_tick <= clock) {
      const std::size_t index = arrivals[next_arrival];
      arrival_seconds[index] = sim_makespan;
      arrival_wall[index] = seconds_since(run_start);
      waiting.push_back(index);
      ++next_arrival;
    }
  };
  // Suspend a flight: release its pages (shared pages survive via their
  // refcounts), carry its clocks and step count across the gap, and
  // requeue it behind a continuation prompt of prompt + generated-so-far.
  // The caller removes it from `active`.
  const auto suspend_flight = [&](InFlight& flight) {
    const std::size_t index = flight.request_index;
    RequestResult& out = report.results[index];
    if (flight.draft_seq >= 0) kv.release(flight.draft_seq);
    kv.release(flight.seq);
    Suspended& s = susp[index];
    s.tick = clock;
    s.steps += flight.steps;
    s.ttft_seconds = flight.ttft_seconds;
    s.ttft_wall_seconds = flight.ttft_wall_seconds;
    s.last_emit_seconds = flight.last_emit_seconds;
    s.max_gap_seconds = flight.max_gap_seconds;
    std::vector<int> continuation = requests[index].prompt;
    continuation.insert(continuation.end(), out.generated.begin(),
                        out.generated.end());
    resume_prompt[index] = std::move(continuation);
    ++out.preemptions;
    ++report.preemptions;
    waiting.push_back(index);
    ++free_slots;
  };
  // Preemption under pool pressure: the policy picks a decoding victim
  // (still-prefilling flights hold no decode progress worth trading;
  // flights at their preemption bound are exempt). False when nothing is
  // preemptible.
  const auto try_preempt = [&]() -> bool {
    std::vector<std::size_t> decoding;
    for (const InFlight& flight : active)
      if (flight.prompt_pos >=
              static_cast<int>(prompt_of(flight.request_index).size()) &&
          report.results[flight.request_index].preemptions < max_preemptions_)
        decoding.push_back(flight.request_index);
    const int victim = policy_->pick_preempt(requests, decoding);
    if (victim == SchedulerPolicy::kNone) return false;
    const std::size_t target = decoding[static_cast<std::size_t>(victim)];
    for (auto it = active.begin(); it != active.end(); ++it) {
      if (it->request_index != target) continue;
      suspend_flight(*it);
      active.erase(it);
      return true;
    }
    return false;
  };
  // Typed mid-run retirement: partial output stays in the result, the
  // reason is never a bare error string. Caller removes from `active`.
  const auto retire_flight = [&](InFlight& flight, FinishReason reason,
                                 std::string message) {
    const std::size_t index = flight.request_index;
    RequestResult& out = report.results[index];
    out.reason = reason;
    out.error = std::move(message);
    out.steps = susp[index].steps + flight.steps;
    out.ttft_seconds = flight.ttft_seconds;
    out.ttft_wall_seconds = flight.ttft_wall_seconds;
    out.max_inter_token_seconds = flight.max_gap_seconds;
    out.total_seconds = sim_makespan - arrival_seconds[index];
    out.wall_seconds = seconds_since(run_start) - arrival_wall[index];
    if (flight.draft_seq >= 0) kv.release(flight.draft_seq);
    kv.release(flight.seq);
    ++free_slots;
  };
  while (next_arrival < arrivals.size() || !waiting.empty() ||
         !active.empty()) {
    deliver_arrivals();
    if (report.has_faults) {
      // Client cancellations and expired deadlines retire gracefully —
      // partial output plus a typed reason — from both queues.
      for (auto it = waiting.begin(); it != waiting.end();) {
        const std::size_t index = *it;
        const Request& req = requests[index];
        RequestResult& out = report.results[index];
        if (cancel_at[index] >= 0 && clock >= cancel_at[index]) {
          out.reason = FinishReason::kCancelled;
          out.error = "cancelled: fault-plan cancellation at tick " +
                      std::to_string(cancel_at[index]);
          out.steps = susp[index].steps;
          ++report.cancellations;
          it = waiting.erase(it);
        } else if (req.deadline_tick > 0 && clock >= req.deadline_tick) {
          out.reason = FinishReason::kTimeout;
          out.error = "timeout: deadline tick " +
                      std::to_string(req.deadline_tick) +
                      " reached while queued";
          out.steps = susp[index].steps;
          ++report.timeouts;
          it = waiting.erase(it);
        } else {
          ++it;
        }
      }
      std::erase_if(active, [&](InFlight& flight) {
        const std::size_t index = flight.request_index;
        const Request& req = requests[index];
        const std::size_t emitted = report.results[index].generated.size();
        if (cancel_at[index] >= 0 && clock >= cancel_at[index]) {
          retire_flight(flight, FinishReason::kCancelled,
                        "cancelled: fault-plan cancellation at tick " +
                            std::to_string(cancel_at[index]) + " with " +
                            std::to_string(emitted) + " of " +
                            std::to_string(req.max_new_tokens) + " tokens");
          ++report.cancellations;
          return true;
        }
        if (req.deadline_tick > 0 && clock >= req.deadline_tick) {
          retire_flight(flight, FinishReason::kTimeout,
                        "timeout: deadline tick " +
                            std::to_string(req.deadline_tick) +
                            " reached with " + std::to_string(emitted) +
                            " of " + std::to_string(req.max_new_tokens) +
                            " tokens");
          ++report.timeouts;
          return true;
        }
        return false;
      });
    }
    if (waiting.empty() && active.empty()) {
      // Idle: everything left is in the future. Jump, don't spin. (The
      // fault scans above may have retired the last live request.)
      if (next_arrival >= arrivals.size()) break;
      clock = requests[arrivals[next_arrival]].arrival_tick;
      continue;
    }
    // A frozen pool (fault-plan exhaustion window) admits nothing this
    // tick — every admission allocates pages.
    const bool frozen = report.has_faults && faults_.exhausted_at(clock);
    // Deadline-risk preemption: a queued request whose slack cannot cover
    // even its remaining token count claims a slot from a decoding flight
    // rather than waiting out a completion.
    if (preempt_ && !frozen && free_slots == 0 && !waiting.empty()) {
      for (const std::size_t index : waiting) {
        const Request& req = requests[index];
        if (req.deadline_tick <= 0) continue;
        const std::int64_t slack = req.deadline_tick - clock;
        const std::int64_t need =
            static_cast<std::int64_t>(prompt_of(index).size()) +
            req.max_new_tokens;
        if (slack <= need) {
          (void)try_preempt();
          break;
        }
      }
    }
    // --- Admission: the policy picks, the page budget gates ---
    while (!frozen && !waiting.empty() && free_slots > 0) {
      std::vector<std::size_t> prefilling;
      for (const InFlight& flight : active)
        if (flight.prompt_pos <
            static_cast<int>(prompt_of(flight.request_index).size()))
          prefilling.push_back(flight.request_index);
      int pick = policy_->pick(requests, waiting, prefilling, kv);
      if (pick == SchedulerPolicy::kNone) {
        // Deferral needs someone to wait for; an idle engine admits FIFO.
        if (!active.empty()) break;
        pick = 0;
      }
      const std::size_t index = waiting[static_cast<std::size_t>(pick)];
      const Request& req = requests[index];
      if (!fits(index)) {
        // Under preemption, pool pressure is absorbed by suspending
        // decoding flights instead of waiting for retirements.
        if (preempt_) {
          bool progress = true;
          while (!fits(index) && progress) progress = try_preempt();
        }
        if (!fits(index)) {
          if (!active.empty()) break;  // retirements will free pages
          // Nothing running: reclaim shareable pages, then either the
          // request fits or it never will.
          kv.drop_registered_prefixes();
          if (!fits(index)) {
            report.results[index].reason = FinishReason::kOom;
            report.results[index].error =
                "request needs " +
                std::to_string(kv.pages_for(total_positions(req))) +
                " KV pages, pool capacity is " +
                std::to_string(kv.max_pages());
            ++report.oom_failures;
            waiting.erase(waiting.begin() + pick);
            continue;
          }
        }
      }
      InFlight flight;
      flight.request_index = index;
      waiting.erase(waiting.begin() + pick);
      --free_slots;
      const std::vector<int>& prompt = prompt_of(index);
      flight.seq = sharing ? kv.create(prompt) : kv.create();
      flight.view = PagedKVView(kv, flight.seq);
      flight.prompt_pos = kv.shared_length(flight.seq);
      flight.registered = prefix_registered[index] != 0;
      if (susp[index].tick >= 0) {
        // Resume: restore the clocks carried across the suspension. The
        // re-prefill ahead (continuation prompt minus any shared prefix)
        // is the recompute bill preemption pays for its freed pages;
        // admit_tick/queue_ticks/shared_prompt_tokens keep their original
        // admission's values.
        Suspended& s = susp[index];
        flight.ttft_seconds = s.ttft_seconds;
        flight.ttft_wall_seconds = s.ttft_wall_seconds;
        flight.last_emit_seconds = s.last_emit_seconds;
        flight.max_gap_seconds = s.max_gap_seconds;
        flight.resuming = true;
        requeue_delay_sum += static_cast<double>(clock - s.tick);
        s.tick = -1;
        ++report.resumes;
        report.preempt_recompute_tokens +=
            static_cast<int>(prompt.size()) - flight.prompt_pos;
      } else {
        report.results[index].shared_prompt_tokens = flight.prompt_pos;
        report.results[index].admit_tick = clock;
        report.results[index].queue_ticks = clock - req.arrival_tick;
      }
      active.push_back(std::move(flight));
    }
    // Every admission failed (undersized pool) or the pool is frozen: no
    // phantom empty tick — but when a frozen window is the only thing in
    // the way, the clock must advance to eventually exit it.
    if (active.empty()) {
      if (frozen && !waiting.empty()) ++clock;
      continue;
    }
    ++report.engine_steps;
    occupancy_sum += static_cast<std::int64_t>(active.size());

    // --- Plan the tick's rows: every decoding flight steps one token;
    // prefilling flights are granted up to prefill_chunk prompt tokens
    // each under the tick-wide prefill_budget (serve::plan_prefill, FCFS
    // in admission order — the SchedulerPolicy layer's pacing rule; see
    // docs/PREFILL.md). A flight granted 0 sits the tick out. With the
    // default chunk 1 / budget 0 every flight gets exactly one row — the
    // legacy lockstep, byte-exact with the pre-chunking engine.
    prefill_remaining.clear();
    for (const InFlight& flight : active)
      prefill_remaining.push_back(
          static_cast<int>(prompt_of(flight.request_index).size()) -
          flight.prompt_pos);
    plan_prefill(prefill_remaining, prefill_chunk_, prefill_budget_,
                 prefill_grants);
    bool tick_has_prefill = false;
    bool tick_has_decode = false;
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (prefill_remaining[i] > 0) {
        active[i].tick_rows = prefill_grants[i];
        tick_has_prefill |= prefill_grants[i] > 0;
      } else if (!speculative()) {
        active[i].tick_rows = 1;
        tick_has_decode = true;
      } else {
        // Speculation cycle setup. The draft window is capped so the
        // cycle never emits past the request's budget (accepted drafts
        // plus the correction/bonus token is at most spec_k + 1); with
        // one token left the cycle degenerates to a plain verified step.
        // The draft sequence forks the target BEFORE the target's own
        // reserve: the fork pins the shared tail, so the target's verify
        // appends copy-on-write it instead of two sequences writing one
        // page. A draft that cannot reserve (explicit undersized pool)
        // degrades to spec_k = 0 — speculation never fails a request.
        InFlight& flight = active[i];
        const Request& req = requests[flight.request_index];
        const int remaining =
            req.max_new_tokens -
            static_cast<int>(
                report.results[flight.request_index].generated.size());
        int k = std::min(draft_k_, remaining - 1);
        if (k > 0) {
          flight.draft_seq = kv.fork(flight.seq);
          if (kv.reserve(flight.draft_seq, k).is_ok()) {
            flight.draft_view = PagedKVView(kv, flight.draft_seq);
          } else {
            kv.release(flight.draft_seq);
            flight.draft_seq = -1;
            k = 0;
          }
        }
        flight.spec_k = k;
        flight.tick_rows = 1 + k;
        tick_has_decode = true;
      }
    }
    if (tick_has_prefill && tick_has_decode) ++report.mixed_ticks;

    // --- Reserve this tick's KV positions (serial; allocation and
    // copy-on-write happen here, so the fused step below only appends
    // into pre-reserved, per-sequence slots). A reservation failure —
    // real pool pressure (explicit undersized kv_pool_pages), an
    // injected transient fault, or a frozen exhaustion window — either
    // suspends the flight for a bit-identical resume (transient faults
    // always; pool pressure when preemption is on) or retires it with a
    // typed reason instead of aborting.
    for (InFlight& flight : active) {
      flight.tick_base = kv.length(flight.seq);
      const bool injected =
          report.has_faults &&
          faults_.reserve_fails(clock,
                                static_cast<int>(flight.request_index));
      // A frozen window refuses fresh pages; within-page appends proceed
      // (that memory already exists).
      const bool frozen_block =
          frozen && kv.pages_for(flight.tick_base + flight.tick_rows) >
                        kv.pages_for(flight.tick_base);
      Status reserved =
          injected ? Status::error("injected transient reserve failure")
          : frozen_block
              ? Status::error("KV pool frozen by fault-plan window")
              : kv.reserve(flight.seq, flight.tick_rows);
      if (!reserved.is_ok() && flight.spec_k > 0) {
        // The verify window did not fit: give the draft fork back and
        // retry as a plain step — speculation must never retire a
        // request the target-only engine would have completed.
        kv.release(flight.draft_seq);
        flight.draft_seq = -1;
        flight.spec_k = 0;
        flight.tick_rows = 1;
        if (!injected && !frozen_block) reserved = kv.reserve(flight.seq, 1);
      }
      if (!reserved.is_ok()) {
        RequestResult& out = report.results[flight.request_index];
        if ((injected || preempt_) && out.preemptions < max_preemptions_) {
          flight.requeue = true;
        } else {
          flight.failed = true;
          out.reason = out.preemptions > 0
                           ? FinishReason::kPreemptedUnrecoverable
                           : FinishReason::kOom;
          out.error = std::string(finish_reason_name(out.reason)) + ": " +
                      reserved.message() + " at tick " + std::to_string(clock);
        }
      }
    }
    std::erase_if(active, [&](InFlight& flight) {
      if (flight.requeue) {
        suspend_flight(flight);
        return true;
      }
      if (!flight.failed) return false;
      if (flight.draft_seq >= 0) kv.release(flight.draft_seq);
      kv.release(flight.seq);
      ++free_slots;
      ++report.oom_failures;
      return true;
    });
    // Requeues can empty the tick (e.g. every flight hit the frozen
    // window): advance the clock so the window eventually passes.
    if (active.empty()) {
      ++clock;
      continue;
    }
    kv_pages_sum += kv.stats().pages_in_use;

    // --- Draft phase (speculative cycles only): the cheap backend
    // proposes spec_k tokens per decoding flight, one fused draft
    // step_batch per proposal depth across every still-drafting flight.
    // Drafts attend over the verified prefix through the fork's shared
    // pages and over their own proposals through the fork's private
    // (copy-on-write) tail — the target's pages are never written. Each
    // logits row is an independent serial accumulation, so proposals are
    // deterministic at any BBAL_THREADS and any batch composition.
    if (speculative()) {
      for (InFlight& flight : active) flight.proposals.clear();
      for (int s = 0;; ++s) {
        draft_tokens.clear();
        draft_views.clear();
        for (InFlight& flight : active) {
          if (flight.spec_k <= s) continue;
          draft_tokens.push_back(s == 0 ? flight.last_token
                                        : flight.proposals.back());
          draft_views.push_back(&flight.draft_view);
        }
        if (draft_tokens.empty()) break;
        draft_decoder_->step_batch(draft_tokens, draft_views, draft_logits);
        int row = 0;
        for (InFlight& flight : active) {
          if (flight.spec_k <= s) continue;
          flight.proposals.push_back(greedy_argmax(draft_logits.row(row)));
          ++row;
        }
      }
    }

    // Price the tick before stepping it: a decode row attends over
    // (cached positions + 1); a prefill chunk prices its fused M=chunk
    // projections plus per-row causal attention
    // (accel::prefill_chunk_gemms — this is where chunking's simulated
    // speedup physically comes from: weight streaming, the dominant
    // memory-cycle term, is paid once per chunk). The batch shares the
    // accelerator, so the tick costs their combined workload. KV-cache
    // traffic (ctx reads + 1 write of K and V rows per layer, per row) is
    // priced on the pool's SRAM macro.
    double tick_seconds = 0.0;
    if (accel_) {
      std::vector<accel::GemmShape> workload;
      std::vector<accel::GemmShape> draft_workload;
      std::int64_t kv_bytes = 0;
      for (const InFlight& flight : active) {
        if (flight.tick_rows == 0) continue;
        const int base = kv.length(flight.seq);
        std::vector<accel::GemmShape> step =
            flight.tick_rows == 1
                ? accel::decode_step_gemms(cfg, base + 1)
                : accel::prefill_chunk_gemms(cfg, base, flight.tick_rows);
        // A resumed flight's re-prefill is recompute work: attribute its
        // price (as if run alone on the same accelerator; simulated cost
        // is additive over GEMMs) before the rows join the fused tick.
        if (flight.resuming)
          report.preempt_recompute_seconds +=
              accel::simulate_workload(*accel_, step).seconds;
        workload.insert(workload.end(),
                        std::make_move_iterator(step.begin()),
                        std::make_move_iterator(step.end()));
        // ctx reads + 1 write of K and V rows per layer, in packed bytes —
        // a quantised format moves proportionally less KV traffic.
        for (int i = 0; i < flight.tick_rows; ++i)
          kv_bytes += token_kv_bytes * (base + i + 2);
        // Draft forwards: spec_k sequential M=1 decode steps at growing
        // context, priced on the draft accelerator below. Their KV
        // traffic hits the same pool macro as everything else.
        for (int s = 0; s < flight.spec_k; ++s) {
          std::vector<accel::GemmShape> dstep =
              accel::decode_step_gemms(cfg, base + s + 1);
          draft_workload.insert(draft_workload.end(),
                                std::make_move_iterator(dstep.begin()),
                                std::make_move_iterator(dstep.end()));
          kv_bytes += token_kv_bytes * (base + s + 2);
        }
      }
      const accel::RunStats stats = accel::simulate_workload(*accel_, workload);
      tick_seconds = stats.seconds;
      report.simulated_macs += stats.gemm.macs;
      energy.core_j += stats.energy.core_j;
      energy.buffer_j += stats.energy.buffer_j;
      energy.dram_j += stats.energy.dram_j;
      energy.static_j += stats.energy.static_j;
      if (!draft_workload.empty()) {
        const accel::RunStats dstats =
            accel::simulate_workload(*draft_accel_, draft_workload);
        tick_seconds += dstats.seconds;
        report.simulated_macs += dstats.gemm.macs;
        energy.core_j += dstats.energy.core_j;
        energy.buffer_j += dstats.energy.buffer_j;
        energy.dram_j += dstats.energy.dram_j;
        energy.static_j += dstats.energy.static_j;
      }
      sim_makespan += tick_seconds;
      // 64-bit words on the KV macro port: 8 packed bytes per access.
      kv_energy_j += static_cast<double>(kv_bytes) / 8.0 *
                     kv_sram.access_pj() * 1e-12;
    }

    // Advance the tick's whole row mix in ONE fused forward
    // (Decoder::step_groups): a decoding flight contributes one row, a
    // prefilling flight its granted chunk of consecutive prompt tokens.
    // Each projection is a single batched GEMM over every row
    // (activations quantised once, rows tiled over the thread pool inside
    // llm::matmul), attention runs per sequence — causal within a chunk —
    // and each row's arithmetic is bit-identical to an isolated M=1 step
    // (independent per-row accumulators), so streams match the serial
    // unchunked reference at any BBAL_THREADS and any chunk size.
    tick_tokens.clear();
    tick_views.clear();
    tick_counts.clear();
    for (InFlight& flight : active) {
      if (flight.tick_rows == 0) continue;  // budget passed it over
      const std::vector<int>& prompt = prompt_of(flight.request_index);
      const bool prefilling =
          flight.prompt_pos < static_cast<int>(prompt.size());
      if (prefilling) {
        for (int i = 0; i < flight.tick_rows; ++i)
          tick_tokens.push_back(
              prompt[static_cast<std::size_t>(flight.prompt_pos + i)]);
      } else {
        // A decode group is the verify window [x0, d1..d_spec_k]: the
        // target computes every window position's logits in this one
        // fused forward (kAllRows). With speculation off it is the
        // single-row legacy group.
        tick_tokens.push_back(flight.last_token);
        for (const int t : flight.proposals) tick_tokens.push_back(t);
      }
      tick_views.push_back(&flight.view);
      tick_counts.push_back(flight.tick_rows);
    }
    const bool all_rows = speculative();
    decoder_->step_groups(tick_tokens, tick_views, tick_counts, tick_logits,
                          all_rows ? llm::Decoder::LogitsMode::kAllRows
                                   : llm::Decoder::LogitsMode::kLastPerGroup);
    // Emission. Default mode: one logits row per stepped flight (its
    // group's last row). Speculative mode: the row cursor walks every
    // window position; a decode flight accepts the longest drafted prefix
    // matching the target's greedy argmax, then emits the correction
    // (first mismatching row's argmax) or — all drafts accepted — the
    // bonus token. Rejected window rows are rolled back with
    // PagedKVPool::truncate, so the surviving KV state is exactly what a
    // target-only engine would hold after the same emissions.
    int row = 0;
    for (InFlight& flight : active) {
      flight.tick_emitted = 0;
      if (flight.tick_rows == 0) continue;
      RequestResult& out = report.results[flight.request_index];
      const int prompt_len =
          static_cast<int>(prompt_of(flight.request_index).size());
      if (flight.prompt_pos < prompt_len) {
        flight.prompt_pos += flight.tick_rows;
        // The tick that consumes the final prompt token emits the first
        // generated token — for a resumed flight that is the first *new*
        // token after the re-prefilled continuation, so the stream
        // continues exactly where the suspension cut it.
        if (flight.prompt_pos == prompt_len) {
          const int last = all_rows ? row + flight.tick_rows - 1 : row;
          flight.last_token = greedy_argmax(tick_logits.row(last));
          out.generated.push_back(flight.last_token);
          flight.tick_emitted = 1;
          flight.resuming = false;
          if (out.generated.size() == 1) out.first_token_tick = clock;
        }
      } else if (!all_rows) {
        flight.last_token = greedy_argmax(tick_logits.row(row));
        out.generated.push_back(flight.last_token);
        flight.tick_emitted = 1;
        if (out.generated.size() == 1) out.first_token_tick = clock;
      } else {
        int accepted = 0;
        int next = -1;
        for (;;) {
          // Row (row + accepted) holds the target's next-token logits
          // after x0, d1..d_accepted — what a target-only step at this
          // point would have produced, bit for bit.
          next = greedy_argmax(tick_logits.row(row + accepted));
          if (accepted == flight.spec_k ||
              next != flight.proposals[static_cast<std::size_t>(accepted)])
            break;
          out.generated.push_back(next);
          ++accepted;
        }
        out.generated.push_back(next);  // correction or bonus token
        flight.last_token = next;
        flight.tick_emitted = accepted + 1;
        if (flight.spec_k > 0) {
          ++report.draft_cycles;
          report.drafted_tokens += flight.spec_k;
          report.accepted_tokens += accepted;
        }
        if (accepted < flight.spec_k)
          kv.truncate(flight.seq, flight.tick_base + accepted + 1);
        if (flight.draft_seq >= 0) {
          kv.release(flight.draft_seq);
          flight.draft_seq = -1;
        }
        if (out.generated.size() ==
            static_cast<std::size_t>(flight.tick_emitted))
          out.first_token_tick = clock;
      }
      row += all_rows ? flight.tick_rows : 1;
    }

    // Counterfactual pricing (speculative runs): what the same emissions
    // would have cost target-only — identical prefill work plus one M=1
    // decode step per emitted token at its context, on the target
    // accelerator. Simulated cost is additive over GEMMs, so per-tick
    // summation is exact.
    if (accel_ && speculative()) {
      equiv_workload.clear();
      for (const InFlight& flight : active) {
        if (flight.tick_rows == 0) continue;
        const int prompt_len =
            static_cast<int>(requests[flight.request_index].prompt.size());
        if (flight.tick_base < prompt_len) {
          std::vector<accel::GemmShape> step =
              flight.tick_rows == 1
                  ? accel::decode_step_gemms(cfg, flight.tick_base + 1)
                  : accel::prefill_chunk_gemms(cfg, flight.tick_base,
                                               flight.tick_rows);
          equiv_workload.insert(equiv_workload.end(),
                                std::make_move_iterator(step.begin()),
                                std::make_move_iterator(step.end()));
        } else {
          for (int i = 1; i <= flight.tick_emitted; ++i) {
            std::vector<accel::GemmShape> step =
                accel::decode_step_gemms(cfg, flight.tick_base + i);
            equiv_workload.insert(equiv_workload.end(),
                                  std::make_move_iterator(step.begin()),
                                  std::make_move_iterator(step.end()));
          }
        }
      }
      target_equiv_seconds +=
          accel::simulate_workload(*accel_, equiv_workload).seconds;
    }
    const double wall_now = seconds_since(run_start);

    // What PR 3's per-request contiguous caches would hold right now.
    std::int64_t contiguous_tokens = 0;
    for (const InFlight& flight : active)
      contiguous_tokens += kv.length(flight.seq);
    contiguous_peak_tokens =
        std::max(contiguous_peak_tokens, contiguous_tokens);

    // Serial bookkeeping + retirement, in slot-admission order. Latencies
    // are read off the global run clocks (sim_makespan already includes
    // this tick), so queueing delay counts toward TTFT and total latency.
    for (InFlight& flight : active) {
      const Request& req = requests[flight.request_index];
      RequestResult& out = report.results[flight.request_index];
      ++flight.steps;
      // Per emitted token (a speculative cycle can emit several): the
      // first-ever token stamps TTFT, every later one an inter-token gap.
      // Tokens of one tick all land at the same simulated instant, so the
      // second and later of a cycle record a zero gap — the latency a
      // streaming client actually observes.
      const std::size_t emitted_before =
          out.generated.size() - static_cast<std::size_t>(flight.tick_emitted);
      for (int t = 0; t < flight.tick_emitted; ++t) {
        token_latencies.push_back(tick_seconds);
        if (emitted_before + static_cast<std::size_t>(t) == 0) {
          flight.ttft_seconds =
              sim_makespan - arrival_seconds[flight.request_index];
          flight.ttft_wall_seconds =
              wall_now - arrival_wall[flight.request_index];
        } else {
          const double gap = sim_makespan - flight.last_emit_seconds;
          inter_token_gaps.push_back(gap);
          flight.max_gap_seconds = std::max(flight.max_gap_seconds, gap);
        }
        flight.last_emit_seconds = sim_makespan;
      }
      if (flight.tick_emitted > 0) {
        // The prefill just completed: its full prompt pages become
        // shareable for every follower with the same prefix. Registration
        // is always over the *original* prompt (a resumed flight's pages
        // cover it as a prefix of the continuation) and happens once per
        // request across suspensions.
        if (sharing && !flight.registered) {
          kv.register_prefix(flight.seq, req.prompt);
          flight.registered = true;
          prefix_registered[flight.request_index] = 1;
        }
      }
    }
    std::erase_if(active, [&](InFlight& flight) {
      const Request& req = requests[flight.request_index];
      RequestResult& out = report.results[flight.request_index];
      if (static_cast<int>(out.generated.size()) < req.max_new_tokens)
        return false;
      out.ok = true;
      out.steps = susp[flight.request_index].steps + flight.steps;
      out.ttft_seconds = flight.ttft_seconds;
      out.ttft_wall_seconds = flight.ttft_wall_seconds;
      out.total_seconds = sim_makespan - arrival_seconds[flight.request_index];
      out.wall_seconds = wall_now - arrival_wall[flight.request_index];
      out.max_inter_token_seconds = flight.max_gap_seconds;
      if (slo_)
        out.slo_ok = out.ttft_seconds <= slo_->ttft_seconds &&
                     flight.max_gap_seconds <= slo_->inter_token_seconds;
      if (report.has_cost && out.total_seconds > 0.0)
        out.tokens_per_second =
            static_cast<double>(out.generated.size()) / out.total_seconds;
      kv.release(flight.seq);
      ++free_slots;
      return true;
    });
    ++clock;
  }
  report.wall_seconds = seconds_since(run_start);
  report.clock_ticks = clock;

  // --- Paged-KV aggregates ---
  report.kv_pages_allocated = kv.stats().pages_allocated;
  report.kv_bytes_peak = kv.bytes_peak();
  report.kv_bytes_peak_contiguous = contiguous_peak_tokens * token_bytes;
  report.prefix_hit_rate = kv.stats().prefix_hit_rate();
  if (report.engine_steps > 0)
    report.kv_pool_occupancy =
        static_cast<double>(kv_pages_sum) /
        (static_cast<double>(report.engine_steps) *
         static_cast<double>(kv.max_pages()));
  report.kv_energy_j = kv_energy_j;

  // --- Aggregates (completed requests only) ---
  double ttft_sum = 0.0;
  double queue_sum = 0.0;
  std::vector<double> queue_delays;
  std::vector<double> ttfts;
  std::uint32_t hash = 2166136261u;
  for (const RequestResult& out : report.results) {
    if (!out.ok) continue;
    ++report.completed;
    report.prompt_tokens += out.prompt_tokens;
    report.generated_tokens += static_cast<std::int64_t>(out.generated.size());
    ttft_sum += out.ttft_seconds;
    ttfts.push_back(out.ttft_seconds);
    queue_sum += static_cast<double>(out.queue_ticks);
    queue_delays.push_back(static_cast<double>(out.queue_ticks));
    if (out.slo_ok) ++report.slo_met;
    fnv32_mix(hash, static_cast<std::uint32_t>(out.id));
    for (const int token : out.generated)
      fnv32_mix(hash, static_cast<std::uint32_t>(token));
  }
  report.stream_hash = hash;

  // --- Open-loop load metrics ---
  if (report.completed > 0)
    report.queue_delay_mean_ticks =
        queue_sum / static_cast<double>(report.completed);
  report.queue_delay_p99_ticks = percentile(queue_delays, 99.0);
  if (!arrivals.empty()) {
    std::int64_t demanded_tokens = 0;
    std::int64_t last_arrival = 0;
    for (const std::size_t i : arrivals) {
      demanded_tokens += requests[i].max_new_tokens;
      last_arrival = std::max(last_arrival, requests[i].arrival_tick);
    }
    report.offered_tokens_per_tick =
        static_cast<double>(demanded_tokens) /
        static_cast<double>(last_arrival + 1);
  }
  if (report.clock_ticks > 0)
    report.throughput_tokens_per_tick =
        static_cast<double>(report.generated_tokens) /
        static_cast<double>(report.clock_ticks);
  if (report.has_slo && report.requests > 0)
    report.goodput_under_slo = static_cast<double>(report.slo_met) /
                               static_cast<double>(report.requests);
  if (report.engine_steps > 0)
    report.mean_batch_occupancy = static_cast<double>(occupancy_sum) /
                                  static_cast<double>(report.engine_steps);
  // --- Robustness aggregates ---
  if (report.resumes > 0)
    report.requeue_delay_mean_ticks =
        requeue_delay_sum / static_cast<double>(report.resumes);
  // --- Speculative aggregates ---
  if (report.drafted_tokens > 0)
    report.acceptance_rate = static_cast<double>(report.accepted_tokens) /
                             static_cast<double>(report.drafted_tokens);
  if (report.has_cost && speculative() && sim_makespan > 0.0)
    report.speedup_vs_target = target_equiv_seconds / sim_makespan;
  // Ticks run sequentially on the shared accelerator, so the simulated
  // makespan of the run is the sum of per-tick latencies.
  report.total_seconds = sim_makespan;
  if (report.has_cost && sim_makespan > 0.0)
    report.throughput_tokens_per_second =
        static_cast<double>(report.generated_tokens) / sim_makespan;
  report.energy_j = energy.total_j() + report.kv_energy_j;
  if (report.completed > 0)
    report.ttft_mean_seconds = ttft_sum / static_cast<double>(report.completed);
  report.p50_step_seconds = percentile(token_latencies, 50.0);
  report.p95_step_seconds = percentile(token_latencies, 95.0);
  report.p99_step_seconds = percentile(token_latencies, 99.0);
  report.p99_ttft_seconds = percentile(ttfts, 99.0);
  report.p50_inter_token_seconds = percentile(inter_token_gaps, 50.0);
  report.p95_inter_token_seconds = percentile(inter_token_gaps, 95.0);
  report.p99_inter_token_seconds = percentile(inter_token_gaps, 99.0);
  return report;
}

// --- Report ------------------------------------------------------------------

const char* finish_reason_name(FinishReason reason) {
  switch (reason) {
    case FinishReason::kNone:
      return "none";
    case FinishReason::kInvalid:
      return "invalid";
    case FinishReason::kTimeout:
      return "timeout";
    case FinishReason::kCancelled:
      return "cancelled";
    case FinishReason::kPreemptedUnrecoverable:
      return "preempted_unrecoverable";
    case FinishReason::kOom:
      return "oom";
  }
  return "unknown";
}

namespace {

void append_json(std::ostringstream& os, const char* key, double v) {
  os << ", \"" << key << "\": " << v;
}

/// Count fields (token totals, hashes) are exact-match in the CI gate, so
/// they must serialise at full precision, not the double default.
void append_json_int(std::ostringstream& os, const char* key,
                     std::int64_t v) {
  os << ", \"" << key << "\": " << v;
}

}  // namespace

std::string Report::to_json() const {
  std::ostringstream os;
  os.precision(6);
  os << "{\"model\": \"" << model << "\", \"matmul\": \"" << matmul
     << "\", \"nonlinear\": \"" << nonlinear << "\", \"policy\": \""
     << policy << "\"";
  if (!kv_format.empty()) os << ", \"kv_format\": \"" << kv_format << "\"";
  if (!workload.empty()) os << ", \"workload\": \"" << workload << "\"";
  append_json_int(os, "requests", requests);
  append_json_int(os, "completed", completed);
  append_json_int(os, "max_batch", max_batch);
  // Prefill block only when chunking is on: default-configured rows stay
  // byte-exact with the pre-chunking engine (the correctness bar every
  // committed BENCH_serve.json / BENCH_slo.json row is held to).
  if (prefill_chunk != 1 || prefill_budget != 0) {
    append_json_int(os, "prefill_chunk", prefill_chunk);
    append_json_int(os, "prefill_budget", prefill_budget);
    append_json_int(os, "mixed_ticks", mixed_ticks);
  }
  // Speculative block only when a draft backend ran: default rows stay
  // byte-exact with the pre-speculative engine.
  if (draft_k > 0) {
    os << ", \"draft\": \"" << draft << "\"";
    append_json_int(os, "draft_k", draft_k);
    append_json_int(os, "draft_cycles", draft_cycles);
    append_json_int(os, "drafted_tokens", drafted_tokens);
    append_json_int(os, "accepted_tokens", accepted_tokens);
    append_json(os, "acceptance_rate", acceptance_rate);
    if (has_cost) append_json(os, "speedup_vs_target", speedup_vs_target);
  }
  // Fault/preemption block only when faults, deadlines or preemption were
  // configured: default rows stay byte-exact with the pre-faults engine.
  if (has_faults) {
    if (!fault_plan.empty())
      os << ", \"fault_plan\": \"" << fault_plan << "\"";
    append_json_int(os, "preempt", preempt ? 1 : 0);
    append_json_int(os, "preemptions", preemptions);
    append_json_int(os, "resumes", resumes);
    append_json(os, "requeue_delay_mean_ticks", requeue_delay_mean_ticks);
    append_json_int(os, "preempt_recompute_tokens", preempt_recompute_tokens);
    if (has_cost)
      append_json(os, "preempt_recompute_seconds", preempt_recompute_seconds);
    append_json_int(os, "timeouts", timeouts);
    append_json_int(os, "cancellations", cancellations);
    append_json_int(os, "oom_failures", oom_failures);
  }
  append_json_int(os, "prompt_tokens", prompt_tokens);
  append_json_int(os, "generated_tokens", generated_tokens);
  append_json_int(os, "engine_steps", engine_steps);
  append_json_int(os, "clock_ticks", clock_ticks);
  append_json(os, "mean_batch_occupancy", mean_batch_occupancy);
  append_json(os, "queue_delay_mean_ticks", queue_delay_mean_ticks);
  append_json(os, "queue_delay_p99_ticks", queue_delay_p99_ticks);
  append_json(os, "offered_tokens_per_tick", offered_tokens_per_tick);
  append_json(os, "throughput_tokens_per_tick", throughput_tokens_per_tick);
  append_json_int(os, "stream_hash", static_cast<std::int64_t>(stream_hash));
  append_json_int(os, "weights_bytes", weights_bytes);
  append_json_int(os, "kv_pages_allocated", kv_pages_allocated);
  append_json_int(os, "kv_bytes_peak", kv_bytes_peak);
  append_json_int(os, "kv_bytes_peak_contiguous", kv_bytes_peak_contiguous);
  append_json(os, "prefix_hit_rate", prefix_hit_rate);
  append_json(os, "kv_pool_occupancy", kv_pool_occupancy);
  if (has_cost) {
    append_json_int(os, "simulated_macs", simulated_macs);
    append_json(os, "total_seconds", total_seconds);
    append_json(os, "throughput_tokens_per_second",
                throughput_tokens_per_second);
    append_json(os, "ttft_mean_seconds", ttft_mean_seconds);
    append_json(os, "p50_step_seconds", p50_step_seconds);
    append_json(os, "p95_step_seconds", p95_step_seconds);
    append_json(os, "p99_step_seconds", p99_step_seconds);
    append_json(os, "p99_ttft_seconds", p99_ttft_seconds);
    append_json(os, "p50_inter_token_seconds", p50_inter_token_seconds);
    append_json(os, "p95_inter_token_seconds", p95_inter_token_seconds);
    append_json(os, "p99_inter_token_seconds", p99_inter_token_seconds);
    append_json(os, "energy_j", energy_j);
    append_json(os, "kv_energy_j", kv_energy_j);
  }
  if (has_slo) {
    append_json(os, "slo_ttft_seconds", slo_ttft_seconds);
    append_json(os, "slo_inter_token_seconds", slo_inter_token_seconds);
    append_json_int(os, "slo_met", slo_met);
    append_json(os, "goodput_under_slo", goodput_under_slo);
  }
  os << "}";
  return os.str();
}

}  // namespace bbal::serve
