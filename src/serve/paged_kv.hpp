// serve::PagedKVPool — block-paged KV-cache storage for the serving
// engine, replacing PR 3's per-request contiguous llm::KVCache.
//
// Motivation (ROADMAP "heavy traffic" north star): with monolithic
// per-request caches, KV memory scales linearly with concurrency and N
// requests sharing a prompt prefix store (and recompute) that prefix N
// times. The pool instead carves KV storage into fixed-size token pages:
//
//  - a page holds `page_tokens` positions of K and V rows for every layer
//    (one physical allocation, laid out [layer][slot][row]);
//  - rows are stored *packed* in the pool's quant::KvFormat — FP32 raw
//    floats by default, or INT8 / BFP / BBFP shared-exponent groups via
//    quant::KvPageCodec, quantised on append and dequantised on read
//    (see docs/KV_QUANT.md). page_bytes() and every byte metric derived
//    from it count these packed bytes;
//  - a sequence is a page table (vector of page ids) plus a length;
//  - pages are refcounted: fork() shares every page of a sequence, and
//    create(prompt) attaches the full pages of a registered prompt prefix
//    (copy-on-write: appending into a shared tail page copies it first).
//    Sharing and CoW operate on the encoded bytes — the codec never runs
//    twice over a shared prefix;
//  - allocation is free-list based, capacity-bounded (max_pages), and
//    exhaustion is a Status error after deterministic LRU eviction of
//    registered prefixes — never an abort;
//  - every allocation / copy / eviction / prefix hit is counted in Stats,
//    which the engine surfaces as kv_pages_allocated, kv_bytes_peak,
//    prefix_hit_rate and pool occupancy, and prices via hw::sram.
//
// Prefix sharing is bit-safe by construction: encoded K/V rows are a
// deterministic function of (model weights, strategy, kv format, token
// prefix), and every request runs on the engine's one shared quantised
// backend, so a shared page holds exactly the bytes every sharer would
// have computed (test_paged_kv pins decoder-through-pool against
// decoder-through-KVCache, float for float, in the FP32 format).
//
// Threading contract: all *structural* mutation — create / fork /
// release / reserve_next / register_prefix / probe — is serial-only (the
// engine does it between ticks). During a tick, the fused batch step
// appends and reads through each sequence's PagedKVView from the calling
// thread only (parallelism lives inside the batched GEMMs, which never
// touch the pool); a view append only writes that sequence's reserved
// tail slot, its own length counter and its own decode cache — disjoint
// state, no locks needed, and safe even if a caller steps distinct
// sequences from distinct threads (shared pages are only ever *read*
// concurrently; a page with refcount > 1 is copied before any append).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.hpp"
#include "llm/decoder.hpp"
#include "llm/model.hpp"
#include "quant/kv_codec.hpp"

namespace bbal::serve {

class PagedKVPool {
 public:
  /// Handle to one sequence's page table. Never reused within a pool.
  using SeqId = int;

  struct Options {
    /// Positions per page. Smaller pages share prefixes at a finer grain
    /// but pay more page-table walks; 16 matches one decode-tile.
    int page_tokens = 16;
    /// Pool capacity. Page payloads are allocated lazily, so a generous
    /// bound costs page-table slots, not memory.
    int max_pages = 256;
    /// Storage format of every K/V row in the pool (FP32, INT8, BFP<m>,
    /// BBFP(<m>,<o>)). FP32 — the default — is the identity codec and
    /// keeps the pool byte-for-byte compatible with the unquantised path.
    quant::KvFormat kv_format{};
  };

  struct Stats {
    std::int64_t pages_allocated = 0;  ///< cumulative fresh allocations
    std::int64_t page_copies = 0;      ///< copy-on-write tail copies
    std::int64_t pages_evicted = 0;    ///< freed by prefix-entry eviction
    int pages_in_use = 0;              ///< pages with refcount > 0, now
    int pages_in_use_peak = 0;
    /// Prompt tokens offered to / served by prefix matching in create().
    std::int64_t prefix_lookup_tokens = 0;
    std::int64_t prefix_hit_tokens = 0;
    [[nodiscard]] double prefix_hit_rate() const {
      return prefix_lookup_tokens > 0
                 ? static_cast<double>(prefix_hit_tokens) /
                       static_cast<double>(prefix_lookup_tokens)
                 : 0.0;
    }
  };

  PagedKVPool(const llm::ModelConfig& config, Options options);

  // --- Sequence lifecycle (serial-only) -------------------------------------

  /// A fresh, empty sequence. Allocates no pages until reserve_next().
  [[nodiscard]] SeqId create();

  /// A sequence for `prompt`, sharing the longest registered prompt-prefix
  /// match in whole pages (capped below prompt.size() so the caller always
  /// recomputes at least the final prompt position — decode needs its
  /// logits). shared_length() reports the positions pre-populated; the
  /// caller resumes prefill there. Counts the lookup in Stats.
  [[nodiscard]] SeqId create(std::span<const int> prompt);

  /// Share every page of `source` (refcounts bumped). Both sequences
  /// copy-on-write their common tail page on the next append.
  [[nodiscard]] SeqId fork(SeqId source);

  /// Drop the sequence's page references; pages whose refcount reaches 0
  /// return to the free list (registered prefixes keep their own refs).
  void release(SeqId id);

  /// Guarantee capacity for `count` appended positions: copies a shared
  /// tail page first (copy-on-write — only when the sequence will append
  /// into it), then allocates one fresh page per page boundary the new
  /// positions cross. Exhaustion first evicts registered prefix entries
  /// (oldest use first) and then — if the pool is still full — returns an
  /// error, rolling back this call's fresh allocations so the sequence's
  /// page table and length are unchanged (a completed tail copy stands:
  /// same bytes, now private). Must precede the append(s) of each step;
  /// the engine calls it serially before a tick.
  [[nodiscard]] Status reserve(SeqId id, int count);

  /// reserve() of a single position — the decode-step case.
  [[nodiscard]] Status reserve_next(SeqId id) { return reserve(id, 1); }

  /// Roll the sequence back to `n` committed positions (speculative
  /// decoding's rejection path). Pages past the new tail are unreffed —
  /// freed when theirs was the last reference, kept alive when a fork or
  /// registered prefix still holds them — and a partially-filled tail
  /// page is kept (its slots above `n` are dead bytes every future
  /// append overwrites before any read, per the KVCacheView protocol).
  /// `n > length` is a no-op; reserve()-grown but unfilled tail pages are
  /// dropped too. Serial-only, like all structural mutation.
  void truncate(SeqId id, int n);

  // --- Prompt-prefix sharing (serial-only) ----------------------------------

  /// Register `id`'s leading full pages of `prompt` as shareable (the
  /// engine calls this when a request finishes prefill). The entry holds
  /// its own page references, so the prefix outlives release(id) until
  /// evicted. Re-registering an identical prompt refreshes its use time.
  void register_prefix(SeqId id, std::span<const int> prompt);

  /// Tokens of `prompt` a create(prompt) would currently share (whole
  /// pages, capped below prompt.size()). Read-only; does not touch Stats.
  [[nodiscard]] int probe_prefix_tokens(std::span<const int> prompt) const;

  /// Drop every registered prefix entry (deterministic mass eviction; the
  /// engine's last resort before failing an admission).
  void drop_registered_prefixes();

  // --- Introspection ---------------------------------------------------------

  [[nodiscard]] int length(SeqId id) const;
  /// Positions create(prompt) pre-populated from shared pages.
  [[nodiscard]] int shared_length(SeqId id) const;
  /// Refcount of the page holding position `pos` of `id` (tests).
  [[nodiscard]] int page_refcount(SeqId id, int pos) const;
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] int page_tokens() const { return options_.page_tokens; }
  [[nodiscard]] int max_pages() const { return options_.max_pages; }
  /// The row codec every page stores through.
  [[nodiscard]] const quant::KvPageCodec& codec() const { return codec_; }
  /// Packed bytes one K or V row occupies (d_model floats encoded).
  [[nodiscard]] std::int64_t encoded_row_bytes() const {
    return static_cast<std::int64_t>(codec_.encoded_row_bytes());
  }
  /// *Packed* bytes of K+V payload one page holds
  /// (layers * slots * 2 * encoded_row_bytes).
  [[nodiscard]] std::int64_t page_bytes() const;
  [[nodiscard]] std::int64_t bytes_in_use() const {
    return static_cast<std::int64_t>(stats_.pages_in_use) * page_bytes();
  }
  [[nodiscard]] std::int64_t bytes_peak() const {
    return static_cast<std::int64_t>(stats_.pages_in_use_peak) * page_bytes();
  }
  /// Pages a sequence of `total_positions` needs in the worst case (no
  /// sharing): the engine's admission budget.
  [[nodiscard]] int pages_for(int total_positions) const;

 private:
  friend class PagedKVView;

  struct Page {
    std::vector<std::uint8_t> k;  ///< [layer][slot][encoded row], lazy
    std::vector<std::uint8_t> v;
    int refs = 0;
  };

  struct Sequence {
    std::vector<int> pages;
    int length = 0;
    int shared = 0;  ///< positions attached from a registered prefix
    bool alive = false;
  };

  /// One shareable prompt prefix: the tokens of its full pages and the
  /// pages themselves (referenced). `last_use` orders LRU eviction.
  struct PrefixEntry {
    std::vector<int> tokens;
    std::vector<int> pages;
    std::int64_t last_use = 0;
  };

  [[nodiscard]] Result<int> allocate_page();
  void ref_page(int page);
  void unref_page(int page);
  /// Evict the least-recently-used prefix entry; false when none remain.
  bool evict_one_prefix();
  /// Index into prefixes_ of the longest whole-page match (-1: none).
  [[nodiscard]] int best_prefix_match(std::span<const int> prompt,
                                      int* match_pages) const;

  // Packed-payload addressing within a page (byte offset of a row).
  [[nodiscard]] std::size_t row_offset(int layer, int slot) const;

  llm::ModelConfig config_;
  Options options_;
  quant::KvPageCodec codec_;
  Stats stats_;
  std::vector<Page> pages_;
  std::vector<int> free_pages_;  ///< stack; deterministic push/pop order
  std::vector<Sequence> sequences_;
  std::vector<PrefixEntry> prefixes_;
  std::int64_t use_clock_ = 0;  ///< logical time for prefix LRU
};

/// llm::KVCacheView over one pool sequence: what Decoder::step reads and
/// writes in the paged serving path. Append assumes reserve() covered the
/// step's positions (the engine's tick protocol); the appended positions
/// commit to the sequence length as the last layer's rows land, in
/// position order — so a chunked step's n positions become readable
/// history exactly when the KVCacheView protocol says they must.
///
/// Because pages hold packed bytes, the view owns a per-page decode cache:
/// k_at/v_at return spans into page-sized float buffers filled lazily from
/// the encoded storage (and directly by append, which round-trips the row
/// through the codec so a same-step read sees exactly the values every
/// later step will). Buffers are per-view and allocated once per page, so
/// spans satisfy the KVCacheView protocol — valid for the rest of the
/// step, no reallocation mid-step — and a page shared by many sequences
/// is decoded independently by each reader, never mutated. In the FP32
/// format the codec is the identity, so the decode cache reproduces the
/// storage bytes exactly and streams stay bit-identical to the
/// float-paged engine.
class PagedKVView final : public llm::KVCacheView {
 public:
  PagedKVView() = default;
  PagedKVView(PagedKVPool& pool, PagedKVPool::SeqId id)
      : pool_(&pool), id_(id) {}

  [[nodiscard]] int length() const override;
  void append(int layer, int pos, std::span<const float> k_row,
              std::span<const float> v_row) override;
  [[nodiscard]] std::span<const float> k_at(int layer,
                                            int pos) const override;
  [[nodiscard]] std::span<const float> v_at(int layer,
                                            int pos) const override;

  [[nodiscard]] PagedKVPool::SeqId sequence() const { return id_; }

 private:
  /// Decoded floats of one page, [layer][slot][d_model] per side. `slots`
  /// counts the leading positions decoded for every layer; the slot a
  /// step is appending sits above it until the last layer's row lands.
  struct DecodedPage {
    std::vector<float> k;
    std::vector<float> v;
    int slots = 0;
  };

  /// The page's decode cache, with every filled slot (per the sequence
  /// length) decoded. Allocates the buffers on first touch of the page.
  [[nodiscard]] DecodedPage& decoded_page(int page_index) const;
  /// Float offset of (layer, slot) within a DecodedPage buffer.
  [[nodiscard]] std::size_t float_offset(int layer, int slot) const;

  PagedKVPool* pool_ = nullptr;
  PagedKVPool::SeqId id_ = -1;
  /// Indexed by page position in the sequence's page table. Entries move
  /// but their float buffers never reallocate once sized, so spans handed
  /// out stay valid for the rest of a step.
  mutable std::vector<DecodedPage> decoded_;
};

}  // namespace bbal::serve
