#include "serve/trace.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/rng.hpp"

namespace bbal::serve {
namespace {

// Stream-key mixers. Grouped entries shift the per-entry stream index by
// one and key group g's stream with g * kGroupMix, so a single-group
// trace of shared_prefix_requests shape (group 0 -> Rng(seed)) and an
// ungrouped trace of synthetic_requests shape materialise the *identical*
// request vectors those generators produce — one Rng scheme, no
// duplicate token streams to keep in sync.
constexpr std::uint64_t kEntryMix = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kGroupMix = 0xd1b54a32d192ed03ull;

}  // namespace

std::string to_jsonl(const TraceEntry& entry) {
  std::ostringstream os;
  os << "{\"arrival_tick\": " << entry.arrival_tick
     << ", \"prompt_len\": " << entry.prompt_len
     << ", \"max_new_tokens\": " << entry.max_new_tokens;
  if (entry.prefix_group >= 0)
    os << ", \"prefix_group\": " << entry.prefix_group
       << ", \"prefix_len\": " << entry.prefix_len;
  os << "}";
  return os.str();
}

Result<TraceEntry> parse_trace_line(const std::string& line) {
  using R = Result<TraceEntry>;
  TraceEntry entry;
  bool have_arrival = false, have_prompt = false, have_budget = false;
  std::size_t pos = 0;
  const auto skip_ws = [&] {
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos])))
      ++pos;
  };
  skip_ws();
  if (pos >= line.size() || line[pos] != '{') return R::error("expected '{'");
  ++pos;
  skip_ws();
  if (pos < line.size() && line[pos] == '}') {
    ++pos;
  } else {
    for (;;) {
      skip_ws();
      if (pos >= line.size() || line[pos] != '"')
        return R::error("expected a quoted key");
      const std::size_t key_start = ++pos;
      while (pos < line.size() && line[pos] != '"') ++pos;
      if (pos >= line.size()) return R::error("unterminated key");
      const std::string key = line.substr(key_start, pos - key_start);
      ++pos;
      skip_ws();
      if (pos >= line.size() || line[pos] != ':')
        return R::error("expected ':' after \"" + key + "\"");
      ++pos;
      skip_ws();
      const char* start = line.c_str() + pos;
      char* end = nullptr;
      const long long value = std::strtoll(start, &end, 10);
      if (end == start)
        return R::error("expected an integer value for \"" + key + "\"");
      pos += static_cast<std::size_t>(end - start);
      if (key == "arrival_tick") {
        entry.arrival_tick = value;
        have_arrival = true;
      } else if (key == "prompt_len") {
        entry.prompt_len = static_cast<int>(value);
        have_prompt = true;
      } else if (key == "max_new_tokens") {
        entry.max_new_tokens = static_cast<int>(value);
        have_budget = true;
      } else if (key == "prefix_group") {
        entry.prefix_group = static_cast<int>(value);
      } else if (key == "prefix_len") {
        entry.prefix_len = static_cast<int>(value);
      }  // unknown integer keys are ignored (forward compatibility)
      skip_ws();
      if (pos < line.size() && line[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < line.size() && line[pos] == '}') {
        ++pos;
        break;
      }
      return R::error("expected ',' or '}'");
    }
  }
  skip_ws();
  if (pos != line.size()) return R::error("trailing characters");
  if (!have_arrival || !have_prompt || !have_budget)
    return R::error(
        "missing required key (arrival_tick, prompt_len, max_new_tokens)");
  if (entry.arrival_tick < 0) return R::error("arrival_tick must be >= 0");
  if (entry.prompt_len <= 0) return R::error("prompt_len must be > 0");
  if (entry.max_new_tokens <= 0)
    return R::error("max_new_tokens must be > 0");
  if (entry.prefix_len < 0) return R::error("prefix_len must be >= 0");
  return entry;
}

Status write_trace(const std::string& path,
                   std::span<const TraceEntry> entries) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::error("cannot open " + path + " for writing");
  for (const TraceEntry& entry : entries) out << to_jsonl(entry) << "\n";
  out.flush();
  if (!out) return Status::error("write to " + path + " failed");
  return Status::ok();
}

Result<std::vector<TraceEntry>> read_trace(const std::string& path) {
  using R = Result<std::vector<TraceEntry>>;
  std::ifstream in(path);
  if (!in) return R::error("cannot open " + path);
  std::vector<TraceEntry> entries;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    auto entry = parse_trace_line(line);
    if (!entry.is_ok())
      return R::error(path + ":" + std::to_string(line_number) + ": " +
                      entry.message());
    entries.push_back(entry.value());
  }
  return entries;
}

std::vector<Request> materialize_trace(const llm::ModelConfig& config,
                                       std::span<const TraceEntry> entries,
                                       std::uint64_t seed) {
  std::vector<Request> requests;
  requests.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const TraceEntry& entry = entries[i];
    Request req;
    req.arrival_tick = entry.arrival_tick;
    req.max_new_tokens = entry.max_new_tokens;
    req.prompt.reserve(static_cast<std::size_t>(std::max(entry.prompt_len, 0)));
    const bool grouped = entry.prefix_group >= 0 && entry.prefix_len > 0;
    const int shared =
        grouped ? std::min(entry.prefix_len, entry.prompt_len) : 0;
    if (grouped) {
      Rng group_rng(seed ^
                    (static_cast<std::uint64_t>(entry.prefix_group) *
                     kGroupMix));
      for (int t = 0; t < shared; ++t)
        req.prompt.push_back(
            static_cast<int>(group_rng.uniform_int(0, config.vocab - 1)));
    }
    Rng rng(seed ^ ((static_cast<std::uint64_t>(i) + (grouped ? 1 : 0)) *
                    kEntryMix));
    for (int t = shared; t < entry.prompt_len; ++t)
      req.prompt.push_back(
          static_cast<int>(rng.uniform_int(0, config.vocab - 1)));
    requests.push_back(std::move(req));
  }
  return requests;
}

std::vector<TraceEntry> synthetic_trace(int count,
                                        std::span<const std::int64_t> ticks,
                                        int base_prompt_len,
                                        int max_new_tokens) {
  std::vector<TraceEntry> entries;
  entries.reserve(static_cast<std::size_t>(std::max(count, 0)));
  for (int i = 0; i < count; ++i) {
    TraceEntry entry;
    entry.arrival_tick =
        static_cast<std::size_t>(i) < ticks.size() ? ticks[i] : 0;
    entry.prompt_len = base_prompt_len + 2 * (i % 5);
    entry.max_new_tokens = max_new_tokens;
    entries.push_back(entry);
  }
  return entries;
}

std::vector<TraceEntry> shared_prefix_trace(
    int count, std::span<const std::int64_t> ticks, int groups,
    int prefix_len, int suffix_len, int max_new_tokens) {
  std::vector<TraceEntry> entries;
  entries.reserve(static_cast<std::size_t>(std::max(count, 0)));
  for (int i = 0; i < count; ++i) {
    TraceEntry entry;
    entry.arrival_tick =
        static_cast<std::size_t>(i) < ticks.size() ? ticks[i] : 0;
    entry.prompt_len = prefix_len + suffix_len + (i % 3);
    entry.max_new_tokens = max_new_tokens;
    entry.prefix_group = groups > 0 ? i % groups : -1;
    entry.prefix_len = entry.prefix_group >= 0 ? prefix_len : 0;
    entries.push_back(entry);
  }
  return entries;
}

}  // namespace bbal::serve
