// Deterministic synthetic serving traffic: the request mix used by
// bench_serve_throughput, tools/record_serve and the serving tests. Seeded
// prompts over the model's vocabulary with staggered lengths, so every
// consumer (and every CI run) replays the identical token streams.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "llm/decoder.hpp"
#include "llm/perplexity.hpp"
#include "quant/strategy.hpp"
#include "serve/request.hpp"

namespace bbal::serve {

/// Greedy sampling: the arg-max logit, lowest index winning ties, so a
/// continuation is a deterministic function of the prompt. The one
/// definition both the engine's batched path and reference_decode use —
/// the bit-identity gates compare their outputs, so the tie rule must be
/// shared, not duplicated.
[[nodiscard]] inline int greedy_argmax(std::span<const float> logits) {
  // max_element keeps the first maximum, which IS the lowest-index tie
  // rule; an empty span yields 0 like the hand-rolled loop did.
  if (logits.empty()) return 0;
  return static_cast<int>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

/// `count` requests over `config`'s vocabulary. Prompt i has
/// base_prompt_len + 2*(i % 5) tokens drawn from Rng(seed ^ i-mix), and a
/// budget of max_new_tokens. Pure function of its arguments.
[[nodiscard]] std::vector<Request> synthetic_requests(
    const llm::ModelConfig& config, int count, int base_prompt_len = 12,
    int max_new_tokens = 16, std::uint64_t seed = 2024);

/// `count` requests that all open with the same prefix_len-token prompt
/// prefix (one shared draw from Rng(seed)) followed by a per-request
/// suffix of suffix_len + (i % 3) tokens — the multi-user
/// same-system-prompt traffic the prefix-aware policy and the paged pool's
/// page sharing target. Pure function of its arguments.
[[nodiscard]] std::vector<Request> shared_prefix_requests(
    const llm::ModelConfig& config, int count, int prefix_len,
    int suffix_len = 4, int max_new_tokens = 16, std::uint64_t seed = 2024);

/// The prompt-heavy mix chunked prefill targets: `count` requests where
/// every `long_every`-th one (i % long_every == long_every - 1) carries a
/// long_prompt_len-token prompt and the rest keep the synthetic mix's
/// short staggered lengths (base_prompt_len + 2*(i % 5)). Token streams
/// draw from Rng(seed ^ i-mix) like synthetic_requests, so a request's
/// prompt depends only on its index — not on which bucket its neighbours
/// fall in. Arrival stamping is the caller's job (serve::load). Pure
/// function of its arguments.
[[nodiscard]] std::vector<Request> long_prompt_requests(
    const llm::ModelConfig& config, int count, int base_prompt_len = 12,
    int long_prompt_len = 96, int long_every = 4, int max_new_tokens = 16,
    std::uint64_t seed = 2024);

/// Reference path: decode one request alone, on a fresh backend pair
/// (`matmul` + FP32 nonlinear), greedy sampling — the stream a batched
/// Engine run must reproduce bit for bit (bench_serve_throughput and
/// test_serve hold the engine to this). Aborts on an unknown strategy.
[[nodiscard]] std::vector<int> reference_decode(
    const llm::PreparedModel& prepared, const quant::StrategySpec& matmul,
    const Request& request);

/// Same decode protocol over a caller-prepared decoder (fresh external
/// cache per call) — the variant timed comparisons use so weight
/// preparation stays out of the measured loop. The emission rule lives
/// here once: prompt prefill, then greedy argmax until the budget.
[[nodiscard]] std::vector<int> reference_decode(llm::Decoder& decoder,
                                                const Request& request);

}  // namespace bbal::serve
