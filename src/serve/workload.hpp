// Deterministic synthetic serving traffic: the request mix used by
// bench_serve_throughput, tools/record_serve and the serving tests. Seeded
// prompts over the model's vocabulary with staggered lengths, so every
// consumer (and every CI run) replays the identical token streams.
#pragma once

#include <cstdint>
#include <vector>

#include "llm/perplexity.hpp"
#include "quant/strategy.hpp"
#include "serve/request.hpp"

namespace bbal::serve {

/// `count` requests over `config`'s vocabulary. Prompt i has
/// base_prompt_len + 2*(i % 5) tokens drawn from Rng(seed ^ i-mix), and a
/// budget of max_new_tokens. Pure function of its arguments.
[[nodiscard]] std::vector<Request> synthetic_requests(
    const llm::ModelConfig& config, int count, int base_prompt_len = 12,
    int max_new_tokens = 16, std::uint64_t seed = 2024);

/// Reference path: decode one request alone, on a fresh backend pair
/// (`matmul` + FP32 nonlinear), greedy sampling — the stream a batched
/// Engine run must reproduce bit for bit (bench_serve_throughput and
/// test_serve hold the engine to this). Aborts on an unknown strategy.
[[nodiscard]] std::vector<int> reference_decode(
    const llm::PreparedModel& prepared, const quant::StrategySpec& matmul,
    const Request& request);

}  // namespace bbal::serve
