// bbal::serve::Engine — continuous-batching request scheduler over the
// quantised backends: the repo's first *online* workload (ROADMAP: serve
// decode-phase traffic, the bottleneck BBAL's datapath targets in Fig. 1b).
//
// The engine owns ONE quantised pipeline — a MatmulBackend +
// NonlinearBackend pair resolved through the BackendRegistry with the
// weights prepared (quantised) exactly once at engine construction, plus
// a Transformer and a Decoder shared by every request (the quantised
// weight footprint is surfaced as Report::weights_bytes; it does not
// scale with max_batch). max_batch is purely an admission cap: how many
// requests may be in flight per tick. Requests queue in submit() order;
// run() executes the continuous-batching loop:
//
//   tick:  admit queued requests into free batch slots in the order the
//          configured SchedulerPolicy picks (fifo / sjf / prefix-aware,
//          see serve/policy.hpp),
//          plan the tick's rows — every decoding flight steps one token;
//          prefilling flights are granted up to prefill_chunk prompt
//          tokens each under the tick-wide prefill_budget
//          (serve::plan_prefill; docs/PREFILL.md),
//          reserve each flight's granted KV positions in the paged pool,
//          advance the whole mix in ONE fused Decoder::step_groups
//          forward — decode rows and prefill-chunk rows stack into a
//          single (rows x d_model) matrix, so each projection is one
//          batched GEMM (activations quantised once, rows tiled over
//          common::ThreadPool::global()) while attention stays per
//          sequence and causal within a chunk, and
//          price the tick by replaying its combined GEMM workload
//          (decode_step_gemms / prefill_chunk_gemms) on the accelerator
//          model plus the tick's KV-cache traffic on an hw::sram macro
//          (when one is attached).
//
// Time is the engine's own simulated tick (one fused decode step = one
// tick). A submitted request carrying an open-loop arrival_tick (see
// serve::load) is invisible to the scheduler before its arrival: run()
// delivers arrivals at the top of every tick, and an engine with nothing
// active jumps its clock straight to the next arrival (idle ticks execute
// no step and cost no simulated time). Closed-loop traffic is the
// arrival_tick == 0 special case and is byte-exact with the pre-open-loop
// engine. Per-request queueing delay (queue_ticks), inter-token gaps and
// goodput against an optional serve::Slo land in the report.
//
// A request's KV state lives in a run-scoped serve::PagedKVPool
// (fixed-size token pages, refcounted, copy-on-write) and travels with
// the request — a finished request frees its batch slot for the next
// queued one immediately, mid-run. Under the prefix-aware policy,
// requests with a common prompt prefix attach the same physical pages, so
// the prefix is stored (and prefilled) once instead of once per request;
// see docs/SERVING.md for the full design.
//
// Determinism: every llm::matmul output row is an independent serial
// double accumulation, so row r of the fused batched GEMM is bit-identical
// to the same sequence stepped alone — a K-request batched run produces
// bit-identical token streams to K serial single-request decodes at any
// BBAL_THREADS and under any policy (tested in test_serve; gated by
// BENCH_serve.json in CI).
//
//   auto session = bbal::Session::Builder()
//                      .prepared(model).matmul("BBFP(4,2)")
//                      .accelerator(accel_cfg).build().expect("build");
//   auto engine = serve::Engine::from_session(session, /*max_batch=*/8)
//                     .expect("engine");
//   for (const auto& prompt : prompts)
//     engine.submit({prompt, /*max_new_tokens=*/32});
//   serve::Report report = engine.run();
//   // report.results[i].generated, .ttft_seconds, .tokens_per_second,
//   // report.p99_step_seconds, report.throughput_tokens_per_second
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "accel/config.hpp"
#include "bbal/session.hpp"
#include "llm/decoder.hpp"
#include "serve/faults.hpp"
#include "serve/load.hpp"
#include "serve/paged_kv.hpp"
#include "serve/policy.hpp"
#include "serve/request.hpp"

namespace bbal::serve {

class Engine {
 public:
  struct Options {
    /// Concurrent in-flight requests per tick (>= 1). Purely an
    /// admission cap: the engine holds one shared backend pair whose
    /// weights are quantised once at construction, so raising max_batch
    /// widens the fused per-tick GEMMs without adding weight copies.
    int max_batch = 4;
    /// Accelerator pricing each tick's workload; its strategy field is
    /// overwritten with the engine's matmul strategy (Session's rule).
    /// Without it the report carries token streams and wall-clock only.
    std::optional<accel::AcceleratorConfig> accelerator;
    /// Admission/scheduling policy: "fifo" (default), "sjf" or
    /// "prefix-aware" (which also enables prompt-prefix page sharing).
    /// Unknown names are create() errors.
    std::string policy = "fifo";
    /// Positions per KV page (see PagedKVPool::Options::page_tokens).
    int kv_page_tokens = 16;
    /// Storage format of the paged KV cache: "FP32" (default), "INT8",
    /// "BFP<m>" or "BBFP(<m>,<o>)" — see quant::KvFormat and
    /// docs/KV_QUANT.md. Rows are quantised on append and dequantised on
    /// attention read, so the decode arithmetic is unchanged; kv_bytes_peak
    /// and kv_energy_j are priced on the packed pool. Unknown names are
    /// create() errors. FP32 keeps streams byte-exact with the
    /// pre-quantised-KV engine.
    std::string kv_format = "FP32";
    /// KV pool capacity in pages; 0 auto-sizes each run() so every valid
    /// request could be resident at once (admission then only ever defers
    /// on slots, and page exhaustion is impossible). An explicit cap can
    /// starve: a request that cannot fit even alone is reported as an
    /// error result, and tighter mixes admit more slowly.
    int kv_pool_pages = 0;
    /// Service-level objective evaluated per completed request (TTFT and
    /// max inter-token gap on the simulated clock; see serve::Slo).
    /// Requires an accelerator — without priced time there is nothing to
    /// hold the SLO against, so create() rejects the combination. The
    /// report then carries goodput_under_slo and per-request slo_ok.
    std::optional<Slo> slo;
    /// Prompt tokens a prefilling request may consume per tick, fed
    /// through Decoder::step_groups as one chunk — one (chunk x d_model)
    /// GEMM per projection instead of chunk single-token ticks (see
    /// docs/PREFILL.md). 1 (the default) is the legacy one-token-per-tick
    /// lockstep, byte-exact with the pre-chunking engine; streams are
    /// bit-identical at any chunk size by construction.
    int prefill_chunk = 1;
    /// Cap on prefill tokens granted per tick across all flights
    /// (serve::plan_prefill), bounding how much a tick of prompt
    /// streaming can stretch the decode batch's inter-token gap. 0 (the
    /// default) is uncapped: every prefilling flight takes a full chunk
    /// every tick. The earliest prefilling flight always advances by at
    /// least one token, so prefill can never starve.
    int prefill_budget = 0;
    /// Speculative decoding: matmul strategy of the cheap draft backend
    /// ("" = off). Per cycle the draft proposes up to draft_k tokens for
    /// every decoding flight and the target backend verifies them all —
    /// plus the bonus token — in ONE batched forward through the
    /// step_groups M-axis, accepting the longest matching prefix under
    /// greedy argmax and rolling the target's KV pages back past the
    /// first rejection (PagedKVPool::truncate). Output streams are
    /// bit-identical to the target backend alone by construction; only
    /// the simulated cost changes (docs/SPECULATIVE.md). The draft must
    /// be a registered matmul strategy and — when an accelerator is
    /// attached — carry a hardware cost model: draft forwards are priced
    /// on an iso-area re-provisioning of the target's PE budget. Both
    /// knobs must be set together; the draft_k = 0 default reproduces
    /// the non-speculative engine byte-exactly.
    std::string draft;
    /// Tokens drafted per speculation cycle (>= 1 when draft is set; 0 =
    /// off). Capped per flight so a cycle never emits past
    /// max_new_tokens.
    int draft_k = 0;
    /// Deterministic fault-injection plan replayed against this engine's
    /// simulated clock (see serve/faults.hpp and docs/ROBUSTNESS.md):
    /// pool-exhaustion windows, transient reserve failures, client
    /// cancellations and arrival spikes, all keyed by tick. The empty
    /// default injects nothing and keeps every committed BENCH row
    /// byte-exact.
    FaultPlan faults;
    /// Decode preemption: under KV-pool pressure (admission or a reserve
    /// blocked on pages) or deadline risk, the SchedulerPolicy's
    /// pick_preempt hook suspends a decoding flight — its private pages
    /// are released (shared pages survive via refcounts) and the flight
    /// requeues; on re-admission its prompt + generated-so-far tokens
    /// re-prefill through the chunked-prefill path, continuing the stream
    /// bit-identically. Also switches admission to an optimistic page
    /// gate (prompt + 1 positions instead of the full completion budget),
    /// so an explicitly undersized pool overcommits and recovers instead
    /// of refusing admission. Off by default: the pre-preemption engine,
    /// byte-exact.
    bool preempt = false;
    /// Per-request bound on suspensions (>= 0). A flight that would be
    /// preempted past the bound retires with the typed reason
    /// `preempted_unrecoverable` instead of thrashing forever.
    int max_preemptions = 8;
  };

  /// Build an engine over a prepared model and a strategy pair. All
  /// errors (unknown strategy, wrong capability, no cost model for the
  /// accelerator, bad max_batch) surface here, not in run().
  [[nodiscard]] static Result<Engine> create(
      std::shared_ptr<const llm::PreparedModel> model,
      const quant::StrategySpec& matmul, const quant::StrategySpec& nonlinear,
      Options options);
  /// Name-based convenience ("BBFP(4,2)", "INT8", ...).
  [[nodiscard]] static Result<Engine> create(
      std::shared_ptr<const llm::PreparedModel> model,
      std::string_view matmul, std::string_view nonlinear, Options options);
  [[nodiscard]] static Result<Engine> create(
      std::shared_ptr<const llm::PreparedModel> model,
      std::string_view matmul, std::string_view nonlinear = "FP32") {
    return create(std::move(model), matmul, nonlinear, Options{});
  }

  /// Serve a Session's configuration: same prepared model (prepared now if
  /// the session was lazy), same strategy pair, same accelerator.
  [[nodiscard]] static Result<Engine> from_session(Session& session,
                                                   int max_batch = 4);

  Engine(Engine&&) noexcept = default;
  Engine& operator=(Engine&&) noexcept = default;

  /// Queue a request; returns its id — its position in the next run()'s
  /// Report::results (ids restart at 0 after each run). A malformed
  /// request (empty prompt, non-positive budget, token out of vocabulary)
  /// is accepted here and reported as an error result by run() —
  /// submission never aborts the batch.
  std::uint64_t submit(Request request);

  /// Requests queued and not yet consumed by a run().
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Run the continuous-batching loop until every queued request is
  /// complete. Blocking; repeatable (a later submit() + run() starts a
  /// fresh report with fresh ids).
  [[nodiscard]] Report run();

  [[nodiscard]] const llm::ModelConfig& model_config() const {
    return prepared_->config;
  }
  [[nodiscard]] const quant::StrategySpec& matmul_strategy() const {
    return matmul_;
  }
  [[nodiscard]] const quant::StrategySpec& nonlinear_strategy() const {
    return nonlinear_;
  }
  [[nodiscard]] int max_batch() const { return max_batch_; }
  /// Speculative decoding configured (a draft backend is attached)?
  [[nodiscard]] bool speculative() const { return draft_k_ > 0; }
  /// The draft backend's matmul strategy; only meaningful when
  /// speculative().
  [[nodiscard]] const quant::StrategySpec& draft_strategy() const {
    return draft_;
  }
  [[nodiscard]] int draft_k() const { return draft_k_; }
  /// The KV-cache storage format every run's pool encodes through.
  [[nodiscard]] const quant::KvFormat& kv_format() const {
    return kv_format_;
  }
  /// Bytes of quantised weight storage held by the shared backend —
  /// independent of max_batch (weights are prepared exactly once).
  [[nodiscard]] std::int64_t weights_bytes() const {
    return model_->weights_bytes();
  }
  [[nodiscard]] bool has_accelerator() const { return accel_.has_value(); }
  [[nodiscard]] std::string_view policy() const { return policy_->name(); }
  /// The run's fault-injection plan (empty by default).
  [[nodiscard]] const FaultPlan& faults() const { return faults_; }
  /// Decode preemption enabled (Options::preempt)?
  [[nodiscard]] bool preempt_enabled() const { return preempt_; }

 private:
  /// An admitted request mid-flight: its pool sequence and progress.
  /// Latency fields hold the global run clock (simulated makespan / wall
  /// time since run start) at the respective event, so TTFT and total
  /// latency include queueing delay — the client-visible metric.
  /// prompt_pos starts at the sequence's shared prefix length, so a
  /// prefix-hit request prefills only the unshared prompt tail.
  struct InFlight {
    std::size_t request_index = 0;  ///< into the run's requests/results
    PagedKVPool::SeqId seq = -1;
    PagedKVView view;
    int prompt_pos = 0;
    int last_token = -1;  ///< most recent generated token (decode input)
    /// Rows this flight contributes to the current tick's fused step: 1
    /// for a decode step, the granted chunk size while prefilling, 0 when
    /// the tick's prefill budget passed it over (it sits the tick out).
    int tick_rows = 0;
    bool registered = false;  ///< prompt prefix registered in the pool
    bool failed = false;      ///< KV reservation failed; retire with error
    /// This tick's reserve failed transiently (injected fault, frozen
    /// window, or pool pressure with preemption on): suspend and requeue
    /// instead of retiring — the flight resumes bit-identically later.
    bool requeue = false;
    /// Re-prefilling after a suspension: the flight's prefill rows are
    /// recompute work, attributed to Report::preempt_recompute_seconds.
    bool resuming = false;
    /// Speculative per-cycle state (docs/SPECULATIVE.md). The draft
    /// sequence is an ephemeral fork of `seq` — it shares every verified
    /// page (copy-on-write isolates the draft's own appends) and is
    /// released at the end of the cycle.
    int spec_k = 0;  ///< tokens drafted this cycle (budget-capped)
    PagedKVPool::SeqId draft_seq = -1;
    PagedKVView draft_view;
    std::vector<int> proposals;  ///< this cycle's drafted tokens
    int tick_base = 0;     ///< target KV length at tick start
    int tick_emitted = 0;  ///< tokens emitted by this tick (0..spec_k+1)
    double ttft_seconds = 0.0;
    double ttft_wall_seconds = 0.0;
    /// Simulated clock at the previous token emission (inter-token gaps).
    double last_emit_seconds = 0.0;
    double max_gap_seconds = 0.0;  ///< largest inter-token gap so far
    int steps = 0;
  };

  Engine() = default;

  std::shared_ptr<const llm::PreparedModel> prepared_;
  quant::StrategySpec matmul_;
  quant::StrategySpec nonlinear_;
  std::optional<accel::AcceleratorConfig> accel_;
  std::optional<Slo> slo_;
  std::unique_ptr<SchedulerPolicy> policy_;
  quant::KvFormat kv_format_{};
  FaultPlan faults_;
  bool preempt_ = false;
  int max_preemptions_ = 8;
  int kv_page_tokens_ = 16;
  int kv_pool_pages_ = 0;
  int max_batch_ = 0;
  int prefill_chunk_ = 1;
  int prefill_budget_ = 0;
  quant::StrategySpec draft_;  ///< valid when draft_k_ > 0
  int draft_k_ = 0;
  /// Iso-area re-provisioning of the target accelerator's PE budget for
  /// the draft strategy: what draft forwards are priced on.
  std::optional<accel::AcceleratorConfig> draft_accel_;
  // The one shared pipeline: backends (weights quantised once), the model
  // wired over them, and the batch-stepping decoder with its workspace.
  std::unique_ptr<llm::MatmulBackend> matmul_backend_;
  std::unique_ptr<llm::NonlinearBackend> nonlinear_backend_;
  std::unique_ptr<llm::Transformer> model_;
  std::unique_ptr<llm::Decoder> decoder_;
  // The second (draft) pipeline — the same prepared weights quantised a
  // second time under the draft strategy, with its own decoder workspace.
  // Null unless speculative(); never counted in weights_bytes().
  std::unique_ptr<llm::MatmulBackend> draft_matmul_backend_;
  std::unique_ptr<llm::NonlinearBackend> draft_nonlinear_backend_;
  std::unique_ptr<llm::Transformer> draft_model_;
  std::unique_ptr<llm::Decoder> draft_decoder_;
  std::deque<Request> queue_;
};

}  // namespace bbal::serve
