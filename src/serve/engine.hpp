// bbal::serve::Engine — continuous-batching request scheduler over the
// quantised backends: the repo's first *online* workload (ROADMAP: serve
// decode-phase traffic, the bottleneck BBAL's datapath targets in Fig. 1b).
//
// The engine owns max_batch execution slots. Each slot is a full quantised
// pipeline — a MatmulBackend + NonlinearBackend pair resolved through the
// BackendRegistry with the weights prepared (quantised) once at engine
// construction, plus a Decoder. Requests queue in submit() order; run()
// executes the continuous-batching loop:
//
//   tick:  admit queued requests into free slots (FIFO),
//          step every active request by one token in parallel on
//          common::ThreadPool::global() (prompt tokens first — prefill —
//          then greedy decode), and
//          price the tick by replaying its combined decode-step GEMM
//          workload on the accelerator model (when one is attached).
//
// A request's KV cache is engine-owned (llm::KVCache) and travels with the
// request, not the slot — a finished request frees its slot for the next
// queued one immediately, mid-run.
//
// Determinism: each request's math is computed on a slot-private backend
// with double-accumulated GEMMs, so a K-request batched run produces
// bit-identical token streams to K serial single-request decodes at any
// BBAL_THREADS (tested in test_serve; gated by BENCH_serve.json in CI).
//
//   auto session = bbal::Session::Builder()
//                      .prepared(model).matmul("BBFP(4,2)")
//                      .accelerator(accel_cfg).build().expect("build");
//   auto engine = serve::Engine::from_session(session, /*max_batch=*/8)
//                     .expect("engine");
//   for (const auto& prompt : prompts)
//     engine.submit({prompt, /*max_new_tokens=*/32});
//   serve::Report report = engine.run();
//   // report.results[i].generated, .ttft_seconds, .tokens_per_second,
//   // report.p99_step_seconds, report.throughput_tokens_per_second
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "accel/config.hpp"
#include "bbal/session.hpp"
#include "llm/decoder.hpp"
#include "serve/request.hpp"

namespace bbal::serve {

class Engine {
 public:
  struct Options {
    /// Concurrent execution slots (>= 1). Each slot pays one weight
    /// preparation at engine construction and holds its own quantised
    /// copy — deliberate: registry backends are single-session objects
    /// with no thread-safety contract (see bbal/registry.hpp), so
    /// slot-private backends are what lets ticks step all requests
    /// concurrently without assuming anything about backend internals.
    int max_batch = 4;
    /// Accelerator pricing each tick's workload; its strategy field is
    /// overwritten with the engine's matmul strategy (Session's rule).
    /// Without it the report carries token streams and wall-clock only.
    std::optional<accel::AcceleratorConfig> accelerator;
  };

  /// Build an engine over a prepared model and a strategy pair. All
  /// errors (unknown strategy, wrong capability, no cost model for the
  /// accelerator, bad max_batch) surface here, not in run().
  [[nodiscard]] static Result<Engine> create(
      std::shared_ptr<const llm::PreparedModel> model,
      const quant::StrategySpec& matmul, const quant::StrategySpec& nonlinear,
      Options options);
  /// Name-based convenience ("BBFP(4,2)", "INT8", ...).
  [[nodiscard]] static Result<Engine> create(
      std::shared_ptr<const llm::PreparedModel> model,
      std::string_view matmul, std::string_view nonlinear, Options options);
  [[nodiscard]] static Result<Engine> create(
      std::shared_ptr<const llm::PreparedModel> model,
      std::string_view matmul, std::string_view nonlinear = "FP32") {
    return create(std::move(model), matmul, nonlinear, Options{});
  }

  /// Serve a Session's configuration: same prepared model (prepared now if
  /// the session was lazy), same strategy pair, same accelerator.
  [[nodiscard]] static Result<Engine> from_session(Session& session,
                                                   int max_batch = 4);

  Engine(Engine&&) noexcept = default;
  Engine& operator=(Engine&&) noexcept = default;

  /// Queue a request; returns its id — its position in the next run()'s
  /// Report::results (ids restart at 0 after each run). A malformed
  /// request (empty prompt, non-positive budget, token out of vocabulary)
  /// is accepted here and reported as an error result by run() —
  /// submission never aborts the batch.
  std::uint64_t submit(Request request);

  /// Requests queued and not yet consumed by a run().
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Run the continuous-batching loop until every queued request is
  /// complete. Blocking; repeatable (a later submit() + run() starts a
  /// fresh report with fresh ids).
  [[nodiscard]] Report run();

  [[nodiscard]] const llm::ModelConfig& model_config() const {
    return prepared_->config;
  }
  [[nodiscard]] const quant::StrategySpec& matmul_strategy() const {
    return matmul_;
  }
  [[nodiscard]] const quant::StrategySpec& nonlinear_strategy() const {
    return nonlinear_;
  }
  [[nodiscard]] int max_batch() const {
    return static_cast<int>(slots_.size());
  }
  [[nodiscard]] bool has_accelerator() const { return accel_.has_value(); }

 private:
  /// One execution slot: a slot-private backend pair (quantised weights
  /// prepared once) and the decoder that steps requests through it.
  struct Slot {
    std::unique_ptr<llm::MatmulBackend> matmul;
    std::unique_ptr<llm::NonlinearBackend> nonlinear;
    std::unique_ptr<llm::Transformer> model;
    std::unique_ptr<llm::Decoder> decoder;
  };

  /// An admitted request mid-flight: its engine-owned cache and progress.
  /// Latency fields hold the global run clock (simulated makespan / wall
  /// time since run start) at the respective event, so TTFT and total
  /// latency include queueing delay — the client-visible metric.
  struct InFlight {
    std::size_t request_index = 0;  ///< into the run's requests/results
    int slot = 0;
    llm::KVCache cache;
    int prompt_pos = 0;
    int last_token = -1;  ///< most recent generated token (decode input)
    double ttft_seconds = 0.0;
    double ttft_wall_seconds = 0.0;
    int steps = 0;
  };

  Engine() = default;

  std::shared_ptr<const llm::PreparedModel> prepared_;
  quant::StrategySpec matmul_;
  quant::StrategySpec nonlinear_;
  std::optional<accel::AcceleratorConfig> accel_;
  std::vector<Slot> slots_;
  std::deque<Request> queue_;
};

}  // namespace bbal::serve
