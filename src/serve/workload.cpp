#include "serve/workload.hpp"

#include "bbal/registry.hpp"
#include "common/rng.hpp"
#include "llm/decoder.hpp"

namespace bbal::serve {

std::vector<Request> synthetic_requests(const llm::ModelConfig& config,
                                        int count, int base_prompt_len,
                                        int max_new_tokens,
                                        std::uint64_t seed) {
  std::vector<Request> requests;
  requests.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    // Per-request stream: staggered lengths exercise different context
    // depths inside one batch (the continuous-batching case).
    Rng rng(seed ^ (static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ull));
    Request req;
    req.max_new_tokens = max_new_tokens;
    const int prompt_len = base_prompt_len + 2 * (i % 5);
    req.prompt.reserve(static_cast<std::size_t>(prompt_len));
    for (int t = 0; t < prompt_len; ++t)
      req.prompt.push_back(
          static_cast<int>(rng.uniform_int(0, config.vocab - 1)));
    requests.push_back(std::move(req));
  }
  return requests;
}

std::vector<Request> shared_prefix_requests(const llm::ModelConfig& config,
                                            int count, int prefix_len,
                                            int suffix_len,
                                            int max_new_tokens,
                                            std::uint64_t seed) {
  std::vector<int> prefix;
  prefix.reserve(static_cast<std::size_t>(prefix_len));
  Rng prefix_rng(seed);
  for (int t = 0; t < prefix_len; ++t)
    prefix.push_back(
        static_cast<int>(prefix_rng.uniform_int(0, config.vocab - 1)));

  std::vector<Request> requests;
  requests.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Rng rng(seed ^ (static_cast<std::uint64_t>(i + 1) *
                    0x9e3779b97f4a7c15ull));
    Request req;
    req.max_new_tokens = max_new_tokens;
    req.prompt = prefix;
    const int tail = suffix_len + (i % 3);
    for (int t = 0; t < tail; ++t)
      req.prompt.push_back(
          static_cast<int>(rng.uniform_int(0, config.vocab - 1)));
    requests.push_back(std::move(req));
  }
  return requests;
}

std::vector<Request> long_prompt_requests(const llm::ModelConfig& config,
                                          int count, int base_prompt_len,
                                          int long_prompt_len, int long_every,
                                          int max_new_tokens,
                                          std::uint64_t seed) {
  std::vector<Request> requests;
  requests.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Rng rng(seed ^ (static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ull));
    Request req;
    req.max_new_tokens = max_new_tokens;
    // The long prompts land mid-stream (index long_every-1, not 0), so a
    // decode batch is already running when the first one starts streaming
    // in — the interference case the decode-flatness gate measures.
    const bool is_long = long_every > 0 && i % long_every == long_every - 1;
    const int prompt_len =
        is_long ? long_prompt_len : base_prompt_len + 2 * (i % 5);
    req.prompt.reserve(static_cast<std::size_t>(prompt_len));
    for (int t = 0; t < prompt_len; ++t)
      req.prompt.push_back(
          static_cast<int>(rng.uniform_int(0, config.vocab - 1)));
    requests.push_back(std::move(req));
  }
  return requests;
}

std::vector<int> reference_decode(llm::Decoder& decoder,
                                  const Request& request) {
  llm::KVCache cache = decoder.make_cache();
  std::vector<float> logits;
  for (const int token : request.prompt) logits = decoder.step(token, cache);
  std::vector<int> generated;
  while (static_cast<int>(generated.size()) < request.max_new_tokens) {
    const int best = greedy_argmax(logits);
    generated.push_back(best);
    if (static_cast<int>(generated.size()) == request.max_new_tokens) break;
    logits = decoder.step(best, cache);
  }
  return generated;
}

std::vector<int> reference_decode(const llm::PreparedModel& prepared,
                                  const quant::StrategySpec& matmul,
                                  const Request& request) {
  auto mm = BackendRegistry::instance().make_matmul(matmul).expect(
      "reference_decode matmul backend");
  llm::Fp32NonlinearBackend nl;
  llm::Transformer model(prepared.config, prepared.weights, *mm, nl);
  model.set_logit_scale(prepared.logit_scale);
  llm::Decoder decoder(model);
  return reference_decode(decoder, request);
}

}  // namespace bbal::serve
