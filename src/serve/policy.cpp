#include "serve/policy.hpp"

#include <algorithm>

namespace bbal::serve {
namespace {

class FifoPolicy final : public SchedulerPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "fifo"; }
  [[nodiscard]] int pick(const std::vector<Request>&,
                         const std::deque<std::size_t>& waiting,
                         const std::vector<std::size_t>&,
                         const PagedKVPool&) const override {
    return waiting.empty() ? kNone : 0;
  }
};

class ShortestJobFirstPolicy final : public SchedulerPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "sjf"; }
  [[nodiscard]] int pick(const std::vector<Request>& requests,
                         const std::deque<std::size_t>& waiting,
                         const std::vector<std::size_t>&,
                         const PagedKVPool&) const override {
    int best = kNone;
    std::int64_t best_work = 0;
    for (std::size_t w = 0; w < waiting.size(); ++w) {
      const Request& req = requests[waiting[w]];
      // Total engine ticks the request will occupy a slot for; ties go to
      // the earlier submission (stable scan order).
      const std::int64_t work =
          static_cast<std::int64_t>(req.prompt.size()) + req.max_new_tokens;
      if (best == kNone || work < best_work) {
        best = static_cast<int>(w);
        best_work = work;
      }
    }
    return best;
  }

  [[nodiscard]] int pick_preempt(
      const std::vector<Request>& requests,
      const std::vector<std::size_t>& decoding) const override {
    // Dual of pick(): evict the *longest* total job — it holds a slot
    // (and pages) the longest, so suspending it unblocks the most short
    // work. Ties go to the later admission (scan keeps the first max).
    int victim = kNone;
    std::int64_t victim_work = 0;
    for (std::size_t d = 0; d < decoding.size(); ++d) {
      const Request& req = requests[decoding[d]];
      const std::int64_t work =
          static_cast<std::int64_t>(req.prompt.size()) + req.max_new_tokens;
      if (victim == kNone || work > victim_work) {
        victim = static_cast<int>(d);
        victim_work = work;
      }
    }
    return victim;
  }
};

class PrefixAwarePolicy final : public SchedulerPolicy {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "prefix-aware";
  }
  [[nodiscard]] bool wants_prefix_sharing() const override { return true; }

  [[nodiscard]] int pick(const std::vector<Request>& requests,
                         const std::deque<std::size_t>& waiting,
                         const std::vector<std::size_t>& prefilling,
                         const PagedKVPool& pool) const override {
    // 1. A request whose prefix is already registered admits first (the
    //    longest hit wins — it frees the most recompute); earlier
    //    submission breaks ties.
    int best = kNone;
    int best_hit = 0;
    for (std::size_t w = 0; w < waiting.size(); ++w) {
      const Request& req = requests[waiting[w]];
      const int hit = pool.probe_prefix_tokens(req.prompt);
      if (hit > best_hit) {
        best = static_cast<int>(w);
        best_hit = hit;
      }
    }
    if (best != kNone) return best;

    // 2. Otherwise FIFO — but hold back a follower whose prefix a
    //    currently prefilling leader is about to register, so it admits
    //    later with the leader's pages instead of recomputing them.
    for (std::size_t w = 0; w < waiting.size(); ++w) {
      if (!shares_page_with_leader(requests, waiting[w], prefilling, pool))
        return static_cast<int>(w);
    }
    // 3. Every waiting request is a follower of an in-flight leader: leave
    //    the slot empty and let the leaders finish prefilling.
    return kNone;
  }

 private:
  static bool shares_page_with_leader(
      const std::vector<Request>& requests, std::size_t candidate,
      const std::vector<std::size_t>& prefilling, const PagedKVPool& pool) {
    const std::vector<int>& prompt = requests[candidate].prompt;
    // Sharing is capped strictly below the candidate's prompt length
    // (the final prompt position is always recomputed), so a prompt of
    // exactly one page can never attach a page — don't hold it back.
    if (static_cast<int>(prompt.size()) <= pool.page_tokens()) return false;
    for (const std::size_t leader : prefilling) {
      const std::vector<int>& lead = requests[leader].prompt;
      const std::size_t common =
          std::min(prompt.size(), lead.size());
      std::size_t same = 0;
      while (same < common &&
             prompt[same] == lead[same])
        ++same;
      // Only a whole shared page is worth waiting for.
      if (static_cast<int>(same) >= pool.page_tokens()) return true;
    }
    return false;
  }
};

}  // namespace

void plan_prefill(std::span<const int> remaining, int chunk, int budget,
                  std::vector<int>& grants) {
  grants.assign(remaining.size(), 0);
  int budget_left = budget > 0 ? budget : -1;  // -1: uncapped
  bool first = true;
  for (std::size_t i = 0; i < remaining.size(); ++i) {
    if (remaining[i] <= 0) continue;
    int grant = std::min(remaining[i], chunk);
    if (budget_left >= 0) {
      grant = std::min(grant, budget_left);
      // Liveness: the earliest prefilling flight always advances, so a
      // tick with no decode rows still makes progress under any budget.
      if (first) grant = std::max(grant, 1);
      budget_left -= grant;
      if (budget_left < 0) budget_left = 0;
    }
    grants[i] = grant;
    first = false;
  }
}

Result<std::unique_ptr<SchedulerPolicy>> make_policy(std::string_view name) {
  using R = Result<std::unique_ptr<SchedulerPolicy>>;
  if (name == "fifo") return R(std::make_unique<FifoPolicy>());
  if (name == "sjf") return R(std::make_unique<ShortestJobFirstPolicy>());
  if (name == "prefix-aware") return R(std::make_unique<PrefixAwarePolicy>());
  return R::error("unknown scheduler policy \"" + std::string(name) +
                  "\"; expected one of: fifo, sjf, prefix-aware");
}

std::vector<std::string> policy_names() {
  return {"fifo", "sjf", "prefix-aware"};
}

}  // namespace bbal::serve
