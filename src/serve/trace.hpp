// serve::trace — a recorded-workload format for the serving engine, so
// any generated open-loop workload can be saved to disk and replayed
// byte-identically (same arrivals, same prompts, same budgets) on any
// host. The file is JSONL — one object per request, in submit order:
//
//   {"arrival_tick": 17, "prompt_len": 14, "max_new_tokens": 16,
//    "prefix_group": 0, "prefix_len": 8}
//
// arrival_tick / prompt_len / max_new_tokens are required;
// prefix_group / prefix_len are optional (default -1 / 0) and mark
// requests that open with a shared prompt prefix: every entry with the
// same non-negative prefix_group draws its first prefix_len tokens from
// one group-keyed stream, so followers share pages under the
// prefix-aware policy exactly like shared_prefix_requests traffic.
//
// Token content is NOT stored: prompts are materialised from
// (model config, entry index / prefix group, seed) with the same
// deterministic Rng scheme as serve::workload, which keeps traces tiny,
// model-agnostic, and bit-replayable — write → read → materialize is
// the identity on the resulting request vector (test_load pins the
// round trip). docs/LOADGEN.md is the format spec.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "llm/model.hpp"
#include "serve/request.hpp"

namespace bbal::serve {

/// One trace line: the shape of a request, not its token content.
struct TraceEntry {
  std::int64_t arrival_tick = 0;  ///< open-loop arrival (engine ticks)
  int prompt_len = 0;             ///< prompt tokens (> 0)
  int max_new_tokens = 16;        ///< completion budget (> 0)
  /// Requests with the same non-negative group share a prompt prefix;
  /// -1 = independent prompt.
  int prefix_group = -1;
  /// Leading tokens drawn from the group stream (clamped to
  /// prompt_len); 0 when prefix_group is -1.
  int prefix_len = 0;

  friend bool operator==(const TraceEntry&, const TraceEntry&) = default;
};

/// Serialise one entry as its canonical JSONL line (no trailing
/// newline); prefix fields are emitted only for grouped entries, so
/// writing a parsed file back is byte-identical.
[[nodiscard]] std::string to_jsonl(const TraceEntry& entry);

/// Parse one JSONL line (any key order, extra whitespace tolerated).
[[nodiscard]] Result<TraceEntry> parse_trace_line(const std::string& line);

/// Write entries to `path`, one canonical JSONL line each.
[[nodiscard]] Status write_trace(const std::string& path,
                                 std::span<const TraceEntry> entries);

/// Read a trace file; blank lines are skipped, malformed lines are
/// errors naming the line number. An empty file is a valid empty trace.
[[nodiscard]] Result<std::vector<TraceEntry>> read_trace(
    const std::string& path);

/// Materialise entries into submittable requests over `config`'s
/// vocabulary: entry i's prompt takes its first min(prefix_len,
/// prompt_len) tokens from the prefix_group's stream and the rest from
/// an entry-indexed stream, both derived from `seed`. Pure function of
/// (config.vocab, entries, seed) — the replay half of the byte-identity
/// contract.
[[nodiscard]] std::vector<Request> materialize_trace(
    const llm::ModelConfig& config, std::span<const TraceEntry> entries,
    std::uint64_t seed = 2024);

/// Trace of `count` synthetic_requests-shaped entries (prompt_len =
/// base_prompt_len + 2*(i % 5), independent prompts) at the given
/// arrival ticks (ticks.size() >= count; extra ticks ignored).
[[nodiscard]] std::vector<TraceEntry> synthetic_trace(
    int count, std::span<const std::int64_t> ticks, int base_prompt_len = 12,
    int max_new_tokens = 16);

/// Trace of `count` entries split round-robin into `groups` shared-prefix
/// groups: prompt_len = prefix_len + suffix_len + (i % 3), the first
/// prefix_len tokens shared within the group — the multi-tenant
/// system-prompt traffic the prefix-aware policy targets.
[[nodiscard]] std::vector<TraceEntry> shared_prefix_trace(
    int count, std::span<const std::int64_t> ticks, int groups,
    int prefix_len, int suffix_len = 4, int max_new_tokens = 16);

}  // namespace bbal::serve
