// serve::FaultPlan — a seeded, deterministic fault-injection harness for
// the serving engine.
//
// Every failure path the engine has (pool exhaustion, reserve failure,
// request cancellation, arrival floods) used to be reachable only by
// accident: size the pool wrong, or get unlucky with the workload. A
// FaultPlan makes those paths *provokable on demand* — each event is
// keyed by the engine's own simulated tick (and, where it targets one
// request, by submit index), so a plan replays bit-identically across
// hosts, thread counts and compilers, exactly like the arrival
// generators in serve/load. The chaos CI smoke and the preemption
// goodput study (BENCH_slo.json) are both built on this determinism.
//
// Event taxonomy (docs/ROBUSTNESS.md has the full semantics):
//  - ExhaustionWindow [begin, end): the KV pool refuses *new page*
//    allocations for every tick in the window. Admission stalls and
//    decode reserves that cross a page boundary fail; reserves that fit
//    inside an already-owned page proceed (the memory truly exists).
//  - ReserveFault (tick, request): one transient KV-reserve failure for
//    that request at that tick — models a racing allocator loss. The
//    flight suspends, requeues and resumes bit-identically (bounded by
//    Engine::Options::max_preemptions) — a transient fault never
//    hard-fails a request. Exhaustion-window failures, by contrast, are
//    real pool pressure: they requeue only when preemption is on and
//    otherwise retire with a typed `oom` reason.
//  - Cancellation (tick, request): client-side cancel. The request
//    retires at that tick with whatever tokens it has produced and
//    reason `cancelled`.
//  - ArrivalSpike (tick, window): every arrival stamped in
//    [tick, tick + window) is pulled forward to `tick`, collapsing the
//    window into a flash crowd without changing the request set.
//
// Plans come from three places, all equivalent: parse_fault_plan() over
// the spec grammar below (what `record_serve --fault-plan` takes),
// seeded_fault_plan() which expands a (seed, horizon) pair into a
// pseudo-random but fully deterministic plan, and literal construction
// in tests. describe() round-trips back to the grammar.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace bbal::serve {

/// Deterministic schedule of injectable faults, keyed by engine tick and
/// request submit index. An empty plan is a no-op: the engine's default
/// path is untouched and committed BENCH rows stay byte-exact.
struct FaultPlan {
  /// Pool-wide allocation freeze over ticks [begin_tick, end_tick).
  struct ExhaustionWindow {
    std::int64_t begin_tick = 0;
    std::int64_t end_tick = 0;
  };
  /// One transient reserve failure for `request` at `tick`.
  struct ReserveFault {
    std::int64_t tick = 0;
    int request = 0;
  };
  /// Client cancellation of `request` at `tick` (partial output kept).
  struct Cancellation {
    std::int64_t tick = 0;
    int request = 0;
  };
  /// Arrivals in [tick, tick + window) are pulled forward to `tick`.
  struct ArrivalSpike {
    std::int64_t tick = 0;
    std::int64_t window = 0;
  };

  std::vector<ExhaustionWindow> exhaustion;
  std::vector<ReserveFault> reserve_faults;
  std::vector<Cancellation> cancellations;
  std::vector<ArrivalSpike> spikes;

  [[nodiscard]] bool empty() const {
    return exhaustion.empty() && reserve_faults.empty() &&
           cancellations.empty() && spikes.empty();
  }

  /// True when `tick` falls inside any exhaustion window.
  [[nodiscard]] bool exhausted_at(std::int64_t tick) const;

  /// True when a transient reserve failure is planned for (tick, request).
  [[nodiscard]] bool reserve_fails(std::int64_t tick, int request) const;

  /// Canonical spec string ("exhaust@8..16;cancel@4#2;..."), parseable by
  /// parse_fault_plan. Empty string for an empty plan. Recorded in BENCH
  /// meta / Report JSON so a row names the plan that made it.
  [[nodiscard]] std::string describe() const;
};

/// Parse a fault-plan spec: ';'-separated events, each one of
///   exhaust@B..E   pool allocation freeze over ticks [B, E)
///   flaky@T#R      transient reserve failure for request R at tick T
///   cancel@T#R     cancel request R at tick T
///   spike@T+W      collapse arrivals in [T, T+W) onto tick T
///   seed@S+H       splice in seeded_fault_plan(S, H)
/// Whitespace around events is ignored; an empty spec is the empty plan.
[[nodiscard]] Result<FaultPlan> parse_fault_plan(const std::string& spec);

/// Expand (seed, horizon) into a deterministic pseudo-random plan:
/// two exhaustion windows, a handful of transient reserve faults and one
/// cancellation, all inside [0, horizon). Pure function of its arguments
/// — the CI chaos smoke passes the same pair on every host.
[[nodiscard]] FaultPlan seeded_fault_plan(std::uint64_t seed,
                                          std::int64_t horizon);

}  // namespace bbal::serve
