// serve::load — deterministic open-loop load generation for the serving
// engine: arrival processes that stamp each Request with an arrival_tick,
// and the SLO the capacity-planning study holds the engine to.
//
// Every serving bench before this subsystem was *closed-loop*: all
// requests present at t=0, so the engine was never measured under
// queueing delay, saturation or overload — exactly the regime a
// production deployment lives in. An *open-loop* workload decouples the
// arrival process from the service process: requests arrive on their own
// clock whether or not the engine has kept up, which is what exposes the
// saturation knee (goodput-under-SLO vs offered load) that
// tools/record_slo and bench_serve_slo chart.
//
// The clock is the engine's own simulated tick (one fused decode step =
// one tick), so arrivals are fully deterministic: a generator is a pure
// function of (count, rate, seed) — bit-identical across hosts, thread
// counts and compilers — and the closed-loop benches are simply the
// arrival_tick == 0 special case. docs/LOADGEN.md specifies the models.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace bbal::serve {

/// Service-level objective for one serving run: a completed request
/// meets the SLO when its TTFT (arrival to first token, queueing
/// included) and its *largest* inter-token gap both stay within the
/// thresholds, all on the simulated accelerator clock. The report's
/// goodput_under_slo is the fraction of submitted requests that
/// complete within it — the capacity-planning metric.
struct Slo {
  double ttft_seconds = 0.0;         ///< max arrival-to-first-token (> 0)
  double inter_token_seconds = 0.0;  ///< max gap between tokens (> 0)
};

/// Two-state (on/off) modulation for bursty_arrivals: an MMPP-style
/// process that alternates exponentially-dwelling ON bursts (rate scaled
/// up) and OFF lulls (rate scaled down) around the nominal rate.
struct BurstyOptions {
  double burst_factor = 6.0;     ///< ON-state rate multiplier (> 1)
  double idle_factor = 0.125;    ///< OFF-state rate multiplier (< 1)
  double mean_on_ticks = 32.0;   ///< mean ON dwell (exponential)
  double mean_off_ticks = 96.0;  ///< mean OFF dwell (exponential)
};

/// `count` evenly spaced arrivals at `rate` requests per tick: arrival i
/// lands at start_tick + floor(i / rate). Deterministic, seedless — the
/// zero-variance reference the stochastic processes are compared to.
[[nodiscard]] std::vector<std::int64_t> uniform_arrivals(
    int count, double rate, std::int64_t start_tick = 0);

/// `count` Poisson(rate) arrivals: i.i.d. exponential inter-arrival
/// gaps of mean 1/rate, accumulated and floored to integer ticks. Pure
/// function of (count, rate, seed).
[[nodiscard]] std::vector<std::int64_t> poisson_arrivals(
    int count, double rate, std::uint64_t seed, std::int64_t start_tick = 0);

/// `count` arrivals from a two-state modulated Poisson process: dwell
/// times are exponential with the configured means, and within a state
/// arrivals are Poisson at rate x burst_factor (ON) or rate x
/// idle_factor (OFF). Models flash-crowd traffic: deep queues during
/// bursts, idle drain between them. Pure function of its arguments.
[[nodiscard]] std::vector<std::int64_t> bursty_arrivals(
    int count, double rate, std::uint64_t seed,
    const BurstyOptions& options = {});

/// One-stop arrival-process descriptor, so tools can expose a single
/// {uniform, poisson, bursty} knob and record a self-describing
/// provenance string next to every BENCH row.
struct ArrivalSpec {
  enum class Kind { kUniform, kPoisson, kBursty };
  Kind kind = Kind::kPoisson;
  double rate = 0.1;  ///< mean arrivals per engine tick (> 0)
  std::uint64_t seed = 2024;
  BurstyOptions bursty;  ///< used when kind == kBursty
};

/// Generate `count` arrival ticks under `spec` (dispatches to the
/// process functions above).
[[nodiscard]] std::vector<std::int64_t> generate_arrivals(
    const ArrivalSpec& spec, int count);

/// Provenance string, e.g. "poisson(rate=0.1,seed=2024)" — recorded in
/// BENCH meta and rows so a baseline names the workload that made it.
[[nodiscard]] std::string describe_arrivals(const ArrivalSpec& spec);

/// Stamp requests[i].arrival_tick = ticks[i] (up to the shorter of the
/// two; extra requests keep their current stamp). Ticks from the
/// generators are non-decreasing, so FIFO admission stays submit-ordered.
void stamp_arrivals(std::vector<Request>& requests,
                    std::span<const std::int64_t> ticks);

/// Collapse every arrival in [spike_tick, spike_tick + window) onto
/// spike_tick: a flash crowd injected into an already-stamped workload
/// without changing the request set or any arrival outside the window.
/// Arrivals stay non-decreasing (only later ticks are pulled earlier, to
/// a tick no earlier than the window start). Returns the number of
/// requests moved. Used by serve::FaultPlan ArrivalSpike events.
int inject_arrival_spike(std::vector<Request>& requests,
                         std::int64_t spike_tick, std::int64_t window);

}  // namespace bbal::serve
