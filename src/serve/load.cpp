#include "serve/load.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "common/rng.hpp"

namespace bbal::serve {
namespace {

/// Exponential draw of the given mean via inversion — one uniform per
/// draw, so a process consumes a fixed, documented number of stream
/// values per event (part of the bit-replay contract).
double exponential(Rng& rng, double mean) {
  return -std::log(1.0 - rng.uniform()) * mean;
}

}  // namespace

std::vector<std::int64_t> uniform_arrivals(int count, double rate,
                                           std::int64_t start_tick) {
  assert(rate > 0.0);
  std::vector<std::int64_t> ticks;
  ticks.reserve(static_cast<std::size_t>(std::max(count, 0)));
  for (int i = 0; i < count; ++i)
    ticks.push_back(start_tick +
                    static_cast<std::int64_t>(
                        std::floor(static_cast<double>(i) / rate)));
  return ticks;
}

std::vector<std::int64_t> poisson_arrivals(int count, double rate,
                                           std::uint64_t seed,
                                           std::int64_t start_tick) {
  assert(rate > 0.0);
  Rng rng(seed);
  std::vector<std::int64_t> ticks;
  ticks.reserve(static_cast<std::size_t>(std::max(count, 0)));
  double t = 0.0;
  for (int i = 0; i < count; ++i) {
    t += exponential(rng, 1.0 / rate);
    ticks.push_back(start_tick + static_cast<std::int64_t>(std::floor(t)));
  }
  return ticks;
}

std::vector<std::int64_t> bursty_arrivals(int count, double rate,
                                          std::uint64_t seed,
                                          const BurstyOptions& options) {
  assert(rate > 0.0);
  assert(options.burst_factor > 0.0 && options.idle_factor > 0.0);
  assert(options.mean_on_ticks > 0.0 && options.mean_off_ticks > 0.0);
  Rng rng(seed);
  std::vector<std::int64_t> ticks;
  ticks.reserve(static_cast<std::size_t>(std::max(count, 0)));
  // Standard MMPP simulation: within a state, gaps are exponential at
  // the state's rate; a gap that crosses the state boundary is discarded
  // and redrawn from the boundary at the new state's rate (memorylessness
  // makes the restart exact, not an approximation).
  bool on = true;
  double t = 0.0;
  double state_end = exponential(rng, options.mean_on_ticks);
  while (static_cast<int>(ticks.size()) < count) {
    const double state_rate =
        rate * (on ? options.burst_factor : options.idle_factor);
    const double gap = exponential(rng, 1.0 / state_rate);
    if (t + gap >= state_end) {
      t = state_end;
      on = !on;
      state_end += exponential(
          rng, on ? options.mean_on_ticks : options.mean_off_ticks);
      continue;
    }
    t += gap;
    ticks.push_back(static_cast<std::int64_t>(std::floor(t)));
  }
  return ticks;
}

std::vector<std::int64_t> generate_arrivals(const ArrivalSpec& spec,
                                            int count) {
  switch (spec.kind) {
    case ArrivalSpec::Kind::kUniform:
      return uniform_arrivals(count, spec.rate);
    case ArrivalSpec::Kind::kPoisson:
      return poisson_arrivals(count, spec.rate, spec.seed);
    case ArrivalSpec::Kind::kBursty:
      return bursty_arrivals(count, spec.rate, spec.seed, spec.bursty);
  }
  return {};
}

std::string describe_arrivals(const ArrivalSpec& spec) {
  std::ostringstream os;
  os.precision(6);
  switch (spec.kind) {
    case ArrivalSpec::Kind::kUniform:
      os << "uniform(rate=" << spec.rate << ")";
      return os.str();
    case ArrivalSpec::Kind::kPoisson:
      os << "poisson(rate=" << spec.rate << ",seed=" << spec.seed << ")";
      return os.str();
    case ArrivalSpec::Kind::kBursty:
      os << "bursty(rate=" << spec.rate << ",x" << spec.bursty.burst_factor
         << "/x" << spec.bursty.idle_factor << ",seed=" << spec.seed << ")";
      return os.str();
  }
  return "unknown";
}

void stamp_arrivals(std::vector<Request>& requests,
                    std::span<const std::int64_t> ticks) {
  const std::size_t n = std::min(requests.size(), ticks.size());
  for (std::size_t i = 0; i < n; ++i) requests[i].arrival_tick = ticks[i];
}

int inject_arrival_spike(std::vector<Request>& requests,
                         std::int64_t spike_tick, std::int64_t window) {
  if (window <= 0) return 0;
  int moved = 0;
  for (Request& req : requests) {
    if (req.arrival_tick > spike_tick &&
        req.arrival_tick < spike_tick + window) {
      req.arrival_tick = spike_tick;
      ++moved;
    }
  }
  return moved;
}

}  // namespace bbal::serve
