#include "serve/faults.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace bbal::serve {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// Parse a non-negative integer occupying the whole of `text`.
bool parse_i64(const std::string& text, std::int64_t* out) {
  if (text.empty()) return false;
  std::int64_t value = 0;
  for (const char c : text) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
    value = value * 10 + (c - '0');
  }
  *out = value;
  return true;
}

/// Split "A<sep>B" (first occurrence of the separator string) into halves.
bool split_once(const std::string& text, const std::string& sep,
                std::string* lhs, std::string* rhs) {
  const std::size_t pos = text.find(sep);
  if (pos == std::string::npos) return false;
  *lhs = text.substr(0, pos);
  *rhs = text.substr(pos + sep.size());
  return true;
}

}  // namespace

bool FaultPlan::exhausted_at(std::int64_t tick) const {
  for (const ExhaustionWindow& w : exhaustion) {
    if (tick >= w.begin_tick && tick < w.end_tick) return true;
  }
  return false;
}

bool FaultPlan::reserve_fails(std::int64_t tick, int request) const {
  for (const ReserveFault& f : reserve_faults) {
    if (f.tick == tick && f.request == request) return true;
  }
  return false;
}

std::string FaultPlan::describe() const {
  std::string out;
  const auto append = [&out](const std::string& event) {
    if (!out.empty()) out += ';';
    out += event;
  };
  for (const ExhaustionWindow& w : exhaustion) {
    append("exhaust@" + std::to_string(w.begin_tick) + ".." +
           std::to_string(w.end_tick));
  }
  for (const ReserveFault& f : reserve_faults) {
    append("flaky@" + std::to_string(f.tick) + "#" + std::to_string(f.request));
  }
  for (const Cancellation& c : cancellations) {
    append("cancel@" + std::to_string(c.tick) + "#" +
           std::to_string(c.request));
  }
  for (const ArrivalSpike& s : spikes) {
    append("spike@" + std::to_string(s.tick) + "+" +
           std::to_string(s.window));
  }
  return out;
}

Result<FaultPlan> parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t semi = spec.find(';', start);
    const std::size_t end = semi == std::string::npos ? spec.size() : semi;
    const std::string event = trim(spec.substr(start, end - start));
    start = end + 1;
    if (event.empty()) continue;

    std::string kind;
    std::string body;
    if (!split_once(event, "@", &kind, &body) || body.empty()) {
      return Result<FaultPlan>::error(
          "fault plan: event '" + event +
          "' is not <kind>@<args> (kinds: exhaust, flaky, cancel, spike, "
          "seed)");
    }

    std::string lhs;
    std::string rhs;
    std::int64_t a = 0;
    std::int64_t b = 0;
    if (kind == "exhaust") {
      if (!split_once(body, "..", &lhs, &rhs) || !parse_i64(lhs, &a) ||
          !parse_i64(rhs, &b) || b <= a) {
        return Result<FaultPlan>::error(
            "fault plan: exhaust event '" + event +
            "' must be exhaust@B..E with integer ticks E > B");
      }
      plan.exhaustion.push_back({a, b});
    } else if (kind == "flaky" || kind == "cancel") {
      if (!split_once(body, "#", &lhs, &rhs) || !parse_i64(lhs, &a) ||
          !parse_i64(rhs, &b)) {
        return Result<FaultPlan>::error(
            "fault plan: " + kind + " event '" + event + "' must be " + kind +
            "@T#R with integer tick T and request index R");
      }
      if (kind == "flaky") {
        plan.reserve_faults.push_back({a, static_cast<int>(b)});
      } else {
        plan.cancellations.push_back({a, static_cast<int>(b)});
      }
    } else if (kind == "spike") {
      if (!split_once(body, "+", &lhs, &rhs) || !parse_i64(lhs, &a) ||
          !parse_i64(rhs, &b) || b <= 0) {
        return Result<FaultPlan>::error(
            "fault plan: spike event '" + event +
            "' must be spike@T+W with integer tick T and window W > 0");
      }
      plan.spikes.push_back({a, b});
    } else if (kind == "seed") {
      if (!split_once(body, "+", &lhs, &rhs) || !parse_i64(lhs, &a) ||
          !parse_i64(rhs, &b) || b <= 0) {
        return Result<FaultPlan>::error(
            "fault plan: seed event '" + event +
            "' must be seed@S+H with integer seed S and horizon H > 0");
      }
      const FaultPlan seeded =
          seeded_fault_plan(static_cast<std::uint64_t>(a), b);
      plan.exhaustion.insert(plan.exhaustion.end(), seeded.exhaustion.begin(),
                             seeded.exhaustion.end());
      plan.reserve_faults.insert(plan.reserve_faults.end(),
                                 seeded.reserve_faults.begin(),
                                 seeded.reserve_faults.end());
      plan.cancellations.insert(plan.cancellations.end(),
                                seeded.cancellations.begin(),
                                seeded.cancellations.end());
      plan.spikes.insert(plan.spikes.end(), seeded.spikes.begin(),
                         seeded.spikes.end());
    } else {
      return Result<FaultPlan>::error(
          "fault plan: unknown event kind '" + kind +
          "' (kinds: exhaust, flaky, cancel, spike, seed)");
    }
  }
  return plan;
}

FaultPlan seeded_fault_plan(std::uint64_t seed, std::int64_t horizon) {
  FaultPlan plan;
  if (horizon <= 0) return plan;
  Rng rng(seed);
  // Two allocation freezes in the middle half of the horizon, wide enough
  // to starve at least one admission/reserve but always shorter than the
  // run. Draw order is fixed — the plan is a pure function of (seed,
  // horizon).
  for (int w = 0; w < 2; ++w) {
    const std::int64_t lo = std::max<std::int64_t>(1, horizon / 4);
    const std::int64_t hi = std::max(lo, (3 * horizon) / 4);
    const std::int64_t begin = rng.uniform_int(lo, hi);
    const std::int64_t width =
        rng.uniform_int(2, std::max<std::int64_t>(2, horizon / 12));
    plan.exhaustion.push_back({begin, std::min(begin + width, horizon)});
  }
  // Three transient reserve failures against the first eight submit
  // indices (out-of-range indices are inert for smaller request sets).
  for (int f = 0; f < 3; ++f) {
    const std::int64_t tick = rng.uniform_int(1, std::max<std::int64_t>(
                                                     1, horizon - 1));
    const int request = static_cast<int>(rng.uniform_int(0, 7));
    plan.reserve_faults.push_back({tick, request});
  }
  // One late client cancellation.
  {
    const std::int64_t tick = rng.uniform_int(
        std::max<std::int64_t>(1, horizon / 2),
        std::max<std::int64_t>(1, horizon - 1));
    const int request = static_cast<int>(rng.uniform_int(0, 7));
    plan.cancellations.push_back({tick, request});
  }
  return plan;
}

}  // namespace bbal::serve
