#include "nl/backends.hpp"

#include <cmath>
#include <vector>

namespace bbal::nl {

// --- LutNonlinearBackend ----------------------------------------------------

LutNonlinearBackend::LutNonlinearBackend(quant::BlockFormat fmt,
                                         bool quantise_softmax,
                                         bool quantise_silu)
    : engine_(fmt),
      quantise_softmax_(quantise_softmax),
      quantise_silu_(quantise_silu) {}

void LutNonlinearBackend::softmax(std::span<float> xs) {
  if (quantise_softmax_) {
    engine_.softmax(xs);
  } else {
    llm::softmax_reference(xs);
  }
}

void LutNonlinearBackend::silu(std::span<float> xs) {
  if (quantise_silu_) {
    engine_.silu(xs);
  } else {
    for (float& x : xs) x = llm::silu_reference(x);
  }
}

std::string LutNonlinearBackend::name() const {
  std::string n = engine_.format().name();
  if (quantise_softmax_ && !quantise_silu_) n += " softmax-only";
  if (!quantise_softmax_ && quantise_silu_) n += " silu-only";
  return n;
}

// --- PseudoSoftmaxBackend ---------------------------------------------------

PseudoSoftmaxBackend::PseudoSoftmaxBackend(int fraction_bits)
    : fraction_bits_(fraction_bits) {}

void PseudoSoftmaxBackend::softmax(std::span<float> xs) {
  if (xs.empty()) return;
  float mx = xs[0];
  for (const float v : xs) mx = std::max(mx, v);
  // 2^(x log2 e) with the exponent truncated to `fraction_bits_` fractional
  // bits — realisable with integer adds and shifts (the INT8 datapath).
  const double log2e = 1.4426950408889634;
  const double grid = std::ldexp(1.0, -fraction_bits_);
  double sum = 0.0;
  std::vector<double> pows(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double ex = (static_cast<double>(xs[i]) - mx) * log2e;
    const double trunc = std::floor(ex / grid) * grid;
    pows[i] = trunc < -31.0 ? 0.0 : std::exp2(trunc);
    sum += pows[i];
  }
  if (sum <= 0.0) sum = 1.0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    xs[i] = static_cast<float>(pows[i] / sum);
}

void PseudoSoftmaxBackend::silu(std::span<float> xs) {
  for (float& x : xs) x = llm::silu_reference(x);  // not supported by [32]
}

// --- Base2SoftmaxBackend ----------------------------------------------------

Base2SoftmaxBackend::Base2SoftmaxBackend(int fixed_bits)
    : fixed_bits_(fixed_bits) {}

void Base2SoftmaxBackend::softmax(std::span<float> xs) {
  if (xs.empty()) return;
  float mx = xs[0];
  for (const float v : xs) mx = std::max(mx, v);
  // Fixed-point base-2 path: x*log2(e) split into integer/fraction, the
  // fractional exponential evaluated to `fixed_bits_` precision.
  const double log2e = 1.4426950408889634;
  const double quantum = std::ldexp(1.0, -fixed_bits_);
  double sum = 0.0;
  std::vector<double> pows(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double ex = (static_cast<double>(xs[i]) - mx) * log2e;
    const double v = std::exp2(ex);
    pows[i] = std::floor(v / quantum) * quantum;  // 27-bit fixed point
    sum += pows[i];
  }
  if (sum <= 0.0) sum = 1.0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    xs[i] = static_cast<float>(pows[i] / sum);
}

void Base2SoftmaxBackend::silu(std::span<float> xs) {
  for (float& x : xs) x = llm::silu_reference(x);  // not supported by [33]
}

}  // namespace bbal::nl
