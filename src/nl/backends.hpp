// llm::NonlinearBackend adapters for the nonlinear units compared in
// Tables IV and V: the BBFP/BFP LUT engine, the pseudo-softmax of [32]
// (Cardarilli et al.) and the base-2 high-precision unit of [33].
#pragma once

#include <memory>

#include "llm/backend.hpp"
#include "nl/engine.hpp"

namespace bbal::nl {

/// LUT-engine-backed nonlinear backend (softmax + SiLU through the unit).
class LutNonlinearBackend final : public llm::NonlinearBackend {
 public:
  /// quantise_softmax / quantise_silu let Table IV's "Softmax Only" /
  /// "SILU Only" rows route just one of the two through the unit.
  LutNonlinearBackend(quant::BlockFormat fmt, bool quantise_softmax = true,
                      bool quantise_silu = true);

  void softmax(std::span<float> xs) override;
  void silu(std::span<float> xs) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] NlUnitEngine& engine() { return engine_; }

 private:
  NlUnitEngine engine_;
  bool quantise_softmax_;
  bool quantise_silu_;
};

/// [32]: pseudo-softmax — exponentials replaced by powers of two computed
/// with INT8 shifts: p_i = 2^(x_i - max) / sum_j 2^(x_j - max), with the
/// exponent truncated to integer-plus-fraction-bits precision. Cheap and
/// softmax-only (no SiLU support; SiLU falls back to FP32 here).
class PseudoSoftmaxBackend final : public llm::NonlinearBackend {
 public:
  explicit PseudoSoftmaxBackend(int fraction_bits = 3);
  void softmax(std::span<float> xs) override;
  void silu(std::span<float> xs) override;  // FP32 fallback (unsupported)
  [[nodiscard]] std::string name() const override { return "PseudoSoftmax"; }

 private:
  int fraction_bits_;
};

/// [33]: base-2 high-precision softmax — exact up to 27-bit fixed point;
/// numerically near-FP32 (the cost model, not the numerics, is what makes
/// it unattractive). Softmax-only.
class Base2SoftmaxBackend final : public llm::NonlinearBackend {
 public:
  explicit Base2SoftmaxBackend(int fixed_bits = 27);
  void softmax(std::span<float> xs) override;
  void silu(std::span<float> xs) override;  // FP32 fallback (unsupported)
  [[nodiscard]] std::string name() const override { return "Base2HighPrec"; }

 private:
  int fixed_bits_;
};

}  // namespace bbal::nl
