// The BBFP-based nonlinear computation unit (Section IV.B): exponent-
// segmented lookup tables addressed directly by aligned mantissas.
//
// Emulation model: the input vector is encoded block-wise in the configured
// format (BBFP(10,5) in the paper, BFP10 for the ablation). Each element's
// m-bit aligned mantissa supplies the LUT address (top `addr_bits` bits);
// the sub-table is selected by the block's shared exponent and the
// element's flag bit, so resolution is `step * 2^(m - addr_bits)` — for
// BFP10 that step is 2^(m-o) = 32x coarser than BBFP(10,5), which is the
// mechanism behind Table IV's blow-up.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <span>
#include <string>

#include "quant/block.hpp"

namespace bbal::nl {

/// Scalar function identities the unit can compute (the Control Unit's
/// opcode space; "SILU and so on" in Table V).
enum class NlFunction { kSoftmax, kSilu, kGelu, kSigmoid, kExp };

/// Usage counters: LUT traffic and distinct sub-tables touched, for the
/// cost model and the segmented-loading story.
struct NlUsageStats {
  std::uint64_t lut_lookups = 0;
  std::uint64_t blocks_encoded = 0;
  std::uint64_t elements = 0;
  std::set<std::pair<int, bool>> subtables_touched;  // (shared exp, flag)
};

class NlUnitEngine {
 public:
  /// `fmt` must have >= addr_bits mantissa bits; the paper uses
  /// BBFP(10,5) with 7-bit LUT addresses.
  explicit NlUnitEngine(quant::BlockFormat fmt, int addr_bits = 7);

  /// Numerically-stable softmax computed entirely through the unit's
  /// pipeline: max -> subtract -> exp LUT -> adder tree -> divide -> encode.
  void softmax(std::span<float> xs);

  /// SiLU via the sigmoid LUT and the Mul unit, in place, block-wise.
  void silu(std::span<float> xs);

  /// GELU (tanh-free formulation x * Phi(x)) via a Phi LUT.
  void gelu(std::span<float> xs);

  /// Plain sigmoid through the LUT path.
  void sigmoid(std::span<float> xs);

  /// Generic elementwise f through the LUT path (building block; exposed
  /// for error-bound tests).
  void apply_lut(std::span<const double> xs, std::span<double> out,
                 const std::function<double(double)>& f);

  [[nodiscard]] const NlUsageStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  [[nodiscard]] const quant::BlockFormat& format() const { return fmt_; }
  [[nodiscard]] int addr_bits() const { return addr_bits_; }

  /// Sub-tables provisioned to cover input exponents [e_min, e_max]
  /// (x 2 if both signs are needed): the paper's 18 (softmax) / 24 (SiLU).
  [[nodiscard]] static int provisioned_subtables(int e_min, int e_max,
                                                 bool both_signs);

  /// Storage of one sub-table in bits (2^addr entries of sign+exp+mantissa).
  [[nodiscard]] std::size_t subtable_bits() const;

 private:
  /// Quantise a scalar LUT entry / output to the unit's mantissa precision.
  [[nodiscard]] double quantise_entry(double v) const;

  quant::BlockFormat fmt_;
  int addr_bits_;
  NlUsageStats stats_;
};

}  // namespace bbal::nl
