#include "nl/engine.hpp"

#include <cassert>
#include <cmath>
#include <vector>

#include "common/float_parts.hpp"

namespace bbal::nl {
namespace {

double sigmoid_ref(double x) { return 1.0 / (1.0 + std::exp(-x)); }
double phi_ref(double x) { return 0.5 * (1.0 + std::erf(x / std::sqrt(2.0))); }

}  // namespace

NlUnitEngine::NlUnitEngine(quant::BlockFormat fmt, int addr_bits)
    : fmt_(fmt), addr_bits_(addr_bits) {
  assert(addr_bits >= 2 && addr_bits <= fmt.mantissa_bits);
}

double NlUnitEngine::quantise_entry(double v) const {
  if (v == 0.0) return 0.0;
  // Entries are stored with the unit's mantissa precision (sign + 5-bit
  // exponent + m-bit mantissa), i.e. scalar round at m bits.
  const FloatParts parts = decompose(v, fmt_.mantissa_bits);
  return compose(parts, fmt_.mantissa_bits);
}

void NlUnitEngine::apply_lut(std::span<const double> xs, std::span<double> out,
                             const std::function<double(double)>& f) {
  assert(xs.size() == out.size());
  // The Align Exponent Unit computes ONE shared exponent for the whole
  // vector (Section IV.B: "once a shared exponent is calculated during the
  // alignment phase, the corresponding sub-table can be loaded") — this is
  // what makes max-aligned BFP catastrophic on wide-range vectors while
  // BBFP's lowered exponent keeps the bulk resolution.
  const std::size_t bs = xs.size();
  const int m = fmt_.mantissa_bits;
  const int dd = fmt_.shift_distance();
  const int drop = m - addr_bits_;

  for (std::size_t start = 0; start < xs.size(); start += bs) {
    const std::size_t len = std::min(bs, xs.size() - start);
    const quant::EncodedBlock block =
        quant::encode_block(xs.subspan(start, len), fmt_);
    ++stats_.blocks_encoded;
    for (std::size_t i = 0; i < len; ++i) {
      const quant::BlockElement& e = block.elems[i];
      ++stats_.elements;
      double x_mid = 0.0;
      if (e.mantissa != 0) {
        // LUT address: top addr_bits of the aligned mantissa. The bucket
        // midpoint reconstructs the input the entry was tabulated at.
        const std::uint32_t addr = e.mantissa >> drop;
        const double mid_mantissa =
            (static_cast<double>(addr) + 0.5) * std::ldexp(1.0, drop);
        const double step =
            std::ldexp(1.0, block.shared_exponent - m + 1 + (e.flag ? dd : 0));
        x_mid = mid_mantissa * step * (e.negative ? -1.0 : 1.0);
        ++stats_.lut_lookups;
        stats_.subtables_touched.insert({block.shared_exponent, e.flag});
      }
      out[start + i] = quantise_entry(f(x_mid));
    }
  }
}

void NlUnitEngine::softmax(std::span<float> xs) {
  if (xs.empty()) return;
  // 1. Max unit.
  float mx = xs[0];
  for (const float v : xs) mx = std::max(mx, v);
  // 2. Sub unit (FP16-precision subtract), then exp LUT on x - max <= 0.
  std::vector<double> shifted(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    shifted[i] = to_fp16(static_cast<double>(xs[i]) - mx);
  std::vector<double> exps(xs.size());
  apply_lut(shifted, exps, [](double x) { return std::exp(x); });
  // 3. Adder tree (high-bitwidth integer in hardware; exact here).
  double sum = 0.0;
  for (const double v : exps) sum += v;
  if (sum <= 0.0) {  // degenerate: uniform fallback
    const float u = 1.0f / static_cast<float>(xs.size());
    for (float& v : xs) v = u;
    return;
  }
  // 4. Div unit + output encoder (quotients re-quantised to m bits).
  for (std::size_t i = 0; i < xs.size(); ++i)
    xs[i] = static_cast<float>(quantise_entry(exps[i] / sum));
}

void NlUnitEngine::silu(std::span<float> xs) {
  std::vector<double> in(xs.begin(), xs.end());
  std::vector<double> sig(xs.size());
  apply_lut(in, sig, sigmoid_ref);
  // Mul unit: multiply the vector-aligned quantised input by the entry.
  quant::BlockFormat vec_fmt = fmt_;
  vec_fmt.block_size = std::max<int>(1, static_cast<int>(xs.size()));
  const std::vector<double> xq = quant::quantise(in, vec_fmt);
  for (std::size_t i = 0; i < xs.size(); ++i)
    xs[i] = static_cast<float>(quantise_entry(xq[i] * sig[i]));
}

void NlUnitEngine::gelu(std::span<float> xs) {
  std::vector<double> in(xs.begin(), xs.end());
  std::vector<double> phi(xs.size());
  apply_lut(in, phi, phi_ref);
  quant::BlockFormat vec_fmt = fmt_;
  vec_fmt.block_size = std::max<int>(1, static_cast<int>(xs.size()));
  const std::vector<double> xq = quant::quantise(in, vec_fmt);
  for (std::size_t i = 0; i < xs.size(); ++i)
    xs[i] = static_cast<float>(quantise_entry(xq[i] * phi[i]));
}

void NlUnitEngine::sigmoid(std::span<float> xs) {
  std::vector<double> in(xs.begin(), xs.end());
  std::vector<double> sig(xs.size());
  apply_lut(in, sig, sigmoid_ref);
  for (std::size_t i = 0; i < xs.size(); ++i)
    xs[i] = static_cast<float>(sig[i]);
}

int NlUnitEngine::provisioned_subtables(int e_min, int e_max,
                                        bool both_signs) {
  assert(e_max >= e_min);
  return (e_max - e_min + 1) * (both_signs ? 2 : 1);
}

std::size_t NlUnitEngine::subtable_bits() const {
  const std::size_t entries = std::size_t{1} << addr_bits_;
  const std::size_t entry_bits =
      1 + static_cast<std::size_t>(fmt_.exponent_bits) +
      static_cast<std::size_t>(fmt_.mantissa_bits);
  return entries * entry_bits;
}

}  // namespace bbal::nl
