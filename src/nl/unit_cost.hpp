// Cost models of the nonlinear units compared in Table V: the BBAL unit
// (16-lane BBFP(10,5,5) pipeline), the pseudo-softmax of [32] and the
// base-2 high-precision unit of [33].
//
// Area/power come from gate tallies (hw::CellLibrary) plus SRAM macros for
// the LUT file and stage buffers, times a documented integration overhead.
// Metric conventions (paper Table V's exact normalisation is unspecified;
// see EXPERIMENTS.md):
//   ADP = area[mm^2] x native invocation latency[ns]
//   EDP = power[W]  x native latency[ns]^2
//   Eff = sustained throughput on LLM-scale vectors [Gelem/s]
//         / (area[mm^2] x power[W])
// "Native" latency is one invocation of the unit as published ([32]: one
// 10-input batch; [33]: one 8-lane batch through the serial divider; ours:
// a 128-wide softmax through the pipeline). Sustained throughput charges
// [32]/[33] for the hierarchical multi-pass renormalisation they need on
// LLM-length vectors — the compatibility cost the paper's text describes.
#pragma once

#include <string>

#include "arith/gates.hpp"
#include "hw/tech.hpp"

namespace bbal::nl {

struct NlUnitCost {
  std::string name;
  std::string num_format;
  int lanes = 16;
  bool pipelined = true;
  bool supports_silu = false;
  double area_mm2 = 0.0;
  double power_w = 0.0;
  /// Fixed latency per batch (unpipelined) or pipeline fill (pipelined).
  double fixed_latency_cycles = 0.0;
  /// One native invocation, cycles (ADP/EDP basis).
  double native_invocation_cycles = 0.0;
  /// Steady-state elements/cycle on LLM-scale vectors (Eff basis).
  double sustained_elems_per_cycle = 1.0;
  double freq_ghz = 1.0;

  /// Cycles to softmax an n-element vector (used by the Fig. 1b model).
  [[nodiscard]] double softmax_cycles(int n) const;
  [[nodiscard]] double softmax_delay_ns(int n) const;
  [[nodiscard]] double native_delay_ns() const {
    return native_invocation_cycles / freq_ghz;
  }
  [[nodiscard]] double throughput_gelems() const {
    return sustained_elems_per_cycle * freq_ghz;
  }
  [[nodiscard]] double adp() const { return area_mm2 * native_delay_ns(); }
  [[nodiscard]] double edp() const {
    const double d = native_delay_ns();
    return power_w * d * d;
  }
  [[nodiscard]] double efficiency() const {
    return throughput_gelems() / (area_mm2 * power_w);
  }
};

/// Our unit (Fig. 6): align-exponent, sub, segmented LUT file, mul, adder
/// tree, div, output encoder — all 16 lanes, fully pipelined.
[[nodiscard]] NlUnitCost bbal_nl_unit_cost(int lanes = 16);

/// [32]: 10-input INT8 pseudo-softmax block. Minimal native latency, but
/// LLM-length vectors require hierarchical renormalisation passes.
[[nodiscard]] NlUnitCost pseudo_softmax_cost();

/// [33]: 8-lane INT27 base-2 unit whose high-precision divider serialises
/// every element of the batch.
[[nodiscard]] NlUnitCost base2_softmax_cost();

}  // namespace bbal::nl
