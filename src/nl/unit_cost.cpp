#include "nl/unit_cost.hpp"

#include <cassert>
#include <cmath>

#include "common/bitutils.hpp"
#include "hw/sram.hpp"

namespace bbal::nl {

double NlUnitCost::softmax_cycles(int n) const {
  assert(n > 0);
  const double vec = ceil_div(n, static_cast<int>(lanes));
  if (pipelined) {
    // Three passes over the vector (max / exp+sum / div+encode) overlap
    // only partially: the sum must complete before division starts.
    return 3.0 * vec + fixed_latency_cycles;
  }
  // Batch unit: every `lanes`-chunk pays the full latency.
  return vec * fixed_latency_cycles;
}

double NlUnitCost::softmax_delay_ns(int n) const {
  return softmax_cycles(n) / freq_ghz;
}

namespace {

using arith::GateTally;

struct PricedUnit {
  double area_um2 = 0.0;
  double power_w = 0.0;
};

/// Price a datapath tally plus SRAM bytes at the given activity factor.
PricedUnit price(const GateTally& gates, double sram_bytes, double freq_ghz,
                 double activity) {
  const hw::CellLibrary& lib = hw::CellLibrary::tsmc28();
  PricedUnit p;
  p.area_um2 = lib.area_um2(gates);
  p.power_w = lib.dynamic_fj(gates) * 1e-15 * freq_ghz * 1e9 * activity +
              lib.leakage_nw(gates) * 1e-9;
  if (sram_bytes > 0) {
    const hw::SramMacro sram =
        hw::make_sram(static_cast<std::size_t>(sram_bytes), 128);
    p.area_um2 += sram.area_um2();
    p.power_w += sram.leakage_uw() * 1e-6 +
                 sram.access_pj() * 1e-12 * freq_ghz * 1e9 * activity;
  }
  return p;
}

/// Integration overhead: routing, clock tree, control, redundancy. One
/// documented constant per unit class (the paper notes its unit carries
/// redundant vector modules for compatibility).
constexpr double kBbalOverhead = 6.0;
constexpr double kPseudoOverhead = 3.0;
constexpr double kBase2Overhead = 6.0;

}  // namespace

NlUnitCost bbal_nl_unit_cost(int lanes) {
  GateTally t;
  // Align Exponent Unit: per lane comparator + alignment shifter.
  t += arith::comparator(5) * lanes;
  t += arith::barrel_shifter(11, 32) * lanes;
  // Sub unit (x - max) in 16-bit fixed point.
  t += arith::ripple_adder(16) * lanes;
  // Mul unit: full-precision 11x11 multipliers (the paper's cost driver).
  t += arith::array_multiplier(11, 11) * lanes;
  // Adder tree: lanes-1 adders at 24 bits.
  t += arith::ripple_adder(24) * (lanes - 1);
  // Div unit: two pipelined 24-bit array dividers (24 stages of CSA+mux).
  t += (arith::ripple_adder(24) + arith::mux_bank(24)) * (2 * 24);
  // Output encoder: LOD + normalise shifter per lane.
  t += arith::leading_one_detector(16) * lanes;
  t += arith::barrel_shifter(16, 16) * lanes;
  // Stage buffers/registers (Fig. 6: a buffer per module).
  t += arith::register_bank(16 * 6) * lanes;

  // LUT file: 4 resident sub-tables x 128 entries x 16 bits, double
  // buffered for segmented dynamic loading; plus 6 stage buffers.
  const double sram_bytes = 2 * 4 * 128 * 2 + 6 * 512;

  const PricedUnit p = price(t, sram_bytes, 1.0, 0.5);
  NlUnitCost c;
  c.name = "Ours (BBAL)";
  c.num_format = "BBFP(10,5,5)";
  c.lanes = lanes;
  c.pipelined = true;
  c.supports_silu = true;
  c.area_mm2 = p.area_um2 * 1e-6 * kBbalOverhead;
  c.power_w = p.power_w * kBbalOverhead;
  // Adder-tree + divider + encode latency; LUT loads overlap the pipeline.
  c.fixed_latency_cycles = std::ceil(std::log2(lanes)) + 24.0 + 6.0;
  c.native_invocation_cycles = c.softmax_cycles(128);
  c.sustained_elems_per_cycle = lanes;  // fully pipelined
  return c;
}

NlUnitCost pseudo_softmax_cost() {
  const int inputs = 10;
  GateTally t;
  // Per input: INT8 subtract, shift-based power-of-two, normalisation,
  // plus FP16 -> INT8 conversion (multiplier + LOD) to serve LLM tensors.
  t += arith::ripple_adder(8) * inputs;
  t += arith::barrel_shifter(16, 16) * inputs;
  t += arith::leading_one_detector(16) * inputs;
  t += arith::array_multiplier(8, 8) * inputs;  // input conversion
  t += arith::ripple_adder(16) * (inputs - 1);
  t += arith::barrel_shifter(16, 16) * inputs;
  t += arith::register_bank(16 * 2) * inputs;
  // Staging buffers for vector decomposition (LLM-length inputs).
  const double sram_bytes = 2 * 1024;

  const PricedUnit p = price(t, sram_bytes, 1.0, 1.0);  // small + hot
  NlUnitCost c;
  c.name = "[32] pseudo-softmax";
  c.num_format = "Int8";
  c.lanes = inputs;
  c.pipelined = false;
  c.supports_silu = false;
  c.area_mm2 = p.area_um2 * 1e-6 * kPseudoOverhead;
  c.power_w = p.power_w * kPseudoOverhead;
  // One native 10-input batch: the published unit's strength.
  c.native_invocation_cycles = 20.0;
  // LLM-length vectors need decomposition + hierarchical renormalisation:
  // ~3 passes over each batch.
  c.fixed_latency_cycles = 60.0;
  c.sustained_elems_per_cycle = static_cast<double>(inputs) / 60.0;
  return c;
}

NlUnitCost base2_softmax_cost() {
  const int lanes = 8;
  GateTally t;
  // Per lane: 27-bit fixed-point multiplier + adders (base-2 decomposition).
  t += arith::array_multiplier(27, 27) * lanes;
  t += arith::ripple_adder(27) * (2 * lanes);
  t += arith::barrel_shifter(27, 32) * lanes;
  // Serial high-precision divider shared across lanes (27 iterations per
  // element).
  t += (arith::ripple_adder(27) + arith::mux_bank(27)) * 27;
  t += arith::register_bank(27 * 4) * lanes;

  const PricedUnit p = price(t, /*sram_bytes=*/0.0, 1.0, 0.5);
  NlUnitCost c;
  c.name = "[33] base-2 high-prec";
  c.num_format = "Int27";
  c.lanes = lanes;
  c.pipelined = false;
  c.supports_silu = false;
  c.area_mm2 = p.area_um2 * 1e-6 * kBase2Overhead;
  c.power_w = p.power_w * kBase2Overhead;
  // 8-element batch: pipeline front end + 27 divider iterations/element.
  c.fixed_latency_cycles = 35.0 + 27.0 * lanes;
  c.native_invocation_cycles = c.fixed_latency_cycles;
  c.sustained_elems_per_cycle =
      static_cast<double>(lanes) / c.fixed_latency_cycles;
  return c;
}

}  // namespace bbal::nl
