// The unified backend registry: one table maps quant::StrategySpec to
// MatmulBackend and NonlinearBackend factories plus capability metadata.
// Replaces the seed's two disconnected mechanisms (baselines::
// make_matmul_backend's if-chain, which asserted on unknown names, and the
// ad-hoc nl:: backend construction each bench repeated).
//
// Factories self-register per StrategyFamily via BackendRegistrar; the
// built-in families register in registry.cpp. Lookups return error-carrying
// Results — an unknown or malformed strategy name is a reportable error,
// never an abort.
//
// Thread-safety contract: every method of BackendRegistry is safe to call
// concurrently — SweepRunner evaluates sessions on the thread pool, and
// each evaluate() resolves its backends through this registry. The entry
// table is guarded by an internal mutex; factory functors are *copied* out
// under the lock and invoked outside it, so a slow factory never blocks
// other lookups and a factory may itself call back into the registry
// (including register_family) without deadlocking. Registered factories
// must therefore be safe to copy and to invoke from any thread; the
// backends they return are single-session objects and are NOT required to
// be thread-safe themselves. Registration normally happens before main()
// via BackendRegistrar (single-threaded static init); late registration is
// permitted and serialised by the same mutex.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "llm/backend.hpp"
#include "quant/strategy.hpp"

namespace bbal {

/// What a registered strategy family can do — queried by Session and the
/// benches to decide which axes (accuracy, cost) a strategy supports.
struct BackendCapabilities {
  bool matmul = false;     ///< has a linear-layer (MatmulBackend) factory
  bool nonlinear = false;  ///< has a NonlinearBackend factory
  /// The matmul backend quantises dynamic activation-by-activation products
  /// (attention score/context GEMMs) rather than falling back to FP32.
  bool dynamic_matmul_quantised = false;
  /// A hardware cost model exists (PE datapath design / nonlinear unit
  /// cost), so the strategy can drive the accelerator simulator.
  bool cost_model = false;
};

class BackendRegistry {
 public:
  using MatmulFactory =
      std::function<Result<std::unique_ptr<llm::MatmulBackend>>(
          const quant::StrategySpec&)>;
  using NonlinearFactory =
      std::function<Result<std::unique_ptr<llm::NonlinearBackend>>(
          const quant::StrategySpec&)>;

  /// The process-wide registry (built-in families pre-registered).
  [[nodiscard]] static BackendRegistry& instance();

  /// Register (or replace) the factories for one strategy family.
  /// Factories may be null when the family lacks that backend kind.
  void register_family(quant::StrategyFamily family, BackendCapabilities caps,
                       MatmulFactory matmul, NonlinearFactory nonlinear);

  // --- Factory lookups -----------------------------------------------------

  [[nodiscard]] Result<std::unique_ptr<llm::MatmulBackend>> make_matmul(
      const quant::StrategySpec& spec) const;
  [[nodiscard]] Result<std::unique_ptr<llm::MatmulBackend>> make_matmul(
      std::string_view name) const;

  [[nodiscard]] Result<std::unique_ptr<llm::NonlinearBackend>> make_nonlinear(
      const quant::StrategySpec& spec) const;
  [[nodiscard]] Result<std::unique_ptr<llm::NonlinearBackend>> make_nonlinear(
      std::string_view name) const;

  // --- Capability queries --------------------------------------------------

  [[nodiscard]] Result<BackendCapabilities> capabilities(
      const quant::StrategySpec& spec) const;
  /// False (not an error) for unknown specs.
  [[nodiscard]] bool supports_dynamic_matmul(
      const quant::StrategySpec& spec) const;
  [[nodiscard]] bool has_cost_model(const quant::StrategySpec& spec) const;
  /// True if `name` parses and its family is registered.
  [[nodiscard]] bool is_known(std::string_view name) const;

 private:
  struct Entry {
    BackendCapabilities caps;
    MatmulFactory matmul;
    NonlinearFactory nonlinear;
  };
  /// Copy of the entry for `family` (or nullopt), taken under the mutex so
  /// callers can use it lock-free afterwards.
  [[nodiscard]] std::optional<Entry> find(quant::StrategyFamily family) const;

  mutable std::mutex mutex_;  ///< guards entries_ (see contract above)
  std::vector<std::pair<quant::StrategyFamily, Entry>> entries_;
};

/// Self-registration hook: a namespace-scope BackendRegistrar registers a
/// family before main() runs.
struct BackendRegistrar {
  BackendRegistrar(quant::StrategyFamily family, BackendCapabilities caps,
                   BackendRegistry::MatmulFactory matmul,
                   BackendRegistry::NonlinearFactory nonlinear) {
    BackendRegistry::instance().register_family(
        family, caps, std::move(matmul), std::move(nonlinear));
  }
};

// --- Convenience free functions ---------------------------------------------

/// Create a matmul backend from a strategy name via the global registry.
[[nodiscard]] Result<std::unique_ptr<llm::MatmulBackend>>
make_matmul_backend(std::string_view name);

/// Create a nonlinear backend from a strategy name via the global registry.
[[nodiscard]] Result<std::unique_ptr<llm::NonlinearBackend>>
make_nonlinear_backend(std::string_view name);

/// The strategy rows of Table II, in paper order.
[[nodiscard]] std::vector<std::string> table2_strategies();

}  // namespace bbal
