// bbal::SweepRunner — evaluate many (model, matmul-strategy, nonlinear-
// strategy) combinations concurrently on the process thread pool.
//
// This is the engine behind the Table II / Table IV / Fig. 8 sweeps and
// tools/record_table2: items are declared up front, run() fans them out
// over common::ThreadPool::global(), and the results come back in
// *declaration order* regardless of which thread finished first.
//
// Guarantees:
//  - Determinism: reports[i] always corresponds to items[i], and every
//    report is bit-identical to what a serial Session::evaluate() of the
//    same item produces (tested in test_session; locked in by the
//    BENCH_table2.json CI gate at BBAL_THREADS=1/2/N).
//  - Shared lazy preparation: items naming the same model share one
//    PreparedModel — the first item to need it calibrates, concurrent
//    items for the same model wait, later ones reuse. An explicitly
//    attached `prepared` model bypasses the cache.
//  - Error isolation: a failing item (unknown strategy, bad combination)
//    yields an error Result in its slot; the other items still run.
//
//   SweepRunner sweep;
//   sweep.eval_tokens(256);
//   for (const auto& s : table2_strategies())
//     sweep.add(SweepRunner::Item{.model = "Llama-7B", .matmul = s});
//   auto result = sweep.run();
//   // result.reports[i] pairs with the i-th add(); result.wall_seconds
//   // and result.threads feed the bench JSON's sweep metadata.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bbal/session.hpp"

namespace bbal {

class SweepRunner {
 public:
  /// One cell of the sweep: a model (by zoo name, explicit config, or an
  /// already-prepared model) under one strategy pair, with an optional
  /// accelerator attached the same way Session::Builder takes it.
  struct Item {
    std::string model;  ///< zoo name; ignored when config/prepared is set
    std::optional<llm::ModelConfig> config;
    std::shared_ptr<const llm::PreparedModel> prepared;

    std::string matmul = "FP32";
    std::string nonlinear = "FP32";

    std::optional<accel::AcceleratorConfig> accelerator;
    std::optional<double> iso_area_um2;
    double iso_dram_gbps = hw::kDramBandwidthGBs;

    /// Fixed cost workload instead of the captured one (Fig. 8's rule).
    std::optional<int> prefill_seq;
    /// Cost-only item: skip the perplexity run (needs prefill_seq).
    bool skip_accuracy = false;
  };

  struct SweepResult {
    /// One slot per add(), in declaration order.
    std::vector<Result<Session::Report>> reports;
    double wall_seconds = 0.0;  ///< run() wall-clock for the whole sweep
    int threads = 1;            ///< executors the sweep ran with
    int models_prepared = 0;    ///< distinct models calibrated by the cache

    /// True when every item evaluated cleanly.
    [[nodiscard]] bool all_ok() const;
    /// First error message, or "" when all_ok().
    [[nodiscard]] std::string first_error() const;
  };

  /// Evaluation stream length for models the sweep prepares itself.
  SweepRunner& eval_tokens(int tokens);
  SweepRunner& add(Item item);
  [[nodiscard]] std::size_t size() const { return items_.size(); }

  /// Evaluate every item on ThreadPool::global(). Blocking; reentrant in
  /// the sense that distinct SweepRunner instances may run concurrently.
  [[nodiscard]] SweepResult run();

 private:
  int eval_tokens_ = 512;
  std::vector<Item> items_;
};

}  // namespace bbal
