#include "bbal/session.hpp"

#include <sstream>
#include <utility>

#include "bbal/registry.hpp"

namespace bbal {
namespace {

/// MatmulBackend decorator that records every GEMM it executes as a
/// GemmShape, so the accelerator model can replay exactly the workload the
/// accuracy run performed. Attention fusion flags follow the Fig. 7
/// convention used by accel::prefill_gemms: dynamic products alternate
/// score (outputs stay on chip, feeding the nonlinear unit) and context
/// (activations consumed straight from the unit's buffer) — the order our
/// transformer issues them in.
class CapturingMatmul final : public llm::MatmulBackend {
 public:
  explicit CapturingMatmul(std::unique_ptr<llm::MatmulBackend> inner)
      : inner_(std::move(inner)) {}

  int prepare_weights(const llm::Matrix& w, const std::string& tag) override {
    const int handle = inner_->prepare_weights(w, tag);
    if (handle >= static_cast<int>(weights_.size()))
      weights_.resize(static_cast<std::size_t>(handle) + 1);
    weights_[static_cast<std::size_t>(handle)] = {w.rows(), w.cols(), tag};
    weight_elements_ += static_cast<std::int64_t>(w.rows()) * w.cols();
    return handle;
  }

  void matmul(const llm::Matrix& acts, int weight_handle,
              llm::Matrix& out) override {
    const WeightInfo& w = weights_[static_cast<std::size_t>(weight_handle)];
    gemms_.push_back({acts.rows(), acts.cols(), w.cols, w.tag});
    inner_->matmul(acts, weight_handle, out);
  }

  void matmul_dynamic(const llm::Matrix& a, const llm::Matrix& b,
                      llm::Matrix& out) override {
    const bool is_score = (dynamic_calls_++ % 2) == 0;
    gemms_.push_back({a.rows(), a.cols(), b.cols(),
                      is_score ? "attn_scores" : "attn_context",
                      /*output_on_chip=*/is_score,
                      /*acts_on_chip=*/!is_score});
    inner_->matmul_dynamic(a, b, out);
  }

  [[nodiscard]] std::int64_t weights_bytes() const override {
    return inner_->weights_bytes();
  }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

  [[nodiscard]] const std::vector<accel::GemmShape>& captured() const {
    return gemms_;
  }
  [[nodiscard]] std::int64_t weight_elements() const {
    return weight_elements_;
  }

 private:
  struct WeightInfo {
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    std::string tag;
  };
  std::unique_ptr<llm::MatmulBackend> inner_;
  std::vector<WeightInfo> weights_;
  std::vector<accel::GemmShape> gemms_;
  std::int64_t weight_elements_ = 0;
  std::uint64_t dynamic_calls_ = 0;
};

/// NonlinearBackend decorator counting softmax/SiLU traffic.
class CountingNonlinear final : public llm::NonlinearBackend {
 public:
  explicit CountingNonlinear(std::unique_ptr<llm::NonlinearBackend> inner)
      : inner_(std::move(inner)) {}

  void softmax(std::span<float> xs) override {
    elements_ += static_cast<std::int64_t>(xs.size());
    inner_->softmax(xs);
  }
  void silu(std::span<float> xs) override {
    elements_ += static_cast<std::int64_t>(xs.size());
    inner_->silu(xs);
  }
  [[nodiscard]] std::string name() const override { return inner_->name(); }
  [[nodiscard]] std::int64_t elements() const { return elements_; }

 private:
  std::unique_ptr<llm::NonlinearBackend> inner_;
  std::int64_t elements_ = 0;
};

/// Storage bits per weight element under a strategy: the PE design's
/// equivalent bits when a cost model exists, else full FP32 words.
double storage_bits_per_element(const quant::StrategySpec& spec) {
  const Result<hw::DatapathDesign> design = hw::pe_for_spec(spec);
  if (design.is_ok()) return design.value().equivalent_bits;
  return 32.0;
}

void append_json(std::ostringstream& os, const char* key, double v,
                 bool* first) {
  if (!*first) os << ", ";
  *first = false;
  os << '"' << key << "\": " << v;
}

}  // namespace

std::shared_ptr<const llm::PreparedModel> prepare_shared(
    const llm::ModelConfig& config, int eval_tokens) {
  return std::make_shared<const llm::PreparedModel>(
      llm::prepare_model(config, eval_tokens));
}

std::shared_ptr<const llm::PreparedModel> prepare_shared(
    const std::string& zoo_name, int eval_tokens) {
  return prepare_shared(llm::config_by_name(zoo_name), eval_tokens);
}

// --- Builder -----------------------------------------------------------------

Session::Builder& Session::Builder::model(const std::string& zoo_name) {
  auto config = llm::find_config(zoo_name);
  if (config.is_ok()) {
    config_ = std::move(config).value();
    model_error_.clear();
  } else {
    // Surface the lookup failure from build(), like every other error.
    model_error_ = config.message();
    config_.reset();
  }
  return *this;
}

Session::Builder& Session::Builder::model(llm::ModelConfig config) {
  config_ = std::move(config);
  return *this;
}

Session::Builder& Session::Builder::prepared(
    std::shared_ptr<const llm::PreparedModel> model) {
  prepared_ = std::move(model);
  return *this;
}

Session::Builder& Session::Builder::eval_tokens(int tokens) {
  eval_tokens_ = tokens;
  return *this;
}

Session::Builder& Session::Builder::matmul(std::string_view strategy) {
  matmul_text_ = std::string(strategy);
  matmul_spec_.reset();
  return *this;
}

Session::Builder& Session::Builder::matmul(quant::StrategySpec spec) {
  matmul_spec_ = spec;
  return *this;
}

Session::Builder& Session::Builder::nonlinear(std::string_view strategy) {
  nonlinear_text_ = std::string(strategy);
  nonlinear_spec_.reset();
  return *this;
}

Session::Builder& Session::Builder::nonlinear(quant::StrategySpec spec) {
  nonlinear_spec_ = spec;
  return *this;
}

Session::Builder& Session::Builder::accelerator(
    accel::AcceleratorConfig config) {
  accel_ = std::move(config);
  iso_area_um2_.reset();
  return *this;
}

Session::Builder& Session::Builder::accelerator_iso_area(
    double pe_area_budget_um2, double dram_gbps) {
  iso_area_um2_ = pe_area_budget_um2;
  iso_dram_gbps_ = dram_gbps;
  accel_.reset();
  return *this;
}

Session::Builder& Session::Builder::skip_accuracy() {
  skip_accuracy_ = true;
  return *this;
}

Session::Builder& Session::Builder::workload(
    std::vector<accel::GemmShape> gemms) {
  workload_ = std::move(gemms);
  return *this;
}

Session::Builder& Session::Builder::workload_prefill(int seq) {
  prefill_seq_ = seq;
  return *this;
}

Session::Builder& Session::Builder::workload_decode(int ctx) {
  decode_ctx_ = ctx;
  return *this;
}

Result<Session> Session::Builder::build() {
  using R = Result<Session>;
  if (!model_error_.empty()) return R::error("model: " + model_error_);
  const BackendRegistry& registry = BackendRegistry::instance();

  // Resolve strategy specs.
  quant::StrategySpec matmul;
  if (matmul_spec_) {
    matmul = *matmul_spec_;
  } else {
    auto parsed = quant::StrategySpec::parse(matmul_text_);
    if (!parsed.is_ok()) return R::error("matmul: " + parsed.message());
    matmul = parsed.value();
  }
  quant::StrategySpec nonlinear;
  if (nonlinear_spec_) {
    nonlinear = *nonlinear_spec_;
  } else {
    auto parsed = quant::StrategySpec::parse(nonlinear_text_);
    if (!parsed.is_ok()) return R::error("nonlinear: " + parsed.message());
    nonlinear = parsed.value();
  }

  // Capability checks up front, so evaluate() cannot fail on lookups.
  {
    const auto caps = registry.capabilities(matmul);
    if (!caps.is_ok()) return R::error("matmul: " + caps.message());
    if (!caps.value().matmul)
      return R::error("matmul: " + matmul.to_string() +
                      " is not a linear-layer strategy");
    const auto nl_caps = registry.capabilities(nonlinear);
    if (!nl_caps.is_ok()) return R::error("nonlinear: " + nl_caps.message());
    if (!nl_caps.value().nonlinear)
      return R::error("nonlinear: " + nonlinear.to_string() +
                      " is not a nonlinear strategy");
  }

  Session session;
  session.matmul_ = matmul;
  session.nonlinear_ = nonlinear;
  session.skip_accuracy_ = skip_accuracy_;
  session.eval_tokens_ = eval_tokens_;

  // Model: a shared prepared model wins; a bare config defers the
  // (expensive) preparation until the first accuracy evaluation.
  if (prepared_) {
    session.config_ = prepared_->config;
    session.prepared_ = std::move(prepared_);
  } else if (config_) {
    session.config_ = *config_;
  } else {
    return R::error("no model: call model(...) or prepared(...)");
  }

  // Accelerator: bind the matmul strategy to the cost model.
  const bool wants_accel = accel_.has_value() || iso_area_um2_.has_value();
  if (wants_accel) {
    if (!registry.has_cost_model(matmul))
      return R::error("accelerator: " + matmul.to_string() +
                      " has no hardware cost model; drop the accelerator or "
                      "choose a cost-modelled strategy");
    if (iso_area_um2_) {
      auto cfg = accel::make_iso_area_config(matmul, *iso_area_um2_,
                                             iso_dram_gbps_);
      if (!cfg.is_ok()) return R::error("accelerator: " + cfg.message());
      session.accel_ = std::move(cfg).value();
    } else {
      accel_->strategy = matmul.to_string();
      session.accel_ = std::move(*accel_);
    }
  }

  // Cost workload overrides.
  int override_count = 0;
  if (workload_) ++override_count;
  if (prefill_seq_) ++override_count;
  if (decode_ctx_) ++override_count;
  if (override_count > 1)
    return R::error(
        "choose one of workload(), workload_prefill(), workload_decode()");
  if (workload_) {
    session.workload_override_ = std::move(*workload_);
  } else if (prefill_seq_) {
    session.workload_override_ =
        accel::prefill_gemms(session.config_, *prefill_seq_);
  } else if (decode_ctx_) {
    session.workload_override_ =
        accel::decode_step_gemms(session.config_, *decode_ctx_);
  }

  if (skip_accuracy_ && !wants_accel)
    return R::error("nothing to do: skip_accuracy() with no accelerator");
  if (skip_accuracy_ && !session.workload_override_)
    return R::error(
        "skip_accuracy() needs an explicit workload (workload_prefill / "
        "workload_decode / workload)");

  return session;
}

// --- Session -----------------------------------------------------------------

const std::shared_ptr<const llm::PreparedModel>& Session::prepare() {
  if (!prepared_) prepared_ = prepare_shared(config_, eval_tokens_);
  return prepared_;
}

Result<Session::Report> Session::evaluate() {
  using R = Result<Report>;
  const BackendRegistry& registry = BackendRegistry::instance();

  Report report;
  report.model = config_.name;
  report.matmul_strategy = matmul_;
  report.nonlinear_strategy = nonlinear_;

  std::int64_t weight_elements = 0;
  captured_.clear();

  if (!skip_accuracy_) {
    (void)prepare();
    auto matmul_backend = registry.make_matmul(matmul_);
    if (!matmul_backend.is_ok()) return R::error(matmul_backend.message());
    auto nl_backend = registry.make_nonlinear(nonlinear_);
    if (!nl_backend.is_ok()) return R::error(nl_backend.message());

    CapturingMatmul capture(std::move(matmul_backend).value());
    CountingNonlinear counting(std::move(nl_backend).value());

    report.perplexity = llm::evaluate_ppl(*prepared_, capture, counting);
    report.fp32_perplexity = prepared_->fp32_ppl;
    report.has_accuracy = true;

    captured_ = capture.captured();
    weight_elements = capture.weight_elements();
    report.nonlinear_elements = counting.elements();
  }

  const std::vector<accel::GemmShape>& workload =
      workload_override_ ? *workload_override_ : captured_;
  report.captured_gemms = captured_.size();
  report.captured_macs = accel::total_macs(captured_);

  if (accel_) {
    report.run = accel::simulate_workload(*accel_, workload);
    report.energy = report.run.energy;
    report.accelerator_pes = accel_->pe_count();
    report.has_cost = true;
  }

  // Memory footprint of the registered weights under the strategy's
  // storage format (FP32 words when no hardware format exists).
  if (weight_elements == 0) {
    // Accuracy skipped: size the weights from the model config instead.
    const llm::ModelConfig& cfg = config_;
    const std::int64_t d = cfg.d_model;
    const std::int64_t ff = cfg.d_ff;
    weight_elements =
        cfg.n_layers * (4 * d * d + 3 * d * ff) +
        static_cast<std::int64_t>(cfg.vocab) * d;  // lm_head
  }
  report.memory_footprint_bytes =
      static_cast<double>(weight_elements) *
      storage_bits_per_element(matmul_) / 8.0;

  return report;
}

std::string Session::Report::to_json() const {
  std::ostringstream os;
  os.precision(6);
  os << "{\"model\": \"" << model << "\", \"matmul\": \""
     << matmul_strategy.to_string() << "\", \"nonlinear\": \""
     << nonlinear_strategy.to_string() << "\"";
  bool first = false;
  if (has_accuracy) {
    append_json(os, "perplexity", perplexity, &first);
    append_json(os, "fp32_perplexity", fp32_perplexity, &first);
  }
  if (has_cost) {
    append_json(os, "throughput_gops", run.throughput_gops, &first);
    append_json(os, "seconds", run.seconds, &first);
    append_json(os, "cycles", run.gemm.cycles, &first);
    append_json(os, "accelerator_pes", static_cast<double>(accelerator_pes),
                &first);
    append_json(os, "energy_j", energy.total_j(), &first);
    append_json(os, "energy_core_j", energy.core_j, &first);
    append_json(os, "energy_buffer_j", energy.buffer_j, &first);
    append_json(os, "energy_dram_j", energy.dram_j, &first);
    append_json(os, "energy_static_j", energy.static_j, &first);
  }
  append_json(os, "memory_footprint_bytes", memory_footprint_bytes, &first);
  append_json(os, "captured_gemms", static_cast<double>(captured_gemms),
              &first);
  append_json(os, "captured_macs", static_cast<double>(captured_macs),
              &first);
  os << "}";
  return os.str();
}

}  // namespace bbal
