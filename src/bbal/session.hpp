// bbal::Session — the single entry point for accuracy + cost co-simulation.
//
// One Session binds a model, a matmul strategy, a nonlinear strategy and
// (optionally) an accelerator configuration. evaluate() runs the quantised
// transformer over the model's evaluation stream, capturing the GEMM
// workload *as it executes*, then replays that workload on the cycle-level
// accelerator model — so the perplexity and the throughput/energy numbers
// of a Table II / Fig. 8 cell come from the same forward passes, with none
// of the per-bench glue the seed repeated 14 times.
//
//   auto model = bbal::prepare_shared("Llama-7B", /*eval_tokens=*/320);
//   auto session = bbal::Session::Builder()
//                      .prepared(model)
//                      .matmul("BBFP(4,2)")
//                      .nonlinear("FP32")
//                      .accelerator_iso_area(150000.0, 51.2)
//                      .build();               // Result<Session>
//   if (!session.is_ok()) { /* session.message() explains why */ }
//   auto report = session.value().evaluate().expect("evaluate");
//   // report.perplexity, .run.throughput_gops, .energy.total_j()
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "accel/config.hpp"
#include "accel/simulator.hpp"
#include "accel/workload.hpp"
#include "common/result.hpp"
#include "llm/perplexity.hpp"
#include "quant/strategy.hpp"

namespace bbal {

/// Build + calibrate a model once and share it across many Sessions (a
/// PreparedModel is by far the most expensive artefact of an evaluation).
[[nodiscard]] std::shared_ptr<const llm::PreparedModel> prepare_shared(
    const llm::ModelConfig& config, int eval_tokens = 512);
[[nodiscard]] std::shared_ptr<const llm::PreparedModel> prepare_shared(
    const std::string& zoo_name, int eval_tokens = 512);

class Session {
 public:
  /// Everything evaluate() produces. Accuracy fields are valid when
  /// has_accuracy, cost fields when has_cost.
  struct Report {
    std::string model;
    quant::StrategySpec matmul_strategy;
    quant::StrategySpec nonlinear_strategy;

    bool has_accuracy = false;
    double perplexity = 0.0;
    double fp32_perplexity = 0.0;  ///< calibrated baseline on the stream

    bool has_cost = false;
    accel::RunStats run;            ///< cycles, seconds, GOPS (+ energy)
    accel::EnergyBreakdown energy;  ///< run.energy, surfaced directly
    int accelerator_pes = 0;        ///< PE count of the attached accelerator
    double memory_footprint_bytes = 0.0;  ///< weights under the strategy

    std::size_t captured_gemms = 0;       ///< GEMMs recorded during eval
    std::int64_t captured_macs = 0;
    std::int64_t nonlinear_elements = 0;  ///< softmax+SiLU traffic

    /// Flat JSON object (used by tools/record_table2 for BENCH_table2.json).
    [[nodiscard]] std::string to_json() const;
  };

  class Builder {
   public:
    /// Model by zoo name or full config (Session prepares + calibrates it
    /// at build; prefer prepared() to share that cost across sessions).
    Builder& model(const std::string& zoo_name);
    Builder& model(llm::ModelConfig config);
    Builder& prepared(std::shared_ptr<const llm::PreparedModel> model);
    /// Evaluation stream length when the Session prepares its own model.
    Builder& eval_tokens(int tokens);

    Builder& matmul(std::string_view strategy);
    Builder& matmul(quant::StrategySpec spec);
    Builder& nonlinear(std::string_view strategy);
    Builder& nonlinear(quant::StrategySpec spec);

    /// Attach an accelerator; its strategy field is overwritten with the
    /// session's matmul strategy (one strategy drives both halves).
    Builder& accelerator(accel::AcceleratorConfig config);
    /// Iso-area accelerator (Fig. 8's comparison rule), derived from the
    /// matmul strategy's PE design at build time.
    Builder& accelerator_iso_area(double pe_area_budget_um2,
                                  double dram_gbps = hw::kDramBandwidthGBs);

    /// Skip the perplexity run; cost simulation uses a synthetic workload.
    Builder& skip_accuracy();
    /// Explicit cost workload instead of the captured one.
    Builder& workload(std::vector<accel::GemmShape> gemms);
    /// Synthetic prefill / decode-step workloads from the model config.
    Builder& workload_prefill(int seq);
    Builder& workload_decode(int ctx);

    /// Validate the combination and construct the Session. All errors
    /// (unknown strategy, missing capability, no model) surface here.
    [[nodiscard]] Result<Session> build();

   private:
    std::string model_error_;
    std::optional<llm::ModelConfig> config_;
    std::shared_ptr<const llm::PreparedModel> prepared_;
    int eval_tokens_ = 512;
    std::string matmul_text_ = "FP32";
    std::optional<quant::StrategySpec> matmul_spec_;
    std::string nonlinear_text_ = "FP32";
    std::optional<quant::StrategySpec> nonlinear_spec_;
    std::optional<accel::AcceleratorConfig> accel_;
    std::optional<double> iso_area_um2_;
    double iso_dram_gbps_ = hw::kDramBandwidthGBs;
    bool skip_accuracy_ = false;
    std::optional<std::vector<accel::GemmShape>> workload_;
    std::optional<int> prefill_seq_;
    std::optional<int> decode_ctx_;
  };

  /// Run the co-simulation. Deterministic and repeatable: backends are
  /// constructed fresh per call. The model is prepared (calibrated) lazily
  /// on the first accuracy evaluation — cost-only sessions never pay it.
  [[nodiscard]] Result<Report> evaluate();

  /// Force the lazy model preparation now and return the shared prepared
  /// model. Serving (serve::Engine::from_session) attaches here: the
  /// engine reuses the session's calibrated model, strategy pair and
  /// accelerator without running an evaluate(), then serves requests over
  /// its own paged KV pool (serve::PagedKVPool) — see docs/SERVING.md.
  /// Idempotent — repeat calls return the same model.
  [[nodiscard]] const std::shared_ptr<const llm::PreparedModel>& prepare();

  [[nodiscard]] const llm::ModelConfig& model_config() const {
    return config_;
  }
  /// Null until a prepared model is attached or an accuracy run happened.
  [[nodiscard]] const llm::PreparedModel* prepared_model() const {
    return prepared_.get();
  }
  [[nodiscard]] const quant::StrategySpec& matmul_strategy() const {
    return matmul_;
  }
  [[nodiscard]] const quant::StrategySpec& nonlinear_strategy() const {
    return nonlinear_;
  }
  [[nodiscard]] bool has_accelerator() const { return accel_.has_value(); }
  [[nodiscard]] const accel::AcceleratorConfig& accelerator() const {
    return *accel_;
  }
  /// GEMM workload captured by the most recent evaluate().
  [[nodiscard]] const std::vector<accel::GemmShape>& captured_workload()
      const {
    return captured_;
  }

 private:
  friend class Builder;
  Session() = default;

  llm::ModelConfig config_;
  std::shared_ptr<const llm::PreparedModel> prepared_;
  int eval_tokens_ = 512;
  quant::StrategySpec matmul_;
  quant::StrategySpec nonlinear_;
  std::optional<accel::AcceleratorConfig> accel_;
  bool skip_accuracy_ = false;
  std::optional<std::vector<accel::GemmShape>> workload_override_;
  std::vector<accel::GemmShape> captured_;
};

}  // namespace bbal
