#include "bbal/sweep.hpp"

#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/threadpool.hpp"
#include "llm/model.hpp"

namespace bbal {

namespace {

/// Prepare-once cache shared by one sweep: the first thread to request a
/// model calibrates it while others needing the same model block; distinct
/// models prepare concurrently. Keyed by model name + eval tokens (zoo
/// names are unique; explicit configs must use distinct names to avoid
/// sharing, which Item documentation inherits from the zoo convention).
class PreparedCache {
 public:
  explicit PreparedCache(int eval_tokens) : eval_tokens_(eval_tokens) {}

  /// Throws std::runtime_error when preparation failed (for this call or
  /// an earlier one — a failed model is not retried); evaluate_item turns
  /// that into the item's error Result.
  std::shared_ptr<const llm::PreparedModel> get(const llm::ModelConfig& cfg) {
    const std::string key = cfg.name;
    std::unique_lock<std::mutex> lk(mutex_);
    Slot& slot = slots_[key];  // std::map: stable across other insertions
    cv_.wait(lk, [&] { return slot.state != Slot::State::kPreparing; });
    if (slot.state == Slot::State::kReady) return slot.model;
    if (slot.state == Slot::State::kFailed)
      throw std::runtime_error(slot.error);
    slot.state = Slot::State::kPreparing;
    lk.unlock();
    // Preparation itself runs parallel GEMMs; the nested parallel_for is
    // safe (the preparing thread always makes progress on its own). Any
    // failure must flip the slot out of kPreparing, or every waiter above
    // would sleep forever.
    try {
      auto prepared = prepare_shared(cfg, eval_tokens_);
      lk.lock();
      slot.model = std::move(prepared);
      slot.state = Slot::State::kReady;
      ++prepared_count_;
      cv_.notify_all();
      return slot.model;
    } catch (const std::exception& e) {
      lk.lock();
      slot.state = Slot::State::kFailed;
      slot.error = std::string("preparing ") + key + ": " + e.what();
      cv_.notify_all();
      throw std::runtime_error(slot.error);
    }
  }

  [[nodiscard]] int prepared_count() {
    std::lock_guard<std::mutex> lk(mutex_);
    return prepared_count_;
  }

 private:
  struct Slot {
    enum class State { kIdle, kPreparing, kReady, kFailed };
    State state = State::kIdle;
    std::shared_ptr<const llm::PreparedModel> model;
    std::string error;
  };
  const int eval_tokens_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::string, Slot> slots_;
  int prepared_count_ = 0;
};

Result<Session::Report> evaluate_item(const SweepRunner::Item& item,
                                      PreparedCache& cache) {
  using R = Result<Session::Report>;
  Session::Builder builder;

  if (item.prepared) {
    builder.prepared(item.prepared);
  } else if (item.skip_accuracy) {
    // Cost-only items never pay for calibration: hand Session the bare
    // config and let it skip preparation entirely.
    if (item.config) {
      builder.model(*item.config);
    } else {
      auto cfg = llm::find_config(item.model);
      if (!cfg.is_ok()) return R::error("model: " + cfg.message());
      builder.model(std::move(cfg).value());
    }
  } else {
    llm::ModelConfig cfg;
    if (item.config) {
      cfg = *item.config;
    } else {
      auto found = llm::find_config(item.model);
      if (!found.is_ok()) return R::error("model: " + found.message());
      cfg = std::move(found).value();
    }
    try {
      builder.prepared(cache.get(cfg));
    } catch (const std::exception& e) {
      // Preparation failure stays isolated to the items that need this
      // model; the rest of the sweep proceeds.
      return R::error(e.what());
    }
  }

  builder.matmul(item.matmul).nonlinear(item.nonlinear);
  if (item.accelerator) {
    builder.accelerator(*item.accelerator);
  } else if (item.iso_area_um2) {
    builder.accelerator_iso_area(*item.iso_area_um2, item.iso_dram_gbps);
  }
  if (item.prefill_seq) builder.workload_prefill(*item.prefill_seq);
  if (item.skip_accuracy) builder.skip_accuracy();

  auto session = builder.build();
  if (!session.is_ok()) return R::error(session.message());
  return session.value().evaluate();
}

}  // namespace

bool SweepRunner::SweepResult::all_ok() const {
  for (const auto& r : reports)
    if (!r.is_ok()) return false;
  return true;
}

std::string SweepRunner::SweepResult::first_error() const {
  for (const auto& r : reports)
    if (!r.is_ok()) return r.message();
  return "";
}

SweepRunner& SweepRunner::eval_tokens(int tokens) {
  eval_tokens_ = tokens;
  return *this;
}

SweepRunner& SweepRunner::add(Item item) {
  items_.push_back(std::move(item));
  return *this;
}

SweepRunner::SweepResult SweepRunner::run() {
  SweepResult result;
  result.reports.assign(items_.size(),
                        Result<Session::Report>::error("not evaluated"));
  if (items_.empty()) return result;

  common::ThreadPool& pool = common::ThreadPool::global();
  result.threads = pool.thread_count();
  PreparedCache cache(eval_tokens_);

  const auto t0 = std::chrono::steady_clock::now();
  // grain 1: items are coarse (one full co-simulation each), so each goes
  // to whichever thread frees up first; slot i keeps declaration order.
  pool.parallel_for_chunks(
      0, static_cast<std::int64_t>(items_.size()), /*grain=*/1,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i)
          result.reports[static_cast<std::size_t>(i)] =
              evaluate_item(items_[static_cast<std::size_t>(i)], cache);
      });
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  result.wall_seconds = elapsed.count();
  result.models_prepared = cache.prepared_count();
  return result;
}

}  // namespace bbal
