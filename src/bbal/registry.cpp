#include "bbal/registry.hpp"

#include <utility>

#include "baselines/quant_baselines.hpp"
#include "nl/backends.hpp"

namespace bbal {

using quant::StrategyFamily;
using quant::StrategySpec;

BackendRegistry& BackendRegistry::instance() {
  // Magic-static: initialisation is thread-safe (C++11); everything after
  // that is guarded by mutex_ (see the contract in registry.hpp).
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::register_family(StrategyFamily family,
                                      BackendCapabilities caps,
                                      MatmulFactory matmul,
                                      NonlinearFactory nonlinear) {
  std::lock_guard<std::mutex> lk(mutex_);
  for (auto& [f, entry] : entries_) {
    if (f == family) {
      entry = Entry{caps, std::move(matmul), std::move(nonlinear)};
      return;
    }
  }
  entries_.emplace_back(family,
                        Entry{caps, std::move(matmul), std::move(nonlinear)});
}

std::optional<BackendRegistry::Entry> BackendRegistry::find(
    StrategyFamily family) const {
  std::lock_guard<std::mutex> lk(mutex_);
  for (const auto& [f, entry] : entries_)
    if (f == family) return entry;
  return std::nullopt;
}

Result<std::unique_ptr<llm::MatmulBackend>> BackendRegistry::make_matmul(
    const StrategySpec& spec) const {
  using R = Result<std::unique_ptr<llm::MatmulBackend>>;
  const std::optional<Entry> entry = find(spec.family);
  if (!entry)
    return R::error("no backend registered for " + spec.to_string());
  if (!entry->matmul)
    return R::error(spec.to_string() +
                    " is not a matmul (linear-layer) strategy");
  // Invoked on the copied functor, outside the registry lock.
  return entry->matmul(spec);
}

Result<std::unique_ptr<llm::MatmulBackend>> BackendRegistry::make_matmul(
    std::string_view name) const {
  auto spec = StrategySpec::parse(name);
  if (!spec.is_ok())
    return Result<std::unique_ptr<llm::MatmulBackend>>::error(spec.message());
  return make_matmul(spec.value());
}

Result<std::unique_ptr<llm::NonlinearBackend>> BackendRegistry::make_nonlinear(
    const StrategySpec& spec) const {
  using R = Result<std::unique_ptr<llm::NonlinearBackend>>;
  const std::optional<Entry> entry = find(spec.family);
  if (!entry)
    return R::error("no backend registered for " + spec.to_string());
  if (!entry->nonlinear)
    return R::error(spec.to_string() + " is not a nonlinear strategy");
  return entry->nonlinear(spec);
}

Result<std::unique_ptr<llm::NonlinearBackend>> BackendRegistry::make_nonlinear(
    std::string_view name) const {
  auto spec = StrategySpec::parse(name);
  if (!spec.is_ok())
    return Result<std::unique_ptr<llm::NonlinearBackend>>::error(
        spec.message());
  return make_nonlinear(spec.value());
}

Result<BackendCapabilities> BackendRegistry::capabilities(
    const StrategySpec& spec) const {
  const std::optional<Entry> entry = find(spec.family);
  if (!entry)
    return Result<BackendCapabilities>::error("no backend registered for " +
                                              spec.to_string());
  return entry->caps;
}

bool BackendRegistry::supports_dynamic_matmul(const StrategySpec& spec) const {
  const std::optional<Entry> entry = find(spec.family);
  return entry && entry->caps.dynamic_matmul_quantised;
}

bool BackendRegistry::has_cost_model(const StrategySpec& spec) const {
  const std::optional<Entry> entry = find(spec.family);
  return entry && entry->caps.cost_model;
}

bool BackendRegistry::is_known(std::string_view name) const {
  const auto spec = StrategySpec::parse(name);
  return spec.is_ok() && find(spec.value().family).has_value();
}

// --- Built-in family registrations ------------------------------------------

namespace {

using MatmulPtr = std::unique_ptr<llm::MatmulBackend>;
using NonlinearPtr = std::unique_ptr<llm::NonlinearBackend>;
using MatmulR = Result<MatmulPtr>;
using NonlinearR = Result<NonlinearPtr>;

MatmulR make_block_matmul(const StrategySpec& spec) {
  auto fmt = spec.block_format();
  if (!fmt.is_ok()) return MatmulR::error(fmt.message());
  return MatmulPtr(llm::make_block_backend(fmt.value()));
}

NonlinearR make_lut_nonlinear(const StrategySpec& spec) {
  auto fmt = spec.block_format();
  if (!fmt.is_ok()) return NonlinearR::error(fmt.message());
  const bool do_softmax = spec.nl_scope != quant::NlScope::kSiluOnly;
  const bool do_silu = spec.nl_scope != quant::NlScope::kSoftmaxOnly;
  return NonlinearPtr(std::make_unique<nl::LutNonlinearBackend>(
      fmt.value(), do_softmax, do_silu));
}

// FP32 / FP16 (FP16 numerics are modelled as FP32, as in the seed): the
// reference backends, no quantised dynamic path, FP16 priced by the hw
// model, FP32 purely functional.
const BackendRegistrar kFp32(
    StrategyFamily::kFp32,
    {.matmul = true, .nonlinear = true, .dynamic_matmul_quantised = false,
     .cost_model = false},
    [](const StrategySpec&) -> MatmulR {
      return MatmulPtr(std::make_unique<llm::Fp32MatmulBackend>());
    },
    [](const StrategySpec&) -> NonlinearR {
      return NonlinearPtr(std::make_unique<llm::Fp32NonlinearBackend>());
    });

const BackendRegistrar kFp16(
    StrategyFamily::kFp16,
    {.matmul = true, .nonlinear = false, .dynamic_matmul_quantised = false,
     .cost_model = true},
    [](const StrategySpec&) -> MatmulR {
      return MatmulPtr(std::make_unique<llm::Fp32MatmulBackend>());
    },
    nullptr);

const BackendRegistrar kInt(
    StrategyFamily::kInt,
    {.matmul = true, .nonlinear = false, .dynamic_matmul_quantised = true,
     .cost_model = true},
    [](const StrategySpec& spec) -> MatmulR {
      return MatmulPtr(
          std::make_unique<baselines::IntQuantBackend>(spec.bits, spec.bits));
    },
    nullptr);

const BackendRegistrar kBfp(
    StrategyFamily::kBfp,
    {.matmul = true, .nonlinear = false, .dynamic_matmul_quantised = true,
     .cost_model = true},
    make_block_matmul, nullptr);

const BackendRegistrar kBbfp(
    StrategyFamily::kBbfp,
    {.matmul = true, .nonlinear = false, .dynamic_matmul_quantised = true,
     .cost_model = true},
    make_block_matmul, nullptr);

const BackendRegistrar kOltron(
    StrategyFamily::kOltron,
    {.matmul = true, .nonlinear = false, .dynamic_matmul_quantised = true,
     .cost_model = true},
    [](const StrategySpec&) -> MatmulR {
      return MatmulPtr(std::make_unique<baselines::OltronBackend>());
    },
    nullptr);

const BackendRegistrar kOlive(
    StrategyFamily::kOlive,
    {.matmul = true, .nonlinear = false, .dynamic_matmul_quantised = true,
     .cost_model = true},
    [](const StrategySpec&) -> MatmulR {
      return MatmulPtr(std::make_unique<baselines::OliveBackend>());
    },
    nullptr);

// OmniQuant publishes no PE design, so it carries no cost model.
const BackendRegistrar kOmniquant(
    StrategyFamily::kOmniquant,
    {.matmul = true, .nonlinear = false, .dynamic_matmul_quantised = true,
     .cost_model = false},
    [](const StrategySpec&) -> MatmulR {
      return MatmulPtr(std::make_unique<baselines::OmniquantBackend>());
    },
    nullptr);

const BackendRegistrar kLutBbfp(
    StrategyFamily::kLutBbfp,
    {.matmul = false, .nonlinear = true, .dynamic_matmul_quantised = false,
     .cost_model = true},
    nullptr, make_lut_nonlinear);

const BackendRegistrar kLutBfp(
    StrategyFamily::kLutBfp,
    {.matmul = false, .nonlinear = true, .dynamic_matmul_quantised = false,
     .cost_model = true},
    nullptr, make_lut_nonlinear);

const BackendRegistrar kPseudoSoftmax(
    StrategyFamily::kPseudoSoftmax,
    {.matmul = false, .nonlinear = true, .dynamic_matmul_quantised = false,
     .cost_model = true},
    nullptr, [](const StrategySpec& spec) -> NonlinearR {
      return NonlinearPtr(
          std::make_unique<nl::PseudoSoftmaxBackend>(spec.bits));
    });

const BackendRegistrar kBase2(
    StrategyFamily::kBase2Softmax,
    {.matmul = false, .nonlinear = true, .dynamic_matmul_quantised = false,
     .cost_model = true},
    nullptr, [](const StrategySpec& spec) -> NonlinearR {
      return NonlinearPtr(std::make_unique<nl::Base2SoftmaxBackend>(spec.bits));
    });

}  // namespace

// --- Convenience free functions ---------------------------------------------

Result<std::unique_ptr<llm::MatmulBackend>> make_matmul_backend(
    std::string_view name) {
  return BackendRegistry::instance().make_matmul(name);
}

Result<std::unique_ptr<llm::NonlinearBackend>> make_nonlinear_backend(
    std::string_view name) {
  return BackendRegistry::instance().make_nonlinear(name);
}

std::vector<std::string> table2_strategies() {
  return {"FP16",      "Oltron",    "Olive",     "OmniQuant",
          "BFP6",      "BFP4",      "BBFP(3,1)", "BBFP(4,2)",
          "BBFP(4,3)", "BBFP(6,3)", "BBFP(6,4)"};
}

}  // namespace bbal
