// BBAL accelerator configuration (Fig. 7): weight-stationary PE array,
// on-chip buffers, encoders, FP accumulation path and the nonlinear unit.
#pragma once

#include <cstddef>
#include <string>

#include "hw/datapath_designs.hpp"

namespace bbal::accel {

struct AcceleratorConfig {
  /// PE datapath strategy: "BBFP(m,o)", "BFPn", "INTn", "FP16", "Oltron",
  /// "Olive" — resolved through hw::pe_for_strategy.
  std::string strategy = "BBFP(4,2)";
  int array_rows = 16;
  int array_cols = 16;
  double freq_ghz = 1.0;
  std::size_t weight_buffer_bytes = 128 * 1024;
  std::size_t act_buffer_bytes = 64 * 1024;
  std::size_t out_buffer_bytes = 64 * 1024;
  double dram_gbps = hw::kDramBandwidthGBs;

  [[nodiscard]] int pe_count() const { return array_rows * array_cols; }
  [[nodiscard]] hw::DatapathDesign pe_design() const {
    return hw::pe_for_strategy(strategy);
  }
  /// Storage bits per element of the strategy's number format.
  [[nodiscard]] double bits_per_element() const {
    return pe_design().equivalent_bits;
  }
  /// Total PE-array area, um^2.
  [[nodiscard]] double pe_array_area_um2() const {
    return pe_design().area_um2(hw::CellLibrary::tsmc28()) * pe_count();
  }
};

/// Build an iso-area configuration: as many PEs of `spec` as fit in
/// `pe_area_budget_um2`, arranged near-square (Fig. 8's comparison rule).
/// Errors when the strategy has no PE design or the budget fits no PE.
[[nodiscard]] Result<AcceleratorConfig> make_iso_area_config(
    const quant::StrategySpec& spec, double pe_area_budget_um2,
    double dram_gbps = hw::kDramBandwidthGBs);

/// Name-based convenience; aborts with a message on bad input.
[[nodiscard]] AcceleratorConfig iso_area_config(const std::string& strategy,
                                                double pe_area_budget_um2,
                                                double dram_gbps =
                                                    hw::kDramBandwidthGBs);

}  // namespace bbal::accel
