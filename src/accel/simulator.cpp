#include "accel/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/bitutils.hpp"
#include "hw/sram.hpp"

namespace bbal::accel {

GemmStats& GemmStats::operator+=(const GemmStats& other) {
  macs += other.macs;
  cycles += other.cycles;
  compute_cycles += other.compute_cycles;
  memory_cycles += other.memory_cycles;
  dram_bytes += other.dram_bytes;
  weight_buffer_accesses += other.weight_buffer_accesses;
  act_buffer_accesses += other.act_buffer_accesses;
  out_buffer_accesses += other.out_buffer_accesses;
  return *this;
}

GemmStats simulate_gemm(const AcceleratorConfig& cfg, const GemmShape& shape) {
  assert(shape.m >= 1 && shape.k >= 1 && shape.n >= 1);
  GemmStats s;
  s.macs = shape.macs();

  const double bits = cfg.bits_per_element();
  const double bytes_per_elem = bits / 8.0;
  const auto r = static_cast<std::int64_t>(cfg.array_rows);
  const auto c = static_cast<std::int64_t>(cfg.array_cols);
  const std::int64_t kt = ceil_div(shape.k, r);
  const std::int64_t nt = ceil_div(shape.n, c);

  // Compute: steady-state MAC throughput (the controller folds short K
  // dimensions across rows, so PEs stay busy on skinny GEMMs) plus the
  // pipeline fill/drain of every (K-tile, N-tile) pass.
  s.compute_cycles =
      static_cast<double>(shape.macs()) / static_cast<double>(r * c) +
      static_cast<double>(kt * nt) * static_cast<double>(r + c);

  // DRAM traffic.
  const double weight_bytes =
      static_cast<double>(shape.k * shape.n) * bytes_per_elem;
  const double act_working_set =
      static_cast<double>(shape.m * shape.k) * bytes_per_elem;
  // Smooth reuse model: the fraction of the activation working set held in
  // the buffer is reused across N-tile passes, the remainder is re-fetched.
  const double buffered = std::min(
      act_working_set, static_cast<double>(cfg.act_buffer_bytes));
  const double refetch_fraction =
      act_working_set > 0.0 ? 1.0 - buffered / act_working_set : 0.0;
  double act_bytes = act_working_set *
                     (1.0 + static_cast<double>(nt - 1) * refetch_fraction);
  // Outputs leave once, re-encoded into the block format. Partial sums stay
  // on chip: the controller tiles M so each M-chunk's FP32 psums fit the
  // output buffer (no DRAM spill).
  double out_bytes = static_cast<double>(shape.m * shape.n) * bytes_per_elem;
  // Attention fusion (Fig. 7): fused operands never round-trip to DRAM.
  if (shape.acts_on_chip) act_bytes = 0.0;
  if (shape.output_on_chip) out_bytes = 0.0;
  s.dram_bytes = weight_bytes + act_bytes + out_bytes;

  // Memory cycles at the configured bandwidth.
  const double bytes_per_cycle = cfg.dram_gbps / cfg.freq_ghz;  // GB/s / GHz
  s.memory_cycles = s.dram_bytes / bytes_per_cycle;

  // Double buffering: overlap compute with memory.
  s.cycles = std::max(s.compute_cycles, s.memory_cycles) +
             static_cast<double>(r + c);  // one-time array fill

  // Buffer traffic (element granularity) for the energy model: weights fill
  // once per tile; every activation is re-read for each N-tile pass; FP32
  // psums are read+written per K-tile accumulation step.
  s.weight_buffer_accesses = static_cast<double>(shape.k * shape.n);
  s.act_buffer_accesses =
      static_cast<double>(shape.m * shape.k) * static_cast<double>(nt);
  s.out_buffer_accesses =
      2.0 * static_cast<double>(shape.m * shape.n) * static_cast<double>(kt);
  return s;
}

GemmStats simulate_gemms(const AcceleratorConfig& cfg,
                         const std::vector<GemmShape>& gemms) {
  GemmStats total;
  for (const GemmShape& g : gemms) total += simulate_gemm(cfg, g);
  return total;
}

EnergyBreakdown energy_of(const AcceleratorConfig& cfg,
                          const GemmStats& stats) {
  const hw::CellLibrary& lib = hw::CellLibrary::tsmc28();
  const hw::DatapathDesign pe = cfg.pe_design();
  EnergyBreakdown e;

  // Core: one MAC through the PE datapath per MAC operation. The factor
  // covers wire capacitance and clock-tree energy on top of the cell-level
  // switching the gate model prices (typical 3-6x at 28nm).
  constexpr double kCoreWireClockFactor = 5.0;
  e.core_j = static_cast<double>(stats.macs) * lib.dynamic_fj(pe.lane) *
             kCoreWireClockFactor * 1e-15;

  // Buffers: per-element accesses at the element width.
  const int word_bits =
      std::max(8, static_cast<int>(std::lround(cfg.bits_per_element())));
  const hw::SramMacro wbuf = hw::make_sram(cfg.weight_buffer_bytes, word_bits);
  const hw::SramMacro abuf = hw::make_sram(cfg.act_buffer_bytes, word_bits);
  const hw::SramMacro obuf = hw::make_sram(cfg.out_buffer_bytes, 32);
  e.buffer_j = (stats.weight_buffer_accesses * wbuf.access_pj() +
                stats.act_buffer_accesses * abuf.access_pj() +
                stats.out_buffer_accesses * obuf.access_pj()) *
               1e-12;

  // DRAM.
  e.dram_j = stats.dram_bytes * 8.0 * hw::kDramPjPerBit * 1e-12;

  // Static: PE array + buffer leakage over the run.
  const double seconds = stats.cycles / (cfg.freq_ghz * 1e9);
  const double pe_leak_w =
      pe.leakage_nw(lib) * 1e-9 * static_cast<double>(cfg.pe_count());
  const double buf_leak_w =
      (wbuf.leakage_uw() + abuf.leakage_uw() + obuf.leakage_uw()) * 1e-6;
  e.static_j = (pe_leak_w + buf_leak_w) * seconds;
  return e;
}

RunStats simulate_workload(const AcceleratorConfig& cfg,
                           const std::vector<GemmShape>& gemms) {
  RunStats run;
  run.gemm = simulate_gemms(cfg, gemms);
  run.seconds = run.gemm.cycles / (cfg.freq_ghz * 1e9);
  run.throughput_gops =
      run.seconds > 0.0
          ? 2.0 * static_cast<double>(run.gemm.macs) / run.seconds / 1e9
          : 0.0;
  run.energy = energy_of(cfg, run.gemm);
  return run;
}

}  // namespace bbal::accel
