// Gate-level models of the BBAL encoder blocks (Fig. 7): the input encoder
// (FP16 -> BBFP blocks), the FP encoder (PE-array partial sums -> FP), the
// output encoder (FP -> BBFP for writeback) and the FP adder / max unit.
// These complete the accelerator area/energy accounting beyond the PE array.
#pragma once

#include "hw/datapath_designs.hpp"
#include "quant/format.hpp"

namespace bbal::accel {

/// Input encoder: per-lane exponent extraction, a block max-exponent
/// reduction tree and per-lane alignment shifters (one 32-lane block).
[[nodiscard]] hw::DatapathDesign input_encoder(const quant::BlockFormat& fmt,
                                               int lanes = 32);

/// FP encoder: converts a column's integer partial sum into FP32
/// (leading-one detect + normalise + pack), one per array column.
[[nodiscard]] hw::DatapathDesign fp_encoder(const quant::BlockFormat& fmt,
                                            int columns);

/// Output encoder: FP32 results back to the block format for writeback.
[[nodiscard]] hw::DatapathDesign output_encoder(const quant::BlockFormat& fmt,
                                                int lanes = 32);

/// FP32 adder bank + max unit feeding the nonlinear unit (Fig. 7).
[[nodiscard]] hw::DatapathDesign fp_adder_and_max(int lanes);

/// Total non-PE datapath area of a BBAL instance with the given array
/// width (everything in Fig. 7 except PEs, buffers and the nonlinear unit).
[[nodiscard]] double encoder_area_um2(const quant::BlockFormat& fmt,
                                      int array_cols);

}  // namespace bbal::accel
