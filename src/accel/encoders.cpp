#include "accel/encoders.hpp"

namespace bbal::accel {

using arith::GateTally;
using hw::DatapathDesign;

DatapathDesign input_encoder(const quant::BlockFormat& fmt, int lanes) {
  DatapathDesign d;
  d.name = "input_encoder(" + fmt.name() + ")";
  d.lanes = lanes;
  d.equivalent_bits = fmt.equivalent_bits();
  // Per lane: FP16 unpack (registers), exponent compare against the shared
  // exponent, alignment shifter over the source mantissa, round + clip.
  d.lane += arith::comparator(5);
  d.lane += arith::barrel_shifter(fmt.source_precision,
                                  fmt.source_precision + 4);
  d.lane += arith::ripple_adder(fmt.mantissa_bits);  // round increment
  d.lane += arith::register_bank(fmt.mantissa_bits + 2);
  // Shared: max-exponent reduction tree (lanes-1 comparators) and the
  // shared-exponent subtract of Eq. (9).
  d.shared += arith::comparator(5) * (lanes - 1);
  d.shared += arith::ripple_adder(5);
  d.shared += arith::register_bank(5 + 1);
  return d;
}

DatapathDesign fp_encoder(const quant::BlockFormat& fmt, int columns) {
  DatapathDesign d;
  d.name = "fp_encoder(" + fmt.name() + ")";
  d.lanes = columns;
  const int psum_bits = 2 * fmt.mantissa_bits + 2 * fmt.shift_distance() + 4;
  d.lane += arith::leading_one_detector(psum_bits);
  d.lane += arith::barrel_shifter(psum_bits, psum_bits);
  d.lane += arith::ripple_adder(8);  // exponent assembly
  d.lane += arith::register_bank(32);
  return d;
}

DatapathDesign output_encoder(const quant::BlockFormat& fmt, int lanes) {
  // Structurally the input encoder on FP32 inputs.
  DatapathDesign d = input_encoder(fmt, lanes);
  d.name = "output_encoder(" + fmt.name() + ")";
  return d;
}

DatapathDesign fp_adder_and_max(int lanes) {
  DatapathDesign d;
  d.name = "fp_adder_max";
  d.lanes = lanes;
  // FP32 adder: align shifter + 28-bit add + renormalise; max unit: one
  // comparator per lane.
  d.lane += arith::barrel_shifter(28, 28);
  d.lane += arith::ripple_adder(28);
  d.lane += arith::leading_one_detector(28);
  d.lane += arith::barrel_shifter(28, 28);
  d.lane += arith::comparator(32);
  d.lane += arith::register_bank(32);
  return d;
}

double encoder_area_um2(const quant::BlockFormat& fmt, int array_cols) {
  const hw::CellLibrary& lib = hw::CellLibrary::tsmc28();
  return input_encoder(fmt).area_um2(lib) +
         fp_encoder(fmt, array_cols).area_um2(lib) +
         output_encoder(fmt).area_um2(lib) +
         fp_adder_and_max(array_cols).area_um2(lib);
}

}  // namespace bbal::accel
