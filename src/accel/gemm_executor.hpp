// Functional (bit-exact) model of the BBAL compute path: input encoder ->
// PE array integer block-dot products -> FP encoder/adder accumulation.
//
// This is the golden model the fast fake-quant backend (llm::BlockQuant-
// MatmulBackend) is validated against: both quantise identically, and both
// accumulate across 32-element K-blocks in the FP domain.
#pragma once

#include "llm/tensor.hpp"
#include "quant/format.hpp"

namespace bbal::accel {

/// C = A x W with A rows and W columns encoded block-wise along K and every
/// block product computed on the integer datapath (quant::dot_block).
[[nodiscard]] llm::Matrix execute_gemm_bit_exact(
    const llm::Matrix& acts, const llm::Matrix& weights,
    const quant::BlockFormat& act_fmt, const quant::BlockFormat& weight_fmt);

}  // namespace bbal::accel
