#include "accel/workload.hpp"

namespace bbal::accel {

std::vector<GemmShape> decode_step_gemms(const llm::ModelConfig& cfg,
                                         int ctx) {
  std::vector<GemmShape> gemms;
  const std::int64_t d = cfg.d_model;
  const std::int64_t dh = cfg.head_dim();
  const std::int64_t heads = cfg.n_heads;
  const std::int64_t ff = cfg.d_ff;
  for (int l = 0; l < cfg.n_layers; ++l) {
    gemms.push_back({1, d, 3 * d, "qkv"});
    // Attention is fused through the on-chip nonlinear unit (Fig. 7).
    gemms.push_back({heads, dh, ctx, "attn_scores", /*out_on_chip=*/true,
                     /*acts_on_chip=*/false});
    gemms.push_back({heads, ctx, dh, "attn_context", /*out_on_chip=*/false,
                     /*acts_on_chip=*/true});
    gemms.push_back({1, d, d, "proj"});
    gemms.push_back({1, d, ff, "gate"});
    gemms.push_back({1, d, ff, "up"});
    gemms.push_back({1, ff, d, "down"});
  }
  return gemms;
}

std::vector<NlOp> decode_step_nl_ops(const llm::ModelConfig& cfg, int ctx) {
  std::vector<NlOp> ops;
  ops.push_back({NlOp::Kind::kSoftmax,
                 static_cast<std::int64_t>(cfg.n_heads) * cfg.n_layers, ctx});
  ops.push_back({NlOp::Kind::kSilu, cfg.n_layers, cfg.d_ff});
  return ops;
}

std::vector<GemmShape> prefill_gemms(const llm::ModelConfig& cfg, int seq) {
  std::vector<GemmShape> gemms;
  const std::int64_t d = cfg.d_model;
  const std::int64_t dh = cfg.head_dim();
  const std::int64_t heads = cfg.n_heads;
  const std::int64_t ff = cfg.d_ff;
  const std::int64_t s = seq;
  for (int l = 0; l < cfg.n_layers; ++l) {
    gemms.push_back({s, d, 3 * d, "qkv"});
    // Attention is fused through the on-chip nonlinear unit (Fig. 7).
    gemms.push_back({heads * s, dh, s, "attn_scores", /*out_on_chip=*/true,
                     /*acts_on_chip=*/false});
    gemms.push_back({heads * s, s, dh, "attn_context", /*out_on_chip=*/false,
                     /*acts_on_chip=*/true});
    gemms.push_back({s, d, d, "proj"});
    gemms.push_back({s, d, ff, "gate"});
    gemms.push_back({s, d, ff, "up"});
    gemms.push_back({s, ff, d, "down"});
  }
  return gemms;
}

std::vector<GemmShape> prefill_chunk_gemms(const llm::ModelConfig& cfg,
                                           int base, int chunk) {
  std::vector<GemmShape> gemms;
  const std::int64_t d = cfg.d_model;
  const std::int64_t dh = cfg.head_dim();
  const std::int64_t heads = cfg.n_heads;
  const std::int64_t ff = cfg.d_ff;
  const std::int64_t m = chunk;
  for (int l = 0; l < cfg.n_layers; ++l) {
    gemms.push_back({m, d, 3 * d, "qkv"});
    // Attention is fused through the on-chip nonlinear unit (Fig. 7) and
    // stays per chunk row: row i attends over base+i+1 causal positions.
    for (int i = 0; i < chunk; ++i) {
      const std::int64_t ctx = base + i + 1;
      gemms.push_back({heads, dh, ctx, "attn_scores", /*out_on_chip=*/true,
                       /*acts_on_chip=*/false});
      gemms.push_back({heads, ctx, dh, "attn_context", /*out_on_chip=*/false,
                       /*acts_on_chip=*/true});
    }
    gemms.push_back({m, d, d, "proj"});
    gemms.push_back({m, d, ff, "gate"});
    gemms.push_back({m, d, ff, "up"});
    gemms.push_back({m, ff, d, "down"});
  }
  return gemms;
}

std::vector<NlOp> prefill_nl_ops(const llm::ModelConfig& cfg, int seq) {
  std::vector<NlOp> ops;
  // Causal rows average seq/2 visible entries.
  ops.push_back({NlOp::Kind::kSoftmax,
                 static_cast<std::int64_t>(cfg.n_heads) * cfg.n_layers * seq,
                 std::max(1, seq / 2)});
  ops.push_back({NlOp::Kind::kSilu,
                 static_cast<std::int64_t>(cfg.n_layers) * seq, cfg.d_ff});
  return ops;
}

std::int64_t total_macs(const std::vector<GemmShape>& gemms) {
  std::int64_t total = 0;
  for (const GemmShape& g : gemms) total += g.macs();
  return total;
}

}  // namespace bbal::accel
