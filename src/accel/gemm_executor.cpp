#include "accel/gemm_executor.hpp"

#include <cassert>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/threadpool.hpp"
#include "quant/block.hpp"
#include "quant/dot.hpp"

namespace bbal::accel {

namespace {

// Same inline cutoff as llm::matmul (tensor.cpp): below this many MACs the
// per-loop dispatch costs more than the distributed row work.
constexpr std::int64_t kParallelMinMacs = 1 << 15;

/// Run `body` over [0, n) — chunked across the pool when the GEMM is big
/// enough, inline otherwise.
void for_range(std::int64_t n, std::int64_t total_macs,
               const std::function<void(std::int64_t, std::int64_t)>& body) {
  if (total_macs < kParallelMinMacs) {
    body(0, n);
    return;
  }
  common::ThreadPool::global().parallel_for_chunks(0, n, /*grain=*/0, body);
}

}  // namespace

llm::Matrix execute_gemm_bit_exact(const llm::Matrix& acts,
                                   const llm::Matrix& weights,
                                   const quant::BlockFormat& act_fmt,
                                   const quant::BlockFormat& weight_fmt) {
  assert(acts.cols() == weights.rows());
  assert(act_fmt.block_size == weight_fmt.block_size);
  const int m = acts.rows();
  const int k = acts.cols();
  const int n = weights.cols();
  const int bs = act_fmt.block_size;
  const int blocks = (k + bs - 1) / bs;
  const std::int64_t macs = static_cast<std::int64_t>(m) * k * n;

  // Input encoder: all weight-column blocks once (weight stationary).
  // Column blocks are disjoint, so columns tile across the pool.
  std::vector<quant::EncodedBlock> wblocks(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(blocks));
  for_range(
      n, macs, [&](std::int64_t j0, std::int64_t j1) {
        std::vector<double> buf(static_cast<std::size_t>(bs));
        for (std::int64_t j64 = j0; j64 < j1; ++j64) {
          const int j = static_cast<int>(j64);
          for (int b = 0; b < blocks; ++b) {
            const int k0 = b * bs;
            const int len = std::min(bs, k - k0);
            for (int i = 0; i < len; ++i)
              buf[static_cast<std::size_t>(i)] = weights.at(k0 + i, j);
            wblocks[static_cast<std::size_t>(j) * blocks + b] =
                quant::encode_block(
                    std::span<const double>(buf.data(),
                                            static_cast<std::size_t>(len)),
                    weight_fmt);
          }
        }
      });

  // PE array + FP adder, tiled over output rows: each row encodes its
  // activation blocks then accumulates integer block dots per column —
  // byte-for-byte the serial datapath, whatever the thread count.
  llm::Matrix out(m, n);
  for_range(
      m, macs, [&](std::int64_t i0, std::int64_t i1) {
        std::vector<quant::EncodedBlock> arow(static_cast<std::size_t>(blocks));
        std::vector<double> buf(static_cast<std::size_t>(bs));
        for (std::int64_t i64 = i0; i64 < i1; ++i64) {
          const int i = static_cast<int>(i64);
          // Input encoder: one activation row, block by block.
          for (int b = 0; b < blocks; ++b) {
            const int k0 = b * bs;
            const int len = std::min(bs, k - k0);
            for (int x = 0; x < len; ++x)
              buf[static_cast<std::size_t>(x)] = acts.at(i, k0 + x);
            arow[static_cast<std::size_t>(b)] = quant::encode_block(
                std::span<const double>(buf.data(),
                                        static_cast<std::size_t>(len)),
                act_fmt);
          }
          for (int j = 0; j < n; ++j) {
            double acc = 0.0;
            for (int b = 0; b < blocks; ++b)
              acc += quant::dot_block(
                         arow[static_cast<std::size_t>(b)],
                         wblocks[static_cast<std::size_t>(j) * blocks + b])
                         .value;
            out.at(i, j) = static_cast<float>(acc);
          }
        }
      });
  return out;
}

}  // namespace bbal::accel
