#include "accel/gemm_executor.hpp"

#include <cassert>
#include <vector>

#include "quant/block.hpp"
#include "quant/dot.hpp"

namespace bbal::accel {

llm::Matrix execute_gemm_bit_exact(const llm::Matrix& acts,
                                   const llm::Matrix& weights,
                                   const quant::BlockFormat& act_fmt,
                                   const quant::BlockFormat& weight_fmt) {
  assert(acts.cols() == weights.rows());
  assert(act_fmt.block_size == weight_fmt.block_size);
  const int m = acts.rows();
  const int k = acts.cols();
  const int n = weights.cols();
  const int bs = act_fmt.block_size;
  const int blocks = (k + bs - 1) / bs;

  // Input encoder: all weight-column blocks once (weight stationary).
  std::vector<quant::EncodedBlock> wblocks(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(blocks));
  {
    std::vector<double> buf(static_cast<std::size_t>(bs));
    for (int j = 0; j < n; ++j) {
      for (int b = 0; b < blocks; ++b) {
        const int k0 = b * bs;
        const int len = std::min(bs, k - k0);
        for (int i = 0; i < len; ++i)
          buf[static_cast<std::size_t>(i)] = weights.at(k0 + i, j);
        wblocks[static_cast<std::size_t>(j) * blocks + b] = quant::encode_block(
            std::span<const double>(buf.data(), static_cast<std::size_t>(len)),
            weight_fmt);
      }
    }
  }

  llm::Matrix out(m, n);
  std::vector<quant::EncodedBlock> arow(static_cast<std::size_t>(blocks));
  std::vector<double> buf(static_cast<std::size_t>(bs));
  for (int i = 0; i < m; ++i) {
    // Input encoder: one activation row, block by block.
    for (int b = 0; b < blocks; ++b) {
      const int k0 = b * bs;
      const int len = std::min(bs, k - k0);
      for (int x = 0; x < len; ++x)
        buf[static_cast<std::size_t>(x)] = acts.at(i, k0 + x);
      arow[static_cast<std::size_t>(b)] = quant::encode_block(
          std::span<const double>(buf.data(), static_cast<std::size_t>(len)),
          act_fmt);
    }
    // PE array + FP adder: integer block dots, FP accumulation.
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int b = 0; b < blocks; ++b)
        acc += quant::dot_block(arow[static_cast<std::size_t>(b)],
                                wblocks[static_cast<std::size_t>(j) * blocks + b])
                   .value;
      out.at(i, j) = static_cast<float>(acc);
    }
  }
  return out;
}

}  // namespace bbal::accel
