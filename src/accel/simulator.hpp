// Cycle-level performance/energy model of the BBAL accelerator
// (DnnWeaver-style, DESIGN.md substitution #5).
//
// Weight-stationary dataflow: weights tile into RxC blocks held in the PE
// array; activations stream row-wise; partial sums leave through the FP
// encoder/adder. Compute and DRAM transfers overlap via double buffering,
// so each tile pass costs max(compute, memory) cycles.
#pragma once

#include <cstdint>
#include <vector>

#include "accel/config.hpp"
#include "accel/workload.hpp"

namespace bbal::accel {

struct GemmStats {
  std::int64_t macs = 0;
  double cycles = 0.0;
  double compute_cycles = 0.0;
  double memory_cycles = 0.0;
  double dram_bytes = 0.0;
  double weight_buffer_accesses = 0.0;  // element reads
  double act_buffer_accesses = 0.0;
  double out_buffer_accesses = 0.0;

  [[nodiscard]] double utilization(const AcceleratorConfig& cfg) const {
    return cycles > 0.0
               ? static_cast<double>(macs) / (cycles * cfg.pe_count())
               : 0.0;
  }

  GemmStats& operator+=(const GemmStats& other);
};

/// Simulate one GEMM on the PE array.
[[nodiscard]] GemmStats simulate_gemm(const AcceleratorConfig& cfg,
                                      const GemmShape& shape);

/// Aggregate over a GEMM list.
[[nodiscard]] GemmStats simulate_gemms(const AcceleratorConfig& cfg,
                                       const std::vector<GemmShape>& gemms);

struct EnergyBreakdown {
  double core_j = 0.0;
  double buffer_j = 0.0;
  double dram_j = 0.0;
  double static_j = 0.0;
  [[nodiscard]] double total_j() const {
    return core_j + buffer_j + dram_j + static_j;
  }
};

/// Energy of an aggregated run (uses the config's PE design and buffers).
[[nodiscard]] EnergyBreakdown energy_of(const AcceleratorConfig& cfg,
                                        const GemmStats& stats);

struct RunStats {
  GemmStats gemm;
  double seconds = 0.0;
  double throughput_gops = 0.0;  // 2 * MACs / time
  EnergyBreakdown energy;
};

/// Simulate a GEMM workload end to end (cycles -> time -> energy).
[[nodiscard]] RunStats simulate_workload(const AcceleratorConfig& cfg,
                                         const std::vector<GemmShape>& gemms);

}  // namespace bbal::accel
