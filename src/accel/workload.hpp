// Transformer layer -> GEMM/nonlinear op lists: the workloads the paper's
// evaluation runs (decoder runtime breakdown, throughput, energy).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "llm/model.hpp"

namespace bbal::accel {

struct GemmShape {
  std::int64_t m = 1;
  std::int64_t k = 1;
  std::int64_t n = 1;
  std::string tag;
  /// Attention fusion (Fig. 7): score outputs flow into the on-chip
  /// nonlinear unit instead of DRAM...
  bool output_on_chip = false;
  /// ...and the context GEMM consumes them straight from the unit's buffer.
  bool acts_on_chip = false;

  [[nodiscard]] std::int64_t macs() const { return m * k * n; }
};

struct NlOp {
  enum class Kind { kSoftmax, kSilu };
  Kind kind = Kind::kSoftmax;
  std::int64_t vectors = 1;  ///< how many independent vectors
  std::int64_t width = 1;    ///< elements per vector
  [[nodiscard]] std::int64_t elements() const { return vectors * width; }
};

/// All GEMMs of one decode step (M = 1) at context length `ctx`:
/// QKV + attention score/context + output proj + gate/up/down, per layer.
[[nodiscard]] std::vector<GemmShape> decode_step_gemms(
    const llm::ModelConfig& cfg, int ctx);

/// Nonlinear ops of one decode step: one softmax of width ctx per head per
/// layer, one SiLU of width d_ff per layer.
[[nodiscard]] std::vector<NlOp> decode_step_nl_ops(const llm::ModelConfig& cfg,
                                                   int ctx);

/// All GEMMs of a prefill pass over `seq` tokens.
[[nodiscard]] std::vector<GemmShape> prefill_gemms(const llm::ModelConfig& cfg,
                                                   int seq);

/// All GEMMs of one chunked-prefill step advancing a sequence by `chunk`
/// positions from context length `base` (serve::Engine's mixed-tick
/// pricing). Projections run fused at M = chunk — {chunk, d, 3d} QKV,
/// {chunk, d, d} proj, {chunk, d, ff} gate/up, {chunk, ff, d} down — so
/// the weight streaming that dominates the simulator's memory cycles is
/// paid once per chunk instead of once per token; attention stays
/// inherently per row, one {heads, dh, base+i+1} score and one
/// {heads, base+i+1, dh} context GEMM per chunk position i (causal ragged
/// contexts). With chunk == 1 the list is decode_step_gemms(cfg, base+1),
/// shape for shape.
[[nodiscard]] std::vector<GemmShape> prefill_chunk_gemms(
    const llm::ModelConfig& cfg, int base, int chunk);

/// Nonlinear ops of a prefill pass (seq softmaxes of average width seq/2
/// per head per layer; seq SiLU rows).
[[nodiscard]] std::vector<NlOp> prefill_nl_ops(const llm::ModelConfig& cfg,
                                               int seq);

/// Total MAC count of a GEMM list.
[[nodiscard]] std::int64_t total_macs(const std::vector<GemmShape>& gemms);

}  // namespace bbal::accel
