#include "accel/config.hpp"

#include <cmath>

#include "quant/strategy.hpp"

namespace bbal::accel {

Result<AcceleratorConfig> make_iso_area_config(const quant::StrategySpec& spec,
                                               double pe_area_budget_um2,
                                               double dram_gbps) {
  using R = Result<AcceleratorConfig>;
  if (pe_area_budget_um2 <= 0.0)
    return R::error("PE area budget must be positive");
  const Result<hw::DatapathDesign> design = hw::pe_for_spec(spec);
  if (!design.is_ok()) return R::error(design.message());

  AcceleratorConfig cfg;
  cfg.strategy = spec.to_string();
  cfg.dram_gbps = dram_gbps;
  const double pe_area = design.value().area_um2(hw::CellLibrary::tsmc28());
  const auto n_pe = static_cast<int>(pe_area_budget_um2 / pe_area);
  if (n_pe < 1)
    return R::error("PE area budget " + std::to_string(pe_area_budget_um2) +
                    " um2 fits no " + spec.to_string() + " PE (" +
                    std::to_string(pe_area) + " um2 each)");
  // Near-square array, rows <= cols.
  const int rows = std::max(1, static_cast<int>(std::sqrt(n_pe)));
  const int cols = std::max(1, n_pe / rows);
  cfg.array_rows = rows;
  cfg.array_cols = cols;
  return cfg;
}

AcceleratorConfig iso_area_config(const std::string& strategy,
                                  double pe_area_budget_um2,
                                  double dram_gbps) {
  const quant::StrategySpec spec =
      quant::StrategySpec::parse(strategy).expect("iso_area_config");
  return make_iso_area_config(spec, pe_area_budget_um2, dram_gbps)
      .expect("iso_area_config");
}

}  // namespace bbal::accel
