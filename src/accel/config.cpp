#include "accel/config.hpp"

#include <cassert>
#include <cmath>

namespace bbal::accel {

AcceleratorConfig iso_area_config(const std::string& strategy,
                                  double pe_area_budget_um2,
                                  double dram_gbps) {
  assert(pe_area_budget_um2 > 0.0);
  AcceleratorConfig cfg;
  cfg.strategy = strategy;
  cfg.dram_gbps = dram_gbps;
  const double pe_area =
      hw::pe_for_strategy(strategy).area_um2(hw::CellLibrary::tsmc28());
  const auto n_pe = static_cast<int>(pe_area_budget_um2 / pe_area);
  assert(n_pe >= 1);
  // Near-square array, rows <= cols.
  int rows = std::max(1, static_cast<int>(std::sqrt(n_pe)));
  const int cols = std::max(1, n_pe / rows);
  cfg.array_rows = rows;
  cfg.array_cols = cols;
  return cfg;
}

}  // namespace bbal::accel
