// Transformer substrate: shape/consistency checks, KV-cache decoding vs
// batched forward, calibration, and quantised-backend behaviour.
#include "llm/transformer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "llm/decoder.hpp"
#include "llm/perplexity.hpp"

namespace bbal::llm {
namespace {

ModelConfig tiny_config() {
  ModelConfig c;
  c.name = "tiny";
  c.vocab = 64;
  c.d_model = 32;
  c.n_layers = 2;
  c.n_heads = 2;
  c.d_ff = 48;
  c.seed = 5;
  c.outlier_rate = 0.02;
  c.outlier_scale = 20.0;
  c.fp_baseline_ppl = 8.0;
  return c;
}

TEST(ModelZoo, TwelveModelsWithPaperBaselines) {
  const auto zoo = model_zoo();
  ASSERT_EQ(zoo.size(), 12u);
  EXPECT_EQ(zoo[0].name, "Llama-1B");
  EXPECT_NEAR(zoo[2].fp_baseline_ppl, 5.47, 1e-9);   // Llama-7B
  EXPECT_NEAR(zoo[8].fp_baseline_ppl, 10.86, 1e-9);  // OPT-6.7B
  for (const auto& c : zoo) {
    EXPECT_EQ(c.d_model % c.n_heads, 0) << c.name;
    EXPECT_GT(c.fp_baseline_ppl, 1.0) << c.name;
  }
  // Llama-like configs carry more outliers than OPT-like ones.
  EXPECT_GT(zoo[0].outlier_rate, zoo[6].outlier_rate);
  EXPECT_GT(zoo[0].outlier_scale, zoo[6].outlier_scale);
}

TEST(WeightGen, DeterministicAndShaped) {
  const ModelConfig cfg = tiny_config();
  const TransformerWeights w1 = generate_weights(cfg);
  const TransformerWeights w2 = generate_weights(cfg);
  ASSERT_EQ(static_cast<int>(w1.layers.size()), cfg.n_layers);
  EXPECT_EQ(w1.embedding.rows(), cfg.vocab);
  EXPECT_EQ(w1.layers[0].w_gate.cols(), cfg.d_ff);
  EXPECT_EQ(w1.lm_head.cols(), cfg.vocab);
  // Determinism.
  EXPECT_FLOAT_EQ(w1.layers[1].wq.at(3, 4), w2.layers[1].wq.at(3, 4));
}

TEST(WeightGen, OutlierChannelsPresent) {
  ModelConfig cfg = tiny_config();
  cfg.outlier_rate = 0.05;
  cfg.outlier_scale = 30.0;
  const TransformerWeights w = generate_weights(cfg);
  float mx = 0.0f;
  double sum_abs = 0.0;
  std::size_t n = 0;
  for (const float v : w.layers[0].wq.flat()) {
    mx = std::max(mx, std::fabs(v));
    sum_abs += std::fabs(v);
    ++n;
  }
  const double mean_abs = sum_abs / static_cast<double>(n);
  EXPECT_GT(mx / mean_abs, 10.0);  // Fig. 1(a): outliers ~10-100x the bulk
}

TEST(Forward, LogitShapeAndFiniteness) {
  const ModelConfig cfg = tiny_config();
  const TransformerWeights w = generate_weights(cfg);
  Fp32MatmulBackend mm;
  Fp32NonlinearBackend nl;
  Transformer model(cfg, w, mm, nl);
  const std::vector<int> tokens = {1, 5, 9, 33, 2, 17};
  const Matrix logits = model.forward(tokens);
  EXPECT_EQ(logits.rows(), 6);
  EXPECT_EQ(logits.cols(), cfg.vocab);
  for (const float v : logits.flat()) EXPECT_TRUE(std::isfinite(v));
}

TEST(Forward, CausalityHoldsUnderTokenChangesAhead) {
  // Changing a future token must not change logits at earlier positions.
  const ModelConfig cfg = tiny_config();
  const TransformerWeights w = generate_weights(cfg);
  Fp32MatmulBackend mm;
  Fp32NonlinearBackend nl;
  Transformer model(cfg, w, mm, nl);
  std::vector<int> a = {3, 7, 11, 19, 23};
  std::vector<int> b = a;
  b[4] = 60;  // differs only at the last position
  const Matrix la = model.forward(a);
  const Matrix lb = model.forward(b);
  for (int pos = 0; pos < 4; ++pos)
    for (int v = 0; v < cfg.vocab; ++v)
      EXPECT_NEAR(la.at(pos, v), lb.at(pos, v), 1e-5)
          << "pos=" << pos << " v=" << v;
}

TEST(Decoder, MatchesBatchedForward) {
  const ModelConfig cfg = tiny_config();
  const TransformerWeights w = generate_weights(cfg);
  Fp32MatmulBackend mm;
  Fp32NonlinearBackend nl;
  Transformer model(cfg, w, mm, nl);
  const std::vector<int> tokens = {2, 40, 13, 27, 8};

  const Matrix batched = model.forward(tokens);
  Decoder decoder(model);
  std::vector<float> last;
  for (const int t : tokens) last = decoder.step(t);
  ASSERT_EQ(static_cast<int>(last.size()), cfg.vocab);
  for (int v = 0; v < cfg.vocab; ++v)
    EXPECT_NEAR(last[static_cast<std::size_t>(v)],
                batched.at(batched.rows() - 1, v), 2e-4)
        << v;
}

TEST(Decoder, ResetClearsContext) {
  const ModelConfig cfg = tiny_config();
  const TransformerWeights w = generate_weights(cfg);
  Fp32MatmulBackend mm;
  Fp32NonlinearBackend nl;
  Transformer model(cfg, w, mm, nl);
  Decoder decoder(model);
  const std::vector<float> first = decoder.step(5);
  (void)decoder.step(9);
  decoder.reset();
  const std::vector<float> again = decoder.step(5);
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_FLOAT_EQ(first[i], again[i]);
}

TEST(Calibration, HitsTargetPerplexity) {
  const ModelConfig cfg = tiny_config();
  const TransformerWeights w = generate_weights(cfg);
  Fp32MatmulBackend mm;
  Fp32NonlinearBackend nl;
  Transformer model(cfg, w, mm, nl);
  const float scale = calibrate_logit_scale(model, 8.0, 256, 10);
  EXPECT_GT(scale, 0.0f);
  // Measured on an independent stream: short-stream variance applies, so
  // the band is wide; prepare_model() bisects on the eval stream itself
  // and lands much tighter (see Integration.BaselineCalibratedToPaperRow).
  const std::vector<int> stream = sample_stream(model, 400, 99);
  const double ppl = model.perplexity(stream);
  EXPECT_NEAR(ppl, 8.0, 8.0 * 0.6);
}

TEST(PreparedModel, BaselineNearConfigTarget) {
  ModelConfig cfg = tiny_config();
  cfg.fp_baseline_ppl = 6.0;
  const PreparedModel prepared = prepare_model(cfg, 320);
  EXPECT_NEAR(prepared.fp32_ppl, 6.0, 6.0 * 0.4);
  EXPECT_EQ(static_cast<int>(prepared.eval_stream.size()), 320);
}

TEST(QuantisedEval, WideFormatsTrackFp32) {
  ModelConfig cfg = tiny_config();
  const PreparedModel prepared = prepare_model(cfg, 256);
  const double bbfp63 = evaluate_ppl_block_format(
      prepared, quant::BlockFormat::bbfp(6, 3));
  // BBFP(6,3) tracks the FP32 baseline (Table II: BBFP(6,3) ~ FP16 row).
  // The tiny test model (d=32: a single block per row) is far more
  // quantisation-sensitive than the zoo models, so the band is loose here;
  // bench_table2 checks the tight version at zoo scale.
  EXPECT_NEAR(bbfp63, prepared.fp32_ppl, prepared.fp32_ppl * 0.30);
  const double bfp4 =
      evaluate_ppl_block_format(prepared, quant::BlockFormat::bfp(4));
  EXPECT_LT(bbfp63, bfp4);  // wide BBFP strictly better than narrow BFP
}

TEST(QuantisedEval, NarrowFormatsDegradeInOrder) {
  ModelConfig cfg = tiny_config();
  const PreparedModel prepared = prepare_model(cfg, 256);
  const double bfp4 =
      evaluate_ppl_block_format(prepared, quant::BlockFormat::bfp(4));
  const double bfp6 =
      evaluate_ppl_block_format(prepared, quant::BlockFormat::bfp(6));
  EXPECT_GT(bfp4, prepared.fp32_ppl * 0.98);
  EXPECT_GT(bfp4, bfp6 * 0.98);  // 4-bit worse than (or close to) 6-bit
}

TEST(QuantisedEval, BbfpBeatsBfpAtSameWidthOnOutlierModel) {
  ModelConfig cfg = tiny_config();
  cfg.outlier_rate = 0.03;
  cfg.outlier_scale = 30.0;
  const PreparedModel prepared = prepare_model(cfg, 256);
  const double bfp4 =
      evaluate_ppl_block_format(prepared, quant::BlockFormat::bfp(4));
  const double bbfp42 = evaluate_ppl_block_format(
      prepared, quant::BlockFormat::bbfp(4, 2));
  EXPECT_LT(bbfp42, bfp4 * 1.05);  // the paper's core accuracy claim
}

}  // namespace
}  // namespace bbal::llm
