// serve::Engine: batched paged-KV output must be bit-identical to serial
// single-request decodes over contiguous caches at any thread count (the
// subsystem's acceptance criterion), scheduling policies must only reorder
// — never change — token streams, malformed requests and KV exhaustion
// must degrade to error results, and the serving metrics must be
// internally consistent and deterministic.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

// GCC 12 at -O2 misreads moving an Engine::Options whose accelerator
// optional is disengaged as a read of its uninitialized payload (the move
// constructor checks the engaged flag first; the payload is never read).
// The false positive appeared when Options grew its second string member
// and only fires through the inlined test bodies below.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include "accel/config.hpp"
#include "bbal/session.hpp"
#include "common/threadpool.hpp"
#include "serve/engine.hpp"
#include "serve/load.hpp"
#include "serve/policy.hpp"
#include "serve/workload.hpp"

namespace bbal {
namespace {

/// Small, cheap model shared by the suite.
std::shared_ptr<const llm::PreparedModel> tiny_model() {
  static const std::shared_ptr<const llm::PreparedModel> prepared = [] {
    llm::ModelConfig cfg;
    cfg.name = "serve-test";
    cfg.vocab = 96;
    cfg.d_model = 64;
    cfg.n_layers = 2;
    cfg.n_heads = 2;
    cfg.d_ff = 96;
    cfg.seed = 23;
    return prepare_shared(cfg, /*eval_tokens=*/96);
  }();
  return prepared;
}

serve::Engine make_engine(const std::string& strategy, int max_batch,
                          bool with_accelerator = false,
                          const std::string& policy = "fifo",
                          const std::string& kv_format = "FP32") {
  serve::Engine::Options options;
  options.max_batch = max_batch;
  options.policy = policy;
  options.kv_format = kv_format;
  if (with_accelerator) {
    accel::AcceleratorConfig cfg;
    cfg.array_rows = cfg.array_cols = 8;
    options.accelerator = cfg;
  }
  return serve::Engine::create(tiny_model(), quant::spec_of(strategy),
                               quant::StrategySpec::fp32(),
                               std::move(options))
      .expect("engine");
}

/// Build an engine from explicit options on the suite's default strategy,
/// serve `requests`, and return the report.
serve::Report run_report(const std::vector<serve::Request>& requests,
                         serve::Engine::Options options) {
  serve::Engine engine =
      serve::Engine::create(tiny_model(), quant::spec_of("BBFP(4,2)"),
                            quant::StrategySpec::fp32(), std::move(options))
          .expect("engine");
  for (const serve::Request& req : requests) engine.submit(req);
  return engine.run();
}

/// FNV-1a over (id, generated tokens), mirroring the engine's stream-hash
/// construction so tests can pin hashes against reference decodes.
std::uint32_t reference_stream_hash(
    const std::vector<std::vector<int>>& streams) {
  std::uint32_t hash = 2166136261u;
  auto mix = [&hash](std::uint32_t value) {
    for (int byte = 0; byte < 4; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xffu;
      hash *= 16777619u;
    }
  };
  for (std::size_t id = 0; id < streams.size(); ++id) {
    mix(static_cast<std::uint32_t>(id));
    for (const int token : streams[id])
      mix(static_cast<std::uint32_t>(token));
  }
  return hash;
}

/// The acceptance check: K batched requests over the paged KV pool == K
/// serial decodes over contiguous caches, bit for bit (tokens and FNV-1a
/// stream hash), across a thread-count sweep and with fewer slots than
/// requests (so the scheduler queues, retires and back-fills mid-run).
void expect_paged_matches_contiguous(int threads) {
  common::ThreadPool::set_global_threads(threads);
  const auto prepared = tiny_model();
  const std::vector<serve::Request> requests = serve::synthetic_requests(
      prepared->config, /*count=*/8, /*base_prompt_len=*/6,
      /*max_new_tokens=*/10);

  serve::Engine engine = make_engine("BBFP(4,2)", /*max_batch=*/3);
  for (const serve::Request& req : requests) engine.submit(req);
  const serve::Report report = engine.run();
  common::ThreadPool::set_global_threads(common::ThreadPool::env_threads());

  ASSERT_EQ(report.results.size(), requests.size());
  EXPECT_EQ(report.completed, static_cast<std::int64_t>(requests.size()));
  std::vector<std::vector<int>> references;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    references.push_back(serve::reference_decode(
        *prepared, quant::spec_of("BBFP(4,2)"), requests[i]));
    EXPECT_TRUE(report.results[i].ok) << report.results[i].error;
    EXPECT_EQ(report.results[i].generated, references.back())
        << "request " << i << " diverged at " << threads << " threads";
  }
  EXPECT_EQ(report.stream_hash, reference_stream_hash(references));
  EXPECT_EQ(report.kv_format, "FP32");
  EXPECT_GT(report.kv_pages_allocated, 0);
  EXPECT_GT(report.kv_bytes_peak, 0);
}

TEST(ServeEngine, PagedMatchesContiguousSingleThread) {
  expect_paged_matches_contiguous(1);
}

TEST(ServeEngine, PagedMatchesContiguousFourThreads) {
  expect_paged_matches_contiguous(4);
}

TEST(ServeEngine, RunsAreDeterministic) {
  const std::vector<serve::Request> requests =
      serve::synthetic_requests(tiny_model()->config, 5, 4, 6);
  serve::Engine engine = make_engine("BFP4", /*max_batch=*/2,
                                     /*with_accelerator=*/true);
  for (const serve::Request& req : requests) engine.submit(req);
  const serve::Report first = engine.run();
  for (const serve::Request& req : requests) engine.submit(req);
  const serve::Report second = engine.run();

  EXPECT_EQ(first.stream_hash, second.stream_hash);
  EXPECT_EQ(first.generated_tokens, second.generated_tokens);
  EXPECT_EQ(first.engine_steps, second.engine_steps);
  EXPECT_DOUBLE_EQ(first.total_seconds, second.total_seconds);
  EXPECT_DOUBLE_EQ(first.p99_step_seconds, second.p99_step_seconds);
  EXPECT_DOUBLE_EQ(first.energy_j, second.energy_j);
}

TEST(ServeEngine, MetricsAreConsistent) {
  const int kRequests = 6;
  const int kNewTokens = 8;
  serve::Engine engine = make_engine("BBFP(4,2)", /*max_batch=*/2,
                                     /*with_accelerator=*/true);
  for (const serve::Request& req : serve::synthetic_requests(
           tiny_model()->config, kRequests, 4, kNewTokens))
    engine.submit(req);
  EXPECT_EQ(engine.pending(), static_cast<std::size_t>(kRequests));
  const serve::Report report = engine.run();
  EXPECT_EQ(engine.pending(), 0u);

  ASSERT_TRUE(report.has_cost);
  EXPECT_EQ(report.completed, kRequests);
  EXPECT_EQ(report.generated_tokens,
            static_cast<std::int64_t>(kRequests) * kNewTokens);
  EXPECT_GT(report.total_seconds, 0.0);
  EXPECT_GT(report.throughput_tokens_per_second, 0.0);
  EXPECT_GT(report.simulated_macs, 0);
  EXPECT_GT(report.energy_j, 0.0);
  EXPECT_GT(report.p50_step_seconds, 0.0);
  EXPECT_LE(report.p50_step_seconds, report.p95_step_seconds);
  EXPECT_LE(report.p95_step_seconds, report.p99_step_seconds);
  EXPECT_GT(report.mean_batch_occupancy, 0.0);
  EXPECT_LE(report.mean_batch_occupancy, 2.0);  // max_batch slots

  for (const serve::RequestResult& r : report.results) {
    ASSERT_TRUE(r.ok);
    EXPECT_GT(r.ttft_seconds, 0.0);
    EXPECT_GE(r.total_seconds, r.ttft_seconds);
    EXPECT_GT(r.tokens_per_second, 0.0);
    EXPECT_GE(r.steps, r.prompt_tokens + kNewTokens - 1);
  }
  // Later arrivals queue behind the 2 slots, so their TTFT (measured from
  // arrival) must include the wait.
  EXPECT_GT(report.results.back().ttft_seconds,
            report.results.front().ttft_seconds);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"matmul\": \"BBFP(4,2)\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"stream_hash\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99_step_seconds\""), std::string::npos) << json;
  EXPECT_EQ(json.find("\"wall_seconds\""), std::string::npos)
      << "wall-clock must stay out of gated rows: " << json;
}

TEST(ServeEngine, IsolatesMalformedRequests) {
  serve::Engine engine = make_engine("BFP4", /*max_batch=*/2);
  serve::Request good;
  good.prompt = {1, 2, 3};
  good.max_new_tokens = 4;
  serve::Request empty;  // no prompt
  serve::Request bad_budget;
  bad_budget.prompt = {4};
  bad_budget.max_new_tokens = 0;
  serve::Request bad_token;
  bad_token.prompt = {5, 4096};  // out of the 96-token vocabulary
  engine.submit(good);
  engine.submit(empty);
  engine.submit(bad_budget);
  engine.submit(bad_token);
  const serve::Report report = engine.run();

  ASSERT_EQ(report.results.size(), 4u);
  EXPECT_TRUE(report.results[0].ok);
  EXPECT_EQ(static_cast<int>(report.results[0].generated.size()), 4);
  EXPECT_FALSE(report.results[1].ok);
  EXPECT_NE(report.results[1].error.find("empty"), std::string::npos);
  EXPECT_FALSE(report.results[2].ok);
  EXPECT_NE(report.results[2].error.find("max_new_tokens"),
            std::string::npos);
  EXPECT_FALSE(report.results[3].ok);
  EXPECT_NE(report.results[3].error.find("vocabulary"), std::string::npos);
  EXPECT_EQ(report.completed, 1);
}

TEST(ServeEngine, CreateRejectsBadConfigurations) {
  serve::Engine::Options options;
  options.max_batch = 0;
  EXPECT_FALSE(serve::Engine::create(tiny_model(), quant::spec_of("BFP4"),
                                     quant::StrategySpec::fp32(),
                                     std::move(options))
                   .is_ok());

  // A nonlinear-only strategy cannot be the matmul backend.
  EXPECT_FALSE(
      serve::Engine::create(tiny_model(), "PseudoSoftmax", "FP32").is_ok());
  // Unknown names surface as errors, not aborts.
  EXPECT_FALSE(serve::Engine::create(tiny_model(), "bogus", "FP32").is_ok());
  // FP32 has no hardware cost model: an accelerator is a build error.
  serve::Engine::Options accel_options;
  accel_options.max_batch = 1;
  accel_options.accelerator = accel::AcceleratorConfig{};
  const auto r =
      serve::Engine::create(tiny_model(), quant::StrategySpec::fp32(),
                            quant::StrategySpec::fp32(),
                            std::move(accel_options));
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.message().find("cost model"), std::string::npos) << r.message();
}

TEST(ServeEngine, CreateRejectsBadKvFormats) {
  // Storable formats are FP32/INT8/BFP/BBFP; anything else — including
  // strategies that exist but have no byte layout — is a create() error
  // that names the offending option.
  for (const char* bad : {"FP16", "Olive", "BBFP-LUT(10,5)", "garbage"}) {
    serve::Engine::Options options;
    options.max_batch = 1;
    options.kv_format = bad;
    const auto r =
        serve::Engine::create(tiny_model(), quant::spec_of("BFP4"),
                              quant::StrategySpec::fp32(), std::move(options));
    ASSERT_FALSE(r.is_ok()) << bad;
    EXPECT_NE(r.message().find("kv_format"), std::string::npos)
        << r.message();
  }
}

TEST(ServeEngine, QuantisedKvPagesShrinkPeakBytes) {
  const std::vector<serve::Request> requests =
      serve::synthetic_requests(tiny_model()->config, 6, 6, 8);
  auto run = [&](const std::string& kv_format) {
    serve::Engine engine =
        make_engine("BBFP(4,2)", /*max_batch=*/3, /*with_accelerator=*/true,
                    "fifo", kv_format);
    for (const serve::Request& req : requests) engine.submit(req);
    return engine.run();
  };
  const serve::Report fp32 = run("FP32");
  const serve::Report quantised = run("BBFP(4,2)");
  EXPECT_EQ(fp32.kv_format, "FP32");
  EXPECT_EQ(quantised.kv_format, "BBFP(4,2)");
  EXPECT_EQ(fp32.completed, quantised.completed);

  // The headline claim: BBFP(4,2) pages pack at least 4x denser. Page
  // traffic (and the FP32 yardstick) is unchanged — only the bytes per
  // page shrink, and the cheaper pages cost less SRAM energy.
  EXPECT_GT(quantised.kv_bytes_peak, 0);
  EXPECT_LE(quantised.kv_bytes_peak * 4, fp32.kv_bytes_peak);
  EXPECT_EQ(quantised.kv_bytes_peak_contiguous,
            fp32.kv_bytes_peak_contiguous);
  EXPECT_EQ(quantised.kv_pages_allocated, fp32.kv_pages_allocated);
  EXPECT_LT(quantised.kv_energy_j, fp32.kv_energy_j);
}

TEST(ServeEngine, KvFormatsAreThreadCountInvariant) {
  // The quantised decode path keeps the engine's determinism contract:
  // identical streams at any BBAL_THREADS (the FP32 case is pinned against
  // reference decodes in PagedMatchesContiguous*).
  const std::vector<serve::Request> requests =
      serve::synthetic_requests(tiny_model()->config, 5, 6, 8);
  for (const char* kv_format : {"INT8", "BBFP(6,3)"}) {
    auto run_at = [&](int threads) {
      common::ThreadPool::set_global_threads(threads);
      serve::Engine engine =
          make_engine("BBFP(4,2)", /*max_batch=*/2,
                      /*with_accelerator=*/false, "fifo", kv_format);
      for (const serve::Request& req : requests) engine.submit(req);
      const serve::Report report = engine.run();
      common::ThreadPool::set_global_threads(
          common::ThreadPool::env_threads());
      return report;
    };
    const serve::Report one = run_at(1);
    const serve::Report four = run_at(4);
    EXPECT_EQ(one.completed, static_cast<std::int64_t>(requests.size()))
        << kv_format;
    EXPECT_EQ(one.stream_hash, four.stream_hash) << kv_format;
    EXPECT_EQ(one.generated_tokens, four.generated_tokens) << kv_format;
    EXPECT_EQ(one.kv_bytes_peak, four.kv_bytes_peak) << kv_format;
    for (std::size_t i = 0; i < one.results.size(); ++i)
      EXPECT_EQ(one.results[i].generated, four.results[i].generated)
          << kv_format << " request " << i;
  }
}

TEST(ServeEngine, FromSessionServesTheSessionConfiguration) {
  accel::AcceleratorConfig cfg;
  cfg.array_rows = cfg.array_cols = 8;
  auto session = Session::Builder()
                     .prepared(tiny_model())
                     .matmul("BBFP(4,2)")
                     .accelerator(cfg)
                     .build()
                     .expect("session");
  auto engine =
      serve::Engine::from_session(session, /*max_batch=*/2).expect("engine");
  EXPECT_EQ(engine.matmul_strategy().to_string(), "BBFP(4,2)");
  EXPECT_TRUE(engine.has_accelerator());
  EXPECT_EQ(engine.model_config().name, "serve-test");

  serve::Request req;
  req.prompt = {7, 8, 9};
  req.max_new_tokens = 5;
  engine.submit(req);
  const serve::Report report = engine.run();
  ASSERT_EQ(report.completed, 1);
  EXPECT_EQ(report.results[0].generated,
            serve::reference_decode(*tiny_model(),
                                    quant::spec_of("BBFP(4,2)"), req));
}

TEST(ServePolicy, FactoryResolvesEveryNameAndRejectsUnknowns) {
  for (const std::string& name : serve::policy_names()) {
    auto policy = serve::make_policy(name);
    ASSERT_TRUE(policy.is_ok()) << name << ": " << policy.message();
    EXPECT_EQ(policy.value()->name(), name);
  }
  EXPECT_FALSE(serve::make_policy("round-robin").is_ok());
  serve::Engine::Options options;
  options.policy = "bogus";
  EXPECT_FALSE(serve::Engine::create(tiny_model(), quant::spec_of("BFP4"),
                                     quant::StrategySpec::fp32(),
                                     std::move(options))
                   .is_ok());
}

TEST(ServePolicy, ShortestJobFirstReordersAdmissionNotTokens) {
  // One slot: admission order is completion order. Request 0 is the
  // longest job, so under SJF it must finish last despite submitting
  // first — and every stream must still match its serial reference.
  std::vector<serve::Request> requests;
  for (const int prompt_len : {12, 4, 8}) {
    serve::Request req;
    for (int t = 0; t < prompt_len; ++t) req.prompt.push_back(t + 1);
    req.max_new_tokens = 4;
    requests.push_back(std::move(req));
  }
  serve::Engine engine = make_engine("BBFP(4,2)", /*max_batch=*/1,
                                     /*with_accelerator=*/true, "sjf");
  for (const serve::Request& req : requests) engine.submit(req);
  const serve::Report report = engine.run();

  ASSERT_EQ(report.completed, 3);
  EXPECT_EQ(report.policy, "sjf");
  // Shorter jobs were admitted (and therefore finished) first.
  EXPECT_GT(report.results[0].ttft_seconds, report.results[1].ttft_seconds);
  EXPECT_GT(report.results[2].ttft_seconds, report.results[1].ttft_seconds);
  EXPECT_GT(report.results[0].ttft_seconds, report.results[2].ttft_seconds);
  for (std::size_t i = 0; i < requests.size(); ++i)
    EXPECT_EQ(report.results[i].generated,
              serve::reference_decode(*tiny_model(),
                                      quant::spec_of("BBFP(4,2)"),
                                      requests[i]))
        << "request " << i;
}

TEST(ServePolicy, PrefixAwareSharesPagesAndKeepsStreamsIdentical) {
  const auto prepared = tiny_model();
  // 4 requests sharing a 40-token prefix (page size 16 -> 2 full shared
  // pages after the cap) with tiny private suffixes.
  const std::vector<serve::Request> requests = serve::shared_prefix_requests(
      prepared->config, /*count=*/4, /*prefix_len=*/40, /*suffix_len=*/2,
      /*max_new_tokens=*/6);

  serve::Engine fifo = make_engine("BBFP(4,2)", /*max_batch=*/2);
  serve::Engine aware = make_engine("BBFP(4,2)", /*max_batch=*/2,
                                    /*with_accelerator=*/false,
                                    "prefix-aware");
  for (const serve::Request& req : requests) {
    fifo.submit(req);
    aware.submit(req);
  }
  const serve::Report fifo_report = fifo.run();
  const serve::Report aware_report = aware.run();

  // The policy only reorders work: token streams are bit-identical.
  ASSERT_EQ(aware_report.completed, fifo_report.completed);
  EXPECT_EQ(aware_report.stream_hash, fifo_report.stream_hash);
  for (std::size_t i = 0; i < requests.size(); ++i)
    EXPECT_EQ(aware_report.results[i].generated,
              fifo_report.results[i].generated)
        << "request " << i;

  // Followers attached the leader's prompt pages...
  EXPECT_EQ(fifo_report.prefix_hit_rate, 0.0);
  EXPECT_GT(aware_report.prefix_hit_rate, 0.0);
  EXPECT_EQ(aware_report.results[0].shared_prompt_tokens, 0);
  for (std::size_t i = 1; i < requests.size(); ++i)
    EXPECT_EQ(aware_report.results[i].shared_prompt_tokens, 32)
        << "request " << i;
  // ...so sharing skips prefill work and stores the prefix once: fewer
  // engine ticks, fewer pages, and a paged peak below the monolithic
  // equivalent.
  EXPECT_LT(aware_report.engine_steps, fifo_report.engine_steps);
  EXPECT_LT(aware_report.kv_pages_allocated, fifo_report.kv_pages_allocated);
  EXPECT_LT(aware_report.kv_bytes_peak,
            aware_report.kv_bytes_peak_contiguous);
}

TEST(ServeEngine, WeightsAreHeldOnceRegardlessOfBatchWidth) {
  // The fused datapath shares one backend across every batch slot, so the
  // quantised weight footprint must not scale with max_batch — and the
  // token streams must stay identical while it shrinks.
  const std::vector<serve::Request> requests =
      serve::synthetic_requests(tiny_model()->config, 6, 5, 6);
  serve::Engine narrow = make_engine("BBFP(4,2)", /*max_batch=*/1);
  serve::Engine wide = make_engine("BBFP(4,2)", /*max_batch=*/4);
  EXPECT_GT(narrow.weights_bytes(), 0);
  EXPECT_EQ(narrow.weights_bytes(), wide.weights_bytes());

  for (const serve::Request& req : requests) {
    narrow.submit(req);
    wide.submit(req);
  }
  const serve::Report narrow_report = narrow.run();
  const serve::Report wide_report = wide.run();
  EXPECT_EQ(narrow_report.stream_hash, wide_report.stream_hash);
  EXPECT_EQ(narrow_report.weights_bytes, wide_report.weights_bytes);
  EXPECT_EQ(wide_report.weights_bytes, wide.weights_bytes());
  EXPECT_NE(wide_report.to_json().find("\"weights_bytes\""),
            std::string::npos);
}

serve::Engine make_chunked_engine(int max_batch, int chunk, int budget,
                                  bool with_accelerator = false) {
  serve::Engine::Options options;
  options.max_batch = max_batch;
  options.prefill_chunk = chunk;
  options.prefill_budget = budget;
  if (with_accelerator) {
    accel::AcceleratorConfig cfg;
    cfg.array_rows = cfg.array_cols = 8;
    options.accelerator = cfg;
  }
  return serve::Engine::create(tiny_model(), quant::spec_of("BBFP(4,2)"),
                               quant::StrategySpec::fp32(),
                               std::move(options))
      .expect("engine");
}

TEST(ServePrefill, ChunkedStreamsMatchLockstepAtAnyThreadCount) {
  // Prompt lengths that do NOT divide the chunk (long prompts of 23 over
  // chunk 5), mixed with short decoding neighbours. Chunking is pure
  // scheduling: every stream — and the hash — must match the lockstep
  // engine's and the serial references, at 1 and 4 threads.
  const auto prepared = tiny_model();
  const std::vector<serve::Request> requests = serve::long_prompt_requests(
      prepared->config, /*count=*/6, /*base_prompt_len=*/5,
      /*long_prompt_len=*/23, /*long_every=*/3, /*max_new_tokens=*/6);

  std::vector<std::vector<int>> references;
  for (const serve::Request& req : requests)
    references.push_back(serve::reference_decode(
        *prepared, quant::spec_of("BBFP(4,2)"), req));

  for (const int threads : {1, 4}) {
    common::ThreadPool::set_global_threads(threads);
    serve::Engine lockstep = make_chunked_engine(/*max_batch=*/3, 1, 0);
    serve::Engine chunked = make_chunked_engine(/*max_batch=*/3, 5, 5);
    for (const serve::Request& req : requests) {
      lockstep.submit(req);
      chunked.submit(req);
    }
    const serve::Report base = lockstep.run();
    const serve::Report report = chunked.run();
    common::ThreadPool::set_global_threads(common::ThreadPool::env_threads());

    ASSERT_EQ(report.completed, base.completed) << threads << " threads";
    EXPECT_EQ(report.stream_hash, base.stream_hash) << threads << " threads";
    for (std::size_t i = 0; i < requests.size(); ++i) {
      EXPECT_EQ(report.results[i].generated, references[i])
          << "request " << i << " at " << threads << " threads";
      EXPECT_EQ(base.results[i].generated, references[i])
          << "lockstep request " << i << " at " << threads << " threads";
    }
    // The chunked engine really interleaved and really went faster in
    // ticks: long prompts are consumed 5 positions at a time.
    EXPECT_GT(report.mixed_ticks, 0);
    EXPECT_LT(report.engine_steps, base.engine_steps);
    EXPECT_EQ(report.prefill_chunk, 5);
    EXPECT_EQ(report.prefill_budget, 5);
  }
}

TEST(ServePrefill, ReportEmitsChunkFieldsOnlyWhenChunkingIsOn) {
  serve::Request req;
  req.prompt = {3, 1, 4, 1, 5, 9, 2, 6};
  req.max_new_tokens = 4;

  serve::Engine plain = make_chunked_engine(/*max_batch=*/1, 1, 0);
  plain.submit(req);
  const std::string plain_json = plain.run().to_json();
  EXPECT_EQ(plain_json.find("prefill_chunk"), std::string::npos)
      << "default rows must stay byte-exact: " << plain_json;

  serve::Engine chunked = make_chunked_engine(/*max_batch=*/1, 4, 4);
  chunked.submit(req);
  const std::string chunked_json = chunked.run().to_json();
  EXPECT_NE(chunked_json.find("\"prefill_chunk\": 4"), std::string::npos)
      << chunked_json;
  EXPECT_NE(chunked_json.find("\"prefill_budget\": 4"), std::string::npos)
      << chunked_json;
  EXPECT_NE(chunked_json.find("\"mixed_ticks\""), std::string::npos)
      << chunked_json;
}

TEST(ServePrefill, CreateRejectsBadChunkConfigurations) {
  for (const auto& [chunk, budget] :
       {std::pair{0, 0}, {-2, 0}, {4, -1}}) {
    serve::Engine::Options options;
    options.max_batch = 1;
    options.prefill_chunk = chunk;
    options.prefill_budget = budget;
    EXPECT_FALSE(serve::Engine::create(tiny_model(), quant::spec_of("BFP4"),
                                       quant::StrategySpec::fp32(),
                                       std::move(options))
                     .is_ok())
        << "chunk " << chunk << " budget " << budget;
  }
}

TEST(ServePrefill, PromptHeavyOpenLoopQueueingStaysConsistent) {
  // The prompt-heavy open-loop regime chunked prefill exists for: Poisson
  // arrivals, every 3rd prompt long. The chunked engine must complete the
  // same streams as the lockstep engine while burning fewer ticks, and
  // the per-request queueing arithmetic must stay exact.
  const auto prepared = tiny_model();
  std::vector<serve::Request> requests = serve::long_prompt_requests(
      prepared->config, /*count=*/6, /*base_prompt_len=*/4,
      /*long_prompt_len=*/30, /*long_every=*/3, /*max_new_tokens=*/5);
  serve::ArrivalSpec arrival;
  arrival.kind = serve::ArrivalSpec::Kind::kPoisson;
  arrival.rate = 0.2;
  arrival.seed = 7;
  serve::stamp_arrivals(requests,
                        serve::generate_arrivals(arrival,
                                                 static_cast<int>(
                                                     requests.size())));

  serve::Engine lockstep =
      make_chunked_engine(/*max_batch=*/2, 1, 0, /*with_accelerator=*/true);
  serve::Engine chunked =
      make_chunked_engine(/*max_batch=*/2, 6, 6, /*with_accelerator=*/true);
  for (const serve::Request& req : requests) {
    lockstep.submit(req);
    chunked.submit(req);
  }
  const serve::Report base = lockstep.run();
  const serve::Report report = chunked.run();

  ASSERT_EQ(report.completed,
            static_cast<std::int64_t>(requests.size()));
  EXPECT_EQ(report.stream_hash, base.stream_hash);
  EXPECT_LT(report.clock_ticks, base.clock_ticks);
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    const serve::RequestResult& r = report.results[i];
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.arrival_tick, requests[i].arrival_tick);
    EXPECT_GE(r.admit_tick, r.arrival_tick);
    EXPECT_EQ(r.queue_ticks, r.admit_tick - r.arrival_tick);
    // A chunk can swallow a short prompt whole, so the first token may
    // land on the admission tick itself — never before it.
    EXPECT_GE(r.first_token_tick, r.admit_tick);
    // Chunked TTFT in ticks never loses to the lockstep for the same
    // request (it wins outright on the long prompts).
    const serve::RequestResult& b = base.results[i];
    EXPECT_LE(r.first_token_tick - r.admit_tick,
              b.first_token_tick - b.admit_tick)
        << "request " << i;
  }
}

TEST(ServeEngine, UndersizedPoolDegradesToErrorResults) {
  // 2 pages of 16 tokens: request 0 (4 + 4 - 1 positions) fits, request 1
  // (40 prompt tokens -> 3+ pages) can never fit and must surface as an
  // error result, not an abort — and not block request 2.
  serve::Engine::Options options;
  options.max_batch = 2;
  options.kv_pool_pages = 2;
  serve::Engine engine =
      serve::Engine::create(tiny_model(), quant::spec_of("BFP4"),
                            quant::StrategySpec::fp32(), std::move(options))
          .expect("engine");
  serve::Request small;
  small.prompt = {1, 2, 3, 4};
  small.max_new_tokens = 4;
  serve::Request huge;
  for (int t = 0; t < 40; ++t) huge.prompt.push_back(t % 16);
  huge.max_new_tokens = 4;
  engine.submit(small);
  engine.submit(huge);
  engine.submit(small);
  const serve::Report report = engine.run();

  ASSERT_EQ(report.results.size(), 3u);
  EXPECT_TRUE(report.results[0].ok) << report.results[0].error;
  EXPECT_FALSE(report.results[1].ok);
  EXPECT_NE(report.results[1].error.find("KV pages"), std::string::npos)
      << report.results[1].error;
  EXPECT_TRUE(report.results[2].ok) << report.results[2].error;
  EXPECT_EQ(report.completed, 2);
  EXPECT_EQ(report.results[0].generated, report.results[2].generated);
}

TEST(ServeEngine, CreateReportsEveryInvalidOptionInOneStatus) {
  // The validator is table-driven: a create() with several bad options
  // must name ALL of them in one Status, not fail on the first.
  serve::Engine::Options options;
  options.max_batch = 0;
  options.kv_page_tokens = -4;
  options.prefill_chunk = 0;
  options.max_preemptions = -1;
  options.policy = "round-robin";
  const auto r =
      serve::Engine::create(tiny_model(), quant::spec_of("BFP4"),
                            quant::StrategySpec::fp32(), std::move(options));
  ASSERT_FALSE(r.is_ok());
  for (const char* problem : {"max_batch", "kv_page_tokens", "prefill_chunk",
                              "max_preemptions", "policy"})
    EXPECT_NE(r.message().find(problem), std::string::npos)
        << "missing \"" << problem << "\" in: " << r.message();
}

TEST(ServeEngine, PreemptionRecoversMidRunExhaustionBitIdentically) {
  // The overload-recovery criterion: a pool sized to exhaust mid-run (the
  // optimistic admission gate overcommits it on purpose) must drain,
  // requeue and complete EVERY request, with streams and hash equal to an
  // amply-sized pool, at 1 and 4 threads. Prompt lengths are staggered so
  // page-boundary crossings never all collide on one tick.
  std::vector<serve::Request> requests;
  for (const int prompt_len : {5, 9, 13, 7, 11, 6}) {
    serve::Request req;
    for (int t = 0; t < prompt_len; ++t)
      req.prompt.push_back((prompt_len + t) % 96);
    req.max_new_tokens = 8;
    requests.push_back(std::move(req));
  }

  for (const int threads : {1, 4}) {
    common::ThreadPool::set_global_threads(threads);
    serve::Engine::Options ample_options;
    ample_options.max_batch = 3;
    ample_options.kv_page_tokens = 8;
    const serve::Report ample = run_report(requests, ample_options);

    serve::Engine::Options tight_options;
    tight_options.max_batch = 3;
    tight_options.kv_page_tokens = 8;
    // Three concurrent flights all cross the position-8 page boundary on
    // the same tick (one prefill row per tick from a common admission
    // tick), wanting six pages at once; five force mid-run reserve
    // failures that preemption must absorb.
    tight_options.kv_pool_pages = 5;
    tight_options.preempt = true;
    tight_options.max_preemptions = 32;
    const serve::Report tight = run_report(requests, tight_options);
    common::ThreadPool::set_global_threads(common::ThreadPool::env_threads());

    ASSERT_EQ(ample.completed, static_cast<std::int64_t>(requests.size()))
        << threads << " threads";
    ASSERT_EQ(tight.completed, ample.completed) << threads << " threads";
    EXPECT_GT(tight.preemptions, 0) << threads << " threads";
    EXPECT_EQ(tight.resumes, tight.preemptions) << threads << " threads";
    EXPECT_EQ(tight.oom_failures, 0) << threads << " threads";
    EXPECT_EQ(tight.stream_hash, ample.stream_hash) << threads << " threads";
    for (std::size_t i = 0; i < requests.size(); ++i) {
      EXPECT_TRUE(tight.results[i].ok) << tight.results[i].error;
      EXPECT_EQ(tight.results[i].generated, ample.results[i].generated)
          << "request " << i << " at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace bbal
