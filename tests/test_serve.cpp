// serve::Engine: batched continuous-batching output must be bit-identical
// to serial single-request decodes at any thread count (the subsystem's
// acceptance criterion), scheduling must survive malformed requests, and
// the serving metrics must be internally consistent and deterministic.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "accel/config.hpp"
#include "bbal/session.hpp"
#include "common/threadpool.hpp"
#include "serve/engine.hpp"
#include "serve/workload.hpp"

namespace bbal {
namespace {

/// Small, cheap model shared by the suite.
std::shared_ptr<const llm::PreparedModel> tiny_model() {
  static const std::shared_ptr<const llm::PreparedModel> prepared = [] {
    llm::ModelConfig cfg;
    cfg.name = "serve-test";
    cfg.vocab = 96;
    cfg.d_model = 64;
    cfg.n_layers = 2;
    cfg.n_heads = 2;
    cfg.d_ff = 96;
    cfg.seed = 23;
    return prepare_shared(cfg, /*eval_tokens=*/96);
  }();
  return prepared;
}

serve::Engine make_engine(const std::string& strategy, int max_batch,
                          bool with_accelerator = false) {
  serve::Engine::Options options;
  options.max_batch = max_batch;
  if (with_accelerator) {
    accel::AcceleratorConfig cfg;
    cfg.array_rows = cfg.array_cols = 8;
    options.accelerator = cfg;
  }
  return serve::Engine::create(tiny_model(), quant::spec_of(strategy),
                               quant::StrategySpec::fp32(),
                               std::move(options))
      .expect("engine");
}

/// The acceptance check: K batched requests == K serial decodes, bit for
/// bit, across a thread-count sweep and with fewer slots than requests
/// (so the scheduler queues, retires and back-fills mid-run).
void expect_batched_matches_serial(int threads) {
  common::ThreadPool::set_global_threads(threads);
  const auto prepared = tiny_model();
  const std::vector<serve::Request> requests = serve::synthetic_requests(
      prepared->config, /*count=*/8, /*base_prompt_len=*/6,
      /*max_new_tokens=*/10);

  serve::Engine engine = make_engine("BBFP(4,2)", /*max_batch=*/3);
  for (const serve::Request& req : requests) engine.submit(req);
  const serve::Report report = engine.run();
  common::ThreadPool::set_global_threads(common::ThreadPool::env_threads());

  ASSERT_EQ(report.results.size(), requests.size());
  EXPECT_EQ(report.completed, static_cast<std::int64_t>(requests.size()));
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::vector<int> reference = serve::reference_decode(
        *prepared, quant::spec_of("BBFP(4,2)"), requests[i]);
    EXPECT_TRUE(report.results[i].ok) << report.results[i].error;
    EXPECT_EQ(report.results[i].generated, reference)
        << "request " << i << " diverged at " << threads << " threads";
  }
}

TEST(ServeEngine, BatchedMatchesSerialSingleThread) {
  expect_batched_matches_serial(1);
}

TEST(ServeEngine, BatchedMatchesSerialFourThreads) {
  expect_batched_matches_serial(4);
}

TEST(ServeEngine, RunsAreDeterministic) {
  const std::vector<serve::Request> requests =
      serve::synthetic_requests(tiny_model()->config, 5, 4, 6);
  serve::Engine engine = make_engine("BFP4", /*max_batch=*/2,
                                     /*with_accelerator=*/true);
  for (const serve::Request& req : requests) engine.submit(req);
  const serve::Report first = engine.run();
  for (const serve::Request& req : requests) engine.submit(req);
  const serve::Report second = engine.run();

  EXPECT_EQ(first.stream_hash, second.stream_hash);
  EXPECT_EQ(first.generated_tokens, second.generated_tokens);
  EXPECT_EQ(first.engine_steps, second.engine_steps);
  EXPECT_DOUBLE_EQ(first.total_seconds, second.total_seconds);
  EXPECT_DOUBLE_EQ(first.p99_step_seconds, second.p99_step_seconds);
  EXPECT_DOUBLE_EQ(first.energy_j, second.energy_j);
}

TEST(ServeEngine, MetricsAreConsistent) {
  const int kRequests = 6;
  const int kNewTokens = 8;
  serve::Engine engine = make_engine("BBFP(4,2)", /*max_batch=*/2,
                                     /*with_accelerator=*/true);
  for (const serve::Request& req : serve::synthetic_requests(
           tiny_model()->config, kRequests, 4, kNewTokens))
    engine.submit(req);
  EXPECT_EQ(engine.pending(), static_cast<std::size_t>(kRequests));
  const serve::Report report = engine.run();
  EXPECT_EQ(engine.pending(), 0u);

  ASSERT_TRUE(report.has_cost);
  EXPECT_EQ(report.completed, kRequests);
  EXPECT_EQ(report.generated_tokens,
            static_cast<std::int64_t>(kRequests) * kNewTokens);
  EXPECT_GT(report.total_seconds, 0.0);
  EXPECT_GT(report.throughput_tokens_per_second, 0.0);
  EXPECT_GT(report.simulated_macs, 0);
  EXPECT_GT(report.energy_j, 0.0);
  EXPECT_GT(report.p50_step_seconds, 0.0);
  EXPECT_LE(report.p50_step_seconds, report.p95_step_seconds);
  EXPECT_LE(report.p95_step_seconds, report.p99_step_seconds);
  EXPECT_GT(report.mean_batch_occupancy, 0.0);
  EXPECT_LE(report.mean_batch_occupancy, 2.0);  // max_batch slots

  for (const serve::RequestResult& r : report.results) {
    ASSERT_TRUE(r.ok);
    EXPECT_GT(r.ttft_seconds, 0.0);
    EXPECT_GE(r.total_seconds, r.ttft_seconds);
    EXPECT_GT(r.tokens_per_second, 0.0);
    EXPECT_GE(r.steps, r.prompt_tokens + kNewTokens - 1);
  }
  // Later arrivals queue behind the 2 slots, so their TTFT (measured from
  // arrival) must include the wait.
  EXPECT_GT(report.results.back().ttft_seconds,
            report.results.front().ttft_seconds);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"matmul\": \"BBFP(4,2)\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"stream_hash\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99_step_seconds\""), std::string::npos) << json;
  EXPECT_EQ(json.find("\"wall_seconds\""), std::string::npos)
      << "wall-clock must stay out of gated rows: " << json;
}

TEST(ServeEngine, IsolatesMalformedRequests) {
  serve::Engine engine = make_engine("BFP4", /*max_batch=*/2);
  serve::Request good;
  good.prompt = {1, 2, 3};
  good.max_new_tokens = 4;
  serve::Request empty;  // no prompt
  serve::Request bad_budget;
  bad_budget.prompt = {4};
  bad_budget.max_new_tokens = 0;
  serve::Request bad_token;
  bad_token.prompt = {5, 4096};  // out of the 96-token vocabulary
  engine.submit(good);
  engine.submit(empty);
  engine.submit(bad_budget);
  engine.submit(bad_token);
  const serve::Report report = engine.run();

  ASSERT_EQ(report.results.size(), 4u);
  EXPECT_TRUE(report.results[0].ok);
  EXPECT_EQ(static_cast<int>(report.results[0].generated.size()), 4);
  EXPECT_FALSE(report.results[1].ok);
  EXPECT_NE(report.results[1].error.find("empty"), std::string::npos);
  EXPECT_FALSE(report.results[2].ok);
  EXPECT_NE(report.results[2].error.find("max_new_tokens"),
            std::string::npos);
  EXPECT_FALSE(report.results[3].ok);
  EXPECT_NE(report.results[3].error.find("vocabulary"), std::string::npos);
  EXPECT_EQ(report.completed, 1);
}

TEST(ServeEngine, CreateRejectsBadConfigurations) {
  serve::Engine::Options options;
  options.max_batch = 0;
  EXPECT_FALSE(serve::Engine::create(tiny_model(), quant::spec_of("BFP4"),
                                     quant::StrategySpec::fp32(),
                                     std::move(options))
                   .is_ok());

  // A nonlinear-only strategy cannot be the matmul backend.
  EXPECT_FALSE(
      serve::Engine::create(tiny_model(), "PseudoSoftmax", "FP32").is_ok());
  // Unknown names surface as errors, not aborts.
  EXPECT_FALSE(serve::Engine::create(tiny_model(), "bogus", "FP32").is_ok());
  // FP32 has no hardware cost model: an accelerator is a build error.
  serve::Engine::Options accel_options;
  accel_options.max_batch = 1;
  accel_options.accelerator = accel::AcceleratorConfig{};
  const auto r =
      serve::Engine::create(tiny_model(), quant::StrategySpec::fp32(),
                            quant::StrategySpec::fp32(),
                            std::move(accel_options));
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.message().find("cost model"), std::string::npos) << r.message();
}

TEST(ServeEngine, FromSessionServesTheSessionConfiguration) {
  accel::AcceleratorConfig cfg;
  cfg.array_rows = cfg.array_cols = 8;
  auto session = Session::Builder()
                     .prepared(tiny_model())
                     .matmul("BBFP(4,2)")
                     .accelerator(cfg)
                     .build()
                     .expect("session");
  auto engine =
      serve::Engine::from_session(session, /*max_batch=*/2).expect("engine");
  EXPECT_EQ(engine.matmul_strategy().to_string(), "BBFP(4,2)");
  EXPECT_TRUE(engine.has_accelerator());
  EXPECT_EQ(engine.model_config().name, "serve-test");

  serve::Request req;
  req.prompt = {7, 8, 9};
  req.max_new_tokens = 5;
  engine.submit(req);
  const serve::Report report = engine.run();
  ASSERT_EQ(report.completed, 1);
  EXPECT_EQ(report.results[0].generated,
            serve::reference_decode(*tiny_model(),
                                    quant::spec_of("BBFP(4,2)"), req));
}

}  // namespace
}  // namespace bbal
