// Table V cost-model orderings and the pipeline cycle model.
#include "nl/unit_cost.hpp"

#include <gtest/gtest.h>

namespace bbal::nl {
namespace {

TEST(UnitCost, PipelineCyclesScaleWithVectorLength) {
  const NlUnitCost ours = bbal_nl_unit_cost(16);
  const double c128 = ours.softmax_cycles(128);
  const double c256 = ours.softmax_cycles(256);
  EXPECT_GT(c256, c128);
  // Pipelined: doubling n roughly doubles the variable part.
  EXPECT_NEAR(c256 - c128, 3.0 * 8.0, 1.0);
}

TEST(UnitCost, AdpOrderingMatchesTableFive) {
  const double pseudo = pseudo_softmax_cost().adp();
  const double ours = bbal_nl_unit_cost(16).adp();
  const double base2 = base2_softmax_cost().adp();
  EXPECT_LT(pseudo, ours);
  EXPECT_LT(ours, base2);
}

TEST(UnitCost, EdpOrderingMatchesTableFive) {
  const double pseudo = pseudo_softmax_cost().edp();
  const double ours = bbal_nl_unit_cost(16).edp();
  const double base2 = base2_softmax_cost().edp();
  EXPECT_LT(pseudo, ours);
  EXPECT_LT(ours, base2);
}

TEST(UnitCost, EfficiencyOrderingMatchesTableFive) {
  const double pseudo = pseudo_softmax_cost().efficiency();
  const double ours = bbal_nl_unit_cost(16).efficiency();
  const double base2 = base2_softmax_cost().efficiency();
  EXPECT_GT(ours, pseudo);       // ours wins (paper: 98.03 vs 85.98)
  EXPECT_GT(pseudo, base2 * 5);  // [33] is far behind (paper: 3.31)
}

TEST(UnitCost, HeadlineThirtyXOverHighPrecision) {
  // Paper: "nearly a 30x efficiency improvement over the high-precision
  // method [33]". Our model lands the same order of magnitude.
  const double ratio = bbal_nl_unit_cost(16).efficiency() /
                       base2_softmax_cost().efficiency();
  EXPECT_GT(ratio, 10.0);
  EXPECT_LT(ratio, 1000.0);
}

TEST(UnitCost, OnlyOursSupportsSilu) {
  EXPECT_TRUE(bbal_nl_unit_cost(16).supports_silu);
  EXPECT_FALSE(pseudo_softmax_cost().supports_silu);
  EXPECT_FALSE(base2_softmax_cost().supports_silu);
}

TEST(UnitCost, MoreLanesMoreAreaMoreThroughput) {
  const NlUnitCost small = bbal_nl_unit_cost(8);
  const NlUnitCost big = bbal_nl_unit_cost(32);
  EXPECT_GT(big.area_mm2, small.area_mm2);
  EXPECT_GT(big.throughput_gelems(), small.throughput_gelems());
}

TEST(UnitCost, PositiveSaneMagnitudes) {
  for (const NlUnitCost& c :
       {bbal_nl_unit_cost(16), pseudo_softmax_cost(), base2_softmax_cost()}) {
    EXPECT_GT(c.area_mm2, 0.0) << c.name;
    EXPECT_LT(c.area_mm2, 5.0) << c.name;
    EXPECT_GT(c.power_w, 0.0) << c.name;
    EXPECT_LT(c.power_w, 2.0) << c.name;
    EXPECT_GT(c.native_delay_ns(), 0.0) << c.name;
  }
}

}  // namespace
}  // namespace bbal::nl
