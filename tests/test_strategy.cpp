// StrategySpec parsing, round-tripping and error reporting; plus the
// BlockFormat::validate() migration off assert().
#include <gtest/gtest.h>

#include "bbal/registry.hpp"
#include "quant/strategy.hpp"

namespace bbal::quant {
namespace {

TEST(StrategySpec, EveryTableTwoStrategyRoundTrips) {
  for (const std::string& name : bbal::table2_strategies()) {
    const auto spec = StrategySpec::parse(name);
    ASSERT_TRUE(spec.is_ok()) << name << ": " << spec.message();
    // to_string must reproduce an equivalent spec...
    const auto again = StrategySpec::parse(spec.value().to_string());
    ASSERT_TRUE(again.is_ok()) << spec.value().to_string();
    EXPECT_EQ(spec.value(), again.value()) << name;
    // ...and the registry must agree the name is known.
    EXPECT_TRUE(BackendRegistry::instance().is_known(name)) << name;
  }
}

TEST(StrategySpec, CanonicalNamesMatchPaperSpelling) {
  EXPECT_EQ(spec_of("FP32").to_string(), "FP32");
  EXPECT_EQ(spec_of("INT8").to_string(), "INT8");
  EXPECT_EQ(spec_of("BFP4").to_string(), "BFP4");
  EXPECT_EQ(spec_of("BBFP(4,2)").to_string(), "BBFP(4,2)");
  EXPECT_EQ(spec_of("Oltron").to_string(), "Oltron");
  EXPECT_EQ(spec_of("omniquant").to_string(), "OmniQuant");
  EXPECT_EQ(spec_of("Oliver").to_string(), "Olive");  // seed-era alias
  EXPECT_EQ(spec_of("BBFP-LUT").to_string(), "BBFP-LUT(10,5)");
  EXPECT_EQ(spec_of("BFP-LUT(10)/softmax").to_string(),
            "BFP-LUT(10)/softmax");
  EXPECT_EQ(spec_of("PseudoSoftmax").to_string(), "PseudoSoftmax(3)");
  EXPECT_EQ(spec_of("Base2HighPrec").to_string(), "Base2HighPrec(27)");
}

TEST(StrategySpec, StructuredFields) {
  const StrategySpec bbfp = spec_of("BBFP(6,3)");
  EXPECT_EQ(bbfp.family, StrategyFamily::kBbfp);
  EXPECT_EQ(bbfp.mantissa_bits, 6);
  EXPECT_EQ(bbfp.overlap_bits, 3);
  EXPECT_TRUE(bbfp.is_block_format());
  EXPECT_TRUE(bbfp.is_matmul_strategy());
  EXPECT_FALSE(bbfp.is_nonlinear_strategy());
  const auto fmt = bbfp.block_format();
  ASSERT_TRUE(fmt.is_ok());
  EXPECT_TRUE(fmt.value().is_bbfp());
  EXPECT_EQ(fmt.value().shift_distance(), 3);

  const StrategySpec lut = spec_of("BBFP-LUT(10,5)/silu");
  EXPECT_EQ(lut.family, StrategyFamily::kLutBbfp);
  EXPECT_EQ(lut.nl_scope, NlScope::kSiluOnly);
  EXPECT_FALSE(lut.is_matmul_strategy());
  EXPECT_TRUE(lut.is_nonlinear_strategy());

  const StrategySpec int8 = spec_of("INT8");
  EXPECT_EQ(int8.family, StrategyFamily::kInt);
  EXPECT_EQ(int8.bits, 8);
  EXPECT_FALSE(int8.is_block_format());
  EXPECT_FALSE(int8.block_format().is_ok());
}

TEST(StrategySpec, UnknownNamesErrorInsteadOfCrashing) {
  for (const char* bad :
       {"bogus", "", "FP4-EXOTIC", "BBFP(4)", "BBFP(4,2", "BBFP(a,b)",
        "INTx", "INT1", "BFP", "BBFP(4,2)/gelu", "Oltron(3)", "FP32(1)",
        "BBFP(1,0)", "BBFP(4,4)", "BFP99",
        // Routing suffixes only apply to nonlinear strategies.
        "BBFP(4,2)/softmax", "BFP4/silu", "INT8/softmax"}) {
    const auto spec = StrategySpec::parse(bad);
    EXPECT_FALSE(spec.is_ok()) << "\"" << bad << "\" should not parse";
    EXPECT_FALSE(spec.message().empty()) << bad;
  }
}

TEST(StrategySpec, ParseValidatesBlockFormatRanges) {
  // Overlap must satisfy 0 <= o < m; the error comes from
  // BlockFormat::validate(), shared with the checked constructors.
  const auto spec = StrategySpec::parse("BBFP(4,7)");
  ASSERT_FALSE(spec.is_ok());
  EXPECT_NE(spec.message().find("overlap_bits"), std::string::npos)
      << spec.message();
}

TEST(BlockFormatValidate, ReturnsErrorsNotAsserts) {
  EXPECT_TRUE(BlockFormat::bfp(4).validate().is_ok());
  EXPECT_FALSE(BlockFormat::make_bfp(1).is_ok());
  EXPECT_FALSE(BlockFormat::make_bfp(30).is_ok());
  EXPECT_FALSE(BlockFormat::make_bbfp(4, 4).is_ok());
  EXPECT_FALSE(BlockFormat::make_bbfp(4, -1).is_ok());
  EXPECT_FALSE(BlockFormat::make_bfp(4, 0).is_ok());

  BlockFormat f = BlockFormat::bfp(4);
  f.exponent_bits = 0;
  EXPECT_FALSE(f.validate().is_ok());
}

TEST(StrategySpec, FromFormatRoundTrips) {
  const BlockFormat fmt = BlockFormat::bbfp(4, 2);
  const StrategySpec spec = StrategySpec::from_format(fmt);
  EXPECT_EQ(spec.to_string(), fmt.name());
  EXPECT_EQ(spec, spec_of(fmt.name()));
}

}  // namespace
}  // namespace bbal::quant
