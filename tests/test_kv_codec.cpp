// quant::KvFormat / quant::KvPageCodec: name parsing, packed row sizes,
// FP32 identity, block-format round trips pinned against quant::quantise
// (the codec adds a byte layout, never a second rounding rule), and the
// INT8 per-group error bound.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include "quant/block.hpp"
#include "quant/kv_codec.hpp"

namespace bbal::quant {
namespace {

std::vector<float> random_row(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> dist(0.0f, 2.0f);
  std::vector<float> row(static_cast<std::size_t>(n));
  for (float& x : row) x = dist(rng);
  // A few structured values: zeros and an outlier exercise the shared
  // exponent and the BBFP high-group flag.
  if (n >= 4) {
    row[0] = 0.0f;
    row[1] = -0.0f;
    row[2] = 37.5f;
    row[3] = -1e-4f;
  }
  return row;
}

TEST(KvFormat, ParsesTheStorableFamiliesAndRoundTrips) {
  for (const char* name :
       {"FP32", "INT8", "BFP4", "BFP8", "BBFP(4,2)", "BBFP(6,3)"}) {
    const auto parsed = KvFormat::parse(name);
    ASSERT_TRUE(parsed.is_ok()) << name << ": " << parsed.message();
    EXPECT_EQ(parsed.value().name(), name);
    const auto again = KvFormat::parse(parsed.value().name());
    ASSERT_TRUE(again.is_ok());
    EXPECT_TRUE(again.value() == parsed.value());
  }
  // Case-insensitive like the strategy grammar.
  EXPECT_TRUE(KvFormat::parse("bbfp(4,2)").is_ok());
}

TEST(KvFormat, RejectsNonStorableStrategies) {
  for (const char* name :
       {"FP16", "INT4", "Oltron", "Olive", "OmniQuant", "BBFP-LUT(10,5)",
        "PseudoSoftmax", "garbage", ""}) {
    const auto parsed = KvFormat::parse(name);
    EXPECT_FALSE(parsed.is_ok()) << name << " should not be a KV format";
    if (!parsed.is_ok()) {
      EXPECT_NE(parsed.message().find("not storable"), std::string::npos)
          << parsed.message();
    }
  }
}

TEST(KvPageCodec, PackedRowBytesMatchTheDocumentedLayout) {
  // d_model = 128 -> 4 groups of 32 (the Llama-7B zoo width).
  const int d = 128;
  const auto bytes = [d](const char* name) {
    return KvPageCodec(KvFormat::parse(name).expect(name), d)
        .encoded_row_bytes();
  };
  EXPECT_EQ(bytes("FP32"), 512u);       // 128 raw floats
  EXPECT_EQ(bytes("INT8"), 144u);       // 4 x (4B scale + 32 int8)
  EXPECT_EQ(bytes("BFP4"), 88u);        // 4 x (2B exp + 32*5 bits)
  EXPECT_EQ(bytes("BBFP(4,2)"), 104u);  // 4 x (2B exp + 32*6 bits)
  EXPECT_EQ(bytes("BBFP(6,3)"), 136u);  // 4 x (2B exp + 32*8 bits)
  // The headline format packs >= 4x denser than FP32 pages.
  EXPECT_LE(bytes("BBFP(4,2)") * 4, bytes("FP32"));

  // A short final group is sized exactly, not padded to a full block.
  const KvPageCodec ragged(KvFormat::parse("BFP4").expect("BFP4"), 40);
  EXPECT_EQ(ragged.encoded_row_bytes(), (2u + 20u) + (2u + 5u));
}

TEST(KvPageCodec, Fp32IsTheByteIdentity) {
  const int d = 37;  // deliberately not a multiple of the group size
  const KvPageCodec codec(KvFormat::fp32(), d);
  ASSERT_EQ(codec.encoded_row_bytes(), static_cast<std::size_t>(d) * 4);
  const std::vector<float> row = random_row(d, 11);
  std::vector<std::uint8_t> packed(codec.encoded_row_bytes());
  codec.encode_row(row, packed);
  EXPECT_EQ(std::memcmp(packed.data(), row.data(), packed.size()), 0);
  std::vector<float> out(static_cast<std::size_t>(d));
  codec.decode_row(packed, out);
  EXPECT_EQ(std::memcmp(out.data(), row.data(), packed.size()), 0);
}

TEST(KvPageCodec, BlockFormatsRoundTripExactlyAsQuantise) {
  for (const char* name : {"BFP4", "BFP8", "BBFP(4,2)", "BBFP(6,3)"}) {
    const KvFormat format = KvFormat::parse(name).expect(name);
    for (const int d : {7, 32, 40, 128}) {
      const KvPageCodec codec(format, d);
      const std::vector<float> row =
          random_row(d, static_cast<unsigned>(d) * 31u + 5u);
      std::vector<std::uint8_t> packed(codec.encoded_row_bytes());
      codec.encode_row(row, packed);
      std::vector<float> out(static_cast<std::size_t>(d));
      codec.decode_row(packed, out);
      // The reference: quantise() runs encode_block + decode over the same
      // 32-element grouping. Bit-equality, not a tolerance.
      std::vector<float> ref(static_cast<std::size_t>(d));
      quantise(std::span<const float>(row), format.block,
               std::span<float>(ref));
      for (int i = 0; i < d; ++i)
        ASSERT_EQ(out[static_cast<std::size_t>(i)],
                  ref[static_cast<std::size_t>(i)])
            << name << " d=" << d << " elem " << i;
    }
  }
}

TEST(KvPageCodec, Int8RoundTripHonoursThePerGroupBound) {
  const int d = 71;
  const KvPageCodec codec(KvFormat::int8(), d);
  const std::vector<float> row = random_row(d, 99);
  std::vector<std::uint8_t> packed(codec.encoded_row_bytes());
  codec.encode_row(row, packed);
  std::vector<float> out(static_cast<std::size_t>(d));
  codec.decode_row(packed, out);
  // Per 32-element group: scale = max|x| / 127, and round-to-nearest keeps
  // every element within half a step of its input.
  for (int start = 0; start < d; start += 32) {
    const int n = std::min(32, d - start);
    float max_abs = 0.0f;
    for (int i = 0; i < n; ++i)
      max_abs = std::max(max_abs,
                         std::fabs(row[static_cast<std::size_t>(start + i)]));
    const float step = max_abs / 127.0f;
    for (int i = 0; i < n; ++i) {
      const std::size_t at = static_cast<std::size_t>(start + i);
      EXPECT_LE(std::fabs(out[at] - row[at]), 0.5f * step * 1.0001f)
          << "elem " << at;
    }
  }
}

TEST(KvPageCodec, AllZeroRowsEncodeAndDecodeToZero) {
  for (const char* name : {"FP32", "INT8", "BFP4", "BBFP(4,2)"}) {
    const KvPageCodec codec(KvFormat::parse(name).expect(name), 33);
    const std::vector<float> row(33, 0.0f);
    std::vector<std::uint8_t> packed(codec.encoded_row_bytes());
    codec.encode_row(row, packed);
    std::vector<float> out(33, 1.0f);
    codec.decode_row(packed, out);
    for (const float x : out) EXPECT_EQ(x, 0.0f) << name;
  }
}

}  // namespace
}  // namespace bbal::quant
