// Strong encode properties via exhaustive enumeration: for the Eq. (9)
// strategy the encoder behaves as round-to-nearest onto the format's
// representable grid (up to the documented top-of-window saturation), and
// the workload fusion flags are wired correctly.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "accel/simulator.hpp"
#include "accel/workload.hpp"
#include "quant/block.hpp"

namespace bbal::quant {
namespace {

/// All representable magnitudes of a BBFP(m,o) block with shared exponent
/// E_s: low group m' * 2^(E_s - m + 1), high group m' * 2^(E_s - m + 1 + d).
std::vector<double> representable_grid(const BlockFormat& fmt, int es) {
  std::set<double> grid;
  const int m = fmt.mantissa_bits;
  const int d = fmt.shift_distance();
  for (std::uint32_t mant = 0; mant < (1u << m); ++mant) {
    grid.insert(std::ldexp(static_cast<double>(mant), es - m + 1));
    if (fmt.is_bbfp())
      grid.insert(std::ldexp(static_cast<double>(mant), es - m + 1 + d));
  }
  return {grid.begin(), grid.end()};
}

double nearest(const std::vector<double>& grid, double x) {
  double best = grid.front();
  for (const double g : grid)
    if (std::fabs(g - x) < std::fabs(best - x)) best = g;
  return best;
}

class GridOptimality : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GridOptimality, EncodeIsNearestGridValueForTwoElementBlocks) {
  // Fix the block max (which pins E_s) and sweep the second element over a
  // fine lattice: its decode must equal the nearest representable value
  // (ties and the top-of-window saturation get half-step slack).
  const auto [m, o] = GetParam();
  const BlockFormat fmt = BlockFormat::bbfp(m, o, 2);
  const double anchor = 1.75;  // e = 0 -> E_s = -(m - o) + 0
  const int es = 0 - fmt.shift_distance();
  const std::vector<double> grid = representable_grid(fmt, es);
  const double step_low = std::ldexp(1.0, es - m + 1);

  for (int i = 1; i <= 160; ++i) {
    const double x = static_cast<double>(i) / 160.0 * 1.6;
    const std::vector<double> block = {anchor, x};
    const EncodedBlock enc = encode_block(block, fmt);
    ASSERT_EQ(enc.shared_exponent, es) << "x=" << x;
    const double got = enc.decode(1);
    const double ideal = nearest(grid, x);
    // Nearest-grid up to one element step: FP16 pre-rounding (p = 11)
    // creates double-rounding ties that can land one step away from the
    // true nearest when the grid step approaches the source ulp (m = 8).
    const double d_lift = enc.elems[1].flag ? fmt.shift_distance() : 0;
    const double step_elem = std::ldexp(step_low, static_cast<int>(d_lift));
    EXPECT_NEAR(got, ideal, step_elem + 1e-12) << fmt.name() << " x=" << x;
    // Absolute accuracy: half a step in the bulk, a full step at window
    // boundaries (the sticky saturation just below a group's top code —
    // e.g. 0.49 in BBFP(3,1) rounds up to the unreachable code 8 and
    // saturates to 7), plus half a source ulp.
    EXPECT_LE(std::fabs(got - x),
              step_elem + std::ldexp(std::fabs(x) + 2.0, -12) + 1e-12)
        << fmt.name() << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Formats, GridOptimality,
    ::testing::Values(std::pair{3, 1}, std::pair{4, 2}, std::pair{4, 3},
                      std::pair{6, 3}, std::pair{8, 4}),
    [](const ::testing::TestParamInfo<std::pair<int, int>>& info) {
      return "m" + std::to_string(info.param.first) + "o" +
             std::to_string(info.param.second);
    });

TEST(GridCoverage, BbfpGridStrictlyContainsBfpGrid) {
  // BBFP's representable set extends BFP's by the lifted high group.
  const BlockFormat bbfp = BlockFormat::bbfp(4, 2, 2);
  const BlockFormat bfp = BlockFormat::bfp(4, 2);
  const auto big = representable_grid(bbfp, 0);
  const auto small = representable_grid(bfp, 0);
  EXPECT_GT(big.size(), small.size());
  for (const double g : small)
    EXPECT_NE(std::find(big.begin(), big.end(), g), big.end()) << g;
}

}  // namespace
}  // namespace bbal::quant

namespace bbal::accel {
namespace {

TEST(WorkloadFusion, AttentionGemmsCarryFusionFlags) {
  llm::ModelConfig cfg;
  cfg.d_model = 64;
  cfg.n_layers = 1;
  cfg.n_heads = 2;
  cfg.d_ff = 96;
  for (const auto& gemms :
       {prefill_gemms(cfg, 64), decode_step_gemms(cfg, 64)}) {
    int fused_out = 0;
    int fused_act = 0;
    for (const GemmShape& g : gemms) {
      if (g.output_on_chip) {
        ++fused_out;
        EXPECT_EQ(g.tag, "attn_scores");
      }
      if (g.acts_on_chip) {
        ++fused_act;
        EXPECT_EQ(g.tag, "attn_context");
      }
    }
    EXPECT_EQ(fused_out, cfg.n_layers);
    EXPECT_EQ(fused_act, cfg.n_layers);
  }
}

TEST(WorkloadFusion, FusionRemovesDramTraffic) {
  AcceleratorConfig cfg;
  cfg.strategy = "BBFP(4,2)";
  GemmShape fused{256, 64, 256, "attn_scores", true, false};
  GemmShape unfused = fused;
  unfused.output_on_chip = false;
  EXPECT_LT(simulate_gemm(cfg, fused).dram_bytes,
            simulate_gemm(cfg, unfused).dram_bytes);
}

TEST(WorkloadFusion, NlOpsScaleWithContext) {
  llm::ModelConfig cfg;
  cfg.d_model = 64;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 96;
  const auto a = decode_step_nl_ops(cfg, 256);
  const auto b = decode_step_nl_ops(cfg, 1024);
  EXPECT_EQ(a[0].elements() * 4, b[0].elements());  // softmax scales w/ ctx
  EXPECT_EQ(a[1].elements(), b[1].elements());      // SiLU does not
}

}  // namespace
}  // namespace bbal::accel
