// serve::PagedKVPool: page alloc/free/refcounting, copy-on-write fork on
// divergence, prompt-prefix hit accounting, exhaustion as a Status error
// (never an abort) — and the subsystem's bit-identity anchor: a decoder
// stepping through a PagedKVView produces float-identical logits to the
// same decoder stepping through a contiguous llm::KVCache. Pages store
// packed bytes in a quant::KvFormat (FP32 identity by default), so
// sharing is asserted through refcounts and decoded values, never span
// addresses, and the quantised formats get their own CoW / prefix tests.
#include <gtest/gtest.h>

#include <vector>

#include "bbal/registry.hpp"
#include "bbal/session.hpp"
#include "llm/decoder.hpp"
#include "quant/block.hpp"
#include "serve/paged_kv.hpp"

namespace bbal {
namespace {

using serve::PagedKVPool;
using serve::PagedKVView;

llm::ModelConfig tiny_config() {
  llm::ModelConfig cfg;
  cfg.name = "paged-kv-test";
  cfg.vocab = 64;
  cfg.d_model = 8;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 12;
  cfg.seed = 7;
  return cfg;
}

PagedKVPool::Options small_pool(int page_tokens, int max_pages) {
  PagedKVPool::Options options;
  options.page_tokens = page_tokens;
  options.max_pages = max_pages;
  return options;
}

/// Append one synthetic position (distinct per (seq, position, layer)) so
/// tests can recognise rows later.
void append_position(PagedKVPool& pool, PagedKVPool::SeqId id, float tag) {
  ASSERT_TRUE(pool.reserve_next(id).is_ok());
  PagedKVView view(pool, id);
  const int d = tiny_config().d_model;
  const int pos = view.length();
  const float base = tag + static_cast<float>(pos);
  for (int l = 0; l < tiny_config().n_layers; ++l) {
    std::vector<float> k(static_cast<std::size_t>(d),
                         base + 0.25f * static_cast<float>(l));
    std::vector<float> v(static_cast<std::size_t>(d),
                         -base - 0.25f * static_cast<float>(l));
    view.append(l, pos, k, v);
  }
}

/// Append `count` positions as ONE chunk through the layer-major protocol
/// Decoder::step_groups uses: every new position at layer 0, then layer 1,
/// ... with positions committing to length() as the last layer's rows land
/// in position order. Exercises reserve(id, count) + position-explicit
/// append exactly the way a prefill chunk does.
void append_chunk(PagedKVPool& pool, PagedKVPool::SeqId id, int count,
                  float tag) {
  ASSERT_TRUE(pool.reserve(id, count).is_ok());
  PagedKVView view(pool, id);
  const int d = tiny_config().d_model;
  const int base_pos = view.length();
  for (int l = 0; l < tiny_config().n_layers; ++l) {
    for (int i = 0; i < count; ++i) {
      const float base = tag + static_cast<float>(base_pos + i);
      std::vector<float> k(static_cast<std::size_t>(d),
                           base + 0.25f * static_cast<float>(l));
      std::vector<float> v(static_cast<std::size_t>(d),
                           -base - 0.25f * static_cast<float>(l));
      view.append(l, base_pos + i, k, v);
    }
  }
}

TEST(PagedKVPool, AllocatesFreesAndRefcounts) {
  PagedKVPool pool(tiny_config(), small_pool(4, 8));
  EXPECT_EQ(pool.page_bytes(), 2 * 4 * 2 * 8 * 4);  // layers*slots*kv*d*f32

  const auto a = pool.create();
  EXPECT_EQ(pool.length(a), 0);
  EXPECT_EQ(pool.stats().pages_in_use, 0);  // no pages until reserve

  for (int i = 0; i < 5; ++i) append_position(pool, a, 100.0f);
  EXPECT_EQ(pool.length(a), 5);
  EXPECT_EQ(pool.stats().pages_allocated, 2);  // 5 positions, 4 per page
  EXPECT_EQ(pool.stats().pages_in_use, 2);
  EXPECT_EQ(pool.page_refcount(a, 0), 1);

  const auto b = pool.create();
  append_position(pool, b, 200.0f);
  EXPECT_EQ(pool.stats().pages_in_use, 3);

  pool.release(a);
  EXPECT_EQ(pool.stats().pages_in_use, 1);
  pool.release(b);
  EXPECT_EQ(pool.stats().pages_in_use, 0);
  EXPECT_EQ(pool.stats().pages_in_use_peak, 3);
  // Freed pages are reused, not re-allocated storage.
  const auto c = pool.create();
  append_position(pool, c, 300.0f);
  EXPECT_EQ(pool.stats().pages_allocated, 4);
}

TEST(PagedKVPool, ForkSharesPagesAndCopiesOnDivergence) {
  PagedKVPool pool(tiny_config(), small_pool(4, 8));
  const auto a = pool.create();
  for (int i = 0; i < 6; ++i) append_position(pool, a, 100.0f);

  const auto b = pool.fork(a);
  EXPECT_EQ(pool.length(b), 6);
  EXPECT_EQ(pool.stats().pages_in_use, 2);  // all pages shared
  EXPECT_EQ(pool.page_refcount(a, 5), 2);

  // Shared tail reads decode one refcounted physical page: both views see
  // identical rows (each through its own decode cache — addresses are an
  // implementation detail, the shared page is what refcounts prove).
  const PagedKVView va(pool, a);
  const PagedKVView vb(pool, b);
  {
    const auto ka = va.k_at(1, 5);
    const auto kb = vb.k_at(1, 5);
    ASSERT_EQ(ka.size(), kb.size());
    for (std::size_t i = 0; i < ka.size(); ++i) EXPECT_EQ(ka[i], kb[i]);
  }
  const float before = va.k_at(0, 4).front();

  // a appends -> a copies the shared tail page (copy-on-write)...
  append_position(pool, a, 111.0f);
  EXPECT_EQ(pool.stats().page_copies, 1);
  EXPECT_EQ(pool.page_refcount(a, 4), 1);
  EXPECT_EQ(pool.page_refcount(b, 4), 1);
  // ...b's view of the old rows is untouched, and the copied prefix of
  // the diverged page matches bit for bit.
  EXPECT_EQ(vb.k_at(0, 4).front(), before);
  EXPECT_EQ(va.k_at(0, 4).front(), before);

  // b appends next: its tail is now private again, no second copy.
  append_position(pool, b, 222.0f);
  EXPECT_EQ(pool.stats().page_copies, 1);
  EXPECT_NE(va.k_at(0, 6).front(), vb.k_at(0, 6).front());
}

TEST(PagedKVPool, PrefixHitsAreAccountedAndCapped) {
  PagedKVPool pool(tiny_config(), small_pool(4, 16));
  std::vector<int> prompt = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};

  const auto leader = pool.create(prompt);
  EXPECT_EQ(pool.shared_length(leader), 0);  // nothing registered yet
  for (int i = 0; i < static_cast<int>(prompt.size()); ++i)
    append_position(pool, leader, 100.0f);
  pool.register_prefix(leader, prompt);
  // 10 tokens -> 2 full pages registered, referenced by the registry.
  EXPECT_EQ(pool.page_refcount(leader, 0), 2);

  EXPECT_EQ(pool.probe_prefix_tokens(prompt), 8);
  const auto follower = pool.create(prompt);
  EXPECT_EQ(pool.shared_length(follower), 8);
  EXPECT_EQ(pool.length(follower), 8);
  EXPECT_EQ(pool.stats().prefix_hit_tokens, 8);
  EXPECT_EQ(pool.stats().prefix_lookup_tokens, 20);  // both creates counted
  // Shared positions read the same physical page (refcount counts leader,
  // follower and the registry), decoding to identical rows in each view.
  const PagedKVView vl(pool, leader);
  const PagedKVView vf(pool, follower);
  EXPECT_EQ(pool.page_refcount(follower, 3), 3);
  {
    const auto kl = vl.k_at(0, 3);
    const auto kf = vf.k_at(0, 3);
    ASSERT_EQ(kl.size(), kf.size());
    for (std::size_t i = 0; i < kl.size(); ++i) EXPECT_EQ(kl[i], kf[i]);
  }

  // A prompt that is exactly the registered pages must still recompute
  // its final position: the cap keeps sharing strictly below prompt size.
  const std::vector<int> exact = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(pool.probe_prefix_tokens(exact), 4);

  // Divergent second page: only the first page matches.
  std::vector<int> other = prompt;
  other[5] = 99;
  EXPECT_EQ(pool.probe_prefix_tokens(other), 4);

  // The registry keeps prompt pages alive past release...
  pool.release(leader);
  EXPECT_EQ(pool.page_refcount(follower, 0), 2);
  // ...until eviction drops the registry's references. The follower still
  // holds the pages, so nothing is freed — pages_evicted counts only
  // pages actually returned to the free list.
  pool.drop_registered_prefixes();
  EXPECT_EQ(pool.page_refcount(follower, 0), 1);
  EXPECT_EQ(pool.stats().pages_evicted, 0);
}

TEST(PagedKVPool, ExhaustionIsAStatusErrorAndEvictionRecovers) {
  PagedKVPool pool(tiny_config(), small_pool(4, 2));
  const auto a = pool.create();
  for (int i = 0; i < 8; ++i) append_position(pool, a, 100.0f);

  // Pool full: the next page is a reportable error, not an abort.
  const Status overflow = pool.reserve_next(a);
  ASSERT_FALSE(overflow.is_ok());
  EXPECT_NE(overflow.message().find("exhausted"), std::string::npos)
      << overflow.message();
  EXPECT_EQ(pool.length(a), 8);  // the failed reserve changed nothing

  // Registered prefixes are reclaimable: release the sequence, keep the
  // registry reference, and a new sequence evicts its way to a page.
  const std::vector<int> prompt = {1, 2, 3, 4, 5, 6, 7, 8};
  pool.register_prefix(a, prompt);
  pool.release(a);
  EXPECT_EQ(pool.stats().pages_in_use, 2);  // registry still holds both
  const auto b = pool.create();
  ASSERT_TRUE(pool.reserve_next(b).is_ok());
  EXPECT_EQ(pool.stats().pages_evicted, 2);
  EXPECT_EQ(pool.stats().pages_in_use, 1);
}

TEST(PagedKVPool, ChunkReserveCopiesSharedTailAndCrossesPages) {
  PagedKVPool pool(tiny_config(), small_pool(4, 8));
  const auto a = pool.create();
  for (int i = 0; i < 6; ++i) append_position(pool, a, 100.0f);
  const auto b = pool.fork(a);
  EXPECT_EQ(pool.page_refcount(a, 5), 2);

  const PagedKVView vb(pool, b);
  const float before = vb.k_at(0, 5).front();

  // One reserve for a 5-position chunk: copy-on-write the shared half-full
  // tail page first, then allocate a fresh page for the boundary crossing
  // (positions 8..10) — a prefill chunk spanning a page edge.
  append_chunk(pool, a, 5, 111.0f);
  EXPECT_EQ(pool.length(a), 11);
  EXPECT_EQ(pool.stats().page_copies, 1);
  EXPECT_EQ(pool.page_refcount(a, 5), 1);
  // b's view of the shared rows is untouched, and every chunk position
  // reads back from whichever page it landed on.
  EXPECT_EQ(vb.k_at(0, 5).front(), before);
  EXPECT_EQ(pool.length(b), 6);
  const PagedKVView va(pool, a);
  for (int pos = 6; pos < 11; ++pos)
    EXPECT_EQ(va.k_at(0, pos).front(), 111.0f + static_cast<float>(pos))
        << "chunk position " << pos;
}

TEST(PagedKVPool, ChunkReserveRollsBackAllocationsOnExhaustion) {
  PagedKVPool pool(tiny_config(), small_pool(4, 3));
  const auto a = pool.create();
  for (int i = 0; i < 4; ++i) append_position(pool, a, 100.0f);
  // 9 more positions need 3 fresh pages; only 2 exist. The reserve fails
  // as a Status, and the pages it DID allocate are rolled back — a failed
  // chunk reservation must not leak capacity.
  const Status overflow = pool.reserve(a, 9);
  ASSERT_FALSE(overflow.is_ok());
  EXPECT_EQ(pool.length(a), 4);
  EXPECT_EQ(pool.stats().pages_in_use, 1);
  // The rolled-back pages are immediately reusable by a chunk that fits.
  append_chunk(pool, a, 8, 200.0f);
  EXPECT_EQ(pool.length(a), 12);
  EXPECT_EQ(pool.stats().pages_in_use, 3);
}

TEST(PagedKVPool, CowFailureDuringReserveLeavesSequencesIntact) {
  PagedKVPool pool(tiny_config(), small_pool(4, 1));
  const auto a = pool.create();
  append_position(pool, a, 100.0f);
  append_position(pool, a, 100.0f);
  const auto b = pool.fork(a);
  // Appending into the shared tail needs a copy, and the pool has no page
  // for it: the reserve is an error before any mutation happens.
  const Status st = pool.reserve(a, 1);
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(pool.stats().page_copies, 0);
  EXPECT_EQ(pool.length(a), 2);
  EXPECT_EQ(pool.length(b), 2);
  const PagedKVView va(pool, a);
  EXPECT_EQ(va.k_at(0, 1).front(), 101.0f);
}

TEST(PagedKVPool, PackedPageBytesShrinkWithTheFormat) {
  const auto bytes_for = [](const char* name) {
    PagedKVPool::Options options = small_pool(4, 8);
    options.kv_format = quant::KvFormat::parse(name).expect(name);
    return PagedKVPool(tiny_config(), options).page_bytes();
  };
  const std::int64_t fp32 = bytes_for("FP32");
  EXPECT_EQ(fp32, 2 * 4 * 2 * 8 * 4);  // identical to the float layout
  // d_model = 8 -> one short group per row: BBFP(4,2) is 2 + 6 = 8 bytes
  // against 32 raw — exactly the 4x floor the frontier bench gates.
  EXPECT_LE(bytes_for("BBFP(4,2)") * 4, fp32);
  EXPECT_LE(bytes_for("BFP4") * 4, fp32);
  EXPECT_LT(bytes_for("INT8"), fp32 / 2);
}

TEST(PagedKVView, QuantisedAppendsDecodeToTheQuantiseReference) {
  PagedKVPool::Options options = small_pool(4, 8);
  options.kv_format = quant::KvFormat::parse("BBFP(4,2)").expect("format");
  const llm::ModelConfig cfg = tiny_config();
  PagedKVPool pool(cfg, options);
  const auto seq = pool.create();
  PagedKVView writer(pool, seq);

  std::vector<std::vector<float>> expected_k;  // [pos * n_layers + layer]
  for (int pos = 0; pos < 6; ++pos) {
    ASSERT_TRUE(pool.reserve_next(seq).is_ok());
    for (int l = 0; l < cfg.n_layers; ++l) {
      std::vector<float> k(static_cast<std::size_t>(cfg.d_model));
      std::vector<float> v(static_cast<std::size_t>(cfg.d_model));
      for (int i = 0; i < cfg.d_model; ++i) {
        k[static_cast<std::size_t>(i)] =
            0.37f * static_cast<float>(pos + 1) * static_cast<float>(i - 3) +
            0.01f * static_cast<float>(l);
        v[static_cast<std::size_t>(i)] =
            -1.3f * static_cast<float>(pos + 1) + 0.05f * static_cast<float>(i);
      }
      writer.append(l, pos, k, v);
      // The reference the codec must reproduce: quantise() over doubles,
      // narrowed to float exactly as the decode path narrows.
      const std::vector<double> wide(k.begin(), k.end());
      const std::vector<double> quantised =
          quant::quantise(std::span<const double>(wide),
                          options.kv_format.block);
      expected_k.emplace_back(quantised.begin(), quantised.end());
    }
  }
  // Both the appending view (same-step cache) and a fresh reader (decode
  // from packed storage) must see exactly the quantise() reference.
  const PagedKVView reader(pool, seq);
  for (int pos = 0; pos < 6; ++pos) {
    for (int l = 0; l < cfg.n_layers; ++l) {
      const auto& ref =
          expected_k[static_cast<std::size_t>(pos * cfg.n_layers + l)];
      const auto from_writer = writer.k_at(l, pos);
      const auto from_reader = reader.k_at(l, pos);
      for (int i = 0; i < cfg.d_model; ++i) {
        ASSERT_EQ(from_writer[static_cast<std::size_t>(i)],
                  ref[static_cast<std::size_t>(i)])
            << "writer pos " << pos << " layer " << l << " elem " << i;
        ASSERT_EQ(from_reader[static_cast<std::size_t>(i)],
                  ref[static_cast<std::size_t>(i)])
            << "reader pos " << pos << " layer " << l << " elem " << i;
      }
    }
  }
}

TEST(PagedKVPool, CopyOnWriteForksOverEncodedPages) {
  PagedKVPool::Options options = small_pool(4, 8);
  options.kv_format = quant::KvFormat::parse("BFP4").expect("format");
  PagedKVPool pool(tiny_config(), options);
  const auto a = pool.create();
  for (int i = 0; i < 6; ++i) append_position(pool, a, 100.0f);

  const auto b = pool.fork(a);
  const PagedKVView vb(pool, b);
  const std::vector<float> shared_row(vb.k_at(1, 4).begin(),
                                      vb.k_at(1, 4).end());

  // a diverges: the shared tail page is copied as opaque encoded bytes, so
  // b reads back bit-identical quantised rows afterwards.
  append_position(pool, a, 111.0f);
  EXPECT_EQ(pool.stats().page_copies, 1);
  const auto after = vb.k_at(1, 4);
  ASSERT_EQ(after.size(), shared_row.size());
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_EQ(after[i], shared_row[i]);
  // The diverged position differs between the sequences (different tags).
  append_position(pool, b, 222.0f);
  const PagedKVView va(pool, a);
  EXPECT_NE(va.k_at(0, 6).front(), vb.k_at(0, 6).front());
}

TEST(PagedKVPool, PrefixSharingVerifiesTokensOnQuantisedPages) {
  PagedKVPool::Options options = small_pool(4, 16);
  options.kv_format = quant::KvFormat::parse("BBFP(6,3)").expect("format");
  PagedKVPool pool(tiny_config(), options);
  const std::vector<int> prompt = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};

  const auto leader = pool.create(prompt);
  for (int i = 0; i < static_cast<int>(prompt.size()); ++i)
    append_position(pool, leader, 100.0f);
  pool.register_prefix(leader, prompt);

  // Token verification is independent of the page encoding: a matching
  // prompt attaches the quantised pages, a diverging one is rejected.
  const auto follower = pool.create(prompt);
  EXPECT_EQ(pool.shared_length(follower), 8);
  std::vector<int> other = prompt;
  other[2] = 42;
  EXPECT_EQ(pool.probe_prefix_tokens(other), 0);

  // The follower decodes the shared quantised rows to the leader's values.
  const PagedKVView vl(pool, leader);
  const PagedKVView vf(pool, follower);
  for (const int pos : {0, 3, 7}) {
    const auto kl = vl.k_at(1, pos);
    const auto kf = vf.k_at(1, pos);
    ASSERT_EQ(kl.size(), kf.size());
    for (std::size_t i = 0; i < kl.size(); ++i)
      EXPECT_EQ(kl[i], kf[i]) << "pos " << pos << " elem " << i;
  }
}

// --- truncate(): speculative decoding's rejection rollback ---

TEST(PagedKVPool, TruncateFreesBoundaryPagesAndKeepsMidPageTails) {
  PagedKVPool pool(tiny_config(), small_pool(4, 8));
  const auto a = pool.create();
  for (int i = 0; i < 10; ++i) append_position(pool, a, 100.0f);
  EXPECT_EQ(pool.stats().pages_in_use, 3);  // 4 + 4 + 2

  // Mid-page rollback keeps the partially-filled tail page: its dead
  // slots are overwritten before any read, so nothing is freed yet.
  pool.truncate(a, 9);
  EXPECT_EQ(pool.length(a), 9);
  EXPECT_EQ(pool.stats().pages_in_use, 3);

  // Rolling back to an exact page boundary frees the emptied tail page.
  pool.truncate(a, 8);
  EXPECT_EQ(pool.length(a), 8);
  EXPECT_EQ(pool.stats().pages_in_use, 2);

  // A deep rollback crosses pages: mid-page again, one page freed.
  pool.truncate(a, 3);
  EXPECT_EQ(pool.length(a), 3);
  EXPECT_EQ(pool.stats().pages_in_use, 1);

  // n > length is a no-op — truncate never grows a sequence.
  pool.truncate(a, 7);
  EXPECT_EQ(pool.length(a), 3);

  // Survivors are untouched bytes, and truncate-to-empty frees everything.
  const PagedKVView va(pool, a);
  for (int pos = 0; pos < 3; ++pos)
    EXPECT_EQ(va.k_at(0, pos).front(), 100.0f + static_cast<float>(pos));
  pool.truncate(a, 0);
  EXPECT_EQ(pool.length(a), 0);
  EXPECT_EQ(pool.stats().pages_in_use, 0);
}

TEST(PagedKVPool, TruncateUnrefsSharedPagesWithoutFreeingThem) {
  // The speculative engine forks a draft off the target and rolls the
  // fork back (or the target, past a rejection) while the other sequence
  // still holds the pages: rollback must drop references, never storage
  // another sequence can read.
  PagedKVPool pool(tiny_config(), small_pool(4, 8));
  const auto a = pool.create();
  for (int i = 0; i < 6; ++i) append_position(pool, a, 100.0f);
  const auto b = pool.fork(a);
  EXPECT_EQ(pool.page_refcount(a, 5), 2);

  // The follower rolls back past the shared tail page: a keeps it.
  pool.truncate(b, 4);
  EXPECT_EQ(pool.length(b), 4);
  EXPECT_EQ(pool.page_refcount(a, 5), 1);
  EXPECT_EQ(pool.page_refcount(a, 0), 2);  // first page still shared
  EXPECT_EQ(pool.stats().pages_in_use, 2);
  const PagedKVView va(pool, a);
  for (int pos = 0; pos < 6; ++pos)
    EXPECT_EQ(va.k_at(0, pos).front(), 100.0f + static_cast<float>(pos));

  // b re-appends its own position 4: a fresh tail, a's rows untouched.
  append_position(pool, b, 222.0f);
  const PagedKVView vb(pool, b);
  EXPECT_EQ(vb.k_at(0, 4).front(), 222.0f + 4.0f);
  EXPECT_EQ(va.k_at(0, 4).front(), 100.0f + 4.0f);

  // Rolling b back to nothing unrefs the shared first page too — freed
  // only when a releases it as well.
  pool.truncate(b, 0);
  EXPECT_EQ(pool.page_refcount(a, 0), 1);
  EXPECT_EQ(pool.stats().pages_in_use, 2);
  pool.release(a);
  EXPECT_EQ(pool.stats().pages_in_use, 0);
}

TEST(PagedKVPool, TruncateFreesCopiedPagesAfterDivergence) {
  PagedKVPool pool(tiny_config(), small_pool(4, 8));
  const auto a = pool.create();
  for (int i = 0; i < 6; ++i) append_position(pool, a, 100.0f);
  const auto b = pool.fork(a);

  // b diverges — copy-on-write gives b a private tail page...
  append_position(pool, b, 222.0f);
  EXPECT_EQ(pool.stats().page_copies, 1);
  EXPECT_EQ(pool.stats().pages_in_use, 3);
  EXPECT_EQ(pool.page_refcount(b, 4), 1);

  // ...and rolling b back past the copy returns the private page to the
  // free list while a's original tail stays resident.
  pool.truncate(b, 4);
  EXPECT_EQ(pool.stats().pages_in_use, 2);
  EXPECT_EQ(pool.page_refcount(a, 4), 1);
  const PagedKVView va(pool, a);
  EXPECT_EQ(va.k_at(0, 5).front(), 100.0f + 5.0f);
}

TEST(PagedKVPool, TruncateThenAppendReusesSlotsDeterministically) {
  // The free list is LIFO, so a rollback-then-redraft cycle — exactly the
  // speculation loop — replays onto the same physical pages with the same
  // stats on every run, and stale slots above the cut are overwritten
  // before any read.
  const auto run_cycle = [](float redraft_tag) {
    PagedKVPool pool(tiny_config(), small_pool(4, 4));
    const auto a = pool.create();
    for (int i = 0; i < 10; ++i) append_position(pool, a, 100.0f);
    pool.truncate(a, 5);
    append_chunk(pool, a, 5, redraft_tag);
    PagedKVView view(pool, a);
    std::vector<float> rows;
    for (int pos = 0; pos < 10; ++pos)
      rows.push_back(view.k_at(1, pos).front());
    return std::tuple(rows, pool.stats().pages_allocated,
                      pool.stats().pages_in_use);
  };

  const auto [rows, allocated, in_use] = run_cycle(300.0f);
  for (int pos = 0; pos < 5; ++pos)
    EXPECT_EQ(rows[static_cast<std::size_t>(pos)],
              100.0f + static_cast<float>(pos) + 0.25f);
  for (int pos = 5; pos < 10; ++pos)
    EXPECT_EQ(rows[static_cast<std::size_t>(pos)],
              300.0f + static_cast<float>(pos) + 0.25f);
  EXPECT_EQ(in_use, 3);

  // Same cycle, same page traffic: the replay is deterministic.
  const auto [rows2, allocated2, in_use2] = run_cycle(300.0f);
  EXPECT_EQ(rows2, rows);
  EXPECT_EQ(allocated2, allocated);
  EXPECT_EQ(in_use2, in_use);
}

TEST(PagedKVPool, TruncateOfForkSourcePastSharedTailNeverLeaksPages) {
  // The preemption path truncates/releases the SOURCE of a fork while the
  // speculative draft still shares its tail — the mirror image of
  // TruncateUnrefsSharedPages, where the fork rolls back. Every page must
  // come back through the refcount: after both sequences are gone,
  // pages_in_use is exactly zero (a silent refcount leak here would bleed
  // pool capacity on every preempted speculative flight).
  PagedKVPool pool(tiny_config(), small_pool(4, 8));
  const auto a = pool.create();
  for (int i = 0; i < 6; ++i) append_position(pool, a, 100.0f);
  const auto b = pool.fork(a);
  // Grow a's page table past its length (a reservation no append filled —
  // the engine's failure paths leave exactly this state behind).
  ASSERT_TRUE(pool.reserve(a, 3).is_ok());
  EXPECT_EQ(pool.stats().pages_in_use, 4);  // 2 shared + CoW copy + grown

  // a rolls back past the shared tail: the grown page and a's private CoW
  // copy return to the free list; the pages b still references survive.
  pool.truncate(a, 4);
  EXPECT_EQ(pool.length(a), 4);
  EXPECT_EQ(pool.stats().pages_in_use, 2);  // page0 (shared) + b's tail
  EXPECT_EQ(pool.page_refcount(b, 5), 1);   // b now sole owner of its tail
  const PagedKVView vb(pool, b);
  for (int pos = 0; pos < 6; ++pos)
    EXPECT_EQ(vb.k_at(0, pos).front(), 100.0f + static_cast<float>(pos));

  pool.release(a);
  pool.release(b);
  EXPECT_EQ(pool.stats().pages_in_use, 0);
  EXPECT_EQ(pool.stats().pages_evicted, 0);
}

TEST(PagedKVPool, ChunkReserveFailureAfterCowKeepsRefcountsBalanced) {
  // The one reserve() path the rollback does NOT undo: the copy-on-write
  // of a shared mid-page tail succeeds, then a boundary-page allocation
  // fails. The sequence legitimately keeps its private copy (same rows,
  // new physical page) — but the accounting must stay exact: the old
  // shared tail's reference was handed to the copy, nothing double-frees,
  // and releasing both sequences drains the pool to zero.
  PagedKVPool pool(tiny_config(), small_pool(4, 3));
  const auto a = pool.create();
  for (int i = 0; i < 6; ++i) append_position(pool, a, 100.0f);
  const auto b = pool.fork(a);  // both pages shared, 1 page free

  // 5 more positions: the CoW copy consumes the last free page, then the
  // boundary crossing (positions 8..10) has nowhere to go.
  const Status st = pool.reserve(a, 5);
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(pool.stats().page_copies, 1);
  EXPECT_EQ(pool.stats().pages_in_use, 3);
  EXPECT_EQ(pool.length(a), 6);  // no position was committed
  EXPECT_EQ(pool.page_refcount(a, 5), 1);  // a's tail is now the copy
  EXPECT_EQ(pool.page_refcount(b, 5), 1);  // b kept the original
  // Both sequences still decode their six positions bit-identically.
  const PagedKVView va(pool, a);
  const PagedKVView vb(pool, b);
  for (int pos = 0; pos < 6; ++pos) {
    EXPECT_EQ(va.k_at(0, pos).front(), 100.0f + static_cast<float>(pos));
    EXPECT_EQ(vb.k_at(0, pos).front(), 100.0f + static_cast<float>(pos));
  }

  pool.release(a);
  EXPECT_EQ(pool.stats().pages_in_use, 2);  // b's two pages
  pool.release(b);
  EXPECT_EQ(pool.stats().pages_in_use, 0);
}

TEST(PagedKVPool, TruncateRecoversAnExhaustedPool) {
  // A rejected speculation window on a full pool: rollback must return
  // enough pages for decoding to continue — the engine's degrade path
  // depends on it.
  PagedKVPool pool(tiny_config(), small_pool(4, 2));
  const auto a = pool.create();
  for (int i = 0; i < 8; ++i) append_position(pool, a, 100.0f);
  ASSERT_FALSE(pool.reserve_next(a).is_ok());  // full

  pool.truncate(a, 4);
  EXPECT_EQ(pool.stats().pages_in_use, 1);
  ASSERT_TRUE(pool.reserve_next(a).is_ok());
  // Re-decoding continues into the recovered capacity; the stale slots
  // the rollback left behind are overwritten before any read.
  append_position(pool, a, 400.0f);
  append_position(pool, a, 400.0f);
  EXPECT_EQ(pool.length(a), 6);
  const PagedKVView va(pool, a);
  EXPECT_EQ(va.k_at(0, 4).front(), 400.0f + 4.0f);
  EXPECT_EQ(va.k_at(0, 5).front(), 400.0f + 5.0f);
}

TEST(PagedKVView, DecoderThroughPoolMatchesContiguousCacheBitForBit) {
  llm::ModelConfig cfg = tiny_config();
  cfg.d_model = 32;
  cfg.d_ff = 48;
  const auto prepared = prepare_shared(cfg, /*eval_tokens=*/64);

  auto mm = BackendRegistry::instance().make_matmul("BBFP(4,2)")
                .expect("matmul backend");
  llm::Fp32NonlinearBackend nl;
  llm::Transformer model(prepared->config, prepared->weights, *mm, nl);
  model.set_logit_scale(prepared->logit_scale);
  llm::Decoder decoder(model);

  // Page size 3 forces mid-page and cross-page reads at most steps.
  PagedKVPool pool(prepared->config, small_pool(3, 16));
  const auto seq = pool.create();
  PagedKVView paged(pool, seq);
  llm::KVCache contiguous = decoder.make_cache();

  const std::vector<int> tokens = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5};
  for (const int token : tokens) {
    ASSERT_TRUE(pool.reserve_next(seq).is_ok());
    const std::vector<float> via_pool = decoder.step(token, paged);
    const std::vector<float> via_cache = decoder.step(token, contiguous);
    ASSERT_EQ(via_pool.size(), via_cache.size());
    for (std::size_t i = 0; i < via_pool.size(); ++i)
      ASSERT_EQ(via_pool[i], via_cache[i]) << "logit " << i << " diverged";
  }
  EXPECT_EQ(pool.length(seq), static_cast<int>(tokens.size()));
  EXPECT_EQ(contiguous.length(), static_cast<int>(tokens.size()));
}

}  // namespace
}  // namespace bbal
