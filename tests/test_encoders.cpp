// Encoder block cost models (Fig. 7 periphery).
#include "accel/encoders.hpp"

#include <gtest/gtest.h>

namespace bbal::accel {
namespace {

const hw::CellLibrary& lib() { return hw::CellLibrary::tsmc28(); }

TEST(Encoders, InputEncoderScalesWithLanes) {
  const auto fmt = quant::BlockFormat::bbfp(4, 2);
  const double a16 = input_encoder(fmt, 16).area_um2(lib());
  const double a32 = input_encoder(fmt, 32).area_um2(lib());
  EXPECT_GT(a32, a16 * 1.5);
  EXPECT_LT(a32, a16 * 2.5);
}

TEST(Encoders, WiderMantissaCostsMore) {
  const double narrow =
      input_encoder(quant::BlockFormat::bbfp(4, 2)).area_um2(lib());
  const double wide =
      input_encoder(quant::BlockFormat::bbfp(10, 5)).area_um2(lib());
  EXPECT_GT(wide, narrow);
}

TEST(Encoders, FpEncoderScalesWithPsumWidth) {
  const double bfp4 =
      fp_encoder(quant::BlockFormat::bfp(4), 16).area_um2(lib());
  const double bbfp63 =
      fp_encoder(quant::BlockFormat::bbfp(6, 3), 16).area_um2(lib());
  EXPECT_GT(bbfp63, bfp4);  // 18-bit field vs 8-bit products
}

TEST(Encoders, PeripheryIsSmallVersusArray) {
  // Sanity: the Fig. 7 periphery must not dwarf a 16x16 PE array.
  const auto fmt = quant::BlockFormat::bbfp(4, 2);
  const double periphery = encoder_area_um2(fmt, 16);
  const double array = hw::bbfp_pe(fmt).area_um2(lib()) * 256;
  EXPECT_LT(periphery, array);
  EXPECT_GT(periphery, 0.0);
}

TEST(Encoders, OutputEncoderMatchesInputStructure) {
  const auto fmt = quant::BlockFormat::bbfp(6, 3);
  EXPECT_NEAR(output_encoder(fmt).area_um2(lib()),
              input_encoder(fmt).area_um2(lib()), 1e-9);
}

TEST(Encoders, FpAdderMaxPositive) {
  EXPECT_GT(fp_adder_and_max(16).area_um2(lib()), 0.0);
  EXPECT_GT(fp_adder_and_max(16).mac_energy_fj(lib()), 0.0);
}

}  // namespace
}  // namespace bbal::accel
