// bbal::Session: builder validation, the one-call accuracy+cost
// co-simulation, and its consistency with the underlying primitives.
// Plus bbal::SweepRunner: parallel sweeps must reproduce serial
// Session::evaluate() bit for bit, in declaration order.
#include <gtest/gtest.h>

#include "accel/simulator.hpp"
#include "bbal/session.hpp"
#include "bbal/sweep.hpp"
#include "common/threadpool.hpp"
#include "llm/perplexity.hpp"

namespace bbal {
namespace {

/// Small, cheap model shared by the suite.
std::shared_ptr<const llm::PreparedModel> tiny_model() {
  static const std::shared_ptr<const llm::PreparedModel> prepared = [] {
    llm::ModelConfig cfg;
    cfg.name = "session-test";
    cfg.vocab = 96;
    cfg.d_model = 64;
    cfg.n_layers = 2;
    cfg.n_heads = 2;
    cfg.d_ff = 96;
    cfg.seed = 11;
    return prepare_shared(cfg, /*eval_tokens=*/96);
  }();
  return prepared;
}

TEST(SessionBuilder, RejectsBadStrategies) {
  const auto bogus =
      Session::Builder().prepared(tiny_model()).matmul("bogus").build();
  EXPECT_FALSE(bogus.is_ok());
  EXPECT_FALSE(bogus.message().empty());

  // A nonlinear-only strategy cannot serve as the matmul backend.
  const auto wrong_kind = Session::Builder()
                              .prepared(tiny_model())
                              .matmul("PseudoSoftmax")
                              .build();
  EXPECT_FALSE(wrong_kind.is_ok());

  // ...and a matmul-only strategy cannot serve as the nonlinear backend.
  const auto wrong_nl = Session::Builder()
                            .prepared(tiny_model())
                            .nonlinear("BBFP(4,2)")
                            .build();
  EXPECT_FALSE(wrong_nl.is_ok());
}

TEST(SessionBuilder, RejectsMissingModelAndUselessCombos) {
  EXPECT_FALSE(Session::Builder().matmul("BBFP(4,2)").build().is_ok());

  // Unknown zoo names surface as build() errors naming the known models
  // (the seed's config_by_name silently fell back under NDEBUG).
  const auto unknown = Session::Builder().model("No-Such-Model").build();
  ASSERT_FALSE(unknown.is_ok());
  EXPECT_NE(unknown.message().find("No-Such-Model"), std::string::npos);
  EXPECT_NE(unknown.message().find("Llama-7B"), std::string::npos)
      << unknown.message();

  // skip_accuracy with no accelerator evaluates nothing.
  EXPECT_FALSE(Session::Builder()
                   .prepared(tiny_model())
                   .skip_accuracy()
                   .build()
                   .is_ok());

  // FP32 has no hardware cost model: attaching an accelerator is an error,
  // reported at build time.
  accel::AcceleratorConfig cfg;
  const auto r = Session::Builder()
                     .prepared(tiny_model())
                     .matmul("FP32")
                     .accelerator(cfg)
                     .build();
  EXPECT_FALSE(r.is_ok());
  EXPECT_NE(r.message().find("cost model"), std::string::npos)
      << r.message();
}

TEST(Session, OneCallMatchesUnderlyingPrimitives) {
  // The acceptance check: one evaluate() must reproduce both halves of a
  // Table II cell exactly as the layer-by-layer APIs compute them.
  accel::AcceleratorConfig cfg;
  cfg.array_rows = cfg.array_cols = 8;
  auto session = Session::Builder()
                     .prepared(tiny_model())
                     .matmul("BBFP(4,2)")
                     .accelerator(cfg)
                     .build();
  ASSERT_TRUE(session.is_ok()) << session.message();
  const auto report = session.value().evaluate().expect("evaluate");

  ASSERT_TRUE(report.has_accuracy);
  ASSERT_TRUE(report.has_cost);

  // Accuracy half: identical to the direct block-format evaluation.
  const double direct_ppl = llm::evaluate_ppl_block_format(
      *tiny_model(), quant::BlockFormat::bbfp(4, 2));
  EXPECT_DOUBLE_EQ(report.perplexity, direct_ppl);

  // Cost half: identical to simulating the captured workload directly.
  const auto& workload = session.value().captured_workload();
  ASSERT_FALSE(workload.empty());
  accel::AcceleratorConfig bound = cfg;
  bound.strategy = "BBFP(4,2)";
  const accel::RunStats direct = accel::simulate_workload(bound, workload);
  EXPECT_DOUBLE_EQ(report.run.throughput_gops, direct.throughput_gops);
  EXPECT_DOUBLE_EQ(report.energy.total_j(), direct.energy.total_j());
  EXPECT_GT(report.run.throughput_gops, 0.0);
}

TEST(Session, CapturedWorkloadMatchesModelShape) {
  auto session = Session::Builder()
                     .prepared(tiny_model())
                     .matmul("BFP4")
                     .build()
                     .expect("build");
  const auto report = session.evaluate().expect("evaluate");

  // Teacher-forced pass over T tokens: per layer 7 weight GEMMs + 2
  // dynamic GEMMs per head, plus the LM head.
  const llm::ModelConfig& cfg = tiny_model()->config;
  const std::size_t expected =
      static_cast<std::size_t>(cfg.n_layers) * (7 + 2 * cfg.n_heads) + 1;
  EXPECT_EQ(report.captured_gemms, expected);
  EXPECT_GT(report.captured_macs, 0);
  EXPECT_GT(report.nonlinear_elements, 0);

  // Score/context fusion flags alternate on the dynamic GEMMs.
  std::size_t scores = 0;
  std::size_t contexts = 0;
  for (const auto& g : session.captured_workload()) {
    if (g.tag == "attn_scores") {
      EXPECT_TRUE(g.output_on_chip);
      ++scores;
    } else if (g.tag == "attn_context") {
      EXPECT_TRUE(g.acts_on_chip);
      ++contexts;
    }
  }
  EXPECT_EQ(scores, contexts);
  EXPECT_EQ(scores,
            static_cast<std::size_t>(cfg.n_layers) * cfg.n_heads);
}

TEST(Session, MemoryFootprintTracksFormatWidth) {
  auto footprint = [](const char* strategy) {
    auto session = Session::Builder()
                       .prepared(tiny_model())
                       .matmul(strategy)
                       .build()
                       .expect("build");
    return session.evaluate().expect("evaluate").memory_footprint_bytes;
  };
  const double fp32 = footprint("FP32");
  const double bfp6 = footprint("BFP6");
  const double bfp4 = footprint("BFP4");
  EXPECT_GT(fp32, bfp6);
  EXPECT_GT(bfp6, bfp4);
}

TEST(Session, CostOnlySessionSkipsPreparation) {
  // A cost-only session must not calibrate the model (which would be the
  // dominant cost): its prepared_model() stays null after evaluate().
  llm::ModelConfig cfg = tiny_model()->config;
  accel::AcceleratorConfig acfg;
  acfg.array_rows = acfg.array_cols = 8;
  auto session = Session::Builder()
                     .model(cfg)
                     .matmul("BBFP(4,2)")
                     .accelerator(acfg)
                     .skip_accuracy()
                     .workload_prefill(64)
                     .build()
                     .expect("build");
  const auto report = session.evaluate().expect("evaluate");
  EXPECT_EQ(session.prepared_model(), nullptr);
  EXPECT_FALSE(report.has_accuracy);
  ASSERT_TRUE(report.has_cost);
  EXPECT_GT(report.run.throughput_gops, 0.0);
  EXPECT_GT(report.memory_footprint_bytes, 0.0);
}

TEST(Session, ReportSerialisesToJson) {
  auto session = Session::Builder()
                     .prepared(tiny_model())
                     .matmul("BBFP(4,2)")
                     .build()
                     .expect("build");
  const std::string json =
      session.evaluate().expect("evaluate").to_json();
  EXPECT_NE(json.find("\"matmul\": \"BBFP(4,2)\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"perplexity\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"memory_footprint_bytes\""), std::string::npos)
      << json;
}

TEST(Session, EvaluateIsRepeatable) {
  auto session = Session::Builder()
                     .prepared(tiny_model())
                     .matmul("BBFP(4,2)")
                     .build()
                     .expect("build");
  const auto first = session.evaluate().expect("evaluate");
  const auto second = session.evaluate().expect("evaluate");
  EXPECT_DOUBLE_EQ(first.perplexity, second.perplexity);
  EXPECT_EQ(first.captured_gemms, second.captured_gemms);
}

TEST(SweepRunner, MatchesSerialSessionEvaluateInOrder) {
  // The engine's core guarantee: a parallel sweep returns, slot for slot,
  // exactly what serial Session::evaluate() calls produce.
  const std::vector<std::string> strategies = {"BBFP(4,2)", "BFP4", "FP32",
                                               "BBFP(6,3)"};
  common::ThreadPool::set_global_threads(4);
  SweepRunner sweep;
  for (const std::string& s : strategies) {
    SweepRunner::Item item;
    item.prepared = tiny_model();
    item.matmul = s;
    sweep.add(std::move(item));
  }
  const auto result = sweep.run();
  common::ThreadPool::set_global_threads(common::ThreadPool::env_threads());
  ASSERT_TRUE(result.all_ok()) << result.first_error();
  ASSERT_EQ(result.reports.size(), strategies.size());
  EXPECT_EQ(result.threads, 4);

  for (std::size_t i = 0; i < strategies.size(); ++i) {
    auto serial = Session::Builder()
                      .prepared(tiny_model())
                      .matmul(strategies[i])
                      .build()
                      .expect("serial build");
    const auto expected = serial.evaluate().expect("serial evaluate");
    const Session::Report& got = result.reports[i].value();
    EXPECT_EQ(got.matmul_strategy.to_string(), strategies[i]);
    EXPECT_DOUBLE_EQ(got.perplexity, expected.perplexity);
    EXPECT_DOUBLE_EQ(got.fp32_perplexity, expected.fp32_perplexity);
    EXPECT_DOUBLE_EQ(got.memory_footprint_bytes,
                     expected.memory_footprint_bytes);
    EXPECT_EQ(got.captured_gemms, expected.captured_gemms);
    EXPECT_EQ(got.captured_macs, expected.captured_macs);
  }
}

TEST(SweepRunner, IsolatesFailingItems) {
  SweepRunner sweep;
  SweepRunner::Item good;
  good.prepared = tiny_model();
  good.matmul = "BFP4";
  sweep.add(good);
  SweepRunner::Item bad;
  bad.prepared = tiny_model();
  bad.matmul = "no-such-strategy";
  sweep.add(bad);
  SweepRunner::Item bad_model;
  bad_model.model = "No-Such-Model";
  sweep.add(bad_model);
  const auto result = sweep.run();
  ASSERT_EQ(result.reports.size(), 3u);
  EXPECT_TRUE(result.reports[0].is_ok()) << result.reports[0].message();
  EXPECT_FALSE(result.reports[1].is_ok());
  EXPECT_FALSE(result.reports[2].is_ok());
  EXPECT_NE(result.reports[2].message().find("No-Such-Model"),
            std::string::npos);
  EXPECT_FALSE(result.all_ok());
  EXPECT_FALSE(result.first_error().empty());
}

TEST(SweepRunner, SharesOnePreparationAcrossItems) {
  // Four items on the same (tiny) model config: the cache must calibrate
  // once, and every report must see the same baseline.
  llm::ModelConfig cfg = tiny_model()->config;
  cfg.name = "sweep-shared";  // distinct cache key from other tests
  SweepRunner sweep;
  sweep.eval_tokens(96);
  for (const char* s : {"FP32", "BFP4", "BFP6", "BBFP(4,2)"}) {
    SweepRunner::Item item;
    item.config = cfg;
    item.matmul = s;
    sweep.add(std::move(item));
  }
  const auto result = sweep.run();
  ASSERT_TRUE(result.all_ok()) << result.first_error();
  EXPECT_EQ(result.models_prepared, 1);
  const double baseline = result.reports[0].value().fp32_perplexity;
  for (const auto& r : result.reports)
    EXPECT_DOUBLE_EQ(r.value().fp32_perplexity, baseline);
  // FP32 run on the shared preparation reproduces its own baseline.
  EXPECT_DOUBLE_EQ(result.reports[0].value().perplexity, baseline);
}

TEST(SessionReport, CarriesAcceleratorPeCount) {
  accel::AcceleratorConfig cfg;
  cfg.array_rows = 4;
  cfg.array_cols = 8;
  auto session = Session::Builder()
                     .prepared(tiny_model())
                     .matmul("BBFP(4,2)")
                     .accelerator(cfg)
                     .build()
                     .expect("build");
  const auto report = session.evaluate().expect("evaluate");
  EXPECT_EQ(report.accelerator_pes, 32);
  EXPECT_NE(report.to_json().find("\"accelerator_pes\": 32"),
            std::string::npos);
}

}  // namespace
}  // namespace bbal
