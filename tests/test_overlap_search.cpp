// Algorithm 1 behaviour against synthetic oracles.
#include "quant/overlap_search.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bbal::quant {
namespace {

TEST(OverlapSearch, PureAccuracyPicksPplMinimum) {
  // PPL minimal at o = 3.
  auto ppl = [](int o) { return 10.0 + (o - 3) * (o - 3); };
  auto overhead = [](int o) { return 100.0 - 5.0 * o; };
  const OverlapSearchResult r = select_overlap_width(6, 0.0, ppl, overhead);
  EXPECT_EQ(r.best_overlap, 3);
}

TEST(OverlapSearch, PureOverheadPicksCheapest) {
  auto ppl = [](int o) { return 10.0 + (o - 3) * (o - 3); };
  auto overhead = [](int o) { return 100.0 - 5.0 * o; };  // cheapest at o=5
  const OverlapSearchResult r = select_overlap_width(6, 1.0, ppl, overhead);
  EXPECT_EQ(r.best_overlap, 5);
}

TEST(OverlapSearch, InterpolatesBetweenExtremes) {
  auto ppl = [](int o) { return 30.0 - 4.0 * o; };         // best at o = 5
  auto overhead = [](int o) { return 50.0 + 10.0 * o; };   // best at o = 0
  const OverlapSearchResult mostly_acc =
      select_overlap_width(6, 0.1, ppl, overhead);
  const OverlapSearchResult mostly_ovh =
      select_overlap_width(6, 0.9, ppl, overhead);
  EXPECT_GE(mostly_acc.best_overlap, mostly_ovh.best_overlap);
}

TEST(OverlapSearch, ScoresNormalisedToMaxOne) {
  auto ppl = [](int o) { return 5.0 + o; };
  auto overhead = [](int o) { return 100.0 + o; };
  const OverlapSearchResult r = select_overlap_width(4, 0.5, ppl, overhead);
  ASSERT_EQ(r.score.size(), 4u);
  for (const double s : r.score) {
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.0 + 1e-12);
  }
}

TEST(OverlapSearch, EvaluatesEveryWidthExactlyOnce) {
  int ppl_calls = 0;
  int ovh_calls = 0;
  auto ppl = [&](int) { ++ppl_calls; return 1.0; };
  auto overhead = [&](int) { ++ovh_calls; return 1.0; };
  (void)select_overlap_width(6, 0.5, ppl, overhead);
  EXPECT_EQ(ppl_calls, 6);
  EXPECT_EQ(ovh_calls, 6);
}

TEST(OverlapSearch, TieBreaksTowardSmallerOverlap) {
  auto flat = [](int) { return 1.0; };
  const OverlapSearchResult r = select_overlap_width(5, 0.5, flat, flat);
  EXPECT_EQ(r.best_overlap, 0);  // first minimum wins
}

}  // namespace
}  // namespace bbal::quant
