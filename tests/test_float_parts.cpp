#include "common/float_parts.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace bbal {
namespace {

TEST(FloatParts, DecomposeOne) {
  const FloatParts p = decompose(1.0, 11);
  EXPECT_FALSE(p.zero);
  EXPECT_FALSE(p.negative);
  EXPECT_EQ(p.exponent, 0);
  EXPECT_EQ(p.mantissa, 1024u);  // 2^10: leading one only
}

TEST(FloatParts, DecomposeNegativePowerOfTwo) {
  const FloatParts p = decompose(-0.25, 11);
  EXPECT_TRUE(p.negative);
  EXPECT_EQ(p.exponent, -2);
  EXPECT_EQ(p.mantissa, 1024u);
}

TEST(FloatParts, DecomposeMixedFraction) {
  // 1.5 = 1.1b -> mantissa 0b110...0
  const FloatParts p = decompose(1.5, 11);
  EXPECT_EQ(p.exponent, 0);
  EXPECT_EQ(p.mantissa, 1536u);
}

TEST(FloatParts, DecomposeZero) {
  const FloatParts p = decompose(0.0, 11);
  EXPECT_TRUE(p.zero);
  EXPECT_EQ(compose(p, 11), 0.0);
}

TEST(FloatParts, RoundingCarryPromotesExponent) {
  // 1.99999 at 4 mantissa bits rounds up to 2.0 (mantissa wraps, exp + 1).
  const FloatParts p = decompose(1.99999, 4);
  EXPECT_EQ(p.exponent, 1);
  EXPECT_EQ(p.mantissa, 8u);  // 2^(4-1)
  EXPECT_DOUBLE_EQ(compose(p, 4), 2.0);
}

TEST(FloatParts, RoundTripExactForRepresentable) {
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    // Build values exactly representable at 11 bits.
    const auto mant = static_cast<std::uint64_t>(rng.uniform_int(1024, 2047));
    const int exp = static_cast<int>(rng.uniform_int(-14, 15));
    const double x = std::ldexp(static_cast<double>(mant), exp - 10) *
                     (rng.uniform() < 0.5 ? -1.0 : 1.0);
    const FloatParts p = decompose(x, 11);
    EXPECT_DOUBLE_EQ(compose(p, 11), x);
  }
}

TEST(FloatParts, RoundTripErrorBounded) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.gaussian(0.0, 10.0);
    if (x == 0.0) continue;
    const FloatParts p = decompose(x, 11);
    const double back = compose(p, 11);
    // Half-ULP bound at 11 bits.
    const double ulp = std::ldexp(1.0, p.exponent - 10);
    EXPECT_LE(std::fabs(back - x), ulp / 2.0 + 1e-300);
  }
}

TEST(FloatParts, ExponentOf) {
  EXPECT_EQ(exponent_of(1.0), 0);
  EXPECT_EQ(exponent_of(1.99), 0);
  EXPECT_EQ(exponent_of(2.0), 1);
  EXPECT_EQ(exponent_of(0.5), -1);
  EXPECT_EQ(exponent_of(-8.0), 3);
  EXPECT_EQ(exponent_of(0.0, -99), -99);
}

TEST(FloatParts, Fp16ExactValuesPreserved) {
  EXPECT_DOUBLE_EQ(to_fp16(1.0), 1.0);
  EXPECT_DOUBLE_EQ(to_fp16(-2.5), -2.5);
  EXPECT_DOUBLE_EQ(to_fp16(65504.0), 65504.0);
  EXPECT_DOUBLE_EQ(to_fp16(0.0), 0.0);
}

TEST(FloatParts, Fp16RoundsAtElevenBits) {
  // 1 + 2^-11 is exactly between 1.0 and 1 + 2^-10: RNE keeps 1.0.
  EXPECT_DOUBLE_EQ(to_fp16(1.0 + std::ldexp(1.0, -11)), 1.0);
  // Slightly above the tie rounds up.
  EXPECT_DOUBLE_EQ(to_fp16(1.0 + std::ldexp(1.2, -11)),
                   1.0 + std::ldexp(1.0, -10));
}

TEST(FloatParts, Fp16SaturatesAtMax) {
  EXPECT_DOUBLE_EQ(to_fp16(1e6), 65504.0);
  EXPECT_DOUBLE_EQ(to_fp16(-1e6), -65504.0);
}

TEST(FloatParts, Fp16SubnormalQuantum) {
  const double q = std::ldexp(1.0, -24);
  EXPECT_DOUBLE_EQ(to_fp16(q * 3.0), q * 3.0);
  EXPECT_DOUBLE_EQ(to_fp16(q * 2.4), q * 2.0);
  EXPECT_DOUBLE_EQ(to_fp16(q / 3.0), 0.0);
}

class DecomposePrecisionTest : public ::testing::TestWithParam<int> {};

TEST_P(DecomposePrecisionTest, MantissaAlwaysNormalised) {
  const int p = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(p));
  for (int i = 0; i < 500; ++i) {
    const double x = rng.heavy_tailed(1.0, 0.05, 20.0);
    if (x == 0.0) continue;
    const FloatParts parts = decompose(x, p);
    EXPECT_GE(parts.mantissa, std::uint64_t{1} << (p - 1));
    EXPECT_LT(parts.mantissa, std::uint64_t{1} << p);
    const double rel_err = std::fabs(compose(parts, p) - x) / std::fabs(x);
    EXPECT_LE(rel_err, std::ldexp(1.0, -p));  // within one part in 2^p
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, DecomposePrecisionTest,
                         ::testing::Values(3, 4, 6, 8, 10, 11, 16, 24, 53));

}  // namespace
}  // namespace bbal
