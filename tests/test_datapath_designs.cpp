// Area-model sanity: orderings and ratios the paper's Tables I/III rely on.
#include "hw/datapath_designs.hpp"

#include <gtest/gtest.h>

namespace bbal::hw {
namespace {

const CellLibrary& lib() { return CellLibrary::tsmc28(); }

TEST(MacDesigns, Int8AnchorsNearTableOne) {
  // Calibration anchor: paper reports 9257 um^2 for the 32-lane INT8 MAC.
  const double area = int_mac(8).area_um2(lib());
  EXPECT_NEAR(area, 9257.0, 9257.0 * 0.12);
}

TEST(MacDesigns, Fp16RoughlyFourTimesInt8) {
  const double fp16 = fp16_mac().area_um2(lib());
  const double int8 = int_mac(8).area_um2(lib());
  EXPECT_GT(fp16 / int8, 3.0);
  EXPECT_LT(fp16 / int8, 6.0);
}

TEST(MacDesigns, BfpCloseToIntAtSameWidth) {
  // Table I: BFP8 (9371) is within ~2% of INT8 (9257).
  const double bfp8 = bfp_mac(quant::BlockFormat::bfp(8)).area_um2(lib());
  const double int8 = int_mac(8).area_um2(lib());
  EXPECT_NEAR(bfp8 / int8, 1.01, 0.06);
}

TEST(MacDesigns, BbfpCostsSlightlyMoreThanBfp) {
  // Table I: BBFP(8,4) ~ +5% over BFP8, BBFP(6,3) ~ +2% over BFP6.
  const double bfp8 = bfp_mac(quant::BlockFormat::bfp(8)).area_um2(lib());
  const double bbfp84 =
      bbfp_mac(quant::BlockFormat::bbfp(8, 4)).area_um2(lib());
  EXPECT_GT(bbfp84, bfp8);
  EXPECT_LT(bbfp84 / bfp8, 1.25);

  const double bfp6 = bfp_mac(quant::BlockFormat::bfp(6)).area_um2(lib());
  const double bbfp63 =
      bbfp_mac(quant::BlockFormat::bbfp(6, 3)).area_um2(lib());
  EXPECT_GT(bbfp63, bfp6);
  EXPECT_LT(bbfp63 / bfp6, 1.25);
}

TEST(MacDesigns, HeadlineClaim_Bbfp63CheaperThanBfp8) {
  // "BBFP(6,3) offers higher representation capability than BFP8 while
  //  consuming less area and memory footprint."
  const auto bbfp63 = bbfp_mac(quant::BlockFormat::bbfp(6, 3));
  const auto bfp8 = bfp_mac(quant::BlockFormat::bfp(8));
  EXPECT_LT(bbfp63.area_um2(lib()), bfp8.area_um2(lib()));
  EXPECT_LT(bbfp63.equivalent_bits, bfp8.equivalent_bits + 1.0);
}

TEST(PeDesigns, AreaOrderingMatchesTableThree) {
  // Table III norm ordering:
  // BBFP(3,2) < BBFP(3,1) ~ Oltron < BFP4 < BBFP(4,3) < BBFP(4,2)
  //   < Olive < BFP6 < BBFP(6,5) < BBFP(6,4) < BBFP(6,3).
  const double oltron = oltron_pe().area_um2(lib());
  const double olive = olive_pe().area_um2(lib());
  const double bfp4 = bfp_pe(quant::BlockFormat::bfp(4)).area_um2(lib());
  const double bfp6 = bfp_pe(quant::BlockFormat::bfp(6)).area_um2(lib());
  const double b31 = bbfp_pe(quant::BlockFormat::bbfp(3, 1)).area_um2(lib());
  const double b32 = bbfp_pe(quant::BlockFormat::bbfp(3, 2)).area_um2(lib());
  const double b42 = bbfp_pe(quant::BlockFormat::bbfp(4, 2)).area_um2(lib());
  const double b43 = bbfp_pe(quant::BlockFormat::bbfp(4, 3)).area_um2(lib());
  const double b63 = bbfp_pe(quant::BlockFormat::bbfp(6, 3)).area_um2(lib());
  const double b64 = bbfp_pe(quant::BlockFormat::bbfp(6, 4)).area_um2(lib());
  const double b65 = bbfp_pe(quant::BlockFormat::bbfp(6, 5)).area_um2(lib());

  EXPECT_LT(b32, b31);        // more overlap -> narrower chain -> smaller
  EXPECT_LT(b65, b64);
  EXPECT_LT(b64, b63);
  EXPECT_LT(b43, b42);
  EXPECT_LT(bfp4, b42);       // BBFP adds flag/mux/chain on top of BFP
  EXPECT_LT(bfp6, b63);
  EXPECT_LT(b42, bfp6);       // 4-bit multiplier beats 6-bit
  EXPECT_LT(oltron, bfp4);    // 3-bit core
  EXPECT_GT(olive, bfp4);     // victim-pair decode overhead
  EXPECT_LT(olive, bfp6);
}

TEST(PeDesigns, OltronNearBbfp31) {
  // Fig. 8 iso-area argument: Oltron, BBFP(3,1), BBFP(3,2) all use 3-bit
  // multipliers and land within ~15% of each other.
  const double oltron = oltron_pe().area_um2(lib());
  const double b31 = bbfp_pe(quant::BlockFormat::bbfp(3, 1)).area_um2(lib());
  EXPECT_NEAR(b31 / oltron, 1.0, 0.15);
}

TEST(PeDesigns, ExponentBypassCheaperThanAdder) {
  const auto fmt = quant::BlockFormat::bbfp(4, 2);
  const double with_adder =
      bbfp_pe(fmt, PeVariant::kExponentAdder).area_um2(lib());
  const double with_bypass =
      bbfp_pe(fmt, PeVariant::kExponentBypass).area_um2(lib());
  EXPECT_LT(with_bypass, with_adder);
}

TEST(PeDesigns, StrategyLookupRoundTrips) {
  EXPECT_EQ(pe_for_strategy("Oltron").name, "Oltron");
  EXPECT_EQ(pe_for_strategy("Olive").name, "Olive");
  EXPECT_EQ(pe_for_strategy("BFP4").name, "BFP4");
  EXPECT_EQ(pe_for_strategy("BBFP(6,3)").name, "BBFP(6,3)");
  EXPECT_EQ(pe_for_strategy("INT8").name, "INT8");
  EXPECT_EQ(pe_for_strategy("FP16").name, "FP16");
}

TEST(EnergyModel, MacEnergyOrderingTracksArea) {
  const double e_int8 = int_mac(8).mac_energy_fj(lib());
  const double e_fp16 = fp16_mac().mac_energy_fj(lib());
  const double e_bfp4 =
      bfp_mac(quant::BlockFormat::bfp(4)).mac_energy_fj(lib());
  EXPECT_GT(e_fp16, e_int8);
  EXPECT_GT(e_int8, e_bfp4);
  EXPECT_GT(e_bfp4, 0.0);
}

TEST(EnergyModel, LeakagePositiveAndMonotonic) {
  const double l4 = bfp_pe(quant::BlockFormat::bfp(4)).leakage_nw(lib());
  const double l6 = bfp_pe(quant::BlockFormat::bfp(6)).leakage_nw(lib());
  EXPECT_GT(l4, 0.0);
  EXPECT_GT(l6, l4);
}

}  // namespace
}  // namespace bbal::hw
