// llm::Decoder: reset() really clears the attention state, stepping after
// a reset is bit-identical to a fresh decoder, the engine-owned KVCache
// path (step(token, cache)) reproduces the owned-cache path, and the
// fused batch path (step_batch) is bit-identical to independent step()
// calls — across quantised strategies, thread counts, ragged batches and
// mid-run retirement/back-fill: the contract the serving engine's single
// shared pipeline rests on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bbal/registry.hpp"
#include "common/threadpool.hpp"
#include "llm/decoder.hpp"
#include "llm/model.hpp"
#include "quant/strategy.hpp"

namespace bbal::llm {
namespace {

ModelConfig tiny_config() {
  ModelConfig cfg;
  cfg.name = "decoder-test";
  cfg.vocab = 64;
  cfg.d_model = 48;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 72;
  cfg.seed = 5;
  return cfg;
}

/// Weights + FP32 backends shared by the suite.
struct Fixture {
  Fixture() : config(tiny_config()), weights(generate_weights(config)) {}
  ModelConfig config;
  TransformerWeights weights;
  Fp32MatmulBackend mm;
  Fp32NonlinearBackend nl;
};

const std::vector<int> kTokens = {3, 17, 42, 9, 9, 60, 1};

TEST(Decoder, ResetClearsState) {
  Fixture f;
  Transformer model(f.config, f.weights, f.mm, f.nl);
  Decoder decoder(model);
  for (const int t : kTokens) (void)decoder.step(t);
  EXPECT_EQ(decoder.context_length(), static_cast<int>(kTokens.size()));
  decoder.reset();
  EXPECT_EQ(decoder.context_length(), 0);
}

TEST(Decoder, StepAfterResetMatchesFreshDecoder) {
  Fixture f;
  Transformer model(f.config, f.weights, f.mm, f.nl);

  // Pollute a decoder with one sequence, then reset it.
  Decoder used(model);
  for (const int t : kTokens) (void)used.step(t);
  used.reset();

  Decoder fresh(model);
  for (const int t : kTokens) {
    const std::vector<float> a = used.step(t);
    const std::vector<float> b = fresh.step(t);
    ASSERT_EQ(a, b);  // bit-identical logits at every position
  }
  EXPECT_EQ(used.context_length(), fresh.context_length());
}

TEST(Decoder, ExternalCacheMatchesOwnedCache) {
  Fixture f;
  Transformer model(f.config, f.weights, f.mm, f.nl);
  Decoder owned(model);
  Decoder external(model);
  KVCache cache = external.make_cache();
  EXPECT_EQ(cache.length(), 0);

  for (const int t : kTokens) {
    const std::vector<float> a = owned.step(t);
    const std::vector<float> b = external.step(t, cache);
    ASSERT_EQ(a, b);
  }
  EXPECT_EQ(cache.length(), static_cast<int>(kTokens.size()));
  // The external path leaves the decoder's own cache untouched.
  EXPECT_EQ(external.context_length(), 0);

  cache.clear();
  EXPECT_EQ(cache.length(), 0);
}

TEST(Decoder, OneDecoderServesInterleavedCaches) {
  // Slot reuse in the serving engine: one decoder alternates between two
  // requests' caches and each sequence must be unaffected by the other.
  Fixture f;
  Transformer model(f.config, f.weights, f.mm, f.nl);
  const std::vector<int> seq_a = {1, 2, 3, 4, 5};
  const std::vector<int> seq_b = {50, 40, 30, 20, 10};

  Decoder ref_a(model);
  Decoder ref_b(model);
  std::vector<std::vector<float>> expect_a, expect_b;
  for (const int t : seq_a) expect_a.push_back(ref_a.step(t));
  for (const int t : seq_b) expect_b.push_back(ref_b.step(t));

  Decoder shared(model);
  KVCache cache_a = shared.make_cache();
  KVCache cache_b = shared.make_cache();
  for (std::size_t i = 0; i < seq_a.size(); ++i) {
    EXPECT_EQ(shared.step(seq_a[i], cache_a), expect_a[i]);
    EXPECT_EQ(shared.step(seq_b[i], cache_b), expect_b[i]);
  }
}

// --- Fused batch path --------------------------------------------------------

/// Drive step_batch like a mini serving engine over predetermined ragged
/// token sequences — staggered lengths, one sequence retiring mid-run and
/// another back-filling its row — and require every row's logits to be
/// bit-identical to stepping that sequence alone through step(token,
/// cache) on the same backend. Exercised per strategy and thread count.
/// Pins the global thread count for one scope and restores it even when
/// a gtest ASSERT returns out of the helper early.
struct ThreadCountGuard {
  explicit ThreadCountGuard(int threads) {
    common::ThreadPool::set_global_threads(threads);
  }
  ~ThreadCountGuard() {
    common::ThreadPool::set_global_threads(common::ThreadPool::env_threads());
  }
};

void expect_step_batch_matches_steps(const std::string& strategy,
                                     int threads) {
  const ThreadCountGuard guard(threads);
  const ModelConfig config = tiny_config();
  const TransformerWeights weights = generate_weights(config);
  auto mm = bbal::BackendRegistry::instance()
                .make_matmul(quant::spec_of(strategy))
                .expect("matmul backend");
  Fp32NonlinearBackend nl;
  Transformer model(config, weights, *mm, nl);
  Decoder fused(model);
  Decoder reference(model);

  // Ragged sequences; D enters only after B retires (back-fill).
  const std::vector<std::vector<int>> seqs = {
      {3, 17, 42, 9, 9, 60, 1},    // A: longest, active throughout
      {5, 4, 3},                   // B: retires after 3 ticks
      {33, 2, 44, 21, 8},          // C
      {11, 12, 13, 14, 15, 16}};   // D: back-fills B's row
  std::vector<KVCache> caches;
  std::vector<KVCache> ref_caches;
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    caches.push_back(fused.make_cache());
    ref_caches.push_back(reference.make_cache());
  }
  std::vector<std::size_t> progress(seqs.size(), 0);

  Matrix logits;
  for (int tick = 0;; ++tick) {
    // Active set: every sequence with tokens left, except D before B is
    // done (mixed prefill depths: A is deep into its stream while a
    // back-filled D starts from an empty cache mid-run).
    std::vector<std::size_t> active;
    for (std::size_t s = 0; s < seqs.size(); ++s) {
      if (progress[s] >= seqs[s].size()) continue;
      if (s == 3 && progress[1] < seqs[1].size()) continue;
      active.push_back(s);
    }
    if (active.empty()) break;

    std::vector<int> tokens;
    std::vector<KVCacheRef> refs;
    refs.reserve(active.size());
    std::vector<KVCacheView*> views;
    for (const std::size_t s : active) {
      tokens.push_back(seqs[s][progress[s]]);
      refs.emplace_back(caches[s]);
    }
    for (KVCacheRef& ref : refs) views.push_back(&ref);
    fused.step_batch(tokens, views, logits);
    ASSERT_EQ(logits.rows(), static_cast<int>(active.size()));
    ASSERT_EQ(logits.cols(), config.vocab);

    for (std::size_t i = 0; i < active.size(); ++i) {
      const std::size_t s = active[i];
      const std::vector<float> expected =
          reference.step(seqs[s][progress[s]], ref_caches[s]);
      const std::span<const float> row = logits.row(static_cast<int>(i));
      ASSERT_EQ(std::vector<float>(row.begin(), row.end()), expected)
          << strategy << " seq " << s << " tick " << tick << " at "
          << threads << " threads";
      ++progress[s];
    }
  }
  for (std::size_t s = 0; s < seqs.size(); ++s)
    EXPECT_EQ(caches[s].length(), static_cast<int>(seqs[s].size()));
}

const std::vector<std::string> kBatchStrategies = {"FP32", "INT8", "BFP4",
                                                   "BBFP(4,2)"};

TEST(DecoderBatch, MatchesIndependentStepsSingleThread) {
  for (const std::string& strategy : kBatchStrategies)
    expect_step_batch_matches_steps(strategy, 1);
}

TEST(DecoderBatch, MatchesIndependentStepsFourThreads) {
  for (const std::string& strategy : kBatchStrategies)
    expect_step_batch_matches_steps(strategy, 4);
}

TEST(DecoderBatch, EmptyBatchIsANoOp) {
  Fixture f;
  Transformer model(f.config, f.weights, f.mm, f.nl);
  Decoder decoder(model);
  Matrix logits;
  decoder.step_batch({}, {}, logits);
  EXPECT_EQ(logits.rows(), 0);
  EXPECT_EQ(logits.cols(), f.config.vocab);
}

TEST(DecoderBatch, ReusesCallerLogitsStorage) {
  // The logits matrix keeps its allocation across same-shaped calls — the
  // zero-allocation contract the engine's tick loop relies on.
  Fixture f;
  Transformer model(f.config, f.weights, f.mm, f.nl);
  Decoder decoder(model);
  KVCache a = decoder.make_cache();
  KVCache b = decoder.make_cache();
  Matrix logits;
  KVCacheRef ra(a), rb(b);
  std::vector<KVCacheView*> views = {&ra, &rb};
  const std::vector<int> tokens = {4, 7};
  decoder.step_batch(tokens, views, logits);
  const float* data = logits.flat().data();
  decoder.step_batch(tokens, views, logits);
  EXPECT_EQ(logits.flat().data(), data);
}

}  // namespace
}  // namespace bbal::llm
