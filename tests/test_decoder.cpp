// llm::Decoder: reset() really clears the attention state, stepping after
// a reset is bit-identical to a fresh decoder, the engine-owned KVCache
// path (step(token, cache)) reproduces the owned-cache path, and the
// fused batch path (step_batch) is bit-identical to independent step()
// calls — across quantised strategies, thread counts, ragged batches and
// mid-run retirement/back-fill: the contract the serving engine's single
// shared pipeline rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "bbal/registry.hpp"
#include "common/threadpool.hpp"
#include "llm/decoder.hpp"
#include "llm/model.hpp"
#include "quant/strategy.hpp"

namespace bbal::llm {
namespace {

ModelConfig tiny_config() {
  ModelConfig cfg;
  cfg.name = "decoder-test";
  cfg.vocab = 64;
  cfg.d_model = 48;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 72;
  cfg.seed = 5;
  return cfg;
}

/// Weights + FP32 backends shared by the suite.
struct Fixture {
  Fixture() : config(tiny_config()), weights(generate_weights(config)) {}
  ModelConfig config;
  TransformerWeights weights;
  Fp32MatmulBackend mm;
  Fp32NonlinearBackend nl;
};

const std::vector<int> kTokens = {3, 17, 42, 9, 9, 60, 1};

TEST(Decoder, ResetClearsState) {
  Fixture f;
  Transformer model(f.config, f.weights, f.mm, f.nl);
  Decoder decoder(model);
  for (const int t : kTokens) (void)decoder.step(t);
  EXPECT_EQ(decoder.context_length(), static_cast<int>(kTokens.size()));
  decoder.reset();
  EXPECT_EQ(decoder.context_length(), 0);
}

TEST(Decoder, StepAfterResetMatchesFreshDecoder) {
  Fixture f;
  Transformer model(f.config, f.weights, f.mm, f.nl);

  // Pollute a decoder with one sequence, then reset it.
  Decoder used(model);
  for (const int t : kTokens) (void)used.step(t);
  used.reset();

  Decoder fresh(model);
  for (const int t : kTokens) {
    const std::vector<float> a = used.step(t);
    const std::vector<float> b = fresh.step(t);
    ASSERT_EQ(a, b);  // bit-identical logits at every position
  }
  EXPECT_EQ(used.context_length(), fresh.context_length());
}

TEST(Decoder, ExternalCacheMatchesOwnedCache) {
  Fixture f;
  Transformer model(f.config, f.weights, f.mm, f.nl);
  Decoder owned(model);
  Decoder external(model);
  KVCache cache = external.make_cache();
  EXPECT_EQ(cache.length(), 0);

  for (const int t : kTokens) {
    const std::vector<float> a = owned.step(t);
    const std::vector<float> b = external.step(t, cache);
    ASSERT_EQ(a, b);
  }
  EXPECT_EQ(cache.length(), static_cast<int>(kTokens.size()));
  // The external path leaves the decoder's own cache untouched.
  EXPECT_EQ(external.context_length(), 0);

  cache.clear();
  EXPECT_EQ(cache.length(), 0);
}

TEST(Decoder, OneDecoderServesInterleavedCaches) {
  // Slot reuse in the serving engine: one decoder alternates between two
  // requests' caches and each sequence must be unaffected by the other.
  Fixture f;
  Transformer model(f.config, f.weights, f.mm, f.nl);
  const std::vector<int> seq_a = {1, 2, 3, 4, 5};
  const std::vector<int> seq_b = {50, 40, 30, 20, 10};

  Decoder ref_a(model);
  Decoder ref_b(model);
  std::vector<std::vector<float>> expect_a, expect_b;
  for (const int t : seq_a) expect_a.push_back(ref_a.step(t));
  for (const int t : seq_b) expect_b.push_back(ref_b.step(t));

  Decoder shared(model);
  KVCache cache_a = shared.make_cache();
  KVCache cache_b = shared.make_cache();
  for (std::size_t i = 0; i < seq_a.size(); ++i) {
    EXPECT_EQ(shared.step(seq_a[i], cache_a), expect_a[i]);
    EXPECT_EQ(shared.step(seq_b[i], cache_b), expect_b[i]);
  }
}

// --- Fused batch path --------------------------------------------------------

/// Drive step_batch like a mini serving engine over predetermined ragged
/// token sequences — staggered lengths, one sequence retiring mid-run and
/// another back-filling its row — and require every row's logits to be
/// bit-identical to stepping that sequence alone through step(token,
/// cache) on the same backend. Exercised per strategy and thread count.
/// Pins the global thread count for one scope and restores it even when
/// a gtest ASSERT returns out of the helper early.
struct ThreadCountGuard {
  explicit ThreadCountGuard(int threads) {
    common::ThreadPool::set_global_threads(threads);
  }
  ~ThreadCountGuard() {
    common::ThreadPool::set_global_threads(common::ThreadPool::env_threads());
  }
};

void expect_step_batch_matches_steps(const std::string& strategy,
                                     int threads) {
  const ThreadCountGuard guard(threads);
  const ModelConfig config = tiny_config();
  const TransformerWeights weights = generate_weights(config);
  auto mm = bbal::BackendRegistry::instance()
                .make_matmul(quant::spec_of(strategy))
                .expect("matmul backend");
  Fp32NonlinearBackend nl;
  Transformer model(config, weights, *mm, nl);
  Decoder fused(model);
  Decoder reference(model);

  // Ragged sequences; D enters only after B retires (back-fill).
  const std::vector<std::vector<int>> seqs = {
      {3, 17, 42, 9, 9, 60, 1},    // A: longest, active throughout
      {5, 4, 3},                   // B: retires after 3 ticks
      {33, 2, 44, 21, 8},          // C
      {11, 12, 13, 14, 15, 16}};   // D: back-fills B's row
  std::vector<KVCache> caches;
  std::vector<KVCache> ref_caches;
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    caches.push_back(fused.make_cache());
    ref_caches.push_back(reference.make_cache());
  }
  std::vector<std::size_t> progress(seqs.size(), 0);

  Matrix logits;
  for (int tick = 0;; ++tick) {
    // Active set: every sequence with tokens left, except D before B is
    // done (mixed prefill depths: A is deep into its stream while a
    // back-filled D starts from an empty cache mid-run).
    std::vector<std::size_t> active;
    for (std::size_t s = 0; s < seqs.size(); ++s) {
      if (progress[s] >= seqs[s].size()) continue;
      if (s == 3 && progress[1] < seqs[1].size()) continue;
      active.push_back(s);
    }
    if (active.empty()) break;

    std::vector<int> tokens;
    std::vector<KVCacheRef> refs;
    refs.reserve(active.size());
    std::vector<KVCacheView*> views;
    for (const std::size_t s : active) {
      tokens.push_back(seqs[s][progress[s]]);
      refs.emplace_back(caches[s]);
    }
    for (KVCacheRef& ref : refs) views.push_back(&ref);
    fused.step_batch(tokens, views, logits);
    ASSERT_EQ(logits.rows(), static_cast<int>(active.size()));
    ASSERT_EQ(logits.cols(), config.vocab);

    for (std::size_t i = 0; i < active.size(); ++i) {
      const std::size_t s = active[i];
      const std::vector<float> expected =
          reference.step(seqs[s][progress[s]], ref_caches[s]);
      const std::span<const float> row = logits.row(static_cast<int>(i));
      ASSERT_EQ(std::vector<float>(row.begin(), row.end()), expected)
          << strategy << " seq " << s << " tick " << tick << " at "
          << threads << " threads";
      ++progress[s];
    }
  }
  for (std::size_t s = 0; s < seqs.size(); ++s)
    EXPECT_EQ(caches[s].length(), static_cast<int>(seqs[s].size()));
}

const std::vector<std::string> kBatchStrategies = {"FP32", "INT8", "BFP4",
                                                   "BBFP(4,2)"};

TEST(DecoderBatch, MatchesIndependentStepsSingleThread) {
  for (const std::string& strategy : kBatchStrategies)
    expect_step_batch_matches_steps(strategy, 1);
}

TEST(DecoderBatch, MatchesIndependentStepsFourThreads) {
  for (const std::string& strategy : kBatchStrategies)
    expect_step_batch_matches_steps(strategy, 4);
}

// --- Chunked prefill ---------------------------------------------------------

/// Consume a prompt whose length does NOT divide the chunk size through
/// prefill_chunk (full chunks then a ragged tail), and require (a) each
/// chunk's logits row to be bit-identical to the serial step() logits at
/// that chunk's last position, and (b) decode to continue bit-identically
/// from the chunk-filled cache — chunking is a scheduling change, never
/// an arithmetic change.
void expect_prefill_chunk_matches_steps(const std::string& strategy,
                                        int chunk, int threads) {
  const ThreadCountGuard guard(threads);
  const ModelConfig config = tiny_config();
  const TransformerWeights weights = generate_weights(config);
  auto mm = bbal::BackendRegistry::instance()
                .make_matmul(quant::spec_of(strategy))
                .expect("matmul backend");
  Fp32NonlinearBackend nl;
  Transformer model(config, weights, *mm, nl);
  Decoder fused(model);
  Decoder reference(model);

  const std::vector<int> prompt = {3, 17, 42, 9, 9, 60, 1, 5, 4, 3, 33};
  ASSERT_NE(static_cast<int>(prompt.size()) % chunk, 0);
  KVCache cache = fused.make_cache();
  KVCache ref_cache = reference.make_cache();
  std::vector<std::vector<float>> ref_logits;
  for (const int t : prompt)
    ref_logits.push_back(reference.step(t, ref_cache));

  Matrix logits;
  KVCacheRef view(cache);
  std::size_t consumed = 0;
  while (consumed < prompt.size()) {
    const std::size_t n =
        std::min(static_cast<std::size_t>(chunk), prompt.size() - consumed);
    fused.prefill_chunk(std::span<const int>(prompt).subspan(consumed, n),
                        view, logits);
    ASSERT_EQ(logits.rows(), 1);
    ASSERT_EQ(logits.cols(), config.vocab);
    consumed += n;
    const std::span<const float> row = logits.row(0);
    ASSERT_EQ(std::vector<float>(row.begin(), row.end()),
              ref_logits[consumed - 1])
        << strategy << " after " << consumed << " prompt tokens at "
        << threads << " threads";
  }
  EXPECT_EQ(cache.length(), static_cast<int>(prompt.size()));

  for (const int t : {7, 21}) {
    ASSERT_EQ(fused.step(t, cache), reference.step(t, ref_cache))
        << strategy << " decode after chunked prefill";
  }
}

TEST(DecoderPrefill, ChunkMatchesSerialStepsSingleThread) {
  for (const std::string& strategy : kBatchStrategies)
    expect_prefill_chunk_matches_steps(strategy, /*chunk=*/4, 1);
}

TEST(DecoderPrefill, ChunkMatchesSerialStepsFourThreads) {
  for (const std::string& strategy : kBatchStrategies)
    expect_prefill_chunk_matches_steps(strategy, /*chunk=*/4, 4);
}

TEST(DecoderPrefill, WholePromptAsOneChunkMatches) {
  for (const std::string& strategy : kBatchStrategies)
    expect_prefill_chunk_matches_steps(strategy, /*chunk=*/7, 1);
}

TEST(DecoderGroups, MixedPrefillAndDecodeRowsMatchSerial) {
  // One fused call per tick carrying a 3-token prefill chunk for X and a
  // single decode row for Y — the engine's mixed tick. Every group's
  // logits row must match its own sequence stepped alone.
  for (const std::string& strategy : {std::string("FP32"),
                                      std::string("BBFP(4,2)")}) {
    const ModelConfig config = tiny_config();
    const TransformerWeights weights = generate_weights(config);
    auto mm = bbal::BackendRegistry::instance()
                  .make_matmul(quant::spec_of(strategy))
                  .expect("matmul backend");
    Fp32NonlinearBackend nl;
    Transformer model(config, weights, *mm, nl);
    Decoder fused(model);
    Decoder reference(model);

    const std::vector<int> x_prompt = {8, 6, 7, 5, 30, 9, 11, 2, 35};
    const std::vector<int> y_tokens = {41, 1, 27};
    KVCache x = fused.make_cache();
    KVCache y = fused.make_cache();
    KVCache ref_x = reference.make_cache();
    KVCache ref_y = reference.make_cache();

    // Y already has context when X's prompt starts streaming in.
    ASSERT_EQ(fused.step(13, y), reference.step(13, ref_y));

    std::vector<std::vector<float>> ref_x_logits;
    for (const int t : x_prompt)
      ref_x_logits.push_back(reference.step(t, ref_x));

    Matrix logits;
    for (std::size_t tick = 0; tick < y_tokens.size(); ++tick) {
      const std::size_t base = tick * 3;
      std::vector<int> tokens(x_prompt.begin() + base,
                              x_prompt.begin() + base + 3);
      tokens.push_back(y_tokens[tick]);
      KVCacheRef vx(x), vy(y);
      std::vector<KVCacheView*> views = {&vx, &vy};
      const std::vector<int> counts = {3, 1};
      fused.step_groups(tokens, views, counts, logits);
      ASSERT_EQ(logits.rows(), 2);

      const std::span<const float> x_row = logits.row(0);
      ASSERT_EQ(std::vector<float>(x_row.begin(), x_row.end()),
                ref_x_logits[base + 2])
          << strategy << " X chunk ending at " << base + 2;
      const std::vector<float> y_expected =
          reference.step(y_tokens[tick], ref_y);
      const std::span<const float> y_row = logits.row(1);
      ASSERT_EQ(std::vector<float>(y_row.begin(), y_row.end()), y_expected)
          << strategy << " Y decode at tick " << tick;
    }
    EXPECT_EQ(x.length(), static_cast<int>(x_prompt.size()));
    EXPECT_EQ(y.length(), 1 + static_cast<int>(y_tokens.size()));
  }
}

TEST(DecoderGroups, AllRowsModeSurfacesEveryPositionBitIdentically) {
  // LogitsMode::kAllRows is speculative verification's window: one fused
  // call over [x0, d1, d2] must surface the logits of EVERY position, each
  // bit-identical to the serial step() at that position — including the
  // mid-group rows the default mode discards.
  for (const std::string& strategy : {std::string("FP32"),
                                      std::string("BBFP(4,2)")}) {
    const ModelConfig config = tiny_config();
    const TransformerWeights weights = generate_weights(config);
    auto mm = bbal::BackendRegistry::instance()
                  .make_matmul(quant::spec_of(strategy))
                  .expect("matmul backend");
    Fp32NonlinearBackend nl;
    Transformer model(config, weights, *mm, nl);
    Decoder fused(model);
    Decoder reference(model);

    const std::vector<int> window = {3, 17, 42};
    KVCache cache = fused.make_cache();
    KVCache ref_cache = reference.make_cache();
    std::vector<std::vector<float>> ref_logits;
    for (const int t : window)
      ref_logits.push_back(reference.step(t, ref_cache));

    Matrix logits;
    KVCacheRef view(cache);
    std::vector<KVCacheView*> views = {&view};
    const std::vector<int> counts = {3};
    fused.step_groups(window, views, counts, logits,
                      Decoder::LogitsMode::kAllRows);
    ASSERT_EQ(logits.rows(), 3);
    for (int r = 0; r < 3; ++r) {
      const std::span<const float> row = logits.row(r);
      ASSERT_EQ(std::vector<float>(row.begin(), row.end()),
                ref_logits[static_cast<std::size_t>(r)])
          << strategy << " all-rows position " << r;
    }
  }
}

TEST(DecoderGroups, AllRowsModeLeavesTheDefaultPathByteExact) {
  // The chunked-prefill regression for PR 9: interleaving kAllRows calls
  // must not perturb the default last-per-group path — same decoder, same
  // workspace, and a chunked prefill afterwards still matches the serial
  // reference bit for bit. Only the LM-head gather differs between modes.
  Fixture f;
  Transformer model(f.config, f.weights, f.mm, f.nl);
  Decoder fused(model);
  Decoder reference(model);

  // A verify-window call first (resizes ws_.last to the full batch)...
  KVCache scratch = fused.make_cache();
  {
    Matrix logits;
    KVCacheRef view(scratch);
    std::vector<KVCacheView*> views = {&view};
    const std::vector<int> counts = {3};
    fused.step_groups(std::span<const int>(kTokens).first(3), views, counts,
                      logits, Decoder::LogitsMode::kAllRows);
    ASSERT_EQ(logits.rows(), 3);
  }

  // ...then the default chunked-prefill path, which must be untouched.
  const std::vector<int> prompt = {3, 17, 42, 9, 9, 60, 1};
  KVCache ref_cache = reference.make_cache();
  std::vector<float> ref_last;
  for (const int t : prompt) ref_last = reference.step(t, ref_cache);

  KVCache cache = fused.make_cache();
  KVCacheRef view(cache);
  Matrix logits;
  fused.prefill_chunk(std::span<const int>(prompt).first(4), view, logits);
  fused.prefill_chunk(std::span<const int>(prompt).subspan(4), view, logits);
  ASSERT_EQ(logits.rows(), 1);
  const std::span<const float> row = logits.row(0);
  EXPECT_EQ(std::vector<float>(row.begin(), row.end()), ref_last);

  // And an explicit kLastPerGroup equals the default-argument call.
  KVCache again = fused.make_cache();
  KVCacheRef view2(again);
  std::vector<KVCacheView*> views2 = {&view2};
  const int count = static_cast<int>(prompt.size());
  Matrix explicit_logits;
  fused.step_groups(prompt, views2, std::span<const int>(&count, 1),
                    explicit_logits, Decoder::LogitsMode::kLastPerGroup);
  ASSERT_EQ(explicit_logits.rows(), 1);
  const std::span<const float> row2 = explicit_logits.row(0);
  EXPECT_EQ(std::vector<float>(row2.begin(), row2.end()), ref_last);
}

TEST(DecoderBatch, EmptyBatchIsANoOp) {
  Fixture f;
  Transformer model(f.config, f.weights, f.mm, f.nl);
  Decoder decoder(model);
  Matrix logits;
  decoder.step_batch({}, {}, logits);
  EXPECT_EQ(logits.rows(), 0);
  EXPECT_EQ(logits.cols(), f.config.vocab);
}

TEST(DecoderBatch, ReusesCallerLogitsStorage) {
  // The logits matrix keeps its allocation across same-shaped calls — the
  // zero-allocation contract the engine's tick loop relies on.
  Fixture f;
  Transformer model(f.config, f.weights, f.mm, f.nl);
  Decoder decoder(model);
  KVCache a = decoder.make_cache();
  KVCache b = decoder.make_cache();
  Matrix logits;
  KVCacheRef ra(a), rb(b);
  std::vector<KVCacheView*> views = {&ra, &rb};
  const std::vector<int> tokens = {4, 7};
  decoder.step_batch(tokens, views, logits);
  const float* data = logits.flat().data();
  decoder.step_batch(tokens, views, logits);
  EXPECT_EQ(logits.flat().data(), data);
}

}  // namespace
}  // namespace bbal::llm
