// llm::Decoder: reset() really clears the attention state, stepping after
// a reset is bit-identical to a fresh decoder, and the engine-owned
// KVCache path (step(token, cache)) reproduces the owned-cache path — the
// contract the serving engine's slot reuse rests on.
#include <gtest/gtest.h>

#include <vector>

#include "llm/decoder.hpp"
#include "llm/model.hpp"

namespace bbal::llm {
namespace {

ModelConfig tiny_config() {
  ModelConfig cfg;
  cfg.name = "decoder-test";
  cfg.vocab = 64;
  cfg.d_model = 48;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 72;
  cfg.seed = 5;
  return cfg;
}

/// Weights + FP32 backends shared by the suite.
struct Fixture {
  Fixture() : config(tiny_config()), weights(generate_weights(config)) {}
  ModelConfig config;
  TransformerWeights weights;
  Fp32MatmulBackend mm;
  Fp32NonlinearBackend nl;
};

const std::vector<int> kTokens = {3, 17, 42, 9, 9, 60, 1};

TEST(Decoder, ResetClearsState) {
  Fixture f;
  Transformer model(f.config, f.weights, f.mm, f.nl);
  Decoder decoder(model);
  for (const int t : kTokens) (void)decoder.step(t);
  EXPECT_EQ(decoder.context_length(), static_cast<int>(kTokens.size()));
  decoder.reset();
  EXPECT_EQ(decoder.context_length(), 0);
}

TEST(Decoder, StepAfterResetMatchesFreshDecoder) {
  Fixture f;
  Transformer model(f.config, f.weights, f.mm, f.nl);

  // Pollute a decoder with one sequence, then reset it.
  Decoder used(model);
  for (const int t : kTokens) (void)used.step(t);
  used.reset();

  Decoder fresh(model);
  for (const int t : kTokens) {
    const std::vector<float> a = used.step(t);
    const std::vector<float> b = fresh.step(t);
    ASSERT_EQ(a, b);  // bit-identical logits at every position
  }
  EXPECT_EQ(used.context_length(), fresh.context_length());
}

TEST(Decoder, ExternalCacheMatchesOwnedCache) {
  Fixture f;
  Transformer model(f.config, f.weights, f.mm, f.nl);
  Decoder owned(model);
  Decoder external(model);
  KVCache cache = external.make_cache();
  EXPECT_EQ(cache.length(), 0);

  for (const int t : kTokens) {
    const std::vector<float> a = owned.step(t);
    const std::vector<float> b = external.step(t, cache);
    ASSERT_EQ(a, b);
  }
  EXPECT_EQ(cache.length(), static_cast<int>(kTokens.size()));
  // The external path leaves the decoder's own cache untouched.
  EXPECT_EQ(external.context_length(), 0);

  cache.clear();
  EXPECT_EQ(cache.length(), 0);
}

TEST(Decoder, OneDecoderServesInterleavedCaches) {
  // Slot reuse in the serving engine: one decoder alternates between two
  // requests' caches and each sequence must be unaffected by the other.
  Fixture f;
  Transformer model(f.config, f.weights, f.mm, f.nl);
  const std::vector<int> seq_a = {1, 2, 3, 4, 5};
  const std::vector<int> seq_b = {50, 40, 30, 20, 10};

  Decoder ref_a(model);
  Decoder ref_b(model);
  std::vector<std::vector<float>> expect_a, expect_b;
  for (const int t : seq_a) expect_a.push_back(ref_a.step(t));
  for (const int t : seq_b) expect_b.push_back(ref_b.step(t));

  Decoder shared(model);
  KVCache cache_a = shared.make_cache();
  KVCache cache_b = shared.make_cache();
  for (std::size_t i = 0; i < seq_a.size(); ++i) {
    EXPECT_EQ(shared.step(seq_a[i], cache_a), expect_a[i]);
    EXPECT_EQ(shared.step(seq_b[i], cache_b), expect_b[i]);
  }
}

}  // namespace
}  // namespace bbal::llm
