// Activation capture plumbing and the strategy registry.
#include <gtest/gtest.h>

#include "baselines/registry.hpp"
#include "llm/capture.hpp"

namespace bbal {
namespace {

TEST(LayerKinds, TagMapping) {
  using llm::layer_kind_of_tag;
  EXPECT_EQ(layer_kind_of_tag("layer0.wq"), "Query");
  EXPECT_EQ(layer_kind_of_tag("layer3.wk"), "Key");
  EXPECT_EQ(layer_kind_of_tag("layer1.wv"), "Value");
  EXPECT_EQ(layer_kind_of_tag("layer2.wo"), "Proj");
  EXPECT_EQ(layer_kind_of_tag("layer0.gate"), "FC1");
  EXPECT_EQ(layer_kind_of_tag("layer0.up"), "FC1");
  EXPECT_EQ(layer_kind_of_tag("layer0.down"), "FC2");
  EXPECT_EQ(layer_kind_of_tag("lm_head"), "Head");
}

TEST(Capture, CollectsAllLayerKinds) {
  llm::ModelConfig cfg;
  cfg.name = "capture-test";
  cfg.vocab = 64;
  cfg.d_model = 32;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 48;
  cfg.seed = 9;
  const llm::CaptureResult result = llm::capture_layer_data(cfg, 48);
  for (const char* kind : {"Query", "Key", "Value", "Proj", "FC1", "FC2"}) {
    ASSERT_TRUE(result.activations.count(kind)) << kind;
    EXPECT_FALSE(result.activations.at(kind).empty()) << kind;
    ASSERT_TRUE(result.weights.count(kind)) << kind;
  }
  // The LM head is excluded from layer statistics.
  EXPECT_FALSE(result.activations.count("Head"));
  // FC1 pools gate+up: twice the weight volume of FC2.
  EXPECT_GT(result.weights.at("FC1").size(), result.weights.at("FC2").size());
}

TEST(Registry, ResolvesEveryTableTwoStrategy) {
  for (const std::string& name : baselines::table2_strategies()) {
    EXPECT_TRUE(baselines::is_known_strategy(name)) << name;
    const auto backend = baselines::make_matmul_backend(name);
    ASSERT_NE(backend, nullptr) << name;
  }
}

TEST(Registry, BackendsCarryExpectedNames) {
  EXPECT_EQ(baselines::make_matmul_backend("BBFP(4,2)")->name(), "BBFP(4,2)");
  EXPECT_EQ(baselines::make_matmul_backend("BFP6")->name(), "BFP6");
  EXPECT_EQ(baselines::make_matmul_backend("Oltron")->name(), "Oltron");
  EXPECT_EQ(baselines::make_matmul_backend("INT8")->name(), "INT8");
  EXPECT_EQ(baselines::make_matmul_backend("FP32")->name(), "FP32");
}

TEST(Registry, RejectsUnknownNames) {
  EXPECT_FALSE(baselines::is_known_strategy("FP4-EXOTIC"));
  EXPECT_FALSE(baselines::is_known_strategy(""));
}

TEST(Registry, RegisteredBackendActuallyQuantises) {
  const auto backend = baselines::make_matmul_backend("BFP4");
  llm::Matrix w(32, 2);
  for (int k = 0; k < 32; ++k) {
    w.at(k, 0) = 0.337f;  // not representable at 4 bits
    w.at(k, 1) = 1.0f;
  }
  const int h = backend->prepare_weights(w, "w");
  llm::Matrix a(1, 32);
  for (int k = 0; k < 32; ++k) a.at(0, k) = 1.0f;
  llm::Matrix out;
  backend->matmul(a, h, out);
  // Column 0 must show quantisation error; column 1 is exact.
  EXPECT_NE(out.at(0, 0), 0.337f * 32.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 32.0f);
}

}  // namespace
}  // namespace bbal
