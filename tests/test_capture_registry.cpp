// Activation capture plumbing and the unified backend registry.
#include <gtest/gtest.h>

#include "bbal/registry.hpp"
#include "llm/capture.hpp"

namespace bbal {
namespace {

TEST(LayerKinds, TagMapping) {
  using llm::layer_kind_of_tag;
  EXPECT_EQ(layer_kind_of_tag("layer0.wq"), "Query");
  EXPECT_EQ(layer_kind_of_tag("layer3.wk"), "Key");
  EXPECT_EQ(layer_kind_of_tag("layer1.wv"), "Value");
  EXPECT_EQ(layer_kind_of_tag("layer2.wo"), "Proj");
  EXPECT_EQ(layer_kind_of_tag("layer0.gate"), "FC1");
  EXPECT_EQ(layer_kind_of_tag("layer0.up"), "FC1");
  EXPECT_EQ(layer_kind_of_tag("layer0.down"), "FC2");
  EXPECT_EQ(layer_kind_of_tag("lm_head"), "Head");
}

TEST(Capture, CollectsAllLayerKinds) {
  llm::ModelConfig cfg;
  cfg.name = "capture-test";
  cfg.vocab = 64;
  cfg.d_model = 32;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 48;
  cfg.seed = 9;
  const llm::CaptureResult result = llm::capture_layer_data(cfg, 48);
  for (const char* kind : {"Query", "Key", "Value", "Proj", "FC1", "FC2"}) {
    ASSERT_TRUE(result.activations.count(kind)) << kind;
    EXPECT_FALSE(result.activations.at(kind).empty()) << kind;
    ASSERT_TRUE(result.weights.count(kind)) << kind;
  }
  // The LM head is excluded from layer statistics.
  EXPECT_FALSE(result.activations.count("Head"));
  // FC1 pools gate+up: twice the weight volume of FC2.
  EXPECT_GT(result.weights.at("FC1").size(), result.weights.at("FC2").size());
}

TEST(Registry, ResolvesEveryTableTwoStrategy) {
  const BackendRegistry& registry = BackendRegistry::instance();
  for (const std::string& name : table2_strategies()) {
    EXPECT_TRUE(registry.is_known(name)) << name;
    auto backend = registry.make_matmul(name);
    ASSERT_TRUE(backend.is_ok()) << name << ": " << backend.message();
    ASSERT_NE(backend.value(), nullptr) << name;
  }
}

TEST(Registry, BackendsCarryExpectedNames) {
  auto name_of = [](const char* strategy) {
    return make_matmul_backend(strategy).expect("make_matmul")->name();
  };
  EXPECT_EQ(name_of("BBFP(4,2)"), "BBFP(4,2)");
  EXPECT_EQ(name_of("BFP6"), "BFP6");
  EXPECT_EQ(name_of("Oltron"), "Oltron");
  EXPECT_EQ(name_of("INT8"), "INT8");
  EXPECT_EQ(name_of("FP32"), "FP32");
}

TEST(Registry, RejectsUnknownNamesWithErrors) {
  const BackendRegistry& registry = BackendRegistry::instance();
  EXPECT_FALSE(registry.is_known("FP4-EXOTIC"));
  EXPECT_FALSE(registry.is_known(""));
  const auto backend = registry.make_matmul("FP4-EXOTIC");
  EXPECT_FALSE(backend.is_ok());
  EXPECT_FALSE(backend.message().empty());
}

TEST(Registry, NonlinearFactoriesAndCapabilities) {
  const BackendRegistry& registry = BackendRegistry::instance();
  auto lut = registry.make_nonlinear("BBFP-LUT(10,5)");
  ASSERT_TRUE(lut.is_ok()) << lut.message();
  EXPECT_EQ(lut.value()->name(), "BBFP(10,5)");
  auto lut_softmax = registry.make_nonlinear("BBFP-LUT(10,5)/softmax");
  ASSERT_TRUE(lut_softmax.is_ok()) << lut_softmax.message();
  EXPECT_EQ(lut_softmax.value()->name(), "BBFP(10,5) softmax-only");

  // A matmul-only strategy is a reportable error as a nonlinear backend.
  EXPECT_FALSE(registry.make_nonlinear("BBFP(4,2)").is_ok());
  // And vice versa.
  EXPECT_FALSE(registry.make_matmul("PseudoSoftmax").is_ok());

  // Capability queries.
  EXPECT_TRUE(
      registry.supports_dynamic_matmul(quant::spec_of("BBFP(4,2)")));
  EXPECT_FALSE(registry.supports_dynamic_matmul(quant::spec_of("FP32")));
  EXPECT_TRUE(registry.has_cost_model(quant::spec_of("BBFP(4,2)")));
  EXPECT_FALSE(registry.has_cost_model(quant::spec_of("OmniQuant")));
}

TEST(Registry, RegisteredBackendActuallyQuantises) {
  const auto backend = make_matmul_backend("BFP4").expect("make_matmul");
  llm::Matrix w(32, 2);
  for (int k = 0; k < 32; ++k) {
    w.at(k, 0) = 0.337f;  // not representable at 4 bits
    w.at(k, 1) = 1.0f;
  }
  const int h = backend->prepare_weights(w, "w");
  llm::Matrix a(1, 32);
  for (int k = 0; k < 32; ++k) a.at(0, k) = 1.0f;
  llm::Matrix out;
  backend->matmul(a, h, out);
  // Column 0 must show quantisation error; column 1 is exact.
  EXPECT_NE(out.at(0, 0), 0.337f * 32.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 32.0f);
}

}  // namespace
}  // namespace bbal
