// Baseline quantiser emulations: each must exhibit the failure/success mode
// the paper attributes to it.
#include "baselines/quant_baselines.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace bbal::baselines {
namespace {

std::vector<float> gaussian_vec(Rng& rng, std::size_t n, double stddev) {
  std::vector<float> xs(n);
  for (auto& x : xs) x = static_cast<float>(rng.gaussian(0.0, stddev));
  return xs;
}

double vec_mse(std::span<const float> a, std::span<const float> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc / static_cast<double>(a.size());
}

TEST(IntQuant, Int8NearlyLossless) {
  Rng rng(1);
  IntQuantBackend backend(8, 8);
  llm::Matrix m(4, 64);
  for (float& v : m.flat()) v = static_cast<float>(rng.gaussian(0.0, 1.0));
  const llm::Matrix q = backend.quantise_per_row(m, 8);
  EXPECT_LT(vec_mse(m.flat(), q.flat()), 1e-4);
}

TEST(IntQuant, Int4CoarserThanInt8) {
  Rng rng(2);
  IntQuantBackend backend(8, 8);
  llm::Matrix m(4, 64);
  for (float& v : m.flat()) v = static_cast<float>(rng.gaussian(0.0, 1.0));
  const llm::Matrix q8 = backend.quantise_per_row(m, 8);
  const llm::Matrix q4 = backend.quantise_per_row(m, 4);
  EXPECT_GT(vec_mse(m.flat(), q4.flat()), vec_mse(m.flat(), q8.flat()) * 10);
}

TEST(IntQuant, OutlierCrushesRowResolution) {
  // The absmax scale is hostage to the largest element — the INT failure
  // mode that motivates all the outlier-aware methods.
  Rng rng(3);
  llm::Matrix m(1, 64);
  for (float& v : m.flat()) v = static_cast<float>(rng.gaussian(0.0, 0.5));
  m.at(0, 7) = 100.0f;
  IntQuantBackend backend(4, 4);
  const llm::Matrix q = backend.quantise_per_row(m, 4);
  int zeroed = 0;
  for (int c = 0; c < 64; ++c)
    if (q.at(0, c) == 0.0f && m.at(0, c) != 0.0f) ++zeroed;
  EXPECT_GT(zeroed, 32);  // most of the bulk flushed to zero
}

TEST(Oltron, BudgetProtectsIsolatedOutliers) {
  Rng rng(4);
  OltronBackend oltron(/*outlier_budget=*/0.10);
  std::vector<float> xs = gaussian_vec(rng, 256, 0.5);
  xs[10] = 50.0f;  // one outlier group out of 8 -> within budget
  std::vector<float> q(xs.size());
  oltron.quantise_vector(xs, q);
  // The outlier survives at high precision.
  EXPECT_NEAR(q[10], 50.0f, 0.5f);
  // Groups without outliers keep fine resolution.
  double bulk_mse = 0.0;
  for (std::size_t i = 64; i < 256; ++i) {
    const double d = static_cast<double>(xs[i]) - q[i];
    bulk_mse += d * d;
  }
  EXPECT_LT(bulk_mse / 192.0, 0.01);
}

TEST(Oltron, OverBudgetOutliersDamageBulk) {
  // More outlier groups than the budget: unprotected groups get max-aligned
  // 4-bit grids and their bulk collapses — Oltron's Llama failure mode.
  Rng rng(5);
  OltronBackend oltron(/*outlier_budget=*/0.03);
  std::vector<float> xs = gaussian_vec(rng, 256, 0.5);
  for (const std::size_t idx : {5u, 40u, 70u, 100u, 130u, 160u, 200u, 230u})
    xs[idx] = 60.0f;  // outliers in every group
  std::vector<float> q(xs.size());
  oltron.quantise_vector(xs, q);
  int crushed = 0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    if (q[i] == 0.0f && std::fabs(xs[i]) > 0.05f) ++crushed;
  EXPECT_GT(crushed, 100);
}

TEST(Olive, OutlierBorrowsVictimSlot) {
  Rng rng(6);
  OliveBackend olive(4);
  std::vector<float> xs = gaussian_vec(rng, 64, 0.5);
  // The outlier must sit inside Olive's extended range (~2^bits x the bulk
  // grid limit, here ~14): beyond that it clips regardless of the victim.
  xs[8] = 10.0f;   // outlier
  xs[9] = 0.3f;    // its victim
  std::vector<float> q(xs.size());
  olive.quantise_vector(xs, q);
  EXPECT_EQ(q[9], 0.0f);                    // victim sacrificed
  EXPECT_NEAR(q[8], 10.0f, 10.0f * 0.25f);  // outlier represented coarsely
}

TEST(Olive, AdjacentOutliersClip) {
  Rng rng(7);
  OliveBackend olive(4);
  std::vector<float> xs = gaussian_vec(rng, 64, 0.5);
  xs[8] = 20.0f;
  xs[9] = 25.0f;  // pair partner is itself an outlier: no victim available
  std::vector<float> q(xs.size());
  olive.quantise_vector(xs, q);
  // One of the two must be hard-clipped far below its value.
  const bool clipped =
      q[8] < 10.0f || q[9] < 12.0f;
  EXPECT_TRUE(clipped);
}

TEST(Omniquant, ClipSearchBeatsAbsmaxOnOutlierChannel) {
  Rng rng(8);
  std::vector<float> xs = gaussian_vec(rng, 128, 0.5);
  // A moderate (6-sigma) outlier: clipping it is MSE-optimal, which is when
  // OmniQuant's learnable clipping pays off. (For extreme outliers the
  // search correctly keeps the full range and matches absmax.)
  xs[0] = 3.0f;
  std::vector<float> clip_q(xs.size());
  OmniquantBackend::quantise_channel_clip_search(xs, clip_q, 4);

  // absmax reference at the same width.
  float mx = 0.0f;
  for (const float v : xs) mx = std::max(mx, std::fabs(v));
  const float scale = mx / 7.0f;
  std::vector<float> absmax_q(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    absmax_q[i] = std::nearbyint(xs[i] / scale) * scale;

  // Compare bulk MSE (excluding the outlier itself).
  double mse_clip = 0.0;
  double mse_absmax = 0.0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    mse_clip += (xs[i] - clip_q[i]) * (xs[i] - clip_q[i]);
    mse_absmax += (xs[i] - absmax_q[i]) * (xs[i] - absmax_q[i]);
  }
  EXPECT_LT(mse_clip, mse_absmax);
}

TEST(Backends, NamesAreStable) {
  EXPECT_EQ(IntQuantBackend(8, 8).name(), "INT8");
  EXPECT_EQ(OltronBackend().name(), "Oltron");
  EXPECT_EQ(OliveBackend().name(), "Olive");
  EXPECT_EQ(OmniquantBackend().name(), "OmniQuant");
}

}  // namespace
}  // namespace bbal::baselines
