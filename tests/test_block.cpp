// Tests for BFP / BBFP block encoding semantics (Section III of the paper).
#include "quant/block.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/float_parts.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "quant/error_model.hpp"

namespace bbal::quant {
namespace {

TEST(FormatDescriptor, EquivalentBitsMatchTableOne) {
  EXPECT_NEAR(BlockFormat::bfp(8).equivalent_bits(), 9.16, 0.01);
  EXPECT_NEAR(BlockFormat::bfp(6).equivalent_bits(), 7.16, 0.01);
  EXPECT_NEAR(BlockFormat::bbfp(8, 4).equivalent_bits(), 10.16, 0.01);
  EXPECT_NEAR(BlockFormat::bbfp(6, 3).equivalent_bits(), 8.16, 0.01);
}

TEST(FormatDescriptor, MemoryEfficiencyMatchesTableOne) {
  EXPECT_NEAR(BlockFormat::bfp(8).memory_efficiency(), 1.75, 0.01);
  EXPECT_NEAR(BlockFormat::bfp(6).memory_efficiency(), 2.24, 0.01);
  EXPECT_NEAR(BlockFormat::bbfp(8, 4).memory_efficiency(), 1.58, 0.01);
  EXPECT_NEAR(BlockFormat::bbfp(6, 3).memory_efficiency(), 1.96, 0.01);
}

TEST(FormatDescriptor, Names) {
  EXPECT_EQ(BlockFormat::bfp(4).name(), "BFP4");
  EXPECT_EQ(BlockFormat::bbfp(4, 2).name(), "BBFP(4,2)");
}

TEST(BfpEncode, SharedExponentIsBlockMax) {
  const std::vector<double> xs = {0.5, -3.0, 1.25, 0.0625};
  const EncodedBlock b = encode_block(xs, BlockFormat::bfp(4, 4));
  // max |x| = 3.0 -> exponent 1.
  EXPECT_EQ(b.shared_exponent, 1);
  for (const auto& e : b.elems) EXPECT_FALSE(e.flag);
}

TEST(BfpEncode, MaxElementKeepsFullMantissaPrecision) {
  // The max element of a BFP block is quantised at full m-bit precision.
  const std::vector<double> xs = {1.75, 0.03, -0.2};
  const EncodedBlock b = encode_block(xs, BlockFormat::bfp(4, 4));
  EXPECT_DOUBLE_EQ(b.decode(0), 1.75);  // 1.75 = 14 * 2^-3, exact in 4 bits
}

TEST(BfpEncode, SmallValuesFlushTowardZero) {
  // With max alignment, values far below the max lose all mantissa bits.
  const std::vector<double> xs = {8.0, 0.01};
  const EncodedBlock b = encode_block(xs, BlockFormat::bfp(4, 4));
  EXPECT_DOUBLE_EQ(b.decode(1), 0.0);  // step is 1.0; 0.01 rounds to 0
}

TEST(BfpEncode, RoundingCarryOnMaxElementSaturates) {
  // 1.97 at source precision is M = 2017 (e = 0); the 4-bit window would
  // round to mantissa 16 — hardware sticky-rounds down to 15 instead of
  // wrapping to 0.
  const std::vector<double> xs = {1.97};
  const EncodedBlock b = encode_block(xs, BlockFormat::bfp(4, 4));
  EXPECT_EQ(b.elems[0].mantissa, 15u);
}

TEST(BfpEncode, AllZeroBlock) {
  const std::vector<double> xs = {0.0, 0.0, 0.0};
  const EncodedBlock b = encode_block(xs, BlockFormat::bfp(4, 4));
  EXPECT_EQ(b.shared_exponent, kZeroBlockExponent);
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_EQ(b.decode(i), 0.0);
}

TEST(DecodeAll, ZeroBlockDecodesToZeros) {
  // The kZeroBlockExponent path through decode_all: both the span and the
  // allocating overload must produce exact zeros (not denormal garbage).
  const std::vector<double> xs = {0.0, 0.0, 0.0, 0.0};
  const EncodedBlock b = encode_block(xs, BlockFormat::bbfp(4, 2, 4));
  ASSERT_EQ(b.shared_exponent, kZeroBlockExponent);

  std::vector<double> out(xs.size(), 123.0);
  ASSERT_TRUE(b.decode_all(std::span<double>(out)).is_ok());
  for (const double v : out) EXPECT_EQ(v, 0.0);

  for (const double v : b.decode_all()) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(b.flag_count(), 0u);
}

TEST(DecodeAll, RejectsMismatchedSpanWithError) {
  Rng rng(5);
  std::vector<double> xs(8);
  for (auto& x : xs) x = rng.gaussian();
  const EncodedBlock b = encode_block(xs, BlockFormat::bbfp(4, 2, 8));

  std::vector<double> too_small(4);
  const Status small = b.decode_all(std::span<double>(too_small));
  EXPECT_FALSE(small.is_ok());
  EXPECT_NE(small.message().find("span size"), std::string::npos)
      << small.message();

  std::vector<double> too_big(16);
  EXPECT_FALSE(b.decode_all(std::span<double>(too_big)).is_ok());

  std::vector<double> right(8);
  EXPECT_TRUE(b.decode_all(std::span<double>(right)).is_ok());
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_EQ(right[i], b.decode(i));
}

TEST(BbfpEncode, SharedExponentFollowsEqNine) {
  // BBFP(4,2): E_s = max_e - (m - o) = max_e - 2.
  const std::vector<double> xs = {8.0, 1.0, 0.25, -2.0};  // max_e = 3
  const EncodedBlock b = encode_block(xs, BlockFormat::bbfp(4, 2, 4));
  EXPECT_EQ(b.shared_exponent, 1);
}

TEST(BbfpEncode, FlagMarksElementsAboveSharedExponent) {
  const std::vector<double> xs = {8.0, 4.0, 2.0, 1.0, 0.5};  // e = 3,2,1,0,-1
  const EncodedBlock b = encode_block(xs, BlockFormat::bbfp(4, 2, 8));
  ASSERT_EQ(b.shared_exponent, 1);
  EXPECT_TRUE(b.elems[0].flag);   // e=3 > 1
  EXPECT_TRUE(b.elems[1].flag);   // e=2 > 1
  EXPECT_FALSE(b.elems[2].flag);  // e=1 == E_s
  EXPECT_FALSE(b.elems[3].flag);
  EXPECT_FALSE(b.elems[4].flag);
  EXPECT_EQ(b.flag_count(), 2u);
}

TEST(BbfpEncode, PowersOfTwoAcrossWindowDecodeExactly) {
  // All these are exactly representable in either group of BBFP(4,2).
  const std::vector<double> xs = {8.0, 4.0, 2.0, 1.0, 0.5, -8.0, -0.5};
  const EncodedBlock b = encode_block(xs, BlockFormat::bbfp(4, 2, 8));
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_DOUBLE_EQ(b.decode(i), xs[i]) << "i=" << i;
}

TEST(BbfpEncode, HighGroupStepIsCoarser) {
  const std::vector<double> xs = {8.0};
  const EncodedBlock b = encode_block(xs, BlockFormat::bbfp(4, 2, 1));
  EXPECT_DOUBLE_EQ(b.step_high() / b.step_low(), 4.0);  // 2^(m-o) = 4
}

TEST(BbfpEncode, MantissaRangeExtensionMatchesFigTwo) {
  // Fig. 2(b): BFP4 covers +-1.875 * 2^E_s; BBFP(4,2) covers +-7.5 * 2^E_s.
  // Encode the largest representable magnitudes and check the decode range.
  const BlockFormat bbfp = BlockFormat::bbfp(4, 2, 2);
  // A block whose max has e = E_s + 2: E_s = e_max - 2.
  const std::vector<double> xs = {7.5, 0.875};
  const EncodedBlock b = encode_block(xs, bbfp);
  EXPECT_EQ(b.shared_exponent, 0);  // e_max = 2 (7.5 -> [4,8))
  EXPECT_DOUBLE_EQ(b.decode(0), 7.5);    // high group: 15 * step_low * 4
  EXPECT_DOUBLE_EQ(b.decode(1), 0.875);  // low group: 7 * step_low (1/8)
}

TEST(BbfpEncode, MidValuesKeepMoreBitsThanBfpAtSameWidth) {
  // A moderate value 2^-3 below the max: BFP4 keeps 1 bit, BBFP(4,2)'s low
  // group keeps it at full-resolution step.
  std::vector<double> xs = {8.0, 0.71875};  // 0.71875 = 23 * 2^-5
  const double bfp_err =
      std::fabs(quantise(xs, BlockFormat::bfp(4, 2))[1] - xs[1]);
  const double bbfp_err =
      std::fabs(quantise(xs, BlockFormat::bbfp(4, 2, 2))[1] - xs[1]);
  EXPECT_LT(bbfp_err, bfp_err);
}

TEST(BbfpEncode, MaxStrategyDegeneratesToBfp) {
  // With strategy_delta = m - o the shared exponent equals the block max and
  // no element carries a flag: values must decode identically to BFP.
  Rng rng(11);
  std::vector<double> xs(32);
  for (auto& x : xs) x = rng.heavy_tailed(1.0, 0.1, 16.0);
  const BlockFormat bbfp_max = BlockFormat::bbfp(4, 2).with_delta(2);
  const BlockFormat bfp = BlockFormat::bfp(4);
  const EncodedBlock a = encode_block(xs, bbfp_max);
  const EncodedBlock b = encode_block(xs, bfp);
  EXPECT_EQ(a.shared_exponent, b.shared_exponent);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_FALSE(a.elems[i].flag);
    EXPECT_DOUBLE_EQ(a.decode(i), b.decode(i)) << i;
  }
}

TEST(BbfpEncode, AggressiveStrategyLosesMsb) {
  // Fig. 3 "Max-3": delta = -1 pushes the max element's leading one above
  // the stored window; with Clip semantics the decoded magnitude collapses.
  const std::vector<double> xs = {15.0};
  const BlockFormat fmt = BlockFormat::bbfp(4, 2, 1).with_delta(-1);
  const EncodedBlock b = encode_block(xs, fmt);
  EXPECT_LT(b.decode(0), 15.0 / 2.0);  // catastrophic, not a rounding error
}

TEST(BbfpEncode, SaturatePolicyBoundsAggressiveStrategyError) {
  const std::vector<double> xs = {15.0};
  BlockFormat fmt = BlockFormat::bbfp(4, 2, 1).with_delta(-1);
  fmt.overflow = OverflowPolicy::kSaturate;
  const EncodedBlock b = encode_block(xs, fmt);
  // Saturated at the top of the high window: 15 * 2^... stays close-ish.
  EXPECT_GT(b.decode(0), 7.0);
}

TEST(BbfpEncode, TruncateRoundingNeverExceedsRne) {
  Rng rng(23);
  std::vector<double> xs(64);
  for (auto& x : xs) x = rng.gaussian(0.0, 4.0);
  BlockFormat rne = BlockFormat::bbfp(4, 2);
  BlockFormat trunc = rne;
  trunc.rounding = Rounding::kTruncate;
  const double mse_rne = empirical_mse(xs, rne);
  const double mse_trunc = empirical_mse(xs, trunc);
  EXPECT_LE(mse_rne, mse_trunc * 1.0001);
}

TEST(QuantiseSpan, HandlesRemainderBlocks) {
  Rng rng(3);
  std::vector<double> xs(71);  // not a multiple of 32
  for (auto& x : xs) x = rng.gaussian(0.0, 2.0);
  const std::vector<double> q = quantise(xs, BlockFormat::bbfp(6, 3));
  ASSERT_EQ(q.size(), xs.size());
  // Error is bounded by one low/high-group step, not by a relative bound:
  // small elements of a block inherit the block's absolute step.
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_NEAR(q[i], xs[i], std::fabs(xs[i]) * 0.07 + 0.02);
}

TEST(QuantiseSpan, FloatOverloadMatchesDoublePath) {
  Rng rng(5);
  std::vector<double> xs(96);
  std::vector<float> xf(96);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.heavy_tailed(1.0, 0.05, 12.0);
    xf[i] = static_cast<float>(xs[i]);
  }
  const BlockFormat fmt = BlockFormat::bbfp(4, 2);
  std::vector<double> xd(xf.begin(), xf.end());
  const std::vector<double> qd = quantise(xd, fmt);
  std::vector<float> qf(xf.size());
  quantise(std::span<const float>(xf), fmt, std::span<float>(qf));
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_FLOAT_EQ(qf[i], static_cast<float>(qd[i]));
}

// ---------------------------------------------------------------------------
// Property sweep over (m, o) configurations.
// ---------------------------------------------------------------------------

struct MO {
  int m;
  int o;
};

class BbfpPropertyTest : public ::testing::TestWithParam<MO> {};

TEST_P(BbfpPropertyTest, RoundTripErrorWithinHighGroupStep) {
  const auto [m, o] = GetParam();
  const BlockFormat fmt = BlockFormat::bbfp(m, o);
  Rng rng(100 + static_cast<std::uint64_t>(m * 8 + o));
  std::vector<double> xs(256);
  for (auto& x : xs) x = rng.heavy_tailed(1.0, 0.08, 10.0);

  const std::size_t bs = static_cast<std::size_t>(fmt.block_size);
  for (std::size_t start = 0; start < xs.size(); start += bs) {
    const std::size_t len = std::min(bs, xs.size() - start);
    const EncodedBlock b =
        encode_block(std::span<const double>(xs).subspan(start, len), fmt);
    for (std::size_t i = 0; i < len; ++i) {
      const double err = std::fabs(b.decode(i) - xs[start + i]);
      // RNE error is step/2 except at the very top mantissa code, where the
      // sticky saturation can cost a full step; source-precision rounding
      // adds up to half an FP16 ulp on top.
      const double step = b.elems[i].flag ? b.step_high() : b.step_low();
      const double bound = step * 1.01 + 1e-12;
      EXPECT_LE(err, bound) << fmt.name() << " i=" << (start + i);
    }
  }
}

TEST_P(BbfpPropertyTest, DecodedMagnitudeNeverAboveSource) {
  // With Eq. (9) strategy the leading one always fits the window, so
  // encode is a pure round-to-grid: magnitudes cannot explode.
  const auto [m, o] = GetParam();
  const BlockFormat fmt = BlockFormat::bbfp(m, o);
  Rng rng(500 + static_cast<std::uint64_t>(m * 8 + o));
  std::vector<double> xs(128);
  for (auto& x : xs) x = rng.gaussian(0.0, 3.0);
  const std::vector<double> q = quantise(xs, fmt);
  const double step_bound = 2.0;  // generous: one high-group step at max
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_LE(std::fabs(q[i]), std::fabs(xs[i]) * (1.0 + 0.5) + step_bound);
}

TEST_P(BbfpPropertyTest, BbfpNeverWorseThanBfpOnHeavyTails) {
  // The format's reason to exist (Section III.B): on outlier-bearing data
  // BBFP(m,o) has lower MSE than BFP with the same mantissa width.
  const auto [m, o] = GetParam();
  Rng rng(900 + static_cast<std::uint64_t>(m * 8 + o));
  std::vector<double> xs(4096);
  for (auto& x : xs) x = rng.heavy_tailed(1.0, 0.03, 30.0);
  const double mse_bbfp = empirical_mse(xs, BlockFormat::bbfp(m, o));
  const double mse_bfp = empirical_mse(xs, BlockFormat::bfp(m));
  EXPECT_LT(mse_bbfp, mse_bfp) << "m=" << m << " o=" << o;
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigs, BbfpPropertyTest,
    ::testing::Values(MO{3, 1}, MO{3, 2}, MO{4, 2}, MO{4, 3}, MO{6, 3},
                      MO{6, 4}, MO{6, 5}, MO{8, 4}, MO{10, 5}),
    [](const ::testing::TestParamInfo<MO>& info) {
      return "m" + std::to_string(info.param.m) + "o" +
             std::to_string(info.param.o);
    });

}  // namespace
}  // namespace bbal::quant
