// End-to-end integration: the full stack (synthetic model -> quantised
// backends -> nonlinear units -> accelerator models) reproducing the
// paper's headline relationships on a small scale.
#include <gtest/gtest.h>

#include "accel/simulator.hpp"
#include "baselines/registry.hpp"
#include "llm/perplexity.hpp"
#include "nl/backends.hpp"
#include "nl/unit_cost.hpp"

namespace bbal {
namespace {

using namespace bbal::llm;

/// One shared prepared model for the whole suite (expensive to build).
const PreparedModel& shared_model() {
  static const PreparedModel prepared = [] {
    ModelConfig cfg = config_by_name("Llama-7B");
    return prepare_model(cfg, /*eval_tokens=*/320);
  }();
  return prepared;
}

TEST(Integration, BaselineCalibratedToPaperRow) {
  const PreparedModel& m = shared_model();
  // Self-PPL vs logit scale has cliffs on short streams; the calibration
  // keeps the closest point, which can sit ~20% off on unlucky seeds.
  EXPECT_NEAR(m.fp32_ppl, m.config.fp_baseline_ppl,
              m.config.fp_baseline_ppl * 0.3);
}

TEST(Integration, WideBbfpTracksBaseline) {
  const PreparedModel& m = shared_model();
  const double ppl =
      evaluate_ppl_block_format(m, quant::BlockFormat::bbfp(6, 4));
  // Synthetic small models carry more relative error per layer than a
  // trained 7B; the paper-scale claim is checked as a trend in Table II.
  EXPECT_LT(ppl, m.fp32_ppl * 1.5);
}

TEST(Integration, AccuracyOrderingAcrossWidths) {
  const PreparedModel& m = shared_model();
  const double b64 =
      evaluate_ppl_block_format(m, quant::BlockFormat::bbfp(6, 4));
  const double b42 =
      evaluate_ppl_block_format(m, quant::BlockFormat::bbfp(4, 2));
  const double bfp4 =
      evaluate_ppl_block_format(m, quant::BlockFormat::bfp(4));
  EXPECT_LE(b64, b42 * 1.05);  // wider mantissa at least as good
  // BBFP beats (or at worst matches) BFP at 4-bit width; the strict
  // per-column comparison holds on 11/12 Table II columns (bench_table2),
  // a single short stream carries sampling noise.
  EXPECT_LT(b42, bfp4 * 1.3);
}

TEST(Integration, BbfpBeatsOltronOnLlamaLikeModel) {
  // Fig. 8 / Table II: outlier budgets break on outlier-rich models.
  const PreparedModel& m = shared_model();
  const auto oltron = baselines::make_matmul_backend("Oltron");
  Fp32NonlinearBackend nl;
  const double oltron_ppl = evaluate_ppl(m, *oltron, nl);
  const double bbfp_ppl =
      evaluate_ppl_block_format(m, quant::BlockFormat::bbfp(4, 2));
  EXPECT_LT(bbfp_ppl, oltron_ppl);
}

TEST(Integration, OliveCatastrophic) {
  const PreparedModel& m = shared_model();
  const auto olive = baselines::make_matmul_backend("Olive");
  Fp32NonlinearBackend nl;
  EXPECT_GT(evaluate_ppl(m, *olive, nl), m.fp32_ppl * 5.0);
}

TEST(Integration, NonlinearBbfpSafeBfpWorse) {
  // Table IV setting: sharp-attention model (the regime where BFP10's
  // max alignment visibly hurts), linear layers FP32.
  static const PreparedModel prepared =
      prepare_model(config_by_name("Llama-7B-nl"), 224);
  Fp32MatmulBackend mm1, mm2;
  nl::LutNonlinearBackend bbfp(quant::BlockFormat::bbfp(10, 5));
  nl::LutNonlinearBackend bfp(quant::BlockFormat::bfp(10));
  const double ppl_bbfp = evaluate_ppl(prepared, mm1, bbfp);
  const double ppl_bfp = evaluate_ppl(prepared, mm2, bfp);
  EXPECT_LT(ppl_bbfp, prepared.fp32_ppl * 1.10);
  EXPECT_GT(ppl_bfp, ppl_bbfp);
}

TEST(Integration, IsoAreaThroughputStory) {
  // The Fig. 8 compute story end to end on the accelerator model.
  const auto workload = accel::prefill_gemms(shared_model().config, 512);
  const auto bfp4 = accel::iso_area_config("BFP4", 120000.0, 51.2);
  const auto b31 = accel::iso_area_config("BBFP(3,1)", 120000.0, 51.2);
  const double t_bfp4 =
      accel::simulate_workload(bfp4, workload).throughput_gops;
  const double t_b31 =
      accel::simulate_workload(b31, workload).throughput_gops;
  EXPECT_GT(t_b31, t_bfp4 * 1.08);
}

TEST(Integration, EnergyStory) {
  // Fig. 9: same array, BBFP(3,x) no more expensive than BFP4; BBFP at
  // equal width within a modest premium of BFP.
  const auto workload = accel::prefill_gemms(shared_model().config, 256);
  accel::AcceleratorConfig base;
  base.array_rows = base.array_cols = 16;
  auto energy = [&](const std::string& s) {
    accel::AcceleratorConfig cfg = base;
    cfg.strategy = s;
    return accel::simulate_workload(cfg, workload).energy.total_j();
  };
  EXPECT_LT(energy("BBFP(3,1)"), energy("BFP4") * 1.02);
  EXPECT_LT(energy("BBFP(6,3)"), energy("BFP6") * 1.25);
}

TEST(Integration, NonlinearUnitCostStory) {
  // Table V ordering via the registry of unit cost models.
  EXPECT_GT(nl::bbal_nl_unit_cost(16).efficiency(),
            nl::base2_softmax_cost().efficiency() * 10.0);
  EXPECT_LT(nl::pseudo_softmax_cost().adp(),
            nl::bbal_nl_unit_cost(16).adp());
}

}  // namespace
}  // namespace bbal
