// End-to-end integration: the full stack (synthetic model -> quantised
// backends -> nonlinear units -> accelerator models) reproducing the
// paper's headline relationships on a small scale — now routed through
// the bbal::Session co-simulation API.
#include <gtest/gtest.h>

#include "bbal/session.hpp"
#include "nl/unit_cost.hpp"

namespace bbal {
namespace {

using namespace bbal::llm;

/// One shared prepared model for the whole suite (expensive to build).
std::shared_ptr<const PreparedModel> shared_model() {
  static const std::shared_ptr<const PreparedModel> prepared =
      prepare_shared("Llama-7B", /*eval_tokens=*/320);
  return prepared;
}

/// Perplexity of one strategy on the shared model, via a Session.
double session_ppl(const std::string& matmul,
                   const std::string& nonlinear = "FP32") {
  auto session = Session::Builder()
                     .prepared(shared_model())
                     .matmul(matmul)
                     .nonlinear(nonlinear)
                     .build()
                     .expect("build");
  return session.evaluate().expect("evaluate").perplexity;
}

TEST(Integration, BaselineCalibratedToPaperRow) {
  const PreparedModel& m = *shared_model();
  // Self-PPL vs logit scale has cliffs on short streams; the calibration
  // keeps the closest point, which can sit ~20% off on unlucky seeds.
  EXPECT_NEAR(m.fp32_ppl, m.config.fp_baseline_ppl,
              m.config.fp_baseline_ppl * 0.3);
}

TEST(Integration, WideBbfpTracksBaseline) {
  const double ppl = session_ppl("BBFP(6,4)");
  // Synthetic small models carry more relative error per layer than a
  // trained 7B; the paper-scale claim is checked as a trend in Table II.
  EXPECT_LT(ppl, shared_model()->fp32_ppl * 1.5);
}

TEST(Integration, AccuracyOrderingAcrossWidths) {
  const double b64 = session_ppl("BBFP(6,4)");
  const double b42 = session_ppl("BBFP(4,2)");
  const double bfp4 = session_ppl("BFP4");
  EXPECT_LE(b64, b42 * 1.05);  // wider mantissa at least as good
  // BBFP beats (or at worst matches) BFP at 4-bit width; the strict
  // per-column comparison holds on 11/12 Table II columns (bench_table2),
  // a single short stream carries sampling noise.
  EXPECT_LT(b42, bfp4 * 1.3);
}

TEST(Integration, BbfpBeatsOltronOnLlamaLikeModel) {
  // Fig. 8 / Table II: outlier budgets break on outlier-rich models.
  EXPECT_LT(session_ppl("BBFP(4,2)"), session_ppl("Oltron"));
}

TEST(Integration, OliveCatastrophic) {
  EXPECT_GT(session_ppl("Olive"), shared_model()->fp32_ppl * 5.0);
}

TEST(Integration, NonlinearBbfpSafeBfpWorse) {
  // Table IV setting: sharp-attention model (the regime where BFP10's
  // max alignment visibly hurts), linear layers FP32.
  static const std::shared_ptr<const PreparedModel> prepared =
      prepare_shared("Llama-7B-nl", 224);
  auto ppl_with_nl = [&](const std::string& nl) {
    auto session = Session::Builder()
                       .prepared(prepared)
                       .nonlinear(nl)
                       .build()
                       .expect("build");
    return session.evaluate().expect("evaluate").perplexity;
  };
  const double ppl_bbfp = ppl_with_nl("BBFP-LUT(10,5)");
  const double ppl_bfp = ppl_with_nl("BFP-LUT(10)");
  EXPECT_LT(ppl_bbfp, prepared->fp32_ppl * 1.10);
  EXPECT_GT(ppl_bfp, ppl_bbfp);
}

TEST(Integration, IsoAreaThroughputStory) {
  // The Fig. 8 compute story end to end on the accelerator model:
  // cost-only sessions, identical fixed prefill workload, iso PE area.
  auto throughput = [](const std::string& strategy) {
    auto session = Session::Builder()
                       .prepared(shared_model())
                       .matmul(strategy)
                       .accelerator_iso_area(120000.0, 51.2)
                       .skip_accuracy()
                       .workload_prefill(512)
                       .build()
                       .expect("build");
    return session.evaluate().expect("evaluate").run.throughput_gops;
  };
  EXPECT_GT(throughput("BBFP(3,1)"), throughput("BFP4") * 1.08);
}

TEST(Integration, EnergyStory) {
  // Fig. 9: same array, BBFP(3,x) no more expensive than BFP4; BBFP at
  // equal width within a modest premium of BFP.
  auto energy = [](const std::string& strategy) {
    accel::AcceleratorConfig cfg;
    cfg.array_rows = cfg.array_cols = 16;
    auto session = Session::Builder()
                       .prepared(shared_model())
                       .matmul(strategy)
                       .accelerator(cfg)
                       .skip_accuracy()
                       .workload_prefill(256)
                       .build()
                       .expect("build");
    return session.evaluate().expect("evaluate").energy.total_j();
  };
  EXPECT_LT(energy("BBFP(3,1)"), energy("BFP4") * 1.02);
  EXPECT_LT(energy("BBFP(6,3)"), energy("BFP6") * 1.25);
}

TEST(Integration, NonlinearUnitCostStory) {
  // Table V ordering via the registry of unit cost models.
  EXPECT_GT(nl::bbal_nl_unit_cost(16).efficiency(),
            nl::base2_softmax_cost().efficiency() * 10.0);
  EXPECT_LT(nl::pseudo_softmax_cost().adp(),
            nl::bbal_nl_unit_cost(16).adp());
}

}  // namespace
}  // namespace bbal
