// Proof that the carry-chain simplification (Eq. 13/14) is exact, plus the
// area-saving claim of Section IV.A.
#include "arith/sparse_adder.hpp"

#include <gtest/gtest.h>

#include "common/bitutils.hpp"
#include "common/rng.hpp"

namespace bbal::arith {
namespace {

TEST(SparseAdder, MatchesPlainAdditionWhenAllFullAdders) {
  Rng rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    const auto a = static_cast<std::uint64_t>(rng.uniform_int(0, 0xFFF));
    const auto b = static_cast<std::uint64_t>(rng.uniform_int(0, 0xFFF));
    const SparseAddOutcome out = sparse_add(a, b, 0, 13);
    EXPECT_EQ(out.sum, (a + b) & low_mask(13));
    EXPECT_EQ(out.full_adder_cells, 13);
    EXPECT_EQ(out.carry_chain_cells, 0);
  }
}

TEST(SparseAdder, ExactWithCarryChainOnZeroPositions) {
  // BBFP(4,2) product field: 12 bits, 8 significant at offsets {0, 2, 4}.
  Rng rng(2);
  for (const int lift : {0, 2, 4}) {
    const std::uint64_t mask = low_mask(12) & ~(low_mask(8) << lift);
    for (int trial = 0; trial < 300; ++trial) {
      const auto acc = static_cast<std::uint64_t>(rng.uniform_int(0, 0xFFF));
      const auto prod =
          static_cast<std::uint64_t>(rng.uniform_int(0, 0xFF)) << lift;
      const SparseAddOutcome out = sparse_add(acc, prod, mask, 12);
      EXPECT_EQ(out.sum, (acc + prod) & low_mask(12))
          << "lift=" << lift << " acc=" << acc << " prod=" << prod;
      EXPECT_EQ(out.carry_chain_cells, 4);
      EXPECT_EQ(out.full_adder_cells, 8);
    }
  }
}

TEST(SparseAdder, CarryPropagatesThroughChain) {
  // 0b0111 + 0b0001 with top three bits as chain: carry must ripple.
  const std::uint64_t mask = 0b1110;
  const SparseAddOutcome out = sparse_add(0b0111, 0b0001, mask, 4);
  EXPECT_EQ(out.sum, 0b1000u);
  EXPECT_FALSE(out.carry_out);
}

TEST(SparseAdder, CarryOutReported) {
  const SparseAddOutcome out = sparse_add(0xFFF, 0x001, 0xFFE, 12);
  EXPECT_EQ(out.sum, 0u);
  EXPECT_TRUE(out.carry_out);
}

TEST(ProductZeroMask, MatchesFlagCombinations) {
  // m = 4, d = 2 -> 12-bit field, 8 significant bits.
  EXPECT_EQ(product_zero_mask(4, 2, false, false), 0xF00u);  // lift 0
  EXPECT_EQ(product_zero_mask(4, 2, true, false), 0xC03u);   // lift 2
  EXPECT_EQ(product_zero_mask(4, 2, false, true), 0xC03u);
  EXPECT_EQ(product_zero_mask(4, 2, true, true), 0x00Fu);    // lift 4
}

TEST(ProductZeroMask, BfpDegenerate) {
  // d = 0: no zero positions, plain full adder.
  EXPECT_EQ(product_zero_mask(4, 0, false, false), 0u);
}

TEST(AdderSavings, TwelveBitCaseNearPaperClaim) {
  // 8-bit adder + 4-bit carry chain vs 12-bit adder: paper reports ~15%.
  const AdderSavings s = adder_savings(12, 4);
  EXPECT_GT(s.saving_fraction, 0.10);
  EXPECT_LT(s.saving_fraction, 0.25);
}

TEST(AdderSavings, GrowsWithChainFraction) {
  double prev = 0.0;
  for (int chain = 0; chain <= 12; chain += 2) {
    const AdderSavings s = adder_savings(12, chain);
    EXPECT_GE(s.saving_fraction, prev);
    prev = s.saving_fraction;
  }
}

struct SparsePattern {
  int m;
  int d;
  bool fa;
  bool fb;
};

class SparseAdderProperty : public ::testing::TestWithParam<SparsePattern> {};

TEST_P(SparseAdderProperty, ExactForAllPaperConfigs) {
  const auto [m, d, fa, fb] = GetParam();
  const int width = 2 * m + 2 * d + 2;  // field + guard
  const std::uint64_t mask =
      product_zero_mask(m, d, fa, fb);  // guard bits use full adders
  const int lift = d * ((fa ? 1 : 0) + (fb ? 1 : 0));
  Rng rng(static_cast<std::uint64_t>(m * 1000 + d * 100 + fa * 10 + fb));
  for (int trial = 0; trial < 200; ++trial) {
    // 64-bit shifts: width reaches 32 for the m=10,d=5 config, which would
    // overflow (UB) in 32-bit arithmetic.
    const auto acc = static_cast<std::uint64_t>(
        rng.uniform_int(0, (std::int64_t{1} << width) - 1));
    const auto mant = static_cast<std::uint64_t>(
        rng.uniform_int(0, (std::int64_t{1} << (2 * m)) - 1));
    const std::uint64_t prod = mant << lift;
    const SparseAddOutcome out = sparse_add(acc, prod, mask, width);
    EXPECT_EQ(out.sum, (acc + prod) & low_mask(width));
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigs, SparseAdderProperty,
    ::testing::Values(SparsePattern{4, 2, false, false},
                      SparsePattern{4, 2, true, false},
                      SparsePattern{4, 2, true, true},
                      SparsePattern{3, 2, true, false},
                      SparsePattern{6, 3, false, false},
                      SparsePattern{6, 3, true, false},
                      SparsePattern{6, 3, true, true},
                      SparsePattern{8, 4, true, true},
                      SparsePattern{10, 5, true, false}),
    [](const ::testing::TestParamInfo<SparsePattern>& info) {
      return "m" + std::to_string(info.param.m) + "d" +
             std::to_string(info.param.d) + (info.param.fa ? "F1" : "f1") +
             (info.param.fb ? "F1" : "f0");
    });

}  // namespace
}  // namespace bbal::arith
