// The integer datapath of Eq. (7)/(10) must match the dequantise-then-
// multiply reference bit for bit.
#include "quant/dot.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace bbal::quant {
namespace {

std::vector<double> random_vector(Rng& rng, std::size_t n,
                                  double outlier_rate) {
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.heavy_tailed(1.0, outlier_rate, 25.0);
  return xs;
}

TEST(BlockDot, SimpleHandComputedCase) {
  // Block of exact powers of two in BBFP(4,2).
  const std::vector<double> a = {4.0, 1.0};
  const std::vector<double> b = {2.0, 0.5};
  const BlockFormat fmt = BlockFormat::bbfp(4, 2, 2);
  const EncodedBlock ea = encode_block(a, fmt);
  const EncodedBlock eb = encode_block(b, fmt);
  const BlockDotResult r = dot_block(ea, eb);
  EXPECT_DOUBLE_EQ(r.value, 4.0 * 2.0 + 1.0 * 0.5);
}

TEST(BlockDot, SignsViaXor) {
  const std::vector<double> a = {2.0, -2.0, 2.0, -2.0};
  const std::vector<double> b = {1.0, 1.0, -1.0, -1.0};
  const BlockFormat fmt = BlockFormat::bbfp(4, 2, 4);
  const BlockDotResult r =
      dot_block(encode_block(a, fmt), encode_block(b, fmt));
  EXPECT_DOUBLE_EQ(r.value, 2.0 - 2.0 - 2.0 + 2.0);
}

TEST(BlockDot, IntegerPathMatchesReferenceExactly) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = random_vector(rng, 32, 0.05);
    const auto b = random_vector(rng, 32, 0.05);
    const BlockFormat fmt = BlockFormat::bbfp(4, 2);
    const EncodedBlock ea = encode_block(a, fmt);
    const EncodedBlock eb = encode_block(b, fmt);
    const BlockDotResult r = dot_block(ea, eb);
    const double ref = dot_block_reference(ea, eb);
    EXPECT_DOUBLE_EQ(r.value, ref) << "trial " << trial;
  }
}

TEST(BlockDot, MixedFormatsOnTheTwoSides) {
  // Activations BBFP(4,2) against weights BBFP(6,3) — allowed by Eq. (7).
  Rng rng(78);
  const auto a = random_vector(rng, 32, 0.05);
  const auto b = random_vector(rng, 32, 0.05);
  const EncodedBlock ea = encode_block(a, BlockFormat::bbfp(4, 2));
  const EncodedBlock eb = encode_block(b, BlockFormat::bbfp(6, 3));
  const BlockDotResult r = dot_block(ea, eb);
  EXPECT_DOUBLE_EQ(r.value, dot_block_reference(ea, eb));
}

TEST(BlockDot, BfpBlocksAlsoExact) {
  Rng rng(79);
  const auto a = random_vector(rng, 32, 0.05);
  const auto b = random_vector(rng, 32, 0.05);
  const EncodedBlock ea = encode_block(a, BlockFormat::bfp(6));
  const EncodedBlock eb = encode_block(b, BlockFormat::bfp(6));
  const BlockDotResult r = dot_block(ea, eb);
  EXPECT_DOUBLE_EQ(r.value, dot_block_reference(ea, eb));
}

TEST(BlockDot, ProductBitWidthBoundedByFormat) {
  // Paper Section IV.A: BBFP(4,2) products occupy at most 2m + 2(m-o) = 12
  // bits — the sizing fact behind the sparse adder.
  Rng rng(80);
  for (int trial = 0; trial < 100; ++trial) {
    const auto a = random_vector(rng, 32, 0.2);
    const auto b = random_vector(rng, 32, 0.2);
    const BlockFormat fmt = BlockFormat::bbfp(4, 2);
    const BlockDotResult r =
        dot_block(encode_block(a, fmt), encode_block(b, fmt));
    EXPECT_LE(r.max_product_bits, 12);
  }
}

TEST(BlockDot, ZeroBlocksYieldZero) {
  const std::vector<double> zeros(32, 0.0);
  const std::vector<double> ones(32, 1.0);
  const BlockFormat fmt = BlockFormat::bbfp(4, 2);
  const BlockDotResult r =
      dot_block(encode_block(zeros, fmt), encode_block(ones, fmt));
  EXPECT_EQ(r.accumulator, 0);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
}

TEST(QuantisedDot, ApproachesExactDotAsWidthGrows) {
  Rng rng(81);
  const auto a = random_vector(rng, 256, 0.05);
  const auto b = random_vector(rng, 256, 0.05);
  double exact = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) exact += a[i] * b[i];

  double prev_err = 1e300;
  for (const int m : {3, 4, 6, 8, 10}) {
    const BlockFormat fmt = BlockFormat::bbfp(m, m / 2);
    const double approx = quantised_dot(a, fmt, b, fmt);
    const double err = std::fabs(approx - exact);
    EXPECT_LE(err, prev_err * 1.5 + 1e-9) << "m=" << m;  // broadly decreasing
    prev_err = err;
  }
  // At 10 bits the dot product is accurate to a fraction of a percent.
  const BlockFormat wide = BlockFormat::bbfp(10, 5);
  EXPECT_NEAR(quantised_dot(a, wide, b, wide), exact,
              std::fabs(exact) * 0.01 + 0.5);
}

struct DotParam {
  int m;
  int o;
  std::size_t n;
};

class QuantisedDotProperty : public ::testing::TestWithParam<DotParam> {};

TEST_P(QuantisedDotProperty, IntegerAndReferenceAgreeOnEveryBlock) {
  const auto [m, o, n] = GetParam();
  Rng rng(8000 + static_cast<std::uint64_t>(m * 100 + o * 10) + n);
  const auto a = random_vector(rng, n, 0.1);
  const auto b = random_vector(rng, n, 0.1);
  const BlockFormat fmt = BlockFormat::bbfp(m, o);
  const std::size_t bs = static_cast<std::size_t>(fmt.block_size);
  for (std::size_t start = 0; start < n; start += bs) {
    const std::size_t len = std::min(bs, n - start);
    const EncodedBlock ea =
        encode_block(std::span<const double>(a).subspan(start, len), fmt);
    const EncodedBlock eb =
        encode_block(std::span<const double>(b).subspan(start, len), fmt);
    const BlockDotResult r = dot_block(ea, eb);
    EXPECT_DOUBLE_EQ(r.value, dot_block_reference(ea, eb));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuantisedDotProperty,
    ::testing::Values(DotParam{3, 1, 64}, DotParam{3, 2, 96},
                      DotParam{4, 2, 128}, DotParam{4, 3, 64},
                      DotParam{6, 3, 128}, DotParam{6, 4, 64},
                      DotParam{6, 5, 64}, DotParam{8, 4, 96},
                      DotParam{10, 5, 64}),
    [](const ::testing::TestParamInfo<DotParam>& info) {
      return "m" + std::to_string(info.param.m) + "o" +
             std::to_string(info.param.o) + "n" +
             std::to_string(info.param.n);
    });

}  // namespace
}  // namespace bbal::quant
