// Eq. (8) error analysis: the shared-exponent PMF drives the variance, and
// BBFP's lowered exponent shifts it down.
#include "quant/error_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "quant/block.hpp"

namespace bbal::quant {
namespace {

std::vector<double> gaussian_data(std::uint64_t seed, std::size_t n,
                                  double stddev) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.gaussian(0.0, stddev);
  return xs;
}

TEST(ErrorModel, PmfSumsToOne) {
  const auto data = gaussian_data(1, 4096, 1.0);
  const ErrorReport report = analyse_error(data, BlockFormat::bbfp(4, 2));
  double sum = 0.0;
  for (const auto& [e, p] : report.shared_exponent_pmf) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ErrorModel, BbfpPmfSitsBelowBfpPmf) {
  // Eq. (9): E_s(BBFP) = E_s(BFP) - (m - o) for identical data.
  const auto data = gaussian_data(2, 4096, 1.0);
  const ErrorReport bbfp = analyse_error(data, BlockFormat::bbfp(4, 2));
  const ErrorReport bfp = analyse_error(data, BlockFormat::bfp(4));
  double mean_bbfp = 0.0;
  double mean_bfp = 0.0;
  for (const auto& [e, p] : bbfp.shared_exponent_pmf) mean_bbfp += e * p;
  for (const auto& [e, p] : bfp.shared_exponent_pmf) mean_bfp += e * p;
  EXPECT_NEAR(mean_bfp - mean_bbfp, 2.0, 1e-9);  // exactly m - o
}

TEST(ErrorModel, PredictedVarianceTracksEmpiricalForBfp) {
  // For BFP (everything in the low group) Eq. (8) should be within ~3x of
  // the measured MSE on Gaussian data (distribution effects account for
  // the remainder — mantissa bins are not uniformly filled).
  const auto data = gaussian_data(3, 16384, 1.0);
  const ErrorReport report = analyse_error(data, BlockFormat::bfp(6));
  EXPECT_GT(report.predicted_variance, report.empirical_mse / 3.0);
  EXPECT_LT(report.predicted_variance, report.empirical_mse * 3.0);
}

TEST(ErrorModel, FlagAwarePredictionAtLeastPlainPrediction) {
  const auto data = gaussian_data(4, 8192, 1.0);
  const ErrorReport report = analyse_error(data, BlockFormat::bbfp(4, 2));
  EXPECT_GE(report.predicted_variance_flag_aware,
            report.predicted_variance * 0.999);
  EXPECT_GT(report.flag_fraction, 0.0);
  EXPECT_LT(report.flag_fraction, 0.6);
}

TEST(ErrorModel, BfpHasNoFlags) {
  const auto data = gaussian_data(5, 2048, 1.0);
  const ErrorReport report = analyse_error(data, BlockFormat::bfp(4));
  EXPECT_EQ(report.flag_fraction, 0.0);
}

TEST(ErrorModel, PredictedVarianceDropsWithMantissaWidth) {
  const auto data = gaussian_data(6, 8192, 1.0);
  double prev = 1e9;
  for (const int m : {3, 4, 6, 8}) {
    const ErrorReport r = analyse_error(data, BlockFormat::bfp(m));
    EXPECT_LT(r.predicted_variance, prev);
    prev = r.predicted_variance;
  }
}

TEST(ErrorModel, EmpiricalMseMatchesAnalyseError) {
  const auto data = gaussian_data(7, 2048, 2.0);
  const BlockFormat fmt = BlockFormat::bbfp(6, 3);
  EXPECT_DOUBLE_EQ(empirical_mse(data, fmt),
                   analyse_error(data, fmt).empirical_mse);
}

TEST(ErrorModel, WiderDataRaisesVarianceViaPmf) {
  // Scaling the data by 4 shifts every block exponent by 2 and the
  // variance by ~16x (Eq. 8's 2^(2 gamma) dependence).
  const auto data = gaussian_data(8, 8192, 1.0);
  std::vector<double> scaled = data;
  for (auto& x : scaled) x *= 4.0;
  const BlockFormat fmt = BlockFormat::bfp(5);
  const double v1 = analyse_error(data, fmt).predicted_variance;
  const double v2 = analyse_error(scaled, fmt).predicted_variance;
  EXPECT_NEAR(v2 / v1, 16.0, 0.5);
}

}  // namespace
}  // namespace bbal::quant
