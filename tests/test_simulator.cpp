// Cycle-level simulator invariants and the iso-area machinery behind Fig. 8.
#include "accel/simulator.hpp"

#include <gtest/gtest.h>

#include "accel/gemm_executor.hpp"
#include "common/rng.hpp"
#include "llm/backend.hpp"

namespace bbal::accel {
namespace {

AcceleratorConfig base_config() {
  AcceleratorConfig cfg;
  cfg.strategy = "BBFP(4,2)";
  cfg.array_rows = 16;
  cfg.array_cols = 16;
  return cfg;
}

TEST(Simulator, CyclesLowerBoundedByComputeRoof) {
  const AcceleratorConfig cfg = base_config();
  const GemmShape g{256, 512, 512, "fc"};
  const GemmStats s = simulate_gemm(cfg, g);
  EXPECT_EQ(s.macs, 256ll * 512 * 512);
  // Cycles can never beat MACs / PEs.
  EXPECT_GE(s.cycles, static_cast<double>(s.macs) /
                          static_cast<double>(cfg.pe_count()));
  EXPECT_LE(s.utilization(cfg), 1.0);
  EXPECT_GT(s.utilization(cfg), 0.3);  // big square GEMM should run well
}

TEST(Simulator, GemvUtilizationIsPoor) {
  // Decode-phase GEMVs (M = 1) cannot fill a weight-stationary array.
  const AcceleratorConfig cfg = base_config();
  const GemmStats s = simulate_gemm(cfg, {1, 512, 512, "gemv"});
  EXPECT_LT(s.utilization(cfg), 0.2);
}

TEST(Simulator, MoreMacsMoreCycles) {
  const AcceleratorConfig cfg = base_config();
  const double c1 = simulate_gemm(cfg, {64, 256, 256, "a"}).cycles;
  const double c2 = simulate_gemm(cfg, {128, 256, 256, "b"}).cycles;
  EXPECT_GT(c2, c1);
}

TEST(Simulator, BiggerArrayFasterOnBigGemm) {
  AcceleratorConfig small = base_config();
  AcceleratorConfig big = base_config();
  big.array_rows = big.array_cols = 32;
  const GemmShape g{512, 1024, 1024, "fc"};
  EXPECT_LT(simulate_gemm(big, g).cycles, simulate_gemm(small, g).cycles);
}

TEST(Simulator, LowBitFormatsMoveFewerDramBytes) {
  AcceleratorConfig bfp6 = base_config();
  bfp6.strategy = "BFP6";
  AcceleratorConfig fp16 = base_config();
  fp16.strategy = "FP16";
  const GemmShape g{128, 512, 512, "fc"};
  EXPECT_LT(simulate_gemm(bfp6, g).dram_bytes,
            simulate_gemm(fp16, g).dram_bytes);
}

TEST(Simulator, BandwidthStarvedRunsAreMemoryBound) {
  AcceleratorConfig cfg = base_config();
  cfg.dram_gbps = 0.5;  // starve
  const GemmStats s = simulate_gemm(cfg, {4, 2048, 2048, "skinny"});
  EXPECT_GT(s.memory_cycles, s.compute_cycles);
  EXPECT_GE(s.cycles, s.memory_cycles);
}

TEST(Simulator, EnergyComponentsPositiveAndDramScalesWithBits) {
  const AcceleratorConfig cfg = base_config();
  const std::vector<GemmShape> w = {{128, 512, 512, "fc"}};
  const RunStats run = simulate_workload(cfg, w);
  EXPECT_GT(run.energy.core_j, 0.0);
  EXPECT_GT(run.energy.buffer_j, 0.0);
  EXPECT_GT(run.energy.dram_j, 0.0);
  EXPECT_GT(run.energy.static_j, 0.0);

  AcceleratorConfig fp16 = cfg;
  fp16.strategy = "FP16";
  const RunStats run16 = simulate_workload(fp16, w);
  EXPECT_GT(run16.energy.dram_j, run.energy.dram_j);
}

TEST(IsoArea, PeCountsScaleInverselyWithPeArea) {
  const double budget = 150000.0;  // um^2
  const AcceleratorConfig bfp4 = iso_area_config("BFP4", budget);
  const AcceleratorConfig bbfp31 = iso_area_config("BBFP(3,1)", budget);
  EXPECT_GT(bbfp31.pe_count(), bfp4.pe_count());
  // Both fit the budget.
  EXPECT_LE(bfp4.pe_array_area_um2(), budget * 1.02);
  EXPECT_LE(bbfp31.pe_array_area_um2(), budget * 1.02);
}

TEST(IsoArea, HeadlineClaim_Bbfp31FasterThanBfp4) {
  // Fig. 8: at iso PE area, BBFP(3,1) beats BFP4 on throughput (paper: 40%).
  const double budget = 150000.0;
  const std::vector<GemmShape> w = {{256, 1024, 1024, "fc"},
                                    {256, 1024, 2752, "mlp"}};
  const RunStats bfp4 = simulate_workload(iso_area_config("BFP4", budget), w);
  const RunStats bbfp31 =
      simulate_workload(iso_area_config("BBFP(3,1)", budget), w);
  EXPECT_GT(bbfp31.throughput_gops, bfp4.throughput_gops * 1.1);
}

TEST(Workload, DecodeStepShapes) {
  llm::ModelConfig cfg;
  cfg.d_model = 128;
  cfg.n_layers = 2;
  cfg.n_heads = 4;
  cfg.d_ff = 344;
  const auto gemms = decode_step_gemms(cfg, 1024);
  EXPECT_EQ(gemms.size(), 7u * 2u);
  // Attention terms scale with ctx.
  const auto g512 = decode_step_gemms(cfg, 512);
  EXPECT_GT(total_macs(gemms), total_macs(g512));
  const auto nl = decode_step_nl_ops(cfg, 1024);
  ASSERT_EQ(nl.size(), 2u);
  EXPECT_EQ(nl[0].width, 1024);
  EXPECT_EQ(nl[0].vectors, 4 * 2);
}

TEST(Workload, PrefillScalesQuadraticallyInAttention) {
  llm::ModelConfig cfg;
  cfg.d_model = 128;
  cfg.n_layers = 1;
  cfg.n_heads = 4;
  cfg.d_ff = 344;
  const auto a = total_macs(prefill_gemms(cfg, 256));
  const auto b = total_macs(prefill_gemms(cfg, 512));
  EXPECT_GT(static_cast<double>(b) / static_cast<double>(a), 2.0);
}

TEST(GemmExecutor, MatchesFakeQuantBackend) {
  // The golden integer-datapath GEMM equals the fast fake-quant executor.
  Rng rng(42);
  llm::Matrix a(5, 96), w(96, 7);
  for (float& v : a.flat())
    v = static_cast<float>(rng.heavy_tailed(1.0, 0.05, 20.0));
  for (float& v : w.flat())
    v = static_cast<float>(rng.heavy_tailed(0.2, 0.02, 15.0));

  const quant::BlockFormat fmt = quant::BlockFormat::bbfp(4, 2);
  const llm::Matrix golden = execute_gemm_bit_exact(a, w, fmt, fmt);

  llm::BlockQuantMatmulBackend backend(fmt, fmt);
  const int h = backend.prepare_weights(w, "w");
  llm::Matrix fast;
  backend.matmul(a, h, fast);

  ASSERT_EQ(golden.rows(), fast.rows());
  ASSERT_EQ(golden.cols(), fast.cols());
  for (int i = 0; i < golden.rows(); ++i)
    for (int j = 0; j < golden.cols(); ++j)
      EXPECT_NEAR(golden.at(i, j), fast.at(i, j),
                  1e-5 * (1.0 + std::fabs(golden.at(i, j))))
          << i << "," << j;
}

TEST(GemmExecutor, ExactWhenValuesOnGrid) {
  // Values representable in the format produce an exact GEMM.
  llm::Matrix a(2, 64), w(64, 3);
  for (int i = 0; i < 2; ++i)
    for (int k = 0; k < 64; ++k) a.at(i, k) = (k % 2 == 0) ? 1.0f : -0.5f;
  for (int k = 0; k < 64; ++k)
    for (int j = 0; j < 3; ++j) w.at(k, j) = (k + j) % 3 == 0 ? 2.0f : 0.25f;
  const quant::BlockFormat fmt = quant::BlockFormat::bbfp(6, 3);
  const llm::Matrix golden = execute_gemm_bit_exact(a, w, fmt, fmt);
  const llm::Matrix exact = llm::matmul(a, w);
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 3; ++j)
      EXPECT_FLOAT_EQ(golden.at(i, j), exact.at(i, j));
}

}  // namespace
}  // namespace bbal::accel
