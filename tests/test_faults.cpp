// serve::FaultPlan + engine robustness: the fault-plan grammar round-trips
// and seeded expansion is deterministic; a decode flight preempted and
// resumed mid-stream produces the identical FNV-1a stream hash as the same
// request run without preemption (across fifo/sjf/prefix-aware at 1 and 4
// threads — the PR's bit-identity acceptance criterion); deadlines,
// cancellations and exhaustion windows retire requests with typed reasons
// and partial output that is a prefix of the unfaulted stream; and the
// fault block stays out of Report JSON on default runs so committed BENCH
// rows remain byte-exact.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

// Same GCC-12 -O2 false positive as test_serve.cpp: moving Engine::Options
// with a disengaged accelerator optional trips -Wmaybe-uninitialized
// through the inlined test bodies.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include "common/threadpool.hpp"
#include "serve/engine.hpp"
#include "serve/faults.hpp"
#include "serve/load.hpp"
#include "serve/policy.hpp"
#include "serve/workload.hpp"

namespace bbal {
namespace {

std::shared_ptr<const llm::PreparedModel> tiny_model() {
  static const std::shared_ptr<const llm::PreparedModel> prepared = [] {
    llm::ModelConfig cfg;
    cfg.name = "faults-test";
    cfg.vocab = 96;
    cfg.d_model = 64;
    cfg.n_layers = 2;
    cfg.n_heads = 2;
    cfg.d_ff = 96;
    cfg.seed = 29;
    return prepare_shared(cfg, /*eval_tokens=*/96);
  }();
  return prepared;
}

serve::Engine make_engine(serve::Engine::Options options) {
  return serve::Engine::create(tiny_model(), quant::spec_of("BBFP(4,2)"),
                               quant::StrategySpec::fp32(),
                               std::move(options))
      .expect("engine");
}

serve::Report run_requests(const std::vector<serve::Request>& requests,
                           serve::Engine::Options options) {
  serve::Engine engine = make_engine(std::move(options));
  for (const serve::Request& req : requests) engine.submit(req);
  return engine.run();
}

/// True when `partial` is a (possibly complete) prefix of `full`.
bool is_prefix(const std::vector<int>& partial, const std::vector<int>& full) {
  if (partial.size() > full.size()) return false;
  return std::equal(partial.begin(), partial.end(), full.begin());
}

TEST(FaultPlan, ParseDescribeRoundTripsAndRejectsBadEvents) {
  const auto plan = serve::parse_fault_plan(
      " exhaust@8..16; flaky@4#1 ;cancel@12#3;spike@2+6 ");
  ASSERT_TRUE(plan.is_ok()) << plan.message();
  EXPECT_EQ(plan.value().describe(),
            "exhaust@8..16;flaky@4#1;cancel@12#3;spike@2+6");
  const auto again = serve::parse_fault_plan(plan.value().describe());
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value().describe(), plan.value().describe());

  EXPECT_TRUE(plan.value().exhausted_at(8));
  EXPECT_TRUE(plan.value().exhausted_at(15));
  EXPECT_FALSE(plan.value().exhausted_at(16));  // [begin, end)
  EXPECT_TRUE(plan.value().reserve_fails(4, 1));
  EXPECT_FALSE(plan.value().reserve_fails(4, 2));

  EXPECT_TRUE(serve::parse_fault_plan("").is_ok());
  EXPECT_TRUE(serve::parse_fault_plan("").value().empty());
  for (const char* bad :
       {"explode@3", "exhaust@9", "exhaust@9..x", "flaky@4", "cancel@#2",
        "spike@2", "exhaust@16..8", "flaky@-2#0"}) {
    EXPECT_FALSE(serve::parse_fault_plan(bad).is_ok()) << bad;
  }
}

TEST(FaultPlan, SeededExpansionIsAPureFunctionOfItsArguments) {
  const serve::FaultPlan a = serve::seeded_fault_plan(7, 64);
  const serve::FaultPlan b = serve::seeded_fault_plan(7, 64);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_FALSE(a.empty());
  EXPECT_NE(a.describe(), serve::seeded_fault_plan(8, 64).describe());
  for (const auto& w : a.exhaustion) {
    EXPECT_GE(w.begin_tick, 0);
    EXPECT_LE(w.end_tick, 64);
    EXPECT_LT(w.begin_tick, w.end_tick);
  }
  // seed@S+H splices the same expansion through the grammar.
  const auto parsed = serve::parse_fault_plan("seed@7+64");
  ASSERT_TRUE(parsed.is_ok()) << parsed.message();
  EXPECT_EQ(parsed.value().describe(), a.describe());
}

TEST(ServeFaults, PreemptedAndResumedStreamsHashIdentically) {
  // The acceptance criterion: transient reserve faults suspend decoding
  // flights (private KV pages released) which later resume by
  // re-prefilling prompt + generated — and every token stream, and the
  // FNV-1a hash over all of them, must equal the unfaulted sibling's,
  // under every scheduling policy at 1 and 4 threads. Faults are spread
  // over the early ticks and several submit indices so at least one lands
  // on an active flight regardless of admission order.
  const std::vector<serve::Request> requests = serve::synthetic_requests(
      tiny_model()->config, /*count=*/6, /*base_prompt_len=*/6,
      /*max_new_tokens=*/8);
  const auto plan = serve::parse_fault_plan(
                        "flaky@5#0;flaky@6#1;flaky@7#2;flaky@9#3;flaky@11#0")
                        .expect("plan");

  for (const std::string& policy : serve::policy_names()) {
    for (const int threads : {1, 4}) {
      common::ThreadPool::set_global_threads(threads);
      serve::Engine::Options clean_options;
      clean_options.max_batch = 3;
      clean_options.policy = policy;
      const serve::Report clean = run_requests(requests, clean_options);

      serve::Engine::Options faulted_options;
      faulted_options.max_batch = 3;
      faulted_options.policy = policy;
      faulted_options.faults = plan;
      const serve::Report faulted = run_requests(requests, faulted_options);
      common::ThreadPool::set_global_threads(
          common::ThreadPool::env_threads());

      ASSERT_EQ(clean.completed,
                static_cast<std::int64_t>(requests.size()))
          << policy << " @ " << threads;
      ASSERT_EQ(faulted.completed, clean.completed)
          << policy << " @ " << threads;
      // The run really preempted and really resumed...
      EXPECT_GT(faulted.preemptions, 0) << policy << " @ " << threads;
      EXPECT_EQ(faulted.resumes, faulted.preemptions)
          << policy << " @ " << threads;
      EXPECT_GT(faulted.requeue_delay_mean_ticks, 0.0)
          << policy << " @ " << threads;
      EXPECT_GT(faulted.preempt_recompute_tokens, 0)
          << policy << " @ " << threads;
      // ...and changed not a single token of a single stream.
      EXPECT_EQ(faulted.stream_hash, clean.stream_hash)
          << policy << " @ " << threads;
      for (std::size_t i = 0; i < requests.size(); ++i) {
        EXPECT_TRUE(faulted.results[i].ok) << faulted.results[i].error;
        EXPECT_EQ(faulted.results[i].generated, clean.results[i].generated)
            << policy << " @ " << threads << " request " << i;
      }
    }
  }
}

TEST(ServeFaults, ExhaustionWindowTypesOomWithoutPreemptionAndResumesWithIt) {
  // A long frozen window over the decode phase. Prompts of 14 tokens on
  // 16-token pages: the page-boundary crossing at position 16 lands inside
  // the window, so without preemption the flights retire with a typed oom
  // and their partial output; with preemption on, they suspend, outwait
  // the window and complete bit-identically to the unfaulted run.
  std::vector<serve::Request> requests;
  for (int r = 0; r < 2; ++r) {
    serve::Request req;
    for (int t = 0; t < 14; ++t) req.prompt.push_back((3 * r + t) % 96);
    req.max_new_tokens = 8;
    requests.push_back(std::move(req));
  }
  const auto plan =
      serve::parse_fault_plan("exhaust@2..60").expect("plan");

  serve::Engine::Options clean_options;
  clean_options.max_batch = 2;
  const serve::Report clean = run_requests(requests, clean_options);
  ASSERT_EQ(clean.completed, 2);

  serve::Engine::Options hard_options;
  hard_options.max_batch = 2;
  hard_options.faults = plan;
  const serve::Report hard = run_requests(requests, hard_options);
  EXPECT_EQ(hard.completed, 0);
  EXPECT_EQ(hard.oom_failures, 2);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const serve::RequestResult& r = hard.results[i];
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.reason, serve::FinishReason::kOom) << r.error;
    EXPECT_NE(r.error.find("oom"), std::string::npos) << r.error;
    EXPECT_NE(r.error.find("frozen"), std::string::npos) << r.error;
    EXPECT_GT(r.generated.size(), 0u);  // partial output survives
    EXPECT_TRUE(is_prefix(r.generated, clean.results[i].generated));
  }

  serve::Engine::Options soft_options;
  soft_options.max_batch = 2;
  soft_options.faults = plan;
  soft_options.preempt = true;
  const serve::Report soft = run_requests(requests, soft_options);
  EXPECT_EQ(soft.completed, 2);
  EXPECT_EQ(soft.oom_failures, 0);
  EXPECT_GT(soft.preemptions, 0);
  EXPECT_EQ(soft.stream_hash, clean.stream_hash);
  for (std::size_t i = 0; i < requests.size(); ++i)
    EXPECT_EQ(soft.results[i].generated, clean.results[i].generated)
        << "request " << i;
}

TEST(ServeFaults, DeadlineRetiresWithTimeoutAndPartialOutput) {
  serve::Request slow;
  for (int t = 0; t < 4; ++t) slow.prompt.push_back(t + 1);
  slow.max_new_tokens = 12;
  serve::Request sibling = slow;
  slow.deadline_tick = 9;  // mid-decode: ~5 tokens of the 12 exist by then

  serve::Engine::Options clean_options;
  clean_options.max_batch = 1;
  const serve::Report clean = run_requests({sibling}, clean_options);
  ASSERT_EQ(clean.completed, 1);

  serve::Engine::Options options;
  options.max_batch = 1;
  const serve::Report report = run_requests({slow}, options);
  EXPECT_EQ(report.completed, 0);
  EXPECT_EQ(report.timeouts, 1);
  EXPECT_TRUE(report.has_faults);  // a deadline alone arms the fault block
  const serve::RequestResult& r = report.results[0];
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.reason, serve::FinishReason::kTimeout);
  EXPECT_NE(r.error.find("timeout"), std::string::npos) << r.error;
  EXPECT_GT(r.generated.size(), 0u);
  EXPECT_LT(r.generated.size(), 12u);
  EXPECT_TRUE(is_prefix(r.generated, clean.results[0].generated));

  // A deadline that expires while the request is still queued returns
  // empty output — typed, not an untyped error.
  serve::Request queued = sibling;
  queued.deadline_tick = 3;
  serve::Engine::Options narrow;
  narrow.max_batch = 1;
  const serve::Report starved = run_requests({sibling, queued}, narrow);
  EXPECT_EQ(starved.completed, 1);
  EXPECT_EQ(starved.timeouts, 1);
  EXPECT_EQ(starved.results[1].reason, serve::FinishReason::kTimeout);
  EXPECT_EQ(starved.results[1].generated.size(), 0u);
  EXPECT_NE(starved.results[1].error.find("queued"), std::string::npos)
      << starved.results[1].error;

  // Invalid deadlines are caught at validation, named per field.
  serve::Request backwards = sibling;
  backwards.arrival_tick = 8;
  backwards.deadline_tick = 8;
  const serve::Report rejected = run_requests({backwards}, clean_options);
  EXPECT_EQ(rejected.results[0].reason, serve::FinishReason::kInvalid);
  EXPECT_NE(rejected.results[0].error.find("deadline_tick"),
            std::string::npos)
      << rejected.results[0].error;
}

TEST(ServeFaults, CancellationKeepsPartialOutputAndSparesNeighbours) {
  const std::vector<serve::Request> requests = serve::synthetic_requests(
      tiny_model()->config, /*count=*/3, /*base_prompt_len=*/5,
      /*max_new_tokens=*/8);
  serve::Engine::Options clean_options;
  clean_options.max_batch = 3;
  const serve::Report clean = run_requests(requests, clean_options);
  ASSERT_EQ(clean.completed, 3);

  serve::Engine::Options options;
  options.max_batch = 3;
  options.faults = serve::parse_fault_plan("cancel@8#1").expect("plan");
  const serve::Report report = run_requests(requests, options);
  EXPECT_EQ(report.completed, 2);
  EXPECT_EQ(report.cancellations, 1);
  const serve::RequestResult& cancelled = report.results[1];
  EXPECT_FALSE(cancelled.ok);
  EXPECT_EQ(cancelled.reason, serve::FinishReason::kCancelled);
  EXPECT_NE(cancelled.error.find("cancelled"), std::string::npos)
      << cancelled.error;
  EXPECT_TRUE(is_prefix(cancelled.generated, clean.results[1].generated));
  EXPECT_LT(cancelled.generated.size(), clean.results[1].generated.size());
  // The neighbours never notice.
  EXPECT_EQ(report.results[0].generated, clean.results[0].generated);
  EXPECT_EQ(report.results[2].generated, clean.results[2].generated);
}

TEST(ServeFaults, ArrivalSpikePullsTheWindowForwardDeterministically) {
  // Open-loop arrivals with a spike event: every arrival in the window
  // collapses onto the spike tick. Streams are a pure function of the
  // prompts, so the hash must match the unspiked run even though the
  // queueing metrics shift.
  std::vector<serve::Request> requests = serve::synthetic_requests(
      tiny_model()->config, /*count=*/6, /*base_prompt_len=*/5,
      /*max_new_tokens=*/6);
  serve::ArrivalSpec arrival;
  arrival.kind = serve::ArrivalSpec::Kind::kPoisson;
  arrival.rate = 0.05;
  arrival.seed = 11;
  serve::stamp_arrivals(requests, serve::generate_arrivals(arrival, 6));

  serve::Engine::Options clean_options;
  clean_options.max_batch = 2;
  const serve::Report clean = run_requests(requests, clean_options);
  ASSERT_EQ(clean.completed, 6);

  serve::Engine::Options options;
  options.max_batch = 2;
  options.faults = serve::parse_fault_plan("spike@1+200").expect("plan");
  const serve::Report spiked = run_requests(requests, options);
  EXPECT_EQ(spiked.completed, 6);
  EXPECT_EQ(spiked.stream_hash, clean.stream_hash);
  // The flash crowd really happened: the spiked run finishes earlier on
  // the open-loop clock because nobody straggles in late.
  EXPECT_LT(spiked.clock_ticks, clean.clock_ticks);
}

TEST(ServeFaults, ReportEmitsFaultBlockOnlyWhenFaultsAreConfigured) {
  const std::vector<serve::Request> requests = serve::synthetic_requests(
      tiny_model()->config, /*count=*/2, /*base_prompt_len=*/4,
      /*max_new_tokens=*/4);

  serve::Engine::Options plain;
  plain.max_batch = 2;
  const std::string plain_json = run_requests(requests, plain).to_json();
  EXPECT_EQ(plain_json.find("fault_plan"), std::string::npos)
      << "default rows must stay byte-exact: " << plain_json;
  EXPECT_EQ(plain_json.find("\"preemptions\""), std::string::npos)
      << plain_json;

  serve::Engine::Options faulted;
  faulted.max_batch = 2;
  faulted.faults = serve::parse_fault_plan("flaky@4#0").expect("plan");
  faulted.preempt = true;
  const std::string json = run_requests(requests, faulted).to_json();
  EXPECT_NE(json.find("\"fault_plan\": \"flaky@4#0\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"preempt\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"preemptions\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"requeue_delay_mean_ticks\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"timeouts\""), std::string::npos) << json;
}

TEST(ServeFaults, MaxPreemptionsBoundsRequeueingWithATypedReason) {
  // A flaky fault hammering one request past its preemption budget must
  // end in preempted_unrecoverable — typed, partial output intact — never
  // an infinite requeue loop or an untyped error.
  serve::Request req;
  for (int t = 0; t < 4; ++t) req.prompt.push_back(t + 2);
  req.max_new_tokens = 8;

  std::string spec;
  for (int tick = 4; tick < 40; ++tick)
    spec += (spec.empty() ? "" : ";") + std::string("flaky@") +
            std::to_string(tick) + "#0";
  serve::Engine::Options options;
  options.max_batch = 1;
  options.faults = serve::parse_fault_plan(spec).expect("plan");
  options.max_preemptions = 2;
  const serve::Report report = run_requests({req}, options);
  EXPECT_EQ(report.completed, 0);
  EXPECT_EQ(report.oom_failures, 1);
  const serve::RequestResult& r = report.results[0];
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.reason, serve::FinishReason::kPreemptedUnrecoverable);
  EXPECT_EQ(r.preemptions, 2);
  EXPECT_NE(r.error.find("preempted_unrecoverable"), std::string::npos)
      << r.error;
}

}  // namespace
}  // namespace bbal
