#include "common/bitutils.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bbal {
namespace {

TEST(BitUtils, LowMaskBasics) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(4), 0xFu);
  EXPECT_EQ(low_mask(63), 0x7FFFFFFFFFFFFFFFull);
  EXPECT_EQ(low_mask(64), ~std::uint64_t{0});
}

TEST(BitUtils, MsbIndex) {
  EXPECT_EQ(msb_index(0), -1);
  EXPECT_EQ(msb_index(1), 0);
  EXPECT_EQ(msb_index(2), 1);
  EXPECT_EQ(msb_index(3), 1);
  EXPECT_EQ(msb_index(0x8000000000000000ull), 63);
}

TEST(BitUtils, BitWidth) {
  EXPECT_EQ(bit_width_of(0), 0);
  EXPECT_EQ(bit_width_of(1), 1);
  EXPECT_EQ(bit_width_of(255), 8);
  EXPECT_EQ(bit_width_of(256), 9);
}

TEST(BitUtils, BitField) {
  EXPECT_EQ(bit_field(0b1101'1010, 7, 4), 0b1101u);
  EXPECT_EQ(bit_field(0b1101'1010, 3, 0), 0b1010u);
  EXPECT_EQ(bit_field(0xFFull << 32, 39, 32), 0xFFu);
}

TEST(BitUtils, ShrTruncLargeShifts) {
  EXPECT_EQ(shr_trunc(0xFFFF, 4), 0xFFFu);
  EXPECT_EQ(shr_trunc(0xFFFF, 64), 0u);
  EXPECT_EQ(shr_trunc(0xFFFF, 100), 0u);
}

TEST(BitUtils, ShrRneRoundsHalfToEven) {
  // 0b101 >> 1: dropped bit = 1 (tie), kept = 0b10 (even) -> stays 2.
  EXPECT_EQ(shr_rne(0b101, 1), 2u);
  // 0b111 >> 1: dropped 1 (tie), kept 0b11 (odd) -> rounds to 4.
  EXPECT_EQ(shr_rne(0b111, 1), 4u);
  // 0b1011 >> 2: dropped 0b11 > half -> 3.
  EXPECT_EQ(shr_rne(0b1011, 2), 3u);
  // 0b1001 >> 2: dropped 0b01 < half -> 2.
  EXPECT_EQ(shr_rne(0b1001, 2), 2u);
  EXPECT_EQ(shr_rne(123, 0), 123u);
  EXPECT_EQ(shr_rne(0xFFFFFFFF, 64), 0u);
}

TEST(BitUtils, ShrRneMatchesRealRounding) {
  // Cross-check against double rounding for a sweep of values/shifts.
  for (std::uint64_t v = 0; v < 4096; v += 7) {
    for (int s = 1; s < 10; ++s) {
      const double exact =
          static_cast<double>(v) / static_cast<double>(1u << s);
      const double expected = std::nearbyint(exact);
      EXPECT_EQ(static_cast<double>(shr_rne(v, s)), expected)
          << "v=" << v << " s=" << s;
    }
  }
}

TEST(BitUtils, FitsUnsigned) {
  EXPECT_TRUE(fits_unsigned(15, 4));
  EXPECT_FALSE(fits_unsigned(16, 4));
  EXPECT_TRUE(fits_unsigned(0, 0));
}

TEST(BitUtils, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
}

}  // namespace
}  // namespace bbal
