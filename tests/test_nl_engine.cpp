// Nonlinear unit numerics: LUT accuracy bounds, softmax/SiLU behaviour,
// BBFP(10,5) vs BFP10 resolution gap (the Table IV mechanism), sub-table
// provisioning (18 softmax / 24 SiLU) and the baseline units.
#include "nl/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "llm/tensor.hpp"
#include "nl/backends.hpp"

namespace bbal::nl {
namespace {

quant::BlockFormat bbfp105() { return quant::BlockFormat::bbfp(10, 5); }
quant::BlockFormat bfp10() { return quant::BlockFormat::bfp(10); }

TEST(NlEngine, SoftmaxSumsToOne) {
  NlUnitEngine engine(bbfp105());
  Rng rng(1);
  std::vector<float> xs(64);
  for (auto& x : xs) x = static_cast<float>(rng.gaussian(0.0, 4.0));
  engine.softmax(xs);
  double sum = 0.0;
  for (const float v : xs) {
    EXPECT_GE(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 0.02);
}

TEST(NlEngine, SoftmaxCloseToReferenceWithBbfp) {
  NlUnitEngine engine(bbfp105());
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> xs(48);
    for (auto& x : xs) x = static_cast<float>(rng.gaussian(0.0, 3.0));
    std::vector<float> ref = xs;
    llm::softmax_reference(ref);
    engine.softmax(xs);
    for (std::size_t i = 0; i < xs.size(); ++i)
      EXPECT_NEAR(xs[i], ref[i], 0.01) << trial << ":" << i;
  }
}

TEST(NlEngine, Bfp10SoftmaxMuchCoarserThanBbfp105) {
  // The Table IV mechanism: with outliers widening the block range, BFP10's
  // max-aligned step destroys resolution near the top scores.
  Rng rng(3);
  double err_bbfp = 0.0;
  double err_bfp = 0.0;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> xs(64);
    // Competitive top scores (small spread) plus one strongly negative
    // score that widens the (x - max) block range: BFP10 max-aligns to the
    // tail and loses the resolution of the near-zero top scores, while
    // BBFP(10,5)'s low group keeps a 2^(m-o) finer step for them.
    for (auto& x : xs) x = static_cast<float>(rng.gaussian(0.0, 0.6));
    xs[0] = -30.0f;
    std::vector<float> ref = xs;
    llm::softmax_reference(ref);

    std::vector<float> a = xs;
    NlUnitEngine(bbfp105()).softmax(a);
    std::vector<float> b = xs;
    NlUnitEngine(bfp10()).softmax(b);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      err_bbfp += std::fabs(a[i] - ref[i]);
      err_bfp += std::fabs(b[i] - ref[i]);
    }
  }
  // Per call the softmax normalisation cancels part of the common-mode
  // error, so the factor here is modest; the Table IV PPL gap comes from
  // compounding across every head, layer and token (bench_table4).
  EXPECT_LT(err_bbfp * 1.4, err_bfp);
}

TEST(NlEngine, LowGroupResolutionMechanism) {
  // Direct mechanism check via an identity LUT: with a wide-range block,
  // near-zero elements keep 2^(m-o)-finer resolution under BBFP(10,5) than
  // under BFP10 (whose step is hostage to the block max).
  NlUnitEngine bbfp(bbfp105());
  NlUnitEngine bfp(bfp10());
  Rng rng(33);
  double err_bbfp = 0.0;
  double err_bfp = 0.0;
  int counted = 0;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> xs(32);
    for (auto& x : xs) x = -rng.uniform(0.0, 1.0);  // top scores
    xs[0] = -31.0;                                  // range-setting tail
    std::vector<double> a(32), b(32);
    auto identity = [](double x) { return x; };
    bbfp.apply_lut(xs, a, identity);
    bfp.apply_lut(xs, b, identity);
    for (std::size_t i = 1; i < xs.size(); ++i) {
      err_bbfp += std::fabs(a[i] - xs[i]);
      err_bfp += std::fabs(b[i] - xs[i]);
      ++counted;
    }
  }
  ASSERT_GT(counted, 0);
  EXPECT_LT(err_bbfp * 8.0, err_bfp);
}

TEST(NlEngine, SiluMatchesReferenceInBulk) {
  NlUnitEngine engine(bbfp105());
  Rng rng(4);
  std::vector<float> xs(96);
  for (auto& x : xs) x = static_cast<float>(rng.gaussian(0.0, 2.0));
  std::vector<float> ref = xs;
  for (auto& x : ref) x = llm::silu_reference(x);
  engine.silu(xs);
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_NEAR(xs[i], ref[i], 0.02 + 0.01 * std::fabs(ref[i])) << i;
}

TEST(NlEngine, SigmoidAndGeluWithinLutResolution) {
  NlUnitEngine engine(bbfp105());
  std::vector<float> xs = {-6.0f, -2.0f, -0.5f, 0.0f, 0.5f, 2.0f, 6.0f};
  std::vector<float> sig = xs;
  engine.sigmoid(sig);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double expected = 1.0 / (1.0 + std::exp(-xs[i]));
    EXPECT_NEAR(sig[i], expected, 0.02) << i;
  }
  std::vector<float> gel = xs;
  engine.gelu(gel);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double phi = 0.5 * (1.0 + std::erf(xs[i] / std::sqrt(2.0)));
    EXPECT_NEAR(gel[i], xs[i] * phi, 0.05 + 0.02 * std::fabs(xs[i])) << i;
  }
}

TEST(NlEngine, LutErrorBoundedByBucketWidth) {
  // Generic LUT property: |f(x_mid) - f(x)| <= Lip * bucket_width/2 plus
  // entry quantisation; for exp on [-1, 0] with BBFP(10,5) this is tiny.
  NlUnitEngine engine(bbfp105());
  Rng rng(5);
  std::vector<double> xs(32);
  for (auto& x : xs) x = -rng.uniform(0.01, 1.0);
  std::vector<double> out(32);
  engine.apply_lut(xs, out, [](double x) { return std::exp(x); });
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_NEAR(out[i], std::exp(xs[i]), 0.01) << i;
}

TEST(NlEngine, StatsTrackSubtables) {
  NlUnitEngine engine(bbfp105());
  std::vector<float> xs(32, 1.0f);
  for (std::size_t i = 0; i < xs.size(); ++i)
    xs[i] = static_cast<float>(i) * 0.25f - 4.0f;
  engine.softmax(xs);
  const NlUsageStats& stats = engine.stats();
  EXPECT_GT(stats.lut_lookups, 0u);
  EXPECT_GT(stats.blocks_encoded, 0u);
  EXPECT_FALSE(stats.subtables_touched.empty());
}

TEST(NlEngine, ProvisionedSubtablesMatchPaper) {
  // Softmax: exp over x-max in (-2^10, -2^-8], exponents -8..9 -> 18 tables.
  EXPECT_EQ(NlUnitEngine::provisioned_subtables(-8, 9, false), 18);
  // SiLU: sigmoid over |x| exponents -8..3, both signs -> 24 tables.
  EXPECT_EQ(NlUnitEngine::provisioned_subtables(-8, 3, true), 24);
}

TEST(NlEngine, SubtableStorageMatchesAddressWidth) {
  NlUnitEngine engine(bbfp105(), 7);
  // 128 entries x (1 + 5 + 10) bits.
  EXPECT_EQ(engine.subtable_bits(), 128u * 16u);
}

TEST(PseudoSoftmax, ApproximatesButCoarser) {
  PseudoSoftmaxBackend pseudo(3);
  Rng rng(6);
  double err_pseudo = 0.0;
  double err_bbfp = 0.0;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<float> xs(32);
    for (auto& x : xs) x = static_cast<float>(rng.gaussian(0.0, 2.5));
    std::vector<float> ref = xs;
    llm::softmax_reference(ref);
    std::vector<float> a = xs;
    pseudo.softmax(a);
    double sum = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      err_pseudo += std::fabs(a[i] - ref[i]);
      sum += a[i];
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
    std::vector<float> b = xs;
    LutNonlinearBackend lut(bbfp105());
    lut.softmax(b);
    for (std::size_t i = 0; i < xs.size(); ++i)
      err_bbfp += std::fabs(b[i] - ref[i]);
  }
  EXPECT_GT(err_pseudo, err_bbfp);  // [32] trades accuracy for area
}

TEST(Base2Softmax, NearExact) {
  Base2SoftmaxBackend unit(27);
  Rng rng(7);
  std::vector<float> xs(40);
  for (auto& x : xs) x = static_cast<float>(rng.gaussian(0.0, 3.0));
  std::vector<float> ref = xs;
  llm::softmax_reference(ref);
  unit.softmax(xs);
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_NEAR(xs[i], ref[i], 1e-4) << i;
}

TEST(LutBackend, SelectiveQuantisationModes) {
  LutNonlinearBackend softmax_only(bbfp105(), true, false);
  LutNonlinearBackend silu_only(bbfp105(), false, true);
  EXPECT_NE(softmax_only.name().find("softmax-only"), std::string::npos);
  EXPECT_NE(silu_only.name().find("silu-only"), std::string::npos);

  // silu in softmax_only mode must be exact FP32.
  std::vector<float> xs = {-1.5f, 0.25f, 3.0f};
  std::vector<float> ref = xs;
  for (auto& x : ref) x = llm::silu_reference(x);
  softmax_only.silu(xs);
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_FLOAT_EQ(xs[i], ref[i]);
}

}  // namespace
}  // namespace bbal::nl
