// Speculative decoding (docs/SPECULATIVE.md): greedy-argmax verification
// makes the speculative engine's output streams bit-identical to the
// target backend alone — the strongest oracle this repo can gate on. The
// suite pins that identity for every (draft, target) pair of the
// precision ladder at 1 and 4 threads, exact 1.0 acceptance when the
// draft IS the target, the k = 1 / k > max_new_tokens edges, and
// acceptance-rate determinism across runs, seeds and thread counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

// GCC 12 at -O2 misreads moving an Engine::Options whose accelerator
// optional is disengaged as a read of its uninitialized payload (see
// test_serve.cpp; the payload is never read).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include "accel/config.hpp"
#include "bbal/session.hpp"
#include "common/threadpool.hpp"
#include "serve/engine.hpp"
#include "serve/workload.hpp"

namespace bbal {
namespace {

/// The precision ladder — every strategy the registry serves as both a
/// draft and a target.
const std::vector<std::string>& ladder() {
  static const std::vector<std::string> strategies = {
      "FP32", "INT8", "BFP4", "BBFP(4,2)", "BBFP(6,3)"};
  return strategies;
}

std::shared_ptr<const llm::PreparedModel> tiny_model() {
  static const std::shared_ptr<const llm::PreparedModel> prepared = [] {
    llm::ModelConfig cfg;
    cfg.name = "spec-test";
    cfg.vocab = 96;
    cfg.d_model = 64;
    cfg.n_layers = 2;
    cfg.n_heads = 2;
    cfg.d_ff = 96;
    cfg.seed = 29;
    return prepare_shared(cfg, /*eval_tokens=*/96);
  }();
  return prepared;
}

serve::Engine make_engine(const std::string& target, const std::string& draft,
                          int draft_k, bool with_accelerator = false,
                          const std::string& policy = "fifo",
                          int max_batch = 3) {
  serve::Engine::Options options;
  options.max_batch = max_batch;
  options.policy = policy;
  options.draft = draft;
  options.draft_k = draft_k;
  if (with_accelerator) {
    accel::AcceleratorConfig cfg;
    cfg.array_rows = cfg.array_cols = 8;
    options.accelerator = cfg;
  }
  return serve::Engine::create(tiny_model(), quant::spec_of(target),
                               quant::StrategySpec::fp32(),
                               std::move(options))
      .expect("engine");
}

serve::Report run_requests(serve::Engine& engine,
                           const std::vector<serve::Request>& requests) {
  for (const serve::Request& req : requests) engine.submit(req);
  return engine.run();
}

std::vector<serve::Request> suite_requests(int count = 4,
                                           int max_new_tokens = 8,
                                           unsigned seed = 2024) {
  return serve::synthetic_requests(tiny_model()->config, count,
                                   /*base_prompt_len=*/6, max_new_tokens,
                                   seed);
}

// --- The oracle: speculative == target-only, every pair, both widths ---

void expect_all_pairs_bit_identical(int threads) {
  common::ThreadPool::set_global_threads(threads);
  const std::vector<serve::Request> requests = suite_requests();
  for (const std::string& target : ladder()) {
    // The target-only reference streams, computed once per target.
    serve::Engine reference = make_engine(target, "", 0);
    const serve::Report expect = run_requests(reference, requests);
    ASSERT_EQ(expect.completed,
              static_cast<std::int64_t>(requests.size()));
    for (const std::string& draft : ladder()) {
      serve::Engine engine = make_engine(target, draft, /*draft_k=*/3);
      const serve::Report got = run_requests(engine, requests);
      ASSERT_EQ(got.results.size(), expect.results.size());
      for (std::size_t i = 0; i < got.results.size(); ++i) {
        EXPECT_TRUE(got.results[i].ok) << got.results[i].error;
        EXPECT_EQ(got.results[i].generated, expect.results[i].generated)
            << "draft " << draft << " -> target " << target
            << " diverged on request " << i << " at " << threads
            << " threads";
      }
      EXPECT_EQ(got.stream_hash, expect.stream_hash)
          << "draft " << draft << " -> target " << target;
      EXPECT_GT(got.draft_cycles, 0);
      EXPECT_GT(got.drafted_tokens, 0);
    }
  }
  common::ThreadPool::set_global_threads(common::ThreadPool::env_threads());
}

TEST(Speculative, AllPairsBitIdenticalSingleThread) {
  expect_all_pairs_bit_identical(1);
}

TEST(Speculative, AllPairsBitIdenticalFourThreads) {
  expect_all_pairs_bit_identical(4);
}

// --- draft == target: identical arithmetic on both sides, so every
// proposal matches and acceptance is exactly 1.0 ---

TEST(Speculative, DraftEqualsTargetAcceptsEverything) {
  const std::vector<serve::Request> requests = suite_requests();
  for (const std::string& strategy : ladder()) {
    serve::Engine engine = make_engine(strategy, strategy, /*draft_k=*/4);
    const serve::Report report = run_requests(engine, requests);
    EXPECT_EQ(report.completed, static_cast<std::int64_t>(requests.size()));
    EXPECT_GT(report.drafted_tokens, 0) << strategy;
    EXPECT_EQ(report.accepted_tokens, report.drafted_tokens) << strategy;
    EXPECT_DOUBLE_EQ(report.acceptance_rate, 1.0) << strategy;
  }
}

// --- k edge cases ---

TEST(Speculative, DraftKOneMatchesTargetOnly) {
  const std::vector<serve::Request> requests = suite_requests();
  serve::Engine reference = make_engine("BBFP(4,2)", "", 0);
  const serve::Report expect = run_requests(reference, requests);
  serve::Engine engine = make_engine("BBFP(4,2)", "BFP4", /*draft_k=*/1);
  const serve::Report got = run_requests(engine, requests);
  EXPECT_EQ(got.stream_hash, expect.stream_hash);
  EXPECT_EQ(got.generated_tokens, expect.generated_tokens);
  EXPECT_GT(got.draft_cycles, 0);
}

TEST(Speculative, DraftKBeyondBudgetIsCappedAndBitIdentical) {
  // k far past max_new_tokens: the per-cycle window is capped at the
  // remaining budget, the streams stay bit-identical, and no request
  // ever emits past its budget.
  const std::vector<serve::Request> requests =
      suite_requests(/*count=*/4, /*max_new_tokens=*/5);
  serve::Engine reference = make_engine("INT8", "", 0);
  const serve::Report expect = run_requests(reference, requests);
  serve::Engine engine = make_engine("INT8", "BFP4", /*draft_k=*/32);
  const serve::Report got = run_requests(engine, requests);
  EXPECT_EQ(got.stream_hash, expect.stream_hash);
  for (std::size_t i = 0; i < got.results.size(); ++i) {
    ASSERT_TRUE(got.results[i].ok);
    EXPECT_EQ(static_cast<int>(got.results[i].generated.size()),
              requests[i].max_new_tokens);
  }
}

TEST(Speculative, SingleTokenBudgetNeverDrafts) {
  // max_new_tokens == 1: the first (and only) token comes from the
  // prefill tick, so no speculation cycle ever runs.
  std::vector<serve::Request> requests = suite_requests();
  for (serve::Request& req : requests) req.max_new_tokens = 1;
  serve::Engine engine = make_engine("BBFP(4,2)", "BFP4", /*draft_k=*/4);
  const serve::Report report = run_requests(engine, requests);
  EXPECT_EQ(report.completed, static_cast<std::int64_t>(requests.size()));
  EXPECT_EQ(report.draft_cycles, 0);
  EXPECT_EQ(report.drafted_tokens, 0);
  EXPECT_DOUBLE_EQ(report.acceptance_rate, 0.0);
}

// --- Determinism of the acceptance statistics ---

TEST(Speculative, AcceptanceRateDeterministicAcrossRunsSeedsAndThreads) {
  const auto run_once = [](unsigned seed, int threads) {
    common::ThreadPool::set_global_threads(threads);
    serve::Engine engine = make_engine("BBFP(4,2)", "BFP4", /*draft_k=*/3);
    const serve::Report report =
        run_requests(engine, suite_requests(4, 8, seed));
    common::ThreadPool::set_global_threads(common::ThreadPool::env_threads());
    return report;
  };
  for (const unsigned seed : {2024u, 7u}) {
    const serve::Report a = run_once(seed, 1);
    const serve::Report b = run_once(seed, 1);
    const serve::Report c = run_once(seed, 4);
    EXPECT_EQ(a.drafted_tokens, b.drafted_tokens);
    EXPECT_EQ(a.accepted_tokens, b.accepted_tokens);
    EXPECT_DOUBLE_EQ(a.acceptance_rate, b.acceptance_rate);
    EXPECT_EQ(a.drafted_tokens, c.drafted_tokens) << "seed " << seed;
    EXPECT_EQ(a.accepted_tokens, c.accepted_tokens) << "seed " << seed;
    EXPECT_DOUBLE_EQ(a.acceptance_rate, c.acceptance_rate)
        << "seed " << seed;
    EXPECT_EQ(a.stream_hash, c.stream_hash) << "seed " << seed;
  }
}

// --- Interplay with prefix sharing: speculation's forks and rollbacks
// must leave shared prompt pages intact ---

TEST(Speculative, SharedPrefixStreamsMatchTargetOnly) {
  const std::vector<serve::Request> requests = serve::shared_prefix_requests(
      tiny_model()->config, /*count=*/6, /*prefix_len=*/24, /*suffix_len=*/4,
      /*max_new_tokens=*/8, /*seed=*/2024);
  serve::Engine reference =
      make_engine("BBFP(4,2)", "", 0, /*with_accelerator=*/false,
                  "prefix-aware");
  const serve::Report expect = run_requests(reference, requests);
  serve::Engine engine =
      make_engine("BBFP(4,2)", "BFP4", /*draft_k=*/3,
                  /*with_accelerator=*/false, "prefix-aware");
  const serve::Report got = run_requests(engine, requests);
  EXPECT_EQ(got.stream_hash, expect.stream_hash);
  EXPECT_EQ(got.prefix_hit_rate, expect.prefix_hit_rate);
  EXPECT_EQ(got.completed, expect.completed);
}

// --- Priced runs: cycle accounting and the counterfactual speedup ---

TEST(Speculative, PricedRunReportsCyclesAndSpeedup) {
  // A draft that wins: BBFP(4,2)'s iso-area re-provisioning packs far
  // more throughput into the target's silicon area, and it agrees with
  // INT8's argmax on most positions — so batched verification beats
  // sequential target-only decode. (draft == target can never exceed
  // 1.0: drafting a token there costs exactly what decoding it costs.)
  const std::vector<serve::Request> requests =
      suite_requests(/*count=*/4, /*max_new_tokens=*/24);
  serve::Engine engine = make_engine("INT8", "BBFP(4,2)", /*draft_k=*/4,
                                     /*with_accelerator=*/true);
  const serve::Report report = run_requests(engine, requests);
  EXPECT_TRUE(report.has_cost);
  EXPECT_GT(report.draft_cycles, 0);
  EXPECT_GT(report.total_seconds, 0.0);
  EXPECT_GT(report.acceptance_rate, 0.5);
  EXPECT_LE(report.acceptance_rate, 1.0);
  EXPECT_GT(report.speedup_vs_target, 1.0);

  // Same silicon, the target as its own draft: acceptance is exactly 1.0
  // but the speedup cannot clear parity — the report must say so rather
  // than flatter the configuration.
  serve::Engine self = make_engine("INT8", "INT8", /*draft_k=*/4,
                                   /*with_accelerator=*/true);
  const serve::Report self_report = run_requests(self, requests);
  EXPECT_DOUBLE_EQ(self_report.acceptance_rate, 1.0);
  EXPECT_LT(self_report.speedup_vs_target, 1.0);
  EXPECT_GT(self_report.speedup_vs_target, 0.8);
}

TEST(Speculative, ReportEmitsDraftFieldsOnlyWhenSpeculating) {
  const std::vector<serve::Request> requests = suite_requests();
  serve::Engine off = make_engine("BBFP(4,2)", "", 0);
  const std::string off_json = run_requests(off, requests).to_json();
  EXPECT_EQ(off_json.find("\"draft\""), std::string::npos);
  EXPECT_EQ(off_json.find("acceptance_rate"), std::string::npos);

  serve::Engine on = make_engine("BBFP(4,2)", "BFP4", /*draft_k=*/2);
  const std::string on_json = run_requests(on, requests).to_json();
  EXPECT_NE(on_json.find("\"draft\": \"BFP4\""), std::string::npos);
  EXPECT_NE(on_json.find("\"draft_k\": 2"), std::string::npos);
  EXPECT_NE(on_json.find("acceptance_rate"), std::string::npos);
  EXPECT_NE(on_json.find("draft_cycles"), std::string::npos);
  // speedup_vs_target needs priced time — absent without an accelerator.
  EXPECT_EQ(on_json.find("speedup_vs_target"), std::string::npos);
}

// --- Options validation ---

TEST(Speculative, CreateRejectsInconsistentDraftOptions) {
  const auto expect_error = [](serve::Engine::Options options,
                               const std::string& needle) {
    auto result = serve::Engine::create(tiny_model(), quant::spec_of("INT8"),
                                        quant::StrategySpec::fp32(),
                                        std::move(options));
    ASSERT_FALSE(result.is_ok()) << needle;
    EXPECT_NE(result.message().find(needle), std::string::npos)
        << result.message();
  };
  serve::Engine::Options options;
  options.draft_k = 2;  // no draft strategy
  expect_error(options, "draft");
  options = {};
  options.draft = "BFP4";  // no draft_k
  expect_error(options, "draft_k");
  options = {};
  options.draft = "BFP4";
  options.draft_k = -1;
  expect_error(options, "draft_k");
  options = {};
  options.draft = "no-such-strategy";
  options.draft_k = 2;
  expect_error(options, "draft");
}

}  // namespace
}  // namespace bbal
